/**
 * @file
 * Integration tests for datasets, the trainer and the model zoo:
 * deterministic data generation, learnability well above chance, and
 * zoo network shape sanity.
 */

#include <gtest/gtest.h>

#include "nn/trainer.hh"
#include "nn/zoo.hh"

namespace forms::nn {
namespace {

TEST(Dataset, DeterministicForSeed)
{
    DatasetConfig cfg = DatasetConfig::mnistLike(5);
    SyntheticImageDataset a(cfg), b(cfg);
    EXPECT_TRUE(a.train().images.equals(b.train().images));
    EXPECT_EQ(a.train().labels, b.train().labels);
}

TEST(Dataset, GeometryMatchesConfig)
{
    DatasetConfig cfg = DatasetConfig::cifar10Like();
    SyntheticImageDataset d(cfg);
    EXPECT_EQ(d.train().images.dim(1), 3);
    EXPECT_EQ(d.train().images.dim(2), 32);
    EXPECT_EQ(d.train().size(), cfg.classes * cfg.trainPerClass);
    EXPECT_EQ(d.test().size(), cfg.classes * cfg.testPerClass);
}

TEST(Dataset, LabelsBalanced)
{
    DatasetConfig cfg = DatasetConfig::mnistLike();
    SyntheticImageDataset d(cfg);
    std::vector<int> counts(static_cast<size_t>(cfg.classes), 0);
    for (int l : d.train().labels)
        ++counts[static_cast<size_t>(l)];
    for (int c : counts)
        EXPECT_EQ(c, cfg.trainPerClass);
}

TEST(Dataset, BatchExtraction)
{
    DatasetConfig cfg = DatasetConfig::mnistLike();
    cfg.trainPerClass = 8;
    SyntheticImageDataset d(cfg);
    auto order = d.trainOrder();
    Split b = d.batch(order, 0, 16);
    EXPECT_EQ(b.size(), 16);
    EXPECT_EQ(b.labels.size(), 16u);
}

TEST(Trainer, TinyNetLearnsAboveChance)
{
    DatasetConfig cfg;
    cfg.classes = 4;
    cfg.channels = 1;
    cfg.height = 12;
    cfg.width = 12;
    cfg.trainPerClass = 32;
    cfg.testPerClass = 16;
    cfg.noise = 0.4f;
    cfg.seed = 77;
    SyntheticImageDataset data(cfg);

    Rng rng(1);
    auto net = buildTinyConvNet(rng, cfg.classes, 8, 1, 12);
    TrainConfig tc;
    tc.epochs = 8;
    tc.batchSize = 16;
    tc.lr = 0.05f;
    Trainer trainer(*net, data, tc);
    auto res = trainer.run();
    // Chance is 0.25; the prototype task should be solidly learnable.
    EXPECT_GT(res.testAccuracy, 0.6);
}

TEST(Trainer, LossDecreases)
{
    DatasetConfig cfg;
    cfg.classes = 4;
    cfg.channels = 1;
    cfg.height = 12;
    cfg.width = 12;
    cfg.trainPerClass = 24;
    cfg.noise = 0.4f;
    cfg.seed = 78;
    SyntheticImageDataset data(cfg);

    Rng rng(2);
    auto net = buildTinyConvNet(rng, cfg.classes, 8, 1, 12);
    TrainConfig tc;
    tc.epochs = 1;
    tc.batchSize = 16;
    Trainer trainer(*net, data, tc);

    auto order = data.trainOrder();
    const double first = trainer.step(data.batch(order, 0, 16));
    double last = first;
    for (int i = 0; i < 30; ++i)
        last = trainer.step(data.batch(order, 0, 16));
    EXPECT_LT(last, first);
}

TEST(Trainer, HooksFire)
{
    DatasetConfig cfg;
    cfg.classes = 2;
    cfg.channels = 1;
    cfg.height = 12;
    cfg.width = 12;
    cfg.trainPerClass = 16;
    cfg.seed = 79;
    SyntheticImageDataset data(cfg);

    Rng rng(3);
    auto net = buildTinyConvNet(rng, 2, 4, 1, 12);
    TrainConfig tc;
    tc.epochs = 2;
    tc.batchSize = 8;
    Trainer trainer(*net, data, tc);

    int grad_calls = 0, step_calls = 0, epoch_calls = 0;
    trainer.setGradHook([&]() { ++grad_calls; });
    trainer.setPostStepHook([&]() { ++step_calls; });
    trainer.setEpochHook([&](int) { ++epoch_calls; });
    trainer.run();
    EXPECT_GT(grad_calls, 0);
    EXPECT_EQ(grad_calls, step_calls);
    EXPECT_EQ(epoch_calls, 2);
}

TEST(Zoo, LeNet5Shapes)
{
    Rng rng(4);
    auto net = buildLeNet5(rng, 10);
    Tensor x({2, 1, 28, 28});
    x.fillGaussian(rng, 0.0f, 1.0f);
    Tensor y = net->forward(x);
    EXPECT_EQ(y.dim(0), 2);
    EXPECT_EQ(y.dim(1), 10);
}

TEST(Zoo, VggSmallShapes)
{
    Rng rng(5);
    auto net = buildVggSmall(rng, 10, 8);
    Tensor x({1, 3, 32, 32});
    x.fillGaussian(rng, 0.0f, 1.0f);
    Tensor y = net->forward(x);
    EXPECT_EQ(y.dim(1), 10);
}

TEST(Zoo, ResNetSmallShapes)
{
    Rng rng(6);
    auto net = buildResNetSmall(rng, 20, 8);
    Tensor x({1, 3, 32, 32});
    x.fillGaussian(rng, 0.0f, 1.0f);
    Tensor y = net->forward(x);
    EXPECT_EQ(y.dim(1), 20);
}

TEST(Zoo, ResNetHasLargeFragmentableLayers)
{
    // Fragment sizes up to 128 need layers with >= 128 rows in the 2-d
    // weight format (Cin * k * k).
    Rng rng(7);
    auto net = buildResNetSmall(rng, 10, 16);
    int64_t max_rows = 0;
    for (auto &p : net->params()) {
        if (!p.isConvWeight)
            continue;
        const Tensor &w = *p.value;
        max_rows = std::max(max_rows, w.dim(1) * w.dim(2) * w.dim(3));
    }
    EXPECT_GE(max_rows, 128);
}

} // namespace
} // namespace forms::nn
