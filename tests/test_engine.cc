/**
 * @file
 * Tests for the functional crossbar engine: integer exactness at
 * lossless ADC resolution (parameterized over fragment sizes), bounded
 * error at the paper's reduced resolutions, zero-skip equivalence and
 * cycle savings, and device-variation behaviour.
 */

#include <gtest/gtest.h>

#include "arch/engine.hh"
#include "stats_testutil.hh"

namespace forms::arch {
namespace {

using admm::FragmentPlan;
using admm::PolarizationPolicy;
using admm::WeightView;

struct TestLayer
{
    Tensor weight;
    Tensor grad;
    admm::LayerState state;

    TestLayer(int cout, int cin, int k, int frag, uint64_t seed)
        : weight({cout, cin, k, k}), grad({cout, cin, k, k})
    {
        Rng rng(seed);
        weight.fillGaussian(rng, 0.0f, 0.5f);
        state.name = "engine-test";
        state.param = {"w", &weight, &grad, true, false};
        state.plan = FragmentPlan::forConv(cout, cin, k, frag,
                                           PolarizationPolicy::WMajor);
        WeightView v = WeightView::conv(weight);
        state.signs = admm::computeSigns(v, state.plan);
        admm::projectPolarization(v, state.plan, *state.signs);
        admm::QuantSpec q;
        q.bits = 8;
        state.quantScale = admm::projectQuantize(v, q);
    }
};

MappingConfig
makeCfg(int frag)
{
    MappingConfig cfg;
    cfg.xbarRows = 32;
    cfg.xbarCols = 32;
    cfg.weightBits = 8;
    cfg.cellBits = 2;
    cfg.inputBits = 12;
    cfg.fragSize = frag;
    return cfg;
}

std::vector<uint32_t>
randomInputs(size_t n, int bits, uint64_t seed, double zero_frac = 0.3)
{
    Rng rng(seed);
    std::vector<uint32_t> v(n);
    for (auto &x : v) {
        if (rng.bernoulli(zero_frac)) {
            x = 0;
        } else {
            // Heavy-tailed small values like real activations.
            const double val = std::exp(rng.gaussian(3.0, 1.5));
            x = static_cast<uint32_t>(
                std::min(val, std::pow(2.0, bits) - 1));
        }
    }
    return v;
}

class EngineExactnessTest : public ::testing::TestWithParam<int>
{
};

TEST_P(EngineExactnessTest, LosslessAdcIsIntegerExact)
{
    const int frag = GetParam();
    TestLayer layer(10, 4, 3, frag, 100 + frag);
    MappingConfig mcfg = makeCfg(frag);
    MappedLayer mapped = mapLayer(layer.state, mcfg);

    EngineConfig ecfg;
    ecfg.adcBits = 0;   // lossless
    CrossbarEngine engine(mapped, ecfg);

    auto inputs = randomInputs(36, mcfg.inputBits, 7);
    auto got = engine.mvm(inputs);
    auto expect = referenceMvm(mapped, inputs);
    ASSERT_EQ(got.size(), expect.size());
    for (size_t i = 0; i < got.size(); ++i)
        EXPECT_DOUBLE_EQ(got[i], static_cast<double>(expect[i]))
            << "output " << i;
}

TEST_P(EngineExactnessTest, BatchedLosslessAdcIsIntegerExact)
{
    const int frag = GetParam();
    TestLayer layer(10, 4, 3, frag, 300 + frag);
    MappingConfig mcfg = makeCfg(frag);
    MappedLayer mapped = mapLayer(layer.state, mcfg);

    EngineConfig ecfg;
    ecfg.adcBits = 0;   // lossless
    CrossbarEngine engine(mapped, ecfg);

    std::vector<std::vector<uint32_t>> batch;
    for (uint64_t s = 0; s < 6; ++s)
        batch.push_back(randomInputs(36, mcfg.inputBits, 20 + s));

    ThreadPool pool(4);
    auto got = engine.mvmBatch(batch, nullptr, &pool);
    ASSERT_EQ(got.size(), batch.size());
    for (size_t b = 0; b < batch.size(); ++b) {
        auto expect = referenceMvm(mapped, batch[b]);
        ASSERT_EQ(got[b].size(), expect.size());
        for (size_t i = 0; i < got[b].size(); ++i)
            EXPECT_DOUBLE_EQ(got[b][i], static_cast<double>(expect[i]))
                << "presentation " << b << " output " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(FragSizes, EngineExactnessTest,
                         ::testing::Values(4, 8, 16, 32));

TEST(Engine, ZeroSkipDoesNotChangeResults)
{
    TestLayer layer(8, 4, 3, 8, 11);
    MappedLayer mapped = mapLayer(layer.state, makeCfg(8));

    EngineConfig with, without;
    with.zeroSkip = true;
    without.zeroSkip = false;
    CrossbarEngine e1(mapped, with), e2(mapped, without);

    auto inputs = randomInputs(36, 12, 8);
    EngineStats s1, s2;
    auto r1 = e1.mvm(inputs, &s1);
    auto r2 = e2.mvm(inputs, &s2);
    ASSERT_EQ(r1.size(), r2.size());
    for (size_t i = 0; i < r1.size(); ++i)
        EXPECT_DOUBLE_EQ(r1[i], r2[i]);
    // ...but it must save cycles on sparse/small inputs.
    EXPECT_LT(s1.bitCycles, s2.bitCycles);
    EXPECT_GT(s1.skippedCycles, 0u);
    EXPECT_EQ(s2.skippedCycles, 0u);
}

TEST(Engine, SmallerFragmentsSkipMore)
{
    // The unique-opportunity claim (paper §IV-B): skip fraction grows
    // as fragments shrink.
    auto skip_fraction = [](int frag) {
        TestLayer layer(8, 8, 3, frag, 200);
        MappedLayer mapped = mapLayer(layer.state, makeCfg(frag));
        EngineConfig cfg;
        CrossbarEngine engine(mapped, cfg);
        auto inputs = randomInputs(72, 12, 9);
        EngineStats stats;
        engine.mvm(inputs, &stats);
        return stats.skipFraction();
    };
    const double f4 = skip_fraction(4);
    const double f32 = skip_fraction(32);
    EXPECT_GT(f4, f32);
}

TEST(Engine, PaperAdcResolutionErrorIsBounded)
{
    TestLayer layer(8, 4, 3, 8, 13);
    MappedLayer mapped = mapLayer(layer.state, makeCfg(8));

    EngineConfig paper;
    paper.adcBits = 4;   // the paper's choice for fragment size 8
    CrossbarEngine engine(mapped, paper);

    auto inputs = randomInputs(36, 12, 10);
    auto got = engine.mvm(inputs);
    auto expect = referenceMvm(mapped, inputs);

    double rel = 0.0;
    double norm = 0.0;
    for (size_t i = 0; i < got.size(); ++i) {
        rel += std::fabs(got[i] - static_cast<double>(expect[i]));
        norm += std::fabs(static_cast<double>(expect[i]));
    }
    ASSERT_GT(norm, 0.0);
    // 4-bit conversion of a 0..24 range loses fine codes; trained
    // (polarized, small-magnitude) weights keep the error modest.
    EXPECT_LT(rel / norm, 0.25);
}

TEST(Engine, VariationPerturbsOutputs)
{
    TestLayer layer(8, 4, 3, 8, 17);
    MappedLayer mapped = mapLayer(layer.state, makeCfg(8));

    EngineConfig ideal, noisy;
    noisy.cell.variationSigma = 0.1;
    CrossbarEngine e_ideal(mapped, ideal), e_noisy(mapped, noisy);

    auto inputs = randomInputs(36, 12, 11, 0.0);
    auto r_ideal = e_ideal.mvm(inputs);
    auto r_noisy = e_noisy.mvm(inputs);
    double diff = 0.0, norm = 0.0;
    for (size_t i = 0; i < r_ideal.size(); ++i) {
        diff += std::fabs(r_ideal[i] - r_noisy[i]);
        norm += std::fabs(r_ideal[i]);
    }
    EXPECT_GT(diff, 0.0);
    EXPECT_LT(diff / norm, 0.5);
}

TEST(Engine, StatsAccounting)
{
    TestLayer layer(8, 4, 3, 8, 19);
    MappedLayer mapped = mapLayer(layer.state, makeCfg(8));
    EngineConfig cfg;
    cfg.zeroSkip = false;
    CrossbarEngine engine(mapped, cfg);
    auto inputs = randomInputs(36, 12, 12);
    EngineStats stats;
    engine.mvm(inputs, &stats);

    // Without skipping: bit cycles = sum over crossbars and fragments
    // of inputBits.
    uint64_t expect_cycles = 0;
    for (const auto &xb : mapped.crossbars)
        expect_cycles += static_cast<uint64_t>(xb.fragsUsed) * 12;
    EXPECT_EQ(stats.bitCycles, expect_cycles);
    EXPECT_GT(stats.adcSamples, stats.bitCycles);
    EXPECT_GT(stats.adcEnergyPj, 0.0);
    EXPECT_GT(stats.timeNs, 0.0);
    EXPECT_EQ(stats.presentations, 1u);
}

/**
 * Scalar and dispatched engines are bit-identical — outputs AND stats
 * — with ADC quantization, device variation and read noise all on.
 * Geometries are chosen so the per-fragment column panels are NOT a
 * multiple of the 4-wide vector blocks (cellBits 8 gives one cell per
 * weight, so odd weight-column counts force 1–3-element tail lanes).
 */
TEST(Engine, ScalarAndDispatchedKernelsAreBitIdentical)
{
    struct Geometry
    {
        int cellBits, frag, cout;
    };
    for (const Geometry geo : {Geometry{8, 4, 5}, Geometry{2, 8, 6},
                               Geometry{4, 16, 7}}) {
        SCOPED_TRACE(strfmt("cellBits=%d frag=%d cout=%d", geo.cellBits,
                            geo.frag, geo.cout));
        TestLayer layer(geo.cout, 3, 3, geo.frag, 99);
        MappingConfig mcfg = makeCfg(geo.frag);
        mcfg.cellBits = geo.cellBits;
        mcfg.inputBits = 8;
        const MappedLayer mapped = mapLayer(layer.state, mcfg);

        EngineConfig scfg;
        scfg.adcBits = 4;
        scfg.cell.bitsPerCell = geo.cellBits;
        scfg.cell.variationSigma = 0.1;
        scfg.readNoiseSigma = 0.02;
        EngineConfig dcfg = scfg;
        scfg.simdMode = simd::Mode::Scalar;
        dcfg.simdMode = simd::Mode::Auto;

        CrossbarEngine scalar_eng(mapped, scfg);
        CrossbarEngine dispatch_eng(mapped, dcfg);
        EXPECT_STREQ(scalar_eng.kernelName(), "scalar");

        std::vector<std::vector<uint32_t>> batch;
        for (uint64_t p = 0; p < 6; ++p) {
            batch.push_back(randomInputs(
                static_cast<size_t>(mapped.logicalRows), 8, 1000 + p));
        }
        EngineStats want, got;
        const auto ref = scalar_eng.mvmBatch(batch, &want);
        const auto out = dispatch_eng.mvmBatch(batch, &got);
        ASSERT_EQ(ref.size(), out.size());
        for (size_t p = 0; p < ref.size(); ++p) {
            ASSERT_EQ(ref[p].size(), out[p].size());
            for (size_t c = 0; c < ref[p].size(); ++c)
                EXPECT_EQ(ref[p][c], out[p][c])
                    << "presentation " << p << " column " << c;
        }
        expectStatsIdentical(want, got);
    }
}

/**
 * A device model whose precision disagrees with the mapping's slicing
 * must be rejected up front with an actionable message (this also
 * regression-tests FORMS_ASSERT's formatted-argument path, which used
 * to crash inside panic() instead of printing).
 */
TEST(Engine, RejectsMismatchedCellPrecision)
{
    TestLayer layer(4, 3, 3, 8, 7);
    MappingConfig mcfg = makeCfg(8);
    mcfg.cellBits = 4;
    const MappedLayer mapped = mapLayer(layer.state, mcfg);
    EngineConfig ecfg;   // cell model still at the 2-bit default
    EXPECT_DEATH(CrossbarEngine(mapped, ecfg),
                 "4 bits/cell|bitsPerCell");
}

TEST(Engine, QuantizeActivationsRoundTrip)
{
    std::vector<float> x = {0.0f, -0.5f, 1.0f, 0.25f};
    float scale = 0.0f;
    auto q = quantizeActivations(x, 8, &scale);
    EXPECT_EQ(q[0], 0u);
    EXPECT_EQ(q[1], 0u);   // negatives clamp (post-ReLU convention)
    EXPECT_EQ(q[2], 255u);
    EXPECT_NEAR(static_cast<float>(q[3]) * scale, 0.25f, scale);
}

TEST(Engine, DequantizeScalesProducts)
{
    std::vector<double> raw = {100.0, -50.0};
    auto out = dequantizeOutputs(raw, 0.01f, 0.002f);
    EXPECT_NEAR(out[0], 100.0 * 0.01 * 0.002, 1e-9);
    EXPECT_NEAR(out[1], -50.0 * 0.01 * 0.002, 1e-9);
}

} // namespace
} // namespace forms::arch
