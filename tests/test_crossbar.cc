/**
 * @file
 * Tests for the crossbar array substrate: programming, ideal column
 * sums against a naive reference, sub-array (row-group) restriction,
 * and variation behaviour.
 */

#include <gtest/gtest.h>

#include "reram/crossbar.hh"

namespace forms::reram {
namespace {

TEST(Crossbar, ProgramAndReadBack)
{
    CellConfig cfg;
    CrossbarArray xb(4, 4, cfg);
    xb.programCell(1, 2, 3);
    EXPECT_EQ(xb.cellLevel(1, 2), 3);
    EXPECT_EQ(xb.cellLevel(0, 0), 0);
}

TEST(Crossbar, IdealColumnSumMatchesNaive)
{
    CellConfig cfg;
    Rng rng(3);
    const int rows = 16, cols = 8;
    CrossbarArray xb(rows, cols, cfg);
    std::vector<std::vector<int>> ref(
        rows, std::vector<int>(cols, 0));
    for (int r = 0; r < rows; ++r)
        for (int c = 0; c < cols; ++c) {
            const int level = static_cast<int>(rng.below(4));
            xb.programCell(r, c, level);
            ref[r][c] = level;
        }
    std::vector<uint8_t> bits(rows);
    for (int r = 0; r < rows; ++r)
        bits[r] = rng.bernoulli(0.5) ? 1 : 0;

    for (int c = 0; c < cols; ++c) {
        int64_t expect = 0;
        for (int r = 0; r < rows; ++r)
            if (bits[r])
                expect += ref[r][c];
        EXPECT_EQ(xb.idealColumnSum(c, bits, 0, rows), expect);
        EXPECT_DOUBLE_EQ(xb.columnSum(c, bits, 0, rows),
                         static_cast<double>(expect));
    }
}

TEST(Crossbar, RowGroupRestriction)
{
    CellConfig cfg;
    CrossbarArray xb(8, 2, cfg);
    for (int r = 0; r < 8; ++r)
        xb.programCell(r, 0, 1);
    std::vector<uint8_t> bits(8, 1);
    // Only the second group of 4 rows.
    EXPECT_EQ(xb.idealColumnSum(0, bits, 4, 4), 4);
    EXPECT_EQ(xb.idealColumnSum(0, bits, 0, 4), 4);
    EXPECT_EQ(xb.idealColumnSum(0, bits, 0, 8), 8);
}

TEST(Crossbar, VariationShiftsAnalogNotDigital)
{
    CellConfig cfg;
    cfg.variationSigma = 0.2;
    Rng rng(5);
    CrossbarArray xb(32, 1, cfg, &rng);
    for (int r = 0; r < 32; ++r)
        xb.programCell(r, 0, 2);
    std::vector<uint8_t> bits(32, 1);
    EXPECT_EQ(xb.idealColumnSum(0, bits, 0, 32), 64);
    const double analog = xb.columnSum(0, bits, 0, 32);
    EXPECT_NE(analog, 64.0);
    EXPECT_NEAR(analog, 64.0, 64.0 * 0.25);
}

TEST(Crossbar, ReadEnergyPositiveAndScales)
{
    CellConfig cfg;
    CrossbarArray xb(128, 128, cfg);
    const double e8 = xb.readEnergyPj(8, 1.0);
    const double e128 = xb.readEnergyPj(128, 1.0);
    EXPECT_GT(e8, 0.0);
    EXPECT_NEAR(e128 / e8, 16.0, 1e-9);
}

} // namespace
} // namespace forms::reram
