/**
 * @file
 * Property tests for the three ADMM constraint projections: structured
 * pruning (top-norm selection + crossbar-aware rounding), fragment
 * polarization (Euclidean orthant projection, idempotence, sign rules)
 * and quantization (grid membership, idempotence, error bound).
 */

#include <gtest/gtest.h>

#include "admm/constraints.hh"

namespace forms::admm {
namespace {

TEST(CrossbarAwareKeep, SnapsUpToCrossbarExtent)
{
    // keep = 300 of 512 at D=128 snaps to 384 (3 crossbars' worth).
    EXPECT_EQ(crossbarAwareKeep(512, 300.0 / 512.0, 128), 384);
    // Exactly on a boundary stays.
    EXPECT_EQ(crossbarAwareKeep(512, 0.5, 128), 256);
    // Never exceeds the total.
    EXPECT_EQ(crossbarAwareKeep(100, 0.99, 128), 100);
    // Never drops to zero.
    EXPECT_GE(crossbarAwareKeep(512, 0.0, 128), 1);
}

TEST(CrossbarAwareKeep, NoSnapWithUnitDim)
{
    EXPECT_EQ(crossbarAwareKeep(512, 300.0 / 512.0, 1), 300);
}

TEST(StructuredPrune, KeepsTopNormColumns)
{
    Tensor w({4, 8});   // dense view: rows=8, cols=4
    // Column norms (out neurons): make neuron 2 strongest, 0 weakest.
    for (int64_t j = 0; j < 4; ++j)
        for (int64_t r = 0; r < 8; ++r)
            w.at(j, r) = 0.1f * static_cast<float>(j + 1);
    w.at(2, 0) = 10.0f;

    PruneSpec spec;
    spec.filterKeep = 0.5;
    spec.shapeKeep = 1.0;
    spec.crossbarAware = false;
    WeightView v = WeightView::dense(w);
    auto [rk, ck] = projectStructuredPrune(v, spec);
    EXPECT_EQ(ck, 2);
    EXPECT_EQ(rk, 8);
    // Strongest columns (2 and 3) survive; 0 and 1 zeroed.
    for (int64_t r = 0; r < 8; ++r) {
        EXPECT_EQ(v.get(r, 0), 0.0f);
        EXPECT_EQ(v.get(r, 1), 0.0f);
        EXPECT_NE(v.get(r, 2), 0.0f);
    }
}

TEST(StructuredPrune, RemainingStructureIsDense)
{
    Rng rng(3);
    Tensor w({16, 2, 3, 3});
    w.fillGaussian(rng, 0.0f, 1.0f);
    PruneSpec spec;
    spec.filterKeep = 0.5;
    spec.shapeKeep = 0.5;
    spec.crossbarAware = false;
    WeightView v = WeightView::conv(w);
    projectStructuredPrune(v, spec);
    PruneMask m = extractMask(v);
    EXPECT_EQ(m.keptCols(), 8);
    EXPECT_EQ(m.keptRows(), 9);
    // Every kept (row, col) pair must be nonzero-allowed (dense block):
    // check that all surviving weights live inside the kept structure.
    for (int64_t j = 0; j < v.cols(); ++j)
        for (int64_t r = 0; r < v.rows(); ++r)
            if (v.get(r, j) != 0.0f) {
                EXPECT_TRUE(m.colKept[static_cast<size_t>(j)]);
                EXPECT_TRUE(m.rowKept[static_cast<size_t>(r)]);
            }
}

TEST(StructuredPrune, ProjectionIsIdempotent)
{
    Rng rng(4);
    Tensor w({8, 4, 3, 3});
    w.fillGaussian(rng, 0.0f, 1.0f);
    PruneSpec spec;
    spec.filterKeep = 0.6;
    spec.shapeKeep = 0.7;
    spec.crossbarAware = false;
    WeightView v = WeightView::conv(w);
    projectStructuredPrune(v, spec);
    Tensor once = w;
    projectStructuredPrune(v, spec);
    EXPECT_TRUE(w.equals(once));
}

TEST(ApplyMask, ZeroesOutsideStructure)
{
    Rng rng(5);
    Tensor w({4, 6});
    w.fillGaussian(rng, 1.0f, 0.1f);
    WeightView v = WeightView::dense(w);
    PruneMask m;
    m.rowKept.assign(6, 1);
    m.colKept.assign(4, 1);
    m.rowKept[2] = 0;
    m.colKept[1] = 0;
    applyMask(v, m);
    for (int64_t r = 0; r < 6; ++r)
        EXPECT_EQ(v.get(r, 1), 0.0f);
    for (int64_t j = 0; j < 4; ++j)
        EXPECT_EQ(v.get(2, j), 0.0f);
    EXPECT_NE(v.get(0, 0), 0.0f);
}

class PolarizationTest : public ::testing::TestWithParam<int>
{
};

TEST_P(PolarizationTest, ProjectionClearsAllViolations)
{
    const int frag = GetParam();
    Rng rng(6 + frag);
    Tensor w({6, 4, 3, 3});
    w.fillGaussian(rng, 0.0f, 1.0f);
    WeightView v = WeightView::conv(w);
    FragmentPlan plan = FragmentPlan::forConv(
        6, 4, 3, frag, PolarizationPolicy::CMajor);
    SignMap signs = computeSigns(v, plan, SignRule::SumRule);
    EXPECT_GT(countSignViolations(v, plan, signs), 0);
    projectPolarization(v, plan, signs);
    EXPECT_EQ(countSignViolations(v, plan, signs), 0);
}

TEST_P(PolarizationTest, ProjectionIsIdempotent)
{
    const int frag = GetParam();
    Rng rng(16 + frag);
    Tensor w({4, 2, 3, 3});
    w.fillGaussian(rng, 0.0f, 1.0f);
    WeightView v = WeightView::conv(w);
    FragmentPlan plan = FragmentPlan::forConv(
        4, 2, 3, frag, PolarizationPolicy::WMajor);
    SignMap signs = computeSigns(v, plan);
    projectPolarization(v, plan, signs);
    Tensor once = w;
    projectPolarization(v, plan, signs);
    EXPECT_TRUE(w.equals(once));
}

TEST_P(PolarizationTest, SurvivorsKeepTheirValues)
{
    // The Euclidean projection onto a signed orthant only zeroes the
    // offending coordinates; it never modifies agreeing ones.
    const int frag = GetParam();
    Rng rng(26 + frag);
    Tensor w({4, 2, 3, 3});
    w.fillGaussian(rng, 0.0f, 1.0f);
    Tensor orig = w;
    WeightView v = WeightView::conv(w);
    FragmentPlan plan = FragmentPlan::forConv(
        4, 2, 3, frag, PolarizationPolicy::WMajor);
    SignMap signs = computeSigns(v, plan);
    projectPolarization(v, plan, signs);
    for (int64_t i = 0; i < w.numel(); ++i) {
        if (w.at(i) != 0.0f)
            EXPECT_FLOAT_EQ(w.at(i), orig.at(i));
    }
}

INSTANTIATE_TEST_SUITE_P(FragmentSizes, PolarizationTest,
                         ::testing::Values(2, 4, 8, 16));

TEST(Polarization, SumRuleMatchesPaperEquation)
{
    // Fragment sum >= 0 -> positive sign (Eq. 2).
    Tensor w({1, 1, 2, 2});
    w.at(0) = 3.0f; w.at(1) = -1.0f; w.at(2) = -1.0f; w.at(3) = -0.5f;
    WeightView v = WeightView::conv(w);
    FragmentPlan plan = FragmentPlan::forConv(
        1, 1, 2, 4, PolarizationPolicy::WMajor);
    SignMap signs = computeSigns(v, plan, SignRule::SumRule);
    EXPECT_EQ(signs.get(0, 0), 1);   // sum = 0.5 >= 0
}

TEST(Polarization, MinEnergyPicksHeavierOrthant)
{
    // Sum is positive but the negative side carries more energy.
    Tensor w({1, 1, 2, 2});
    w.at(0) = 2.5f; w.at(1) = 0.0f; w.at(2) = -2.0f; w.at(3) = -2.0f;
    WeightView v = WeightView::conv(w);
    FragmentPlan plan = FragmentPlan::forConv(
        1, 1, 2, 4, PolarizationPolicy::WMajor);
    EXPECT_EQ(computeSigns(v, plan, SignRule::SumRule).get(0, 0), -1);
    EXPECT_EQ(computeSigns(v, plan, SignRule::MinEnergy).get(0, 0), -1);

    w.at(0) = 3.0f;   // sum now +... energy still favours negative
    EXPECT_EQ(computeSigns(v, plan, SignRule::SumRule).get(0, 0), -1);
    w.at(0) = 5.0f;
    EXPECT_EQ(computeSigns(v, plan, SignRule::SumRule).get(0, 0), 1);
    EXPECT_EQ(computeSigns(v, plan, SignRule::MinEnergy).get(0, 0), 1);
}

TEST(Quantization, ResultsLieOnGrid)
{
    Rng rng(7);
    Tensor w({8, 16});
    w.fillGaussian(rng, 0.0f, 0.5f);
    WeightView v = WeightView::dense(w);
    QuantSpec q;
    q.bits = 4;
    const float scale = projectQuantize(v, q);
    ASSERT_GT(scale, 0.0f);
    for (int64_t i = 0; i < w.numel(); ++i) {
        const float ratio = std::fabs(w.at(i)) / scale;
        EXPECT_NEAR(ratio, std::round(ratio), 1e-4);
        EXPECT_LE(ratio, 15.5f);
    }
}

TEST(Quantization, Idempotent)
{
    Rng rng(8);
    Tensor w({4, 4});
    w.fillGaussian(rng, 0.0f, 1.0f);
    WeightView v = WeightView::dense(w);
    QuantSpec q;
    q.bits = 6;
    const float scale = projectQuantize(v, q);
    Tensor once = w;
    q.scale = scale;
    projectQuantize(v, q);
    EXPECT_TRUE(w.equals(once));
}

TEST(Quantization, ErrorBoundedByHalfStep)
{
    Rng rng(9);
    Tensor w({16, 16});
    w.fillGaussian(rng, 0.0f, 1.0f);
    Tensor orig = w;
    WeightView v = WeightView::dense(w);
    QuantSpec q;
    q.bits = 8;
    const float scale = projectQuantize(v, q);
    for (int64_t i = 0; i < w.numel(); ++i)
        EXPECT_LE(std::fabs(w.at(i) - orig.at(i)), scale * 0.5f + 1e-6f);
}

TEST(Quantization, PreservesSignsAndZeros)
{
    Tensor w({1, 4});
    w.at(0) = 0.8f; w.at(1) = -0.8f; w.at(2) = 0.0f; w.at(3) = 1.0f;
    WeightView v = WeightView::dense(w);
    QuantSpec q;
    q.bits = 8;
    projectQuantize(v, q);
    EXPECT_GT(w.at(0), 0.0f);
    EXPECT_LT(w.at(1), 0.0f);
    EXPECT_EQ(w.at(2), 0.0f);
}

TEST(Quantization, QuantizeValueSaturates)
{
    EXPECT_FLOAT_EQ(quantizeValue(100.0f, 1.0f, 4), 15.0f);
    EXPECT_FLOAT_EQ(quantizeValue(-100.0f, 1.0f, 4), -15.0f);
    EXPECT_FLOAT_EQ(quantizeValue(0.0f, 1.0f, 4), 0.0f);
}

} // namespace
} // namespace forms::admm
