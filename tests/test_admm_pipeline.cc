/**
 * @file
 * Integration tests for the ADMM compression pipeline on a small
 * trainable network: every phase establishes its invariant (mask,
 * polarized signs, quantization grid), the combination holds after
 * run(), and accuracy survives compression on an easy task.
 */

#include <gtest/gtest.h>

#include "admm/report.hh"

namespace forms::admm {
namespace {

struct Fixture
{
    nn::DatasetConfig dataCfg;
    nn::SyntheticImageDataset data;
    std::unique_ptr<nn::Network> net;

    Fixture()
        : dataCfg(makeCfg()), data(dataCfg)
    {
        Rng rng(21);
        net = nn::buildTinyConvNet(rng, dataCfg.classes, 8, 1, 12);
        nn::TrainConfig tc;
        tc.epochs = 6;
        tc.batchSize = 16;
        nn::Trainer trainer(*net, data, tc);
        trainer.run();
    }

    static nn::DatasetConfig
    makeCfg()
    {
        nn::DatasetConfig cfg;
        cfg.classes = 4;
        cfg.channels = 1;
        cfg.height = 12;
        cfg.width = 12;
        cfg.trainPerClass = 32;
        cfg.testPerClass = 16;
        cfg.noise = 0.35f;
        cfg.seed = 99;
        return cfg;
    }

    AdmmConfig
    admmCfg() const
    {
        AdmmConfig cfg;
        cfg.fragSize = 4;
        cfg.xbarDim = 8;
        cfg.filterKeep = 0.75;
        cfg.shapeKeep = 0.75;
        cfg.quantBits = 8;
        cfg.admmEpochsPerPhase = 2;
        cfg.finetuneEpochs = 2;
        cfg.train.batchSize = 16;
        return cfg;
    }
};

TEST(AdmmPipeline, FullRunEstablishesAllInvariants)
{
    Fixture f;
    AdmmConfig cfg = f.admmCfg();
    AdmmCompressor comp(*f.net, f.data, cfg);
    auto outcome = comp.run();

    EXPECT_EQ(outcome.signViolations, 0);
    EXPECT_GT(outcome.pruneRatio, 1.0);
    EXPECT_GT(outcome.accuracyBefore, 0.5);

    for (const auto &st : comp.layers()) {
        ASSERT_TRUE(st.mask.has_value());
        ASSERT_TRUE(st.signs.has_value());
        EXPECT_GT(st.quantScale, 0.0f);
        // Weights on the quantization grid.
        const Tensor &w = *st.param.value;
        for (int64_t i = 0; i < w.numel(); ++i) {
            const float ratio = std::fabs(w.at(i)) / st.quantScale;
            EXPECT_NEAR(ratio, std::round(ratio), 1e-3);
        }
    }
}

TEST(AdmmPipeline, AccuracySurvivesCompression)
{
    Fixture f;
    AdmmConfig cfg = f.admmCfg();
    AdmmCompressor comp(*f.net, f.data, cfg);
    auto outcome = comp.run();
    // Paper shape: compression on an easy task costs little accuracy.
    EXPECT_GT(outcome.accuracyAfter, outcome.accuracyBefore - 0.15);
}

TEST(AdmmPipeline, PruneOnlyLeavesSignsFree)
{
    Fixture f;
    AdmmConfig cfg = f.admmCfg();
    cfg.polarize = false;
    cfg.quantize = false;
    AdmmCompressor comp(*f.net, f.data, cfg);
    auto outcome = comp.run();
    EXPECT_GT(outcome.pruneRatio, 1.0);
    for (const auto &st : comp.layers()) {
        EXPECT_TRUE(st.mask.has_value());
        EXPECT_FALSE(st.signs.has_value());
        EXPECT_EQ(st.quantScale, 0.0f);
    }
}

TEST(AdmmPipeline, PolarizeOnlyKeepsDensity)
{
    Fixture f;
    AdmmConfig cfg = f.admmCfg();
    cfg.prune = false;
    cfg.quantize = false;
    AdmmCompressor comp(*f.net, f.data, cfg);
    auto outcome = comp.run();
    EXPECT_EQ(outcome.signViolations, 0);
    EXPECT_DOUBLE_EQ(outcome.pruneRatio, 1.0);
}

TEST(AdmmPipeline, MaskSurvivesLaterPhases)
{
    Fixture f;
    AdmmConfig cfg = f.admmCfg();
    AdmmCompressor comp(*f.net, f.data, cfg);
    comp.run();
    for (const auto &st : comp.layers()) {
        WeightView v = st.view();
        for (int64_t j = 0; j < v.cols(); ++j)
            for (int64_t r = 0; r < v.rows(); ++r)
                if (v.get(r, j) != 0.0f) {
                    EXPECT_TRUE(
                        st.mask->colKept[static_cast<size_t>(j)]);
                    EXPECT_TRUE(
                        st.mask->rowKept[static_cast<size_t>(r)]);
                }
    }
}

TEST(AdmmPipeline, PlanRestrictedAfterPruning)
{
    Fixture f;
    AdmmConfig cfg = f.admmCfg();
    AdmmCompressor comp(*f.net, f.data, cfg);
    comp.run();
    for (const auto &st : comp.layers()) {
        EXPECT_EQ(st.plan.rows(), st.mask->keptRows());
        // Every planned row must be a kept row.
        for (int64_t p = 0; p < st.plan.rows(); ++p) {
            EXPECT_TRUE(st.mask->rowKept[static_cast<size_t>(
                st.plan.orderedRow(p))]);
        }
    }
}

TEST(AdmmPipeline, ReportAccountsCrossbars)
{
    Fixture f;
    AdmmConfig cfg = f.admmCfg();
    AdmmCompressor comp(*f.net, f.data, cfg);
    auto outcome = comp.run();
    auto report = buildReport(comp, outcome,
                              baselineMapping32(8, 8), formsMapping(8, 8, 8));
    EXPECT_GT(report.baselineCrossbars, report.formsCrossbars);
    // Polarization alone halves (splitting baseline) and 32->8 bit
    // quarters; with pruning the reduction must exceed 8x.
    EXPECT_GT(report.crossbarReduction, 8.0);
    EXPECT_EQ(report.layers.size(), comp.layers().size());
}

TEST(CrossbarAccounting, MatchesClosedForm)
{
    MappingSpec spec;
    spec.xbarRows = 128;
    spec.xbarCols = 128;
    spec.weightBits = 8;
    spec.cellBits = 2;
    spec.scheme = SignScheme::PolarizedForms;
    // 300 rows x 100 cols, 4 cells/weight: ceil(300/128)*ceil(400/128)
    EXPECT_EQ(crossbarsForMatrix(300, 100, spec), 3 * 4);
    spec.scheme = SignScheme::Splitting;
    EXPECT_EQ(crossbarsForMatrix(300, 100, spec), 24);
    EXPECT_EQ(crossbarsForMatrix(0, 100, spec), 0);
}

} // namespace
} // namespace forms::admm
