/**
 * @file
 * Tests for the zero-skipping logic: effective-bit arithmetic, the
 * fragment EIC shortcut vs. a brute-force maximum, equivalence of the
 * cycle-accurate shift-register circuit with the behavioral model, the
 * paper's Figure 7 worked example, and EIC monotonicity in fragment
 * size (the paper's core Figure 8 claim).
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "arch/zero_skip.hh"

namespace forms::arch {
namespace {

TEST(EffectiveBits, KnownValues)
{
    EXPECT_EQ(effectiveBits(0), 0);
    EXPECT_EQ(effectiveBits(1), 1);
    EXPECT_EQ(effectiveBits(2), 2);
    EXPECT_EQ(effectiveBits(3), 2);
    EXPECT_EQ(effectiveBits(0x2b), 6);       // 0b101011 (paper Fig. 7)
    EXPECT_EQ(effectiveBits(0x4b), 7);       // 0b1001011
    EXPECT_EQ(effectiveBits(0xffff), 16);
}

TEST(FragmentEic, EqualsBruteForceMax)
{
    Rng rng(1);
    for (int trial = 0; trial < 200; ++trial) {
        const size_t n = 1 + rng.below(16);
        std::vector<uint32_t> vals(n);
        for (auto &v : vals)
            v = static_cast<uint32_t>(rng.below(1u << 16));
        int brute = 0;
        for (uint32_t v : vals)
            brute = std::max(brute, effectiveBits(v));
        EXPECT_EQ(fragmentEic(vals), brute);
    }
}

TEST(FragmentEic, PaperFigure7Example)
{
    // inp1 = ...0010 1011 (6 bits), inp2 = ...0100 1011 (7 bits),
    // inp3 = ...0000 0110 (3 bits), inp4 = ...0011 0100 (6 bits)
    // -> required EIC is 7, set by inp2.
    std::vector<uint32_t> frag = {0x2b, 0x4b, 0x06, 0x34};
    EXPECT_EQ(fragmentEic(frag), 7);
}

TEST(FragmentEic, AllZeroFragmentSkipsEverything)
{
    std::vector<uint32_t> frag(8, 0);
    EXPECT_EQ(fragmentEic(frag), 0);
}

TEST(ShiftRegisterBank, DrainCyclesMatchEic)
{
    Rng rng(2);
    for (int trial = 0; trial < 100; ++trial) {
        const int lanes = 1 + static_cast<int>(rng.below(8));
        std::vector<uint32_t> vals(static_cast<size_t>(lanes));
        for (auto &v : vals)
            v = static_cast<uint32_t>(rng.below(1u << 16));

        ShiftRegisterBank bank(16, lanes);
        bank.load(vals);
        // Skip the leading all-zero cycles the way the controller does:
        // remainingCycles is exactly the EIC.
        EXPECT_EQ(bank.remainingCycles(), fragmentEic(vals));

        // Shift through all 16 cycles; count cycles until drained.
        int drained_after = 16;
        for (int cyc = 0; cyc < 16; ++cyc) {
            bank.shiftCycle();
            if (bank.allDrained()) {
                drained_after = cyc + 1;
                break;
            }
        }
        // The bank drains once every set bit has been emitted: with
        // MSB-first shifting that is 16 minus the number of trailing
        // zeros shared by all lanes (lowest set bit of the OR).
        uint32_t merged = 0;
        for (uint32_t v : vals)
            merged |= v;
        if (merged == 0) {
            EXPECT_TRUE(bank.allDrained());
        } else {
            int lowest_set = 0;
            while (((merged >> lowest_set) & 1u) == 0)
                ++lowest_set;
            EXPECT_EQ(drained_after, 16 - lowest_set);
        }
    }
}

TEST(ShiftRegisterBank, EmitsMsbFirst)
{
    ShiftRegisterBank bank(8, 1);
    bank.load({0b10110001u});
    std::vector<uint8_t> seen;
    for (int i = 0; i < 8; ++i)
        seen.push_back(bank.shiftCycle()[0]);
    const std::vector<uint8_t> expect = {1, 0, 1, 1, 0, 0, 0, 1};
    EXPECT_EQ(seen, expect);
    EXPECT_TRUE(bank.allDrained());
}

TEST(ShiftRegisterBank, NorAndTriggerSemantics)
{
    // After loading zeros the AND-of-NORs must be asserted immediately.
    ShiftRegisterBank bank(16, 4);
    bank.load({0, 0, 0, 0});
    EXPECT_TRUE(bank.allDrained());
    bank.load({0, 4, 0, 0});
    EXPECT_FALSE(bank.allDrained());
}

class EicMonotonicityTest : public ::testing::TestWithParam<int>
{
};

TEST_P(EicMonotonicityTest, LargerFragmentsNeedMoreCycles)
{
    // Property at the heart of Figure 8: for the same value stream,
    // average EIC is non-decreasing in fragment size.
    const int frag = GetParam();
    Rng rng(42);   // same stream for every instantiation
    std::vector<uint32_t> stream(4096);
    for (auto &v : stream) {
        // Heavy-tailed small values, as post-ReLU activations.
        const double x = std::exp(rng.gaussian(5.0, 2.0));
        v = static_cast<uint32_t>(std::min(x, 65535.0));
    }
    EicStats small(16), big(16);
    small.recordVector(stream, frag);
    big.recordVector(stream, frag * 2);
    EXPECT_LE(small.averageEic(), big.averageEic() + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(FragSizes, EicMonotonicityTest,
                         ::testing::Values(2, 4, 8, 16, 32, 64));

TEST(EicStats, SavingsComplementAverage)
{
    EicStats s(16);
    s.record(8);
    s.record(12);
    EXPECT_NEAR(s.averageEic(), 10.0, 1e-9);
    EXPECT_NEAR(s.cycleSavings(), 1.0 - 10.0 / 16.0, 1e-9);
}

TEST(EicStats, HistogramBins)
{
    EicStats s(16);
    s.record(0);
    s.record(16);
    s.record(16);
    EXPECT_EQ(s.histogram().bin(16), 2u);
    EXPECT_EQ(s.histogram().bin(0), 1u);
}

TEST(EicStatsDeathTest, RecordVectorNamesOutOfRangeValue)
{
    // A value off the input grid used to trip an opaque internal
    // assert deep in the histogram; the boundary check must name the
    // offending value, its position and the grid instead.
    EicStats s(8);
    const std::vector<uint32_t> vals = {1, 2, 300, 4};
    EXPECT_DEATH(s.recordVector(vals, 2), "300.*index 2.*8-bit");
    // The full grid range itself is fine.
    const std::vector<uint32_t> ok = {0, 255};
    s.recordVector(ok, 2);
    EXPECT_EQ(s.histogram().total(), 1u);
}

} // namespace
} // namespace forms::arch
