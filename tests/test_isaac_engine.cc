/**
 * @file
 * Tests for the ISAAC offset-encoding engine: the popcount fixup must
 * reconstruct signed dot products exactly, the baseline must never
 * skip cycles, and its fixup overhead must be visible in the stats —
 * the costs FORMS's polarization removes.
 */

#include <gtest/gtest.h>

#include "arch/isaac_engine.hh"
#include "common/rng.hh"

namespace forms::arch {
namespace {

std::vector<std::vector<int32_t>>
randomSignedWeights(int rows, int cols, int bits, uint64_t seed)
{
    Rng rng(seed);
    const int32_t lo = -(1 << (bits - 1));
    const int32_t hi = (1 << (bits - 1)) - 1;
    std::vector<std::vector<int32_t>> w(
        static_cast<size_t>(rows),
        std::vector<int32_t>(static_cast<size_t>(cols)));
    for (auto &row : w)
        for (auto &v : row)
            v = lo + static_cast<int32_t>(
                    rng.below(static_cast<uint64_t>(hi - lo + 1)));
    return w;
}

std::vector<uint32_t>
randomInputs(int n, int bits, uint64_t seed)
{
    Rng rng(seed);
    std::vector<uint32_t> v(static_cast<size_t>(n));
    for (auto &x : v)
        x = static_cast<uint32_t>(rng.below(1u << bits));
    return v;
}

class IsaacEngineTest : public ::testing::TestWithParam<int>
{
};

TEST_P(IsaacEngineTest, OffsetFixupIsExact)
{
    const int rows = GetParam();
    IsaacConfig cfg;
    cfg.inputBits = 12;
    auto weights = randomSignedWeights(rows, 12, cfg.weightBits,
                                       50 + rows);
    IsaacEngine engine(weights, cfg);
    auto inputs = randomInputs(rows, cfg.inputBits, 7);
    auto got = engine.mvm(inputs);
    auto expect = engine.reference(inputs);
    ASSERT_EQ(got.size(), expect.size());
    for (size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i], expect[i]) << "col " << i;
}

INSTANTIATE_TEST_SUITE_P(RowCounts, IsaacEngineTest,
                         ::testing::Values(4, 16, 64, 128));

TEST(IsaacEngine, NegativeWeightsHandled)
{
    IsaacConfig cfg;
    cfg.inputBits = 8;
    std::vector<std::vector<int32_t>> w = {
        {-128, 127}, {-1, 1}, {0, -64}};
    IsaacEngine engine(w, cfg);
    std::vector<uint32_t> in = {255, 3, 100};
    auto got = engine.mvm(in);
    EXPECT_EQ(got[0], -128 * 255 - 1 * 3 + 0);
    EXPECT_EQ(got[1], 127 * 255 + 1 * 3 - 64 * 100);
}

TEST(IsaacEngine, NeverSkipsCycles)
{
    // Even all-zero inputs burn the full bit budget — the baseline has
    // no zero-skipping (the FORMS engine would take 0 cycles here).
    IsaacConfig cfg;
    cfg.inputBits = 16;
    auto weights = randomSignedWeights(8, 4, cfg.weightBits, 3);
    IsaacEngine engine(weights, cfg);
    std::vector<uint32_t> zeros(8, 0);
    IsaacStats stats;
    auto out = engine.mvm(zeros, &stats);
    EXPECT_EQ(stats.bitCycles, 16u);
    for (int64_t v : out)
        EXPECT_EQ(v, 0);
}

TEST(IsaacEngine, FixupOverheadAccounted)
{
    IsaacConfig cfg;
    cfg.inputBits = 16;
    auto weights = randomSignedWeights(16, 8, cfg.weightBits, 5);
    IsaacEngine engine(weights, cfg);
    auto inputs = randomInputs(16, 16, 9);
    IsaacStats stats;
    engine.mvm(inputs, &stats);
    // One bias subtraction per column per bit cycle.
    EXPECT_EQ(stats.biasSubtractions, 16u * 8u);
    EXPECT_EQ(stats.adcSamples,
              16u * 8u * static_cast<unsigned>(cfg.cellsPerWeight()));
    EXPECT_GT(stats.adcEnergyPj, 0.0);
}

TEST(IsaacEngine, RejectsOutOfRangeWeights)
{
    IsaacConfig cfg;
    std::vector<std::vector<int32_t>> w = {{300}};
    EXPECT_DEATH(IsaacEngine(w, cfg), "");
}

} // namespace
} // namespace forms::arch
