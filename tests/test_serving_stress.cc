/**
 * @file
 * Serving-layer concurrency stress: many producer threads hammering
 * one server with a tiny coalescing window, shutdown racing in-flight
 * work, and concurrent shutdown calls. Every submitted request must
 * resolve exactly once — no lost futures, no duplicated responses, no
 * hangs — and requests accepted before shutdown must still be served.
 *
 * This suite (with tests/test_serving.cc and tests/test_threadpool.cc)
 * also runs under ThreadSanitizer in CI (the tsan lane,
 * -DFORMS_SANITIZE_THREAD=ON), which turns any data race in the
 * submit/batch/shutdown paths into a hard failure.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "serve/server.hh"

namespace forms {
namespace {

/** Echoes each request's id into a 1-element logits row. */
class EchoBackend : public serve::Backend
{
  public:
    std::atomic<uint64_t> served{0};

    Tensor run(const Tensor &batch, const uint64_t *ids,
               std::vector<sim::RuntimeReport> &per) override
    {
        const int64_t n = batch.dim(0);
        per.assign(static_cast<size_t>(n), sim::RuntimeReport{});
        Tensor out({n, 1});
        for (int64_t i = 0; i < n; ++i)
            out.data()[i] =
                static_cast<float>(ids[static_cast<size_t>(i)]);
        served.fetch_add(static_cast<uint64_t>(n));
        return out;
    }
};

TEST(ServingStress, ManyProducersNoLossNoDuplication)
{
    EchoBackend backend;
    serve::ServerConfig sc;
    sc.maxBatch = 5;
    sc.maxDelayUs = 200;      // tiny window: constant flush pressure
    sc.queueCapacity = 0;     // unbounded: nothing may be shed
    serve::Server server(backend, sc);

    constexpr int kThreads = 6, kPerThread = 40;
    std::vector<std::vector<std::future<serve::Response>>> futs(
        kThreads);
    std::vector<std::thread> producers;
    for (int t = 0; t < kThreads; ++t) {
        producers.emplace_back([&, t] {
            for (int i = 0; i < kPerThread; ++i) {
                const uint64_t id =
                    static_cast<uint64_t>(t) * 1000 +
                    static_cast<uint64_t>(i);
                futs[static_cast<size_t>(t)].push_back(
                    server.submit(Tensor({2}, 0.0f), id));
            }
        });
    }
    for (auto &p : producers)
        p.join();

    std::set<uint64_t> seen;
    for (int t = 0; t < kThreads; ++t) {
        for (int i = 0; i < kPerThread; ++i) {
            const uint64_t id =
                static_cast<uint64_t>(t) * 1000 +
                static_cast<uint64_t>(i);
            serve::Response r =
                futs[static_cast<size_t>(t)][static_cast<size_t>(i)]
                    .get();
            ASSERT_EQ(r.status, serve::Status::Ok) << "id " << id;
            EXPECT_EQ(r.requestId, id);
            EXPECT_EQ(r.logits.data()[0], static_cast<float>(id))
                << "response routed to the wrong request";
            EXPECT_GE(r.batchSize, 1);
            EXPECT_LE(r.batchSize, sc.maxBatch);
            EXPECT_TRUE(seen.insert(id).second)
                << "duplicate response for id " << id;
        }
    }
    EXPECT_EQ(seen.size(),
              static_cast<size_t>(kThreads) * kPerThread);
    EXPECT_EQ(backend.served.load(),
              static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(ServingStress, ShutdownRacesInFlightSubmits)
{
    EchoBackend backend;
    serve::ServerConfig sc;
    sc.maxBatch = 4;
    sc.maxDelayUs = 100;
    sc.queueCapacity = 0;
    serve::Server server(backend, sc);

    constexpr int kThreads = 4, kPerThread = 60;
    std::vector<std::vector<std::future<serve::Response>>> futs(
        kThreads);
    std::vector<std::thread> producers;
    for (int t = 0; t < kThreads; ++t) {
        producers.emplace_back([&, t] {
            for (int i = 0; i < kPerThread; ++i) {
                const uint64_t id =
                    static_cast<uint64_t>(t) * 1000 +
                    static_cast<uint64_t>(i);
                futs[static_cast<size_t>(t)].push_back(
                    server.submit(Tensor({2}, 0.0f), id));
                if (i % 8 == 0)
                    std::this_thread::yield();
            }
        });
    }
    // Race shutdown into the middle of the submit storm.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    server.shutdown();
    for (auto &p : producers)
        p.join();

    // Every future resolves exactly once: accepted requests are
    // served (shutdown drains), late ones get the typed refusal.
    uint64_t ok = 0, shut = 0;
    for (int t = 0; t < kThreads; ++t) {
        for (auto &f : futs[static_cast<size_t>(t)]) {
            serve::Response r = f.get();
            if (r.status == serve::Status::Ok) {
                EXPECT_EQ(r.logits.data()[0],
                          static_cast<float>(r.requestId));
                ++ok;
            } else {
                EXPECT_EQ(r.status, serve::Status::ShutDown);
                ++shut;
            }
        }
    }
    EXPECT_EQ(ok + shut,
              static_cast<uint64_t>(kThreads) * kPerThread);
    EXPECT_EQ(backend.served.load(), ok);
}

TEST(ServingStress, ConcurrentShutdownIsSafe)
{
    EchoBackend backend;
    serve::ServerConfig sc;
    sc.maxBatch = 2;
    sc.maxDelayUs = 100;
    serve::Server server(backend, sc);

    auto f = server.submit(Tensor({2}, 0.0f), 7);
    std::vector<std::thread> closers;
    for (int i = 0; i < 4; ++i)
        closers.emplace_back([&] { server.shutdown(); });
    for (auto &c : closers)
        c.join();
    EXPECT_EQ(f.get().status, serve::Status::Ok);
    // The destructor's shutdown after explicit shutdown is also a
    // no-op; leaving scope must not crash or hang.
}

TEST(ServingStress, DestructorDrainsPendingWork)
{
    EchoBackend backend;
    std::vector<std::future<serve::Response>> futs;
    {
        serve::ServerConfig sc;
        sc.maxBatch = 100;
        sc.maxDelayUs = 60LL * 1000 * 1000;
        serve::Server server(backend, sc);
        for (int i = 0; i < 5; ++i)
            futs.push_back(server.submit(Tensor({2}, 0.0f),
                                         static_cast<uint64_t>(i)));
        // Destructor runs here with all 5 still queued.
    }
    for (int i = 0; i < 5; ++i) {
        serve::Response r = futs[static_cast<size_t>(i)].get();
        EXPECT_EQ(r.status, serve::Status::Ok);
        EXPECT_EQ(r.logits.data()[0], static_cast<float>(i));
    }
}

} // namespace
} // namespace forms
