/**
 * @file
 * Serving-layer concurrency stress: many producer threads hammering
 * one server with a tiny coalescing window, shutdown racing in-flight
 * work, and concurrent shutdown calls. Every submitted request must
 * resolve exactly once — no lost futures, no duplicated responses, no
 * hangs — and requests accepted before shutdown must still be served.
 *
 * This suite (with tests/test_serving.cc and tests/test_threadpool.cc)
 * also runs under ThreadSanitizer in CI (the tsan lane,
 * -DFORMS_SANITIZE_THREAD=ON), which turns any data race in the
 * submit/batch/shutdown paths into a hard failure.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "compile/passes.hh"
#include "nn/layers.hh"
#include "serve/backends.hh"
#include "serve/server.hh"
#include "sim/graph_runtime.hh"

namespace forms {
namespace {

/** Echoes each request's id into a 1-element logits row. */
class EchoBackend : public serve::Backend
{
  public:
    std::atomic<uint64_t> served{0};

    Tensor run(const Tensor &batch, const uint64_t *ids,
               std::vector<sim::RuntimeReport> &per) override
    {
        const int64_t n = batch.dim(0);
        per.assign(static_cast<size_t>(n), sim::RuntimeReport{});
        Tensor out({n, 1});
        for (int64_t i = 0; i < n; ++i)
            out.data()[i] =
                static_cast<float>(ids[static_cast<size_t>(i)]);
        served.fetch_add(static_cast<uint64_t>(n));
        return out;
    }
};

TEST(ServingStress, ManyProducersNoLossNoDuplication)
{
    EchoBackend backend;
    serve::ServerConfig sc;
    sc.maxBatch = 5;
    sc.maxDelayUs = 200;      // tiny window: constant flush pressure
    sc.queueCapacity = 0;     // unbounded: nothing may be shed
    serve::Server server(backend, sc);

    constexpr int kThreads = 6, kPerThread = 40;
    std::vector<std::vector<std::future<serve::Response>>> futs(
        kThreads);
    std::vector<std::thread> producers;
    for (int t = 0; t < kThreads; ++t) {
        producers.emplace_back([&, t] {
            for (int i = 0; i < kPerThread; ++i) {
                const uint64_t id =
                    static_cast<uint64_t>(t) * 1000 +
                    static_cast<uint64_t>(i);
                futs[static_cast<size_t>(t)].push_back(
                    server.submit(Tensor({2}, 0.0f), id));
            }
        });
    }
    for (auto &p : producers)
        p.join();

    std::set<uint64_t> seen;
    for (int t = 0; t < kThreads; ++t) {
        for (int i = 0; i < kPerThread; ++i) {
            const uint64_t id =
                static_cast<uint64_t>(t) * 1000 +
                static_cast<uint64_t>(i);
            serve::Response r =
                futs[static_cast<size_t>(t)][static_cast<size_t>(i)]
                    .get();
            ASSERT_EQ(r.status, serve::Status::Ok) << "id " << id;
            EXPECT_EQ(r.requestId, id);
            EXPECT_EQ(r.logits.data()[0], static_cast<float>(id))
                << "response routed to the wrong request";
            EXPECT_GE(r.batchSize, 1);
            EXPECT_LE(r.batchSize, sc.maxBatch);
            EXPECT_TRUE(seen.insert(id).second)
                << "duplicate response for id " << id;
        }
    }
    EXPECT_EQ(seen.size(),
              static_cast<size_t>(kThreads) * kPerThread);
    EXPECT_EQ(backend.served.load(),
              static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(ServingStress, ShutdownRacesInFlightSubmits)
{
    EchoBackend backend;
    serve::ServerConfig sc;
    sc.maxBatch = 4;
    sc.maxDelayUs = 100;
    sc.queueCapacity = 0;
    serve::Server server(backend, sc);

    constexpr int kThreads = 4, kPerThread = 60;
    std::vector<std::vector<std::future<serve::Response>>> futs(
        kThreads);
    std::vector<std::thread> producers;
    for (int t = 0; t < kThreads; ++t) {
        producers.emplace_back([&, t] {
            for (int i = 0; i < kPerThread; ++i) {
                const uint64_t id =
                    static_cast<uint64_t>(t) * 1000 +
                    static_cast<uint64_t>(i);
                futs[static_cast<size_t>(t)].push_back(
                    server.submit(Tensor({2}, 0.0f), id));
                if (i % 8 == 0)
                    std::this_thread::yield();
            }
        });
    }
    // Race shutdown into the middle of the submit storm.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    server.shutdown();
    for (auto &p : producers)
        p.join();

    // Every future resolves exactly once: accepted requests are
    // served (shutdown drains), late ones get the typed refusal.
    uint64_t ok = 0, shut = 0;
    for (int t = 0; t < kThreads; ++t) {
        for (auto &f : futs[static_cast<size_t>(t)]) {
            serve::Response r = f.get();
            if (r.status == serve::Status::Ok) {
                EXPECT_EQ(r.logits.data()[0],
                          static_cast<float>(r.requestId));
                ++ok;
            } else {
                EXPECT_EQ(r.status, serve::Status::ShutDown);
                ++shut;
            }
        }
    }
    EXPECT_EQ(ok + shut,
              static_cast<uint64_t>(kThreads) * kPerThread);
    EXPECT_EQ(backend.served.load(), ok);
}

TEST(ServingStress, ConcurrentShutdownIsSafe)
{
    EchoBackend backend;
    serve::ServerConfig sc;
    sc.maxBatch = 2;
    sc.maxDelayUs = 100;
    serve::Server server(backend, sc);

    auto f = server.submit(Tensor({2}, 0.0f), 7);
    std::vector<std::thread> closers;
    for (int i = 0; i < 4; ++i)
        closers.emplace_back([&] { server.shutdown(); });
    for (auto &c : closers)
        c.join();
    EXPECT_EQ(f.get().status, serve::Status::Ok);
    // The destructor's shutdown after explicit shutdown is also a
    // no-op; leaving scope must not crash or hang.
}

TEST(ServingStress, DestructorDrainsPendingWork)
{
    EchoBackend backend;
    std::vector<std::future<serve::Response>> futs;
    {
        serve::ServerConfig sc;
        sc.maxBatch = 100;
        sc.maxDelayUs = 60LL * 1000 * 1000;
        serve::Server server(backend, sc);
        for (int i = 0; i < 5; ++i)
            futs.push_back(server.submit(Tensor({2}, 0.0f),
                                         static_cast<uint64_t>(i)));
        // Destructor runs here with all 5 still queued.
    }
    for (int i = 0; i < 5; ++i) {
        serve::Response r = futs[static_cast<size_t>(i)].get();
        EXPECT_EQ(r.status, serve::Status::Ok);
        EXPECT_EQ(r.logits.data()[0], static_cast<float>(i));
    }
}

/** Throws ChipFailure on the first `failures` batches, then echoes. */
class FlakyBackend : public EchoBackend
{
  public:
    explicit FlakyBackend(int failures) : failures_(failures) {}

    Tensor run(const Tensor &batch, const uint64_t *ids,
               std::vector<sim::RuntimeReport> &per) override
    {
        if (failures_.fetch_sub(1) > 0)
            throw serve::ChipFailure(0);
        return EchoBackend::run(batch, ids, per);
    }

  private:
    std::atomic<int> failures_;
};

TEST(ServingStress, ChipFailureRequeuesWithoutLossOrDuplication)
{
    // The first 2 batches die with a chip; every request must still
    // resolve exactly once, Ok, in its original identity — and at
    // least the head of the queue has visibly survived requeues.
    FlakyBackend backend(2);
    serve::ServerConfig sc;
    sc.maxBatch = 4;
    sc.maxDelayUs = 200;
    sc.queueCapacity = 0;
    sc.maxRequeues = 3;
    serve::Server server(backend, sc);

    constexpr int kRequests = 24;
    std::vector<std::future<serve::Response>> futs;
    for (int i = 0; i < kRequests; ++i)
        futs.push_back(server.submit(Tensor({2}, 0.0f),
                                     static_cast<uint64_t>(i)));

    std::set<uint64_t> seen;
    int requeued_ok = 0;
    for (int i = 0; i < kRequests; ++i) {
        serve::Response r = futs[static_cast<size_t>(i)].get();
        ASSERT_EQ(r.status, serve::Status::Ok) << "id " << i;
        EXPECT_EQ(r.requestId, static_cast<uint64_t>(i));
        EXPECT_EQ(r.logits.data()[0], static_cast<float>(i));
        EXPECT_TRUE(seen.insert(r.requestId).second)
            << "duplicate response for id " << i;
        requeued_ok += r.requeues > 0;
    }
    EXPECT_EQ(seen.size(), static_cast<size_t>(kRequests));
    EXPECT_GT(requeued_ok, 0)
        << "two thrown batches left no visible requeue";
}

TEST(ServingStress, RequeueBudgetExhaustionIsTypedNotSilent)
{
    // A backend that always throws: every request burns its full
    // retry budget and resolves with Status::Requeued — never hangs,
    // never resolves twice.
    FlakyBackend backend(1 << 20);
    serve::ServerConfig sc;
    sc.maxBatch = 2;
    sc.maxDelayUs = 100;
    sc.maxRequeues = 2;
    serve::Server server(backend, sc);

    std::vector<std::future<serve::Response>> futs;
    for (int i = 0; i < 6; ++i)
        futs.push_back(server.submit(Tensor({2}, 0.0f),
                                     static_cast<uint64_t>(i)));
    for (int i = 0; i < 6; ++i) {
        serve::Response r = futs[static_cast<size_t>(i)].get();
        EXPECT_EQ(r.status, serve::Status::Requeued) << "id " << i;
        EXPECT_EQ(r.requestId, static_cast<uint64_t>(i));
        EXPECT_EQ(r.requeues, sc.maxRequeues);
    }
    EXPECT_EQ(backend.served.load(), 0u);
}

/** Small compiled conv net shared by the failover fleet tests. */
struct CompiledSmallNet
{
    std::unique_ptr<nn::Network> net;
    compile::Graph graph;
    std::vector<admm::LayerState> states;

    explicit CompiledSmallNet(uint64_t seed)
    {
        Rng rng(seed);
        net = std::make_unique<nn::Network>();
        net->emplace<nn::Conv2D>("stem", 3, 8, 3, 1, 1, rng);
        net->emplace<nn::ReLU>("relu0");
        net->emplace<nn::MaxPool2D>("pool", 2, 2);
        net->emplace<nn::Conv2D>("mid", 8, 4, 3, 1, 1, rng);
        net->emplace<nn::ReLU>("relu1");
        net->emplace<nn::Flatten>("flat");
        net->emplace<nn::Dense>("fc", 4 * 6 * 6, 3, rng);
        graph = compile::lowerNetwork(*net);
        graph.inferShapes({3, 12, 12});
        states = sim::snapshotCompress(*net, 8, 8);
    }
};

/** ADC quantization + device variation + read noise all on. */
sim::RuntimeConfig
noisyConfig(ThreadPool *pool)
{
    sim::RuntimeConfig cfg;
    cfg.mapping.xbarRows = 64;
    cfg.mapping.xbarCols = 64;
    cfg.mapping.fragSize = 8;
    cfg.mapping.inputBits = 8;
    cfg.engine.adcBits = 3;
    cfg.engine.cell.variationSigma = 0.1;
    cfg.engine.readNoiseSigma = 0.02;
    cfg.pool = pool;
    return cfg;
}

TEST(ServingStress, ChipDeathMidStormFailsOverBitExactly)
{
    // A 3-chip FailoverBackend loses chip 1 between two request
    // waves. Every request of both waves must resolve Ok exactly
    // once, and every served logits row must memcmp-equal the
    // request-keyed offline reference — the survivors' re-partitioned
    // fleet serves the same bits the full fleet would have
    // (docs/SERVING.md + serve/backends.hh).
    CompiledSmallNet c(501);
    Rng rng(502);
    constexpr int kWave = 8, kWaves = 2;
    Tensor all({kWave * kWaves, 3, 12, 12});
    all.fillUniform(rng, 0.0f, 1.0f);

    // Request-keyed offline reference on a single-chip GraphRuntime:
    // the serving contract makes fleet size and batching invisible.
    ThreadPool ref_pool(4);
    sim::GraphRuntime ref_rt(c.graph, c.states, noisyConfig(&ref_pool));
    std::vector<uint64_t> ids(kWave * kWaves);
    for (size_t i = 0; i < ids.size(); ++i)
        ids[i] = static_cast<uint64_t>(i);
    const Tensor ref = ref_rt.forwardRequests(all, ids.data(), nullptr);
    const int64_t elems = all.numel() / all.dim(0);
    const int64_t out_elems = ref.numel() / ref.dim(0);

    ThreadPool pool(4);
    sim::PipelineRuntimeConfig pcfg;
    pcfg.runtime = noisyConfig(&pool);
    pcfg.microBatch = 2;
    compile::ScheduleConfig scfg;
    scfg.chips = 3;
    serve::FailoverBackend backend(c.graph, c.states, pcfg, scfg);
    ASSERT_EQ(backend.fleetChips(), 3);

    serve::ServerConfig sc;
    sc.maxBatch = 4;
    sc.maxDelayUs = 200;
    sc.queueCapacity = 0;
    serve::Server server(backend, sc);

    auto submit_wave = [&](int wave) {
        std::vector<std::future<serve::Response>> futs;
        Shape sample_shape(all.shape().begin() + 1, all.shape().end());
        for (int i = wave * kWave; i < (wave + 1) * kWave; ++i) {
            Tensor img(sample_shape);
            std::memcpy(img.data(), all.data() + i * elems,
                        static_cast<size_t>(elems) * sizeof(float));
            futs.push_back(
                server.submit(std::move(img), static_cast<uint64_t>(i)));
        }
        return futs;
    };
    auto check_wave = [&](std::vector<std::future<serve::Response>> futs,
                          int wave, int *requeued) {
        for (int i = 0; i < kWave; ++i) {
            const int id = wave * kWave + i;
            serve::Response r = futs[static_cast<size_t>(i)].get();
            ASSERT_EQ(r.status, serve::Status::Ok) << "id " << id;
            EXPECT_EQ(r.requestId, static_cast<uint64_t>(id));
            ASSERT_EQ(r.logits.numel(), out_elems);
            EXPECT_EQ(0,
                      std::memcmp(r.logits.data(),
                                  ref.data() + id * out_elems,
                                  static_cast<size_t>(out_elems) *
                                      sizeof(float)))
                << "served logits diverge from the offline reference "
                   "for id " << id;
            if (requeued)
                *requeued += r.requeues > 0;
        }
    };

    check_wave(submit_wave(0), 0, nullptr);

    // The kill lands while the queue is empty, so the first wave-2
    // batch deterministically observes it, dies, and is requeued onto
    // the surviving 2-chip fleet.
    backend.killChip(1);
    int requeued = 0;
    check_wave(submit_wave(1), 1, &requeued);
    EXPECT_EQ(backend.failovers(), 1);
    EXPECT_EQ(backend.aliveChips(), 2);
    EXPECT_GT(requeued, 0) << "no wave-2 request saw the failover";

    // Killing the rest exhausts the fleet: further requests burn
    // their budget and resolve with the typed Status::Requeued.
    backend.killChip(0);
    backend.killChip(2);
    auto last = submit_wave(0);
    for (auto &f : last) {
        serve::Response r = f.get();
        EXPECT_EQ(r.status, serve::Status::Requeued);
    }
    EXPECT_EQ(backend.aliveChips(), 0);
}

} // namespace
} // namespace forms
