/**
 * @file
 * Tests for the circuit cost roll-ups against the paper's published
 * Table III (MCU components) and Table IV (chip totals) values, plus
 * the iso-area ADC provisioning rule.
 */

#include <gtest/gtest.h>

#include "reram/components.hh"

namespace forms::reram {
namespace {

TEST(McuConfig, FormsFragmentToAdcBits)
{
    EXPECT_EQ(McuConfig::forms(4).adcBits, 3);
    EXPECT_EQ(McuConfig::forms(8).adcBits, 4);
    EXPECT_EQ(McuConfig::forms(16).adcBits, 5);
}

TEST(McuConfig, IsoAreaAdcCounts)
{
    // Four 4-bit ADCs fit in one 8-bit ADC's area (paper §IV-C).
    EXPECT_EQ(McuConfig::forms(8).adcsPerCrossbar, 4);
    // Smaller ADCs -> more of them; larger -> fewer.
    EXPECT_GT(McuConfig::forms(4).adcsPerCrossbar, 4);
    EXPECT_LT(McuConfig::forms(16).adcsPerCrossbar, 4);
    EXPECT_GE(McuConfig::forms(16).adcsPerCrossbar, 1);
}

TEST(McuCost, FormsTableIIIComponentTotals)
{
    McuCost cost = buildMcuCost(McuConfig::forms(8));
    // Sum of the FORMS column of Table III:
    // 15.2 + 4 + 0.0055 + 2.44 + 0.2 + 0.01 + 0.012 = 21.8675 mW.
    EXPECT_NEAR(cost.totalPowerMw, 21.87, 0.1);
    EXPECT_NEAR(cost.totalAreaMm2, 0.00966, 0.0002);
    EXPECT_EQ(cost.components.size(), 7u);
}

TEST(McuCost, IsaacTableIIIComponentTotals)
{
    McuCost cost = buildMcuCost(McuConfig::isaac());
    // 16 + 4 + 0.01 + 2.43 + 0.2 = 22.64 mW.
    EXPECT_NEAR(cost.totalPowerMw, 22.64, 0.1);
    EXPECT_NEAR(cost.totalAreaMm2, 0.01009, 0.0002);
    EXPECT_EQ(cost.components.size(), 5u);   // no skip / sign logic
}

TEST(McuCost, FormsAdcBlockMatchesTable)
{
    McuCost cost = buildMcuCost(McuConfig::forms(8));
    const auto &adc = cost.components.front();
    EXPECT_EQ(adc.name, "ADC");
    EXPECT_EQ(adc.count, 32);
    EXPECT_NEAR(adc.powerMw, 15.2, 0.05);
    EXPECT_NEAR(adc.areaMm2, 0.0091, 0.0002);
}

TEST(ChipCost, FormsTableIVRollup)
{
    ChipCost cost = buildChipCost(ChipConfig::forms(8));
    // Table IV: 12 MCUs = 280.05 mW / 0.152 mm^2, tile = 333.1 / 0.39,
    // 168 tiles = 55960.8 mW, chip = 66360.8 mW / 89.15 mm^2.
    EXPECT_NEAR(cost.mcuPowerMw * 12, 280.05, 1.5);
    EXPECT_NEAR(cost.mcuAreaMm2 * 12, 0.152, 0.002);
    EXPECT_NEAR(cost.tilePowerMw, 333.1, 1.5);
    EXPECT_NEAR(cost.tileAreaMm2, 0.39, 0.005);
    EXPECT_NEAR(cost.chipPowerMw, 66360.8, 300.0);
    EXPECT_NEAR(cost.chipAreaMm2, 88.4, 1.5);
}

TEST(ChipCost, IsaacTableIVRollup)
{
    ChipCost cost = buildChipCost(ChipConfig::isaac());
    EXPECT_NEAR(cost.mcuPowerMw * 12, 288.96, 1.5);
    EXPECT_NEAR(cost.tilePowerMw, 329.81, 1.5);
    EXPECT_NEAR(cost.chipPowerMw, 65808.08, 300.0);
    EXPECT_NEAR(cost.chipAreaMm2, 85.1, 1.5);
}

TEST(ChipCost, FormsIsaacParity)
{
    // The paper's iso-cost claim: FORMS within ~1% power and ~5% area.
    ChipCost forms = buildChipCost(ChipConfig::forms(8));
    ChipCost isaac = buildChipCost(ChipConfig::isaac());
    EXPECT_NEAR(forms.chipPowerMw / isaac.chipPowerMw, 1.0, 0.02);
    EXPECT_NEAR(forms.chipAreaMm2 / isaac.chipAreaMm2, 1.0, 0.06);
}

TEST(DaDianNao, TableIVTotals)
{
    DaDianNaoCost d;
    EXPECT_NEAR(d.chipPowerMw(), 20058.8, 1.0);
    EXPECT_NEAR(d.chipAreaMm2(), 87.75, 0.1);
}

} // namespace
} // namespace forms::reram
