/**
 * @file
 * Property tests for fragment indexing: every polarization policy must
 * produce a valid permutation, fragments must partition the rows, and
 * the pruning restriction must preserve order and drop exactly the
 * masked rows. Parameterized over policies and fragment sizes.
 */

#include <gtest/gtest.h>

#include <set>

#include "admm/fragment.hh"

namespace forms::admm {
namespace {

using PlanParam = std::tuple<PolarizationPolicy, int>;

class FragmentPlanTest : public ::testing::TestWithParam<PlanParam>
{
};

TEST_P(FragmentPlanTest, OrderingIsPermutation)
{
    auto [policy, frag] = GetParam();
    const int64_t cout = 6, cin = 5, k = 3;
    FragmentPlan plan = FragmentPlan::forConv(cout, cin, k, frag, policy);
    EXPECT_EQ(plan.rows(), cin * k * k);
    std::set<int64_t> seen;
    for (int64_t p = 0; p < plan.rows(); ++p) {
        const int64_t r = plan.orderedRow(p);
        EXPECT_GE(r, 0);
        EXPECT_LT(r, plan.rows());
        EXPECT_TRUE(seen.insert(r).second) << "duplicate row " << r;
    }
    EXPECT_EQ(static_cast<int64_t>(seen.size()), plan.rows());
}

TEST_P(FragmentPlanTest, FragmentsPartitionRows)
{
    auto [policy, frag] = GetParam();
    FragmentPlan plan = FragmentPlan::forConv(4, 3, 3, frag, policy);
    std::set<int64_t> covered;
    int64_t total = 0;
    for (int64_t f = 0; f < plan.fragmentsPerCol(); ++f) {
        const auto rows = plan.fragmentRowIndices(f);
        EXPECT_LE(static_cast<int>(rows.size()), frag);
        if (f < plan.fragmentsPerCol() - 1)
            EXPECT_EQ(static_cast<int>(rows.size()), frag);
        for (int64_t r : rows)
            EXPECT_TRUE(covered.insert(r).second);
        total += static_cast<int64_t>(rows.size());
    }
    EXPECT_EQ(total, plan.rows());
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndSizes, FragmentPlanTest,
    ::testing::Combine(
        ::testing::Values(PolarizationPolicy::WMajor,
                          PolarizationPolicy::HMajor,
                          PolarizationPolicy::CMajor),
        ::testing::Values(1, 3, 4, 8, 16)));

TEST(FragmentPlan, WMajorMatchesNaturalOrder)
{
    FragmentPlan plan = FragmentPlan::forConv(
        2, 3, 3, 4, PolarizationPolicy::WMajor);
    for (int64_t p = 0; p < plan.rows(); ++p)
        EXPECT_EQ(plan.orderedRow(p), p);
}

TEST(FragmentPlan, CMajorGroupsChannels)
{
    // C-major: the first cin entries are position (h=0, w=0) across
    // channels, i.e. natural rows 0, k*k, 2*k*k, ...
    const int64_t cin = 4, k = 3;
    FragmentPlan plan = FragmentPlan::forConv(
        2, cin, k, 4, PolarizationPolicy::CMajor);
    for (int64_t c = 0; c < cin; ++c)
        EXPECT_EQ(plan.orderedRow(c), c * k * k);
}

TEST(FragmentPlan, HMajorSwapsHAndW)
{
    const int64_t cin = 1, k = 3;
    FragmentPlan plan = FragmentPlan::forConv(
        2, cin, k, 3, PolarizationPolicy::HMajor);
    // H-major ordering for c=0: (w=0,h=0..2) -> natural rows 0, 3, 6.
    EXPECT_EQ(plan.orderedRow(0), 0);
    EXPECT_EQ(plan.orderedRow(1), 3);
    EXPECT_EQ(plan.orderedRow(2), 6);
}

TEST(FragmentPlan, DensePlan)
{
    FragmentPlan plan = FragmentPlan::forDense(10, 25, 8);
    EXPECT_EQ(plan.rows(), 25);
    EXPECT_EQ(plan.cols(), 10);
    EXPECT_EQ(plan.fragmentsPerCol(), 4);   // ceil(25/8)
    EXPECT_EQ(plan.fragmentRows(3), 1);     // tail fragment
}

TEST(FragmentPlan, RestrictedToRowsPreservesOrder)
{
    FragmentPlan plan = FragmentPlan::forConv(
        2, 2, 3, 4, PolarizationPolicy::CMajor);
    std::vector<uint8_t> kept(static_cast<size_t>(plan.rows()), 1);
    kept[3] = 0;
    kept[7] = 0;
    kept[11] = 0;
    FragmentPlan sub = plan.restrictedToRows(kept);
    EXPECT_EQ(sub.rows(), plan.rows() - 3);
    // Survivors appear in the same relative order as in the original.
    int64_t prev_pos = -1;
    for (int64_t p = 0; p < sub.rows(); ++p) {
        const int64_t nat = sub.orderedRow(p);
        EXPECT_TRUE(kept[static_cast<size_t>(nat)]);
        int64_t pos_in_orig = -1;
        for (int64_t q = 0; q < plan.rows(); ++q)
            if (plan.orderedRow(q) == nat) {
                pos_in_orig = q;
                break;
            }
        EXPECT_GT(pos_in_orig, prev_pos);
        prev_pos = pos_in_orig;
    }
}

TEST(SignMap, StoreAndRetrieve)
{
    SignMap m(3, 4);
    m.set(2, 3, -1);
    m.set(0, 0, -1);
    EXPECT_EQ(m.get(2, 3), -1);
    EXPECT_EQ(m.get(0, 0), -1);
    EXPECT_EQ(m.get(1, 1), 1);
    EXPECT_EQ(m.countPositive(), 10);
}

TEST(WeightView, ConvViewMatchesTensorLayout)
{
    Tensor w({2, 3, 3, 3});
    for (int64_t i = 0; i < w.numel(); ++i)
        w.at(i) = static_cast<float>(i);
    WeightView v = WeightView::conv(w);
    EXPECT_EQ(v.rows(), 27);
    EXPECT_EQ(v.cols(), 2);
    // H(r, j) = w[j][c][h][w] with r = c*9 + h*3 + w.
    EXPECT_FLOAT_EQ(v.get(0, 0), w.at(0, 0, 0, 0));
    EXPECT_FLOAT_EQ(v.get(13, 1), w.at(1, 1, 1, 1));
    v.set(13, 1, -7.0f);
    EXPECT_FLOAT_EQ(w.at(1, 1, 1, 1), -7.0f);
}

TEST(WeightView, DenseViewMatchesTensorLayout)
{
    Tensor w({4, 6});
    for (int64_t i = 0; i < w.numel(); ++i)
        w.at(i) = static_cast<float>(i);
    WeightView v = WeightView::dense(w);
    EXPECT_EQ(v.rows(), 6);
    EXPECT_EQ(v.cols(), 4);
    EXPECT_FLOAT_EQ(v.get(5, 2), w.at(2, 5));
}

} // namespace
} // namespace forms::admm
