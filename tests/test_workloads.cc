/**
 * @file
 * Sanity tests for the full-size workload specs: layer geometry,
 * per-frame operation counts and weight totals against the well-known
 * published values for each network.
 */

#include <gtest/gtest.h>

#include "sim/workloads.hh"

namespace forms::sim {
namespace {

TEST(Workloads, LeNetGeometry)
{
    Workload w = lenet5Mnist();
    EXPECT_EQ(w.layers.size(), 5u);
    EXPECT_EQ(w.layers[0].outH(), 28);   // 5x5 pad 2 keeps 28
    EXPECT_EQ(w.layers[1].outH(), 10);   // 14 - 5 + 1
    EXPECT_EQ(w.layers[2].rows(), 400);
}

TEST(Workloads, Vgg16CifarShapes)
{
    Workload w = vgg16Cifar();
    EXPECT_EQ(w.layers.size(), 16u);   // 13 conv + 3 fc
    // conv5_3 works on 2x2 maps.
    const auto &last_conv = w.layers[12];
    EXPECT_EQ(last_conv.inH, 2);
    EXPECT_EQ(last_conv.rows(), 512 * 9);
    // VGG16-CIFAR has ~14.7M conv weights + ~0.5M fc.
    EXPECT_NEAR(static_cast<double>(w.totalWeights()) / 1e6, 15.2, 0.8);
}

TEST(Workloads, Vgg16ImagenetOps)
{
    Workload w = vgg16Imagenet();
    // Published: ~15.5 GMACs => ~31 GOPs per frame.
    EXPECT_NEAR(w.gopsPerFrame(), 31.0, 1.5);
    // ~138M weights.
    EXPECT_NEAR(static_cast<double>(w.totalWeights()) / 1e6, 138.0, 5.0);
}

TEST(Workloads, Resnet18ImagenetOps)
{
    Workload w = resnet18Imagenet();
    // Published: ~1.8 GMACs => ~3.6 GOPs per frame.
    EXPECT_NEAR(w.gopsPerFrame(), 3.6, 0.4);
    EXPECT_NEAR(static_cast<double>(w.totalWeights()) / 1e6, 11.5, 1.0);
}

TEST(Workloads, Resnet50ImagenetOps)
{
    Workload w = resnet50Imagenet();
    // Published: ~4.1 GMACs => ~8.2 GOPs per frame.
    EXPECT_NEAR(w.gopsPerFrame(), 8.2, 0.8);
    EXPECT_NEAR(static_cast<double>(w.totalWeights()) / 1e6, 25.5, 2.0);
}

TEST(Workloads, PresentationsMatchSlidingWindows)
{
    LayerSpec l;
    l.conv = true;
    l.inC = 64;
    l.outC = 128;
    l.kernel = 3;
    l.stride = 2;
    l.pad = 1;
    l.inH = 56;
    l.inW = 56;
    EXPECT_EQ(l.outH(), 28);
    EXPECT_EQ(l.presentations(), 28 * 28);
    EXPECT_EQ(l.rows(), 576);
    EXPECT_EQ(l.macs(), 576 * 128 * 28 * 28);
}

TEST(Workloads, DenseLayerSpec)
{
    LayerSpec l;
    l.conv = false;
    l.inC = 512;
    l.outC = 1000;
    EXPECT_EQ(l.presentations(), 1);
    EXPECT_EQ(l.rows(), 512);
    EXPECT_EQ(l.macs(), 512000);
}

TEST(Workloads, CompressionProfileKeepFraction)
{
    CompressionProfile p{"x", 4.0, 8};
    EXPECT_DOUBLE_EQ(p.keepFraction(), 0.5);
    CompressionProfile q{"y", 1.0, 8};
    EXPECT_DOUBLE_EQ(q.keepFraction(), 1.0);
}

TEST(Workloads, EvalCasesMatchPaperTables)
{
    auto f13 = figure13Cases();
    ASSERT_EQ(f13.size(), 2u);
    EXPECT_NEAR(f13[0].profile.pruneRatio, 41.2, 1e-9);
    EXPECT_NEAR(f13[1].profile.pruneRatio, 50.85, 1e-9);

    auto f14 = figure14Cases();
    ASSERT_EQ(f14.size(), 5u);
    EXPECT_NEAR(f14[0].profile.pruneRatio, 8.15, 1e-9);
    EXPECT_NEAR(f14[4].profile.pruneRatio, 3.67, 1e-9);
    for (const auto &c : f14)
        EXPECT_EQ(c.profile.weightBits, 8);
}

TEST(Workloads, ResnetStemDownsamplesForImagenet)
{
    Workload w = resnet18Imagenet();
    EXPECT_EQ(w.layers[0].outH(), 112);
    // First stage block then works on 56x56 features.
    EXPECT_EQ(w.layers[1].inH, 56);
}

} // namespace
} // namespace forms::sim
