/**
 * @file
 * Compiler tests: lowering an nn::Network (including ResidualBlock
 * recursion) to the graph IR, shape inference over DAG joins, and the
 * BN-folding pass — the folded conv must match the unfolded FP
 * Conv+BN reference within tight tolerance on randomized shapes, and
 * whole-network eval forward must be unchanged by folding (the BN
 * layers are neutralized in place).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "compile/passes.hh"
#include "nn/layers.hh"
#include "nn/network.hh"
#include "nn/zoo.hh"
#include "sim/graph_runtime.hh"

namespace forms {
namespace {

/** Give a BN layer nontrivial affine parameters and running stats. */
void
randomizeBn(nn::BatchNorm2D &bn, Rng &rng)
{
    bn.gamma().fillUniform(rng, 0.5f, 1.5f);
    bn.beta().fillUniform(rng, -0.5f, 0.5f);
    bn.runningMean().fillUniform(rng, -0.4f, 0.4f);
    bn.runningVar().fillUniform(rng, 0.25f, 2.0f);
}

void
expectClose(const Tensor &a, const Tensor &b, float tol)
{
    ASSERT_EQ(a.shape(), b.shape());
    for (int64_t i = 0; i < a.numel(); ++i)
        ASSERT_NEAR(a.at(i), b.at(i), tol) << "element " << i;
}

TEST(Lowering, StraightLineChain)
{
    Rng rng(3);
    auto net = nn::buildTinyConvNet(rng, 4, 8, 1, 12);
    auto g = compile::lowerNetwork(*net);

    // input + 8 layers, all sequential: conv relu pool conv relu pool
    // flat fc.
    EXPECT_EQ(g.size(), net->size() + 1);
    const auto topo = g.topoOrder();
    ASSERT_EQ(topo.size(), g.size());
    EXPECT_EQ(topo.front(), g.input());
    EXPECT_EQ(topo.back(), g.output());

    g.inferShapes({1, 12, 12});
    EXPECT_EQ(g.node(g.output()).outShape, (Shape{4}));
}

TEST(Lowering, ResidualBlockBecomesDagWithJoin)
{
    Rng rng(4);
    nn::Network net;
    net.emplace<nn::Conv2D>("stem", 3, 8, 3, 1, 1, rng);
    net.emplace<nn::ReLU>("stem_relu");
    // Projection shortcut (stride 2, channel change): main path
    // conv-bn-relu-conv-bn plus conv-bn shortcut, then add + relu.
    net.emplace<nn::ResidualBlock>("blk", 8, 16, 2, rng);

    auto g = compile::lowerNetwork(net);
    // input, stem, stem_relu, then blk: 5 main + 2 shortcut + add +
    // relu_out = 9.
    EXPECT_EQ(g.size(), 12u);

    int adds = 0, bns = 0;
    for (int id = 0; id < g.capacity(); ++id) {
        if (!g.alive(id))
            continue;
        adds += g.node(id).op == compile::Op::Add;
        bns += g.node(id).op == compile::Op::BatchNorm;
    }
    EXPECT_EQ(adds, 1);
    EXPECT_EQ(bns, 3);

    g.inferShapes({3, 10, 10});
    EXPECT_EQ(g.node(g.output()).outShape, (Shape{16, 5, 5}));

    // The add node joins the main path (bn2) and the shortcut (bn).
    for (int id = 0; id < g.capacity(); ++id) {
        if (g.alive(id) && g.node(id).op == compile::Op::Add) {
            ASSERT_EQ(g.node(id).inputs.size(), 2u);
            EXPECT_EQ(g.node(g.node(id).inputs[0]).name, "blk.bn2");
            EXPECT_EQ(g.node(g.node(id).inputs[1]).name, "blk.proj_bn");
        }
    }
}

TEST(Lowering, ResNetZooLowersAndInfersShapes)
{
    Rng rng(5);
    auto net = nn::buildResNetSmall(rng, 10, 8, 2);
    auto g = compile::lowerNetwork(*net);
    g.inferShapes({3, 32, 32});
    EXPECT_EQ(g.node(g.output()).outShape, (Shape{10}));

    // Two of the six blocks change shape, so two projection shortcuts
    // exist: 6 add joins total.
    int adds = 0;
    for (int id = 0; id < g.capacity(); ++id)
        if (g.alive(id) && g.node(id).op == compile::Op::Add)
            ++adds;
    EXPECT_EQ(adds, 6);
    EXPECT_FALSE(g.dump().empty());
}

TEST(FoldBatchNorm, MatchesConvBnReferenceOnRandomizedShapes)
{
    struct Cfg { int in_c, out_c, k, stride, pad, hw; };
    const Cfg cfgs[] = {
        {3, 8, 3, 1, 1, 9},
        {5, 12, 5, 2, 2, 11},
        {1, 16, 1, 1, 0, 7},
        {8, 6, 3, 2, 0, 12},
    };
    uint64_t seed = 100;
    for (const Cfg &c : cfgs) {
        Rng rng(seed++);
        nn::Network net;
        auto &conv = net.emplace<nn::Conv2D>("c", c.in_c, c.out_c, c.k,
                                             c.stride, c.pad, rng);
        conv.bias().fillUniform(rng, -0.2f, 0.2f);
        auto &bn = net.emplace<nn::BatchNorm2D>("b", c.out_c);
        randomizeBn(bn, rng);

        Tensor x({2, c.in_c, c.hw, c.hw});
        x.fillUniform(rng, -1.0f, 1.0f);
        const Tensor ref = net.forward(x, false);

        auto g = compile::lowerNetwork(net);
        EXPECT_EQ(compile::foldBatchNorm(g), 1);
        EXPECT_EQ(g.size(), 2u);   // input + conv; BN bypassed

        // Folded conv alone reproduces Conv+BN ...
        const Tensor folded = conv.forward(x, false);
        const float tol =
            5e-5f * std::max(1.0f, ref.maxAbs());
        expectClose(ref, folded, tol);

        // ... and the neutralized BN makes the whole net a no-op
        // change in eval mode.
        expectClose(ref, net.forward(x, false), tol);
    }
}

TEST(FoldBatchNorm, FoldsEveryBnInResNetAndPreservesEvalForward)
{
    Rng rng(21);
    auto net = nn::buildResNetSmall(rng, 10, 8, 1);
    // Perturb every BN so folding is nontrivial.
    Rng prng(22);
    for (auto &p : net->params()) {
        if (p.name.find(".gamma") != std::string::npos)
            p.value->fillUniform(prng, 0.6f, 1.4f);
        if (p.name.find(".beta") != std::string::npos)
            p.value->fillUniform(prng, -0.3f, 0.3f);
    }

    Tensor x({2, 3, 32, 32});
    x.fillUniform(prng, 0.0f, 1.0f);
    const Tensor ref = net->forward(x, false);

    auto g = compile::lowerNetwork(*net);
    size_t before = g.size();
    // 1 stem BN + 3 blocks x (2 main + up to 1 proj): blocks at stage
    // boundaries have projection shortcuts (2 of 3 here).
    const int folded = compile::foldBatchNorm(g);
    EXPECT_EQ(folded, 9);
    EXPECT_EQ(g.size(), before - static_cast<size_t>(folded));
    for (int id = 0; id < g.capacity(); ++id)
        if (g.alive(id))
            EXPECT_NE(g.node(id).op, compile::Op::BatchNorm);

    g.inferShapes({3, 32, 32});
    const Tensor after = net->forward(x, false);
    const float tol = 1e-4f * std::max(1.0f, ref.maxAbs());
    expectClose(ref, after, tol);
}

TEST(FoldBatchNorm, DigitalScaleModeLeavesWeightsAndNetworkUntouched)
{
    Rng rng(55);
    nn::Network net;
    auto &conv = net.emplace<nn::Conv2D>("c", 3, 6, 3, 1, 1, rng);
    conv.bias().fillUniform(rng, -0.2f, 0.2f);
    auto &bn = net.emplace<nn::BatchNorm2D>("b", 6);
    randomizeBn(bn, rng);

    const Tensor w_before = conv.weight();
    Tensor x({2, 3, 8, 8});
    x.fillUniform(rng, -1.0f, 1.0f);
    const Tensor ref = net.forward(x, false);

    auto g = compile::lowerNetwork(net);
    EXPECT_EQ(
        compile::foldBatchNorm(g, compile::FoldMode::DigitalScale), 1);
    // Weights, bias and BN parameters are untouched; the network's
    // eval forward is unchanged.
    EXPECT_TRUE(conv.weight().equals(w_before));
    EXPECT_TRUE(ref.equals(net.forward(x, false)));

    // The conv node carries the fold in its digital output stage.
    bool found = false;
    for (int id = 0; id < g.capacity(); ++id) {
        if (!g.alive(id) || g.node(id).op != compile::Op::Conv)
            continue;
        found = true;
        const compile::Node &n = g.node(id);
        ASSERT_EQ(n.outScale.size(), 6u);
        ASSERT_EQ(n.outBias.size(), 6u);
        for (int oc = 0; oc < 6; ++oc) {
            const float sigma =
                std::sqrt(bn.runningVar().at(oc) + bn.eps());
            const float s = bn.gamma().at(oc) / sigma;
            EXPECT_FLOAT_EQ(n.outScale[static_cast<size_t>(oc)], s);
            EXPECT_FLOAT_EQ(
                n.outBias[static_cast<size_t>(oc)],
                s * (conv.bias().at(oc) - bn.runningMean().at(oc)) +
                    bn.beta().at(oc));
        }
    }
    EXPECT_TRUE(found);
    EXPECT_EQ(g.size(), 2u);   // BN node bypassed
}

TEST(FoldBatchNorm, SkipsBnWithoutPrivateConvProducer)
{
    Rng rng(31);
    nn::Network net;
    // BN directly on the input: no conv producer, must be left alone.
    net.emplace<nn::BatchNorm2D>("bn_in", 3);
    net.emplace<nn::Conv2D>("c", 3, 4, 3, 1, 1, rng);
    auto g = compile::lowerNetwork(net);
    EXPECT_EQ(compile::foldBatchNorm(g), 0);
    EXPECT_EQ(g.size(), 3u);
}

/** Near-lossless engine: the only error left is BN-fold algebra. */
sim::RuntimeConfig
preciseConfig()
{
    sim::RuntimeConfig cfg;
    cfg.mapping.fragSize = 8;
    cfg.mapping.inputBits = 12;
    cfg.engine.adcBits = 0;   // lossless conversion
    return cfg;
}

TEST(FoldBatchNorm, BnFeedingResidualAddJoinStillFolds)
{
    // The zoo always puts a ReLU after the join, but nothing requires
    // it: a BN whose *consumer* is an Add join must still fold into
    // its producing conv (the fold condition is about the producer).
    Rng rng(71);
    nn::Network net;
    auto &convA = net.emplace<nn::Conv2D>("convA", 3, 6, 3, 1, 1, rng);
    auto &bnA = net.emplace<nn::BatchNorm2D>("bnA", 6);
    auto &convB = net.emplace<nn::Conv2D>("convB", 3, 6, 3, 1, 1, rng);
    convA.bias().fillUniform(rng, -0.2f, 0.2f);
    convB.bias().fillUniform(rng, -0.2f, 0.2f);
    randomizeBn(bnA, rng);

    // Hand-built DAG: add(bn(convA(x)), convB(x)) — the BN feeds the
    // join directly.
    compile::Graph g;
    const int in = g.addNode(compile::Op::Input, "input", {});
    const int a = g.addNode(compile::Op::Conv, "convA", {in});
    g.node(a).conv = &convA;
    const int b = g.addNode(compile::Op::BatchNorm, "bnA", {a});
    g.node(b).bn = &bnA;
    const int cB = g.addNode(compile::Op::Conv, "convB", {in});
    g.node(cB).conv = &convB;
    const int add = g.addNode(compile::Op::Add, "join", {b, cB});
    g.setOutput(add);
    g.inferShapes({3, 8, 8});

    // Compress first, then fold into the digital output stage: the
    // post-compression deployment order (DESIGN.md §4).
    auto states = sim::snapshotCompress(net, 8, 8);
    compile::Graph unfolded = g;   // BN executes functionally here
    ASSERT_EQ(compile::foldBatchNorm(
                  g, compile::FoldMode::DigitalScale), 1);
    EXPECT_EQ(g.size(), 4u);
    EXPECT_EQ(g.node(add).inputs[0], a);   // join rewired to the conv
    ASSERT_EQ(g.node(a).outScale.size(), 6u);

    // Folded and unfolded graphs agree on the crossbars (identical
    // programmed weights; the digital affine replays the BN algebra).
    Rng xrng(72);
    Tensor x({2, 3, 8, 8});
    x.fillUniform(xrng, 0.0f, 1.0f);
    sim::GraphRuntime rt_folded(g, states, preciseConfig());
    sim::GraphRuntime rt_unfolded(unfolded, states, preciseConfig());
    const Tensor yf = rt_folded.forward(x);
    const Tensor yu = rt_unfolded.forward(x);
    const float tol = 1e-4f * std::max(1.0f, yu.maxAbs());
    expectClose(yu, yf, tol);
}

TEST(FoldBatchNorm, IdentityShortcutBlockFoldsBothBns)
{
    // Identity-shortcut residual block (no projection): bn2 feeds the
    // Add join against the raw block input. Both BNs must fold, in
    // either mode, and the Add's right operand must stay the input.
    Rng rng(81);
    nn::Network net;
    net.emplace<nn::Conv2D>("stem", 3, 8, 3, 1, 1, rng);
    net.emplace<nn::ReLU>("stem_relu");
    net.emplace<nn::ResidualBlock>("blk", 8, 8, 1, rng);
    Rng brng(82);
    for (size_t i = 0; i < net.size(); ++i) {
        if (auto *res =
                dynamic_cast<nn::ResidualBlock *>(&net.layer(i))) {
            for (const auto &sub : res->mainPath())
                if (auto *bn = dynamic_cast<nn::BatchNorm2D *>(sub.get()))
                    randomizeBn(*bn, brng);
            EXPECT_TRUE(res->shortcutPath().empty());
        }
    }

    for (const auto mode : {compile::FoldMode::Weights,
                            compile::FoldMode::DigitalScale}) {
        auto g = compile::lowerNetwork(net);
        const int folded = compile::foldBatchNorm(g, mode);
        EXPECT_EQ(folded, 2) << "mode " << static_cast<int>(mode);
        for (int id = 0; id < g.capacity(); ++id) {
            if (!g.alive(id) || g.node(id).op != compile::Op::Add)
                continue;
            // Left operand: the main path's conv2 (bn2 bypassed);
            // right operand: the identity shortcut — the stem relu.
            EXPECT_EQ(g.node(g.node(id).inputs[0]).name, "blk.conv2");
            EXPECT_EQ(g.node(g.node(id).inputs[1]).name, "stem_relu");
        }
    }
}

TEST(FoldBatchNorm, WeightsVsDigitalScaleAgreeOnIdentityShortcutBlock)
{
    // The two fold targets run at different pipeline points (weights
    // before compression, digital stage after), so build the same
    // network twice from the same seed and push each copy through its
    // own deployment order; both must land near the FP reference.
    auto build = [](nn::Network &net) {
        Rng rng(91);
        net.emplace<nn::Conv2D>("stem", 3, 8, 3, 1, 1, rng);
        net.emplace<nn::ReLU>("stem_relu");
        net.emplace<nn::ResidualBlock>("blk", 8, 8, 1, rng);
        net.emplace<nn::ResidualBlock>("blk2", 8, 16, 2, rng);
        Rng brng(92);
        for (size_t i = 0; i < net.size(); ++i)
            if (auto *res =
                    dynamic_cast<nn::ResidualBlock *>(&net.layer(i))) {
                for (const auto &sub : res->mainPath())
                    if (auto *bn =
                            dynamic_cast<nn::BatchNorm2D *>(sub.get()))
                        randomizeBn(*bn, brng);
                for (const auto &sub : res->shortcutPath())
                    if (auto *bn =
                            dynamic_cast<nn::BatchNorm2D *>(sub.get()))
                        randomizeBn(*bn, brng);
            }
    };
    nn::Network net_w, net_d;
    build(net_w);
    build(net_d);

    Rng xrng(93);
    Tensor x({2, 3, 12, 12});
    x.fillUniform(xrng, 0.0f, 1.0f);
    const Tensor ref = net_w.forward(x, false);
    ASSERT_TRUE(ref.equals(net_d.forward(x, false)));   // same seed

    // Weights mode: fold, then compress the folded weights.
    auto g_w = compile::lowerNetwork(net_w);
    EXPECT_EQ(compile::foldBatchNorm(g_w, compile::FoldMode::Weights),
              5);
    auto states_w = sim::snapshotCompress(net_w, 8, 8);
    sim::GraphRuntime rt_w(g_w, states_w, preciseConfig());
    const Tensor y_w = rt_w.forward(x);

    // DigitalScale mode: compress first, then fold into the stage.
    auto states_d = sim::snapshotCompress(net_d, 8, 8);
    auto g_d = compile::lowerNetwork(net_d);
    EXPECT_EQ(
        compile::foldBatchNorm(g_d, compile::FoldMode::DigitalScale),
        5);
    sim::GraphRuntime rt_d(g_d, states_d, preciseConfig());
    const Tensor y_d = rt_d.forward(x);

    // The two fold targets must agree with each other: identical sign
    // structure survives the per-channel rescaling (gamma/sigma > 0),
    // so the only divergence left is each layer's magnitude grid
    // being fit to folded vs unfolded weights.
    const float tol =
        0.08f * std::max(1.0f, std::max(y_w.maxAbs(), y_d.maxAbs()));
    expectClose(y_w, y_d, tol);
}

TEST(GraphIr, DumpIsGoldenStableAndRoundTripsInScale)
{
    // Hand-built DAG with a multi-consumer ("replicated path") value:
    // the relu feeds both operands of the join, like a shortcut edge.
    compile::Graph g;
    const int in = g.addNode(compile::Op::Input, "in", {});
    const int relu = g.addNode(compile::Op::Relu, "relu", {in});
    const int join = g.addNode(compile::Op::Add, "join", {relu, relu});
    const int out = g.addNode(compile::Op::Relu, "out", {join});
    g.setOutput(out);
    g.inferShapes({2, 4, 4});

    // Two distinct float32 scales that 6-significant-digit %g would
    // print identically ("1"): the dump must keep them apart.
    g.node(relu).inScale = 1.0f;
    g.node(join).inScale = 1.00000012f;   // 1 + 2^-23, nextafter(1)

    const std::string expected =
        "  0 input     in               <-  [2, 4, 4]\n"
        "  1 relu      relu             <- 0  [2, 4, 4]"
        "  in_scale=1\n"
        "  2 add       join             <- 1 1  [2, 4, 4]"
        "  in_scale=1.00000012\n"
        "  3 relu      out              <- 2  [2, 4, 4]  (output)\n";
    EXPECT_EQ(g.dump(), expected);
    // Deterministic: a second dump is byte-identical.
    EXPECT_EQ(g.dump(), expected);
}

TEST(GraphIr, BypassRewiresConsumersAndOutput)
{
    Rng rng(41);
    nn::Network net;
    net.emplace<nn::Conv2D>("c", 1, 2, 3, 1, 1, rng);
    auto &bn = net.emplace<nn::BatchNorm2D>("b", 2);
    (void)bn;
    auto g = compile::lowerNetwork(net);
    const int out_before = g.output();
    g.bypass(out_before);   // the BN node is the output
    EXPECT_EQ(g.size(), 2u);
    EXPECT_EQ(g.node(g.output()).name, "c");
    EXPECT_TRUE(g.consumers(g.output()).empty());
}

} // namespace
} // namespace forms
