/**
 * @file
 * Randomized cross-runtime determinism harness: a seeded generator
 * builds random layer graphs (conv/BN/relu stacks, residual blocks
 * with identity and projection shortcuts, pooling), folds BN in a
 * randomly chosen mode, optionally calibrates a static activation
 * scale, and cross-checks GraphRuntime against PipelineRuntime —
 * random thread counts, chip counts, micro-batch sizes,
 * stage-replication factors (random replicateThreshold/maxReplicas,
 * so heavy nodes spread across several replica chips) AND kernel
 * dispatch modes (scalar reference vs best-available SIMD, DESIGN.md
 * §6) — for bitwise-identical logits and per-node EngineStats, with
 * ADC quantization, device variation and read noise all enabled
 * (DESIGN.md §3–§5). A serving axis additionally replays a subset of
 * graphs through serve::Server — random arrival orders and batch
 * deadlines — and requires every dynamically batched response to
 * reproduce the offline logits bitwise (docs/SERVING.md). An EIC axis
 * re-partitions every calibrated graph under WorkModel::EicTime with
 * the measured bit densities attached, pinning the contract that the
 * zero-skip timing model moves only modeled time, never numerics
 * (docs/SCHEDULING.md). Hand-picked networks only cover the
 * topologies someone thought of; the fuzz covers the ones nobody
 * did.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <future>

#include "common/simd.hh"
#include "compile/calibration.hh"
#include "compile/passes.hh"
#include "compile/schedule.hh"
#include "nn/layers.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "reram/faults.hh"
#include "serve/backends.hh"
#include "serve/server.hh"
#include "sim/calibrator.hh"
#include "sim/graph_runtime.hh"
#include "sim/pipeline_runtime.hh"
#include "stats_testutil.hh"

namespace forms {
namespace {

constexpr int kGraphs = 20;      //!< general random DAGs
constexpr int kStemGraphs = 6;   //!< stem-dominated nets (replication)
constexpr int kHw = 12;          //!< input spatial extent

/** Nontrivial BN parameters everywhere (folding must do real work). */
void
randomizeBn(nn::Layer &l, Rng &rng)
{
    if (auto *bn = dynamic_cast<nn::BatchNorm2D *>(&l)) {
        bn->gamma().fillUniform(rng, 0.5f, 1.5f);
        bn->beta().fillUniform(rng, -0.5f, 0.5f);
        bn->runningMean().fillUniform(rng, -0.3f, 0.3f);
        bn->runningVar().fillUniform(rng, 0.25f, 2.0f);
    } else if (auto *res = dynamic_cast<nn::ResidualBlock *>(&l)) {
        for (const auto &sub : res->mainPath())
            randomizeBn(*sub, rng);
        for (const auto &sub : res->shortcutPath())
            randomizeBn(*sub, rng);
    }
}

/**
 * Random conv/residual/pool network for a kHw x kHw 3-channel input.
 * Spatial extent is tracked so every layer stays well-formed; strided
 * ops only fire on even extents >= 8, keeping the dense head's input
 * consistent by construction.
 */
std::unique_ptr<nn::Network>
makeRandomNet(Rng &rng, int *classes_out)
{
    auto net = std::make_unique<nn::Network>();
    int hw = kHw;
    int c = 4 + 4 * static_cast<int>(rng.below(2));   // 4 or 8
    int idx = 0;
    auto name = [&](const char *p) { return strfmt("%s%d", p, idx++); };

    net->emplace<nn::Conv2D>("stem", 3, c, 3, 1, 1, rng);
    if (rng.bernoulli(0.5))
        net->emplace<nn::BatchNorm2D>("stem_bn", c);
    net->emplace<nn::ReLU>("stem_relu");

    const int segments = 2 + static_cast<int>(rng.below(3));
    for (int s = 0; s < segments; ++s) {
        const bool can_stride = hw >= 8 && hw % 2 == 0;
        switch (rng.below(4)) {
        case 0: {
            // Residual block: channel growth or a stride forces a
            // projection shortcut; matching shapes keep the identity
            // shortcut.
            const int out_c =
                (c <= 8 && rng.bernoulli(0.4)) ? c * 2 : c;
            const int stride =
                (can_stride && rng.bernoulli(0.3)) ? 2 : 1;
            net->emplace<nn::ResidualBlock>(name("blk"), c, out_c,
                                            stride, rng);
            c = out_c;
            if (stride == 2)
                hw /= 2;
            break;
        }
        case 1:
            net->emplace<nn::Conv2D>(name("conv"), c, c, 3, 1, 1, rng);
            if (rng.bernoulli(0.5))
                net->emplace<nn::BatchNorm2D>(name("bn"), c);
            net->emplace<nn::ReLU>(name("relu"));
            break;
        case 2:
            if (can_stride) {
                net->emplace<nn::MaxPool2D>(name("maxpool"), 2, 2);
                hw /= 2;
            }
            break;
        case 3:
            if (can_stride) {
                net->emplace<nn::AvgPool2D>(name("avgpool"), 2, 2);
                hw /= 2;
            }
            break;
        }
    }

    *classes_out = 2 + static_cast<int>(rng.below(3));
    net->emplace<nn::Flatten>("flat");
    net->emplace<nn::Dense>("fc", c * hw * hw, *classes_out, rng);

    Rng brng(rng.next());
    for (size_t i = 0; i < net->size(); ++i)
        randomizeBn(net->layer(i), brng);
    return net;
}

/**
 * Stem-dominated net: one wide stem conv over the full extent, then a
 * cheap tail — the stem carries several times the ideal per-chip work
 * share, so Schedule::partition provably cannot balance it with
 * contiguous cuts and chooses a replicated stage instead. The general
 * generator above almost never produces this shape (its work is too
 * uniform), so replication gets its own pool of graphs.
 */
std::unique_ptr<nn::Network>
makeStemHeavyNet(Rng &rng, int *classes_out)
{
    auto net = std::make_unique<nn::Network>();
    const int c = 12 + 4 * static_cast<int>(rng.below(3));  // 12/16/20
    net->emplace<nn::Conv2D>("stem", 3, c, 3, 1, 1, rng);
    net->emplace<nn::ReLU>("stem_relu");
    net->emplace<nn::MaxPool2D>("pool", 2, 2);
    int tail_c = c;
    if (rng.bernoulli(0.5)) {
        tail_c = 4;
        net->emplace<nn::Conv2D>("mid", c, tail_c, 3, 1, 1, rng);
        net->emplace<nn::ReLU>("mid_relu");
    }
    *classes_out = 2 + static_cast<int>(rng.below(3));
    net->emplace<nn::Flatten>("flat");
    const int hw = kHw / 2;
    net->emplace<nn::Dense>("fc", tail_c * hw * hw, *classes_out, rng);
    return net;
}

/** ADC quantization + device variation + read noise all on. */
sim::RuntimeConfig
noisyConfig(ThreadPool *pool)
{
    sim::RuntimeConfig cfg;
    cfg.mapping.xbarRows = 64;
    cfg.mapping.xbarCols = 64;
    cfg.mapping.fragSize = 8;
    cfg.mapping.inputBits = 8;
    cfg.engine.adcBits = 3;
    cfg.engine.cell.variationSigma = 0.1;
    cfg.engine.readNoiseSigma = 0.02;
    cfg.pool = pool;
    return cfg;
}

TEST(CrossRuntimeFuzz, GraphAndPipelineRuntimesAgreeBitwise)
{
    int residual_graphs = 0, static_graphs = 0, replicated_graphs = 0;
    int eic_graphs = 0;
    int fault_perturbed = 0, fault_exposed = 0;
    for (int g = 0; g < kGraphs + kStemGraphs; ++g) {
        Rng rng(9000 + 13 * static_cast<uint64_t>(g));
        SCOPED_TRACE("fuzz graph " + std::to_string(g));

        const bool stem_heavy = g >= kGraphs;
        int classes = 0;
        auto net = stem_heavy ? makeStemHeavyNet(rng, &classes)
                              : makeRandomNet(rng, &classes);
        auto graph = compile::lowerNetwork(*net);
        graph.inferShapes({3, kHw, kHw});

        // Alternate the fold target so both the rewritten-weights and
        // the digital-output-stage paths are fuzzed.
        const auto mode = g % 2 == 0 ? compile::FoldMode::Weights
                                     : compile::FoldMode::DigitalScale;
        compile::foldBatchNorm(graph, mode);
        auto states = sim::snapshotCompress(*net, 8, 8);

        for (int id = 0; id < graph.capacity(); ++id)
            if (graph.alive(id) &&
                graph.node(id).op == compile::Op::Add) {
                ++residual_graphs;
                break;
            }

        Tensor batch({2, 3, kHw, kHw});
        batch.fillUniform(rng, 0.0f, 1.0f);

        // Every third graph deploys a calibrated static scale.
        compile::CalibrationTable table;
        const bool use_static = g % 3 == 0;
        ThreadPool ref_pool(1 + static_cast<int>(rng.below(4)));
        sim::RuntimeConfig rcfg = noisyConfig(&ref_pool);
        if (use_static) {
            ++static_graphs;
            sim::CalibratorConfig ccfg;
            ccfg.policy = rng.bernoulli(0.5)
                ? sim::CalibPolicy::AbsMax
                : sim::CalibPolicy::Percentile;
            sim::Calibrator cal(graph, states, rcfg, ccfg);
            cal.observe(batch);
            table = cal.table();
            rcfg.scaleMode = arch::ScaleMode::Static;
            rcfg.calibration = &table;
        }

        // Dispatch axis: the reference runtime pins the scalar kernel
        // table while the pipeline runtime dispatches the best
        // available SIMD variant, so every bit-equality assertion
        // below also enforces the scalar<->vector identity contract
        // (DESIGN.md §6). On a FORMS_SIMD=OFF build Auto resolves to
        // scalar and the axis degenerates harmlessly.
        rcfg.engine.simdMode = simd::Mode::Scalar;

        sim::GraphRuntime gr(graph, states, rcfg);
        sim::RuntimeReport grep;
        const Tensor ref = gr.forward(batch, &grep);

        // Odd and stem-heavy graphs fuzz stage replication: at least
        // 2 chips, an aggressive threshold and a random replica cap,
        // so heavy nodes spread across 2-4 replica chips with
        // presentation-sliced micro-batches.
        const bool fuzz_replication = g % 2 == 1 || stem_heavy;
        const int chips = fuzz_replication
            ? 2 + static_cast<int>(rng.below(3))
            : 1 + static_cast<int>(rng.below(4));
        const int micro_batch = 1 + static_cast<int>(rng.below(3));
        ThreadPool pipe_pool(1 + static_cast<int>(rng.below(8)));
        compile::ScheduleConfig scfg;
        scfg.chips = chips;
        if (fuzz_replication) {
            scfg.replicateThreshold =
                0.1 + 0.2 * static_cast<double>(rng.below(3));
            scfg.maxReplicas = 2 + static_cast<int>(rng.below(3));
        }
        auto sched = compile::Schedule::partition(graph, scfg);
        const bool replicated = sched.replicated();
        replicated_graphs += replicated;
        sim::PipelineRuntimeConfig pcfg;
        pcfg.runtime = rcfg;
        pcfg.runtime.engine.simdMode = simd::Mode::Auto;
        pcfg.runtime.pool = &pipe_pool;
        pcfg.microBatch = micro_batch;
        sim::PipelineRuntime pr(graph, std::move(sched), states, pcfg);
        sim::PipelineReport prep;
        const Tensor got = pr.forward(batch, &prep);

        EXPECT_TRUE(got.equals(ref))
            << "logits diverge: chips=" << chips
            << " microBatch=" << micro_batch
            << " static=" << use_static
            << " replicated=" << replicated << "\n" << graph.dump();
        ASSERT_EQ(prep.nodes.layers.size(), grep.layers.size());
        for (size_t i = 0; i < grep.layers.size(); ++i) {
            EXPECT_EQ(prep.nodes.layers[i].name, grep.layers[i].name);
            expectStatsIdentical(prep.nodes.layers[i].stats,
                                 grep.layers[i].stats);
        }
        EXPECT_EQ(prep.nodes.presentations, grep.presentations);

        // EIC-timing axis: stamp the calibrated bit densities on the
        // graph and re-partition under WorkModel::EicTime — the
        // annotations move only modeled time, so even when the
        // zero-skip-aware DP picks a different partition the logits
        // and per-node stats must stay bitwise identical to the
        // reference.
        if (use_static) {
            ++eic_graphs;
            table.attachTo(graph);
            bool stamped = false;
            for (int id = 0; id < graph.capacity(); ++id)
                if (graph.alive(id) &&
                    graph.node(id).eicDensity > 0.0f)
                    stamped = true;
            EXPECT_TRUE(stamped)
                << "calibration left no EIC density on the graph";
            compile::ScheduleConfig ecfg = scfg;
            ecfg.workModel = compile::WorkModel::EicTime;
            sim::PipelineRuntime epr(
                graph, compile::Schedule::partition(graph, ecfg),
                states, pcfg);
            sim::PipelineReport erep;
            const Tensor eic_logits = epr.forward(batch, &erep);
            EXPECT_TRUE(eic_logits.equals(ref))
                << "EIC-aware schedule changed the numerics: chips="
                << chips << " microBatch=" << micro_batch << "\n"
                << graph.dump();
            ASSERT_EQ(erep.nodes.layers.size(), grep.layers.size());
            for (size_t i = 0; i < grep.layers.size(); ++i)
                expectStatsIdentical(erep.nodes.layers[i].stats,
                                     grep.layers[i].stats);
        }

        // Fault axis: the same DAG re-programmed under a seeded fault
        // map — stuck cells, drifted devices AND killed columns
        // repaired from a generous spare budget — stays a pure
        // function of (seed, faultKey, physId): GraphRuntime and
        // PipelineRuntime must agree bitwise on logits and per-node
        // stats, faults, remap and all (reram/faults.hh).
        {
            reram::FaultConfig fltc;
            fltc.stuckLrsRate = 0.005;
            fltc.stuckHrsRate = 0.005;
            fltc.driftRate = 0.01;
            fltc.columnKillRate = 0.001;
            fltc.seed = 5000 + static_cast<uint64_t>(g);
            reram::FaultMap fmap(fltc);

            sim::RuntimeConfig fcfg = rcfg;
            fcfg.faults = &fmap;
            fcfg.remapFaults = true;
            fcfg.mapping.spareXbars = 12;
            sim::GraphRuntime fgr(graph, states, fcfg);
            sim::RuntimeReport fgrep;
            const Tensor fref = fgr.forward(batch, &fgrep);
            fault_perturbed += !fref.equals(ref);

            auto fsched = compile::Schedule::partition(graph, scfg);
            sim::PipelineRuntimeConfig fpcfg = pcfg;
            fpcfg.runtime.faults = &fmap;
            fpcfg.runtime.remapFaults = true;
            fpcfg.runtime.mapping.spareXbars = 12;
            sim::PipelineRuntime fpr(graph, std::move(fsched), states,
                                     fpcfg);
            sim::PipelineReport fprep;
            const Tensor fgot = fpr.forward(batch, &fprep);
            fault_exposed += fprep.faultyCrossbars > 0;

            EXPECT_TRUE(fgot.equals(fref))
                << "faulted logits diverge: chips=" << chips
                << " microBatch=" << micro_batch
                << " replicated=" << replicated << "\n" << graph.dump();
            ASSERT_EQ(fprep.nodes.layers.size(), fgrep.layers.size());
            for (size_t i = 0; i < fgrep.layers.size(); ++i)
                expectStatsIdentical(fprep.nodes.layers[i].stats,
                                     fgrep.layers[i].stats);
        }

        // Observer axis: the same pipeline with a trace session and a
        // metrics registry attached must produce bit-identical logits
        // and per-node stats — installing observation changes nothing
        // about the computation (docs/OBSERVABILITY.md).
        if (g % 2 == 0 || stem_heavy) {
            auto sched2 = compile::Schedule::partition(graph, scfg);
            obs::TraceSession session;
            session.install();
            obs::MetricsRegistry metrics;
            sim::PipelineRuntimeConfig ocfg = pcfg;
            ocfg.trace = &session;
            ocfg.runtime.metrics = &metrics;
            sim::PipelineRuntime opr(graph, std::move(sched2), states,
                                     ocfg);
            sim::PipelineReport orep;
            const Tensor observed = opr.forward(batch, &orep);
            session.uninstall();

            EXPECT_TRUE(observed.equals(got))
                << "tracing perturbed the logits: chips=" << chips
                << " microBatch=" << micro_batch;
            ASSERT_EQ(orep.nodes.layers.size(),
                      prep.nodes.layers.size());
            for (size_t i = 0; i < prep.nodes.layers.size(); ++i)
                expectStatsIdentical(orep.nodes.layers[i].stats,
                                     prep.nodes.layers[i].stats);
            // ...and the observers actually observed something.
            EXPECT_FALSE(session.events().empty());
            EXPECT_FALSE(metrics.snapshot().counters.empty());
        }

        // Serving axis: the same images served one at a time through
        // a dynamically batching server — random arrival order,
        // random batch deadline, random maxBatch — must reproduce the
        // offline reference logits bitwise. Request i is keyed by its
        // batch row (the ids the fresh offline runtime assigned), so
        // every response row must equal the reference row no matter
        // how the server composed its batches (docs/SERVING.md).
        if (g % 4 == 1 || stem_heavy) {
            auto sched3 = compile::Schedule::partition(graph, scfg);
            sim::PipelineRuntime spr(graph, std::move(sched3), states,
                                     pcfg);
            serve::PipelineBackend backend(spr);
            serve::ServerConfig ssc;
            ssc.maxBatch = 1 + static_cast<int>(rng.below(3));
            ssc.maxDelayUs =
                static_cast<int64_t>(rng.below(3)) * 200;
            serve::Server server(backend, ssc);

            const int64_t n = batch.dim(0);
            const int64_t elems = batch.numel() / n;
            const int64_t out_elems = ref.numel() / n;
            std::vector<int64_t> order(static_cast<size_t>(n));
            for (int64_t i = 0; i < n; ++i)
                order[static_cast<size_t>(i)] = i;
            for (size_t i = order.size(); i > 1; --i)
                std::swap(order[i - 1], order[rng.below(i)]);

            std::vector<std::future<serve::Response>> futs(
                static_cast<size_t>(n));
            Shape sample_shape(batch.shape().begin() + 1,
                               batch.shape().end());
            for (int64_t j = 0; j < n; ++j) {
                const int64_t i = order[static_cast<size_t>(j)];
                Tensor img(sample_shape);
                std::memcpy(img.data(), batch.data() + i * elems,
                            static_cast<size_t>(elems) *
                                sizeof(float));
                futs[static_cast<size_t>(i)] = server.submit(
                    std::move(img), static_cast<uint64_t>(i));
            }
            for (int64_t i = 0; i < n; ++i) {
                serve::Response r =
                    futs[static_cast<size_t>(i)].get();
                ASSERT_EQ(r.status, serve::Status::Ok);
                ASSERT_EQ(r.logits.numel(), out_elems);
                EXPECT_EQ(0, std::memcmp(r.logits.data(),
                                         ref.data() + i * out_elems,
                                         static_cast<size_t>(out_elems) *
                                             sizeof(float)))
                    << "served logits diverge from offline reference: "
                    << "request " << i << " maxBatch=" << ssc.maxBatch
                    << " maxDelayUs=" << ssc.maxDelayUs << "\n"
                    << graph.dump();
            }
        }
    }
    // The generator must actually exercise the interesting paths.
    EXPECT_GE(residual_graphs, 5);
    EXPECT_GE(static_graphs, 6);
    EXPECT_GE(replicated_graphs, 4);
    EXPECT_GE(eic_graphs, 6);
    // The fault maps must actually bite: nearly every graph should
    // see perturbed logits and report faulted crossbars.
    EXPECT_GE(fault_perturbed, 20);
    EXPECT_GE(fault_exposed, 20);
}

} // namespace
} // namespace forms
