/**
 * @file
 * Tests for the weight-to-crossbar mapper: crossbar counts against the
 * closed form, fragment/sign integrity, pruning compaction, and the
 * integer reference MVM against a direct dense computation.
 */

#include <gtest/gtest.h>

#include "arch/mapping.hh"

namespace forms::arch {
namespace {

using admm::FragmentPlan;
using admm::PolarizationPolicy;
using admm::SignRule;
using admm::WeightView;

/** Self-contained layer state for mapper tests. */
struct TestLayer
{
    Tensor weight;
    Tensor grad;
    admm::LayerState state;

    TestLayer(int cout, int cin, int k, int frag, uint64_t seed,
              bool prune = false)
        : weight({cout, cin, k, k}), grad({cout, cin, k, k})
    {
        Rng rng(seed);
        weight.fillGaussian(rng, 0.0f, 0.5f);

        state.name = "test";
        state.param = {"test.weight", &weight, &grad, true, false};
        state.plan = FragmentPlan::forConv(cout, cin, k, frag,
                                           PolarizationPolicy::WMajor);

        WeightView v = WeightView::conv(weight);
        if (prune) {
            admm::PruneSpec spec;
            spec.filterKeep = 0.5;
            spec.shapeKeep = 0.75;
            spec.crossbarAware = false;
            projectStructuredPrune(v, spec);
            state.mask = admm::extractMask(v);
            state.plan = state.plan.restrictedToRows(state.mask->rowKept);
        }
        state.signs = admm::computeSigns(v, state.plan, SignRule::SumRule);
        admm::projectPolarization(v, state.plan, *state.signs);

        admm::QuantSpec q;
        q.bits = 8;
        state.quantScale = admm::projectQuantize(v, q);
    }
};

MappingConfig
smallConfig(int frag)
{
    MappingConfig cfg;
    cfg.xbarRows = 16;
    cfg.xbarCols = 16;
    cfg.cellBits = 2;
    cfg.weightBits = 8;
    cfg.fragSize = frag;
    return cfg;
}

TEST(Mapping, CrossbarCountMatchesClosedForm)
{
    TestLayer layer(12, 4, 3, 4, 1);
    MappingConfig cfg = smallConfig(4);
    MappedLayer mapped = mapLayer(layer.state, cfg);
    // rows = 36 -> ceil(36/16) = 3; weight cols/xbar = 16/4 = 4,
    // cols = 12 -> ceil(12/4) = 3.
    EXPECT_EQ(mapped.numCrossbars(), 9);
    EXPECT_EQ(mapped.logicalRows, 36);
    EXPECT_EQ(mapped.logicalCols, 12);
}

TEST(Mapping, PruningShrinksTheGrid)
{
    TestLayer dense_layer(12, 4, 3, 4, 2, false);
    TestLayer pruned_layer(12, 4, 3, 4, 2, true);
    MappingConfig cfg = smallConfig(4);
    EXPECT_LT(mapLayer(pruned_layer.state, cfg).numCrossbars(),
              mapLayer(dense_layer.state, cfg).numCrossbars());
}

TEST(Mapping, MagnitudesFitWeightBits)
{
    TestLayer layer(8, 4, 3, 4, 3);
    MappedLayer mapped = mapLayer(layer.state, smallConfig(4));
    for (const auto &xb : mapped.crossbars)
        for (uint32_t m : xb.magnitude)
            EXPECT_LE(m, 255u);
}

TEST(Mapping, FragmentSignsAreInternallyConsistent)
{
    TestLayer layer(8, 4, 3, 4, 4);
    MappedLayer mapped = mapLayer(layer.state, smallConfig(4));
    const WeightView v = layer.state.view();
    for (const auto &xb : mapped.crossbars) {
        for (int wc = 0; wc < xb.weightCols; ++wc) {
            const int j = xb.outputIndex[static_cast<size_t>(wc)];
            for (int f = 0; f < xb.fragsUsed; ++f) {
                const int8_t s = xb.sign(wc, f);
                for (int r = f * 4;
                     r < std::min(xb.rows, (f + 1) * 4); ++r) {
                    const float w = v.get(
                        xb.inputIndex[static_cast<size_t>(r)], j);
                    if (w > 0.0f)
                        EXPECT_EQ(s, 1);
                    else if (w < 0.0f)
                        EXPECT_EQ(s, -1);
                }
            }
        }
    }
}

TEST(Mapping, ReferenceMvmMatchesDenseComputation)
{
    TestLayer layer(10, 3, 3, 4, 5, true);
    MappingConfig cfg = smallConfig(4);
    MappedLayer mapped = mapLayer(layer.state, cfg);

    // Quantized random inputs over the full natural index space.
    Rng rng(6);
    std::vector<uint32_t> inputs(27);
    for (auto &v : inputs)
        v = static_cast<uint32_t>(rng.below(1u << 10));

    auto got = referenceMvm(mapped, inputs);

    // Direct dense computation from the quantized weights.
    const WeightView v = layer.state.view();
    for (int64_t j = 0; j < v.cols(); ++j) {
        int64_t expect = 0;
        for (int64_t r = 0; r < v.rows(); ++r) {
            const float w = v.get(r, j);
            const int64_t mag = static_cast<int64_t>(
                std::llround(std::fabs(w) / mapped.scale));
            const int64_t sgn = w > 0.0f ? 1 : (w < 0.0f ? -1 : 0);
            expect += sgn * mag *
                static_cast<int64_t>(inputs[static_cast<size_t>(r)]);
        }
        if (static_cast<size_t>(j) < got.size())
            EXPECT_EQ(got[static_cast<size_t>(j)], expect)
                << "output " << j;
        else
            EXPECT_EQ(expect, 0);
    }
}

TEST(Mapping, InputAndOutputIndicesAreValid)
{
    TestLayer layer(12, 4, 3, 8, 7, true);
    MappingConfig cfg = smallConfig(8);
    MappedLayer mapped = mapLayer(layer.state, cfg);
    for (const auto &xb : mapped.crossbars) {
        for (int idx : xb.inputIndex) {
            EXPECT_GE(idx, 0);
            EXPECT_LT(idx, 36);
            EXPECT_TRUE(layer.state.mask->rowKept[
                            static_cast<size_t>(idx)]);
        }
        for (int idx : xb.outputIndex) {
            EXPECT_GE(idx, 0);
            EXPECT_LT(idx, 12);
            EXPECT_TRUE(layer.state.mask->colKept[
                            static_cast<size_t>(idx)]);
        }
    }
}

TEST(Mapping, RejectsFragmentSizeMismatch)
{
    TestLayer layer(4, 2, 3, 4, 8);
    MappingConfig cfg = smallConfig(8);   // plan built with frag 4
    EXPECT_DEATH(mapLayer(layer.state, cfg), "");
}

} // namespace
} // namespace forms::arch
