/**
 * @file
 * Gradient checks (central finite differences) and shape tests for the
 * DNN substrate layers, including the residual composite block.
 */

#include <gtest/gtest.h>

#include "nn/layers.hh"
#include "nn/network.hh"

namespace forms::nn {
namespace {

/**
 * Numerically check d(loss)/d(param) for a layer embedded in a tiny
 * network where loss = sum(forward(x)). Returns max relative error.
 */
double
checkParamGradient(Layer &layer, const Tensor &input, Tensor &param,
                   Tensor &grad, int probes, Rng &rng)
{
    // Analytic gradient: backward with ones.
    layer.zeroGrads();
    Tensor out = layer.forward(input, true);
    Tensor ones(out.shape(), 1.0f);
    layer.backward(ones);

    double worst = 0.0;
    const float eps = 1e-2f;
    for (int p = 0; p < probes; ++p) {
        const int64_t i =
            static_cast<int64_t>(rng.below(
                static_cast<uint64_t>(param.numel())));
        const float saved = param.at(i);
        // Probe in train mode so BatchNorm keeps using batch statistics
        // (the analytic gradient is w.r.t. the train-mode function).
        param.at(i) = saved + eps;
        const double up = layer.forward(input, true).sum();
        param.at(i) = saved - eps;
        const double dn = layer.forward(input, true).sum();
        param.at(i) = saved;
        const double numeric = (up - dn) / (2.0 * eps);
        const double analytic = grad.at(i);
        const double scale =
            std::max({1.0, std::fabs(numeric), std::fabs(analytic)});
        worst = std::max(worst,
                         std::fabs(numeric - analytic) / scale);
    }
    return worst;
}

/** Same, for the input gradient. */
double
checkInputGradient(Layer &layer, Tensor input, int probes, Rng &rng)
{
    layer.zeroGrads();
    Tensor out = layer.forward(input, true);
    Tensor ones(out.shape(), 1.0f);
    Tensor gin = layer.backward(ones);

    double worst = 0.0;
    const float eps = 1e-2f;
    for (int p = 0; p < probes; ++p) {
        const int64_t i =
            static_cast<int64_t>(rng.below(
                static_cast<uint64_t>(input.numel())));
        const float saved = input.at(i);
        input.at(i) = saved + eps;
        const double up = layer.forward(input, true).sum();
        input.at(i) = saved - eps;
        const double dn = layer.forward(input, true).sum();
        input.at(i) = saved;
        const double numeric = (up - dn) / (2.0 * eps);
        const double analytic = gin.at(i);
        const double scale =
            std::max({1.0, std::fabs(numeric), std::fabs(analytic)});
        worst = std::max(worst,
                         std::fabs(numeric - analytic) / scale);
    }
    return worst;
}

TEST(DenseLayer, ForwardShape)
{
    Rng rng(1);
    Dense d("d", 6, 4, rng);
    Tensor x({3, 6});
    x.fillGaussian(rng, 0.0f, 1.0f);
    Tensor y = d.forward(x, false);
    EXPECT_EQ(y.dim(0), 3);
    EXPECT_EQ(y.dim(1), 4);
}

TEST(DenseLayer, WeightGradient)
{
    Rng rng(2);
    Dense d("d", 5, 3, rng);
    Tensor x({4, 5});
    x.fillGaussian(rng, 0.0f, 1.0f);
    auto params = d.params();
    EXPECT_LT(checkParamGradient(d, x, *params[0].value,
                                 *params[0].grad, 20, rng), 1e-2);
}

TEST(DenseLayer, BiasGradient)
{
    Rng rng(3);
    Dense d("d", 5, 3, rng);
    Tensor x({4, 5});
    x.fillGaussian(rng, 0.0f, 1.0f);
    auto params = d.params();
    EXPECT_LT(checkParamGradient(d, x, *params[1].value,
                                 *params[1].grad, 3, rng), 1e-2);
}

TEST(DenseLayer, InputGradient)
{
    Rng rng(4);
    Dense d("d", 5, 3, rng);
    Tensor x({2, 5});
    x.fillGaussian(rng, 0.0f, 1.0f);
    EXPECT_LT(checkInputGradient(d, x, 10, rng), 1e-2);
}

TEST(Conv2DLayer, ForwardShape)
{
    Rng rng(5);
    Conv2D c("c", 3, 8, 3, 2, 1, rng);
    Tensor x({2, 3, 8, 8});
    x.fillGaussian(rng, 0.0f, 1.0f);
    Tensor y = c.forward(x, false);
    EXPECT_EQ(y.dim(1), 8);
    EXPECT_EQ(y.dim(2), 4);
    EXPECT_EQ(y.dim(3), 4);
}

TEST(Conv2DLayer, WeightGradient)
{
    Rng rng(6);
    Conv2D c("c", 2, 3, 3, 1, 1, rng);
    Tensor x({2, 2, 5, 5});
    x.fillGaussian(rng, 0.0f, 1.0f);
    auto params = c.params();
    EXPECT_LT(checkParamGradient(c, x, *params[0].value,
                                 *params[0].grad, 20, rng), 1e-2);
}

TEST(Conv2DLayer, InputGradient)
{
    Rng rng(7);
    Conv2D c("c", 2, 3, 3, 2, 1, rng);
    Tensor x({1, 2, 6, 6});
    x.fillGaussian(rng, 0.0f, 1.0f);
    EXPECT_LT(checkInputGradient(c, x, 15, rng), 1e-2);
}

TEST(BatchNormLayer, NormalizesBatch)
{
    Rng rng(8);
    BatchNorm2D bn("bn", 4);
    Tensor x({8, 4, 3, 3});
    x.fillGaussian(rng, 5.0f, 2.0f);
    Tensor y = bn.forward(x, true);
    // Per-channel mean ~0, variance ~1 in training mode.
    for (int c = 0; c < 4; ++c) {
        double mean = 0.0, var = 0.0;
        int n = 0;
        for (int img = 0; img < 8; ++img)
            for (int s = 0; s < 9; ++s) {
                const float v = y.data()[(img * 4 + c) * 9 + s];
                mean += v;
                ++n;
            }
        mean /= n;
        for (int img = 0; img < 8; ++img)
            for (int s = 0; s < 9; ++s) {
                const double d =
                    y.data()[(img * 4 + c) * 9 + s] - mean;
                var += d * d;
            }
        var /= n;
        EXPECT_NEAR(mean, 0.0, 1e-4);
        EXPECT_NEAR(var, 1.0, 1e-2);
    }
}

TEST(BatchNormLayer, GammaGradient)
{
    Rng rng(9);
    BatchNorm2D bn("bn", 3);
    Tensor x({4, 3, 2, 2});
    x.fillGaussian(rng, 1.0f, 2.0f);
    auto params = bn.params();
    EXPECT_LT(checkParamGradient(bn, x, *params[0].value,
                                 *params[0].grad, 3, rng), 2e-2);
}

TEST(BatchNormLayer, EvalUsesRunningStats)
{
    Rng rng(10);
    BatchNorm2D bn("bn", 2);
    Tensor x({16, 2, 2, 2});
    x.fillGaussian(rng, 3.0f, 1.5f);
    for (int i = 0; i < 50; ++i)
        bn.forward(x, true);
    Tensor y = bn.forward(x, false);
    // In eval mode output should be close to the train-mode output.
    Tensor yt = bn.forward(x, true);
    double diff = 0.0;
    for (int64_t i = 0; i < y.numel(); ++i)
        diff = std::max<double>(diff, std::fabs(y.at(i) - yt.at(i)));
    EXPECT_LT(diff, 0.2);
}

TEST(ResidualBlockLayer, ForwardShapeWithProjection)
{
    Rng rng(11);
    ResidualBlock b("b", 4, 8, 2, rng);
    Tensor x({2, 4, 8, 8});
    x.fillGaussian(rng, 0.0f, 1.0f);
    Tensor y = b.forward(x, false);
    EXPECT_EQ(y.dim(1), 8);
    EXPECT_EQ(y.dim(2), 4);
}

TEST(ResidualBlockLayer, IdentityShape)
{
    Rng rng(12);
    ResidualBlock b("b", 4, 4, 1, rng);
    Tensor x({1, 4, 6, 6});
    x.fillGaussian(rng, 0.0f, 1.0f);
    Tensor y = b.forward(x, false);
    EXPECT_EQ(y.shape(), x.shape());
}

TEST(ResidualBlockLayer, ParamsIncludeBothPaths)
{
    Rng rng(13);
    ResidualBlock b("b", 4, 8, 2, rng);
    // conv1/bn1/conv2/bn2 (4x2 params) + proj conv/bn (2x2) = 12.
    EXPECT_EQ(b.params().size(), 12u);
}

TEST(NetworkContainer, CrossEntropyGradient)
{
    Rng rng(14);
    Tensor logits({3, 5});
    logits.fillGaussian(rng, 0.0f, 1.0f);
    std::vector<int> labels = {1, 4, 0};
    Tensor grad;
    const double loss = Network::crossEntropy(logits, labels, &grad);
    EXPECT_GT(loss, 0.0);

    const float eps = 1e-3f;
    for (int probe = 0; probe < 8; ++probe) {
        const int64_t i = static_cast<int64_t>(rng.below(15));
        const float saved = logits.at(i);
        logits.at(i) = saved + eps;
        const double up = Network::crossEntropy(logits, labels, nullptr);
        logits.at(i) = saved - eps;
        const double dn = Network::crossEntropy(logits, labels, nullptr);
        logits.at(i) = saved;
        EXPECT_NEAR((up - dn) / (2 * eps), grad.at(i), 1e-3);
    }
}

} // namespace
} // namespace forms::nn
