/**
 * @file
 * Tests for the unit helpers and a few numeric conventions the cost
 * models rely on (mW * ns = pJ, cycle time from GHz).
 */

#include <gtest/gtest.h>

#include "common/units.hh"

namespace forms {
namespace {

TEST(Units, FrequencyHelpers)
{
    EXPECT_DOUBLE_EQ(GHz(1.2), 1.2);
    EXPECT_DOUBLE_EQ(MHz(1200.0), 1.2);
    EXPECT_DOUBLE_EQ(cycleNs(2.0), 0.5);
}

TEST(Units, TimeHelpers)
{
    EXPECT_DOUBLE_EQ(ns(15.0), 15.0);
    EXPECT_DOUBLE_EQ(us(1.5), 1500.0);
}

TEST(Units, PowerAndEnergy)
{
    EXPECT_DOUBLE_EQ(W(2.0), 2000.0);
    EXPECT_DOUBLE_EQ(mW(3.0), 3.0);
    // 2 mW over 10 ns = 20 pJ.
    EXPECT_DOUBLE_EQ(energyPj(2.0, 10.0), 20.0);
}

TEST(Units, AdcSampleEnergyConvention)
{
    // A 0.475 mW ADC at 2.1 GHz burns ~0.226 pJ per conversion — the
    // convention used throughout the engine stats.
    const double power = 0.475;
    const double t = cycleNs(2.1);
    EXPECT_NEAR(energyPj(power, t), 0.226, 0.001);
}

} // namespace
} // namespace forms
