/**
 * @file
 * Unit tests for the common utilities: RNG determinism and
 * distribution sanity, running statistics, histograms, table printer.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"

namespace forms {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformBoundsRespected)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = r.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, BelowStaysBelow)
{
    Rng r(11);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, GaussianMoments)
{
    Rng r(13);
    RunningStat s;
    for (int i = 0; i < 50000; ++i)
        s.add(r.gaussian());
    EXPECT_NEAR(s.mean(), 0.0, 0.03);
    EXPECT_NEAR(s.stddev(), 1.0, 0.03);
}

TEST(Rng, LognormalMean)
{
    // E[lognormal(0, s)] = exp(s^2/2).
    Rng r(17);
    const double sigma = 0.1;
    RunningStat s;
    for (int i = 0; i < 50000; ++i)
        s.add(r.lognormal(0.0, sigma));
    EXPECT_NEAR(s.mean(), std::exp(sigma * sigma / 2.0), 0.01);
}

TEST(Rng, BernoulliFrequency)
{
    Rng r(19);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += r.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RunningStat, BasicMoments)
{
    RunningStat s;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        s.add(v);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
    EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.sum(), 10.0);
}

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStat, MergeMatchesSequential)
{
    Rng r(23);
    RunningStat all, a, b;
    for (int i = 0; i < 1000; ++i) {
        const double v = r.gaussian(3.0, 2.0);
        all.add(v);
        (i % 2 ? a : b).add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
}

TEST(Histogram, CountsAndFractions)
{
    Histogram h(4);
    h.add(0);
    h.add(1);
    h.add(1);
    h.add(3);
    EXPECT_EQ(h.total(), 4u);
    EXPECT_EQ(h.bin(1), 2u);
    EXPECT_DOUBLE_EQ(h.fraction(1), 0.5);
    EXPECT_DOUBLE_EQ(h.mean(), (0 + 1 + 1 + 3) / 4.0);
}

TEST(Histogram, ClampsOutOfRange)
{
    Histogram h(4);
    h.add(-5);
    h.add(99);
    EXPECT_EQ(h.bin(0), 1u);
    EXPECT_EQ(h.bin(3), 1u);
    EXPECT_EQ(h.total(), 2u);
}

TEST(Histogram, Percentile)
{
    Histogram h(10);
    for (int v = 0; v < 10; ++v)
        h.add(v, 10);
    EXPECT_EQ(h.percentile(0.5), 4);
    EXPECT_EQ(h.percentile(1.0), 9);
    EXPECT_EQ(h.percentile(0.05), 0);
}

TEST(Histogram, WeightedAdd)
{
    Histogram h(5);
    h.add(2, 7);
    EXPECT_EQ(h.bin(2), 7u);
    EXPECT_EQ(h.total(), 7u);
}

TEST(Table, RendersAlignedColumns)
{
    Table t({"name", "value"});
    t.row().cell("alpha").cell(1.5, 1);
    t.row().cell("b").cell(int64_t{42});
    const std::string s = t.str();
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("1.5"), std::string::npos);
    EXPECT_NE(s.find("42"), std::string::npos);
    // Header separator present.
    EXPECT_NE(s.find("|--"), std::string::npos);
}

TEST(Table, AddRowVectorForm)
{
    Table t({"a", "b", "c"});
    t.addRow({"1", "2", "3"});
    EXPECT_NE(t.str().find("| 1"), std::string::npos);
}

TEST(Logging, StrfmtFormats)
{
    EXPECT_EQ(strfmt("%d-%s", 3, "x"), "3-x");
    EXPECT_EQ(strfmt("%.2f", 1.2345), "1.23");
}

} // namespace
} // namespace forms
