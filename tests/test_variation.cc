/**
 * @file
 * Tests for the variation study driver: zero-variation is a no-op,
 * accuracy degradation appears at realistic sigma, weights are
 * restored after the study, and results are reproducible.
 */

#include <gtest/gtest.h>

#include "sim/variation_study.hh"

namespace forms::sim {
namespace {

struct Fixture
{
    nn::DatasetConfig cfg;
    nn::SyntheticImageDataset data;
    std::unique_ptr<nn::Network> net;

    Fixture() : cfg(makeCfg()), data(cfg)
    {
        Rng rng(31);
        net = nn::buildTinyConvNet(rng, cfg.classes, 8, 1, 12);
        nn::TrainConfig tc;
        tc.epochs = 6;
        tc.batchSize = 16;
        nn::Trainer trainer(*net, data, tc);
        trainer.run();
    }

    static nn::DatasetConfig
    makeCfg()
    {
        nn::DatasetConfig c;
        c.classes = 4;
        c.channels = 1;
        c.height = 12;
        c.width = 12;
        c.trainPerClass = 32;
        c.testPerClass = 16;
        c.noise = 0.4f;
        c.seed = 101;
        return c;
    }
};

TEST(VariationStudy, NearZeroSigmaKeepsAccuracy)
{
    Fixture f;
    VariationStudyConfig vc;
    vc.sigma = 1e-6;
    vc.runs = 3;
    auto res = runVariationStudy(*f.net, f.data, vc);
    EXPECT_NEAR(res.meanAccuracy, res.cleanAccuracy, 0.03);
}

TEST(VariationStudy, WeightsRestoredAfterStudy)
{
    Fixture f;
    std::vector<Tensor> before;
    for (auto &p : f.net->params())
        before.push_back(*p.value);

    VariationStudyConfig vc;
    vc.sigma = 0.3;
    vc.runs = 2;
    runVariationStudy(*f.net, f.data, vc);

    size_t i = 0;
    for (auto &p : f.net->params())
        EXPECT_TRUE(p.value->equals(before[i++]));
}

TEST(VariationStudy, LargeSigmaDegradesMore)
{
    Fixture f;
    VariationStudyConfig small, large;
    small.sigma = 0.05;
    small.runs = 6;
    large.sigma = 0.5;
    large.runs = 6;
    auto rs = runVariationStudy(*f.net, f.data, small);
    auto rl = runVariationStudy(*f.net, f.data, large);
    EXPECT_LE(rs.degradationPct(), rl.degradationPct() + 1.0);
}

TEST(VariationStudy, Reproducible)
{
    Fixture f;
    VariationStudyConfig vc;
    vc.sigma = 0.1;
    vc.runs = 4;
    auto a = runVariationStudy(*f.net, f.data, vc);
    auto b = runVariationStudy(*f.net, f.data, vc);
    EXPECT_DOUBLE_EQ(a.meanAccuracy, b.meanAccuracy);
}

} // namespace
} // namespace forms::sim
