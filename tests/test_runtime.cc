/**
 * @file
 * Batched runtime tests: the determinism contract. mvmBatch across
 * N threads must be bit-identical (outputs AND merged stats) to a
 * serial mvm loop — including with ADC quantization, device variation
 * and transient read noise enabled — and a whole-network forward must
 * be bit-identical across thread counts.
 */

#include <gtest/gtest.h>

#include "nn/dataset.hh"
#include "nn/zoo.hh"
#include "sim/activation_model.hh"
#include "sim/runtime.hh"
#include "stats_testutil.hh"

namespace forms {
namespace {

/** Polarized, quantized random conv layer mapped onto crossbars. */
arch::MappedLayer
buildMappedLayer(int frag, Tensor &weight, Tensor &grad, uint64_t seed)
{
    Rng rng(seed);
    weight.fillGaussian(rng, 0.0f, 0.4f);

    admm::LayerState st;
    st.name = "runtime-test";
    st.param = {"w", &weight, &grad, true, false};
    st.plan = admm::FragmentPlan::forConv(
        16, 16, 3, frag, admm::PolarizationPolicy::CMajor);
    admm::WeightView v = admm::WeightView::conv(weight);
    st.signs = admm::computeSigns(v, st.plan);
    admm::projectPolarization(v, st.plan, *st.signs);
    admm::QuantSpec q;
    q.bits = 8;
    st.quantScale = admm::projectQuantize(v, q);

    arch::MappingConfig mcfg;
    mcfg.xbarRows = 64;
    mcfg.xbarCols = 64;
    mcfg.fragSize = frag;
    mcfg.inputBits = 16;
    return arch::mapLayer(st, mcfg);
}

std::vector<std::vector<uint32_t>>
samplePresentations(size_t count, size_t rows, uint64_t seed)
{
    sim::ActivationModel act = sim::ActivationModel::calibratedResNet50();
    Rng rng(seed);
    std::vector<std::vector<uint32_t>> batch;
    batch.reserve(count);
    for (size_t i = 0; i < count; ++i)
        batch.push_back(act.sampleVector(rng, rows));
    return batch;
}

/** Serial mvm loop vs mvmBatch on `threads` threads: bit-identical. */
void
checkBatchMatchesSerial(arch::EngineConfig ecfg, int threads)
{
    static Tensor weight({16, 16, 3, 3}), grad({16, 16, 3, 3});
    const arch::MappedLayer mapped =
        buildMappedLayer(8, weight, grad, 2024);
    const auto batch = samplePresentations(33, 16 * 9, 7);

    // Two engines with identical construction: program-time variation
    // draws are identical.
    arch::CrossbarEngine serial_engine(mapped, ecfg);
    arch::CrossbarEngine batch_engine(mapped, ecfg);

    arch::EngineStats serial_stats;
    std::vector<std::vector<double>> serial_out;
    for (const auto &p : batch)
        serial_out.push_back(serial_engine.mvm(p, &serial_stats));

    ThreadPool pool(threads);
    arch::EngineStats batch_stats;
    const auto batch_out =
        batch_engine.mvmBatch(batch, &batch_stats, &pool);

    ASSERT_EQ(batch_out.size(), serial_out.size());
    for (size_t i = 0; i < batch_out.size(); ++i) {
        ASSERT_EQ(batch_out[i].size(), serial_out[i].size());
        for (size_t j = 0; j < batch_out[i].size(); ++j)
            EXPECT_EQ(batch_out[i][j], serial_out[i][j])
                << "presentation " << i << " output " << j;
    }
    expectStatsIdentical(batch_stats, serial_stats);
    EXPECT_EQ(batch_stats.presentations, batch.size());
}

TEST(MvmBatch, BitIdenticalToSerialLossless)
{
    arch::EngineConfig ecfg;
    ecfg.adcBits = 0;
    checkBatchMatchesSerial(ecfg, 4);
}

TEST(MvmBatch, BitIdenticalToSerialWithAdcQuantization)
{
    arch::EngineConfig ecfg;
    ecfg.adcBits = 4;
    checkBatchMatchesSerial(ecfg, 4);
}

TEST(MvmBatch, BitIdenticalToSerialWithDeviceVariation)
{
    arch::EngineConfig ecfg;
    ecfg.adcBits = 4;
    ecfg.cell.variationSigma = 0.1;
    checkBatchMatchesSerial(ecfg, 4);
}

TEST(MvmBatch, BitIdenticalToSerialWithReadNoise)
{
    // Read noise is the per-presentation stochastic path: its streams
    // are keyed by (seed, presentation index), not by thread.
    arch::EngineConfig ecfg;
    ecfg.adcBits = 5;
    ecfg.cell.variationSigma = 0.1;
    ecfg.readNoiseSigma = 0.05;
    checkBatchMatchesSerial(ecfg, 4);
    checkBatchMatchesSerial(ecfg, 7);
}

TEST(MvmBatch, SerialMvmIsBatchOfOne)
{
    static Tensor weight({16, 16, 3, 3}), grad({16, 16, 3, 3});
    const arch::MappedLayer mapped =
        buildMappedLayer(8, weight, grad, 11);
    const auto batch = samplePresentations(3, 16 * 9, 5);

    arch::CrossbarEngine a(mapped, {});
    arch::CrossbarEngine b(mapped, {});
    for (const auto &p : batch) {
        const auto via_mvm = a.mvm(p);
        const auto via_batch = b.mvmBatch({p});
        ASSERT_EQ(via_batch.size(), 1u);
        EXPECT_EQ(via_mvm, via_batch.front());
    }
}

TEST(MvmBatch, ReadNoisePerturbsButPreservesDeterminism)
{
    static Tensor weight({16, 16, 3, 3}), grad({16, 16, 3, 3});
    const arch::MappedLayer mapped =
        buildMappedLayer(8, weight, grad, 12);
    const auto batch = samplePresentations(4, 16 * 9, 9);

    arch::EngineConfig noisy;
    noisy.adcBits = 0;
    noisy.readNoiseSigma = 0.2;
    arch::CrossbarEngine clean_engine(mapped, {});
    arch::CrossbarEngine noisy_engine(mapped, noisy);
    arch::CrossbarEngine noisy_again(mapped, noisy);

    const auto clean = clean_engine.mvmBatch(batch);
    const auto first = noisy_engine.mvmBatch(batch);
    const auto second = noisy_again.mvmBatch(batch);
    EXPECT_EQ(first, second);   // same seed, same stream
    EXPECT_NE(first, clean);    // the noise actually does something
}

TEST(InferenceRuntime, ForwardBitIdenticalAcrossThreadCounts)
{
    Rng rng(31);
    auto net = nn::buildTinyConvNet(rng, 4, 8, 1, 12);
    auto states = sim::snapshotCompress(*net, 4, 8);
    ASSERT_EQ(states.size(), 3u);   // conv1, conv2, fc

    nn::DatasetConfig dcfg;
    dcfg.classes = 4;
    dcfg.channels = 1;
    dcfg.height = 12;
    dcfg.width = 12;
    dcfg.trainPerClass = 2;
    dcfg.testPerClass = 4;
    dcfg.seed = 77;
    nn::SyntheticImageDataset data(dcfg);

    sim::RuntimeConfig rcfg;
    rcfg.mapping.xbarRows = 16;
    rcfg.mapping.xbarCols = 16;
    rcfg.mapping.fragSize = 4;
    rcfg.mapping.inputBits = 12;
    rcfg.engine.adcBits = 3;
    rcfg.engine.cell.variationSigma = 0.1;
    rcfg.engine.readNoiseSigma = 0.02;

    ThreadPool serial_pool(1), parallel_pool(4);

    rcfg.pool = &serial_pool;
    sim::InferenceRuntime serial_rt(*net, states, rcfg);
    rcfg.pool = &parallel_pool;
    sim::InferenceRuntime parallel_rt(*net, states, rcfg);

    EXPECT_EQ(serial_rt.stages(), net->size());
    EXPECT_EQ(serial_rt.programmedStages(), 3u);
    EXPECT_GT(serial_rt.totalCrossbars(), 0);

    sim::RuntimeReport serial_rep, parallel_rep;
    const Tensor serial_logits =
        serial_rt.forward(data.test().images, &serial_rep);
    const Tensor parallel_logits =
        parallel_rt.forward(data.test().images, &parallel_rep);

    EXPECT_TRUE(serial_logits.equals(parallel_logits));

    ASSERT_EQ(serial_rep.layers.size(), parallel_rep.layers.size());
    for (size_t i = 0; i < serial_rep.layers.size(); ++i) {
        expectStatsIdentical(serial_rep.layers[i].stats,
                             parallel_rep.layers[i].stats);
    }
    EXPECT_EQ(serial_rep.presentations, parallel_rep.presentations);
    EXPECT_GT(serial_rep.presentations, 64u);
    EXPECT_GT(serial_rep.modelTimeNs(), 0.0);
    EXPECT_GT(serial_rep.modelEnergyPj(), 0.0);
}

TEST(InferenceRuntime, ResetPresentationStreamsReproducesNoisyRuns)
{
    Rng rng(34);
    auto net = nn::buildTinyConvNet(rng, 4, 8, 1, 12);
    auto states = sim::snapshotCompress(*net, 4, 8);

    sim::RuntimeConfig rcfg;
    rcfg.mapping.xbarRows = 16;
    rcfg.mapping.xbarCols = 16;
    rcfg.mapping.fragSize = 4;
    rcfg.mapping.inputBits = 12;
    rcfg.engine.readNoiseSigma = 0.05;
    sim::InferenceRuntime rt(*net, states, rcfg);

    Tensor batch({2, 1, 12, 12});
    batch.fillUniform(rng, 0.0f, 1.0f);

    // With read noise, presentation indices continue across calls, so
    // a repeat differs — until the streams are reset.
    const Tensor first = rt.forward(batch);
    const Tensor drifted = rt.forward(batch);
    EXPECT_FALSE(first.equals(drifted));
    rt.resetPresentationStreams();
    const Tensor replay = rt.forward(batch);
    EXPECT_TRUE(first.equals(replay));
}

TEST(InferenceRuntime, ReportAccumulatesAcrossForwards)
{
    Rng rng(33);
    auto net = nn::buildTinyConvNet(rng, 4, 8, 1, 12);
    auto states = sim::snapshotCompress(*net, 4, 8);

    sim::RuntimeConfig rcfg;
    rcfg.mapping.xbarRows = 16;
    rcfg.mapping.xbarCols = 16;
    rcfg.mapping.fragSize = 4;
    rcfg.mapping.inputBits = 12;
    sim::InferenceRuntime rt(*net, states, rcfg);

    Tensor batch({2, 1, 12, 12});
    batch.fillUniform(rng, 0.0f, 1.0f);

    // One report over two minibatches: per-layer rows merge in place
    // instead of duplicating, and the counters accumulate.
    sim::RuntimeReport rep;
    rt.forward(batch, &rep);
    const size_t rows = rep.layers.size();
    const uint64_t pres = rep.presentations;
    const uint64_t first_layer_pres = rep.layers[0].stats.presentations;
    rt.forward(batch, &rep);
    EXPECT_EQ(rep.layers.size(), rows);
    EXPECT_EQ(rep.presentations, 2 * pres);
    EXPECT_EQ(rep.layers[0].stats.presentations, 2 * first_layer_pres);
}

TEST(InferenceRuntime, AccuracyRunsAndIsBounded)
{
    Rng rng(32);
    auto net = nn::buildTinyConvNet(rng, 4, 8, 1, 12);
    auto states = sim::snapshotCompress(*net, 4, 8);

    nn::DatasetConfig dcfg;
    dcfg.classes = 4;
    dcfg.channels = 1;
    dcfg.height = 12;
    dcfg.width = 12;
    dcfg.trainPerClass = 2;
    dcfg.testPerClass = 3;
    dcfg.seed = 78;
    nn::SyntheticImageDataset data(dcfg);

    sim::RuntimeConfig rcfg;
    rcfg.mapping.xbarRows = 16;
    rcfg.mapping.xbarCols = 16;
    rcfg.mapping.fragSize = 4;
    rcfg.mapping.inputBits = 12;

    sim::InferenceRuntime rt(*net, states, rcfg);
    const double acc =
        rt.accuracy(data.test().images, data.test().labels);
    EXPECT_GE(acc, 0.0);
    EXPECT_LE(acc, 1.0);
}

} // namespace
} // namespace forms
