/**
 * @file
 * Tests for the ADC/DAC models: quantization transfer function,
 * lossless-resolution exactness, saturation, and the area/power
 * scaling law reproducing the paper's Table III design points.
 */

#include <gtest/gtest.h>

#include "reram/adc.hh"

namespace forms::reram {
namespace {

TEST(Adc, LosslessBits)
{
    // rows * (2^cellBits - 1) distinct sums + zero.
    EXPECT_EQ(AdcModel::losslessBits(8, 2), 5);    // max 24 -> 5 bits
    EXPECT_EQ(AdcModel::losslessBits(4, 2), 4);    // max 12 -> 4 bits
    EXPECT_EQ(AdcModel::losslessBits(16, 2), 6);   // max 48 -> 6 bits
    EXPECT_EQ(AdcModel::losslessBits(128, 2), 9);  // max 384 -> 9 bits
    EXPECT_EQ(AdcModel::losslessBits(8, 1), 4);    // max 8 -> 4 bits
}

TEST(Adc, LosslessQuantizationIsExactOnIntegers)
{
    const int rows = 8, cell_bits = 2;
    const int max_sum = rows * ((1 << cell_bits) - 1);
    AdcModel adc({AdcModel::losslessBits(rows, cell_bits), 2.1});
    // With full_scale == codes-1 the step is exactly 1.
    const double fs = static_cast<double>(adc.config().codes() - 1);
    for (int v = 0; v <= max_sum; ++v) {
        const int count = adc.quantize(static_cast<double>(v), fs);
        EXPECT_DOUBLE_EQ(adc.reconstruct(count, fs),
                         static_cast<double>(v));
    }
}

TEST(Adc, SaturatesAtTopCode)
{
    AdcModel adc({4, 2.1});
    EXPECT_EQ(adc.quantize(1e9, 24.0), 15);
    EXPECT_EQ(adc.quantize(-5.0, 24.0), 0);
}

TEST(Adc, PaperModeRoundsToStep)
{
    // 4-bit ADC over a 0..24 fragment sum: step = 24/15 = 1.6.
    AdcModel adc({4, 2.1});
    const double fs = 24.0;
    const int count = adc.quantize(8.0, fs);
    EXPECT_EQ(count, 5);   // 8 / 1.6 = 5.0
    EXPECT_NEAR(adc.reconstruct(count, fs), 8.0, 1e-9);
    // Mid-step values incur bounded error.
    const int c2 = adc.quantize(8.7, fs);
    EXPECT_NEAR(adc.reconstruct(c2, fs), 8.7, fs / 15.0 / 2.0 + 1e-9);
}

TEST(Adc, ScalingLawReproducesIsaacPoint)
{
    // Table III: 8 ADCs of 8-bit @ 1.2 GHz = 16 mW, 0.0096 mm^2.
    AdcModel adc({8, 1.2});
    EXPECT_NEAR(adc.powerMw() * 8, 16.0, 0.05);
    EXPECT_NEAR(adc.areaMm2() * 8, 0.0096, 0.0001);
}

TEST(Adc, ScalingLawReproducesFormsPoint)
{
    // Table III: 32 ADCs of 4-bit @ 2.1 GHz = 15.2 mW, 0.0091 mm^2.
    AdcModel adc({4, 2.1});
    EXPECT_NEAR(adc.powerMw() * 32, 15.2, 0.05);
    EXPECT_NEAR(adc.areaMm2() * 32, 0.0091, 0.0001);
}

TEST(Adc, PowerAndAreaGrowWithResolution)
{
    double prev_p = 0.0, prev_a = 0.0;
    for (int bits = 3; bits <= 10; ++bits) {
        AdcModel adc({bits, 1.0});
        EXPECT_GT(adc.powerMw(), prev_p);
        EXPECT_GT(adc.areaMm2(), prev_a);
        prev_p = adc.powerMw();
        prev_a = adc.areaMm2();
    }
}

TEST(Adc, ExponentialTermDominatesEventually)
{
    // Area roughly quadruples from 8 to 10 bits (cap-DAC dominated).
    AdcModel a8({8, 1.0}), a10({10, 1.0});
    EXPECT_GT(a10.areaMm2() / a8.areaMm2(), 2.5);
}

TEST(Adc, PaperFrequencyPoints)
{
    EXPECT_NEAR(AdcModel::paperFreqGhz(8), 1.2, 1e-9);
    EXPECT_NEAR(AdcModel::paperFreqGhz(4), 2.1, 1e-9);
    // Monotone: fewer bits -> faster.
    EXPECT_GT(AdcModel::paperFreqGhz(3), AdcModel::paperFreqGhz(5));
}

TEST(Adc, EnergyPerSample)
{
    AdcModel adc({4, 2.1});
    EXPECT_NEAR(adc.energyPerSamplePj(),
                adc.powerMw() / 2.1, 1e-9);
}

TEST(Dac, TableIIIValues)
{
    // 8*128 1-bit DACs = 4 mW / 0.00017 mm^2.
    EXPECT_NEAR(DacModel::powerMw() * 8 * 128, 4.0, 1e-9);
    EXPECT_NEAR(DacModel::areaMm2() * 8 * 128, 0.00017, 1e-9);
}

} // namespace
} // namespace forms::reram
