/**
 * @file
 * Resilience tier: deterministic fault maps, the conductance overlay,
 * and spare-crossbar remapping.
 *
 * The load-bearing property is exact recovery: a column-kill-only
 * fault map plus a sufficient spare budget plus the remap pass must
 * reproduce the fault-free logits AND EngineStats bit-for-bit —
 * remapping swaps physical identities only, never accumulation order.
 * When the spare budget runs out, the pass must die loudly, naming
 * the node, crossbar and dead column (death test).
 */

#include <gtest/gtest.h>

#include "arch/remap.hh"
#include "compile/passes.hh"
#include "nn/zoo.hh"
#include "reram/faults.hh"
#include "sim/graph_runtime.hh"
#include "sim/pipeline_runtime.hh"
#include "stats_testutil.hh"

namespace forms {
namespace {

/** Compile + fold + compress a scaled ResNet, ready to program. */
struct CompiledResNet
{
    std::unique_ptr<nn::Network> net;
    compile::Graph graph;
    std::vector<admm::LayerState> states;

    explicit CompiledResNet(uint64_t seed)
    {
        Rng rng(seed);
        net = nn::buildResNetSmall(rng, 4, 8, 1);
        graph = compile::lowerNetwork(*net);
        graph.inferShapes({3, 32, 32});
        EXPECT_GT(compile::foldBatchNorm(graph), 0);
        states = sim::snapshotCompress(*net, 8, 8);
    }
};

/** ADC quantization + device variation + read noise all on. */
sim::RuntimeConfig
noisyConfig(ThreadPool *pool)
{
    sim::RuntimeConfig rcfg;
    rcfg.mapping.xbarRows = 64;
    rcfg.mapping.xbarCols = 64;
    rcfg.mapping.fragSize = 8;
    rcfg.mapping.inputBits = 8;
    rcfg.engine.adcBits = 3;
    rcfg.engine.cell.variationSigma = 0.1;
    rcfg.engine.readNoiseSigma = 0.02;
    rcfg.pool = pool;
    return rcfg;
}

// ---------------------------------------------------------------------
// FaultMap: deterministic, keyed draws.
// ---------------------------------------------------------------------

TEST(FaultMap, DrawsAreDeterministicAndKeyed)
{
    reram::FaultConfig fc;
    fc.stuckLrsRate = 0.02;
    fc.stuckHrsRate = 0.02;
    fc.columnKillRate = 0.05;
    fc.driftRate = 0.05;
    fc.seed = 77;
    reram::FaultMap map(fc);

    const auto a = map.draw(3, 5, 64, 64);
    const auto b = map.draw(3, 5, 64, 64);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.colDead, b.colDead);
    EXPECT_EQ(a.drift, b.drift);

    // A different physical crossbar (or owner) draws a different
    // pattern — with these rates a 64x64 collision is astronomically
    // unlikely.
    const auto other_phys = map.draw(3, 6, 64, 64);
    const auto other_key = map.draw(4, 5, 64, 64);
    EXPECT_NE(a.kind, other_phys.kind);
    EXPECT_NE(a.kind, other_key.kind);
}

TEST(FaultMap, ColumnStreamIsIndependentOfCellRates)
{
    // The remap pass probes only the column stream; its verdicts must
    // not shift when stuck/drift rates change.
    reram::FaultConfig cols_only;
    cols_only.columnKillRate = 0.1;
    cols_only.seed = 11;

    reram::FaultConfig all = cols_only;
    all.stuckLrsRate = 0.2;
    all.stuckHrsRate = 0.2;
    all.driftRate = 0.3;

    reram::FaultMap a(cols_only), b(all);
    for (int phys = 0; phys < 16; ++phys) {
        EXPECT_EQ(a.draw(9, phys, 32, 32).colDead,
                  b.draw(9, phys, 32, 32).colDead)
            << "phys " << phys;
        EXPECT_EQ(a.firstDeadColumn(9, phys, 32, 32),
                  b.firstDeadColumn(9, phys, 32, 32))
            << "phys " << phys;
    }
}

TEST(FaultMap, FirstDeadColumnMatchesTheFullDraw)
{
    reram::FaultConfig fc;
    fc.columnKillRate = 0.08;
    fc.seed = 21;
    reram::FaultMap map(fc);

    int probed_dead = 0;
    for (int phys = 0; phys < 32; ++phys) {
        const auto full = map.draw(2, phys, 64, 64);
        for (int used : {16, 48, 64}) {
            EXPECT_EQ(map.firstDeadColumn(2, phys, 64, used),
                      full.firstDeadColumn(used))
                << "phys " << phys << " used " << used;
        }
        if (map.firstDeadColumn(2, phys, 64, 64) >= 0)
            ++probed_dead;
    }
    EXPECT_GT(probed_dead, 0) << "rate 0.08 over 32x64 columns drew "
                                 "no kill; seed is broken";
}

// ---------------------------------------------------------------------
// Overlay: a fault map changes only what it should.
// ---------------------------------------------------------------------

TEST(FaultOverlay, ZeroRateMapIsBitwiseInert)
{
    CompiledResNet c(301);
    Rng rng(302);
    Tensor batch({2, 3, 32, 32});
    batch.fillUniform(rng, 0.0f, 1.0f);

    ThreadPool pool(4);
    sim::GraphRuntime clean(c.graph, c.states, noisyConfig(&pool));
    sim::RuntimeReport clean_rep;
    const Tensor clean_logits = clean.forward(batch, &clean_rep);

    reram::FaultMap zero{reram::FaultConfig{}};
    sim::RuntimeConfig rcfg = noisyConfig(&pool);
    rcfg.faults = &zero;
    sim::GraphRuntime faulted(c.graph, c.states, rcfg);
    sim::RuntimeReport rep;
    const Tensor logits = faulted.forward(batch, &rep);

    EXPECT_TRUE(logits.equals(clean_logits));
    ASSERT_EQ(rep.layers.size(), clean_rep.layers.size());
    for (size_t i = 0; i < rep.layers.size(); ++i)
        expectStatsIdentical(rep.layers[i].stats,
                             clean_rep.layers[i].stats);
}

TEST(FaultOverlay, StuckCellsPerturbLogitsDeterministically)
{
    CompiledResNet c(311);
    Rng rng(312);
    Tensor batch({2, 3, 32, 32});
    batch.fillUniform(rng, 0.0f, 1.0f);

    ThreadPool pool(4);
    sim::GraphRuntime clean(c.graph, c.states, noisyConfig(&pool));
    const Tensor clean_logits = clean.forward(batch, nullptr);

    reram::FaultConfig fc;
    fc.stuckLrsRate = 0.01;
    fc.stuckHrsRate = 0.01;
    fc.driftRate = 0.02;
    fc.seed = 313;
    reram::FaultMap map(fc);

    sim::RuntimeConfig rcfg = noisyConfig(&pool);
    rcfg.faults = &map;
    sim::GraphRuntime faulted_a(c.graph, c.states, rcfg);
    sim::GraphRuntime faulted_b(c.graph, c.states, rcfg);
    const Tensor a = faulted_a.forward(batch, nullptr);
    const Tensor b = faulted_b.forward(batch, nullptr);

    EXPECT_FALSE(a.equals(clean_logits))
        << "1-2% stuck cells left every logit untouched";
    EXPECT_TRUE(a.equals(b)) << "fault overlay is nondeterministic";
}

// ---------------------------------------------------------------------
// Remap: exact recovery while spares last, loud death after.
// ---------------------------------------------------------------------

TEST(Remap, ColumnKillWithSparesRecoversCleanLogitsExactly)
{
    CompiledResNet c(321);
    Rng rng(322);
    Tensor batch({2, 3, 32, 32});
    batch.fillUniform(rng, 0.0f, 1.0f);

    ThreadPool pool(4);
    sim::GraphRuntime clean(c.graph, c.states, noisyConfig(&pool));
    sim::RuntimeReport clean_rep;
    const Tensor clean_logits = clean.forward(batch, &clean_rep);

    reram::FaultConfig fc;
    fc.columnKillRate = 0.002;   // ~12% of 64-column tiles hit
    fc.seed = 323;
    reram::FaultMap map(fc);

    sim::RuntimeConfig rcfg = noisyConfig(&pool);
    rcfg.faults = &map;
    rcfg.remapFaults = true;
    rcfg.mapping.spareXbars = 16;
    sim::GraphRuntime repaired(c.graph, c.states, rcfg);
    sim::RuntimeReport rep;
    const Tensor logits = repaired.forward(batch, &rep);

    EXPECT_TRUE(logits.equals(clean_logits))
        << "remap changed the numbers: physical-identity swap leaked "
           "into accumulation order";
    ASSERT_EQ(rep.layers.size(), clean_rep.layers.size());
    for (size_t i = 0; i < rep.layers.size(); ++i)
        expectStatsIdentical(rep.layers[i].stats,
                             clean_rep.layers[i].stats);

    // Without remapping the same map must hurt — otherwise this test
    // proved nothing (no crossbar actually drew a dead used column).
    sim::RuntimeConfig broken = rcfg;
    broken.remapFaults = false;
    broken.mapping.spareXbars = 0;
    sim::GraphRuntime unrepaired(c.graph, c.states, broken);
    EXPECT_FALSE(unrepaired.forward(batch, nullptr).equals(clean_logits))
        << "fault map killed no used column; raise the rate or reseed";
}

TEST(Remap, ReportCountsFaultyAndRemappedTiles)
{
    CompiledResNet c(331);
    Rng rng(332);
    Tensor batch({2, 3, 32, 32});
    batch.fillUniform(rng, 0.0f, 1.0f);

    reram::FaultConfig fc;
    fc.columnKillRate = 0.002;
    fc.seed = 333;
    reram::FaultMap map(fc);

    ThreadPool pool(4);
    sim::PipelineRuntimeConfig pcfg;
    pcfg.runtime = noisyConfig(&pool);
    pcfg.runtime.faults = &map;
    pcfg.runtime.remapFaults = true;
    pcfg.runtime.mapping.spareXbars = 16;
    pcfg.microBatch = 1;

    compile::ScheduleConfig scfg;
    scfg.chips = 2;
    sim::PipelineRuntime rt(c.graph,
                            compile::Schedule::partition(c.graph, scfg),
                            c.states, pcfg);
    sim::PipelineReport rep;
    (void)rt.forward(batch, &rep);

    EXPECT_GT(rep.remappedCrossbars, 0)
        << "rate 0.01 remapped nothing; the report plumbing is dead";
    int64_t chip_faulty = 0, chip_remapped = 0;
    for (const auto &chip : rep.chips) {
        chip_faulty += chip.faultyCrossbars;
        chip_remapped += chip.remappedCrossbars;
    }
    EXPECT_EQ(chip_faulty, rep.faultyCrossbars);
    EXPECT_EQ(chip_remapped, rep.remappedCrossbars);

    // A second forward must not double-count the (static) exposure.
    sim::PipelineReport rep2;
    (void)rt.forward(batch, &rep2);
    EXPECT_EQ(rep2.faultyCrossbars, rep.faultyCrossbars);
    EXPECT_EQ(rep2.remappedCrossbars, rep.remappedCrossbars);
}

using RemapDeathTest = ::testing::Test;

TEST(RemapDeathTest, SpareExhaustionNamesNodeCrossbarAndColumn)
{
    CompiledResNet c(341);

    reram::FaultConfig fc;
    fc.columnKillRate = 1.0;   // every column dead: spares can't help
    fc.seed = 343;
    reram::FaultMap map(fc);

    ThreadPool pool(1);
    sim::RuntimeConfig rcfg = noisyConfig(&pool);
    rcfg.faults = &map;
    rcfg.remapFaults = true;
    rcfg.mapping.spareXbars = 2;   // all spares are dead too

    EXPECT_DEATH(
        {
            sim::GraphRuntime rt(c.graph, c.states, rcfg);
        },
        "remap: node .* dead cell column .* spare");
}

} // namespace
} // namespace forms
