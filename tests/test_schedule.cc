/**
 * @file
 * Schedule partitioner tests: determinism (same graph + same config
 * => identical partition), contiguity in topological order, exact
 * balance behaviour on uniform chains, capacity awareness, transfer
 * materialization and chip-count clamping.
 */

#include <gtest/gtest.h>

#include "compile/passes.hh"
#include "compile/schedule.hh"
#include "nn/zoo.hh"

namespace forms {
namespace {

/** Input -> n relu chain with uniform per-node work. */
compile::Graph
reluChain(int relus)
{
    compile::Graph g;
    int prev = g.addNode(compile::Op::Input, "in", {});
    for (int i = 0; i < relus; ++i) {
        prev = g.addNode(compile::Op::Relu, "relu" + std::to_string(i),
                         {prev});
    }
    g.setOutput(prev);
    g.inferShapes({3, 8, 8});
    return g;
}

/** Compiled + folded ResNetSmall graph (the realistic topology). */
struct ResNetGraph
{
    std::unique_ptr<nn::Network> net;
    compile::Graph graph;

    explicit ResNetGraph(uint64_t seed)
    {
        Rng rng(seed);
        net = nn::buildResNetSmall(rng, 4, 8, 1);
        graph = compile::lowerNetwork(*net);
        graph.inferShapes({3, 32, 32});
        EXPECT_GT(compile::foldBatchNorm(graph), 0);
    }
};

TEST(Schedule, PartitionIsDeterministic)
{
    ResNetGraph r(31);
    compile::ScheduleConfig cfg;
    cfg.chips = 3;
    const auto a = compile::Schedule::partition(r.graph, cfg);
    const auto b = compile::Schedule::partition(r.graph, cfg);

    ASSERT_EQ(a.chips(), b.chips());
    for (int id = 0; id < r.graph.capacity(); ++id)
        EXPECT_EQ(a.chipOf(id), b.chipOf(id)) << "node " << id;
    ASSERT_EQ(a.transfers().size(), b.transfers().size());
    for (size_t i = 0; i < a.transfers().size(); ++i) {
        EXPECT_EQ(a.transfers()[i].producer, b.transfers()[i].producer);
        EXPECT_EQ(a.transfers()[i].fromChip, b.transfers()[i].fromChip);
        EXPECT_EQ(a.transfers()[i].bytesPerSample,
                  b.transfers()[i].bytesPerSample);
    }
    EXPECT_EQ(a.cutBytesPerSample(), b.cutBytesPerSample());
}

TEST(Schedule, AssignsEveryLiveNodeContiguouslyInTopoOrder)
{
    ResNetGraph r(32);
    compile::ScheduleConfig cfg;
    cfg.chips = 4;
    const auto s = compile::Schedule::partition(r.graph, cfg);

    ASSERT_EQ(s.chips(), 4);
    int prev_chip = 0;
    size_t assigned = 0;
    for (int id : r.graph.topoOrder()) {
        const int c = s.chipOf(id);
        ASSERT_GE(c, prev_chip) << "chip ids must be non-decreasing "
                                   "along the topological order";
        prev_chip = c;
        ++assigned;
    }
    EXPECT_EQ(assigned, r.graph.size());
    size_t listed = 0;
    for (int c = 0; c < s.chips(); ++c) {
        EXPECT_FALSE(s.chipNodes()[static_cast<size_t>(c)].empty());
        EXPECT_GT(s.chipWork(c), 0.0);
        listed += s.chipNodes()[static_cast<size_t>(c)].size();
    }
    EXPECT_EQ(listed, r.graph.size());
}

TEST(Schedule, UniformChainSplitsEvenlyWithSmallestCutFirst)
{
    // 9 uniform nodes on 2 chips: both 4/5 and 5/4 hit the same max
    // work and cut traffic; the deterministic tie-break picks the
    // lexicographically smallest cut vector, i.e. 4/5.
    auto g = reluChain(8);
    compile::ScheduleConfig cfg;
    cfg.chips = 2;
    const auto s = compile::Schedule::partition(g, cfg);
    ASSERT_EQ(s.chips(), 2);
    EXPECT_EQ(s.chipNodes()[0].size(), 4u);
    EXPECT_EQ(s.chipNodes()[1].size(), 5u);
}

TEST(Schedule, CapacityVectorShiftsTheBoundary)
{
    // Chip 0 twice as capable: the balance objective normalizes by
    // capacity, so it takes 6 of the 9 uniform nodes.
    auto g = reluChain(8);
    compile::ScheduleConfig cfg;
    cfg.chips = 2;
    cfg.capacity = {2.0, 1.0};
    const auto s = compile::Schedule::partition(g, cfg);
    EXPECT_EQ(s.chipNodes()[0].size(), 6u);
    EXPECT_EQ(s.chipNodes()[1].size(), 3u);
}

TEST(Schedule, TransfersAreNeighborHopsWithTensorBytes)
{
    auto g = reluChain(8);
    compile::ScheduleConfig cfg;
    cfg.chips = 3;
    const auto s = compile::Schedule::partition(g, cfg);

    // A straight chain crosses each of the 2 boundaries exactly once,
    // carrying one 3x8x8 float tensor per sample.
    ASSERT_EQ(s.transfers().size(), 2u);
    for (const auto &t : s.transfers()) {
        EXPECT_EQ(t.toChip, t.fromChip + 1);
        EXPECT_EQ(t.bytesPerSample,
                  static_cast<int64_t>(3 * 8 * 8 * sizeof(float)));
        EXPECT_EQ(s.chipOf(t.producer), t.fromChip);
    }
    EXPECT_EQ(s.cutBytesPerSample(),
              static_cast<int64_t>(2 * 3 * 8 * 8 * sizeof(float)));
}

TEST(Schedule, ResidualGraphTransfersFollowTheSchedule)
{
    ResNetGraph r(33);
    compile::ScheduleConfig cfg;
    cfg.chips = 4;
    const auto s = compile::Schedule::partition(r.graph, cfg);
    EXPECT_FALSE(s.transfers().empty());
    for (const auto &t : s.transfers()) {
        EXPECT_EQ(t.toChip, t.fromChip + 1);
        EXPECT_GT(t.bytesPerSample, 0);
        // The producer lives at or before the sending chip
        // (store-and-forward re-sends values that hop further).
        EXPECT_LE(s.chipOf(t.producer), t.fromChip);
        EXPECT_TRUE(r.graph.alive(t.producer));
    }
    EXPECT_GT(s.cutBytesPerSample(), 0);
}

TEST(Schedule, ChipCountClampsToLiveNodes)
{
    auto g = reluChain(2);  // 3 live nodes
    compile::ScheduleConfig cfg;
    cfg.chips = 8;
    const auto s = compile::Schedule::partition(g, cfg);
    EXPECT_EQ(s.chips(), 3);
    for (int c = 0; c < 3; ++c)
        EXPECT_EQ(s.chipNodes()[static_cast<size_t>(c)].size(), 1u);
}

TEST(Schedule, SingleChipHasNoTransfers)
{
    ResNetGraph r(34);
    compile::ScheduleConfig cfg;
    cfg.chips = 1;
    const auto s = compile::Schedule::partition(r.graph, cfg);
    EXPECT_EQ(s.chips(), 1);
    EXPECT_TRUE(s.transfers().empty());
    EXPECT_EQ(s.cutBytesPerSample(), 0);
    EXPECT_EQ(s.chipNodes()[0].size(), r.graph.size());
}

} // namespace
} // namespace forms
