/**
 * @file
 * Schedule partitioner tests: determinism (same graph + same config
 * => identical partition), contiguity in topological order, exact
 * balance behaviour on uniform chains, capacity awareness, transfer
 * materialization, chip-count clamping, and replicated stages (a
 * bottleneck matrix node spread across several chips, with merge
 * Transfer records and balanced per-chip work).
 */

#include <gtest/gtest.h>

#include "compile/passes.hh"
#include "compile/schedule.hh"
#include "nn/layers.hh"
#include "nn/zoo.hh"

namespace forms {
namespace {

/** Input -> n relu chain with uniform per-node work. */
compile::Graph
reluChain(int relus)
{
    compile::Graph g;
    int prev = g.addNode(compile::Op::Input, "in", {});
    for (int i = 0; i < relus; ++i) {
        prev = g.addNode(compile::Op::Relu, "relu" + std::to_string(i),
                         {prev});
    }
    g.setOutput(prev);
    g.inferShapes({3, 8, 8});
    return g;
}

/** Compiled + folded ResNetSmall graph (the realistic topology). */
struct ResNetGraph
{
    std::unique_ptr<nn::Network> net;
    compile::Graph graph;

    explicit ResNetGraph(uint64_t seed)
    {
        Rng rng(seed);
        net = nn::buildResNetSmall(rng, 4, 8, 1);
        graph = compile::lowerNetwork(*net);
        graph.inferShapes({3, 32, 32});
        EXPECT_GT(compile::foldBatchNorm(graph), 0);
    }
};

/**
 * Stem-heavy graph: one big conv followed by cheap functional work —
 * the shape that motivates replication (no contiguous cut can
 * balance it).
 */
struct StemHeavyNet
{
    std::unique_ptr<nn::Network> net;
    compile::Graph graph;

    explicit StemHeavyNet(uint64_t seed)
    {
        Rng rng(seed);
        net = std::make_unique<nn::Network>();
        net->emplace<nn::Conv2D>("stem", 3, 16, 3, 1, 1, rng);
        net->emplace<nn::ReLU>("relu0");
        net->emplace<nn::MaxPool2D>("pool", 2, 2);
        net->emplace<nn::ReLU>("relu1");
        net->emplace<nn::Flatten>("flat");
        net->emplace<nn::Dense>("fc", 16 * 16 * 16, 4, rng);
        graph = compile::lowerNetwork(*net);
        graph.inferShapes({3, 32, 32});
    }
};

TEST(Schedule, PartitionIsDeterministic)
{
    ResNetGraph r(31);
    compile::ScheduleConfig cfg;
    cfg.chips = 3;
    const auto a = compile::Schedule::partition(r.graph, cfg);
    const auto b = compile::Schedule::partition(r.graph, cfg);

    ASSERT_EQ(a.chips(), b.chips());
    ASSERT_EQ(a.stages(), b.stages());
    for (int id = 0; id < r.graph.capacity(); ++id) {
        EXPECT_EQ(a.chipOf(id), b.chipOf(id)) << "node " << id;
        EXPECT_EQ(a.stageOf(id), b.stageOf(id)) << "node " << id;
    }
    ASSERT_EQ(a.transfers().size(), b.transfers().size());
    for (size_t i = 0; i < a.transfers().size(); ++i) {
        EXPECT_EQ(a.transfers()[i].producer, b.transfers()[i].producer);
        EXPECT_EQ(a.transfers()[i].fromStage,
                  b.transfers()[i].fromStage);
        EXPECT_EQ(a.transfers()[i].bytesPerSample,
                  b.transfers()[i].bytesPerSample);
    }
    EXPECT_EQ(a.cutBytesPerSample(), b.cutBytesPerSample());
}

TEST(Schedule, AssignsEveryLiveNodeContiguouslyInTopoOrder)
{
    ResNetGraph r(32);
    compile::ScheduleConfig cfg;
    cfg.chips = 4;
    const auto s = compile::Schedule::partition(r.graph, cfg);

    ASSERT_EQ(s.chips(), 4);
    ASSERT_EQ(s.stages(), 4);   // nothing replicates by default
    EXPECT_FALSE(s.replicated());
    int prev_chip = 0;
    size_t assigned = 0;
    for (int id : r.graph.topoOrder()) {
        const int c = s.chipOf(id);
        ASSERT_GE(c, prev_chip) << "chip ids must be non-decreasing "
                                   "along the topological order";
        EXPECT_EQ(s.replicasOf(id), 1);
        prev_chip = c;
        ++assigned;
    }
    EXPECT_EQ(assigned, r.graph.size());
    size_t listed = 0;
    for (int c = 0; c < s.chips(); ++c) {
        EXPECT_FALSE(s.chipNodes()[static_cast<size_t>(c)].empty());
        EXPECT_GT(s.chipWork(c), 0.0);
        listed += s.chipNodes()[static_cast<size_t>(c)].size();
    }
    EXPECT_EQ(listed, r.graph.size());
}

TEST(Schedule, UniformChainSplitsEvenlyWithSmallestCutFirst)
{
    // 9 uniform nodes on 2 chips: both 4/5 and 5/4 hit the same max
    // work and cut traffic; the deterministic tie-break picks the
    // lexicographically smallest cut vector, i.e. 4/5.
    auto g = reluChain(8);
    compile::ScheduleConfig cfg;
    cfg.chips = 2;
    const auto s = compile::Schedule::partition(g, cfg);
    ASSERT_EQ(s.chips(), 2);
    EXPECT_EQ(s.chipNodes()[0].size(), 4u);
    EXPECT_EQ(s.chipNodes()[1].size(), 5u);
}

TEST(Schedule, CapacityVectorShiftsTheBoundary)
{
    // Chip 0 twice as capable: the balance objective normalizes by
    // capacity, so it takes 6 of the 9 uniform nodes.
    auto g = reluChain(8);
    compile::ScheduleConfig cfg;
    cfg.chips = 2;
    cfg.capacity = {2.0, 1.0};
    const auto s = compile::Schedule::partition(g, cfg);
    EXPECT_EQ(s.chipNodes()[0].size(), 6u);
    EXPECT_EQ(s.chipNodes()[1].size(), 3u);
}

TEST(Schedule, TransfersAreNeighborHopsWithTensorBytes)
{
    auto g = reluChain(8);
    compile::ScheduleConfig cfg;
    cfg.chips = 3;
    const auto s = compile::Schedule::partition(g, cfg);

    // A straight chain crosses each of the 2 boundaries exactly once,
    // carrying one 3x8x8 float tensor per sample.
    ASSERT_EQ(s.transfers().size(), 2u);
    for (const auto &t : s.transfers()) {
        EXPECT_EQ(t.toStage, t.fromStage + 1);
        EXPECT_EQ(t.bytesPerSample,
                  static_cast<int64_t>(3 * 8 * 8 * sizeof(float)));
        EXPECT_EQ(s.stageOf(t.producer), t.fromStage);
        EXPECT_FALSE(t.mergeReplicas);
    }
    EXPECT_EQ(s.cutBytesPerSample(),
              static_cast<int64_t>(2 * 3 * 8 * 8 * sizeof(float)));
}

TEST(Schedule, ResidualGraphTransfersFollowTheSchedule)
{
    ResNetGraph r(33);
    compile::ScheduleConfig cfg;
    cfg.chips = 4;
    const auto s = compile::Schedule::partition(r.graph, cfg);
    EXPECT_FALSE(s.transfers().empty());
    for (const auto &t : s.transfers()) {
        EXPECT_EQ(t.toStage, t.fromStage + 1);
        EXPECT_GT(t.bytesPerSample, 0);
        // The producer lives at or before the sending stage
        // (store-and-forward re-sends values that hop further).
        EXPECT_LE(s.stageOf(t.producer), t.fromStage);
        EXPECT_TRUE(r.graph.alive(t.producer));
    }
    EXPECT_GT(s.cutBytesPerSample(), 0);
}

TEST(Schedule, ChipCountClampsToLiveNodes)
{
    auto g = reluChain(2);  // 3 live nodes
    compile::ScheduleConfig cfg;
    cfg.chips = 8;
    const auto s = compile::Schedule::partition(g, cfg);
    EXPECT_EQ(s.chips(), 3);
    for (int c = 0; c < 3; ++c)
        EXPECT_EQ(s.chipNodes()[static_cast<size_t>(c)].size(), 1u);
}

TEST(Schedule, SingleChipHasNoTransfers)
{
    ResNetGraph r(34);
    compile::ScheduleConfig cfg;
    cfg.chips = 1;
    const auto s = compile::Schedule::partition(r.graph, cfg);
    EXPECT_EQ(s.chips(), 1);
    EXPECT_EQ(s.stages(), 1);
    EXPECT_TRUE(s.transfers().empty());
    EXPECT_EQ(s.cutBytesPerSample(), 0);
    EXPECT_EQ(s.chipNodes()[0].size(), r.graph.size());
}

TEST(Schedule, ReplicationDisabledReproducesContiguousPartition)
{
    StemHeavyNet n(41);
    compile::ScheduleConfig off;
    off.chips = 3;
    const auto a = compile::Schedule::partition(n.graph, off);
    EXPECT_EQ(a.stages(), a.chips());
    EXPECT_FALSE(a.replicated());

    // Threshold set but maxReplicas < 2: still contiguous.
    compile::ScheduleConfig capped = off;
    capped.replicateThreshold = 1.0;
    capped.maxReplicas = 1;
    const auto b = compile::Schedule::partition(n.graph, capped);
    EXPECT_FALSE(b.replicated());
    for (int id = 0; id < n.graph.capacity(); ++id)
        EXPECT_EQ(a.chipOf(id), b.chipOf(id));
}

TEST(Schedule, HeavyStemReplicatesAcrossChips)
{
    StemHeavyNet n(42);
    compile::ScheduleConfig cfg;
    cfg.chips = 3;
    cfg.replicateThreshold = 1.0;
    const auto s = compile::Schedule::partition(n.graph, cfg);

    ASSERT_TRUE(s.replicated());
    EXPECT_LT(s.stages(), s.chips());

    // The stem conv (the only node that can dwarf the ideal share)
    // forms a multi-chip stage of its own.
    int stem = -1;
    for (int id = 0; id < n.graph.capacity(); ++id)
        if (n.graph.alive(id) &&
            n.graph.node(id).op == compile::Op::Conv)
            stem = id;
    ASSERT_GE(stem, 0);
    EXPECT_GT(s.replicasOf(stem), 1);
    const int stage = s.stageOf(stem);
    EXPECT_EQ(s.stageWidth(stage), s.replicasOf(stem));
    // The replicated stage is anchored on exactly one matrix node.
    int matrix_in_stage = 0;
    for (int id : s.stageNodes()[static_cast<size_t>(stage)])
        matrix_in_stage += n.graph.node(id).op == compile::Op::Conv ||
                           n.graph.node(id).op == compile::Op::Dense;
    EXPECT_EQ(matrix_in_stage, 1);

    // Every replica chip lists (and will program) the node.
    const int first = s.stageFirstChip(stage);
    for (int c = first; c < first + s.stageWidth(stage); ++c) {
        const auto &nodes = s.chipNodes()[static_cast<size_t>(c)];
        EXPECT_NE(std::find(nodes.begin(), nodes.end(), stem),
                  nodes.end());
    }

    // The hop leaving the replicated stage is the merge record.
    bool merge_seen = false;
    for (const auto &t : s.transfers()) {
        if (t.producer == stem && t.fromStage == stage) {
            EXPECT_TRUE(t.mergeReplicas);
            merge_seen = true;
        } else {
            EXPECT_FALSE(t.mergeReplicas);
        }
    }
    EXPECT_TRUE(merge_seen);
    EXPECT_NE(s.dump().find("merge"), std::string::npos);
}

TEST(Schedule, ReplicationLowersTheBottleneckChipWork)
{
    StemHeavyNet n(43);
    compile::ScheduleConfig base;
    base.chips = 3;
    const auto contiguous = compile::Schedule::partition(n.graph, base);
    compile::ScheduleConfig rep = base;
    rep.replicateThreshold = 1.0;
    const auto replicated = compile::Schedule::partition(n.graph, rep);
    ASSERT_TRUE(replicated.replicated());

    auto max_chip_work = [](const compile::Schedule &s) {
        double w = 0.0;
        for (int c = 0; c < s.chips(); ++c)
            w = std::max(w, s.chipWork(c));
        return w;
    };
    EXPECT_LT(max_chip_work(replicated), max_chip_work(contiguous));

    // The stage's work splits evenly across its chips (uniform
    // capacity): per-chip work sums back to the stage work.
    for (int st = 0; st < replicated.stages(); ++st) {
        double sum = 0.0;
        const int first = replicated.stageFirstChip(st);
        for (int c = first; c < first + replicated.stageWidth(st); ++c)
            sum += replicated.chipWork(c);
        EXPECT_NEAR(sum, replicated.stageWork(st),
                    1e-9 * replicated.stageWork(st));
    }
}

TEST(Schedule, ReplicationUsesChipsBeyondTheLiveNodeCount)
{
    // 7 live nodes. Without replication the chip count clamps to 7;
    // an eligible anchor can absorb up to maxReplicas - 1 extra
    // chips, so 9 requested chips are all usable.
    StemHeavyNet n(45);
    compile::ScheduleConfig cfg;
    cfg.chips = 9;
    cfg.replicateThreshold = 1.0;
    cfg.maxReplicas = 4;
    const auto s = compile::Schedule::partition(n.graph, cfg);
    EXPECT_EQ(s.chips(), 9);
    ASSERT_TRUE(s.replicated());

    int stem = -1;
    for (int id = 0; id < n.graph.capacity(); ++id)
        if (n.graph.alive(id) &&
            n.graph.node(id).op == compile::Op::Conv)
            stem = id;
    ASSERT_GE(stem, 0);
    EXPECT_GE(s.replicasOf(stem), 3);

    // Replication off: the old clamp-to-live-nodes invariant holds.
    compile::ScheduleConfig off;
    off.chips = 9;
    const auto c = compile::Schedule::partition(n.graph, off);
    EXPECT_EQ(c.chips(), static_cast<int>(n.graph.size()));
}

/**
 * Four identical convs in a chain: under AdcTime every conv costs the
 * same, so density annotations are the only thing EicTime can differ
 * on.
 */
struct UniformConvChain
{
    std::unique_ptr<nn::Network> net;
    compile::Graph graph;

    explicit UniformConvChain(uint64_t seed)
    {
        Rng rng(seed);
        net = std::make_unique<nn::Network>();
        net->emplace<nn::Conv2D>("c0", 4, 4, 3, 1, 1, rng);
        net->emplace<nn::ReLU>("r0");
        net->emplace<nn::Conv2D>("c1", 4, 4, 3, 1, 1, rng);
        net->emplace<nn::ReLU>("r1");
        net->emplace<nn::Conv2D>("c2", 4, 4, 3, 1, 1, rng);
        net->emplace<nn::ReLU>("r2");
        net->emplace<nn::Conv2D>("c3", 4, 4, 3, 1, 1, rng);
        graph = compile::lowerNetwork(*net);
        graph.inferShapes({4, 16, 16});
    }

    int find(const std::string &name) const
    {
        for (int id = 0; id < graph.capacity(); ++id)
            if (graph.alive(id) && graph.node(id).name == name)
                return id;
        return -1;
    }

    void setDensity(const std::string &name, float d)
    {
        const int id = find(name);
        ASSERT_GE(id, 0) << name;
        graph.node(id).eicDensity = d;
    }
};

TEST(EicTimeWorkModel, NodeWorkScalesAdcTimeByMeasuredDensity)
{
    UniformConvChain n(61);
    compile::Node &conv = n.graph.node(n.find("c1"));
    const double adc = compile::nodeWork(conv, compile::WorkModel::AdcTime);
    ASSERT_GT(adc, 0.0);

    // Unmeasured (density 0) falls back to plain AdcTime.
    EXPECT_DOUBLE_EQ(
        compile::nodeWork(conv, compile::WorkModel::EicTime), adc);
    conv.eicDensity = 0.25f;
    EXPECT_DOUBLE_EQ(
        compile::nodeWork(conv, compile::WorkModel::EicTime),
        adc * 0.25);
    // The Macs model ignores the annotation entirely.
    conv.eicDensity = 0.25f;
    EXPECT_DOUBLE_EQ(compile::nodeWork(conv, compile::WorkModel::Macs),
                     compile::nodeWork(conv));

    // Functional ops charge output elements under both timed models.
    const compile::Node &relu = n.graph.node(n.find("r1"));
    EXPECT_DOUBLE_EQ(
        compile::nodeWork(relu, compile::WorkModel::EicTime),
        compile::nodeWork(relu, compile::WorkModel::AdcTime));
}

TEST(EicTimeWorkModel, UnannotatedGraphPartitionsExactlyLikeAdcTime)
{
    ResNetGraph r(62);
    compile::ScheduleConfig adc;
    adc.chips = 4;
    adc.workModel = compile::WorkModel::AdcTime;
    compile::ScheduleConfig eic = adc;
    eic.workModel = compile::WorkModel::EicTime;
    const auto a = compile::Schedule::partition(r.graph, adc);
    const auto b = compile::Schedule::partition(r.graph, eic);
    ASSERT_EQ(a.stages(), b.stages());
    for (int id = 0; id < r.graph.capacity(); ++id)
        EXPECT_EQ(a.chipOf(id), b.chipOf(id)) << "node " << id;
}

TEST(EicTimeWorkModel, SparseDensitiesShiftTheCutTowardDenseNodes)
{
    // Dense stem (density 1), sparse tail (0.25): AdcTime sees four
    // equal convs and splits them 2/2; EicTime sees works
    // 1/.25/.25/.25 and gives the dense stem a chip of its own.
    UniformConvChain n(63);
    n.setDensity("c0", 1.0f);
    n.setDensity("c1", 0.25f);
    n.setDensity("c2", 0.25f);
    n.setDensity("c3", 0.25f);

    compile::ScheduleConfig adc;
    adc.chips = 2;
    adc.workModel = compile::WorkModel::AdcTime;
    compile::ScheduleConfig eic = adc;
    eic.workModel = compile::WorkModel::EicTime;
    const auto a = compile::Schedule::partition(n.graph, adc);
    const auto b = compile::Schedule::partition(n.graph, eic);

    const int c1 = n.find("c1");
    EXPECT_EQ(a.chipOf(c1), 0) << "AdcTime should balance convs 2/2";
    EXPECT_EQ(b.chipOf(c1), 1)
        << "EicTime should cut right after the dense stem";
    EXPECT_EQ(b.chipOf(n.find("c0")), 0);
    EXPECT_EQ(b.chipOf(n.find("c3")), 1);

    // Flipping the sparsity pattern flips the cut: a sparse prefix
    // and dense tail pushes most convs onto chip 0.
    UniformConvChain m(63);
    m.setDensity("c0", 0.25f);
    m.setDensity("c1", 0.25f);
    m.setDensity("c2", 0.25f);
    m.setDensity("c3", 1.0f);
    const auto c = compile::Schedule::partition(m.graph, eic);
    EXPECT_EQ(c.chipOf(m.find("c2")), 0);
    EXPECT_EQ(c.chipOf(m.find("c3")), 1);
}

TEST(HeterogeneousChips, DefaultSpecsReproduceHomogeneousBitwise)
{
    // All-default ChipSpecs must be a no-op: the /1.0 normalizations
    // and the double-valued cut cost keep the DP objective on exact
    // integer-valued doubles, so every historical partition is pinned
    // bit-for-bit — under every work model.
    ResNetGraph r(81);
    for (const auto model :
         {compile::WorkModel::Macs, compile::WorkModel::AdcTime,
          compile::WorkModel::EicTime}) {
        compile::ScheduleConfig plain;
        plain.chips = 4;
        plain.workModel = model;
        compile::ScheduleConfig spec = plain;
        spec.chipSpecs.assign(4, compile::ChipSpec{});
        const auto a = compile::Schedule::partition(r.graph, plain);
        const auto b = compile::Schedule::partition(r.graph, spec);
        ASSERT_EQ(a.stages(), b.stages());
        for (int id = 0; id < r.graph.capacity(); ++id) {
            EXPECT_EQ(a.chipOf(id), b.chipOf(id))
                << "node " << id << " model "
                << static_cast<int>(model);
            EXPECT_EQ(a.stageOf(id), b.stageOf(id));
        }
        EXPECT_EQ(a.cutBytesPerSample(), b.cutBytesPerSample());
        ASSERT_EQ(b.chipSpecs().size(), 4u);
    }
}

TEST(HeterogeneousChips, CapacityFieldMatchesLegacyCapacityVector)
{
    auto g = reluChain(8);
    compile::ScheduleConfig legacy;
    legacy.chips = 2;
    legacy.capacity = {2.0, 1.0};
    compile::ScheduleConfig spec;
    spec.chips = 2;
    spec.chipSpecs.resize(2);
    spec.chipSpecs[0].capacity = 2.0;
    const auto a = compile::Schedule::partition(g, legacy);
    const auto b = compile::Schedule::partition(g, spec);
    EXPECT_EQ(a.chipNodes()[0].size(), b.chipNodes()[0].size());
    EXPECT_EQ(b.chipNodes()[0].size(), 6u);
    EXPECT_EQ(b.chipNodes()[1].size(), 3u);
}

TEST(HeterogeneousChips, CapacityShiftsTheBoundaryUnderEveryModel)
{
    auto g = reluChain(8);
    for (const auto model :
         {compile::WorkModel::Macs, compile::WorkModel::AdcTime,
          compile::WorkModel::EicTime}) {
        compile::ScheduleConfig cfg;
        cfg.chips = 2;
        cfg.workModel = model;
        cfg.chipSpecs.resize(2);
        cfg.chipSpecs[0].capacity = 2.0;
        const auto s = compile::Schedule::partition(g, cfg);
        EXPECT_EQ(s.chipNodes()[0].size(), 6u)
            << "model " << static_cast<int>(model);
        EXPECT_EQ(s.chipNodes()[1].size(), 3u);
    }
}

TEST(HeterogeneousChips, AdcScaleShiftsTimedCutsButNotMacs)
{
    // Chip 0 has a 3x faster ADC. The timed models fold that into the
    // chip's effective throughput (3 of the 4 uniform convs land on
    // it); the device-count Macs model must ignore it and keep the
    // balanced 2/2 split.
    UniformConvChain n(82);
    const int c1 = n.find("c1");
    const int c2 = n.find("c2");

    compile::ScheduleConfig cfg;
    cfg.chips = 2;
    cfg.chipSpecs.resize(2);
    cfg.chipSpecs[0].adcScale = 3.0;

    cfg.workModel = compile::WorkModel::Macs;
    const auto macs = compile::Schedule::partition(n.graph, cfg);
    EXPECT_EQ(macs.chipOf(c1), 0);
    EXPECT_EQ(macs.chipOf(c2), 1);

    for (const auto model :
         {compile::WorkModel::AdcTime, compile::WorkModel::EicTime}) {
        cfg.workModel = model;
        const auto timed = compile::Schedule::partition(n.graph, cfg);
        EXPECT_EQ(timed.chipOf(c2), 0)
            << "model " << static_cast<int>(model)
            << ": the fast-ADC chip should absorb the third conv";
        EXPECT_EQ(timed.chipOf(n.find("c3")), 1);
    }
}

TEST(HeterogeneousChips, PartitionRecordsTheResolvedSpecs)
{
    auto g = reluChain(8);
    compile::ScheduleConfig cfg;
    cfg.chips = 2;
    cfg.chipSpecs.resize(2);
    cfg.chipSpecs[0].capacity = 2.0;
    cfg.chipSpecs[1].linkIn = 0.5;
    const auto s = compile::Schedule::partition(g, cfg);
    ASSERT_EQ(s.chipSpecs().size(), 2u);
    EXPECT_DOUBLE_EQ(s.chipSpecs()[0].capacity, 2.0);
    EXPECT_DOUBLE_EQ(s.chipSpecs()[1].linkIn, 0.5);

    // Legacy capacity vectors surface through the same accessor.
    compile::ScheduleConfig legacy;
    legacy.chips = 2;
    legacy.capacity = {2.0, 1.0};
    const auto l = compile::Schedule::partition(g, legacy);
    ASSERT_EQ(l.chipSpecs().size(), 2u);
    EXPECT_DOUBLE_EQ(l.chipSpecs()[0].capacity, 2.0);
    EXPECT_DOUBLE_EQ(l.chipSpecs()[1].capacity, 1.0);
}

TEST(HeterogeneousChips, MalformedSpecsDie)
{
    auto g = reluChain(8);
    compile::ScheduleConfig wrong_count;
    wrong_count.chips = 2;
    wrong_count.chipSpecs.resize(3);
    EXPECT_DEATH(compile::Schedule::partition(g, wrong_count), "");

    compile::ScheduleConfig bad_value;
    bad_value.chips = 2;
    bad_value.chipSpecs.resize(2);
    bad_value.chipSpecs[1].linkIn = 0.0;
    EXPECT_DEATH(compile::Schedule::partition(g, bad_value), "");
}

TEST(Schedule, ReplicatedPartitionIsDeterministic)
{
    ResNetGraph r(44);
    compile::ScheduleConfig cfg;
    cfg.chips = 4;
    cfg.replicateThreshold = 0.8;
    cfg.maxReplicas = 3;
    const auto a = compile::Schedule::partition(r.graph, cfg);
    const auto b = compile::Schedule::partition(r.graph, cfg);
    ASSERT_EQ(a.stages(), b.stages());
    for (int id = 0; id < r.graph.capacity(); ++id) {
        EXPECT_EQ(a.stageOf(id), b.stageOf(id));
        EXPECT_EQ(a.replicasOf(id), b.replicasOf(id));
    }
    ASSERT_EQ(a.transfers().size(), b.transfers().size());
    for (size_t i = 0; i < a.transfers().size(); ++i)
        EXPECT_EQ(a.transfers()[i].mergeReplicas,
                  b.transfers()[i].mergeReplicas);
}

} // namespace
} // namespace forms
