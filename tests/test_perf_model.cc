/**
 * @file
 * Tests for the analytic performance model: per-layer crossbar math,
 * and the paper's qualitative orderings — compression speeds ISAAC up
 * by one to two orders of magnitude, zero-skip lifts FORMS above the
 * no-skip variant, coarser fragments run faster without skipping, and
 * calibrated FORMS-with-skip beats Pruned/Quantized ISAAC.
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "sim/perf_model.hh"

namespace forms::sim {
namespace {

class PerfFixture : public ::testing::Test
{
  protected:
    PerfModel model;
    Workload vgg = vgg16Cifar();
    CompressionProfile profile{"vgg16-c100", 8.15, 8};
};

TEST_F(PerfFixture, LayerCrossbarCountClosedForm)
{
    ArchModel isaac = ArchModel::isaac16();
    LayerSpec l;
    l.conv = true;
    l.inC = 64;
    l.outC = 128;
    l.kernel = 3;
    l.inH = 32;
    l.inW = 32;
    l.pad = 1;
    LayerPerf lp = model.layerPerf(isaac, l, nullptr);
    // rows 576 -> 5 grids; cols 128 * 8 cells = 1024 -> 8 grids.
    EXPECT_EQ(lp.crossbars, 5 * 8);
    EXPECT_EQ(lp.presentations, 32 * 32);
}

TEST_F(PerfFixture, IsaacTauMatchesPaperCycleTime)
{
    // ISAAC: 128 columns on one 1.2 GHz ADC per input bit = 106.6 ns;
    // 16 input bits -> ~1706 ns per presentation.
    ArchModel isaac = ArchModel::isaac16();
    LayerSpec l = vgg.layers[3];
    LayerPerf lp = model.layerPerf(isaac, l, nullptr);
    EXPECT_NEAR(lp.tauNs, 16.0 * 128.0 / 1.2, 1.0);
}

TEST_F(PerfFixture, FormsAdcSlotMatchesPaper)
{
    // FORMS: 4 ADCs cover 128 columns at 2.1 GHz -> 15.2 ns per
    // (fragment, bit) step (paper §IV-C's 15 ns figure).
    ArchModel forms = ArchModel::formsFull(8, true);
    const double slot = (128.0 / forms.adcsPerCrossbar) / forms.adcFreqGhz;
    EXPECT_NEAR(slot, 15.2, 0.3);
}

TEST_F(PerfFixture, CompressionGivesOrderOfMagnitude)
{
    // Paper: pruning/quantization speeds ISAAC up by 7.5x-200x.
    ArchModel base = ArchModel::isaac32();
    ArchModel pq = ArchModel::isaacPrunedQuantized();
    const double fps_base =
        model.evaluate(base, vgg, &profile).fpsRaw;
    const double fps_pq = model.evaluate(pq, vgg, &profile).fpsRaw;
    const double speedup = fps_pq / fps_base;
    EXPECT_GT(speedup, 7.5);
    EXPECT_LT(speedup, 210.0);
}

TEST_F(PerfFixture, ZeroSkipLiftsForms)
{
    ArchModel skip = ArchModel::formsFull(8, true);
    ArchModel noskip = ArchModel::formsFull(8, false);
    const double f_skip = model.evaluate(skip, vgg, &profile).fpsRaw;
    const double f_noskip =
        model.evaluate(noskip, vgg, &profile).fpsRaw;
    EXPECT_GT(f_skip, f_noskip);
    // The raw gain is bounded by 16 / EIC.
    EXPECT_LT(f_skip / f_noskip, 16.0 / 10.0);
}

TEST_F(PerfFixture, CoarserFragmentsFasterWithoutSkip)
{
    // Without zero-skip, fragment 16 halves the row groups vs 8
    // (paper Figs. 13/14: FORMS-16 no-skip > FORMS-8 no-skip).
    ArchModel f8 = ArchModel::formsFull(8, false);
    ArchModel f16 = ArchModel::formsFull(16, false);
    // Compare raw physics at equal calibration.
    f8.calibration = f16.calibration = 1.0;
    EXPECT_GT(model.evaluate(f16, vgg, &profile).fpsRaw /
                  model.evaluate(f8, vgg, &profile).fpsRaw,
              1.0);
}

TEST_F(PerfFixture, CalibratedFormsBeatsPrunedIsaac)
{
    // The paper's headline (abstract): 1.12x-2.4x FPS over optimized
    // ISAAC at almost the same power/area.
    ArchModel forms = ArchModel::formsFull(8, true);
    ArchModel pq = ArchModel::isaacPrunedQuantized();
    for (const auto &c : figure14Cases()) {
        const double r =
            model.evaluate(forms, c.workload, &c.profile).fps /
            model.evaluate(pq, c.workload, &c.profile).fps;
        EXPECT_GT(r, 1.0) << c.label;
        EXPECT_LT(r, 3.0) << c.label;
    }
}

TEST_F(PerfFixture, PumaPaysForSplitting)
{
    // Dual crossbars double n_l: PQ-PUMA below PQ-ISAAC (Table V).
    ArchModel puma = ArchModel::pumaPrunedQuantized();
    ArchModel isaac = ArchModel::isaacPrunedQuantized();
    puma.calibration = isaac.calibration = 1.0;
    EXPECT_LT(model.evaluate(puma, vgg, &profile).fpsRaw,
              model.evaluate(isaac, vgg, &profile).fpsRaw);
}

TEST_F(PerfFixture, EffectiveBitsHonoursZeroSkip)
{
    ArchModel forms = ArchModel::formsFull(8, true);
    ArchModel noskip = ArchModel::formsFull(8, false);
    EXPECT_LT(model.effectiveBitsFor(forms), 16.0);
    EXPECT_DOUBLE_EQ(model.effectiveBitsFor(noskip), 16.0);
}

TEST_F(PerfFixture, EffectiveBitsKeyedOnInputGridNotJustFragSize)
{
    // Regression: the EIC cache used to key on fragment size alone,
    // so whichever inputBits was queried first poisoned every later
    // query sharing the fragment size. An 8-bit grid has strictly
    // fewer effective cycles than the 16-bit one.
    ArchModel b16 = ArchModel::formsFull(8, true);
    ArchModel b8 = b16;
    b8.inputBits = 8;
    const double e16 = model.effectiveBitsFor(b16);
    const double e8 = model.effectiveBitsFor(b8);
    EXPECT_LT(e8, e16);
    EXPECT_LE(e8, 8.0);
    // Re-query in both orders: cached replies stay on their own grid.
    EXPECT_DOUBLE_EQ(model.effectiveBitsFor(b16), e16);
    EXPECT_DOUBLE_EQ(model.effectiveBitsFor(b8), e8);
}

TEST_F(PerfFixture, EffectiveBitsSafeUnderConcurrentQueries)
{
    // Regression: the cache was a mutable vector appended from a
    // const method with no lock — concurrent evaluate() calls raced.
    // The estimate is a deterministic fixed-seed computation, so
    // every thread must reproduce a fresh model's answer exactly.
    ArchModel b16 = ArchModel::formsFull(8, true);
    ArchModel b8 = b16;
    b8.inputBits = 8;
    const double want16 = PerfModel().effectiveBitsFor(b16);
    const double want8 = PerfModel().effectiveBitsFor(b8);
    constexpr int kThreads = 8;
    std::vector<double> got(kThreads * 2, 0.0);
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t)
        workers.emplace_back([&, t] {
            got[2 * t] = model.effectiveBitsFor(t % 2 ? b8 : b16);
            got[2 * t + 1] = model.effectiveBitsFor(t % 2 ? b16 : b8);
        });
    for (auto &w : workers)
        w.join();
    for (int t = 0; t < kThreads; ++t) {
        EXPECT_DOUBLE_EQ(got[2 * t], t % 2 ? want8 : want16);
        EXPECT_DOUBLE_EQ(got[2 * t + 1], t % 2 ? want16 : want8);
    }
}

TEST_F(PerfFixture, Isaac32NeedsMostCrossbars)
{
    ArchModel b32 = ArchModel::isaac32();
    ArchModel b16 = ArchModel::isaac16();
    LayerSpec l = vgg.layers[5];
    EXPECT_GT(model.layerPerf(b32, l, nullptr).crossbars,
              model.layerPerf(b16, l, nullptr).crossbars);
}

TEST_F(PerfFixture, AreaPowerPopulated)
{
    for (const ArchModel &a :
         {ArchModel::isaac16(), ArchModel::puma16(),
          ArchModel::formsFull(8, true),
          ArchModel::formsPolarizationOnly(16)}) {
        EXPECT_GT(a.chipPowerMw, 0.0) << a.name;
        EXPECT_GT(a.chipAreaMm2, 0.0) << a.name;
    }
    auto res = model.evaluate(ArchModel::isaac16(), vgg, nullptr);
    EXPECT_GT(res.gopsPerMm2, 0.0);
    EXPECT_GT(res.gopsPerW, 0.0);
}

TEST_F(PerfFixture, ReferencePointsPresent)
{
    auto refs = tableVReferencePoints();
    EXPECT_EQ(refs.size(), 4u);
    EXPECT_EQ(refs[0].name, "DaDianNao");
}

TEST(TilePipelineModel, EmptyChipIsNeverBusy)
{
    TilePipeline tile;
    EXPECT_EQ(chipBusyNs({}, tile), 0.0);
    tile.overlap = false;
    EXPECT_EQ(chipBusyNs({}, tile), 0.0);
}

TEST(TilePipelineModel, SerialModeSumsBothPhases)
{
    TilePipeline tile;
    tile.overlap = false;
    const std::vector<PhaseInterval> phases = {
        {10.0, 100.0}, {20.0, 50.0}, {5.0, 200.0}};
    EXPECT_DOUBLE_EQ(chipBusyNs(phases, tile), 385.0);
}

TEST(TilePipelineModel, OverlapHidesQuantBehindCompute)
{
    TilePipeline tile;
    tile.overlap = true;
    // q1 + max(c1, q2) + max(c2, q3) + c3:
    // 10 + max(100, 20) + max(50, 5) + 200 = 360.
    const std::vector<PhaseInterval> phases = {
        {10.0, 100.0}, {20.0, 50.0}, {5.0, 200.0}};
    EXPECT_DOUBLE_EQ(chipBusyNs(phases, tile), 360.0);

    // Quantization dominating a link stalls the pipeline on it:
    // 10 + max(100, 300) + max(50, 5) + 200 = 560.
    const std::vector<PhaseInterval> stalled = {
        {10.0, 100.0}, {300.0, 50.0}, {5.0, 200.0}};
    EXPECT_DOUBLE_EQ(chipBusyNs(stalled, tile), 560.0);
}

TEST(TilePipelineModel, OverlapBoundedByComputeSumAndSerialSum)
{
    TilePipeline over, serial;
    over.overlap = true;
    serial.overlap = false;
    const std::vector<PhaseInterval> phases = {
        {7.0, 31.0}, {13.0, 11.0}, {29.0, 3.0}, {2.0, 17.0}};
    const double o = chipBusyNs(phases, over);
    const double s = chipBusyNs(phases, serial);
    double compute = 0.0;
    for (const auto &p : phases)
        compute += p.computeNs;
    EXPECT_LE(o, s);
    EXPECT_GE(o, compute);

    // A single node has nothing to overlap with: both modes agree.
    const std::vector<PhaseInterval> one = {{7.0, 31.0}};
    EXPECT_DOUBLE_EQ(chipBusyNs(one, over), chipBusyNs(one, serial));
}

TEST(TilePipelineModel, QuantNsScalesWithValueCount)
{
    TilePipeline tile;
    tile.quantNsPerValue = 0.25;
    EXPECT_DOUBLE_EQ(tile.quantNs(0), 0.0);
    EXPECT_DOUBLE_EQ(tile.quantNs(1000), 250.0);
}

TEST_F(PerfFixture, TableVOrderingFormsFullOnTop)
{
    // Table V shape: FORMS full > PQ-ISAAC > everything uncompressed.
    // Use the heavily-compressible CIFAR-10 VGG16 case (41.2x prune).
    const Workload net = vgg16Cifar();
    const CompressionProfile p{"vgg16-c10", 41.2, 8};
    const double isaac =
        model.evaluate(ArchModel::isaac16(), net, &p).gopsPerMm2;
    const double pq = model
        .evaluate(ArchModel::isaacPrunedQuantized(), net, &p).gopsPerMm2;
    const double forms16 = model
        .evaluate(ArchModel::formsFull(16, true), net, &p).gopsPerMm2;
    EXPECT_GT(pq / isaac, 10.0);
    EXPECT_GT(forms16, pq);
}

} // namespace
} // namespace forms::sim
