/**
 * @file
 * Cross-cutting property tests: the full polarize -> map -> execute
 * chain must be integer-exact under every polarization policy and
 * fragment size combination (the training-time fragment definition and
 * the hardware sub-array columns must agree no matter the row
 * ordering), including after pruning compaction.
 */

#include <gtest/gtest.h>

#include "arch/engine.hh"

namespace forms {
namespace {

using admm::FragmentPlan;
using admm::PolarizationPolicy;
using admm::WeightView;

struct PreparedLayer
{
    Tensor weight;
    Tensor grad;
    admm::LayerState state;

    PreparedLayer(PolarizationPolicy policy, int frag, bool prune,
                  uint64_t seed)
        : weight({12, 6, 3, 3}), grad({12, 6, 3, 3})
    {
        Rng rng(seed);
        weight.fillGaussian(rng, 0.0f, 0.5f);
        state.name = "xpolicy";
        state.param = {"w", &weight, &grad, true, false};
        state.plan = FragmentPlan::forConv(12, 6, 3, frag, policy);

        WeightView v = WeightView::conv(weight);
        if (prune) {
            admm::PruneSpec spec;
            spec.filterKeep = 0.75;
            spec.shapeKeep = 0.6;
            spec.crossbarAware = false;
            projectStructuredPrune(v, spec);
            state.mask = admm::extractMask(v);
            state.plan = state.plan.restrictedToRows(state.mask->rowKept);
        }
        state.signs = admm::computeSigns(v, state.plan);
        admm::projectPolarization(v, state.plan, *state.signs);
        admm::QuantSpec q;
        q.bits = 8;
        state.quantScale = admm::projectQuantize(v, q);
    }
};

using Param = std::tuple<PolarizationPolicy, int, bool>;

class CrossPolicyTest : public ::testing::TestWithParam<Param>
{
};

TEST_P(CrossPolicyTest, MapAndExecuteExactly)
{
    auto [policy, frag, prune] = GetParam();
    PreparedLayer layer(policy, frag, prune, 7 + frag);

    arch::MappingConfig mcfg;
    mcfg.xbarRows = 32;
    mcfg.xbarCols = 32;
    mcfg.fragSize = frag;
    mcfg.inputBits = 12;
    arch::MappedLayer mapped = arch::mapLayer(layer.state, mcfg);

    arch::EngineConfig ecfg;
    ecfg.adcBits = 0;
    arch::CrossbarEngine engine(mapped, ecfg);

    Rng rng(19);
    std::vector<uint32_t> inputs(54);
    for (auto &v : inputs)
        v = static_cast<uint32_t>(rng.below(1u << 12));

    auto analog = engine.mvm(inputs);
    auto reference = arch::referenceMvm(mapped, inputs);
    ASSERT_EQ(analog.size(), reference.size());
    for (size_t i = 0; i < analog.size(); ++i)
        EXPECT_DOUBLE_EQ(analog[i], static_cast<double>(reference[i]))
            << "policy=" << policyName(policy) << " frag=" << frag
            << " prune=" << prune << " out=" << i;
}

TEST_P(CrossPolicyTest, MappedAgainstDirectDenseProduct)
{
    // The mapped computation equals the direct quantized dense product
    // regardless of the row permutation the policy applied.
    auto [policy, frag, prune] = GetParam();
    PreparedLayer layer(policy, frag, prune, 23 + frag);

    arch::MappingConfig mcfg;
    mcfg.xbarRows = 32;
    mcfg.xbarCols = 32;
    mcfg.fragSize = frag;
    mcfg.inputBits = 10;
    arch::MappedLayer mapped = arch::mapLayer(layer.state, mcfg);

    Rng rng(29);
    std::vector<uint32_t> inputs(54);
    for (auto &v : inputs)
        v = static_cast<uint32_t>(rng.below(1u << 10));

    auto got = arch::referenceMvm(mapped, inputs);
    const WeightView v = layer.state.view();
    for (int64_t j = 0; j < v.cols(); ++j) {
        int64_t expect = 0;
        for (int64_t r = 0; r < v.rows(); ++r) {
            const float w = v.get(r, j);
            const int64_t mag = static_cast<int64_t>(
                std::llround(std::fabs(w) / mapped.scale));
            const int64_t s = w > 0.0f ? 1 : (w < 0.0f ? -1 : 0);
            expect += s * mag *
                static_cast<int64_t>(inputs[static_cast<size_t>(r)]);
        }
        if (static_cast<size_t>(j) < got.size())
            EXPECT_EQ(got[static_cast<size_t>(j)], expect);
        else
            EXPECT_EQ(expect, 0);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, CrossPolicyTest,
    ::testing::Combine(
        ::testing::Values(PolarizationPolicy::WMajor,
                          PolarizationPolicy::HMajor,
                          PolarizationPolicy::CMajor),
        ::testing::Values(4, 8, 16),
        ::testing::Bool()));

TEST(CrossPolicy, PolicyChangesFragmentMembershipNotResults)
{
    // Different policies group different weights into fragments, so
    // after polarization the surviving weight sets differ — but each
    // mapped result is exact w.r.t. its own polarized weights (covered
    // above). Here: verify the groupings genuinely differ.
    Tensor wa({4, 4, 3, 3}), ga({4, 4, 3, 3});
    Rng rng(31);
    wa.fillGaussian(rng, 0.0f, 1.0f);
    Tensor wb = wa, gb = ga;

    WeightView va = WeightView::conv(wa);
    FragmentPlan pa = FragmentPlan::forConv(
        4, 4, 3, 4, PolarizationPolicy::WMajor);
    projectPolarization(va, pa, computeSigns(va, pa));

    WeightView vb = WeightView::conv(wb);
    FragmentPlan pb = FragmentPlan::forConv(
        4, 4, 3, 4, PolarizationPolicy::CMajor);
    projectPolarization(vb, pb, computeSigns(vb, pb));

    EXPECT_FALSE(wa.equals(wb));
}

} // namespace
} // namespace forms
