/**
 * @file
 * Unit tests for the ReRAM device model: magnitude slicing round trips,
 * cell programming, conductance mapping, and the statistics of the
 * log-normal variation model.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "reram/device.hh"
#include "reram/variation.hh"

namespace forms::reram {
namespace {

TEST(Slicing, RoundTripAllValues8Bit)
{
    for (uint32_t v = 0; v < 256; ++v) {
        const auto levels = sliceMagnitude(v, 8, 2);
        EXPECT_EQ(levels.size(), 4u);
        EXPECT_EQ(unsliceMagnitude(levels, 2), v);
    }
}

TEST(Slicing, RoundTripMixedPrecisions)
{
    Rng rng(1);
    for (int wb : {4, 6, 8, 12, 16}) {
        for (int cb : {1, 2, 4}) {
            for (int trial = 0; trial < 50; ++trial) {
                const uint32_t v = static_cast<uint32_t>(
                    rng.below(1ull << wb));
                EXPECT_EQ(unsliceMagnitude(sliceMagnitude(v, wb, cb), cb),
                          v);
            }
        }
    }
}

TEST(Slicing, LevelsRespectCellRange)
{
    const auto levels = sliceMagnitude(255, 8, 2);
    for (int l : levels) {
        EXPECT_GE(l, 0);
        EXPECT_LE(l, 3);
    }
}

TEST(Slicing, CellsPerWeight)
{
    EXPECT_EQ(cellsPerWeight(8, 2), 4);
    EXPECT_EQ(cellsPerWeight(16, 2), 8);
    EXPECT_EQ(cellsPerWeight(7, 2), 4);
    EXPECT_EQ(cellsPerWeight(32, 2), 16);
}

TEST(Cell, ProgramIdeal)
{
    CellConfig cfg;
    Cell cell;
    cell.program(3, cfg, nullptr);
    EXPECT_EQ(cell.level(), 3);
    EXPECT_DOUBLE_EQ(cell.analogLevel(), 3.0);
}

TEST(Cell, ConductanceSpansRange)
{
    CellConfig cfg;
    Cell lo, hi;
    lo.program(0, cfg, nullptr);
    hi.program(cfg.maxLevel(), cfg, nullptr);
    EXPECT_DOUBLE_EQ(lo.conductanceUs(cfg), cfg.gMinUs);
    EXPECT_DOUBLE_EQ(hi.conductanceUs(cfg), cfg.gMaxUs);
}

TEST(Cell, VariationPerturbsMultiplicatively)
{
    CellConfig cfg;
    cfg.variationSigma = 0.1;
    Rng rng(5);
    RunningStat ratio;
    for (int i = 0; i < 20000; ++i) {
        Cell c;
        c.program(2, cfg, &rng);
        ratio.add(c.analogLevel() / 2.0);
    }
    // Log-normal(0, 0.1): mean exp(0.005) ~ 1.005.
    EXPECT_NEAR(ratio.mean(), std::exp(0.005), 0.01);
    EXPECT_GT(ratio.stddev(), 0.05);
}

TEST(Cell, ZeroLevelImmuneToVariation)
{
    CellConfig cfg;
    cfg.variationSigma = 0.5;
    Rng rng(6);
    Cell c;
    c.program(0, cfg, &rng);
    EXPECT_DOUBLE_EQ(c.analogLevel(), 0.0);
}

TEST(Variation, ZeroSigmaIsIdentityOnGrid)
{
    // On-grid weights with sigma->0 must come back unchanged.
    Tensor w({8});
    const float scale = 0.01f;
    for (int64_t i = 0; i < 8; ++i)
        w.at(i) = scale * static_cast<float>(i * 30 - 100);
    Tensor orig = w;
    VariationConfig cfg;
    cfg.sigma = 1e-9;
    cfg.quantScale = scale;
    Rng rng(7);
    perturbWeights(w, cfg, rng);
    for (int64_t i = 0; i < 8; ++i)
        EXPECT_NEAR(w.at(i), orig.at(i), 1e-5);
}

TEST(Variation, PreservesSignAndZero)
{
    Rng rng(8);
    Tensor w({64});
    w.fillGaussian(rng, 0.0f, 1.0f);
    w.at(0) = 0.0f;
    Tensor orig = w;
    VariationConfig cfg;
    cfg.sigma = 0.2;
    perturbWeights(w, cfg, rng);
    EXPECT_EQ(w.at(0), 0.0f);
    for (int64_t i = 1; i < 64; ++i) {
        if (orig.at(i) > 0.0f)
            EXPECT_GE(w.at(i), 0.0f);
        else if (orig.at(i) < 0.0f)
            EXPECT_LE(w.at(i), 0.0f);
    }
}

TEST(Variation, RelativeErrorScalesWithSigma)
{
    Rng rng(9);
    Tensor base({512});
    base.fillGaussian(rng, 0.0f, 1.0f);

    auto mean_rel_err = [&](double sigma) {
        Tensor w = base;
        VariationConfig cfg;
        cfg.sigma = sigma;
        Rng local(10);
        const float scale = perturbWeights(w, cfg, local);
        (void)scale;
        double acc = 0.0;
        int n = 0;
        for (int64_t i = 0; i < w.numel(); ++i) {
            if (base.at(i) == 0.0f)
                continue;
            acc += std::fabs(w.at(i) - base.at(i)) /
                std::fabs(base.at(i));
            ++n;
        }
        return acc / n;
    };

    const double small = mean_rel_err(0.05);
    const double large = mean_rel_err(0.3);
    EXPECT_LT(small, large);
}

} // namespace
} // namespace forms::reram
