/**
 * @file
 * Tests for the tile/chip allocator: crossbar/MCU/tile accounting,
 * balanced-pipeline replication, budget checks, and the FORMS-vs-ISAAC
 * organization differences the paper lists (eDRAM, bus, cycle time).
 */

#include <gtest/gtest.h>

#include "arch/tile.hh"

namespace forms::arch {
namespace {

std::vector<LayerDemand>
toyNetwork()
{
    return {
        {"conv1", 4, 1024, 16384, 16.0 * 12.0, true},
        {"conv2", 8, 256, 8192, 16.0 * 12.0, false},
        {"fc", 2, 1, 100, 16.0 * 12.0, false},
    };
}

TEST(ChipAllocator, AccountsUnits)
{
    ChipOrg org = formsChipOrg();
    auto alloc = allocateChip(org, toyNetwork());
    ASSERT_EQ(alloc.layers.size(), 3u);
    EXPECT_TRUE(alloc.fits);
    EXPECT_GT(alloc.crossbarsUsed, 0);
    EXPECT_GE(alloc.mcusUsed, alloc.layers.size());
    EXPECT_GE(alloc.tilesUsed, 1);
    EXPECT_GT(alloc.framesPerSecond, 0.0);
}

TEST(ChipAllocator, ReplicationFavoursHeavyLayers)
{
    ChipOrg org = formsChipOrg();
    auto alloc = allocateChip(org, toyNetwork());
    // conv1 carries most of the work (most presentations) so it must
    // receive at least as many replicas as the single-shot fc layer.
    EXPECT_GE(alloc.layers[0].replicas, alloc.layers[2].replicas);
}

TEST(ChipAllocator, BudgetRespectedOrFlagged)
{
    ChipOrg org = formsChipOrg();
    org.tiles = 1;   // shrink the chip drastically
    std::vector<LayerDemand> huge = {
        {"big", 200, 100000, 1000, 256.0, false}};
    auto alloc = allocateChip(org, huge);
    EXPECT_FALSE(alloc.fits);
}

TEST(ChipAllocator, LatencyDropsWithMoreReplicas)
{
    ChipOrg small = formsChipOrg();
    small.tiles = 2;
    ChipOrg big = formsChipOrg();
    auto a_small = allocateChip(small, toyNetwork());
    auto a_big = allocateChip(big, toyNetwork());
    EXPECT_LE(a_big.frameLatencyNs, a_small.frameLatencyNs);
}

TEST(ChipAllocator, OrganizationsMatchPaper)
{
    ChipOrg forms = formsChipOrg();
    ChipOrg isaac = isaacChipOrg();
    EXPECT_DOUBLE_EQ(forms.edramKb, 128.0);
    EXPECT_DOUBLE_EQ(isaac.edramKb, 64.0);
    EXPECT_DOUBLE_EQ(forms.busBits, 512.0);
    EXPECT_DOUBLE_EQ(isaac.busBits, 256.0);
    EXPECT_LT(forms.pipeline.cycleNs, isaac.pipeline.cycleNs);
    EXPECT_EQ(forms.totalCrossbars(), 168LL * 12 * 8);
}

TEST(ChipAllocator, EdramTrafficAccumulates)
{
    ChipOrg org = formsChipOrg();
    auto alloc = allocateChip(org, toyNetwork());
    // 16-bit activations: (16384 + 8192 + 100) * 2 bytes.
    EXPECT_NEAR(alloc.edramTrafficKb, (16384 + 8192 + 100) * 2.0 / 1024.0,
                1e-6);
}

} // namespace
} // namespace forms::arch
