/**
 * @file
 * Serving-layer tests: the batch-invariance determinism contract
 * (docs/SERVING.md) and the server's batching/admission mechanics.
 *
 * The property under test is the hard one: a request's logits and
 * per-request stats must be bit-identical no matter which dynamic
 * batch the request lands in, what else rides in that batch, what
 * order requests arrived, or how many threads the backend shards
 * across — because every per-presentation RNG stream is keyed by the
 * stable request id, not the batch position. References come from
 * single-request forwardRequests() runs; everything is compared
 * bitwise (memcmp on logits, field-exact EngineStats).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>

#include "compile/passes.hh"
#include "compile/schedule.hh"
#include "nn/layers.hh"
#include "obs/metrics.hh"
#include "serve/backends.hh"
#include "serve/server.hh"
#include "sim/graph_runtime.hh"
#include "sim/pipeline_runtime.hh"
#include "stats_testutil.hh"

namespace forms {
namespace {

constexpr int kHw = 12;

/** Small conv net with real noise sensitivity in every stage. */
std::unique_ptr<nn::Network>
makeTinyNet(Rng &rng, int *classes_out)
{
    auto net = std::make_unique<nn::Network>();
    net->emplace<nn::Conv2D>("conv1", 3, 4, 3, 1, 1, rng);
    net->emplace<nn::ReLU>("relu1");
    net->emplace<nn::MaxPool2D>("pool", 2, 2);
    net->emplace<nn::Flatten>("flat");
    *classes_out = 3;
    net->emplace<nn::Dense>("fc", 4 * (kHw / 2) * (kHw / 2), 3, rng);
    return net;
}

/** ADC quantization + device variation + read noise all on: any
 *  keying mistake shows up as a bitwise logits diff. */
sim::RuntimeConfig
noisyCfg(ThreadPool *pool)
{
    sim::RuntimeConfig cfg;
    cfg.mapping.xbarRows = 64;
    cfg.mapping.xbarCols = 64;
    cfg.mapping.fragSize = 8;
    cfg.mapping.inputBits = 8;
    cfg.engine.adcBits = 3;
    cfg.engine.cell.variationSigma = 0.1;
    cfg.engine.readNoiseSigma = 0.02;
    cfg.pool = pool;
    return cfg;
}

/** One compiled/compressed tiny model, shared plumbing for runtimes. */
struct TinyModel
{
    Rng rng{4242};
    int classes = 0;
    std::unique_ptr<nn::Network> net;
    compile::Graph graph;
    std::vector<admm::LayerState> states;

    TinyModel()
        : net(makeTinyNet(rng, &classes)),
          graph(compile::lowerNetwork(*net))
    {
        graph.inferShapes({3, kHw, kHw});
        compile::foldBatchNorm(graph);
        states = sim::snapshotCompress(*net, 8, 8);
    }
};

/** Copy image `i` of an NCHW batch into a batch-of-one tensor. */
Tensor
imageRow(const Tensor &batch, int64_t i)
{
    Shape s = batch.shape();
    s[0] = 1;
    Tensor one(s);
    std::memcpy(one.data(), batch.data() + i * one.numel(),
                static_cast<size_t>(one.numel()) * sizeof(float));
    return one;
}

/** Bitwise row comparison (memcmp: stricter than float ==). */
void
expectRowBitIdentical(const float *got, const float *want, int64_t n,
                      const std::string &what)
{
    EXPECT_EQ(0, std::memcmp(got, want,
                             static_cast<size_t>(n) * sizeof(float)))
        << what;
}

void
expectReportIdentical(const sim::RuntimeReport &got,
                      const sim::RuntimeReport &want)
{
    ASSERT_EQ(got.layers.size(), want.layers.size());
    for (size_t i = 0; i < got.layers.size(); ++i) {
        EXPECT_EQ(got.layers[i].name, want.layers[i].name);
        EXPECT_EQ(got.layers[i].crossbars, want.layers[i].crossbars);
        expectStatsIdentical(got.layers[i].stats, want.layers[i].stats);
    }
    EXPECT_EQ(got.presentations, want.presentations);
}

TEST(Serving, GraphForwardRequestsIsBatchInvariant)
{
    TinyModel m;
    ThreadPool ref_pool(2);
    sim::RuntimeConfig cfg = noisyCfg(&ref_pool);
    sim::GraphRuntime rt(m.graph, m.states, cfg);

    Rng rng(77);
    const int64_t n = 6;
    Tensor batch({n, 3, kHw, kHw});
    batch.fillUniform(rng, 0.0f, 1.0f);
    // Deliberately non-consecutive, unordered ids: the stream key is
    // the id, not the arrival or batch position.
    const std::vector<uint64_t> ids = {100, 5, 42, 0, 9999, 17};

    // Reference: every image served alone under its id.
    std::vector<Tensor> ref(static_cast<size_t>(n));
    std::vector<sim::RuntimeReport> ref_rep(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
        std::vector<sim::RuntimeReport> pr;
        ref[static_cast<size_t>(i)] = rt.forwardRequests(
            imageRow(batch, i), &ids[static_cast<size_t>(i)], &pr);
        ASSERT_EQ(pr.size(), 1u);
        ref_rep[static_cast<size_t>(i)] = pr[0];
    }
    const int64_t out_elems = ref[0].numel();

    // Randomly composed batches across seeds and thread counts — on
    // the same runtime (whose engines have executed plenty already:
    // history must not matter) and on freshly constructed ones.
    Rng trial_rng(31);
    for (int trial = 0; trial < 8; ++trial) {
        SCOPED_TRACE("trial " + std::to_string(trial));
        ThreadPool tp(1 + static_cast<int>(trial_rng.below(4)));
        sim::RuntimeConfig tcfg = noisyCfg(&tp);
        sim::GraphRuntime fresh(m.graph, m.states, tcfg);
        sim::GraphRuntime &use = trial % 2 == 0 ? rt : fresh;

        // Random subset in random order (Fisher-Yates).
        std::vector<int64_t> order;
        for (int64_t i = 0; i < n; ++i)
            if (trial_rng.bernoulli(0.7))
                order.push_back(i);
        if (order.empty())
            order.push_back(static_cast<int64_t>(trial_rng.below(n)));
        for (size_t i = order.size(); i > 1; --i)
            std::swap(order[i - 1], order[trial_rng.below(i)]);

        const int64_t bn = static_cast<int64_t>(order.size());
        Tensor composed({bn, 3, kHw, kHw});
        std::vector<uint64_t> bids(static_cast<size_t>(bn));
        const int64_t elems = composed.numel() / bn;
        for (int64_t j = 0; j < bn; ++j) {
            const int64_t src = order[static_cast<size_t>(j)];
            std::memcpy(composed.data() + j * elems,
                        batch.data() + src * elems,
                        static_cast<size_t>(elems) * sizeof(float));
            bids[static_cast<size_t>(j)] =
                ids[static_cast<size_t>(src)];
        }

        std::vector<sim::RuntimeReport> per;
        const Tensor out =
            use.forwardRequests(composed, bids.data(), &per);
        ASSERT_EQ(per.size(), static_cast<size_t>(bn));
        for (int64_t j = 0; j < bn; ++j) {
            const int64_t src = order[static_cast<size_t>(j)];
            expectRowBitIdentical(
                out.data() + j * out_elems,
                ref[static_cast<size_t>(src)].data(), out_elems,
                "row " + std::to_string(j) + " (image " +
                    std::to_string(src) + ")");
            expectReportIdentical(per[static_cast<size_t>(j)],
                                  ref_rep[static_cast<size_t>(src)]);
        }
    }
}

TEST(Serving, PipelineForwardRequestsMatchesGraphSingleRequest)
{
    TinyModel m;
    ThreadPool ref_pool(1);
    sim::RuntimeConfig cfg = noisyCfg(&ref_pool);
    sim::GraphRuntime ref_rt(m.graph, m.states, cfg);

    Rng rng(101);
    const int64_t n = 5;
    Tensor batch({n, 3, kHw, kHw});
    batch.fillUniform(rng, 0.0f, 1.0f);
    const std::vector<uint64_t> ids = {7, 3, 0, 1234, 8};

    std::vector<Tensor> ref(static_cast<size_t>(n));
    std::vector<sim::RuntimeReport> ref_rep(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
        std::vector<sim::RuntimeReport> pr;
        ref[static_cast<size_t>(i)] = ref_rt.forwardRequests(
            imageRow(batch, i), &ids[static_cast<size_t>(i)], &pr);
        ref_rep[static_cast<size_t>(i)] = pr[0];
    }
    const int64_t out_elems = ref[0].numel();

    // A multi-chip pipeline with micro-batching: the same requests,
    // batched together, must reproduce each single-request reference
    // bitwise — across micro-batch boundaries and chips.
    for (int chips = 1; chips <= 3; ++chips) {
        SCOPED_TRACE("chips " + std::to_string(chips));
        ThreadPool tp(3);
        compile::ScheduleConfig scfg;
        scfg.chips = chips;
        sim::PipelineRuntimeConfig pcfg;
        pcfg.runtime = noisyCfg(&tp);
        pcfg.microBatch = 2;
        sim::PipelineRuntime pr(
            m.graph, compile::Schedule::partition(m.graph, scfg),
            m.states, pcfg);

        std::vector<sim::RuntimeReport> per;
        const Tensor out = pr.forwardRequests(batch, ids.data(), &per);
        ASSERT_EQ(per.size(), static_cast<size_t>(n));
        for (int64_t i = 0; i < n; ++i) {
            expectRowBitIdentical(out.data() + i * out_elems,
                                  ref[static_cast<size_t>(i)].data(),
                                  out_elems,
                                  "row " + std::to_string(i));
            expectReportIdentical(per[static_cast<size_t>(i)],
                                  ref_rep[static_cast<size_t>(i)]);
        }
    }
}

TEST(Serving, OfflineForwardUnchangedByKeyedStreams)
{
    // forward() keys streams by consecutive runtime-lifetime ids —
    // which must replay exactly after resetPresentationStreams(),
    // and two consecutive single-image forwards must equal one
    // two-image forward (the legacy engine-lifetime stream behavior).
    TinyModel m;
    ThreadPool pool(2);
    sim::RuntimeConfig cfg = noisyCfg(&pool);
    sim::GraphRuntime rt(m.graph, m.states, cfg);

    Rng rng(55);
    Tensor batch({2, 3, kHw, kHw});
    batch.fillUniform(rng, 0.0f, 1.0f);

    const Tensor whole = rt.forward(batch);
    rt.resetPresentationStreams();
    const Tensor first = rt.forward(imageRow(batch, 0));
    const Tensor second = rt.forward(imageRow(batch, 1));

    const int64_t out_elems = whole.numel() / 2;
    expectRowBitIdentical(first.data(), whole.data(), out_elems,
                          "image 0: split vs whole batch");
    expectRowBitIdentical(second.data(), whole.data() + out_elems,
                          out_elems, "image 1: split vs whole batch");

    rt.resetPresentationStreams();
    const Tensor replay = rt.forward(batch);
    EXPECT_TRUE(replay.equals(whole));
}

TEST(Serving, ServerMatchesSingleRequestReference)
{
    TinyModel m;
    ThreadPool srv_pool(4);
    sim::RuntimeConfig cfg = noisyCfg(&srv_pool);
    sim::GraphRuntime rt(m.graph, m.states, cfg);
    serve::GraphBackend backend(rt);

    obs::MetricsRegistry metrics;
    serve::ServerConfig sc;
    sc.maxBatch = 3;
    sc.maxDelayUs = 500;
    sc.metrics = &metrics;
    serve::Server server(backend, sc);

    // Reference runtime: separate engines, one thread — the server
    // must match it bitwise anyway.
    ThreadPool ref_pool(1);
    sim::RuntimeConfig rcfg = noisyCfg(&ref_pool);
    sim::GraphRuntime ref_rt(m.graph, m.states, rcfg);

    constexpr int kThreads = 4, kPerThread = 6;
    constexpr int kReq = kThreads * kPerThread;
    std::vector<Tensor> images(kReq);
    std::vector<Tensor> ref(kReq);
    std::vector<sim::RuntimeReport> ref_rep(kReq);
    for (int i = 0; i < kReq; ++i) {
        Rng irng(500 + static_cast<uint64_t>(i));
        Tensor one({1, 3, kHw, kHw});
        one.fillUniform(irng, 0.0f, 1.0f);
        const uint64_t id = static_cast<uint64_t>(i);
        std::vector<sim::RuntimeReport> pr;
        ref[static_cast<size_t>(i)] =
            ref_rt.forwardRequests(one, &id, &pr);
        ref_rep[static_cast<size_t>(i)] = pr[0];
        // The submitted image is the single sample (no batch dim).
        Tensor img({3, kHw, kHw});
        std::memcpy(img.data(), one.data(),
                    static_cast<size_t>(img.numel()) * sizeof(float));
        images[static_cast<size_t>(i)] = std::move(img);
    }
    const int64_t out_elems = ref[0].numel();

    std::vector<std::future<serve::Response>> futs(kReq);
    std::vector<std::thread> producers;
    for (int t = 0; t < kThreads; ++t) {
        producers.emplace_back([&, t] {
            for (int j = 0; j < kPerThread; ++j) {
                const int i = t * kPerThread + j;
                futs[static_cast<size_t>(i)] = server.submit(
                    images[static_cast<size_t>(i)],
                    static_cast<uint64_t>(i));
            }
        });
    }
    for (auto &p : producers)
        p.join();

    for (int i = 0; i < kReq; ++i) {
        serve::Response r = futs[static_cast<size_t>(i)].get();
        ASSERT_EQ(r.status, serve::Status::Ok) << "request " << i;
        EXPECT_EQ(r.requestId, static_cast<uint64_t>(i));
        EXPECT_GE(r.batchSize, 1);
        EXPECT_LE(r.batchSize, sc.maxBatch);
        EXPECT_GE(r.totalUs, r.queueUs);
        ASSERT_EQ(r.logits.numel(), out_elems);
        expectRowBitIdentical(r.logits.data(),
                              ref[static_cast<size_t>(i)].data(),
                              out_elems,
                              "request " + std::to_string(i));
        expectReportIdentical(r.report,
                              ref_rep[static_cast<size_t>(i)]);
    }

    server.shutdown();
    const auto snap = metrics.snapshot();
    for (const auto &[name, v] : snap.counters) {
        if (name == "serve.accepted" || name == "serve.completed")
            EXPECT_EQ(v, static_cast<uint64_t>(kReq)) << name;
    }
}

/** Controllable backend: echoes each request's id into its logits. */
class EchoBackend : public serve::Backend
{
  public:
    std::atomic<int> entered{0};
    bool block = false;   //!< set before the server starts

    Tensor run(const Tensor &batch, const uint64_t *ids,
               std::vector<sim::RuntimeReport> &per) override
    {
        entered.fetch_add(1);
        if (block) {
            std::unique_lock<std::mutex> lk(mu_);
            cv_.wait(lk, [this] { return released_; });
        }
        const int64_t n = batch.dim(0);
        {
            std::lock_guard<std::mutex> lk(sizes_mu_);
            sizes_.push_back(static_cast<int>(n));
        }
        per.assign(static_cast<size_t>(n), sim::RuntimeReport{});
        Tensor out({n, 1});
        for (int64_t i = 0; i < n; ++i)
            out.data()[i] =
                static_cast<float>(ids[static_cast<size_t>(i)]);
        return out;
    }

    void release()
    {
        {
            std::lock_guard<std::mutex> lk(mu_);
            released_ = true;
        }
        cv_.notify_all();
    }

    std::vector<int> sizes()
    {
        std::lock_guard<std::mutex> lk(sizes_mu_);
        return sizes_;
    }

  private:
    std::mutex mu_;
    std::condition_variable cv_;
    bool released_ = false;
    std::mutex sizes_mu_;
    std::vector<int> sizes_;
};

TEST(Serving, FlushesWhenBatchFills)
{
    EchoBackend backend;
    serve::ServerConfig sc;
    sc.maxBatch = 4;
    sc.maxDelayUs = 60LL * 1000 * 1000;   // never: size must trigger
    serve::Server server(backend, sc);

    std::vector<std::future<serve::Response>> futs;
    for (int i = 0; i < 4; ++i)
        futs.push_back(server.submit(Tensor({1}, 0.0f),
                                     static_cast<uint64_t>(i)));
    for (int i = 0; i < 4; ++i) {
        serve::Response r = futs[static_cast<size_t>(i)].get();
        EXPECT_EQ(r.status, serve::Status::Ok);
        EXPECT_EQ(r.batchSize, 4) << "the full batch should flush as "
                                     "one, well before the deadline";
        EXPECT_EQ(r.logits.data()[0], static_cast<float>(i));
    }
    EXPECT_EQ(backend.sizes(), std::vector<int>{4});
}

TEST(Serving, FlushesOnDeadlineWithPartialBatch)
{
    EchoBackend backend;
    serve::ServerConfig sc;
    sc.maxBatch = 100;                    // never: deadline must trigger
    sc.maxDelayUs = 10 * 1000;            // 10 ms
    serve::Server server(backend, sc);

    auto f0 = server.submit(Tensor({1}, 0.0f), 0);
    auto f1 = server.submit(Tensor({1}, 0.0f), 1);
    serve::Response r0 = f0.get();
    serve::Response r1 = f1.get();
    EXPECT_EQ(r0.status, serve::Status::Ok);
    EXPECT_EQ(r1.status, serve::Status::Ok);
    EXPECT_GE(r0.batchSize, 1);
    EXPECT_LE(r0.batchSize, 2);
    // The flush can only have come from the oldest request's
    // deadline: its queue wait is at least maxDelayUs (the batcher
    // cannot time out earlier on a steady clock).
    EXPECT_GE(r0.queueUs, 9000.0);
}

TEST(Serving, AdmissionRejectsWhenQueueFull)
{
    EchoBackend backend;
    backend.block = true;
    obs::MetricsRegistry metrics;
    serve::ServerConfig sc;
    sc.maxBatch = 1;
    sc.maxDelayUs = 0;
    sc.queueCapacity = 2;
    sc.metrics = &metrics;
    serve::Server server(backend, sc);

    // First request occupies the backend (blocked inside run()).
    auto fa = server.submit(Tensor({1}, 0.0f), 1);
    while (backend.entered.load() < 1)
        std::this_thread::yield();

    // Two more fill the bounded queue; the fourth is shed.
    auto fb = server.submit(Tensor({1}, 0.0f), 2);
    auto fc = server.submit(Tensor({1}, 0.0f), 3);
    auto fd = server.submit(Tensor({1}, 0.0f), 4);

    // Rejection is immediate — a typed error in the future, resolved
    // without waiting on the backend.
    ASSERT_EQ(fd.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    serve::Response rd = fd.get();
    EXPECT_EQ(rd.status, serve::Status::Rejected);
    EXPECT_EQ(rd.requestId, 4u);

    backend.release();
    EXPECT_EQ(fa.get().status, serve::Status::Ok);
    EXPECT_EQ(fb.get().status, serve::Status::Ok);
    EXPECT_EQ(fc.get().status, serve::Status::Ok);

    server.shutdown();
    uint64_t rejected = 0, accepted = 0;
    for (const auto &[name, v] : metrics.snapshot().counters) {
        if (name == "serve.rejected")
            rejected = v;
        if (name == "serve.accepted")
            accepted = v;
    }
    EXPECT_EQ(rejected, 1u);
    EXPECT_EQ(accepted, 3u);
}

TEST(Serving, ShutdownDrainsQueuedWorkThenRefuses)
{
    EchoBackend backend;
    serve::ServerConfig sc;
    sc.maxBatch = 100;
    sc.maxDelayUs = 60LL * 1000 * 1000;
    serve::Server server(backend, sc);

    std::vector<std::future<serve::Response>> futs;
    for (int i = 0; i < 3; ++i)
        futs.push_back(server.submit(Tensor({1}, 0.0f),
                                     static_cast<uint64_t>(i)));
    server.shutdown();   // must serve the 3 queued, not drop them

    for (int i = 0; i < 3; ++i) {
        serve::Response r = futs[static_cast<size_t>(i)].get();
        EXPECT_EQ(r.status, serve::Status::Ok) << "request " << i;
        EXPECT_EQ(r.logits.data()[0], static_cast<float>(i));
    }

    auto late = server.submit(Tensor({1}, 0.0f), 99);
    ASSERT_EQ(late.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_EQ(late.get().status, serve::Status::ShutDown);
}

TEST(Serving, MetricNamesAreDocumented)
{
    // Exercise every serve.* instrument (including a rejection), then
    // require each emitted name to appear in docs/OBSERVABILITY.md —
    // the doc table and the code cannot drift apart.
    EchoBackend backend;
    backend.block = true;
    obs::MetricsRegistry metrics;
    serve::ServerConfig sc;
    sc.maxBatch = 1;
    sc.queueCapacity = 1;
    sc.metrics = &metrics;
    serve::Server server(backend, sc);

    auto fa = server.submit(Tensor({1}, 0.0f), 1);
    while (backend.entered.load() < 1)
        std::this_thread::yield();
    auto fb = server.submit(Tensor({1}, 0.0f), 2);   // fills the queue
    auto fc = server.submit(Tensor({1}, 0.0f), 3);   // shed
    EXPECT_EQ(fc.get().status, serve::Status::Rejected);
    backend.release();
    fa.get();
    fb.get();
    server.shutdown();

    std::ifstream doc(std::string(FORMS_SOURCE_DIR) +
                      "/docs/OBSERVABILITY.md");
    ASSERT_TRUE(doc.good()) << "docs/OBSERVABILITY.md not readable";
    std::stringstream ss;
    ss << doc.rdbuf();
    const std::string text = ss.str();

    const auto snap = metrics.snapshot();
    std::vector<std::string> names;
    for (const auto &[name, v] : snap.counters)
        names.push_back(name);
    for (const auto &[name, v] : snap.gauges)
        names.push_back(name);
    for (const auto &[name, v] : snap.histograms)
        names.push_back(name);
    ASSERT_FALSE(names.empty());
    for (const std::string &name : names) {
        EXPECT_NE(text.find(name), std::string::npos)
            << "metric `" << name
            << "` is not documented in docs/OBSERVABILITY.md";
    }

    // ...and the full instrument set actually fired.
    const std::vector<std::string> expected = {
        "serve.accepted",  "serve.rejected",   "serve.completed",
        "serve.batches",   "serve.queue_depth", "serve.batch_size",
        "serve.queue_us",  "serve.latency_us",
    };
    for (const std::string &e : expected)
        EXPECT_NE(std::find(names.begin(), names.end(), e),
                  names.end())
            << "expected instrument `" << e << "` was never recorded";
}

} // namespace
} // namespace forms
