/**
 * @file
 * The dispatch layer's own contract (common/simd.hh): every compiled
 * kernel table is bit-identical to the scalar reference on every tail
 * residue, the dot reduction tree is the canonical kDotLanes shape,
 * and mode parsing/resolution degrades to scalar instead of failing.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.hh"
#include "common/simd.hh"

namespace forms {
namespace {

/** Every table compiled into this binary (scalar always; SIMD when on). */
std::vector<const simd::Kernels *>
allTables()
{
    std::vector<const simd::Kernels *> tables = {
        &simd::kernels(simd::Mode::Scalar)};
    if (simd::avx2Supported())
        tables.push_back(&simd::kernels(simd::Mode::Avx2));
    if (simd::neonSupported())
        tables.push_back(&simd::kernels(simd::Mode::Neon));
    return tables;
}

TEST(Simd, TablesAreFullyPopulated)
{
    for (const simd::Kernels *t : allTables()) {
        ASSERT_NE(t, nullptr);
        EXPECT_NE(t->name, nullptr);
        EXPECT_NE(t->addF64, nullptr);
        EXPECT_NE(t->axpyF32, nullptr);
        EXPECT_NE(t->dotF32, nullptr);
        EXPECT_NE(t->copyF32, nullptr);
    }
}

/**
 * Bit-identity on every tail residue: sizes 0..2*vector-width+3 catch
 * off-by-one lane handling, a large odd size catches main-loop bugs.
 */
TEST(Simd, VariantsMatchScalarBitwiseOnAllTails)
{
    const simd::Kernels &ref = simd::kernels(simd::Mode::Scalar);
    std::vector<int64_t> sizes;
    for (int64_t n = 0; n <= 19; ++n)
        sizes.push_back(n);
    sizes.push_back(1021);

    Rng rng(77);
    const int64_t cap = 1024;
    std::vector<double> d_base(cap), d_x(cap);
    std::vector<float> f_base(cap), f_x(cap);
    for (int64_t i = 0; i < cap; ++i) {
        d_base[i] = rng.gaussian(0.0, 1.0);
        d_x[i] = rng.gaussian(0.0, 1.0);
        f_base[i] = static_cast<float>(rng.gaussian(0.0, 1.0));
        f_x[i] = static_cast<float>(rng.gaussian(0.0, 1.0));
    }

    for (const simd::Kernels *t : allTables()) {
        if (t == &ref)
            continue;
        SCOPED_TRACE(t->name);
        for (int64_t n : sizes) {
            SCOPED_TRACE("n=" + std::to_string(n));

            std::vector<double> want = d_base, got = d_base;
            ref.addF64(want.data(), d_x.data(), n);
            t->addF64(got.data(), d_x.data(), n);
            EXPECT_EQ(0, std::memcmp(want.data(), got.data(),
                                     sizeof(double) * cap));

            std::vector<float> fwant = f_base, fgot = f_base;
            ref.axpyF32(fwant.data(), f_x.data(), 1.618f, n);
            t->axpyF32(fgot.data(), f_x.data(), 1.618f, n);
            EXPECT_EQ(0, std::memcmp(fwant.data(), fgot.data(),
                                     sizeof(float) * cap));

            const double dwant = ref.dotF32(f_base.data(), f_x.data(), n);
            const double dgot = t->dotF32(f_base.data(), f_x.data(), n);
            EXPECT_EQ(0, std::memcmp(&dwant, &dgot, sizeof(double)));

            fwant.assign(static_cast<size_t>(cap), 0.0f);
            fgot.assign(static_cast<size_t>(cap), 0.0f);
            ref.copyF32(fwant.data(), f_x.data(), n);
            t->copyF32(fgot.data(), f_x.data(), n);
            EXPECT_EQ(0, std::memcmp(fwant.data(), fgot.data(),
                                     sizeof(float) * cap));
        }
    }
}

/** The scalar dot is the canonical lane tree, not plain accumulation. */
TEST(Simd, DotImplementsCanonicalLaneTree)
{
    Rng rng(78);
    const int64_t n = 4 * 9 + 3;   // ragged tail
    std::vector<float> a(static_cast<size_t>(n)), b(a.size());
    for (auto &v : a)
        v = static_cast<float>(rng.gaussian(0.0, 1.0));
    for (auto &v : b)
        v = static_cast<float>(rng.gaussian(0.0, 1.0));

    double lane[simd::kDotLanes] = {0.0, 0.0, 0.0, 0.0};
    for (int64_t i = 0; i < n; ++i) {
        lane[i % simd::kDotLanes] +=
            static_cast<double>(a[static_cast<size_t>(i)]) *
            static_cast<double>(b[static_cast<size_t>(i)]);
    }
    const double want = (lane[0] + lane[2]) + (lane[1] + lane[3]);
    for (const simd::Kernels *t : allTables()) {
        SCOPED_TRACE(t->name);
        const double got = t->dotF32(a.data(), b.data(), n);
        EXPECT_EQ(0, std::memcmp(&want, &got, sizeof(double)));
    }
}

TEST(Simd, ParseModeNamesAndAliases)
{
    simd::Mode m = simd::Mode::Neon;
    EXPECT_TRUE(simd::parseMode("auto", &m));
    EXPECT_EQ(m, simd::Mode::Auto);
    EXPECT_TRUE(simd::parseMode("Scalar", &m));
    EXPECT_EQ(m, simd::Mode::Scalar);
    EXPECT_TRUE(simd::parseMode("AVX2", &m));
    EXPECT_EQ(m, simd::Mode::Avx2);
    EXPECT_TRUE(simd::parseMode("neon", &m));
    EXPECT_EQ(m, simd::Mode::Neon);
    // Disable aliases map to the scalar reference.
    EXPECT_TRUE(simd::parseMode("off", &m));
    EXPECT_EQ(m, simd::Mode::Scalar);
    EXPECT_TRUE(simd::parseMode("NONE", &m));
    EXPECT_EQ(m, simd::Mode::Scalar);
    // Unknown names fail without touching the output.
    m = simd::Mode::Avx2;
    EXPECT_FALSE(simd::parseMode("sse9", &m));
    EXPECT_EQ(m, simd::Mode::Avx2);
}

TEST(Simd, ResolutionNeverYieldsAnUnrunnableMode)
{
    EXPECT_EQ(simd::resolve(simd::Mode::Scalar), simd::Mode::Scalar);
    // An explicit request for an absent ISA degrades to scalar rather
    // than crashing or silently returning a null table.
    if (!simd::avx2Supported())
        EXPECT_EQ(simd::resolve(simd::Mode::Avx2), simd::Mode::Scalar);
    if (!simd::neonSupported())
        EXPECT_EQ(simd::resolve(simd::Mode::Neon), simd::Mode::Scalar);
    const simd::Mode resolved = simd::resolve(simd::Mode::Auto);
    EXPECT_NE(resolved, simd::Mode::Auto);
    EXPECT_EQ(simd::kernels(simd::Mode::Auto).mode, resolved);
}

TEST(Simd, ProcessModeOverrideRoundTrips)
{
    const simd::Mode before = simd::processMode();
    simd::setProcessMode(simd::Mode::Scalar);
    EXPECT_EQ(simd::processMode(), simd::Mode::Scalar);
    EXPECT_EQ(simd::kernels().mode, simd::Mode::Scalar);
    simd::setProcessMode(simd::Mode::Auto);   // back to env/detection
    EXPECT_EQ(simd::processMode(), before);
}

} // namespace
} // namespace forms
