/**
 * @file
 * Shared test assertion: two EngineStats are bit-identical — the
 * determinism-contract check every runtime suite makes. One copy, so
 * new EngineStats fields (like the PR-4 saturation counters) extend
 * every suite's coverage at once instead of silently going unchecked
 * in stale per-file copies.
 */

#ifndef FORMS_TESTS_STATS_TESTUTIL_HH
#define FORMS_TESTS_STATS_TESTUTIL_HH

#include <gtest/gtest.h>

#include "arch/engine.hh"

namespace forms {

inline void
expectStatsIdentical(const arch::EngineStats &a,
                     const arch::EngineStats &b)
{
    EXPECT_EQ(a.presentations, b.presentations);
    EXPECT_EQ(a.bitCycles, b.bitCycles);
    EXPECT_EQ(a.skippedCycles, b.skippedCycles);
    EXPECT_EQ(a.adcSamples, b.adcSamples);
    EXPECT_EQ(a.quantValues, b.quantValues);
    EXPECT_EQ(a.quantClipped, b.quantClipped);
    // Bit-identical, not approximately equal: the merge order is the
    // presentation order in both paths.
    EXPECT_EQ(a.adcEnergyPj, b.adcEnergyPj);
    EXPECT_EQ(a.crossbarEnergyPj, b.crossbarEnergyPj);
    EXPECT_EQ(a.timeNs, b.timeNs);
}

} // namespace forms

#endif // FORMS_TESTS_STATS_TESTUTIL_HH
