/**
 * @file
 * Calibration subsystem tests: the static activation scale
 * (sim::Calibrator -> compile::CalibrationTable ->
 * arch::ScaleMode::Static) must keep the determinism contract — logits
 * AND EngineStats (including the new saturation counters)
 * bit-identical across thread counts, micro-batch sizes and 1/2/4
 * chip counts, and identical across all three executors — with ADC
 * quantization, device variation and read noise enabled. Also: table
 * serialization round-trips exactly, attachTo carries scales on the
 * graph itself, and the clip counters are exact on synthetic outliers.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "compile/calibration.hh"
#include "compile/passes.hh"
#include "compile/schedule.hh"
#include "nn/layers.hh"
#include "nn/zoo.hh"
#include "sim/calibrator.hh"
#include "sim/graph_runtime.hh"
#include "sim/pipeline_runtime.hh"
#include "stats_testutil.hh"

namespace forms {
namespace {

/** ADC quantization + device variation + read noise all on. */
sim::RuntimeConfig
noisyConfig(ThreadPool *pool)
{
    sim::RuntimeConfig cfg;
    cfg.mapping.xbarRows = 64;
    cfg.mapping.xbarCols = 64;
    cfg.mapping.fragSize = 8;
    cfg.mapping.inputBits = 8;
    cfg.engine.adcBits = 3;
    cfg.engine.cell.variationSigma = 0.1;
    cfg.engine.readNoiseSigma = 0.02;
    cfg.pool = pool;
    return cfg;
}

/** Compile + fold + compress a scaled ResNet and calibrate it. */
struct CalibratedResNet
{
    std::unique_ptr<nn::Network> net;
    compile::Graph graph;
    std::vector<admm::LayerState> states;
    compile::CalibrationTable table;

    explicit CalibratedResNet(uint64_t seed,
                              sim::CalibPolicy policy =
                                  sim::CalibPolicy::AbsMax)
    {
        Rng rng(seed);
        net = nn::buildResNetSmall(rng, 4, 8, 1);
        graph = compile::lowerNetwork(*net);
        graph.inferShapes({3, 32, 32});
        EXPECT_GT(compile::foldBatchNorm(graph), 0);
        states = sim::snapshotCompress(*net, 8, 8);

        Rng crng(seed + 1);
        Tensor calib({6, 3, 32, 32});
        calib.fillUniform(crng, 0.0f, 1.0f);
        ThreadPool pool(4);
        sim::CalibratorConfig ccfg;
        ccfg.policy = policy;
        sim::Calibrator cal(graph, states, noisyConfig(&pool), ccfg);
        cal.observe(calib);
        EXPECT_EQ(cal.images(), 6);
        table = cal.table();
    }
};

sim::RuntimeConfig
staticConfig(ThreadPool *pool, const compile::CalibrationTable *table)
{
    sim::RuntimeConfig cfg = noisyConfig(pool);
    cfg.scaleMode = arch::ScaleMode::Static;
    cfg.calibration = table;
    return cfg;
}

TEST(Calibrator, TableCoversEveryProgrammedNodeWithPositiveScales)
{
    CalibratedResNet c(501);
    ThreadPool pool(2);
    sim::GraphRuntime rt(c.graph, c.states, noisyConfig(&pool));
    EXPECT_EQ(c.table.size(), rt.programmedNodes());
    EXPECT_EQ(c.table.inputBits(), 8);
    for (const auto &e : c.table.entries()) {
        EXPECT_GT(e.scale, 0.0f) << e.node;
        EXPECT_GT(e.range, 0.0f) << e.node;
        EXPECT_GT(e.observations, 0u) << e.node;
        EXPECT_FLOAT_EQ(e.scale, e.range / 255.0f) << e.node;
    }
}

TEST(Calibrator, PercentileRangeNeverExceedsAbsMax)
{
    CalibratedResNet absmax(511, sim::CalibPolicy::AbsMax);
    CalibratedResNet pct(511, sim::CalibPolicy::Percentile);
    ASSERT_EQ(absmax.table.size(), pct.table.size());
    for (const auto &e : absmax.table.entries()) {
        const compile::CalibEntry *p = pct.table.find(e.node);
        ASSERT_NE(p, nullptr);
        EXPECT_LE(p->range, e.range) << e.node;
    }
}

TEST(Calibration, StaticBitIdenticalAcrossThreadsMicroBatchesAndChips)
{
    CalibratedResNet c(521);
    Rng rng(522);
    Tensor batch({4, 3, 32, 32});
    batch.fillUniform(rng, 0.0f, 1.0f);

    // Reference: plain GraphRuntime, one thread.
    Tensor ref_logits;
    std::vector<arch::EngineStats> ref_stats;
    {
        ThreadPool pool(1);
        sim::GraphRuntime rt(c.graph, c.states,
                             staticConfig(&pool, &c.table));
        sim::RuntimeReport rep;
        ref_logits = rt.forward(batch, &rep);
        for (const auto &l : rep.layers)
            ref_stats.push_back(l.stats);
        ASSERT_EQ(ref_stats.size(), 10u);
        // The static grid actually runs statically: values were
        // quantized, and the counters merged.
        uint64_t values = 0;
        for (const auto &s : ref_stats)
            values += s.quantValues;
        EXPECT_GT(values, 0u);
    }

    struct Case
    {
        int threads, chips, microBatch;
    };
    const Case cases[] = {
        {4, 1, 2}, {8, 1, 4},            // thread counts, 1 chip
        {4, 2, 1}, {4, 2, 3}, {8, 2, 2}, // micro-batch sizes (3: ragged)
        {4, 4, 2}, {1, 4, 1},            // chip counts
    };
    for (const Case &k : cases) {
        ThreadPool pool(k.threads);
        compile::ScheduleConfig scfg;
        scfg.chips = k.chips;
        sim::PipelineRuntimeConfig pcfg;
        pcfg.runtime = staticConfig(&pool, &c.table);
        pcfg.microBatch = k.microBatch;
        sim::PipelineRuntime rt(c.graph,
                                compile::Schedule::partition(c.graph,
                                                             scfg),
                                c.states, pcfg);
        sim::PipelineReport rep;
        const Tensor logits = rt.forward(batch, &rep);
        EXPECT_TRUE(logits.equals(ref_logits))
            << "static logits diverge at threads=" << k.threads
            << " chips=" << k.chips << " microBatch=" << k.microBatch;
        ASSERT_EQ(rep.nodes.layers.size(), ref_stats.size());
        for (size_t i = 0; i < ref_stats.size(); ++i)
            expectStatsIdentical(rep.nodes.layers[i].stats,
                                 ref_stats[i]);
    }
}

TEST(Calibration, AllThreeExecutorsAgreeBitwiseOnAStraightLineNet)
{
    // Straight-line net: the sequential InferenceRuntime, the DAG
    // GraphRuntime and the pipelined runtime must produce identical
    // logits and stats from the same static calibration table.
    Rng rng(531);
    nn::Network net;
    net.emplace<nn::Conv2D>("conv1", 1, 8, 3, 1, 1, rng);
    net.emplace<nn::ReLU>("relu1");
    net.emplace<nn::MaxPool2D>("pool1", 2, 2);
    net.emplace<nn::Conv2D>("conv2", 8, 8, 3, 1, 1, rng);
    net.emplace<nn::ReLU>("relu2");
    net.emplace<nn::Flatten>("flat");
    net.emplace<nn::Dense>("fc", 8 * 6 * 6, 4, rng);

    auto graph = compile::lowerNetwork(net);
    graph.inferShapes({1, 12, 12});
    auto states = sim::snapshotCompress(net, 8, 8);

    ThreadPool pool(4);
    Rng crng(532);
    Tensor calib({4, 1, 12, 12});
    calib.fillUniform(crng, 0.0f, 1.0f);
    sim::Calibrator cal(graph, states, noisyConfig(&pool), {});
    cal.observe(calib);
    const auto table = cal.table();

    Tensor batch({3, 1, 12, 12});
    batch.fillUniform(crng, 0.0f, 1.0f);

    sim::InferenceRuntime ir(net, states, staticConfig(&pool, &table));
    sim::RuntimeReport irep;
    const Tensor a = ir.forward(batch, &irep);

    sim::GraphRuntime gr(graph, states, staticConfig(&pool, &table));
    sim::RuntimeReport grep;
    const Tensor b = gr.forward(batch, &grep);

    compile::ScheduleConfig scfg;
    scfg.chips = 2;
    sim::PipelineRuntimeConfig pcfg;
    pcfg.runtime = staticConfig(&pool, &table);
    pcfg.microBatch = 2;
    sim::PipelineRuntime pr(graph,
                            compile::Schedule::partition(graph, scfg),
                            states, pcfg);
    sim::PipelineReport prep;
    const Tensor cc = pr.forward(batch, &prep);

    EXPECT_TRUE(a.equals(b));
    EXPECT_TRUE(a.equals(cc));
    ASSERT_EQ(irep.layers.size(), grep.layers.size());
    ASSERT_EQ(irep.layers.size(), prep.nodes.layers.size());
    for (size_t i = 0; i < irep.layers.size(); ++i) {
        expectStatsIdentical(irep.layers[i].stats, grep.layers[i].stats);
        expectStatsIdentical(irep.layers[i].stats,
                             prep.nodes.layers[i].stats);
    }
}

TEST(CalibrationTable, SerializationRoundTripsExactly)
{
    CalibratedResNet c(541, sim::CalibPolicy::Percentile);
    std::stringstream ss;
    c.table.save(ss);
    const auto loaded = compile::CalibrationTable::load(ss);

    EXPECT_EQ(loaded.inputBits(), c.table.inputBits());
    ASSERT_EQ(loaded.size(), c.table.size());
    uint64_t measured = 0;
    for (size_t i = 0; i < c.table.size(); ++i) {
        const auto &a = c.table.entries()[i];
        const auto &b = loaded.entries()[i];
        EXPECT_EQ(a.node, b.node);
        EXPECT_EQ(a.observations, b.observations);
        // Hex floats round-trip bit-exactly.
        EXPECT_EQ(a.range, b.range);
        EXPECT_EQ(a.scale, b.scale);
        // The EIC annotation rides along, also bit-exactly.
        EXPECT_EQ(a.avgEic, b.avgEic);
        EXPECT_EQ(a.eicFragments, b.eicFragments);
        measured += a.eicFragments;
    }
    // The calibrator measures bit activity on every observed node, so
    // the round trip above actually exercised the eic lines.
    EXPECT_GT(measured, 0u);
}

TEST(CalibrationTable, V1FilesWithoutEicLinesStillLoad)
{
    // Tables serialized before the EIC annotation existed carry the
    // v1 magic and no eic lines; they must load as unmeasured entries
    // (density falls back to 1.0 in the EicTime work model).
    std::stringstream ss;
    ss << "forms-calibration v1\n"
          "input-bits 8\n"
          "scale conv1 24 0x1p+0 0x1.010102p-8\n"
          "end\n";
    const auto loaded = compile::CalibrationTable::load(ss);
    EXPECT_EQ(loaded.inputBits(), 8);
    ASSERT_EQ(loaded.size(), 1u);
    const auto &e = loaded.entries()[0];
    EXPECT_EQ(e.node, "conv1");
    EXPECT_EQ(e.observations, 24u);
    EXPECT_EQ(e.avgEic, 0.0f);
    EXPECT_EQ(e.eicFragments, 0u);
}

TEST(CalibrationTable, AttachToStampsEicDensities)
{
    CalibratedResNet c(581);
    c.table.attachTo(c.graph);
    const float bits = static_cast<float>(c.table.inputBits());
    size_t stamped = 0;
    for (int id = 0; id < c.graph.capacity(); ++id) {
        if (!c.graph.alive(id))
            continue;
        const compile::Node &n = c.graph.node(id);
        if (n.op != compile::Op::Conv && n.op != compile::Op::Dense)
            continue;
        const compile::CalibEntry *e = c.table.find(n.name);
        ASSERT_NE(e, nullptr) << n.name;
        ASSERT_GT(e->eicFragments, 0u) << n.name;
        EXPECT_EQ(n.eicDensity, e->avgEic / bits) << n.name;
        EXPECT_GT(n.eicDensity, 0.0f) << n.name;
        EXPECT_LE(n.eicDensity, 1.0f) << n.name;
        ++stamped;
    }
    EXPECT_GT(stamped, 0u);
    EXPECT_NE(c.graph.dump().find("eic_density="), std::string::npos);
}

TEST(CalibrationTable, AttachToCarriesScalesOnTheGraph)
{
    CalibratedResNet c(551);
    c.table.attachTo(c.graph);
    for (int id = 0; id < c.graph.capacity(); ++id) {
        if (!c.graph.alive(id))
            continue;
        const compile::Node &n = c.graph.node(id);
        if (n.op != compile::Op::Conv && n.op != compile::Op::Dense)
            continue;
        const compile::CalibEntry *e = c.table.find(n.name);
        ASSERT_NE(e, nullptr) << n.name;
        EXPECT_EQ(n.inScale, e->scale) << n.name;
    }
    EXPECT_NE(c.graph.dump().find("in_scale="), std::string::npos);

    // A runtime built from the graph-attached scales (no table in the
    // config) is bit-identical to one using the table directly.
    Rng rng(552);
    Tensor batch({2, 3, 32, 32});
    batch.fillUniform(rng, 0.0f, 1.0f);
    ThreadPool pool(4);
    sim::RuntimeConfig attached = noisyConfig(&pool);
    attached.scaleMode = arch::ScaleMode::Static;
    sim::GraphRuntime rt_attached(c.graph, c.states, attached);
    sim::GraphRuntime rt_table(c.graph, c.states,
                               staticConfig(&pool, &c.table));
    EXPECT_TRUE(
        rt_attached.forward(batch).equals(rt_table.forward(batch)));
}

TEST(CalibrationTable, MismatchedInputGridIsFatalAtConstruction)
{
    // A table calibrated for one DAC resolution must not silently
    // deploy on another: the scales would mis-span the grid.
    CalibratedResNet c(571);
    ThreadPool pool(2);
    sim::RuntimeConfig cfg = staticConfig(&pool, &c.table);
    cfg.mapping.inputBits = 4;   // the table was calibrated at 8
    EXPECT_DEATH(sim::GraphRuntime(c.graph, c.states, cfg),
                 "calibration table");
}

TEST(SaturationCounters, ExactOnSyntheticOutliers)
{
    // 4 presentations of 8 values each, quantized on a grid whose
    // range is 1.0 at 8 bits (scale = 1/255). Values > range + half a
    // step saturate; exactly 3 such outliers are planted.
    ThreadPool pool(2);
    const int64_t count = 4, rows = 8;
    std::vector<float> data(static_cast<size_t>(count * rows), 0.25f);
    data[3] = 2.0f;    // presentation 0
    data[9] = 7.5f;    // presentation 1
    data[26] = 1.5f;   // presentation 3
    data[11] = -3.0f;  // negative: maps to 0, never clips
    data[30] = 1.0f;   // exactly at range: not a clip

    sim::StageScale sc;
    sc.mode = arch::ScaleMode::Static;
    sc.staticScale = 1.0f / 255.0f;
    std::vector<float> scales;
    arch::EngineStats stats;
    auto q = sim::quantizePresentations(pool, count, rows, 8, sc,
                                        scales, data.data(),
                                        /*j_stride=*/rows,
                                        /*r_stride=*/1, &stats);

    EXPECT_EQ(stats.quantValues, static_cast<uint64_t>(count * rows));
    EXPECT_EQ(stats.quantClipped, 3u);
    EXPECT_DOUBLE_EQ(stats.clipFraction(), 3.0 / 32.0);
    ASSERT_EQ(q.size(), 4u);
    EXPECT_EQ(q[0][3], 255u);
    EXPECT_EQ(q[1][1], 255u);
    EXPECT_EQ(q[3][2], 255u);
    EXPECT_EQ(q[1][3], 0u);    // the negative value
    EXPECT_EQ(q[3][6], 255u);  // at-range value hits the top code
    EXPECT_EQ(q[0][0], 64u);   // 0.25 / (1/255) = 63.75 -> 64
    for (float s : scales)
        EXPECT_EQ(s, 1.0f / 255.0f);

    // Per-presentation mode never clips and counts the same values.
    sim::StageScale per;
    arch::EngineStats pstats;
    auto qp = sim::quantizePresentations(pool, count, rows, 8, per,
                                         scales, data.data(), rows, 1,
                                         &pstats);
    EXPECT_EQ(pstats.quantValues, static_cast<uint64_t>(count * rows));
    EXPECT_EQ(pstats.quantClipped, 0u);
    EXPECT_EQ(pstats.clipFraction(), 0.0);
}

TEST(SaturationCounters, SurfaceThroughRuntimeReportsOnOutlierBatches)
{
    CalibratedResNet c(561);
    ThreadPool pool(4);
    sim::GraphRuntime rt(c.graph, c.states,
                         staticConfig(&pool, &c.table));

    // In-range batch: the abs-max table was calibrated on [0,1)
    // uniform inputs, so a similar batch should barely clip.
    Rng rng(562);
    Tensor normal({2, 3, 32, 32});
    normal.fillUniform(rng, 0.0f, 1.0f);
    sim::RuntimeReport normal_rep;
    rt.forward(normal, &normal_rep);

    // Outlier batch: 10x the calibrated dynamic range must saturate
    // the first conv's grid.
    Tensor outlier({2, 3, 32, 32});
    outlier.fillUniform(rng, 0.0f, 10.0f);
    sim::GraphRuntime rt2(c.graph, c.states,
                          staticConfig(&pool, &c.table));
    sim::RuntimeReport outlier_rep;
    rt2.forward(outlier, &outlier_rep);

    uint64_t normal_clips = 0, outlier_clips = 0;
    for (const auto &l : normal_rep.layers)
        normal_clips += l.stats.quantClipped;
    for (const auto &l : outlier_rep.layers)
        outlier_clips += l.stats.quantClipped;
    EXPECT_GT(outlier_rep.layers[0].stats.quantClipped, 0u);
    EXPECT_GT(outlier_clips, normal_clips);

    // The idealized mode never clips anything.
    sim::GraphRuntime ideal(c.graph, c.states, noisyConfig(&pool));
    sim::RuntimeReport ideal_rep;
    ideal.forward(outlier, &ideal_rep);
    for (const auto &l : ideal_rep.layers) {
        EXPECT_EQ(l.stats.quantClipped, 0u);
        EXPECT_GT(l.stats.quantValues, 0u);
    }
}

} // namespace
} // namespace forms
