/**
 * @file
 * Tests for the pipeline timing model (paper Figure 12): depth
 * accounting with and without pooling, initiation-interval scaling,
 * and zero-skip shortening the streaming phase.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "arch/pipeline.hh"

namespace forms::arch {
namespace {

TEST(Pipeline, FillTimeIsDepth)
{
    PipelineConfig cfg;
    cfg.cycleNs = 15.0;
    auto t = layerPipelineTiming(cfg, 1, 16.0, false);
    EXPECT_DOUBLE_EQ(t.fillNs, 22.0 * 15.0);
    EXPECT_DOUBLE_EQ(t.streamNs, 0.0);
}

TEST(Pipeline, PoolingAddsFourStages)
{
    PipelineConfig cfg;
    auto plain = layerPipelineTiming(cfg, 1, 16.0, false);
    auto pooled = layerPipelineTiming(cfg, 1, 16.0, true);
    EXPECT_DOUBLE_EQ(pooled.fillNs - plain.fillNs, 4.0 * cfg.cycleNs);
}

TEST(Pipeline, SteadyStateScalesWithPresentations)
{
    PipelineConfig cfg;
    auto t1k = layerPipelineTiming(cfg, 1001, 16.0, false);
    auto t2k = layerPipelineTiming(cfg, 2001, 16.0, false);
    EXPECT_NEAR(t2k.streamNs / t1k.streamNs, 2.0, 0.01);
}

TEST(Pipeline, ZeroSkipShortensInitiationInterval)
{
    PipelineConfig cfg;
    auto full = layerPipelineTiming(cfg, 1000, 16.0, false);
    auto skipped = layerPipelineTiming(cfg, 1000, 10.7, false);
    EXPECT_LT(skipped.totalNs, full.totalNs);
    EXPECT_NEAR(full.streamNs / skipped.streamNs, 16.0 / 10.7, 0.01);
}

TEST(Pipeline, MinimumIntervalIsOneCycle)
{
    PipelineConfig cfg;
    auto t = layerPipelineTiming(cfg, 10, 0.0, false);
    EXPECT_DOUBLE_EQ(t.streamNs, 9.0 * cfg.cycleNs);
}

TEST(Pipeline, CycleCountConsistent)
{
    PipelineConfig cfg;
    cfg.cycleNs = 10.0;
    auto t = layerPipelineTiming(cfg, 5, 4.0, false);
    EXPECT_EQ(t.cycles,
              static_cast<uint64_t>(std::llround(t.totalNs / 10.0)));
}

} // namespace
} // namespace forms::arch
