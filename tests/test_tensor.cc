/**
 * @file
 * Unit tests for the tensor substrate: shape bookkeeping, elementwise
 * helpers, GEMM variants against naive references, im2col/col2im
 * consistency, pooling forward/backward.
 */

#include <gtest/gtest.h>

#include "common/simd.hh"
#include "tensor/ops.hh"

namespace forms {
namespace {

TEST(Tensor, ShapeAndNumel)
{
    Tensor t({2, 3, 4});
    EXPECT_EQ(t.rank(), 3);
    EXPECT_EQ(t.numel(), 24);
    EXPECT_EQ(t.dim(0), 2);
    EXPECT_EQ(t.dim(-1), 4);
}

TEST(Tensor, FillAndSum)
{
    Tensor t({5, 5}, 2.0f);
    EXPECT_DOUBLE_EQ(t.sum(), 50.0);
    t.fill(0.0f);
    EXPECT_DOUBLE_EQ(t.sum(), 0.0);
}

TEST(Tensor, ReshapePreservesData)
{
    Tensor t({2, 6});
    for (int64_t i = 0; i < 12; ++i)
        t.at(i) = static_cast<float>(i);
    Tensor r = t.reshaped({3, 4});
    EXPECT_EQ(r.dim(0), 3);
    EXPECT_FLOAT_EQ(r.at(2, 3), 11.0f);
}

TEST(Tensor, AxpyAndScale)
{
    Tensor a({4}, 1.0f), b({4}, 2.0f);
    a.axpy(3.0f, b);
    EXPECT_FLOAT_EQ(a.at(0), 7.0f);
    a.scale(0.5f);
    EXPECT_FLOAT_EQ(a.at(3), 3.5f);
}

TEST(Tensor, MaxAbsAndZeros)
{
    Tensor t({4}, 0.0f);
    t.at(2) = -5.0f;
    EXPECT_FLOAT_EQ(t.maxAbs(), 5.0f);
    EXPECT_EQ(t.countZeros(), 3);
}

TEST(Tensor, GaussianFillStatistics)
{
    Rng rng(3);
    Tensor t({10000});
    t.fillGaussian(rng, 1.0f, 2.0f);
    EXPECT_NEAR(t.sum() / 10000.0, 1.0, 0.1);
}

TEST(Ops, MatmulMatchesNaive)
{
    Rng rng(5);
    Tensor a({7, 5}), b({5, 9});
    a.fillGaussian(rng, 0.0f, 1.0f);
    b.fillGaussian(rng, 0.0f, 1.0f);
    Tensor c = matmul(a, b);
    for (int64_t i = 0; i < 7; ++i)
        for (int64_t j = 0; j < 9; ++j) {
            double acc = 0.0;
            for (int64_t k = 0; k < 5; ++k)
                acc += static_cast<double>(a.at(i, k)) * b.at(k, j);
            EXPECT_NEAR(c.at(i, j), acc, 1e-4);
        }
}

TEST(Ops, MatmulTransposeVariantsAgree)
{
    Rng rng(6);
    Tensor a({4, 6}), b({6, 3});
    a.fillGaussian(rng, 0.0f, 1.0f);
    b.fillGaussian(rng, 0.0f, 1.0f);
    Tensor ref = matmul(a, b);
    Tensor viaTB = matmulTransposeB(a, transpose(b));
    Tensor viaTA = matmulTransposeA(transpose(a), b);
    for (int64_t i = 0; i < ref.numel(); ++i) {
        EXPECT_NEAR(viaTB.at(i), ref.at(i), 1e-4);
        EXPECT_NEAR(viaTA.at(i), ref.at(i), 1e-4);
    }
}

/**
 * The dispatched matmul / matmulTransposeB / im2col kernels are
 * bit-identical to their scalar-mode runs on deliberately ragged
 * shapes (dimensions coprime to every vector width, so the 4-wide
 * main loops always leave 1–3-element tails). On a scalar-only build
 * both runs use the same table and the check degenerates harmlessly.
 */
TEST(Ops, DispatchModesAreBitIdenticalOnRaggedShapes)
{
    Rng rng(12);
    // k = 23 and n = 13 are the reduction / row extents the SIMD
    // paths block by 4; neither divides evenly.
    Tensor a({5, 23}), b({23, 13}), bt({13, 23});
    Tensor img({2, 3, 9, 7});
    a.fillGaussian(rng, 0.0f, 1.0f);
    b.fillGaussian(rng, 0.0f, 1.0f);
    bt.fillGaussian(rng, 0.0f, 1.0f);
    img.fillUniform(rng, -1.0f, 1.0f);

    simd::setProcessMode(simd::Mode::Scalar);
    const Tensor mm_ref = matmul(a, b);
    const Tensor mt_ref = matmulTransposeB(a, bt);
    const Tensor ta_ref = matmulTransposeA(transpose(a), b);
    const Tensor im_ref = im2col(img, 3, 3, 1, 1);
    const Tensor im_ref2 = im2col(img, 2, 2, 2, 0);   // strided path

    simd::setProcessMode(simd::Mode::Auto);
    EXPECT_TRUE(matmul(a, b).equals(mm_ref));
    EXPECT_TRUE(matmulTransposeB(a, bt).equals(mt_ref));
    EXPECT_TRUE(matmulTransposeA(transpose(a), b).equals(ta_ref));
    EXPECT_TRUE(im2col(img, 3, 3, 1, 1).equals(im_ref));
    EXPECT_TRUE(im2col(img, 2, 2, 2, 0).equals(im_ref2));
}

/** im2colInto reuses caller storage without changing the result. */
TEST(Ops, Im2colIntoReusedScratchMatchesFreshAllocation)
{
    Rng rng(13);
    Tensor big({2, 3, 8, 8}), small({1, 3, 5, 5});
    big.fillGaussian(rng, 0.0f, 1.0f);
    small.fillGaussian(rng, 0.0f, 1.0f);

    Tensor scratch;
    im2colInto(big, 3, 3, 1, 1, scratch);
    EXPECT_TRUE(scratch.equals(im2col(big, 3, 3, 1, 1)));
    // Shrinking reuse: stale tail data from the larger lowering must
    // not leak into the smaller one.
    im2colInto(small, 3, 3, 1, 1, scratch);
    EXPECT_TRUE(scratch.equals(im2col(small, 3, 3, 1, 1)));
    // And growing again reallocates correctly.
    im2colInto(big, 3, 3, 2, 0, scratch);
    EXPECT_TRUE(scratch.equals(im2col(big, 3, 3, 2, 0)));
}

TEST(Ops, TransposeRoundTrip)
{
    Rng rng(8);
    Tensor a({3, 5});
    a.fillGaussian(rng, 0.0f, 1.0f);
    EXPECT_TRUE(transpose(transpose(a)).equals(a));
}

TEST(Ops, ConvOutDim)
{
    EXPECT_EQ(convOutDim(32, 3, 1, 1), 32);
    EXPECT_EQ(convOutDim(28, 5, 1, 0), 24);
    EXPECT_EQ(convOutDim(32, 3, 2, 1), 16);
}

TEST(Ops, Im2colConvMatchesDirect)
{
    // conv as wmat * im2col must equal the naive sliding window.
    Rng rng(9);
    const int n = 2, c = 3, h = 6, w = 6, f = 4, k = 3, stride = 1,
        pad = 1;
    Tensor input({n, c, h, w}), weight({f, c, k, k});
    input.fillGaussian(rng, 0.0f, 1.0f);
    weight.fillGaussian(rng, 0.0f, 1.0f);

    Tensor cols = im2col(input, k, k, stride, pad);
    Tensor prod = matmul(weight.reshaped({f, c * k * k}), cols);

    const int oh = convOutDim(h, k, stride, pad);
    const int ow = convOutDim(w, k, stride, pad);
    for (int img = 0; img < n; ++img)
        for (int fo = 0; fo < f; ++fo)
            for (int oy = 0; oy < oh; ++oy)
                for (int ox = 0; ox < ow; ++ox) {
                    double acc = 0.0;
                    for (int ch = 0; ch < c; ++ch)
                        for (int ky = 0; ky < k; ++ky)
                            for (int kx = 0; kx < k; ++kx) {
                                const int iy = oy * stride - pad + ky;
                                const int ix = ox * stride - pad + kx;
                                if (iy < 0 || iy >= h || ix < 0 ||
                                    ix >= w)
                                    continue;
                                acc += static_cast<double>(
                                    weight.at(fo, ch, ky, kx)) *
                                    input.at(img, ch, iy, ix);
                            }
                    const int64_t col = (img * oh + oy) * ow + ox;
                    EXPECT_NEAR(prod.at(fo, col), acc, 1e-4);
                }
}

TEST(Ops, Col2imIsAdjointOfIm2col)
{
    // <im2col(x), y> == <x, col2im(y)> — the defining adjoint property
    // that conv backward relies on.
    Rng rng(10);
    const Shape in_shape{1, 2, 5, 5};
    Tensor x(in_shape);
    x.fillGaussian(rng, 0.0f, 1.0f);
    Tensor cx = im2col(x, 3, 3, 2, 1);
    Tensor y(cx.shape());
    y.fillGaussian(rng, 0.0f, 1.0f);
    Tensor ay = col2im(y, in_shape, 3, 3, 2, 1);

    double lhs = 0.0, rhs = 0.0;
    for (int64_t i = 0; i < cx.numel(); ++i)
        lhs += static_cast<double>(cx.at(i)) * y.at(i);
    for (int64_t i = 0; i < x.numel(); ++i)
        rhs += static_cast<double>(x.at(i)) * ay.at(i);
    EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(Ops, ReluAndGrad)
{
    Tensor x({4});
    x.at(0) = -1.0f; x.at(1) = 0.0f; x.at(2) = 2.0f; x.at(3) = -0.5f;
    Tensor y = relu(x);
    EXPECT_FLOAT_EQ(y.at(0), 0.0f);
    EXPECT_FLOAT_EQ(y.at(2), 2.0f);
    Tensor g({4}, 1.0f);
    Tensor gx = reluGrad(x, g);
    EXPECT_FLOAT_EQ(gx.at(0), 0.0f);
    EXPECT_FLOAT_EQ(gx.at(2), 1.0f);
}

TEST(Ops, SoftmaxRowsNormalized)
{
    Rng rng(11);
    Tensor logits({3, 7});
    logits.fillGaussian(rng, 0.0f, 3.0f);
    Tensor p = softmaxRows(logits);
    for (int64_t i = 0; i < 3; ++i) {
        double row = 0.0;
        for (int64_t j = 0; j < 7; ++j) {
            EXPECT_GE(p.at(i, j), 0.0f);
            row += p.at(i, j);
        }
        EXPECT_NEAR(row, 1.0, 1e-5);
    }
}

TEST(Ops, MaxPoolForwardAndBackward)
{
    Tensor x({1, 1, 4, 4});
    for (int64_t i = 0; i < 16; ++i)
        x.at(i) = static_cast<float>(i);
    Tensor argmax;
    Tensor y = maxPool2d(x, 2, 2, &argmax);
    EXPECT_EQ(y.dim(2), 2);
    EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 5.0f);
    EXPECT_FLOAT_EQ(y.at(0, 0, 1, 1), 15.0f);

    Tensor g({1, 1, 2, 2}, 1.0f);
    Tensor gx = maxPool2dBackward(g, argmax, x.shape());
    EXPECT_FLOAT_EQ(gx.at(0, 0, 1, 1), 1.0f);   // index 5
    EXPECT_FLOAT_EQ(gx.at(0, 0, 0, 0), 0.0f);
    EXPECT_DOUBLE_EQ(gx.sum(), 4.0);
}

TEST(Ops, AvgPoolForwardBackward)
{
    Tensor x({1, 1, 4, 4}, 2.0f);
    Tensor y = avgPool2d(x, 2, 2);
    EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 2.0f);
    Tensor g({1, 1, 2, 2}, 1.0f);
    Tensor gx = avgPool2dBackward(g, x.shape(), 2, 2);
    EXPECT_FLOAT_EQ(gx.at(0, 0, 0, 0), 0.25f);
    EXPECT_NEAR(gx.sum(), 4.0, 1e-6);
}

} // namespace
} // namespace forms
