/**
 * @file
 * ThreadPool unit tests: full range coverage, grain edge cases,
 * per-thread accumulators, exception propagation, nested reuse, and
 * determinism of the static sharding.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/threadpool.hh"

namespace forms {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(257);
    for (auto &h : hits)
        h = 0;
    pool.parallelFor(0, 257, 3, [&](int64_t i, int) {
        hits[static_cast<size_t>(i)]++;
    });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, GrainEdgeCases)
{
    ThreadPool pool(3);

    // Empty and inverted ranges are no-ops.
    int calls = 0;
    pool.parallelFor(5, 5, 1, [&](int64_t, int) { ++calls; });
    pool.parallelFor(7, 2, 1, [&](int64_t, int) { ++calls; });
    EXPECT_EQ(calls, 0);

    // Nonpositive grain clamps to 1.
    std::atomic<int> n{0};
    pool.parallelFor(0, 10, 0, [&](int64_t, int) { ++n; });
    EXPECT_EQ(n.load(), 10);
    n = 0;
    pool.parallelFor(0, 10, -4, [&](int64_t, int) { ++n; });
    EXPECT_EQ(n.load(), 10);

    // Grain larger than the range: single chunk, runs on the caller
    // (worker 0).
    std::vector<int> workers;
    pool.parallelFor(0, 4, 100, [&](int64_t, int w) {
        workers.push_back(w);
    });
    ASSERT_EQ(workers.size(), 4u);
    for (int w : workers)
        EXPECT_EQ(w, 0);
}

TEST(ThreadPool, PerThreadAccumulatorsSumCorrectly)
{
    ThreadPool pool(4);
    PerThread<int64_t> acc(pool, 0);
    pool.parallelFor(1, 1001, 7, [&](int64_t i, int w) {
        acc.at(w) += i;
    });
    const int64_t total =
        acc.reduce(int64_t{0}, [](int64_t a, int64_t b) { return a + b; });
    EXPECT_EQ(total, 1000 * 1001 / 2);
}

TEST(ThreadPool, WorkerIdsStayInRange)
{
    ThreadPool pool(4);
    std::atomic<bool> ok{true};
    pool.parallelFor(0, 1000, 1, [&](int64_t, int w) {
        if (w < 0 || w >= pool.threads())
            ok = false;
    });
    EXPECT_TRUE(ok.load());
}

TEST(ThreadPool, ShardingIsDeterministic)
{
    // The (index -> worker) mapping is a pure function of the range,
    // the grain and the thread count: two identical runs agree.
    ThreadPool pool(4);
    std::vector<int> first(300), second(300);
    pool.parallelFor(0, 300, 11, [&](int64_t i, int w) {
        first[static_cast<size_t>(i)] = w;
    });
    pool.parallelFor(0, 300, 11, [&](int64_t i, int w) {
        second[static_cast<size_t>(i)] = w;
    });
    EXPECT_EQ(first, second);
}

TEST(ThreadPool, ExceptionsPropagateFromWorkers)
{
    ThreadPool pool(4);
    EXPECT_THROW(
        pool.parallelFor(0, 100, 1, [&](int64_t i, int) {
            if (i == 57)
                throw std::runtime_error("boom");
        }),
        std::runtime_error);

    // The pool survives and stays usable after a failed launch.
    std::atomic<int> n{0};
    pool.parallelFor(0, 50, 1, [&](int64_t, int) { ++n; });
    EXPECT_EQ(n.load(), 50);
}

TEST(ThreadPool, ExceptionsPropagateFromCallerShard)
{
    ThreadPool pool(2);
    // Chunk 0 belongs to the calling thread (shard 0).
    EXPECT_THROW(
        pool.parallelFor(0, 100, 1, [&](int64_t i, int) {
            if (i == 0)
                throw std::logic_error("caller boom");
        }),
        std::logic_error);
}

TEST(ThreadPool, NestedParallelForRunsInline)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(64);
    for (auto &h : hits)
        h = 0;
    // Inner calls reuse the caller's shard instead of re-entering the
    // fork-join barrier — no deadlock, full coverage.
    pool.parallelFor(0, 8, 1, [&](int64_t outer, int) {
        pool.parallelFor(0, 8, 1, [&](int64_t inner, int) {
            hits[static_cast<size_t>(outer * 8 + inner)]++;
        });
    });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, CrossPoolNestingDispatchesWithValidWorkerIds)
{
    // Workers of pool A entering pool B get B's own unique shard
    // ids (B serializes concurrent callers), so per-thread
    // accumulators sized to B stay race-free.
    ThreadPool a(3), b(2);
    std::vector<std::atomic<int>> hits(3 * 10);
    for (auto &h : hits)
        h = 0;
    std::atomic<bool> ids_ok{true};
    a.parallelFor(0, 3, 1, [&](int64_t outer, int) {
        b.parallelFor(0, 10, 1, [&](int64_t inner, int w) {
            if (w < 0 || w >= b.threads())
                ids_ok = false;
            hits[static_cast<size_t>(outer * 10 + inner)]++;
        });
    });
    EXPECT_TRUE(ids_ok.load());
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);

    // Back on the outer pool, the caller's shard state survived the
    // excursion: same-pool nesting still runs inline without deadlock.
    std::atomic<int> n{0};
    a.parallelFor(0, 6, 1, [&](int64_t, int) {
        a.parallelFor(0, 4, 1, [&](int64_t, int) { ++n; });
    });
    EXPECT_EQ(n.load(), 24);
}

TEST(ThreadPool, SingleThreadPoolRunsInline)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.threads(), 1);
    int64_t sum = 0;   // no atomics needed: everything is inline
    pool.parallelFor(0, 100, 8, [&](int64_t i, int w) {
        EXPECT_EQ(w, 0);
        sum += i;
    });
    EXPECT_EQ(sum, 99 * 100 / 2);
}

TEST(ThreadPool, ReusableAcrossManyLaunches)
{
    ThreadPool pool(4);
    for (int round = 0; round < 50; ++round) {
        std::atomic<int64_t> sum{0};
        pool.parallelFor(0, 64, 5, [&](int64_t i, int) { sum += i; });
        ASSERT_EQ(sum.load(), 63 * 64 / 2);
    }
}

TEST(ThreadPool, PoolScopeRedirectsFreeParallelFor)
{
    ThreadPool inner(3), outer(2);
    EXPECT_EQ(&ThreadPool::current(), &ThreadPool::global());
    {
        PoolScope outer_scope(outer);
        EXPECT_EQ(&ThreadPool::current(), &outer);
        {
            PoolScope inner_scope(inner);
            EXPECT_EQ(&ThreadPool::current(), &inner);
            // Worker ids come from the scoped pool: max id 2.
            std::atomic<int> max_worker{-1};
            parallelFor(0, 30, 1, [&](int64_t, int w) {
                int prev = max_worker.load();
                while (w > prev &&
                       !max_worker.compare_exchange_weak(prev, w)) {
                }
            });
            EXPECT_LT(max_worker.load(), inner.threads());
        }
        EXPECT_EQ(&ThreadPool::current(), &outer);
    }
    EXPECT_EQ(&ThreadPool::current(), &ThreadPool::global());
}

TEST(ThreadPool, GlobalPoolExists)
{
    EXPECT_GE(ThreadPool::global().threads(), 1);
    std::atomic<int> n{0};
    parallelFor(0, 10, 1, [&](int64_t, int) { ++n; });
    EXPECT_EQ(n.load(), 10);
}

} // namespace
} // namespace forms
