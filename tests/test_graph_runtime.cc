/**
 * @file
 * GraphRuntime tests: buildResNetSmall compiles (lower + BN-fold),
 * maps onto simulated crossbars, and runs end to end — with logits
 * AND merged per-node EngineStats bit-identical across 1, 4, and 8
 * threads, with ADC quantization, device variation and read noise all
 * enabled (the DESIGN.md §3 contract extended to DAG join nodes).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "compile/passes.hh"
#include "nn/zoo.hh"
#include "sim/graph_runtime.hh"
#include "stats_testutil.hh"

namespace forms {
namespace {

/** Compile + fold + compress a scaled ResNet, ready to program. */
struct CompiledResNet
{
    std::unique_ptr<nn::Network> net;
    compile::Graph graph;
    std::vector<admm::LayerState> states;

    explicit CompiledResNet(uint64_t seed, int blocks_per_stage = 1)
    {
        Rng rng(seed);
        net = nn::buildResNetSmall(rng, 4, 8, blocks_per_stage);
        graph = compile::lowerNetwork(*net);
        graph.inferShapes({3, 32, 32});
        EXPECT_GT(compile::foldBatchNorm(graph), 0);
        states = sim::snapshotCompress(*net, 8, 8);
    }
};

sim::RuntimeConfig
noisyConfig(ThreadPool *pool)
{
    sim::RuntimeConfig rcfg;
    rcfg.mapping.xbarRows = 64;
    rcfg.mapping.xbarCols = 64;
    rcfg.mapping.fragSize = 8;
    rcfg.mapping.inputBits = 8;
    rcfg.engine.adcBits = 3;
    rcfg.engine.cell.variationSigma = 0.1;
    rcfg.engine.readNoiseSigma = 0.02;
    rcfg.pool = pool;
    return rcfg;
}

TEST(GraphRuntime, ResNetBitIdenticalAcrossThreadCounts)
{
    CompiledResNet c(51);

    Rng rng(52);
    Tensor batch({2, 3, 32, 32});
    batch.fillUniform(rng, 0.0f, 1.0f);

    Tensor ref_logits;
    sim::RuntimeReport ref_rep;
    for (int threads : {1, 4, 8}) {
        ThreadPool pool(threads);
        sim::GraphRuntime rt(c.graph, c.states, noisyConfig(&pool));
        sim::RuntimeReport rep;
        const Tensor logits = rt.forward(batch, &rep);

        ASSERT_EQ(logits.dim(0), 2);
        ASSERT_EQ(logits.dim(1), 4);
        if (threads == 1) {
            ref_logits = logits;
            ref_rep = rep;
            continue;
        }
        EXPECT_TRUE(logits.equals(ref_logits))
            << "logits diverge on " << threads << " threads";
        ASSERT_EQ(rep.layers.size(), ref_rep.layers.size());
        for (size_t i = 0; i < rep.layers.size(); ++i) {
            EXPECT_EQ(rep.layers[i].name, ref_rep.layers[i].name);
            expectStatsIdentical(rep.layers[i].stats,
                                 ref_rep.layers[i].stats);
        }
        EXPECT_EQ(rep.presentations, ref_rep.presentations);
    }

    // One programmed node per conv/dense: stem + 1 block/stage x
    // (2 convs + proj on stages 1,2) + fc.
    EXPECT_GT(ref_rep.presentations, 0u);
    EXPECT_EQ(ref_rep.layers.size(), 10u);
}

TEST(GraphRuntime, ProgramsEveryMatrixNodeAndReportsAllocation)
{
    CompiledResNet c(61);
    ThreadPool pool(2);
    sim::GraphRuntime rt(c.graph, c.states, noisyConfig(&pool));

    EXPECT_EQ(rt.nodes(), c.graph.size());
    EXPECT_EQ(rt.programmedNodes(), 10u);
    EXPECT_GT(rt.totalCrossbars(), 0);

    const auto alloc = rt.allocation();
    ASSERT_EQ(alloc.size(), rt.programmedNodes());
    int64_t total = 0;
    for (const auto &a : alloc) {
        EXPECT_FALSE(a.name.empty());
        EXPECT_GT(a.crossbars, 0);
        EXPECT_FALSE(a.outShape.empty());
        total += a.crossbars;
    }
    EXPECT_EQ(total, rt.totalCrossbars());
}

TEST(GraphRuntime, LosslessLogitsTrackFpReferenceOfProjectedWeights)
{
    // With lossless ADCs, no variation/noise and fine input
    // quantization, the crossbar DAG should closely track the FP
    // forward of the *projected* (polarized + weight-quantized)
    // network — which snapshotCompress mutated in place.
    CompiledResNet c(71);

    Rng rng(72);
    Tensor batch({2, 3, 32, 32});
    batch.fillUniform(rng, 0.0f, 1.0f);
    const Tensor fp = c.net->forward(batch, false);

    sim::RuntimeConfig rcfg;
    rcfg.mapping.xbarRows = 64;
    rcfg.mapping.xbarCols = 64;
    rcfg.mapping.fragSize = 8;
    rcfg.mapping.inputBits = 16;
    rcfg.engine.adcBits = 0;
    sim::GraphRuntime rt(c.graph, c.states, rcfg);
    const Tensor logits = rt.forward(batch);

    ASSERT_EQ(logits.shape(), fp.shape());
    double err = 0.0, mag = 0.0;
    for (int64_t i = 0; i < fp.numel(); ++i) {
        err += std::abs(logits.at(i) - fp.at(i));
        mag += std::abs(fp.at(i));
    }
    ASSERT_GT(mag, 0.0);
    EXPECT_LT(err / mag, 0.05)
        << "mean relative logit error " << err / mag;
}

TEST(GraphRuntime, DigitalScaleFoldTracksFpReference)
{
    // Post-compression folding: BN lands in the digital output stage,
    // the projected weights map unchanged, and the crossbar DAG must
    // track the FP forward of the projected net with its BN layers
    // still live.
    Rng rng(101);
    auto net = nn::buildResNetSmall(rng, 4, 8, 1);
    Rng prng(102);
    for (auto &p : net->params()) {
        if (p.name.find(".gamma") != std::string::npos)
            p.value->fillUniform(prng, 0.6f, 1.4f);
        if (p.name.find(".beta") != std::string::npos)
            p.value->fillUniform(prng, -0.3f, 0.3f);
    }

    auto graph = compile::lowerNetwork(*net);
    graph.inferShapes({3, 32, 32});
    EXPECT_EQ(
        compile::foldBatchNorm(graph, compile::FoldMode::DigitalScale),
        9);
    auto states = sim::snapshotCompress(*net, 8, 8);

    Tensor batch({2, 3, 32, 32});
    batch.fillUniform(prng, 0.0f, 1.0f);
    const Tensor fp = net->forward(batch, false);

    sim::RuntimeConfig rcfg;
    rcfg.mapping.xbarRows = 64;
    rcfg.mapping.xbarCols = 64;
    rcfg.mapping.fragSize = 8;
    rcfg.mapping.inputBits = 16;
    rcfg.engine.adcBits = 0;
    sim::GraphRuntime rt(graph, states, rcfg);
    const Tensor logits = rt.forward(batch);

    ASSERT_EQ(logits.shape(), fp.shape());
    double err = 0.0, mag = 0.0;
    for (int64_t i = 0; i < fp.numel(); ++i) {
        err += std::abs(logits.at(i) - fp.at(i));
        mag += std::abs(fp.at(i));
    }
    ASSERT_GT(mag, 0.0);
    EXPECT_LT(err / mag, 0.05)
        << "mean relative logit error " << err / mag;
}

TEST(GraphRuntime, ResetPresentationStreamsReproducesNoisyRuns)
{
    CompiledResNet c(81);
    ThreadPool pool(4);
    sim::GraphRuntime rt(c.graph, c.states, noisyConfig(&pool));

    Rng rng(82);
    Tensor batch({1, 3, 32, 32});
    batch.fillUniform(rng, 0.0f, 1.0f);

    const Tensor first = rt.forward(batch);
    const Tensor drifted = rt.forward(batch);
    EXPECT_FALSE(first.equals(drifted));
    rt.resetPresentationStreams();
    const Tensor replay = rt.forward(batch);
    EXPECT_TRUE(first.equals(replay));
}

TEST(GraphRuntime, ReportAccumulatesAcrossForwards)
{
    CompiledResNet c(91);
    ThreadPool pool(4);
    sim::GraphRuntime rt(c.graph, c.states, noisyConfig(&pool));

    Rng rng(92);
    Tensor batch({1, 3, 32, 32});
    batch.fillUniform(rng, 0.0f, 1.0f);

    sim::RuntimeReport rep;
    rt.forward(batch, &rep);
    const size_t rows = rep.layers.size();
    const uint64_t pres = rep.presentations;
    rt.forward(batch, &rep);
    EXPECT_EQ(rep.layers.size(), rows);
    EXPECT_EQ(rep.presentations, 2 * pres);
    EXPECT_GT(rep.modelTimeNs(), 0.0);
    EXPECT_GT(rep.modelEnergyPj(), 0.0);
}

TEST(GraphRuntime, AccuracyRunsAndIsBounded)
{
    CompiledResNet c(95);
    ThreadPool pool(4);
    sim::RuntimeConfig rcfg = noisyConfig(&pool);
    sim::GraphRuntime rt(c.graph, c.states, rcfg);

    Rng rng(96);
    Tensor images({3, 3, 32, 32});
    images.fillUniform(rng, 0.0f, 1.0f);
    const double acc = rt.accuracy(images, {0, 1, 2});
    EXPECT_GE(acc, 0.0);
    EXPECT_LE(acc, 1.0);
}

} // namespace
} // namespace forms
