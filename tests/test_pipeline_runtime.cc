/**
 * @file
 * PipelineRuntime tests: the multi-chip pipelined executor must hold
 * the DESIGN.md §5 contract — logits and per-node EngineStats
 * bit-identical across thread counts (1/4/8), micro-batch sizes,
 * chip counts AND stage-replication factors, and bit-identical to
 * the single-graph GraphRuntime — with ADC quantization, device
 * variation and read noise all enabled. The intra-chip tile pipeline
 * is a timing model only: toggling it must change makespans, never
 * numbers.
 */

#include <gtest/gtest.h>

#include "compile/passes.hh"
#include "nn/layers.hh"
#include "nn/zoo.hh"
#include "sim/graph_runtime.hh"
#include "sim/pipeline_runtime.hh"
#include "stats_testutil.hh"

namespace forms {
namespace {

/** Compile + fold + compress a scaled ResNet, ready to program. */
struct CompiledResNet
{
    std::unique_ptr<nn::Network> net;
    compile::Graph graph;
    std::vector<admm::LayerState> states;

    explicit CompiledResNet(uint64_t seed)
    {
        Rng rng(seed);
        net = nn::buildResNetSmall(rng, 4, 8, 1);
        graph = compile::lowerNetwork(*net);
        graph.inferShapes({3, 32, 32});
        EXPECT_GT(compile::foldBatchNorm(graph), 0);
        states = sim::snapshotCompress(*net, 8, 8);
    }
};

/**
 * Compile + compress a stem-dominated straight-line net: the stem
 * conv carries ~3x the ideal per-chip work share, so the partitioner
 * provably cannot balance it with contiguous cuts — the shape that
 * makes the DP choose a replicated stage.
 */
struct CompiledStemHeavy
{
    std::unique_ptr<nn::Network> net;
    compile::Graph graph;
    std::vector<admm::LayerState> states;

    explicit CompiledStemHeavy(uint64_t seed)
    {
        Rng rng(seed);
        net = std::make_unique<nn::Network>();
        net->emplace<nn::Conv2D>("stem", 3, 16, 3, 1, 1, rng);
        net->emplace<nn::ReLU>("stem_relu");
        net->emplace<nn::MaxPool2D>("pool", 2, 2);
        net->emplace<nn::Conv2D>("mid", 16, 4, 3, 1, 1, rng);
        net->emplace<nn::ReLU>("mid_relu");
        net->emplace<nn::Flatten>("flat");
        net->emplace<nn::Dense>("fc", 4 * 16 * 16, 4, rng);
        graph = compile::lowerNetwork(*net);
        graph.inferShapes({3, 32, 32});
        states = sim::snapshotCompress(*net, 8, 8);
    }
};

/** ADC quantization + device variation + read noise all on. */
sim::PipelineRuntimeConfig
noisyConfig(ThreadPool *pool, int micro_batch)
{
    sim::PipelineRuntimeConfig cfg;
    cfg.runtime.mapping.xbarRows = 64;
    cfg.runtime.mapping.xbarCols = 64;
    cfg.runtime.mapping.fragSize = 8;
    cfg.runtime.mapping.inputBits = 8;
    cfg.runtime.engine.adcBits = 3;
    cfg.runtime.engine.cell.variationSigma = 0.1;
    cfg.runtime.engine.readNoiseSigma = 0.02;
    cfg.runtime.pool = pool;
    cfg.microBatch = micro_batch;
    return cfg;
}

compile::Schedule
partitionFor(const compile::Graph &g, int chips,
             double replicate_threshold = 0.0, int max_replicas = 4)
{
    compile::ScheduleConfig scfg;
    scfg.chips = chips;
    scfg.replicateThreshold = replicate_threshold;
    scfg.maxReplicas = max_replicas;
    return compile::Schedule::partition(g, scfg);
}

TEST(PipelineRuntime, OneChipMatchesGraphRuntimeBitwise)
{
    CompiledResNet c(111);
    Rng rng(112);
    Tensor batch({4, 3, 32, 32});
    batch.fillUniform(rng, 0.0f, 1.0f);

    ThreadPool pool(4);
    sim::RuntimeConfig gcfg = noisyConfig(&pool, 1).runtime;
    sim::GraphRuntime gr(c.graph, c.states, gcfg);
    sim::RuntimeReport grep;
    const Tensor ref = gr.forward(batch, &grep);

    // Micro-batched single-chip pipeline: same logits, same per-node
    // rows, bit for bit.
    sim::PipelineRuntime pr(c.graph, partitionFor(c.graph, 1), c.states,
                            noisyConfig(&pool, 2));
    sim::PipelineReport prep;
    const Tensor got = pr.forward(batch, &prep);

    EXPECT_TRUE(got.equals(ref));
    ASSERT_EQ(prep.nodes.layers.size(), grep.layers.size());
    for (size_t i = 0; i < grep.layers.size(); ++i) {
        EXPECT_EQ(prep.nodes.layers[i].name, grep.layers[i].name);
        expectStatsIdentical(prep.nodes.layers[i].stats,
                             grep.layers[i].stats);
    }
    EXPECT_EQ(prep.nodes.presentations, grep.presentations);

    // One chip, no transfers: the pipeline degenerates to serial
    // execution with zero bubbles.
    ASSERT_EQ(prep.chips.size(), 1u);
    EXPECT_EQ(prep.transferNs, 0.0);
    EXPECT_NEAR(prep.bubbleFraction, 0.0, 1e-12);
    EXPECT_NEAR(prep.chips[0].utilization, 1.0, 1e-12);
}

TEST(PipelineRuntime, BitIdenticalAcrossThreadsMicroBatchesAndChips)
{
    CompiledResNet c(121);
    Rng rng(122);
    Tensor batch({4, 3, 32, 32});
    batch.fillUniform(rng, 0.0f, 1.0f);

    // Reference: 2 chips, micro-batch 2, single thread, no replication.
    Tensor ref_logits;
    std::vector<arch::EngineStats> ref_stats;
    auto run = [&](int threads, int chips, int micro_batch,
                   double threshold, sim::PipelineReport *rep) {
        ThreadPool pool(threads);
        sim::PipelineRuntime rt(c.graph,
                                partitionFor(c.graph, chips, threshold),
                                c.states,
                                noisyConfig(&pool, micro_batch));
        return rt.forward(batch, rep);
    };
    {
        sim::PipelineReport rep;
        ref_logits = run(1, 2, 2, 0.0, &rep);
        for (const auto &l : rep.nodes.layers)
            ref_stats.push_back(l.stats);
        ASSERT_EQ(ref_stats.size(), 10u);
    }

    struct Case
    {
        int threads, chips, microBatch;
        double threshold;   //!< > 0 enables stage replication
    };
    const Case cases[] = {
        {4, 2, 2, 0.0}, {8, 2, 2, 0.0},   // thread counts
        {4, 2, 1, 0.0}, {4, 2, 4, 0.0},
        {4, 2, 3, 0.0},                   // micro-batch sizes (3: ragged)
        {4, 1, 2, 0.0}, {4, 4, 2, 0.0},   // chip counts
        {4, 4, 2, 0.6}, {4, 4, 3, 0.6},   // replicated stages
        {1, 3, 2, 0.8}, {8, 4, 1, 0.4},   // replication x threads/mb
    };
    for (const Case &k : cases) {
        sim::PipelineReport rep;
        const Tensor logits =
            run(k.threads, k.chips, k.microBatch, k.threshold, &rep);
        EXPECT_TRUE(logits.equals(ref_logits))
            << "logits diverge at threads=" << k.threads
            << " chips=" << k.chips << " microBatch=" << k.microBatch
            << " threshold=" << k.threshold;
        ASSERT_EQ(rep.nodes.layers.size(), ref_stats.size());
        for (size_t i = 0; i < ref_stats.size(); ++i)
            expectStatsIdentical(rep.nodes.layers[i].stats,
                                 ref_stats[i]);
    }
}

TEST(PipelineRuntime, ReplicatedStagesStayBitIdenticalToGraphRuntime)
{
    CompiledStemHeavy c(161);
    Rng rng(162);
    Tensor batch({5, 3, 32, 32});
    batch.fillUniform(rng, 0.0f, 1.0f);

    ThreadPool pool(4);
    sim::GraphRuntime gr(c.graph, c.states, noisyConfig(&pool, 1).runtime);
    sim::RuntimeReport grep;
    const Tensor ref = gr.forward(batch, &grep);

    // The stem dwarfs the ideal share, so the DP replicates it.
    auto sched = partitionFor(c.graph, 4, 1.0, 3);
    ASSERT_TRUE(sched.replicated());
    sim::PipelineRuntime pr(c.graph, std::move(sched), c.states,
                            noisyConfig(&pool, 2));
    sim::PipelineReport prep;
    const Tensor got = pr.forward(batch, &prep);

    EXPECT_TRUE(got.equals(ref));
    ASSERT_EQ(prep.nodes.layers.size(), grep.layers.size());
    for (size_t i = 0; i < grep.layers.size(); ++i) {
        EXPECT_EQ(prep.nodes.layers[i].name, grep.layers[i].name);
        expectStatsIdentical(prep.nodes.layers[i].stats,
                             grep.layers[i].stats);
    }

    // The report reflects the replicated shape: fewer stages than
    // chips, and every chip of a wide stage shows the same stage id.
    EXPECT_LT(prep.stages, pr.chips());
    ASSERT_EQ(prep.chips.size(), static_cast<size_t>(pr.chips()));
    bool wide_seen = false;
    for (const auto &ch : prep.chips) {
        EXPECT_GE(ch.replicas, 1);
        if (ch.replicas > 1)
            wide_seen = true;
    }
    EXPECT_TRUE(wide_seen);

    // Replica engines advance through reset exactly like one engine:
    // a reset replays the noisy run bit for bit.
    const Tensor drifted = pr.forward(batch);
    EXPECT_FALSE(drifted.equals(ref));
    pr.resetPresentationStreams();
    EXPECT_TRUE(pr.forward(batch).equals(ref));
}

TEST(PipelineRuntime, TilePipelineIsTimingOnlyAndShortensMakespan)
{
    CompiledResNet c(171);
    Rng rng(172);
    Tensor batch({4, 3, 32, 32});
    batch.fillUniform(rng, 0.0f, 1.0f);

    ThreadPool pool(4);
    auto run = [&](bool overlap, sim::PipelineReport *rep) {
        sim::PipelineRuntimeConfig cfg = noisyConfig(&pool, 2);
        cfg.tile.overlap = overlap;
        sim::PipelineRuntime rt(c.graph, partitionFor(c.graph, 2),
                                c.states, cfg);
        return rt.forward(batch, rep);
    };

    sim::PipelineReport serial, overlapped;
    const Tensor a = run(false, &serial);
    const Tensor b = run(true, &overlapped);

    // Timing model only: identical numbers either way.
    EXPECT_TRUE(a.equals(b));

    // Overlap hides quantization behind ADC phases: saved time is
    // positive, the makespan shrinks, and per-chip busy intervals sit
    // between the pure ADC time and the serialized phase sum.
    EXPECT_EQ(serial.overlapSavedNs, 0.0);
    EXPECT_GT(overlapped.overlapSavedNs, 0.0);
    EXPECT_LT(overlapped.makespanNs, serial.makespanNs);
    ASSERT_EQ(serial.chips.size(), overlapped.chips.size());
    for (size_t i = 0; i < overlapped.chips.size(); ++i) {
        const auto &ch = overlapped.chips[i];
        EXPECT_GT(ch.quantNs, 0.0);
        const double tol = 1e-9 * (ch.computeNs + ch.quantNs);
        EXPECT_GE(ch.busyNs, ch.computeNs - tol);
        EXPECT_LE(ch.busyNs, ch.computeNs + ch.quantNs + tol);
        // Serial phases sum exactly (up to accumulation-order jitter).
        const double serial_sum =
            serial.chips[i].computeNs + serial.chips[i].quantNs;
        EXPECT_NEAR(serial.chips[i].busyNs, serial_sum,
                    1e-9 * serial_sum);
    }
}

TEST(PipelineRuntime, ReportModelsAPipelineWithTransfers)
{
    CompiledResNet c(131);
    Rng rng(132);
    Tensor batch({4, 3, 32, 32});
    batch.fillUniform(rng, 0.0f, 1.0f);

    ThreadPool pool(4);
    sim::PipelineRuntime rt(c.graph, partitionFor(c.graph, 2), c.states,
                            noisyConfig(&pool, 1));
    sim::PipelineReport rep;
    rt.forward(batch, &rep);

    EXPECT_EQ(rep.microBatches, 4);
    EXPECT_EQ(rep.images, 4);
    EXPECT_GT(rep.makespanNs, 0.0);
    EXPECT_GT(rep.modeledFps(), 0.0);
    EXPECT_GT(rep.transferNs, 0.0);
    EXPECT_GT(rep.transferPj, 0.0);
    EXPECT_GE(rep.bubbleFraction, 0.0);
    EXPECT_LT(rep.bubbleFraction, 1.0);

    ASSERT_EQ(rep.chips.size(), 2u);
    EXPECT_EQ(rep.stages, 2);
    int64_t crossbars = 0;
    size_t programmed = 0;
    for (const auto &ch : rep.chips) {
        EXPECT_GT(ch.nodes, 0u);
        EXPECT_GT(ch.computeNs, 0.0);
        EXPECT_GT(ch.quantNs, 0.0);
        EXPECT_GE(ch.busyNs, ch.computeNs);
        EXPECT_GT(ch.utilization, 0.0);
        EXPECT_LE(ch.utilization, 1.0);
        crossbars += ch.crossbars;
        programmed += ch.programmedNodes;
    }
    EXPECT_EQ(crossbars, rt.totalCrossbars());
    EXPECT_EQ(programmed, 10u);
    // Chip 1 waits on the inbound link; chip 0 has no inbound edges.
    EXPECT_EQ(rep.chips[0].transferInNs, 0.0);
    EXPECT_GT(rep.chips[1].transferInNs, 0.0);

    // The makespan can never beat the busiest chip, and pipelining
    // must beat running the chips back to back.
    double max_busy = 0.0, total_busy = 0.0;
    for (const auto &ch : rep.chips) {
        max_busy = std::max(max_busy, ch.busyNs);
        total_busy += ch.busyNs;
    }
    EXPECT_GE(rep.makespanNs, max_busy);
    EXPECT_LT(rep.makespanNs, total_busy + rep.transferNs);
}

TEST(PipelineRuntime, HeterogeneousSpecsMoveTimeButNeverNumbers)
{
    // A 2x inbound link on chip 1 halves every modeled transfer (all
    // cut traffic lands on chip 1 in a 2-chip pipeline), and a faster
    // chip 0 shrinks its busy time — while logits and per-node stats
    // stay bitwise identical to the homogeneous fleet: ChipSpecs are
    // a timing/partitioning model, never a numerics knob.
    CompiledResNet c(141);
    Rng rng(142);
    Tensor batch({4, 3, 32, 32});
    batch.fillUniform(rng, 0.0f, 1.0f);

    ThreadPool pool(4);
    compile::ScheduleConfig scfg;
    scfg.chips = 2;
    sim::PipelineRuntime base(c.graph,
                              compile::Schedule::partition(c.graph, scfg),
                              c.states, noisyConfig(&pool, 1));
    sim::PipelineReport brep;
    const Tensor ref = base.forward(batch, &brep);

    // Fast link: uniform 2x inbound bandwidth scales transfers by
    // exactly 1/2 and cut costs uniformly, so the partition (and the
    // numbers) cannot move.
    compile::ScheduleConfig link = scfg;
    link.chipSpecs.resize(2);
    link.chipSpecs[0].linkIn = 2.0;
    link.chipSpecs[1].linkIn = 2.0;
    sim::PipelineRuntime fast(c.graph,
                              compile::Schedule::partition(c.graph, link),
                              c.states, noisyConfig(&pool, 1));
    sim::PipelineReport frep;
    const Tensor fast_logits = fast.forward(batch, &frep);

    EXPECT_TRUE(fast_logits.equals(ref))
        << "link bandwidth leaked into the numerics";
    ASSERT_EQ(frep.nodes.layers.size(), brep.nodes.layers.size());
    for (size_t i = 0; i < brep.nodes.layers.size(); ++i)
        expectStatsIdentical(frep.nodes.layers[i].stats,
                             brep.nodes.layers[i].stats);
    EXPECT_GT(brep.transferNs, 0.0);
    EXPECT_DOUBLE_EQ(frep.transferNs, brep.transferNs / 2.0);
    EXPECT_DOUBLE_EQ(frep.transferPj, brep.transferPj)
        << "bandwidth must not change transfer energy";

    // Fast chip 0: the partition may shift toward it, but the logits
    // still match the homogeneous fleet bitwise.
    compile::ScheduleConfig cap = scfg;
    cap.chipSpecs.resize(2);
    cap.chipSpecs[0].capacity = 2.0;
    auto csched = compile::Schedule::partition(c.graph, cap);
    const double work0 = csched.chipWork(0);
    EXPECT_GT(work0, csched.chipWork(1))
        << "the 2x chip should carry more raw work";
    sim::PipelineRuntime hetero(c.graph, std::move(csched), c.states,
                                noisyConfig(&pool, 1));
    sim::PipelineReport hrep;
    EXPECT_TRUE(hetero.forward(batch, &hrep).equals(ref));
}

TEST(PipelineRuntime, ResetPresentationStreamsReproducesNoisyRuns)
{
    CompiledResNet c(141);
    Rng rng(142);
    Tensor batch({2, 3, 32, 32});
    batch.fillUniform(rng, 0.0f, 1.0f);

    ThreadPool pool(4);
    sim::PipelineRuntime rt(c.graph, partitionFor(c.graph, 2), c.states,
                            noisyConfig(&pool, 1));
    const Tensor first = rt.forward(batch);
    const Tensor drifted = rt.forward(batch);
    EXPECT_FALSE(first.equals(drifted));
    rt.resetPresentationStreams();
    const Tensor replay = rt.forward(batch);
    EXPECT_TRUE(first.equals(replay));
}

TEST(PipelineRuntime, AccuracyRunsAndIsBounded)
{
    CompiledResNet c(151);
    ThreadPool pool(4);
    sim::PipelineRuntime rt(c.graph, partitionFor(c.graph, 2), c.states,
                            noisyConfig(&pool, 2));
    Rng rng(152);
    Tensor images({3, 3, 32, 32});
    images.fillUniform(rng, 0.0f, 1.0f);
    const double acc = rt.accuracy(images, {0, 1, 2});
    EXPECT_GE(acc, 0.0);
    EXPECT_LE(acc, 1.0);
}

} // namespace
} // namespace forms
