/**
 * @file
 * PipelineRuntime tests: the multi-chip pipelined executor must hold
 * the DESIGN.md §5 contract — logits and per-node EngineStats
 * bit-identical across thread counts (1/4/8), micro-batch sizes and
 * chip counts, and bit-identical to the single-graph GraphRuntime —
 * with ADC quantization, device variation and read noise all enabled.
 */

#include <gtest/gtest.h>

#include "compile/passes.hh"
#include "nn/zoo.hh"
#include "sim/graph_runtime.hh"
#include "sim/pipeline_runtime.hh"
#include "stats_testutil.hh"

namespace forms {
namespace {

/** Compile + fold + compress a scaled ResNet, ready to program. */
struct CompiledResNet
{
    std::unique_ptr<nn::Network> net;
    compile::Graph graph;
    std::vector<admm::LayerState> states;

    explicit CompiledResNet(uint64_t seed)
    {
        Rng rng(seed);
        net = nn::buildResNetSmall(rng, 4, 8, 1);
        graph = compile::lowerNetwork(*net);
        graph.inferShapes({3, 32, 32});
        EXPECT_GT(compile::foldBatchNorm(graph), 0);
        states = sim::snapshotCompress(*net, 8, 8);
    }
};

/** ADC quantization + device variation + read noise all on. */
sim::PipelineRuntimeConfig
noisyConfig(ThreadPool *pool, int micro_batch)
{
    sim::PipelineRuntimeConfig cfg;
    cfg.runtime.mapping.xbarRows = 64;
    cfg.runtime.mapping.xbarCols = 64;
    cfg.runtime.mapping.fragSize = 8;
    cfg.runtime.mapping.inputBits = 8;
    cfg.runtime.engine.adcBits = 3;
    cfg.runtime.engine.cell.variationSigma = 0.1;
    cfg.runtime.engine.readNoiseSigma = 0.02;
    cfg.runtime.pool = pool;
    cfg.microBatch = micro_batch;
    return cfg;
}

compile::Schedule
partitionFor(const compile::Graph &g, int chips)
{
    compile::ScheduleConfig scfg;
    scfg.chips = chips;
    return compile::Schedule::partition(g, scfg);
}

TEST(PipelineRuntime, OneChipMatchesGraphRuntimeBitwise)
{
    CompiledResNet c(111);
    Rng rng(112);
    Tensor batch({4, 3, 32, 32});
    batch.fillUniform(rng, 0.0f, 1.0f);

    ThreadPool pool(4);
    sim::RuntimeConfig gcfg = noisyConfig(&pool, 1).runtime;
    sim::GraphRuntime gr(c.graph, c.states, gcfg);
    sim::RuntimeReport grep;
    const Tensor ref = gr.forward(batch, &grep);

    // Micro-batched single-chip pipeline: same logits, same per-node
    // rows, bit for bit.
    sim::PipelineRuntime pr(c.graph, partitionFor(c.graph, 1), c.states,
                            noisyConfig(&pool, 2));
    sim::PipelineReport prep;
    const Tensor got = pr.forward(batch, &prep);

    EXPECT_TRUE(got.equals(ref));
    ASSERT_EQ(prep.nodes.layers.size(), grep.layers.size());
    for (size_t i = 0; i < grep.layers.size(); ++i) {
        EXPECT_EQ(prep.nodes.layers[i].name, grep.layers[i].name);
        expectStatsIdentical(prep.nodes.layers[i].stats,
                             grep.layers[i].stats);
    }
    EXPECT_EQ(prep.nodes.presentations, grep.presentations);

    // One chip, no transfers: the pipeline degenerates to serial
    // execution with zero bubbles.
    ASSERT_EQ(prep.chips.size(), 1u);
    EXPECT_EQ(prep.transferNs, 0.0);
    EXPECT_NEAR(prep.bubbleFraction, 0.0, 1e-12);
    EXPECT_NEAR(prep.chips[0].utilization, 1.0, 1e-12);
}

TEST(PipelineRuntime, BitIdenticalAcrossThreadsMicroBatchesAndChips)
{
    CompiledResNet c(121);
    Rng rng(122);
    Tensor batch({4, 3, 32, 32});
    batch.fillUniform(rng, 0.0f, 1.0f);

    // Reference: 2 chips, micro-batch 2, single thread.
    Tensor ref_logits;
    std::vector<arch::EngineStats> ref_stats;
    auto run = [&](int threads, int chips, int micro_batch,
                   sim::PipelineReport *rep) {
        ThreadPool pool(threads);
        sim::PipelineRuntime rt(c.graph, partitionFor(c.graph, chips),
                                c.states,
                                noisyConfig(&pool, micro_batch));
        return rt.forward(batch, rep);
    };
    {
        sim::PipelineReport rep;
        ref_logits = run(1, 2, 2, &rep);
        for (const auto &l : rep.nodes.layers)
            ref_stats.push_back(l.stats);
        ASSERT_EQ(ref_stats.size(), 10u);
    }

    struct Case
    {
        int threads, chips, microBatch;
    };
    const Case cases[] = {
        {4, 2, 2}, {8, 2, 2},            // thread counts
        {4, 2, 1}, {4, 2, 4}, {4, 2, 3}, // micro-batch sizes (3: ragged)
        {4, 1, 2}, {4, 4, 2},            // chip counts
    };
    for (const Case &k : cases) {
        sim::PipelineReport rep;
        const Tensor logits = run(k.threads, k.chips, k.microBatch, &rep);
        EXPECT_TRUE(logits.equals(ref_logits))
            << "logits diverge at threads=" << k.threads
            << " chips=" << k.chips << " microBatch=" << k.microBatch;
        ASSERT_EQ(rep.nodes.layers.size(), ref_stats.size());
        for (size_t i = 0; i < ref_stats.size(); ++i)
            expectStatsIdentical(rep.nodes.layers[i].stats,
                                 ref_stats[i]);
    }
}

TEST(PipelineRuntime, ReportModelsAPipelineWithTransfers)
{
    CompiledResNet c(131);
    Rng rng(132);
    Tensor batch({4, 3, 32, 32});
    batch.fillUniform(rng, 0.0f, 1.0f);

    ThreadPool pool(4);
    sim::PipelineRuntime rt(c.graph, partitionFor(c.graph, 2), c.states,
                            noisyConfig(&pool, 1));
    sim::PipelineReport rep;
    rt.forward(batch, &rep);

    EXPECT_EQ(rep.microBatches, 4);
    EXPECT_EQ(rep.images, 4);
    EXPECT_GT(rep.makespanNs, 0.0);
    EXPECT_GT(rep.modeledFps(), 0.0);
    EXPECT_GT(rep.transferNs, 0.0);
    EXPECT_GT(rep.transferPj, 0.0);
    EXPECT_GE(rep.bubbleFraction, 0.0);
    EXPECT_LT(rep.bubbleFraction, 1.0);

    ASSERT_EQ(rep.chips.size(), 2u);
    int64_t crossbars = 0;
    size_t programmed = 0;
    for (const auto &ch : rep.chips) {
        EXPECT_GT(ch.nodes, 0u);
        EXPECT_GT(ch.computeNs, 0.0);
        EXPECT_GT(ch.utilization, 0.0);
        EXPECT_LE(ch.utilization, 1.0);
        crossbars += ch.crossbars;
        programmed += ch.programmedNodes;
    }
    EXPECT_EQ(crossbars, rt.totalCrossbars());
    EXPECT_EQ(programmed, 10u);
    // Chip 1 waits on the inbound link; chip 0 has no inbound edges.
    EXPECT_EQ(rep.chips[0].transferInNs, 0.0);
    EXPECT_GT(rep.chips[1].transferInNs, 0.0);

    // The makespan can never beat the busiest chip, and pipelining
    // must beat running the chips back to back.
    double max_busy = 0.0, total_busy = 0.0;
    for (const auto &ch : rep.chips) {
        max_busy = std::max(max_busy, ch.computeNs);
        total_busy += ch.computeNs;
    }
    EXPECT_GE(rep.makespanNs, max_busy);
    EXPECT_LT(rep.makespanNs, total_busy + rep.transferNs);
}

TEST(PipelineRuntime, ResetPresentationStreamsReproducesNoisyRuns)
{
    CompiledResNet c(141);
    Rng rng(142);
    Tensor batch({2, 3, 32, 32});
    batch.fillUniform(rng, 0.0f, 1.0f);

    ThreadPool pool(4);
    sim::PipelineRuntime rt(c.graph, partitionFor(c.graph, 2), c.states,
                            noisyConfig(&pool, 1));
    const Tensor first = rt.forward(batch);
    const Tensor drifted = rt.forward(batch);
    EXPECT_FALSE(first.equals(drifted));
    rt.resetPresentationStreams();
    const Tensor replay = rt.forward(batch);
    EXPECT_TRUE(first.equals(replay));
}

TEST(PipelineRuntime, AccuracyRunsAndIsBounded)
{
    CompiledResNet c(151);
    ThreadPool pool(4);
    sim::PipelineRuntime rt(c.graph, partitionFor(c.graph, 2), c.states,
                            noisyConfig(&pool, 2));
    Rng rng(152);
    Tensor images({3, 3, 32, 32});
    images.fillUniform(rng, 0.0f, 1.0f);
    const double acc = rt.accuracy(images, {0, 1, 2});
    EXPECT_GE(acc, 0.0);
    EXPECT_LE(acc, 1.0);
}

} // namespace
} // namespace forms
