/**
 * @file
 * Observability subsystem tests (docs/OBSERVABILITY.md): JsonWriter
 * structural/escaping guarantees, trace well-formedness against the
 * pipeline timing model (per-track slices monotone and non-overlapping,
 * per-chip busy totals equal to ChipReport::busyNs), MetricsRegistry
 * snapshot determinism across thread counts, and RunManifest
 * resolution + serialization. The observer *invariant* (tracing
 * changes no bits) is enforced by the trace-on axis in
 * test_cross_runtime_fuzz.cc; this file pins what the observers
 * report.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "compile/passes.hh"
#include "compile/schedule.hh"
#include "nn/layers.hh"
#include "obs/metrics.hh"
#include "obs/run_manifest.hh"
#include "obs/trace.hh"
#include "sim/graph_runtime.hh"
#include "sim/obs_glue.hh"
#include "sim/pipeline_runtime.hh"

namespace forms {
namespace {

// ---- JsonWriter ------------------------------------------------------

TEST(JsonWriter, EscapesStringsAndRoundTripsFloats)
{
    obs::JsonWriter w(/*pretty=*/false);
    w.beginObject();
    w.field("quote\"back\\slash", std::string("tab\there"));
    w.field("pi", 3.14159265358979);
    w.field("neg", -1);
    w.field("big", uint64_t(1) << 53);
    w.key("nonfinite").value(0.0 / 0.0);
    w.endObject();
    EXPECT_TRUE(w.complete());
    const std::string &s = w.str();
    EXPECT_NE(s.find("\"quote\\\"back\\\\slash\""), std::string::npos);
    EXPECT_NE(s.find("tab\\there"), std::string::npos);
    EXPECT_NE(s.find("3.14159265"), std::string::npos);
    EXPECT_NE(s.find("\"nonfinite\":null"), std::string::npos);
}

TEST(JsonWriter, NestedContainersStayStructurallyValid)
{
    obs::JsonWriter w(/*pretty=*/false);
    w.beginObject();
    w.key("rows");
    w.beginArray();
    for (int i = 0; i < 3; ++i) {
        w.beginObject();
        w.field("i", i);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    EXPECT_TRUE(w.complete());
    EXPECT_EQ(w.str(),
              "{\"rows\":[{\"i\":0},{\"i\":1},{\"i\":2}]}");
}

// ---- trace model vs. pipeline report ---------------------------------

struct TracedRun
{
    sim::PipelineReport rep;
    std::vector<obs::TraceEvent> events;
};

/** Small two-conv net through PipelineRuntime with a trace session. */
TracedRun
tracedPipelineRun(int chips, bool overlap)
{
    Rng rng(71);
    nn::Network net;
    net.emplace<nn::Conv2D>("c0", 3, 8, 3, 1, 1, rng);
    net.emplace<nn::ReLU>("r0");
    net.emplace<nn::Conv2D>("c1", 8, 8, 3, 1, 1, rng);
    net.emplace<nn::ReLU>("r1");
    net.emplace<nn::Flatten>("flat");
    net.emplace<nn::Dense>("fc", 8 * 10 * 10, 4, rng);

    auto graph = compile::lowerNetwork(net);
    graph.inferShapes({3, 10, 10});
    auto states = sim::snapshotCompress(net, 8, 8);

    compile::ScheduleConfig scfg;
    scfg.chips = chips;
    auto sched = compile::Schedule::partition(graph, scfg);

    sim::PipelineRuntimeConfig pcfg;
    pcfg.runtime.mapping.fragSize = 8;
    pcfg.runtime.mapping.inputBits = 8;
    pcfg.runtime.engine.adcBits = 4;
    pcfg.microBatch = 2;
    pcfg.tile.overlap = overlap;

    obs::TraceSession session;
    pcfg.trace = &session;

    sim::PipelineRuntime rt(graph, std::move(sched), states, pcfg);
    Tensor batch({4, 3, 10, 10});
    batch.fillUniform(rng, 0.0f, 1.0f);

    TracedRun out;
    rt.forward(batch, &out.rep);
    out.events = session.events();
    return out;
}

TEST(Trace, PerTrackSlicesAreMonotoneAndNonOverlapping)
{
    for (bool overlap : {false, true}) {
        SCOPED_TRACE(overlap ? "overlap" : "serial");
        const TracedRun run = tracedPipelineRun(2, overlap);
        ASSERT_FALSE(run.events.empty());

        // Group complete slices by (pid, tid); within a track they
        // must be emitted in start order and never overlap.
        std::map<std::pair<int, int>, std::vector<const obs::TraceEvent *>>
            tracks;
        for (const obs::TraceEvent &e : run.events) {
            if (e.type == obs::TraceEvent::Type::Complete)
                tracks[{e.pid, e.tid}].push_back(&e);
        }
        ASSERT_FALSE(tracks.empty());
        for (auto &[key, slices] : tracks) {
            std::vector<const obs::TraceEvent *> sorted = slices;
            std::stable_sort(sorted.begin(), sorted.end(),
                             [](const obs::TraceEvent *a,
                                const obs::TraceEvent *b) {
                                 return a->tsUs < b->tsUs;
                             });
            for (size_t i = 0; i < sorted.size(); ++i) {
                EXPECT_GE(sorted[i]->durUs, 0.0);
                if (i == 0)
                    continue;
                // Tolerate only summation rounding between adjacent
                // slices of one track.
                const double prev_end =
                    sorted[i - 1]->tsUs + sorted[i - 1]->durUs;
                EXPECT_GE(sorted[i]->tsUs, prev_end - 1e-6)
                    << "track (" << key.first << ", " << key.second
                    << ") slice " << sorted[i]->name << " overlaps "
                    << sorted[i - 1]->name;
            }
        }
    }
}

TEST(Trace, PerChipBusyTotalsMatchChipReport)
{
    for (bool overlap : {false, true}) {
        SCOPED_TRACE(overlap ? "overlap" : "serial");
        const TracedRun run = tracedPipelineRun(2, overlap);

        std::vector<double> busy_us(run.rep.chips.size(), 0.0);
        for (const obs::TraceEvent &e : run.events) {
            if (e.type != obs::TraceEvent::Type::Complete ||
                e.cat != "stage")
                continue;
            // Modeled chip timelines use pid = chip + 1 (pid 0 is the
            // wall-clock host process).
            ASSERT_GE(e.pid, 1);
            ASSERT_LE(static_cast<size_t>(e.pid), busy_us.size());
            busy_us[static_cast<size_t>(e.pid - 1)] += e.durUs;
        }
        for (size_t c = 0; c < run.rep.chips.size(); ++c) {
            const double want = run.rep.chips[c].busyNs / 1e3;
            EXPECT_NEAR(busy_us[c], want,
                        1e-6 * std::max(1.0, want))
                << "chip " << c;
        }
    }
}

TEST(Trace, FlowArrowsPairUpAndTraceSerializes)
{
    const TracedRun run = tracedPipelineRun(2, true);
    size_t starts = 0, ends = 0;
    for (const obs::TraceEvent &e : run.events) {
        starts += e.type == obs::TraceEvent::Type::FlowStart;
        ends += e.type == obs::TraceEvent::Type::FlowEnd;
    }
    EXPECT_EQ(starts, ends);
    EXPECT_GT(starts, 0u);   // 2 chips => at least one transfer

    obs::TraceSession session;
    session.slice(1, 1, "s", "stage", 0.0, 1.0);
    obs::JsonWriter w(/*pretty=*/false);
    session.writeJson(w);
    EXPECT_TRUE(w.complete());
    EXPECT_NE(w.str().find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(w.str().find("\"ph\":\"X\""), std::string::npos);
}

TEST(Trace, HostSpansRecordOnlyWhenInstalled)
{
    EXPECT_FALSE(obs::traceEnabled());
    {
        FORMS_TRACE_SCOPE("uninstalled span");
    }

    obs::TraceSession session;
    session.install();
    EXPECT_TRUE(obs::traceEnabled());
    {
        FORMS_TRACE_SCOPE("host work");
    }
    session.uninstall();
    EXPECT_FALSE(obs::traceEnabled());

    bool found = false;
    for (const obs::TraceEvent &e : session.events())
        found = found ||
            (e.pid == obs::TraceSession::kHostPid &&
             e.name == "host work");
    EXPECT_TRUE(found);
}

// ---- metrics ---------------------------------------------------------

/** metrics.json bytes for one GraphRuntime forward on `threads`. */
std::string
metricsJsonAtThreads(int threads)
{
    Rng rng(72);
    nn::Network net;
    net.emplace<nn::Conv2D>("c0", 3, 8, 3, 1, 1, rng);
    net.emplace<nn::ReLU>("r0");
    net.emplace<nn::Flatten>("flat");
    net.emplace<nn::Dense>("fc", 8 * 8 * 8, 4, rng);

    auto graph = compile::lowerNetwork(net);
    graph.inferShapes({3, 8, 8});
    auto states = sim::snapshotCompress(net, 8, 8);

    ThreadPool pool(threads);
    sim::RuntimeConfig rcfg;
    rcfg.mapping.fragSize = 8;
    rcfg.mapping.inputBits = 8;
    rcfg.engine.adcBits = 4;
    rcfg.pool = &pool;
    obs::MetricsRegistry metrics;
    rcfg.metrics = &metrics;

    sim::GraphRuntime rt(graph, states, rcfg);
    Tensor batch({2, 3, 8, 8});
    batch.fillUniform(rng, 0.0f, 1.0f);
    rt.forward(batch);

    // The wall-clock gauge is the one legitimately nondeterministic
    // metric; pin it before comparing bytes.
    metrics.gaugeSet("host.wall_ms", 0.0);

    obs::JsonWriter w(/*pretty=*/true);
    metrics.writeJson(w);
    return w.str();
}

TEST(Metrics, SnapshotIsByteIdenticalAcrossThreadCounts)
{
    const std::string one = metricsJsonAtThreads(1);
    const std::string four = metricsJsonAtThreads(4);
    EXPECT_FALSE(one.empty());
    EXPECT_EQ(one, four);
    // Spot-check the unified namespace.
    EXPECT_NE(one.find("engine.presentations"), std::string::npos);
    EXPECT_NE(one.find("model.time_ns"), std::string::npos);
}

TEST(Metrics, RegistrySemantics)
{
    obs::MetricsRegistry m;
    m.counterAdd("a.count", 2);
    m.counterAdd("a.count", 3);
    m.gaugeSet("a.gauge", 1.5);
    m.gaugeSet("a.gauge", 2.5);   // last write wins
    m.histObserve("a.hist", 1.0);
    m.histObserve("a.hist", -4.0);
    m.histObserve("a.hist", 2.0);

    const auto snap = m.snapshot();
    ASSERT_EQ(snap.counters.size(), 1u);
    EXPECT_EQ(snap.counters[0].second, 5u);
    ASSERT_EQ(snap.gauges.size(), 1u);
    EXPECT_EQ(snap.gauges[0].second, 2.5);
    ASSERT_EQ(snap.histograms.size(), 1u);
    EXPECT_EQ(snap.histograms[0].second.count, 3u);
    EXPECT_EQ(snap.histograms[0].second.min, -4.0);
    EXPECT_EQ(snap.histograms[0].second.max, 2.0);
    EXPECT_EQ(snap.histograms[0].second.sum, -1.0);
}

TEST(Metrics, PipelineReportFeedsChipAndPipelineNames)
{
    const TracedRun run = tracedPipelineRun(2, true);
    obs::MetricsRegistry m;
    sim::recordPipelineMetrics(m, run.rep);
    obs::JsonWriter w(/*pretty=*/false);
    m.writeJson(w);
    const std::string &s = w.str();
    EXPECT_NE(s.find("pipeline.makespan_ns"), std::string::npos);
    EXPECT_NE(s.find("pipeline.images"), std::string::npos);
    EXPECT_NE(s.find("chip.busy_ns"), std::string::npos);
}

// ---- run manifest ----------------------------------------------------

TEST(RunManifest, EnvOverrideAndSerializedShape)
{
    setenv("FORMS_GIT_SHA", "cafef00d", 1);
    obs::RunManifest m = obs::RunManifest::collect("unit_test");
    unsetenv("FORMS_GIT_SHA");
    EXPECT_EQ(m.gitSha, "cafef00d");
    EXPECT_EQ(m.bench, "unit_test");
    EXPECT_GT(m.threads, 0);

    m.set("seed", 41).set("ratio", 0.25).set("tag", "x");
    ASSERT_EQ(m.config.size(), 3u);
    EXPECT_EQ(m.config[0].second, "41");
    EXPECT_EQ(m.config[1].second, "0.25");

    obs::JsonWriter w(/*pretty=*/false);
    w.beginObject();
    obs::writeBenchHeader(w, m);
    w.endObject();
    EXPECT_TRUE(w.complete());
    const std::string &s = w.str();
    EXPECT_NE(s.find("\"schema_version\":1"), std::string::npos);
    EXPECT_NE(s.find("\"manifest\":{\"bench\":\"unit_test\""),
              std::string::npos);
    EXPECT_NE(s.find("\"git_sha\":\"cafef00d\""), std::string::npos);
    EXPECT_NE(s.find("\"config\":{\"seed\":\"41\""), std::string::npos);
}

TEST(RunManifest, GitShaTracksTheBuiltCommitNotConfigureTime)
{
    // Regression: the sha used to be captured when CMake configured,
    // so artifacts of every later build were attributed to whatever
    // commit happened to be checked out at configure time. The header
    // is now stamped on every build; without the env override the
    // manifest must name the repository's current HEAD.
    unsetenv("FORMS_GIT_SHA");
    obs::RunManifest m = obs::RunManifest::collect("unit_test");
    ASSERT_FALSE(m.gitSha.empty());
    if (m.gitSha == "unknown")
        GTEST_SKIP() << "built outside a git checkout";

    FILE *p = popen("git -C \"" FORMS_SOURCE_DIR
                    "\" rev-parse --short HEAD 2>/dev/null",
                    "r");
    ASSERT_NE(p, nullptr);
    char live[64] = {0};
    const bool read_ok = fgets(live, sizeof(live), p) != nullptr;
    const int status = pclose(p);
    if (!read_ok || status != 0)
        GTEST_SKIP() << "git not runnable against " FORMS_SOURCE_DIR;
    std::string head(live);
    while (!head.empty() && (head.back() == '\n' || head.back() == '\r'))
        head.pop_back();
    ASSERT_FALSE(head.empty());
    EXPECT_EQ(m.gitSha, head)
        << "manifest sha is stale — the build did not restamp it";
}

} // namespace
} // namespace forms
