/**
 * @file
 * End-to-end integration: train a small network, compress it with the
 * full ADMM pipeline, map every conv/dense layer onto crossbars, and
 * run the first conv layer functionally through the analog engine,
 * checking outputs against the software computation on the same
 * quantized operands.
 */

#include <gtest/gtest.h>

#include "arch/engine.hh"
#include "sim/experiments.hh"
#include "tensor/ops.hh"

namespace forms {
namespace {

TEST(EndToEnd, CompressMapExecute)
{
    // 1. Data + pretrained model.
    nn::DatasetConfig dcfg;
    dcfg.classes = 4;
    dcfg.channels = 1;
    dcfg.height = 12;
    dcfg.width = 12;
    dcfg.trainPerClass = 32;
    dcfg.testPerClass = 16;
    dcfg.noise = 0.35f;
    dcfg.seed = 404;
    nn::SyntheticImageDataset data(dcfg);

    Rng rng(41);
    auto net = nn::buildTinyConvNet(rng, dcfg.classes, 8, 1, 12);
    nn::TrainConfig tc;
    tc.epochs = 6;
    tc.batchSize = 16;
    nn::Trainer trainer(*net, data, tc);
    trainer.run();

    // 2. Compress (prune + polarize + quantize).
    admm::AdmmConfig acfg;
    acfg.fragSize = 4;
    acfg.xbarDim = 8;
    acfg.filterKeep = 0.75;
    acfg.shapeKeep = 0.9;
    acfg.admmEpochsPerPhase = 2;
    acfg.finetuneEpochs = 2;
    acfg.train.batchSize = 16;
    admm::AdmmCompressor comp(*net, data, acfg);
    auto outcome = comp.run();
    ASSERT_EQ(outcome.signViolations, 0);

    // 3. Map every compressed layer; counts must be positive & finite.
    arch::MappingConfig mcfg;
    mcfg.xbarRows = 16;
    mcfg.xbarCols = 16;
    mcfg.fragSize = 4;
    mcfg.weightBits = 8;
    mcfg.inputBits = 12;
    int64_t total_xbars = 0;
    for (auto &st : comp.layers()) {
        arch::MappedLayer mapped = arch::mapLayer(st, mcfg);
        EXPECT_GT(mapped.numCrossbars(), 0);
        total_xbars += mapped.numCrossbars();
    }
    EXPECT_GT(total_xbars, 2);

    // 4. Execute the first conv layer through the analog engine on a
    //    batch of patches from a real test image and compare with
    //    software integer math.
    auto &first = comp.layers().front();
    arch::MappedLayer mapped = arch::mapLayer(first, mcfg);
    arch::EngineConfig ecfg;
    ecfg.adcBits = 0;   // lossless: must match exactly
    arch::CrossbarEngine engine(mapped, ecfg);

    // 3x3 patches from a test image, quantized (natural row index
    // space of the conv: c*k*k + dy*k + dx). The last patch's inputs
    // and scale feed the dequantization check below.
    const Tensor &img = data.test().images;
    std::vector<std::vector<uint32_t>> batch;
    float in_scale = 0.0f;
    for (int oy = 0; oy < 4; ++oy) {
        std::vector<float> patch;
        for (int c = 0; c < 1; ++c)
            for (int dy = 0; dy < 3; ++dy)
                for (int dx = 0; dx < 3; ++dx) {
                    const float v = img.at(0, c, oy + dy, 4 + dx);
                    patch.push_back(v > 0.0f ? v : 0.0f);
                }
        batch.push_back(arch::quantizeActivations(patch, mcfg.inputBits,
                                                  &in_scale));
    }
    const auto &q = batch.back();

    arch::EngineStats stats;
    auto analog_batch = engine.mvmBatch(batch, &stats);
    ASSERT_EQ(analog_batch.size(), batch.size());
    for (size_t b = 0; b < batch.size(); ++b) {
        auto reference = arch::referenceMvm(mapped, batch[b]);
        ASSERT_EQ(analog_batch[b].size(), reference.size());
        for (size_t i = 0; i < analog_batch[b].size(); ++i)
            EXPECT_DOUBLE_EQ(analog_batch[b][i],
                             static_cast<double>(reference[i]));
    }
    EXPECT_GT(stats.adcSamples, 0u);
    EXPECT_EQ(stats.presentations, batch.size());
    const auto &analog = analog_batch.back();

    // 5. Dequantized outputs track the float conv of the quantized
    //    operands within grid resolution.
    auto real = arch::dequantizeOutputs(analog, mapped.scale, in_scale);
    const admm::WeightView v = first.view();
    for (int64_t j = 0; j < v.cols(); ++j) {
        double expect = 0.0;
        for (int64_t r = 0; r < v.rows(); ++r) {
            const float w = v.get(r, j);
            const double qin = static_cast<double>(
                q[static_cast<size_t>(r)]) * in_scale;
            expect += static_cast<double>(w) * qin;
        }
        if (static_cast<size_t>(j) < real.size()) {
            EXPECT_NEAR(real[static_cast<size_t>(j)], expect,
                        0.05 * std::max(1.0, std::fabs(expect)) +
                        static_cast<double>(mapped.scale));
        }
    }
}

TEST(EndToEnd, ExperimentDriverSmoke)
{
    sim::CompressionExperimentSpec spec;
    spec.label = "smoke";
    spec.net = sim::NetKind::LeNet5;
    spec.data = nn::DatasetConfig::mnistLike(55);
    spec.data.trainPerClass = 12;
    spec.data.testPerClass = 4;
    spec.fragSizes = {4};
    spec.pretrainEpochs = 2;
    spec.admmEpochsPerPhase = 1;
    spec.finetuneEpochs = 1;
    spec.filterKeep = 0.8;
    spec.shapeKeep = 0.8;
    spec.xbarDim = 8;

    auto rows = sim::runCompressionExperiment(spec);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].signViolations, 0);
    EXPECT_GT(rows[0].crossbarReduction, 1.0);
    EXPECT_GT(rows[0].pruneRatio, 1.0);
}

} // namespace
} // namespace forms
