/**
 * @file
 * Tests for model serialization: exact round trips (hex-float values),
 * compressed models keeping their invariants through save/load, and
 * mismatch rejection.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "nn/serialize.hh"
#include "nn/zoo.hh"

namespace forms::nn {
namespace {

TEST(Serialize, RoundTripIsExact)
{
    Rng rng(1);
    auto net = buildTinyConvNet(rng, 4, 6, 1, 12);
    std::ostringstream os;
    saveParameters(*net, os);

    Rng rng2(999);   // different init: values must be overwritten
    auto net2 = buildTinyConvNet(rng2, 4, 6, 1, 12);
    std::istringstream is(os.str());
    loadParameters(*net2, is);

    auto pa = net->params();
    auto pb = net2->params();
    ASSERT_EQ(pa.size(), pb.size());
    for (size_t i = 0; i < pa.size(); ++i)
        EXPECT_TRUE(pa[i].value->equals(*pb[i].value))
            << pa[i].name;
}

TEST(Serialize, PreservesExactZerosAndSigns)
{
    Rng rng(2);
    auto net = buildTinyConvNet(rng, 4, 6, 1, 12);
    // Sparsify + quantize a weight tensor by hand.
    auto params = net->params();
    Tensor &w = *params[0].value;
    for (int64_t i = 0; i < w.numel(); i += 2)
        w.at(i) = 0.0f;

    std::ostringstream os;
    saveParameters(*net, os);
    Rng rng2(3);
    auto net2 = buildTinyConvNet(rng2, 4, 6, 1, 12);
    std::istringstream is(os.str());
    loadParameters(*net2, is);

    const Tensor &w2 = *net2->params()[0].value;
    EXPECT_EQ(w2.countZeros(), w.countZeros());
    for (int64_t i = 0; i < w.numel(); ++i)
        EXPECT_FLOAT_EQ(w2.at(i), w.at(i));
}

TEST(Serialize, ForwardIdenticalAfterRoundTrip)
{
    Rng rng(4);
    auto net = buildTinyConvNet(rng, 4, 6, 1, 12);
    Tensor x({2, 1, 12, 12});
    x.fillGaussian(rng, 0.0f, 1.0f);
    Tensor before = net->forward(x);

    std::ostringstream os;
    saveParameters(*net, os);
    Rng rng2(5);
    auto net2 = buildTinyConvNet(rng2, 4, 6, 1, 12);
    std::istringstream is(os.str());
    loadParameters(*net2, is);
    Tensor after = net2->forward(x);
    EXPECT_TRUE(before.equals(after));
}

TEST(Serialize, RejectsBadHeader)
{
    Rng rng(6);
    auto net = buildTinyConvNet(rng, 4, 6, 1, 12);
    std::istringstream is("not-a-model\n");
    EXPECT_DEATH(loadParameters(*net, is), "");
}

TEST(Serialize, RejectsStructuralMismatch)
{
    Rng rng(7);
    auto small = buildTinyConvNet(rng, 4, 6, 1, 12);
    auto big = buildTinyConvNet(rng, 4, 12, 1, 12);
    std::ostringstream os;
    saveParameters(*small, os);
    std::istringstream is(os.str());
    EXPECT_DEATH(loadParameters(*big, is), "");
}

} // namespace
} // namespace forms::nn
