/**
 * @file
 * Tests for the activation statistics model: sampling bounds, EIC
 * monotonicity in fragment size, and calibration against the paper's
 * Figure 8(b) reference points (avg EIC ~10.7 at fragment size 4 and
 * ~15 at 128 for 16-bit inputs).
 */

#include <gtest/gtest.h>

#include "sim/activation_model.hh"

namespace forms::sim {
namespace {

TEST(ActivationModel, SamplesWithinGrid)
{
    ActivationModel m = ActivationModel::calibratedResNet50();
    Rng rng(1);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LE(m.sample(rng), 65535u);
}

TEST(ActivationModel, ZeroFractionRespected)
{
    ActivationModel m;
    m.zeroFraction = 0.5;
    Rng rng(2);
    int zeros = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        zeros += m.sample(rng) == 0 ? 1 : 0;
    // Log-normal samples below 0.5 also round to zero, so >= 0.5.
    EXPECT_GT(static_cast<double>(zeros) / n, 0.48);
}

TEST(ActivationModel, EicMonotoneInFragmentSize)
{
    ActivationModel m = ActivationModel::calibratedResNet50();
    double prev = 0.0;
    for (int frag : {1, 4, 8, 16, 32, 64, 128}) {
        const double eic = m.averageEic(frag, 8000);
        EXPECT_GE(eic, prev);
        prev = eic;
    }
}

TEST(ActivationModel, CalibrationMatchesFigure8b)
{
    // Paper: fragment size 4 -> average EIC 10.7 (33% cycles saved);
    // fragment size 128 -> 15 (6% saved). Tolerate +/-0.8 cycles.
    ActivationModel m = ActivationModel::calibratedResNet50();
    EXPECT_NEAR(m.averageEic(4, 40000), 10.7, 0.8);
    EXPECT_NEAR(m.averageEic(128, 40000), 15.0, 0.8);
}

TEST(ActivationModel, SavingsShrinkWithFragmentSize)
{
    ActivationModel m = ActivationModel::calibratedResNet50();
    const auto s4 = m.eicStats(4, 20000);
    const auto s128 = m.eicStats(128, 20000);
    EXPECT_GT(s4.cycleSavings(), s128.cycleSavings());
    // Paper: ~33% saved at 4, ~6% at 128.
    EXPECT_NEAR(s4.cycleSavings(), 0.33, 0.06);
    EXPECT_NEAR(s128.cycleSavings(), 0.06, 0.04);
}

TEST(ActivationModel, DeterministicForSeed)
{
    ActivationModel m = ActivationModel::calibratedResNet50();
    EXPECT_DOUBLE_EQ(m.averageEic(8, 5000, 9), m.averageEic(8, 5000, 9));
}

TEST(ActivationModel, HistogramSkewsHighForLargeFragments)
{
    // Figure 8(a): large fragments concentrate at 15-16 cycles.
    ActivationModel m = ActivationModel::calibratedResNet50();
    const auto stats = m.eicStats(128, 20000);
    double high = 0.0;
    for (int b = 14; b <= 16; ++b)
        high += stats.histogram().fraction(b);
    EXPECT_GT(high, 0.6);
}

} // namespace
} // namespace forms::sim
