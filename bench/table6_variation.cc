/**
 * @file
 * Regenerates paper Table VI: accuracy degradation under ReRAM device
 * variation (log-normal, mean 0, sigma 0.1, averaged over repeated
 * draws) for four variants of the same network: original,
 * polarization-only, pruning-only and fully optimized.
 */

#include <cstdio>

#include "common/table.hh"
#include "sim/experiments.hh"

using namespace forms;
using namespace forms::sim;

int
main()
{
    std::printf("Table VI: accuracy degradation under device variation "
                "(lognormal sigma=0.1)\n");

    VariationStudyConfig vcfg;
    vcfg.sigma = 0.1;
    vcfg.runs = 20;   // paper averages 50; trimmed for CPU budget

    struct Case
    {
        const char *label;
        nn::DatasetConfig data;
        double keep;
        const char *paper;
    };
    std::vector<Case> cases = {
        {"CIFAR-10-like", nn::DatasetConfig::cifar10Like(31), 0.6,
         "0.35 / 0.37 / 1.82 / 1.80 pp"},
        {"CIFAR-100-like", nn::DatasetConfig::cifar100Like(32), 0.6,
         "0.72 / 0.68 / 1.86 / 1.89 pp"},
        {"ImageNet-like", nn::DatasetConfig::imagenetLike(33), 0.7,
         "2.87 / 2.86 / 4.24 / 4.21 pp"},
    };

    for (auto &c : cases) {
        c.data.trainPerClass = 8;
        c.data.testPerClass = 5;
        auto rows = runVariationExperiment(
            NetKind::ResNetSmall, c.data, vcfg, c.keep, c.keep,
            /*pretrain_epochs=*/4, /*seed=*/77);
        Table t({"Variant", "Degradation (pp)"});
        for (const auto &r : rows)
            t.row().cell(r.variant).cell(r.degradationPct, 2);
        t.print(strfmt("ResNet18 (scaled), %s", c.label));
        std::printf("  paper (orig/pol/prune/full): %s\n", c.paper);
    }

    std::printf("\nShape to check: polarization tracks the original "
                "model's robustness; pruning costs extra robustness "
                "because each surviving weight matters more.\n");
    return 0;
}
