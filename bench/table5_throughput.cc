/**
 * @file
 * Regenerates paper Table V: effective peak throughput per area and
 * per watt, normalized to ISAAC. Computed rows come from the analytic
 * performance model evaluated over the paper's five large workloads
 * (geometric mean); the DaDianNao/TPU/WAX/SIMBA rows are the published
 * reference points the paper itself carried over. Raw-physics values
 * are printed next to the calibrated ones.
 */

#include <cmath>
#include <cstdio>

#include "common/table.hh"
#include "sim/perf_model.hh"

using namespace forms;
using namespace forms::sim;

namespace {

struct Row
{
    ArchModel arch;
    double paperMm2;
    double paperW;
};

struct Norm
{
    double mm2, w, mm2Raw, wRaw;
};

Norm
meanOverCases(const PerfModel &model, const ArchModel &arch,
              const std::vector<EvalCase> &cases, const Norm *base)
{
    double mm2 = 1.0, w = 1.0, mm2r = 1.0, wr = 1.0;
    for (const auto &c : cases) {
        const PerfResult r =
            model.evaluate(arch, c.workload, &c.profile);
        mm2 *= r.gopsPerMm2;
        w *= r.gopsPerW;
        const double raw_scale =
            arch.calibration > 0.0 ? 1.0 / arch.calibration : 1.0;
        mm2r *= r.gopsPerMm2 * raw_scale;
        wr *= r.gopsPerW * raw_scale;
    }
    const double inv = 1.0 / static_cast<double>(cases.size());
    Norm n{std::pow(mm2, inv), std::pow(w, inv),
           std::pow(mm2r, inv), std::pow(wr, inv)};
    if (base) {
        n.mm2 /= base->mm2;
        n.w /= base->w;
        n.mm2Raw /= base->mm2;
        n.wRaw /= base->w;
    }
    return n;
}

} // namespace

int
main()
{
    std::printf("Table V: peak nominal throughput per area / power, "
                "normalized to ISAAC\n");

    PerfModel model;
    const auto cases = figure14Cases();

    const Norm base =
        meanOverCases(model, ArchModel::isaac16(), cases, nullptr);

    const std::vector<Row> rows = {
        {ArchModel::isaac16(), 1.0, 1.0},
        {ArchModel::formsPolarizationOnly(8), 0.54, 0.61},
        {ArchModel::formsPolarizationOnly(16), 0.77, 0.84},
        {ArchModel::isaacPrunedQuantized(), 26.4, 26.61},
        {ArchModel::pumaPrunedQuantized(), 18.67, 21.07},
        {ArchModel::formsFull(8, true), 36.02, 27.73},
        {ArchModel::formsFull(16, true), 39.48, 51.26},
    };

    Table t({"Architecture", "GOPs/s/mm^2 (model)", "(raw)",
             "(paper)", "GOPs/W (model)", "(raw)", "(paper)"});
    for (const auto &row : rows) {
        const Norm n = meanOverCases(model, row.arch, cases, &base);
        t.row()
            .cell(row.arch.name)
            .cell(n.mm2, 2)
            .cell(n.mm2Raw, 2)
            .cell(row.paperMm2, 2)
            .cell(n.w, 2)
            .cell(n.wRaw, 2)
            .cell(row.paperW, 2);
    }
    t.print("In-situ designs (computed bottom-up; geometric mean over "
            "the five large workloads)");

    Table r({"Architecture", "GOPs/s/mm^2 (paper)", "GOPs/W (paper)"});
    for (const auto &ref : tableVReferencePoints())
        r.row().cell(ref.name).cell(ref.gopsPerMm2Norm, 2)
            .cell(ref.gopsPerWNorm, 2);
    r.print("Published digital reference points (carried over, "
            "not re-derived)");

    std::printf(
        "\nShape checks: FORMS-full-16 tops the in-situ designs; "
        "PQ-ISAAC > PQ-PUMA (splitting doubles crossbars); "
        "polarization-only FORMS lands below plain ISAAC exactly as the "
        "paper reports (0.5-0.8x) because fine-grained conversion costs "
        "ADC bandwidth until compression and zero-skip pay it back.\n");
    return 0;
}
