/**
 * @file
 * Regenerates paper Table I: the FORMS optimization framework
 * (crossbar-aware structured pruning -> fragment polarization ->
 * quantization) on MNIST-class and CIFAR-10-class tasks at fragment
 * sizes 4/8/16: prune ratio, accuracy drop, crossbar reduction.
 *
 * Substitution note (DESIGN.md §2): datasets are synthetic
 * class-prototype images with matched geometry and the CIFAR networks
 * are CPU-trainable scaled stand-ins, so absolute prune ratios are
 * configured lower than the paper's GPU-scale results — the shape
 * (small fragments lose ~no accuracy; reduction = prune x 4 quant x 2
 * polarization) is what this bench reproduces.
 */

#include <cstdio>

#include "common/table.hh"
#include "sim/experiments.hh"

using namespace forms;
using namespace forms::sim;

namespace {

void
runCase(const char *label, CompressionExperimentSpec spec,
        const char *paper_note)
{
    auto rows = runCompressionExperiment(spec);
    Table t({"Fragment size", "Prune ratio", "Acc drop (pp)",
             "Crossbar reduction", "Sign violations"});
    for (const auto &r : rows) {
        t.row().cell(static_cast<int64_t>(r.fragSize))
            .cell(r.pruneRatio, 2)
            .cell(r.accuracyDropPct, 2)
            .cell(r.crossbarReduction, 1)
            .cell(r.signViolations);
    }
    t.print(label);
    std::printf("  paper: %s\n", paper_note);
}

} // namespace

int
main()
{
    std::printf("Table I: compression results, small/medium tasks\n");

    {
        CompressionExperimentSpec spec;
        spec.label = "LeNet5 / MNIST-like";
        spec.net = NetKind::LeNet5;
        spec.data = nn::DatasetConfig::mnistLike(11);
        spec.data.trainPerClass = 24;
        spec.data.testPerClass = 8;
        spec.filterKeep = 0.5;
        spec.shapeKeep = 0.6;
        spec.fragSizes = {4, 8, 16};
        spec.xbarDim = 8;
        spec.pretrainEpochs = 8;
        spec.admmEpochsPerPhase = 1;
        spec.finetuneEpochs = 3;
        runCase("LeNet5 on MNIST-like data", spec,
                "prune 23.18x, drops -0.02/-0.01/0.14 pp, "
                "reduction 185.4x");
    }
    {
        CompressionExperimentSpec spec;
        spec.label = "VGG (scaled) / CIFAR-10-like";
        spec.net = NetKind::VggSmall;
        spec.data = nn::DatasetConfig::cifar10Like(12);
        spec.data.trainPerClass = 12;
        spec.data.testPerClass = 5;
        spec.filterKeep = 0.7;
        spec.shapeKeep = 0.7;
        spec.fragSizes = {4, 8, 16};
        spec.xbarDim = 16;
        spec.pretrainEpochs = 8;
        spec.admmEpochsPerPhase = 1;
        spec.finetuneEpochs = 3;
        runCase("VGG16 (scaled) on CIFAR-10-like data", spec,
                "prune 41.2x, drops 0.61/0.64/0.77 pp, "
                "reduction 329.6x");
    }
    {
        CompressionExperimentSpec spec;
        spec.label = "ResNet18 (scaled) / CIFAR-10-like";
        spec.net = NetKind::ResNetSmall;
        spec.data = nn::DatasetConfig::cifar10Like(13);
        spec.data.trainPerClass = 12;
        spec.data.testPerClass = 5;
        spec.filterKeep = 0.7;
        spec.shapeKeep = 0.7;
        spec.fragSizes = {4, 8, 16};
        spec.xbarDim = 16;
        spec.pretrainEpochs = 8;
        spec.admmEpochsPerPhase = 1;
        spec.finetuneEpochs = 3;
        runCase("ResNet18 (scaled) on CIFAR-10-like data", spec,
                "prune 50.85x, drops 0.35/0.47/0.92 pp, "
                "reduction 406.8x");
    }

    std::printf("\nShape to check: accuracy drop grows with fragment "
                "size; crossbar reduction = prune-driven reduction x4 "
                "(32->8-bit) x2 (no positive/negative splitting).\n");
    return 0;
}
