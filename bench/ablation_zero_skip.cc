/**
 * @file
 * Ablation: what zero-skipping is worth, measured on the functional
 * engine (bit-cycle counts on real mapped weights and realistic
 * activations) and on the analytic FPS model, across fragment sizes.
 * This isolates the paper's "unique opportunity of small sub-arrays"
 * claim from the compression effects.
 */

#include <cstdio>

#include "arch/engine.hh"
#include "common/table.hh"
#include "sim/perf_model.hh"

using namespace forms;
using namespace forms::sim;

namespace {

/** Build a polarized, quantized random layer and run the engine. */
arch::EngineStats
engineRun(int frag, bool skip, uint64_t seed)
{
    static Tensor weight({16, 16, 3, 3});
    static Tensor grad({16, 16, 3, 3});
    Rng rng(seed);
    weight.fillGaussian(rng, 0.0f, 0.4f);

    admm::LayerState st;
    st.name = "ablate";
    st.param = {"w", &weight, &grad, true, false};
    st.plan = admm::FragmentPlan::forConv(
        16, 16, 3, frag, admm::PolarizationPolicy::CMajor);
    admm::WeightView v = admm::WeightView::conv(weight);
    st.signs = admm::computeSigns(v, st.plan);
    admm::projectPolarization(v, st.plan, *st.signs);
    admm::QuantSpec q;
    q.bits = 8;
    st.quantScale = admm::projectQuantize(v, q);

    arch::MappingConfig mcfg;
    mcfg.xbarRows = 128;
    mcfg.xbarCols = 128;
    mcfg.fragSize = frag;
    mcfg.inputBits = 16;
    arch::MappedLayer mapped = arch::mapLayer(st, mcfg);

    arch::EngineConfig ecfg;
    ecfg.zeroSkip = skip;
    arch::CrossbarEngine engine(mapped, ecfg);

    // Realistic activations from the calibrated model, streamed
    // through the batched engine (bit-identical to a serial loop).
    ActivationModel act = ActivationModel::calibratedResNet50();
    Rng arng(seed + 1);
    std::vector<std::vector<uint32_t>> batch;
    for (int pres = 0; pres < 16; ++pres)
        batch.push_back(act.sampleVector(arng, 16 * 9));
    arch::EngineStats stats;
    engine.mvmBatch(batch, &stats);
    return stats;
}

} // namespace

int
main()
{
    std::printf("Ablation: zero-skipping across fragment sizes\n");

    Table t({"Fragment size", "Bit cycles (skip)", "Bit cycles (none)",
             "Cycle savings (%)", "ADC energy saved (%)"});
    for (int frag : {4, 8, 16, 32}) {
        auto with = engineRun(frag, true, 100 + frag);
        auto without = engineRun(frag, false, 100 + frag);
        const double save = 100.0 *
            (1.0 - static_cast<double>(with.bitCycles) /
                       static_cast<double>(without.bitCycles));
        const double esave = 100.0 *
            (1.0 - with.adcEnergyPj / without.adcEnergyPj);
        t.row().cell(static_cast<int64_t>(frag))
            .cell(static_cast<int64_t>(with.bitCycles))
            .cell(static_cast<int64_t>(without.bitCycles))
            .cell(save, 1)
            .cell(esave, 1);
    }
    t.print("Functional engine (measured on mapped crossbars)");

    // Analytic model: FPS uplift from skipping alone.
    PerfModel model;
    Table f({"Fragment size", "FPS uplift from zero-skip (raw model)"});
    const Workload wl = resnet50Cifar();
    const CompressionProfile p{"rn50-c100", 9.18, 8};
    for (int frag : {4, 8, 16}) {
        ArchModel skip = ArchModel::formsFull(frag, true);
        ArchModel noskip = ArchModel::formsFull(frag, false);
        skip.calibration = noskip.calibration = 1.0;
        const double uplift =
            model.evaluate(skip, wl, &p).fpsRaw /
            model.evaluate(noskip, wl, &p).fpsRaw;
        f.row().cell(static_cast<int64_t>(frag)).cell(uplift, 3);
    }
    f.print("Analytic model (bounded by 16 / average EIC)");

    std::printf("\nShape to check: savings shrink monotonically as the "
                "fragment grows — the paper's motivation for "
                "fine-grained sub-arrays.\n");
    return 0;
}
