/**
 * @file
 * Online-serving bench: Poisson request arrivals against the dynamic
 * micro-batching serve::Server over a GraphRuntime backend.
 *
 * Sweeps offered load from well under to well over the measured
 * offline capacity and reports, per rate: achieved throughput,
 * completion/rejection counts, p50/p95/p99 end-to-end latency and the
 * mean served batch size — the classic latency/throughput knee. The
 * knee (max achieved rps) and the sweep land in BENCH_serving.json
 * (schema: scripts/check_bench_schema.py) under an obs::RunManifest
 * header.
 *
 * The bench doubles as the serving determinism gate: every response's
 * logits are compared bitwise against a single-request reference
 * forward under the same request id; ANY divergence — across batch
 * compositions the arrival process produced — fails the bench with a
 * non-zero exit.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "common/simd.hh"
#include "common/table.hh"
#include "compile/passes.hh"
#include "nn/layers.hh"
#include "obs/metrics.hh"
#include "obs/run_manifest.hh"
#include "serve/backends.hh"
#include "serve/server.hh"
#include "sim/graph_runtime.hh"

using namespace forms;

namespace {

constexpr int kHw = 12;
constexpr int kRequests = 80;     //!< per sweep point
constexpr int kMaxBatch = 4;
constexpr int64_t kMaxDelayUs = 400;
constexpr size_t kQueueCapacity = 64;

/** One sweep point's measurements. */
struct SweepPoint
{
    double offeredRps = 0.0;
    double achievedRps = 0.0;
    int completed = 0;
    int rejected = 0;
    double p50Us = 0.0, p95Us = 0.0, p99Us = 0.0;
    double meanBatch = 0.0;
};

double
percentile(std::vector<double> sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    const size_t idx = static_cast<size_t>(
        p * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(idx, sorted.size() - 1)];
}

} // namespace

int
main()
{
    simd::printBenchBanner("bench_serving");
    std::printf("Online serving: Poisson arrivals vs dynamic "
                "micro-batching (maxBatch %d, deadline %lld us)\n",
                kMaxBatch, static_cast<long long>(kMaxDelayUs));

    // Small conv net under the full noise model (quantized ADC,
    // device variation, read noise): the determinism gate below is
    // only meaningful when per-presentation randomness is live.
    Rng rng(21);
    nn::Network net;
    net.emplace<nn::Conv2D>("conv1", 3, 8, 3, 1, 1, rng);
    net.emplace<nn::ReLU>("relu1");
    net.emplace<nn::MaxPool2D>("pool", 2, 2);
    net.emplace<nn::Flatten>("flat");
    net.emplace<nn::Dense>("fc", 8 * (kHw / 2) * (kHw / 2), 10, rng);

    auto graph = compile::lowerNetwork(net);
    graph.inferShapes({3, kHw, kHw});
    compile::foldBatchNorm(graph);
    auto states = sim::snapshotCompress(net, 8, 8);

    sim::RuntimeConfig rcfg;
    rcfg.mapping.fragSize = 8;
    rcfg.mapping.inputBits = 8;
    rcfg.engine.adcBits = 3;
    rcfg.engine.cell.variationSigma = 0.1;
    rcfg.engine.readNoiseSigma = 0.02;
    sim::GraphRuntime rt(graph, states, rcfg);
    serve::GraphBackend backend(rt);

    // Reference: separately programmed engines, single requests.
    sim::GraphRuntime ref_rt(graph, states, rcfg);

    // Request corpus, shared across sweep points: request i is
    // (image_i, id=i), so one reference forward per id suffices.
    std::vector<Tensor> images(kRequests);
    std::vector<Tensor> ref(kRequests);
    for (int i = 0; i < kRequests; ++i) {
        Rng irng(1000 + static_cast<uint64_t>(i));
        Tensor img({3, kHw, kHw});
        img.fillUniform(irng, 0.0f, 1.0f);
        Tensor one({1, 3, kHw, kHw});
        std::memcpy(one.data(), img.data(),
                    static_cast<size_t>(img.numel()) * sizeof(float));
        const uint64_t id = static_cast<uint64_t>(i);
        ref[static_cast<size_t>(i)] =
            ref_rt.forwardRequests(one, &id, nullptr);
        images[static_cast<size_t>(i)] = std::move(img);
    }
    const int64_t out_elems = ref[0].numel();

    // Capacity estimate: serve the whole corpus back to back at full
    // batch size, no idle time.
    double cap_rps = 0.0;
    {
        const auto t0 = std::chrono::steady_clock::now();
        serve::Server warm(backend, [] {
            serve::ServerConfig c;
            c.maxBatch = kMaxBatch;
            c.maxDelayUs = kMaxDelayUs;
            c.queueCapacity = 0;
            return c;
        }());
        std::vector<std::future<serve::Response>> futs;
        for (int i = 0; i < kRequests; ++i)
            futs.push_back(warm.submit(images[static_cast<size_t>(i)],
                                       static_cast<uint64_t>(i)));
        for (auto &f : futs)
            f.get();
        const double s = std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0).count();
        cap_rps = s > 0.0 ? kRequests / s : 1000.0;
    }
    std::printf("measured closed-loop capacity: %.0f req/s\n", cap_rps);

    const double fractions[] = {0.25, 0.5, 1.0, 2.0};
    std::vector<SweepPoint> sweep;
    bool bit_identical = true;
    Rng arrival_rng(99);

    for (const double frac : fractions) {
        SweepPoint pt;
        pt.offeredRps = cap_rps * frac;

        obs::MetricsRegistry metrics;
        serve::ServerConfig sc;
        sc.maxBatch = kMaxBatch;
        sc.maxDelayUs = kMaxDelayUs;
        sc.queueCapacity = kQueueCapacity;
        sc.metrics = &metrics;
        serve::Server server(backend, sc);

        std::vector<std::future<serve::Response>> futs(kRequests);
        const auto t0 = std::chrono::steady_clock::now();
        double clock_s = 0.0;
        for (int i = 0; i < kRequests; ++i) {
            // Poisson process: exponential inter-arrival times.
            clock_s += -std::log(1.0 - arrival_rng.uniform()) /
                       pt.offeredRps;
            const auto due =
                t0 + std::chrono::duration_cast<
                         std::chrono::steady_clock::duration>(
                         std::chrono::duration<double>(clock_s));
            std::this_thread::sleep_until(due);
            futs[static_cast<size_t>(i)] = server.submit(
                images[static_cast<size_t>(i)],
                static_cast<uint64_t>(i));
        }

        std::vector<double> lat_us;
        double batch_sum = 0.0;
        for (int i = 0; i < kRequests; ++i) {
            serve::Response r = futs[static_cast<size_t>(i)].get();
            if (r.status == serve::Status::Rejected) {
                ++pt.rejected;
                continue;
            }
            ++pt.completed;
            lat_us.push_back(r.totalUs);
            batch_sum += r.batchSize;
            if (r.logits.numel() != out_elems ||
                std::memcmp(r.logits.data(),
                            ref[static_cast<size_t>(i)].data(),
                            static_cast<size_t>(out_elems) *
                                sizeof(float)) != 0) {
                warn("request %d: dynamically batched logits diverge "
                     "bitwise from the single-request reference "
                     "(batch size %d)", i, r.batchSize);
                bit_identical = false;
            }
        }
        const double span_s = std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0).count();
        pt.achievedRps =
            span_s > 0.0 ? pt.completed / span_s : 0.0;
        std::sort(lat_us.begin(), lat_us.end());
        pt.p50Us = percentile(lat_us, 0.50);
        pt.p95Us = percentile(lat_us, 0.95);
        pt.p99Us = percentile(lat_us, 0.99);
        pt.meanBatch =
            pt.completed > 0 ? batch_sum / pt.completed : 0.0;
        sweep.push_back(pt);
        server.shutdown();
    }

    Table t({"Offered rps", "Achieved rps", "Done", "Shed", "p50 us",
             "p95 us", "p99 us", "Mean batch"});
    double knee_rps = 0.0;
    for (const SweepPoint &pt : sweep) {
        knee_rps = std::max(knee_rps, pt.achievedRps);
        t.row().cell(pt.offeredRps, 0)
            .cell(pt.achievedRps, 0)
            .cell(static_cast<int64_t>(pt.completed))
            .cell(static_cast<int64_t>(pt.rejected))
            .cell(pt.p50Us, 0)
            .cell(pt.p95Us, 0)
            .cell(pt.p99Us, 0)
            .cell(pt.meanBatch, 2);
    }
    t.print(strfmt("Poisson sweep (%d requests per point, knee %.0f "
                   "req/s, bitwise vs reference: %s)",
                   kRequests, knee_rps,
                   bit_identical ? "IDENTICAL" : "DIVERGED"));

    FILE *json = std::fopen("BENCH_serving.json", "w");
    if (json) {
        obs::RunManifest manifest = obs::RunManifest::collect("serving");
        manifest.set("requests_per_point",
                     static_cast<int64_t>(kRequests));
        obs::JsonWriter w(json);
        w.beginObject();
        obs::writeBenchHeader(w, manifest);
        w.field("bench", "serving");
        w.field("threads", ThreadPool::global().threads());
        w.field("max_batch", kMaxBatch);
        w.field("max_delay_us", kMaxDelayUs);
        w.field("queue_capacity",
                static_cast<int64_t>(kQueueCapacity));
        w.field("bit_identical", bit_identical);
        w.field("knee_rps", knee_rps);
        w.key("sweep");
        w.beginArray();
        for (const SweepPoint &pt : sweep) {
            w.beginObject();
            w.field("offered_rps", pt.offeredRps);
            w.field("achieved_rps", pt.achievedRps);
            w.field("completed", static_cast<int64_t>(pt.completed));
            w.field("rejected", static_cast<int64_t>(pt.rejected));
            w.field("p50_us", pt.p50Us);
            w.field("p95_us", pt.p95Us);
            w.field("p99_us", pt.p99Us);
            w.field("mean_batch", pt.meanBatch);
            w.endObject();
        }
        w.endArray();
        w.endObject();
        std::fputc('\n', json);
        std::fclose(json);
        std::printf("wrote BENCH_serving.json (%zu sweep points)\n",
                    sweep.size());
    } else {
        warn("cannot write BENCH_serving.json");
    }

    if (!bit_identical) {
        std::printf("FAIL: dynamic batching changed at least one "
                    "request's logits\n");
        return 1;
    }
    return 0;
}
