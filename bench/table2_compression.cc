/**
 * @file
 * Regenerates paper Table II: compression on CIFAR-100-class and
 * ImageNet-class tasks (harder datasets, lower prune ratios, fragment
 * sizes 4/8/16). Same substitutions as table1_compression.
 */

#include <cstdio>

#include "common/table.hh"
#include "sim/experiments.hh"

using namespace forms;
using namespace forms::sim;

namespace {

void
runCase(const char *label, CompressionExperimentSpec spec,
        const char *paper_note)
{
    auto rows = runCompressionExperiment(spec);
    Table t({"Fragment size", "Prune ratio", "Acc drop (pp)",
             "Crossbar reduction", "Sign violations"});
    for (const auto &r : rows) {
        t.row().cell(static_cast<int64_t>(r.fragSize))
            .cell(r.pruneRatio, 2)
            .cell(r.accuracyDropPct, 2)
            .cell(r.crossbarReduction, 1)
            .cell(r.signViolations);
    }
    t.print(label);
    std::printf("  paper: %s\n", paper_note);
}

CompressionExperimentSpec
baseSpec(NetKind net, nn::DatasetConfig data, double keep)
{
    CompressionExperimentSpec spec;
    spec.net = net;
    spec.data = data;
    spec.data.trainPerClass = 8;
    spec.data.testPerClass = 4;
    spec.filterKeep = keep;
    spec.shapeKeep = keep;
    spec.fragSizes = {4, 16};
    spec.xbarDim = 16;
    spec.pretrainEpochs = 5;
    spec.admmEpochsPerPhase = 1;
    spec.finetuneEpochs = 2;
    return spec;
}

} // namespace

int
main()
{
    std::printf("Table II: compression results, harder tasks "
                "(lower prune ratios preserve accuracy)\n");

    // CIFAR-100-class: the paper prunes 6.65-9.18x; harder task =>
    // gentler keep fractions than Table I.
    runCase("ResNet18 (scaled) on CIFAR-100-like data",
            baseSpec(NetKind::ResNetSmall,
                     nn::DatasetConfig::cifar100Like(21), 0.65),
            "prune 6.65x, drops -0.06/-0.03/0.17 pp, reduction 53.2x");
    runCase("ResNet50 (scaled) on CIFAR-100-like data",
            baseSpec(NetKind::ResNetDeep,
                     nn::DatasetConfig::cifar100Like(22), 0.6),
            "prune 9.18x, drops 0.10/0.31/0.61 pp, reduction 73.4x");
    runCase("VGG16 (scaled) on CIFAR-100-like data",
            baseSpec(NetKind::VggSmall,
                     nn::DatasetConfig::cifar100Like(23), 0.62),
            "prune 8.15x, drops -0.01/0.10/0.37 pp, reduction 65.2x");

    // ImageNet-class: least redundancy, gentlest pruning.
    runCase("ResNet18 (scaled) on ImageNet-like data",
            baseSpec(NetKind::ResNetSmall,
                     nn::DatasetConfig::imagenetLike(24), 0.8),
            "prune 2.0x, drops 0.34/0.62/1.73 pp, reduction 16.0x");
    runCase("ResNet50 (scaled) on ImageNet-like data",
            baseSpec(NetKind::ResNetDeep,
                     nn::DatasetConfig::imagenetLike(25), 0.72),
            "prune 3.67x, drops 0.37/0.70/1.62 pp, reduction 29.4x");

    std::printf("\nShape to check: harder tasks force lower prune "
                "ratios; fragment-16 drops exceed fragment-4/8 drops; "
                "reduction remains prune x 8 (quant+polarization).\n");
    return 0;
}
