/**
 * @file
 * Ablation: design-space exploration the paper describes in §IV-C —
 * fragment size (with its implied ADC resolution and iso-area ADC
 * count), bits per ReRAM cell, and sign-handling scheme. Regenerates
 * the paper's qualitative conclusions: 2-bit cells win, sign
 * indicator beats splitting/offset, and mid-size fragments balance
 * accuracy against throughput.
 */

#include <cstdio>

#include "admm/report.hh"
#include "common/table.hh"
#include "sim/perf_model.hh"

using namespace forms;
using namespace forms::sim;

int
main()
{
    std::printf("Ablation: design-space exploration\n");

    PerfModel model;
    const Workload wl = resnet18Cifar();
    const CompressionProfile prof{"rn18-c100", 6.65, 8};

    // 1. Fragment size sweep (ADC resolution & count follow).
    Table t({"Fragment", "ADC bits", "ADCs/xbar", "ADC GHz",
             "Chip power (W)", "Chip area (mm^2)", "FPS (raw)"});
    for (int frag : {4, 8, 16, 32}) {
        ArchModel a = ArchModel::formsFull(frag, true);
        a.calibration = 1.0;
        const auto r = model.evaluate(a, wl, &prof);
        t.row().cell(static_cast<int64_t>(frag))
            .cell(static_cast<int64_t>(a.adcBits))
            .cell(static_cast<int64_t>(a.adcsPerCrossbar))
            .cell(a.adcFreqGhz, 2)
            .cell(a.chipPowerMw / 1000.0, 2)
            .cell(a.chipAreaMm2, 2)
            .cell(r.fpsRaw, 0);
    }
    t.print("Fragment size sweep (FORMS full optimization, raw "
            "physics)");

    // 2. Cell-bit sweep at fragment 8: fewer bits/cell = more columns;
    //    more bits/cell = bigger ADC. 2-bit is the paper's sweet spot.
    Table c({"Bits/cell", "Cells/weight", "Crossbars (layer s1_b0)",
             "Lossless ADC bits"});
    {
        const LayerSpec &layer = wl.layers[1];
        for (int cell_bits : {1, 2, 4}) {
            ArchModel a = ArchModel::formsFull(8, true);
            a.cellBits = cell_bits;
            const auto lp = model.layerPerf(a, layer, &prof);
            c.row().cell(static_cast<int64_t>(cell_bits))
                .cell(static_cast<int64_t>((8 + cell_bits - 1) /
                                           cell_bits))
                .cell(lp.crossbars)
                .cell(static_cast<int64_t>(
                    reram::AdcModel::losslessBits(8, cell_bits)));
        }
    }
    c.print("ReRAM cell precision trade-off (fragment 8, 8-bit "
            "weights)");

    // 3. Sign-handling schemes: crossbars needed for one layer.
    Table s({"Scheme", "Crossbars (stem)", "Crossbars (s2_b0.conv1)",
             "Extra hardware"});
    struct SchemeRow
    {
        const char *name;
        admm::SignScheme scheme;
        const char *extra;
    };
    const SchemeRow schemes[3] = {
        {"Splitting (PRIME/PUMA)", admm::SignScheme::Splitting,
         "2x crossbars + DACs"},
        {"Offset (ISAAC)", admm::SignScheme::OffsetIsaac,
         "1-counting + bias subtract units"},
        {"Polarized + sign indicator (FORMS)",
         admm::SignScheme::PolarizedForms, "1R sign array (0.012 mW)"},
    };
    for (const auto &row : schemes) {
        admm::MappingSpec spec;
        spec.weightBits = 8;
        spec.scheme = row.scheme;
        const auto &stem = wl.layers[0];
        const auto &mid = wl.layers[8];
        s.row().cell(row.name)
            .cell(admm::crossbarsForMatrix(stem.rows(), stem.cols(),
                                           spec))
            .cell(admm::crossbarsForMatrix(mid.rows(), mid.cols(),
                                           spec))
            .cell(row.extra);
    }
    s.print("Sign-handling schemes");
    return 0;
}
