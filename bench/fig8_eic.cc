/**
 * @file
 * Regenerates paper Figure 8: (a) the distribution of effective input
 * cycles (EIC) across fragments for fragment sizes 4..128 with 16-bit
 * inputs, and (b) the average EIC per fragment size — from the
 * calibrated activation model AND cross-checked against activations
 * measured from a trained scaled ResNet on synthetic CIFAR-100-like
 * data.
 */

#include <cstdio>

#include "common/logging.hh"
#include "common/table.hh"
#include "nn/layers.hh"
#include "nn/trainer.hh"
#include "nn/zoo.hh"
#include "sim/activation_model.hh"

using namespace forms;
using namespace forms::sim;

namespace {

/** Collect post-ReLU activations from a trained scaled network. */
std::vector<uint32_t>
measuredActivations()
{
    nn::DatasetConfig dcfg = nn::DatasetConfig::cifar100Like(7);
    dcfg.trainPerClass = 16;
    dcfg.testPerClass = 4;
    nn::SyntheticImageDataset data(dcfg);

    Rng rng(5);
    auto net = nn::buildResNetSmall(rng, dcfg.classes, 8);
    nn::TrainConfig tc;
    tc.epochs = 3;
    tc.batchSize = 16;
    nn::Trainer trainer(*net, data, tc);
    trainer.run();

    // Forward a test batch and harvest every intermediate activation
    // tensor (post-ReLU, nonnegative), quantized to 16 bits.
    Tensor x({8, 3, 32, 32});
    const Tensor &imgs = data.test().images;
    std::copy(imgs.data(), imgs.data() + x.numel(), x.data());

    std::vector<uint32_t> values;
    Tensor act = x;
    for (size_t i = 0; i < net->size(); ++i) {
        act = net->layer(i).forward(act, false);
        float mx = 0.0f;
        for (int64_t j = 0; j < act.numel(); ++j)
            mx = std::max(mx, act.at(j));
        if (mx <= 0.0f)
            continue;
        const float scale = mx / 65535.0f;
        for (int64_t j = 0; j < act.numel(); ++j) {
            const float v = act.at(j);
            values.push_back(v > 0.0f
                ? static_cast<uint32_t>(std::min(65535.0f, v / scale))
                : 0u);
        }
    }
    return values;
}

} // namespace

int
main()
{
    std::printf("Figure 8: effective input cycles (16-bit inputs)\n");
    const std::vector<int> frag_sizes = {4, 8, 16, 32, 64, 128};
    ActivationModel model = ActivationModel::calibratedResNet50();

    // (a) EIC distribution, bucketed like the paper's histogram.
    Table a({"Fragment size", "EIC<=1 (%)", "2-13 (%)", "14 (%)",
             "15 (%)", "16 (%)"});
    for (int frag : frag_sizes) {
        auto stats = model.eicStats(frag, 30000);
        const auto &h = stats.histogram();
        double low = h.fraction(0) + h.fraction(1);
        double mid = 0.0;
        for (int b = 2; b <= 13; ++b)
            mid += h.fraction(b);
        a.row().cell(static_cast<int64_t>(frag))
            .cell(low * 100.0, 1)
            .cell(mid * 100.0, 1)
            .cell(h.fraction(14) * 100.0, 1)
            .cell(h.fraction(15) * 100.0, 1)
            .cell(h.fraction(16) * 100.0, 1);
    }
    a.print("(a) Distribution of fragment EIC (activation model)");

    // (b) Average EIC per fragment size: model vs measured network.
    auto measured = measuredActivations();
    Table b({"Fragment size", "Avg EIC (model)", "Avg EIC (measured net)",
             "Cycles saved (model, %)", "Paper (ResNet50)"});
    const double paper_ref[6] = {10.7, 11.6, 12.5, 13.4, 14.2, 15.0};
    int i = 0;
    for (int frag : frag_sizes) {
        auto stats = model.eicStats(frag, 30000);
        arch::EicStats m(16);
        m.recordVector(measured, frag);
        b.row().cell(static_cast<int64_t>(frag))
            .cell(stats.averageEic(), 2)
            .cell(m.averageEic(), 2)
            .cell(stats.cycleSavings() * 100.0, 1)
            .cell(strfmt("%.1f%s", paper_ref[i],
                         (i == 0 || i == 5) ? "" : " (interp.)"));
        ++i;
    }
    b.print("(b) Average EIC vs fragment size (paper published 10.7 "
            "at size 4 and 15 at size 128; intermediate values "
            "interpolated from its plot)");
    return 0;
}
