/**
 * @file
 * Regenerates paper Table IV: chip-level power/area roll-up for FORMS
 * (fragment size 8), ISAAC and DaDianNao.
 */

#include <cstdio>

#include "common/table.hh"
#include "reram/components.hh"

using namespace forms;
using namespace forms::reram;

int
main()
{
    std::printf("Table IV: chip-level power and area\n");

    const ChipCost forms = buildChipCost(ChipConfig::forms(8));
    const ChipCost isaac = buildChipCost(ChipConfig::isaac());
    const DaDianNaoCost ddn;

    Table t({"Row", "FORMS power (mW)", "FORMS area (mm^2)",
             "ISAAC power (mW)", "ISAAC area (mm^2)"});
    t.row().cell("1 MCU (incl. registers)")
        .cell(forms.mcuPowerMw, 2).cell(forms.mcuAreaMm2, 4)
        .cell(isaac.mcuPowerMw, 2).cell(isaac.mcuAreaMm2, 4);
    t.row().cell("12 MCUs per tile")
        .cell(forms.mcuPowerMw * 12, 2).cell(forms.mcuAreaMm2 * 12, 4)
        .cell(isaac.mcuPowerMw * 12, 2).cell(isaac.mcuAreaMm2 * 12, 4);
    t.row().cell("1 tile (12 MCUs + dig unit)")
        .cell(forms.tilePowerMw, 2).cell(forms.tileAreaMm2, 4)
        .cell(isaac.tilePowerMw, 2).cell(isaac.tileAreaMm2, 4);
    t.row().cell("168 tiles")
        .cell(forms.tilesPowerMw, 1).cell(forms.tilesAreaMm2, 2)
        .cell(isaac.tilesPowerMw, 1).cell(isaac.tilesAreaMm2, 2);
    t.row().cell("HyperTransport (4 @ 1.6 GHz)")
        .cell(10400.0, 1).cell(22.88, 2)
        .cell(10400.0, 1).cell(22.88, 2);
    t.row().cell("CHIP TOTAL")
        .cell(forms.chipPowerMw, 1).cell(forms.chipAreaMm2, 2)
        .cell(isaac.chipPowerMw, 1).cell(isaac.chipAreaMm2, 2);
    t.print("FORMS (fragment 8) vs ISAAC");

    Table d({"DaDianNao component", "Power (mW)", "Area (mm^2)"});
    d.row().cell("NFU x16").cell(ddn.nfuPowerMw, 1).cell(ddn.nfuAreaMm2, 2);
    d.row().cell("eDRAM 36 MB").cell(ddn.edramPowerMw, 1)
        .cell(ddn.edramAreaMm2, 2);
    d.row().cell("Global bus 128b").cell(ddn.busPowerMw, 1)
        .cell(ddn.busAreaMm2, 2);
    d.row().cell("HyperTransport").cell(ddn.htPowerMw, 1)
        .cell(ddn.htAreaMm2, 2);
    d.row().cell("CHIP TOTAL").cell(ddn.chipPowerMw(), 1)
        .cell(ddn.chipAreaMm2(), 2);
    d.print("DaDianNao (scaled to 32 nm)");

    std::printf("\nIso-cost check: FORMS/ISAAC power ratio %.4f, "
                "area ratio %.4f (paper: ~1.001 / ~1.05).\n",
                forms.chipPowerMw / isaac.chipPowerMw,
                forms.chipAreaMm2 / isaac.chipAreaMm2);
    return 0;
}
