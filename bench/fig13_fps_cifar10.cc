/**
 * @file
 * Regenerates paper Figure 13: frame-per-second speedup on CIFAR-10
 * (VGG16, ResNet18), all series normalized to non-pruned 32-bit ISAAC.
 * Six series as in the paper: PQ-ISAAC, PQ-PUMA, FORMS-8/16 without
 * zero-skipping, FORMS-8/16 with zero-skipping. Calibrated and
 * raw-physics speedups are both printed.
 *
 * A second section measures the functional InferenceRuntime on a
 * CIFAR-10-geometry conv net: serial vs parallel host wall-time for
 * the same batch (bit-identical outputs), written to
 * BENCH_runtime.json so the perf trajectory is machine-trackable.
 */

#include <cstdio>

#include "common/logging.hh"
#include "common/simd.hh"
#include "common/table.hh"
#include "nn/layers.hh"
#include "obs/run_manifest.hh"
#include "sim/perf_model.hh"
#include "sim/runtime.hh"

using namespace forms;
using namespace forms::sim;

namespace {

/**
 * Serial vs parallel wall-time of the batched runtime on a small
 * CIFAR-10-geometry conv net (3x16x16 input keeps the functional
 * simulation affordable; the presentation count is what matters).
 */
void
runtimeBench()
{
    std::printf("\nBatched runtime: serial vs parallel wall-time "
                "(functional engine)\n");

    Rng rng(5);
    nn::Network net;
    net.emplace<nn::Conv2D>("conv1", 3, 16, 3, 1, 1, rng);
    net.emplace<nn::ReLU>("relu1");
    net.emplace<nn::MaxPool2D>("pool1", 2, 2);
    net.emplace<nn::Conv2D>("conv2", 16, 32, 3, 1, 1, rng);
    net.emplace<nn::ReLU>("relu2");
    net.emplace<nn::MaxPool2D>("pool2", 2, 2);
    net.emplace<nn::Flatten>("flat");
    net.emplace<nn::Dense>("fc", 32 * 4 * 4, 10, rng);

    auto states = snapshotCompress(net, 8, 8);

    const int64_t images = 8;
    Tensor batch({images, 3, 16, 16});
    batch.fillUniform(rng, 0.0f, 1.0f);

    RuntimeConfig rcfg;
    rcfg.mapping.fragSize = 8;
    rcfg.mapping.inputBits = 8;
    rcfg.engine.adcBits = 4;

    ThreadPool serial_pool(1);
    ThreadPool parallel_pool(ThreadPool::defaultThreads());

    rcfg.pool = &serial_pool;
    InferenceRuntime serial_rt(net, states, rcfg);
    rcfg.pool = &parallel_pool;
    InferenceRuntime parallel_rt(net, states, rcfg);

    // Warm-up (page in the programmed arrays), then take the best of
    // three timed runs per configuration — a single sample on a busy
    // host is scheduling noise — using the wall-clock the runtime
    // itself stamps into the report. The modeled stats are
    // deterministic, so the last run's report serves for those.
    serial_rt.forward(batch);
    parallel_rt.forward(batch);

    constexpr int repeats = 3;
    RuntimeReport serial_rep, parallel_rep;
    double serial_ms = 0.0, parallel_ms = 0.0;
    for (int r = 0; r < repeats; ++r) {
        RuntimeReport srep, prep;
        serial_rt.forward(batch, &srep);
        parallel_rt.forward(batch, &prep);
        if (r == 0 || srep.wallMs < serial_ms)
            serial_ms = srep.wallMs;
        if (r == 0 || prep.wallMs < parallel_ms)
            parallel_ms = prep.wallMs;
        serial_rep = srep;
        parallel_rep = prep;
    }
    const double speedup = parallel_ms > 0.0 ? serial_ms / parallel_ms
                                             : 0.0;

    Table t({"Threads", "Wall (ms)", "Presentations",
             "Modeled time (us)", "Modeled energy (nJ)"});
    t.row().cell(static_cast<int64_t>(1)).cell(serial_ms, 1)
        .cell(static_cast<int64_t>(serial_rep.presentations))
        .cell(serial_rep.modelTimeNs() / 1e3, 2)
        .cell(serial_rep.modelEnergyPj() / 1e3, 2);
    t.row().cell(static_cast<int64_t>(parallel_pool.threads()))
        .cell(parallel_ms, 1)
        .cell(static_cast<int64_t>(parallel_rep.presentations))
        .cell(parallel_rep.modelTimeNs() / 1e3, 2)
        .cell(parallel_rep.modelEnergyPj() / 1e3, 2);
    t.print(strfmt("CIFAR-10-geometry conv net, batch %lld: %.2fx "
                   "speedup",
                   static_cast<long long>(images), speedup));

    FILE *json = std::fopen("BENCH_runtime.json", "w");
    if (!json) {
        warn("cannot write BENCH_runtime.json");
        return;
    }
    obs::RunManifest manifest = obs::RunManifest::collect("fig13_runtime");
    manifest.set("images", static_cast<int64_t>(images))
        .set("repeats", repeats)
        .set("parallel_threads", parallel_pool.threads());
    obs::JsonWriter w(json);
    w.beginObject();
    obs::writeBenchHeader(w, manifest);
    w.field("bench", "fig13_runtime");
    w.field("images", images);
    w.field("presentations", parallel_rep.presentations);
    w.field("threads", parallel_pool.threads());
    w.field("serial_wall_ms", serial_ms);
    w.field("parallel_wall_ms", parallel_ms);
    w.field("speedup", speedup);
    w.field("model_time_us", parallel_rep.modelTimeNs() / 1e3);
    w.field("model_energy_nj", parallel_rep.modelEnergyPj() / 1e3);
    w.endObject();
    std::fputc('\n', json);
    std::fclose(json);
    std::printf("wrote BENCH_runtime.json (serial %.1f ms, parallel "
                "%.1f ms on %d threads, %.2fx)\n",
                serial_ms, parallel_ms, parallel_pool.threads(),
                speedup);
}

} // namespace

int
main()
{
    simd::printBenchBanner("bench_fig13_fps_cifar10");
    std::printf("Figure 13: FPS speedup on CIFAR-10, normalized to "
                "ISAAC-32\n");

    PerfModel model;
    const ArchModel baseline = ArchModel::isaac32();
    const std::vector<ArchModel> series = {
        ArchModel::isaacPrunedQuantized(),
        ArchModel::pumaPrunedQuantized(),
        ArchModel::formsFull(8, false),
        ArchModel::formsFull(16, false),
        ArchModel::formsFull(8, true),
        ArchModel::formsFull(16, true),
    };

    for (const auto &c : figure13Cases()) {
        const double base =
            model.evaluate(baseline, c.workload, &c.profile).fps;
        const double base_raw =
            model.evaluate(baseline, c.workload, &c.profile).fpsRaw;
        Table t({"Series", "Speedup (calibrated)", "Speedup (raw)"});
        for (const auto &arch : series) {
            const PerfResult r =
                model.evaluate(arch, c.workload, &c.profile);
            t.row().cell(arch.name)
                .cell(r.fps / base, 2)
                .cell(r.fpsRaw / base_raw, 2);
        }
        t.print(c.label + strfmt("  (prune %.1fx, 8-bit weights)",
                                 c.profile.pruneRatio));
    }

    std::printf(
        "\nPaper reference (CIFAR-10): pruning alone speeds ISAAC up "
        "7.5x-200.8x; FORMS-8 with zero-skipping reaches 10.7x-377.9x "
        "over ISAAC-32 and 1.12x-2.4x over optimized ISAAC.\n");

    runtimeBench();
    return 0;
}
