/**
 * @file
 * Regenerates paper Figure 13: frame-per-second speedup on CIFAR-10
 * (VGG16, ResNet18), all series normalized to non-pruned 32-bit ISAAC.
 * Six series as in the paper: PQ-ISAAC, PQ-PUMA, FORMS-8/16 without
 * zero-skipping, FORMS-8/16 with zero-skipping. Calibrated and
 * raw-physics speedups are both printed.
 */

#include <cstdio>

#include "common/logging.hh"
#include "common/table.hh"
#include "sim/perf_model.hh"

using namespace forms;
using namespace forms::sim;

int
main()
{
    std::printf("Figure 13: FPS speedup on CIFAR-10, normalized to "
                "ISAAC-32\n");

    PerfModel model;
    const ArchModel baseline = ArchModel::isaac32();
    const std::vector<ArchModel> series = {
        ArchModel::isaacPrunedQuantized(),
        ArchModel::pumaPrunedQuantized(),
        ArchModel::formsFull(8, false),
        ArchModel::formsFull(16, false),
        ArchModel::formsFull(8, true),
        ArchModel::formsFull(16, true),
    };

    for (const auto &c : figure13Cases()) {
        const double base =
            model.evaluate(baseline, c.workload, &c.profile).fps;
        const double base_raw =
            model.evaluate(baseline, c.workload, &c.profile).fpsRaw;
        Table t({"Series", "Speedup (calibrated)", "Speedup (raw)"});
        for (const auto &arch : series) {
            const PerfResult r =
                model.evaluate(arch, c.workload, &c.profile);
            t.row().cell(arch.name)
                .cell(r.fps / base, 2)
                .cell(r.fpsRaw / base_raw, 2);
        }
        t.print(c.label + strfmt("  (prune %.1fx, 8-bit weights)",
                                 c.profile.pruneRatio));
    }

    std::printf(
        "\nPaper reference (CIFAR-10): pruning alone speeds ISAAC up "
        "7.5x-200.8x; FORMS-8 with zero-skipping reaches 10.7x-377.9x "
        "over ISAAC-32 and 1.12x-2.4x over optimized ISAAC.\n");
    return 0;
}
