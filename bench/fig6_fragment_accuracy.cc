/**
 * @file
 * Regenerates paper Figure 6: test accuracy vs fragment size
 * (polarization only, CIFAR-100-class task) for three network
 * families. The paper's claim: small fragments (4/8) cost ~no
 * accuracy; accuracy sags as fragments grow toward whole columns.
 */

#include <cstdio>

#include "common/table.hh"
#include "sim/experiments.hh"

using namespace forms;
using namespace forms::sim;

int
main()
{
    std::printf("Figure 6: accuracy vs fragment size (polarization "
                "only), CIFAR-100-like task\n");

    const std::vector<int> frags = {1, 4, 8, 16, 32, 64, 128};

    struct Case
    {
        const char *label;
        NetKind net;
        uint64_t seed;
    };
    const Case cases[3] = {
        {"VGG16 (scaled)", NetKind::VggSmall, 61},
        {"ResNet18 (scaled)", NetKind::ResNetSmall, 62},
        {"ResNet50 (scaled)", NetKind::ResNetDeep, 63},
    };

    Table t({"Fragment size", "VGG16 acc (%)", "ResNet18 acc (%)",
             "ResNet50 acc (%)"});
    std::vector<std::vector<double>> acc(3);
    for (int c = 0; c < 3; ++c) {
        nn::DatasetConfig data = nn::DatasetConfig::cifar100Like(
            40 + cases[c].seed);
        data.trainPerClass = 10;
        data.testPerClass = 5;
        auto pts = runFragmentAccuracySweep(
            cases[c].net, data, frags, /*pretrain_epochs=*/5,
            cases[c].seed);
        for (const auto &p : pts)
            acc[static_cast<size_t>(c)].push_back(p.accuracy * 100.0);
    }
    for (size_t i = 0; i < frags.size(); ++i) {
        t.row().cell(static_cast<int64_t>(frags[i]))
            .cell(acc[0][i], 1)
            .cell(acc[1][i], 1)
            .cell(acc[2][i], 1);
    }
    t.print("Accuracy vs fragment size");

    std::printf(
        "\nPaper reference (CIFAR-100, Fig. 6): curves are flat within "
        "~1%% up to fragment size 8-16 and sag by a few points toward "
        "128. Expect the same flat-then-sag shape here (absolute "
        "accuracies differ: synthetic data, scaled networks).\n");
    return 0;
}
