/**
 * @file
 * Offline activation-calibration study (beyond the paper's idealized
 * input grid — "fig16" continues the paper's figure numbering): how
 * close a deployable static activation scale (sim::Calibrator,
 * DESIGN.md §2) gets to the idealized per-presentation max scale the
 * functional runtimes used before, as a function of calibration-set
 * size and reduction policy.
 *
 * A scaled ResNet is trained on a synthetic task, BN-folded,
 * compressed and run on GraphRuntime three ways: idealized
 * per-presentation scales (the accuracy upper bound no real DAC grid
 * can reach), and static scales calibrated with the abs-max and
 * moving-percentile policies at several calibration split sizes.
 * Emits BENCH_calibration.json (uploaded by CI): accuracy deltas vs
 * the idealized scale plus the saturation (clip) fraction each static
 * grid pays.
 */

#include <cstdio>
#include <cstring>

#include "admm/compressor.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "compile/passes.hh"
#include "nn/dataset.hh"
#include "nn/trainer.hh"
#include "nn/zoo.hh"
#include "obs/run_manifest.hh"
#include "sim/calibrator.hh"
#include "sim/graph_runtime.hh"

using namespace forms;
using namespace forms::sim;

namespace {

const int kCalibSizes[] = {4, 12, 32};
const CalibPolicy kPolicies[] = {CalibPolicy::AbsMax,
                                 CalibPolicy::Percentile};

/** One (policy, calibration-set size) measurement. */
struct CalibResult
{
    CalibPolicy policy = CalibPolicy::AbsMax;
    int calibImages = 0;
    double accuracy = 0.0;
    double clipFraction = 0.0;   //!< over all quantized activations
    size_t tableEntries = 0;
};

RuntimeConfig
benchConfig()
{
    RuntimeConfig rcfg;
    rcfg.mapping.fragSize = 8;
    rcfg.mapping.inputBits = 8;
    rcfg.engine.adcBits = 4;
    return rcfg;
}

/** Copy rows [lo, lo+count) of an NCHW batch. */
Tensor
sliceBatch(const Tensor &batch, int64_t lo, int64_t count)
{
    Shape shape = batch.shape();
    shape[0] = count;
    Tensor out(shape);
    const int64_t sample = batch.numel() / batch.dim(0);
    std::memcpy(out.data(), batch.data() + lo * sample,
                static_cast<size_t>(count * sample) * sizeof(float));
    return out;
}

double
reportClipFraction(const RuntimeReport &rep)
{
    uint64_t values = 0, clipped = 0;
    for (const auto &l : rep.layers) {
        values += l.stats.quantValues;
        clipped += l.stats.quantClipped;
    }
    return values > 0
        ? static_cast<double>(clipped) / static_cast<double>(values)
        : 0.0;
}

} // namespace

int
main()
{
    std::printf("Static activation calibration vs the idealized "
                "per-presentation scale (ResNet, synthetic CIFAR-10 "
                "task)\n");

    // Train and ADMM-compress a scaled ResNet (the full deployment
    // flow — projection-only snapshots collapse a trained model, so
    // the accuracy deltas would be chance-level noise), then compile
    // and fold once; every configuration below shares the same
    // programmed weights.
    nn::DatasetConfig dcfg = nn::DatasetConfig::cifar10Like(91);
    dcfg.trainPerClass = 16;
    dcfg.testPerClass = 3;
    dcfg.nonneg = true;   // unsigned sensor domain (DESIGN.md §2)
    nn::SyntheticImageDataset data(dcfg);

    Rng rng(92);
    auto net = nn::buildResNetSmall(rng, dcfg.classes, 8, 1);
    nn::TrainConfig tcfg;
    tcfg.epochs = 4;
    tcfg.batchSize = 16;
    tcfg.seed = 93;
    nn::Trainer trainer(*net, data, tcfg);
    const double fp_acc = trainer.run().testAccuracy;

    admm::AdmmConfig acfg;
    acfg.fragSize = 8;
    acfg.policy = admm::PolarizationPolicy::CMajor;
    acfg.xbarDim = 16;
    acfg.filterKeep = 0.7;
    acfg.shapeKeep = 0.7;
    acfg.quantBits = 8;
    acfg.admmEpochsPerPhase = 1;
    acfg.finetuneEpochs = 2;
    admm::AdmmCompressor comp(*net, data, acfg);
    comp.run();
    auto &states = comp.layers();

    // Fold after compression: the BN affine lands in the digital
    // output stage, the ADMM-constrained weights map unchanged.
    auto graph = compile::lowerNetwork(*net);
    graph.inferShapes({dcfg.channels, dcfg.height, dcfg.width});
    compile::foldBatchNorm(graph, compile::FoldMode::DigitalScale);

    const Tensor &test = data.test().images;
    const std::vector<int> &labels = data.test().labels;

    // Idealized reference: per-presentation max scales.
    RuntimeConfig ideal_cfg = benchConfig();
    GraphRuntime ideal_rt(graph, states, ideal_cfg);
    RuntimeReport ideal_rep;
    const double ideal_acc = ideal_rt.accuracy(test, labels, &ideal_rep);

    std::vector<CalibResult> results;
    for (CalibPolicy policy : kPolicies) {
        // One calibrator per policy: observe() accumulates, so each
        // sweep point extends the previous split instead of replaying
        // it from scratch.
        CalibratorConfig ccfg;
        ccfg.policy = policy;
        Calibrator cal(graph, states, benchConfig(), ccfg);
        for (int calib_images : kCalibSizes) {
            cal.observe(sliceBatch(data.train().images,
                                   cal.images(),
                                   calib_images - cal.images()));
            const auto table = cal.table();

            RuntimeConfig scfg = benchConfig();
            scfg.scaleMode = arch::ScaleMode::Static;
            scfg.calibration = &table;
            GraphRuntime rt(graph, states, scfg);
            RuntimeReport rep;

            CalibResult r;
            r.policy = policy;
            r.calibImages = calib_images;
            r.accuracy = rt.accuracy(test, labels, &rep);
            r.clipFraction = reportClipFraction(rep);
            r.tableEntries = table.size();
            results.push_back(r);
        }
    }

    Table t({"Policy", "Calib images", "Accuracy (%)",
             "Delta vs ideal (pp)", "Clip fraction"});
    for (const auto &r : results) {
        t.row().cell(calibPolicyName(r.policy))
            .cell(static_cast<int64_t>(r.calibImages))
            .cell(r.accuracy * 100.0, 1)
            .cell((r.accuracy - ideal_acc) * 100.0, 1)
            .cell(r.clipFraction, 4);
    }
    t.print(strfmt("Static calibration vs idealized scale (FP acc "
                   "%.1f%%, idealized crossbar acc %.1f%%, %d test "
                   "images)", fp_acc * 100.0, ideal_acc * 100.0,
                   static_cast<int>(test.dim(0))));

    FILE *json = std::fopen("BENCH_calibration.json", "w");
    if (!json) {
        warn("cannot write BENCH_calibration.json");
        return 1;
    }
    obs::RunManifest manifest =
        obs::RunManifest::collect("fig16_calibration");
    manifest.set("network", "resnet_small")
        .set("train_seed", static_cast<int64_t>(tcfg.seed));
    obs::JsonWriter w(json);
    w.beginObject();
    obs::writeBenchHeader(w, manifest);
    w.field("bench", "fig16_calibration");
    w.field("threads", ThreadPool::global().threads());
    w.field("network", "resnet_small");
    w.field("test_images", static_cast<int64_t>(test.dim(0)));
    w.field("fp_accuracy", fp_acc);
    w.field("idealized_accuracy", ideal_acc);
    w.key("points");
    w.beginArray();
    for (const CalibResult &r : results) {
        w.beginObject();
        w.field("policy", calibPolicyName(r.policy));
        w.field("calib_images", r.calibImages);
        w.field("accuracy", r.accuracy);
        w.field("delta_vs_idealized", r.accuracy - ideal_acc);
        w.field("clip_fraction", r.clipFraction);
        w.field("table_entries", static_cast<uint64_t>(r.tableEntries));
        w.endObject();
    }
    w.endArray();
    w.endObject();
    std::fputc('\n', json);
    std::fclose(json);
    std::printf("wrote BENCH_calibration.json (%zu points)\n",
                results.size());
    return 0;
}
