/**
 * @file
 * Resilience study: accuracy under hard crossbar faults with and
 * without spare-crossbar remapping, and modeled throughput across
 * heterogeneous chip fleets.
 *
 * A scaled ResNet is trained on a synthetic task, ADMM-compressed,
 * compiled and run four ways per column-kill rate: clean, faulted
 * without spares, and faulted with the remap pass routing dead-column
 * tiles onto spares (arch/remap.hh) — plus a stuck-at/drift
 * degradation curve that remapping deliberately does not repair. The
 * process exits non-zero unless remapping recovers at least 90% of
 * the clean-vs-faulted accuracy gap at the 1e-3 column-kill gate
 * (docs/RESILIENCE.md). A second sweep re-partitions the same graph
 * over heterogeneous ChipSpec fleets (capacity / ADC rate / link
 * bandwidth) and records the modeled fps — asserting the specs moved
 * only time, never logits. Emits BENCH_resilience.json (uploaded by
 * CI and schema-checked by scripts/check_bench_schema.py).
 */

#include <cstdio>
#include <cstring>

#include "admm/compressor.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "compile/passes.hh"
#include "compile/schedule.hh"
#include "nn/dataset.hh"
#include "nn/trainer.hh"
#include "nn/zoo.hh"
#include "obs/run_manifest.hh"
#include "reram/faults.hh"
#include "sim/graph_runtime.hh"
#include "sim/pipeline_runtime.hh"

using namespace forms;
using namespace forms::sim;

namespace {

constexpr double kGateRate = 1e-3;     //!< column-kill gate point
constexpr double kGateRecovery = 0.9;  //!< fraction of the gap to close
constexpr int kSpares = 32;            //!< spare crossbars per layer

const double kKillRates[] = {1e-4, 1e-3};
const double kStuckRates[] = {1e-3, 5e-3, 2e-2};

/** One (column-kill rate) measurement pair. */
struct FaultPoint
{
    double rate = 0.0;
    double faulted = 0.0;    //!< accuracy, no spares
    double remapped = 0.0;   //!< accuracy, remap onto spares
    double recovered = 1.0;  //!< fraction of the gap closed
};

/** One heterogeneous-fleet throughput measurement. */
struct HeteroPoint
{
    const char *label = "";
    double fps = 0.0;
    double makespanNs = 0.0;
    double transferNs = 0.0;
    bool bitIdentical = false;
};

RuntimeConfig
benchConfig()
{
    RuntimeConfig rcfg;
    rcfg.mapping.fragSize = 8;
    rcfg.mapping.inputBits = 8;
    rcfg.engine.adcBits = 4;
    return rcfg;
}

double
recoveredFraction(double clean, double faulted, double remapped)
{
    const double gap = clean - faulted;
    if (gap <= 0.0)
        return 1.0;   // the map didn't hurt; nothing to recover
    return (remapped - faulted) / gap;
}

} // namespace

int
main()
{
    std::printf("Fault resilience: accuracy vs fault rate with and "
                "without spare-crossbar remapping (ResNet, synthetic "
                "CIFAR-10 task)\n");

    // Train and ADMM-compress (projection-only snapshots collapse a
    // trained model; the fault deltas would be chance-level noise).
    nn::DatasetConfig dcfg = nn::DatasetConfig::cifar10Like(91);
    dcfg.trainPerClass = 16;
    dcfg.testPerClass = 3;
    dcfg.nonneg = true;
    nn::SyntheticImageDataset data(dcfg);

    Rng rng(92);
    auto net = nn::buildResNetSmall(rng, dcfg.classes, 8, 1);
    nn::TrainConfig tcfg;
    tcfg.epochs = 4;
    tcfg.batchSize = 16;
    tcfg.seed = 93;
    nn::Trainer trainer(*net, data, tcfg);
    const double fp_acc = trainer.run().testAccuracy;

    admm::AdmmConfig acfg;
    acfg.fragSize = 8;
    acfg.policy = admm::PolarizationPolicy::CMajor;
    acfg.xbarDim = 16;
    acfg.filterKeep = 0.7;
    acfg.shapeKeep = 0.7;
    acfg.quantBits = 8;
    acfg.admmEpochsPerPhase = 1;
    acfg.finetuneEpochs = 2;
    admm::AdmmCompressor comp(*net, data, acfg);
    comp.run();
    auto &states = comp.layers();

    auto graph = compile::lowerNetwork(*net);
    graph.inferShapes({dcfg.channels, dcfg.height, dcfg.width});
    compile::foldBatchNorm(graph, compile::FoldMode::DigitalScale);

    const Tensor &test = data.test().images;
    const std::vector<int> &labels = data.test().labels;

    GraphRuntime clean_rt(graph, states, benchConfig());
    const double clean_acc = clean_rt.accuracy(test, labels);

    // ---- column-kill sweep: no-spares vs remapped onto spares ----
    std::vector<FaultPoint> points;
    for (double rate : kKillRates) {
        reram::FaultConfig fc;
        fc.columnKillRate = rate;
        fc.seed = 2024;
        reram::FaultMap map(fc);

        FaultPoint p;
        p.rate = rate;
        {
            RuntimeConfig cfg = benchConfig();
            cfg.faults = &map;
            GraphRuntime rt(graph, states, cfg);
            p.faulted = rt.accuracy(test, labels);
        }
        {
            RuntimeConfig cfg = benchConfig();
            cfg.faults = &map;
            cfg.remapFaults = true;
            cfg.mapping.spareXbars = kSpares;
            GraphRuntime rt(graph, states, cfg);
            p.remapped = rt.accuracy(test, labels);
        }
        p.recovered = recoveredFraction(clean_acc, p.faulted,
                                        p.remapped);
        points.push_back(p);
    }

    // ---- stuck-at/drift degradation (remap leaves these in place) --
    std::vector<std::pair<double, double>> stuck_points;
    for (double rate : kStuckRates) {
        reram::FaultConfig fc;
        fc.stuckLrsRate = rate / 2.0;
        fc.stuckHrsRate = rate / 2.0;
        fc.driftRate = rate;
        fc.seed = 2024;
        reram::FaultMap map(fc);
        RuntimeConfig cfg = benchConfig();
        cfg.faults = &map;
        GraphRuntime rt(graph, states, cfg);
        stuck_points.emplace_back(rate, rt.accuracy(test, labels));
    }

    // ---- fault exposure at the gate point (pipeline reporting) ----
    reram::FaultConfig gate_fc;
    gate_fc.columnKillRate = kGateRate;
    gate_fc.seed = 2024;
    reram::FaultMap gate_map(gate_fc);
    PipelineRuntimeConfig pcfg;
    pcfg.runtime = benchConfig();
    pcfg.runtime.faults = &gate_map;
    pcfg.runtime.remapFaults = true;
    pcfg.runtime.mapping.spareXbars = kSpares;
    pcfg.microBatch = 2;
    compile::ScheduleConfig gate_scfg;
    gate_scfg.chips = 2;
    PipelineRuntime gate_rt(
        graph, compile::Schedule::partition(graph, gate_scfg), states,
        pcfg);
    PipelineReport gate_rep;
    (void)gate_rt.forward(test, &gate_rep);

    // ---- heterogeneous fleets: time moves, numbers don't ----------
    std::vector<HeteroPoint> hetero;
    Tensor homog_logits;
    const struct
    {
        const char *label;
        compile::ChipSpec spec0;   //!< chip 0's spec; others default
        double linkAll = 1.0;      //!< linkIn applied to every chip
    } fleets[] = {
        {"homogeneous", {}, 1.0},
        {"fast_chip0_2x", {2.0, 1.0, 1.0}, 1.0},
        {"fast_adc0_2x", {1.0, 2.0, 1.0}, 1.0},
        {"slow_links_2x", {}, 0.5},
    };
    for (const auto &f : fleets) {
        compile::ScheduleConfig scfg;
        scfg.chips = 4;
        scfg.workModel = compile::WorkModel::AdcTime;
        scfg.chipSpecs.assign(4, compile::ChipSpec{});
        scfg.chipSpecs[0] = f.spec0;
        for (auto &spec : scfg.chipSpecs)
            spec.linkIn *= f.linkAll;

        PipelineRuntimeConfig hcfg;
        hcfg.runtime = benchConfig();
        hcfg.microBatch = 2;
        PipelineRuntime rt(graph,
                           compile::Schedule::partition(graph, scfg),
                           states, hcfg);
        PipelineReport rep;
        const Tensor logits = rt.forward(test, &rep);

        HeteroPoint h;
        h.label = f.label;
        h.fps = rep.modeledFps();
        h.makespanNs = rep.makespanNs;
        h.transferNs = rep.transferNs;
        if (hetero.empty()) {
            homog_logits = logits;
            h.bitIdentical = true;
        } else {
            h.bitIdentical = logits.equals(homog_logits);
        }
        hetero.push_back(h);
    }

    // ---- report ---------------------------------------------------
    Table t({"Kill rate", "Faulted (%)", "Remapped (%)",
             "Recovered"});
    for (const auto &p : points) {
        t.row().cell(p.rate, 4)
            .cell(p.faulted * 100.0, 1)
            .cell(p.remapped * 100.0, 1)
            .cell(p.recovered, 2);
    }
    t.print(strfmt("Column-kill resilience (FP acc %.1f%%, clean "
                   "crossbar acc %.1f%%, %d spares/layer, %d test "
                   "images)", fp_acc * 100.0, clean_acc * 100.0,
                   kSpares, static_cast<int>(test.dim(0))));

    Table h({"Fleet", "Modeled fps", "Makespan (us)",
             "Transfer (us)", "Bit-identical"});
    for (const auto &p : hetero) {
        h.row().cell(p.label)
            .cell(p.fps, 1)
            .cell(p.makespanNs / 1e3, 1)
            .cell(p.transferNs / 1e3, 1)
            .cell(p.bitIdentical ? "yes" : "NO");
    }
    h.print("Heterogeneous 4-chip fleets (AdcTime partitioning)");

    const FaultPoint *gate = nullptr;
    for (const auto &p : points)
        if (p.rate == kGateRate)
            gate = &p;
    FORMS_ASSERT(gate != nullptr, "gate rate missing from sweep");
    bool hetero_identical = true;
    for (const auto &p : hetero)
        hetero_identical = hetero_identical && p.bitIdentical;
    const bool pass =
        gate->recovered >= kGateRecovery && hetero_identical;

    FILE *json = std::fopen("BENCH_resilience.json", "w");
    if (!json) {
        warn("cannot write BENCH_resilience.json");
        return 1;
    }
    obs::RunManifest manifest = obs::RunManifest::collect("resilience");
    manifest.set("network", "resnet_small")
        .set("train_seed", static_cast<int64_t>(tcfg.seed));
    obs::JsonWriter w(json);
    w.beginObject();
    obs::writeBenchHeader(w, manifest);
    w.field("bench", "resilience");
    w.field("threads", ThreadPool::global().threads());
    w.field("network", "resnet_small");
    w.field("test_images", static_cast<int64_t>(test.dim(0)));
    w.field("fp_accuracy", fp_acc);
    w.field("clean_accuracy", clean_acc);
    w.key("recovery");
    w.beginObject();
    w.field("column_kill_rate", gate->rate);
    w.field("spare_xbars", kSpares);
    w.field("faulted_accuracy", gate->faulted);
    w.field("remapped_accuracy", gate->remapped);
    w.field("recovered_fraction", gate->recovered);
    w.field("required_fraction", kGateRecovery);
    w.field("faulty_crossbars",
            static_cast<int64_t>(gate_rep.faultyCrossbars));
    w.field("remapped_crossbars",
            static_cast<int64_t>(gate_rep.remappedCrossbars));
    w.field("pass", pass);
    w.endObject();
    w.key("fault_points");
    w.beginArray();
    for (const auto &p : points) {
        w.beginObject();
        w.field("column_kill_rate", p.rate);
        w.field("spare_xbars", kSpares);
        w.field("accuracy_faulted", p.faulted);
        w.field("accuracy_remapped", p.remapped);
        w.field("recovered_fraction", p.recovered);
        w.endObject();
    }
    w.endArray();
    w.key("stuck_points");
    w.beginArray();
    for (const auto &p : stuck_points) {
        w.beginObject();
        w.field("stuck_rate", p.first);
        w.field("accuracy", p.second);
        w.endObject();
    }
    w.endArray();
    w.key("hetero_points");
    w.beginArray();
    for (const auto &p : hetero) {
        w.beginObject();
        w.field("label", p.label);
        w.field("chips", 4);
        w.field("modeled_fps", p.fps);
        w.field("makespan_ns", p.makespanNs);
        w.field("transfer_ns", p.transferNs);
        w.field("bit_identical", p.bitIdentical);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    std::fputc('\n', json);
    std::fclose(json);
    std::printf("wrote BENCH_resilience.json (%zu fault points, %zu "
                "fleets)\n", points.size(), hetero.size());

    if (!pass) {
        warn("resilience gate FAILED: recovered %.2f of the accuracy "
             "gap at column-kill rate %g (need >= %.2f), hetero "
             "bit-identical=%d",
             gate->recovered, kGateRate, kGateRecovery,
             hetero_identical);
        return 1;
    }
    std::printf("resilience gate passed: recovered %.2f of the gap "
                "at rate %g; heterogeneous fleets bit-identical\n",
                gate->recovered, kGateRate);
    return 0;
}
