/**
 * @file
 * Regenerates paper Figure 14: frame-per-second speedup on CIFAR-100
 * and ImageNet (five networks x six series), normalized to non-pruned
 * 32-bit ISAAC. The paper's published bar values are printed alongside
 * for comparison.
 *
 * A second section runs the ResNet zoo (buildResNetSmall /
 * buildResNetDeep) end to end through the compiled GraphRuntime —
 * lower, fold BN, compress, map — and writes wall-time / fps and the
 * per-node breakdown to BENCH_graph.json so CI tracks the DAG
 * executor's perf alongside BENCH_runtime.json.
 */

#include <cstdio>

#include "common/logging.hh"
#include "common/simd.hh"
#include "common/table.hh"
#include "compile/passes.hh"
#include "nn/layers.hh"
#include "nn/zoo.hh"
#include "obs/run_manifest.hh"
#include "sim/graph_runtime.hh"
#include "sim/perf_model.hh"
#include "sim/runtime.hh"

using namespace forms;
using namespace forms::sim;

namespace {

/**
 * Per-layer modeled latency/energy breakdown from the functional
 * batched runtime (VGG-flavoured stack, scaled spatial extent so the
 * functional simulation stays affordable).
 */
void
runtimeBreakdown()
{
    Rng rng(6);
    nn::Network net;
    net.emplace<nn::Conv2D>("conv1", 3, 16, 3, 1, 1, rng);
    net.emplace<nn::ReLU>("relu1");
    net.emplace<nn::Conv2D>("conv2", 16, 32, 3, 1, 1, rng);
    net.emplace<nn::ReLU>("relu2");
    net.emplace<nn::MaxPool2D>("pool", 2, 2);
    net.emplace<nn::Flatten>("flat");
    net.emplace<nn::Dense>("fc", 32 * 6 * 6, 100, rng);

    auto states = snapshotCompress(net, 8, 8);

    Tensor batch({4, 3, 12, 12});
    batch.fillUniform(rng, 0.0f, 1.0f);

    RuntimeConfig rcfg;
    rcfg.mapping.fragSize = 8;
    rcfg.mapping.inputBits = 8;
    rcfg.engine.adcBits = 4;
    InferenceRuntime rt(net, states, rcfg);

    RuntimeReport rep;
    rt.forward(batch, &rep);

    Table t({"Layer", "Crossbars", "Presentations", "ADC samples",
             "Modeled time (us)", "Energy (nJ)"});
    for (const auto &l : rep.layers) {
        t.row().cell(l.name)
            .cell(l.crossbars)
            .cell(static_cast<int64_t>(l.stats.presentations))
            .cell(static_cast<int64_t>(l.stats.adcSamples))
            .cell(l.stats.timeNs / 1e3, 2)
            .cell((l.stats.adcEnergyPj + l.stats.crossbarEnergyPj) / 1e3,
                  2);
    }
    t.print(strfmt("Batched runtime breakdown (batch 4, %d threads): "
                   "total %.2f us modeled, %.2f nJ",
                   ThreadPool::global().threads(),
                   rep.modelTimeNs() / 1e3, rep.modelEnergyPj() / 1e3));
}

/** One network's GraphRuntime measurement. */
struct GraphBenchResult
{
    std::string name;
    int64_t images = 0;
    double wallMs = 0.0;
    double fps = 0.0;
    RuntimeReport rep;
    int64_t crossbars = 0;
};

/**
 * Compile (lower + BN-fold), compress, map and execute one ResNet on
 * the DAG runtime; best wall-time of `repeats` runs.
 */
GraphBenchResult
runGraphNet(const std::string &name, nn::Network &net, int64_t images)
{
    GraphBenchResult r;
    r.name = name;
    r.images = images;

    auto graph = compile::lowerNetwork(net);
    graph.inferShapes({3, 32, 32});
    const int folded = compile::foldBatchNorm(graph);
    auto states = snapshotCompress(net, 8, 8);

    RuntimeConfig rcfg;
    rcfg.mapping.fragSize = 8;
    rcfg.mapping.inputBits = 8;
    rcfg.engine.adcBits = 4;
    GraphRuntime rt(graph, states, rcfg);
    r.crossbars = rt.totalCrossbars();

    Rng rng(7);
    Tensor batch({images, 3, 32, 32});
    batch.fillUniform(rng, 0.0f, 1.0f);

    rt.forward(batch);   // warm-up
    constexpr int repeats = 3;
    for (int i = 0; i < repeats; ++i) {
        RuntimeReport rep;
        rt.forward(batch, &rep);
        if (i == 0 || rep.wallMs < r.wallMs) {
            r.wallMs = rep.wallMs;
            r.rep = rep;
        }
    }
    r.fps = r.wallMs > 0.0
        ? static_cast<double>(images) / (r.wallMs / 1e3) : 0.0;

    Table t({"Node", "Crossbars", "Presentations", "ADC samples",
             "Modeled time (us)", "Energy (nJ)"});
    for (const auto &l : r.rep.layers) {
        t.row().cell(l.name)
            .cell(l.crossbars)
            .cell(static_cast<int64_t>(l.stats.presentations))
            .cell(static_cast<int64_t>(l.stats.adcSamples))
            .cell(l.stats.timeNs / 1e3, 2)
            .cell((l.stats.adcEnergyPj + l.stats.crossbarEnergyPj) / 1e3,
                  2);
    }
    t.print(strfmt("%s via GraphRuntime (batch %lld, %d BN folded): "
                   "%.1f ms wall, %.1f fps, %lld crossbars",
                   name.c_str(), static_cast<long long>(images), folded,
                   r.wallMs, r.fps,
                   static_cast<long long>(r.crossbars)));
    return r;
}

void
writeGraphJson(const std::vector<GraphBenchResult> &results)
{
    FILE *json = std::fopen("BENCH_graph.json", "w");
    if (!json) {
        warn("cannot write BENCH_graph.json");
        return;
    }
    obs::RunManifest manifest =
        obs::RunManifest::collect("fig14_graph_runtime");
    manifest.set("networks", static_cast<int64_t>(results.size()));
    obs::JsonWriter w(json);
    w.beginObject();
    obs::writeBenchHeader(w, manifest);
    w.field("bench", "fig14_graph_runtime");
    w.field("threads", ThreadPool::global().threads());
    w.key("networks");
    w.beginArray();
    for (const GraphBenchResult &r : results) {
        w.beginObject();
        w.field("name", r.name);
        w.field("images", r.images);
        w.field("wall_ms", r.wallMs);
        w.field("fps", r.fps);
        w.field("presentations", r.rep.presentations);
        w.field("crossbars", r.crossbars);
        w.field("model_time_us", r.rep.modelTimeNs() / 1e3);
        w.field("model_energy_nj", r.rep.modelEnergyPj() / 1e3);
        w.key("layers");
        w.beginArray();
        for (const auto &l : r.rep.layers) {
            w.beginObject();
            w.field("name", l.name);
            w.field("crossbars", l.crossbars);
            w.field("presentations", l.stats.presentations);
            w.field("adc_samples", l.stats.adcSamples);
            w.field("model_time_us", l.stats.timeNs / 1e3);
            w.field("energy_nj",
                    (l.stats.adcEnergyPj + l.stats.crossbarEnergyPj) /
                        1e3);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.endObject();
    std::fputc('\n', json);
    std::fclose(json);
    std::printf("wrote BENCH_graph.json (%zu networks, %d threads)\n",
                results.size(), ThreadPool::global().threads());
}

/** ResNetSmall / ResNetDeep end to end on the compiled DAG runtime. */
void
graphRuntimeBench()
{
    std::printf("\nResNet zoo via graph compiler + DAG runtime "
                "(BN folded onto crossbars)\n");
    std::vector<GraphBenchResult> results;
    {
        Rng rng(11);
        auto net = nn::buildResNetSmall(rng, 10, 8);
        results.push_back(runGraphNet("resnet_small", *net, 2));
    }
    {
        Rng rng(12);
        auto net = nn::buildResNetDeep(rng, 10, 8);
        results.push_back(runGraphNet("resnet_deep", *net, 2));
    }
    writeGraphJson(results);
}

} // namespace

int
main()
{
    simd::printBenchBanner("bench_fig14_fps_large");
    std::printf("Figure 14: FPS speedup on CIFAR-100 / ImageNet, "
                "normalized to ISAAC-32\n");

    PerfModel model;
    const ArchModel baseline = ArchModel::isaac32();
    const std::vector<ArchModel> series = {
        ArchModel::isaacPrunedQuantized(),
        ArchModel::pumaPrunedQuantized(),
        ArchModel::formsFull(8, false),
        ArchModel::formsFull(16, false),
        ArchModel::formsFull(8, true),
        ArchModel::formsFull(16, true),
    };
    // Paper bar values (rows = series above, cols = the five cases).
    const double paper[6][5] = {
        {25.875, 35.14, 30.665, 7.485, 11.18},   // PQ-ISAAC
        {18.30, 24.85, 21.69, 5.29, 5.91},       // PQ-PUMA
        {14.12, 19.18, 16.74, 4.09, 7.10},       // FORMS-8 no skip
        {20.08, 27.26, 23.79, 5.81, 10.67},      // FORMS-16 no skip
        {59.28, 53.23, 25.27, 10.72, 17.76},     // FORMS-8 full
        {50.54, 55.48, 34.30, 11.20, 21.09},     // FORMS-16 full
    };

    const auto cases = figure14Cases();
    int case_idx = 0;
    for (const auto &c : cases) {
        const double base =
            model.evaluate(baseline, c.workload, &c.profile).fps;
        Table t({"Series", "Speedup (model)", "Speedup (paper)"});
        for (size_t s = 0; s < series.size(); ++s) {
            const PerfResult r =
                model.evaluate(series[s], c.workload, &c.profile);
            t.row().cell(series[s].name)
                .cell(r.fps / base, 2)
                .cell(paper[s][case_idx], 2);
        }
        t.print(c.label + strfmt("  (prune %.2fx, 8-bit weights)",
                                 c.profile.pruneRatio));
        ++case_idx;
    }

    std::printf(
        "\nShape checks to eyeball: FORMS-with-skip > PQ-ISAAC > "
        "PQ-PUMA > FORMS-without-skip; FORMS-16 beats FORMS-8 without "
        "skipping (fewer row groups) while skipping favours the smaller "
        "fragment.\n");

    runtimeBreakdown();
    graphRuntimeBench();
    return 0;
}
