/**
 * @file
 * Regenerates paper Figure 14: frame-per-second speedup on CIFAR-100
 * and ImageNet (five networks x six series), normalized to non-pruned
 * 32-bit ISAAC. The paper's published bar values are printed alongside
 * for comparison.
 */

#include <cstdio>

#include "common/logging.hh"
#include "common/table.hh"
#include "sim/perf_model.hh"

using namespace forms;
using namespace forms::sim;

int
main()
{
    std::printf("Figure 14: FPS speedup on CIFAR-100 / ImageNet, "
                "normalized to ISAAC-32\n");

    PerfModel model;
    const ArchModel baseline = ArchModel::isaac32();
    const std::vector<ArchModel> series = {
        ArchModel::isaacPrunedQuantized(),
        ArchModel::pumaPrunedQuantized(),
        ArchModel::formsFull(8, false),
        ArchModel::formsFull(16, false),
        ArchModel::formsFull(8, true),
        ArchModel::formsFull(16, true),
    };
    // Paper bar values (rows = series above, cols = the five cases).
    const double paper[6][5] = {
        {25.875, 35.14, 30.665, 7.485, 11.18},   // PQ-ISAAC
        {18.30, 24.85, 21.69, 5.29, 5.91},       // PQ-PUMA
        {14.12, 19.18, 16.74, 4.09, 7.10},       // FORMS-8 no skip
        {20.08, 27.26, 23.79, 5.81, 10.67},      // FORMS-16 no skip
        {59.28, 53.23, 25.27, 10.72, 17.76},     // FORMS-8 full
        {50.54, 55.48, 34.30, 11.20, 21.09},     // FORMS-16 full
    };

    const auto cases = figure14Cases();
    int case_idx = 0;
    for (const auto &c : cases) {
        const double base =
            model.evaluate(baseline, c.workload, &c.profile).fps;
        Table t({"Series", "Speedup (model)", "Speedup (paper)"});
        for (size_t s = 0; s < series.size(); ++s) {
            const PerfResult r =
                model.evaluate(series[s], c.workload, &c.profile);
            t.row().cell(series[s].name)
                .cell(r.fps / base, 2)
                .cell(paper[s][case_idx], 2);
        }
        t.print(c.label + strfmt("  (prune %.2fx, 8-bit weights)",
                                 c.profile.pruneRatio));
        ++case_idx;
    }

    std::printf(
        "\nShape checks to eyeball: FORMS-with-skip > PQ-ISAAC > "
        "PQ-PUMA > FORMS-without-skip; FORMS-16 beats FORMS-8 without "
        "skipping (fewer row groups) while skipping favours the smaller "
        "fragment.\n");
    return 0;
}
