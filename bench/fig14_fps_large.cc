/**
 * @file
 * Regenerates paper Figure 14: frame-per-second speedup on CIFAR-100
 * and ImageNet (five networks x six series), normalized to non-pruned
 * 32-bit ISAAC. The paper's published bar values are printed alongside
 * for comparison.
 */

#include <cstdio>

#include "common/logging.hh"
#include "common/table.hh"
#include "nn/layers.hh"
#include "sim/perf_model.hh"
#include "sim/runtime.hh"

using namespace forms;
using namespace forms::sim;

namespace {

/**
 * Per-layer modeled latency/energy breakdown from the functional
 * batched runtime (VGG-flavoured stack, scaled spatial extent so the
 * functional simulation stays affordable).
 */
void
runtimeBreakdown()
{
    Rng rng(6);
    nn::Network net;
    net.emplace<nn::Conv2D>("conv1", 3, 16, 3, 1, 1, rng);
    net.emplace<nn::ReLU>("relu1");
    net.emplace<nn::Conv2D>("conv2", 16, 32, 3, 1, 1, rng);
    net.emplace<nn::ReLU>("relu2");
    net.emplace<nn::MaxPool2D>("pool", 2, 2);
    net.emplace<nn::Flatten>("flat");
    net.emplace<nn::Dense>("fc", 32 * 6 * 6, 100, rng);

    auto states = snapshotCompress(net, 8, 8);

    Tensor batch({4, 3, 12, 12});
    batch.fillUniform(rng, 0.0f, 1.0f);

    RuntimeConfig rcfg;
    rcfg.mapping.fragSize = 8;
    rcfg.mapping.inputBits = 8;
    rcfg.engine.adcBits = 4;
    InferenceRuntime rt(net, states, rcfg);

    RuntimeReport rep;
    rt.forward(batch, &rep);

    Table t({"Layer", "Crossbars", "Presentations", "ADC samples",
             "Modeled time (us)", "Energy (nJ)"});
    for (const auto &l : rep.layers) {
        t.row().cell(l.name)
            .cell(l.crossbars)
            .cell(static_cast<int64_t>(l.stats.presentations))
            .cell(static_cast<int64_t>(l.stats.adcSamples))
            .cell(l.stats.timeNs / 1e3, 2)
            .cell((l.stats.adcEnergyPj + l.stats.crossbarEnergyPj) / 1e3,
                  2);
    }
    t.print(strfmt("Batched runtime breakdown (batch 4, %d threads): "
                   "total %.2f us modeled, %.2f nJ",
                   ThreadPool::global().threads(),
                   rep.modelTimeNs() / 1e3, rep.modelEnergyPj() / 1e3));
}

} // namespace

int
main()
{
    std::printf("Figure 14: FPS speedup on CIFAR-100 / ImageNet, "
                "normalized to ISAAC-32\n");

    PerfModel model;
    const ArchModel baseline = ArchModel::isaac32();
    const std::vector<ArchModel> series = {
        ArchModel::isaacPrunedQuantized(),
        ArchModel::pumaPrunedQuantized(),
        ArchModel::formsFull(8, false),
        ArchModel::formsFull(16, false),
        ArchModel::formsFull(8, true),
        ArchModel::formsFull(16, true),
    };
    // Paper bar values (rows = series above, cols = the five cases).
    const double paper[6][5] = {
        {25.875, 35.14, 30.665, 7.485, 11.18},   // PQ-ISAAC
        {18.30, 24.85, 21.69, 5.29, 5.91},       // PQ-PUMA
        {14.12, 19.18, 16.74, 4.09, 7.10},       // FORMS-8 no skip
        {20.08, 27.26, 23.79, 5.81, 10.67},      // FORMS-16 no skip
        {59.28, 53.23, 25.27, 10.72, 17.76},     // FORMS-8 full
        {50.54, 55.48, 34.30, 11.20, 21.09},     // FORMS-16 full
    };

    const auto cases = figure14Cases();
    int case_idx = 0;
    for (const auto &c : cases) {
        const double base =
            model.evaluate(baseline, c.workload, &c.profile).fps;
        Table t({"Series", "Speedup (model)", "Speedup (paper)"});
        for (size_t s = 0; s < series.size(); ++s) {
            const PerfResult r =
                model.evaluate(series[s], c.workload, &c.profile);
            t.row().cell(series[s].name)
                .cell(r.fps / base, 2)
                .cell(paper[s][case_idx], 2);
        }
        t.print(c.label + strfmt("  (prune %.2fx, 8-bit weights)",
                                 c.profile.pruneRatio));
        ++case_idx;
    }

    std::printf(
        "\nShape checks to eyeball: FORMS-with-skip > PQ-ISAAC > "
        "PQ-PUMA > FORMS-without-skip; FORMS-16 beats FORMS-8 without "
        "skipping (fewer row groups) while skipping favours the smaller "
        "fragment.\n");

    runtimeBreakdown();
    return 0;
}
