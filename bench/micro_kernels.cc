/**
 * @file
 * google-benchmark micro-kernels for the hot paths of the simulator:
 * crossbar bit-serial MVM, zero-skip EIC computation, fragment
 * polarization projection, and the ADC transfer function.
 */

#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "arch/engine.hh"
#include "sim/activation_model.hh"

using namespace forms;

namespace {

arch::MappedLayer *
sharedLayer(int frag)
{
    static Tensor weight({16, 16, 3, 3});
    static Tensor grad({16, 16, 3, 3});
    static std::map<int, arch::MappedLayer> cache;
    auto it = cache.find(frag);
    if (it != cache.end())
        return &it->second;

    Rng rng(1);
    weight.fillGaussian(rng, 0.0f, 0.4f);
    static std::vector<std::unique_ptr<admm::LayerState>> states;
    auto st = std::make_unique<admm::LayerState>();
    st->name = "bench";
    st->param = {"w", &weight, &grad, true, false};
    st->plan = admm::FragmentPlan::forConv(
        16, 16, 3, frag, admm::PolarizationPolicy::CMajor);
    admm::WeightView v = admm::WeightView::conv(weight);
    st->signs = admm::computeSigns(v, st->plan);
    admm::projectPolarization(v, st->plan, *st->signs);
    admm::QuantSpec q;
    q.bits = 8;
    st->quantScale = admm::projectQuantize(v, q);

    arch::MappingConfig mcfg;
    mcfg.xbarRows = 128;
    mcfg.xbarCols = 128;
    mcfg.fragSize = frag;
    mcfg.inputBits = 16;
    cache[frag] = arch::mapLayer(*st, mcfg);
    states.push_back(std::move(st));
    return &cache[frag];
}

void
BM_CrossbarMvm(benchmark::State &state)
{
    const int frag = static_cast<int>(state.range(0));
    arch::MappedLayer *layer = sharedLayer(frag);
    arch::EngineConfig cfg;
    arch::CrossbarEngine engine(*layer, cfg);
    sim::ActivationModel act = sim::ActivationModel::calibratedResNet50();
    Rng rng(2);
    auto inputs = act.sampleVector(rng, 16 * 9);
    for (auto _ : state) {
        auto out = engine.mvm(inputs);
        benchmark::DoNotOptimize(out);
    }
}

void
BM_CrossbarMvmBatch(benchmark::State &state)
{
    const int frag = 8;
    const int presentations = static_cast<int>(state.range(0));
    arch::MappedLayer *layer = sharedLayer(frag);
    arch::EngineConfig cfg;
    arch::CrossbarEngine engine(*layer, cfg);
    sim::ActivationModel act = sim::ActivationModel::calibratedResNet50();
    Rng rng(2);
    std::vector<std::vector<uint32_t>> batch;
    for (int i = 0; i < presentations; ++i)
        batch.push_back(act.sampleVector(rng, 16 * 9));
    for (auto _ : state) {
        auto out = engine.mvmBatch(batch);
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(state.iterations() * presentations);
}

void
BM_FragmentEic(benchmark::State &state)
{
    Rng rng(3);
    std::vector<uint32_t> vals(4096);
    for (auto &v : vals)
        v = static_cast<uint32_t>(rng.below(1u << 16));
    const int frag = static_cast<int>(state.range(0));
    for (auto _ : state) {
        arch::EicStats stats(16);
        stats.recordVector(vals, frag);
        benchmark::DoNotOptimize(stats.averageEic());
    }
}

void
BM_PolarizationProjection(benchmark::State &state)
{
    Tensor w({64, 64, 3, 3});
    Rng rng(4);
    w.fillGaussian(rng, 0.0f, 1.0f);
    admm::FragmentPlan plan = admm::FragmentPlan::forConv(
        64, 64, 3, 8, admm::PolarizationPolicy::CMajor);
    for (auto _ : state) {
        admm::WeightView v = admm::WeightView::conv(w);
        auto signs = admm::computeSigns(v, plan);
        admm::projectPolarization(v, plan, signs);
        benchmark::DoNotOptimize(signs.countPositive());
    }
}

void
BM_AdcTransfer(benchmark::State &state)
{
    reram::AdcModel adc({4, 2.1});
    double x = 0.0;
    for (auto _ : state) {
        x += 0.37;
        if (x > 24.0)
            x = 0.0;
        benchmark::DoNotOptimize(adc.quantize(x, 24.0));
    }
}

} // namespace

BENCHMARK(BM_CrossbarMvm)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_CrossbarMvmBatch)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FragmentEic)->Arg(4)->Arg(128)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_PolarizationProjection)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AdcTransfer);

BENCHMARK_MAIN();
