/**
 * @file
 * Micro-benchmarks of the runtime-dispatched hot-path kernels
 * (common/simd.hh): the four primitives, the tensor kernels built on
 * them (matmul / matmulTransposeB / im2col) and the full
 * CrossbarEngine presentation loop — each timed in scalar mode and in
 * the dispatched (best-available) mode.
 *
 * Self-timed (no external benchmark library) and machine-readable:
 * writes BENCH_kernels.json with per-kernel ns/op and GB/s for both
 * modes so CI tracks the kernel speedup trajectory. Every pair is also
 * cross-checked bitwise before timing — a scalar/vector divergence
 * fails the run (non-zero exit), so the perf tracker doubles as a
 * determinism tripwire.
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "arch/engine.hh"
#include "common/logging.hh"
#include "common/simd.hh"
#include "obs/run_manifest.hh"
#include "tensor/ops.hh"

using namespace forms;

namespace {

bool g_identical = true;

/** Best-of-3 ns per call of `fn`, auto-scaling the inner repeat. */
template <typename Fn>
double
nsPerCall(Fn &&fn)
{
    using clock = std::chrono::steady_clock;
    fn();   // warm-up (and first-touch)
    // Scale reps so one trial runs a few milliseconds.
    int64_t reps = 1;
    for (;;) {
        const auto t0 = clock::now();
        for (int64_t i = 0; i < reps; ++i)
            fn();
        const double ns = std::chrono::duration<double, std::nano>(
                              clock::now() - t0).count();
        if (ns >= 4e6 || reps >= (int64_t(1) << 28))
            break;
        reps *= 2;
    }
    double best = 0.0;
    for (int trial = 0; trial < 3; ++trial) {
        const auto t0 = clock::now();
        for (int64_t i = 0; i < reps; ++i)
            fn();
        const double ns = std::chrono::duration<double, std::nano>(
                              clock::now() - t0).count() /
            static_cast<double>(reps);
        if (trial == 0 || ns < best)
            best = ns;
    }
    return best;
}

struct KernelRow
{
    std::string name;
    int64_t n = 0;       //!< elements (or presentations) per call
    int64_t bytes = 0;   //!< bytes moved per call (for GB/s)
    double scalarNs = 0.0;
    double dispatchNs = 0.0;
};

std::vector<KernelRow> g_rows;

double
gbps(int64_t bytes, double ns)
{
    return ns > 0.0 ? static_cast<double>(bytes) / ns : 0.0;
}

void
report(KernelRow row)
{
    std::printf("%-18s n=%-7lld scalar %10.1f ns  dispatch %10.1f ns  "
                "(%5.2fx, %6.2f GB/s)\n",
                row.name.c_str(), static_cast<long long>(row.n),
                row.scalarNs, row.dispatchNs,
                row.dispatchNs > 0.0 ? row.scalarNs / row.dispatchNs
                                     : 0.0,
                gbps(row.bytes, row.dispatchNs));
    g_rows.push_back(std::move(row));
}

void
mismatch(const char *what)
{
    std::printf("BIT-IDENTITY FAILURE: scalar and dispatched %s "
                "disagree\n",
                what);
    g_identical = false;
}

/** The four dispatch primitives, sized to force tail lanes. */
void
benchPrimitives()
{
    constexpr int64_t kN = 4096 + 3;
    const simd::Kernels &sk = simd::kernels(simd::Mode::Scalar);
    const simd::Kernels &dk = simd::kernels(simd::Mode::Auto);

    Rng rng(42);
    std::vector<double> d_acc(kN), d_x(kN);
    std::vector<float> f_y(kN), f_x(kN), f_a(kN), f_b(kN);
    for (int64_t i = 0; i < kN; ++i) {
        d_x[i] = rng.gaussian(0.0, 1.0);
        d_acc[i] = rng.gaussian(0.0, 1.0);
        f_x[i] = static_cast<float>(rng.gaussian(0.0, 1.0));
        f_y[i] = static_cast<float>(rng.gaussian(0.0, 1.0));
        f_a[i] = static_cast<float>(rng.gaussian(0.0, 1.0));
        f_b[i] = static_cast<float>(rng.gaussian(0.0, 1.0));
    }

    // Correctness first: identical bits on every ragged size.
    for (int64_t n : {int64_t(0), int64_t(1), int64_t(7), kN}) {
        std::vector<double> d_ref = d_acc, d_got = d_acc;
        sk.addF64(d_ref.data(), d_x.data(), n);
        dk.addF64(d_got.data(), d_x.data(), n);
        if (std::memcmp(d_ref.data(), d_got.data(),
                        static_cast<size_t>(kN) * sizeof(double)) != 0)
            mismatch("addF64");

        std::vector<float> f_ref = f_y, f_got = f_y;
        sk.axpyF32(f_ref.data(), f_x.data(), 1.7f, n);
        dk.axpyF32(f_got.data(), f_x.data(), 1.7f, n);
        if (std::memcmp(f_ref.data(), f_got.data(),
                        static_cast<size_t>(kN) * sizeof(float)) != 0)
            mismatch("axpyF32");

        const double r = sk.dotF32(f_a.data(), f_b.data(), n);
        const double g = dk.dotF32(f_a.data(), f_b.data(), n);
        if (std::memcmp(&r, &g, sizeof(double)) != 0)
            mismatch("dotF32");
    }

    KernelRow row{"addF64", kN, kN * 24, 0.0, 0.0};
    row.scalarNs =
        nsPerCall([&] { sk.addF64(d_acc.data(), d_x.data(), kN); });
    row.dispatchNs =
        nsPerCall([&] { dk.addF64(d_acc.data(), d_x.data(), kN); });
    report(row);

    row = {"axpyF32", kN, kN * 12, 0.0, 0.0};
    row.scalarNs = nsPerCall(
        [&] { sk.axpyF32(f_y.data(), f_x.data(), 1.0001f, kN); });
    row.dispatchNs = nsPerCall(
        [&] { dk.axpyF32(f_y.data(), f_x.data(), 1.0001f, kN); });
    report(row);

    volatile double sink = 0.0;
    row = {"dotF32", kN, kN * 8, 0.0, 0.0};
    row.scalarNs = nsPerCall(
        [&] { sink = sk.dotF32(f_a.data(), f_b.data(), kN); });
    row.dispatchNs = nsPerCall(
        [&] { sink = dk.dotF32(f_a.data(), f_b.data(), kN); });
    (void)sink;
    report(row);

    row = {"copyF32", kN, kN * 8, 0.0, 0.0};
    row.scalarNs =
        nsPerCall([&] { sk.copyF32(f_y.data(), f_x.data(), kN); });
    row.dispatchNs =
        nsPerCall([&] { dk.copyF32(f_y.data(), f_x.data(), kN); });
    report(row);
}

/** Tensor kernels through the process-wide dispatch mode. */
void
benchTensorOps()
{
    Rng rng(43);
    Tensor a({128, 255});   // odd K exercises the dot tail lanes
    Tensor b({255, 128});
    Tensor bt({128, 255});
    Tensor img({8, 16, 31, 31});
    a.fillGaussian(rng, 0.0f, 1.0f);
    b.fillGaussian(rng, 0.0f, 1.0f);
    bt.fillGaussian(rng, 0.0f, 1.0f);
    img.fillUniform(rng, 0.0f, 1.0f);

    struct OpCase
    {
        const char *name;
        std::function<Tensor()> run;
        int64_t bytes;
    };
    const std::vector<OpCase> cases = {
        {"matmul", [&] { return matmul(a, b); },
         (a.numel() + b.numel() + int64_t(128) * 128) * 4},
        {"matmulTransposeB", [&] { return matmulTransposeB(a, bt); },
         (a.numel() + bt.numel() + int64_t(128) * 128) * 4},
        {"im2col", [&] { return im2col(img, 3, 3, 1, 1); },
         (img.numel() +
          img.dim(1) * 9 * img.dim(0) * int64_t(31) * 31) * 4},
    };

    for (const auto &c : cases) {
        simd::setProcessMode(simd::Mode::Scalar);
        const Tensor ref = c.run();
        const double scalar_ns = nsPerCall([&] { c.run(); });
        simd::setProcessMode(simd::Mode::Auto);
        const Tensor got = c.run();
        const double dispatch_ns = nsPerCall([&] { c.run(); });
        if (!got.equals(ref))
            mismatch(c.name);
        report({c.name, ref.numel(), c.bytes, scalar_ns, dispatch_ns});
    }
    simd::setProcessMode(simd::Mode::Auto);
}

/** The full engine presentation loop, noise + variation + ADC on. */
void
benchEngine()
{
    using namespace forms::arch;

    const int cout = 32, cin = 16, k = 3, frag = 8;
    Tensor weight({cout, cin, k, k});
    Tensor grad({cout, cin, k, k});
    Rng rng(44);
    weight.fillGaussian(rng, 0.0f, 0.5f);
    admm::LayerState state;
    state.name = "bench";
    state.param = {"w", &weight, &grad, true, false};
    state.plan = admm::FragmentPlan::forConv(
        cout, cin, k, frag, admm::PolarizationPolicy::WMajor);
    admm::WeightView v = admm::WeightView::conv(weight);
    state.signs = admm::computeSigns(v, state.plan);
    admm::projectPolarization(v, state.plan, *state.signs);
    admm::QuantSpec q;
    q.bits = 8;
    state.quantScale = admm::projectQuantize(v, q);

    MappingConfig mcfg;
    mcfg.xbarRows = 64;
    mcfg.xbarCols = 64;
    mcfg.fragSize = frag;
    mcfg.inputBits = 8;
    const MappedLayer mapped = mapLayer(state, mcfg);

    EngineConfig ecfg;
    ecfg.adcBits = 4;
    ecfg.cell.variationSigma = 0.1;
    ecfg.readNoiseSigma = 0.02;

    const size_t rows = static_cast<size_t>(mapped.logicalRows);
    std::vector<std::vector<uint32_t>> batch(16);
    Rng irng(45);
    for (auto &pres : batch) {
        pres.resize(rows);
        for (auto &x : pres)
            x = irng.bernoulli(0.3)
                ? 0u
                : static_cast<uint32_t>(irng.below(255) + 1);
    }

    EngineConfig scalar_cfg = ecfg;
    scalar_cfg.simdMode = simd::Mode::Scalar;
    CrossbarEngine scalar_eng(mapped, scalar_cfg);
    CrossbarEngine dispatch_eng(mapped, ecfg);

    // Bit-identity across dispatch modes: same outputs, same stats.
    EngineStats s_ref, s_got;
    const auto out_ref = scalar_eng.mvmBatch(batch, &s_ref);
    const auto out_got = dispatch_eng.mvmBatch(batch, &s_got);
    bool same = out_ref.size() == out_got.size();
    for (size_t i = 0; same && i < out_ref.size(); ++i)
        same = out_ref[i].size() == out_got[i].size() &&
            std::memcmp(out_ref[i].data(), out_got[i].data(),
                        out_ref[i].size() * sizeof(double)) == 0;
    same = same &&
        std::memcmp(&s_ref.adcEnergyPj, &s_got.adcEnergyPj,
                    sizeof(double)) == 0 &&
        s_ref.bitCycles == s_got.bitCycles &&
        s_ref.adcSamples == s_got.adcSamples;
    if (!same)
        mismatch("mvmBatch");

    // Throughput proxy: one accumulated double per ADC sample (the
    // tile sweep feeds exactly the converted columns), so bytes =
    // adcSamples * 8 per batch — a stable lower bound across PRs.
    const int64_t bytes =
        static_cast<int64_t>(s_ref.adcSamples * sizeof(double));
    KernelRow row{"engine_mvmBatch",
                  static_cast<int64_t>(batch.size()), bytes, 0.0, 0.0};
    row.scalarNs = nsPerCall([&] {
        scalar_eng.resetPresentationStream();
        scalar_eng.mvmBatch(batch);
    });
    row.dispatchNs = nsPerCall([&] {
        dispatch_eng.resetPresentationStream();
        dispatch_eng.mvmBatch(batch);
    });
    report(row);
}

void
writeJson()
{
    FILE *json = std::fopen("BENCH_kernels.json", "w");
    if (!json) {
        warn("cannot write BENCH_kernels.json");
        return;
    }
    obs::RunManifest manifest = obs::RunManifest::collect("micro_kernels");
    obs::JsonWriter w(json);
    w.beginObject();
    obs::writeBenchHeader(w, manifest);
    w.field("bench", "micro_kernels");
    w.field("dispatch", simd::modeName(simd::processMode()));
#if defined(FORMS_BUILD_TYPE)
    w.field("build", FORMS_BUILD_TYPE);
#else
    w.field("build", "unknown");
#endif
    w.field("bit_identical", g_identical);
    w.key("kernels");
    w.beginArray();
    for (const KernelRow &r : g_rows) {
        w.beginObject();
        w.field("name", r.name);
        w.field("n", r.n);
        w.field("scalar_ns_op", r.scalarNs);
        w.field("dispatch_ns_op", r.dispatchNs);
        w.field("scalar_gbps", gbps(r.bytes, r.scalarNs));
        w.field("dispatch_gbps", gbps(r.bytes, r.dispatchNs));
        w.field("speedup", r.dispatchNs > 0.0
                               ? r.scalarNs / r.dispatchNs
                               : 0.0);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    std::fputc('\n', json);
    std::fclose(json);
    std::printf("wrote BENCH_kernels.json (%zu kernels, dispatch=%s)\n",
                g_rows.size(), simd::modeName(simd::processMode()));
}

} // namespace

int
main()
{
    simd::printBenchBanner("bench_micro_kernels");
    benchPrimitives();
    benchTensorOps();
    benchEngine();
    writeJson();
    if (!g_identical) {
        std::printf("FAILED: scalar and dispatched kernels are not "
                    "bit-identical\n");
        return 1;
    }
    return 0;
}
