/**
 * @file
 * Regenerates paper Table III: FORMS (fragment size 8) vs. ISAAC MCU
 * component specification — per-component power and area, built from
 * the circuit models (the ADC entries come from the fitted scaling
 * law, not from hard-coded totals).
 */

#include <cstdio>

#include "common/logging.hh"
#include "common/table.hh"
#include "reram/components.hh"

using namespace forms;
using namespace forms::reram;

namespace {

void
printMcu(const char *title, const McuCost &cost)
{
    Table t({"Component", "Spec", "Count", "Power (mW)", "Area (mm^2)"});
    for (const auto &c : cost.components) {
        t.row()
            .cell(c.name)
            .cell(c.spec)
            .cell(static_cast<int64_t>(c.count))
            .cell(c.powerMw, 4)
            .cell(strfmt("%.7f", c.areaMm2));
    }
    t.row().cell("TOTAL").cell("").cell("")
        .cell(cost.totalPowerMw, 4)
        .cell(strfmt("%.7f", cost.totalAreaMm2));
    t.print(title);
}

} // namespace

int
main()
{
    std::printf("Table III: MCU hardware specification, FORMS vs ISAAC\n");

    printMcu("FORMS (fragment size 8)", buildMcuCost(McuConfig::forms(8)));
    printMcu("ISAAC", buildMcuCost(McuConfig::isaac()));

    std::printf("\nPaper reference totals: FORMS ADC 15.2 mW / 0.0091 mm^2"
                " (32x 4-bit @ 2.1 GHz); ISAAC ADC 16 mW / 0.0096 mm^2"
                " (8x 8-bit @ 1.2 GHz).\n");

    // Other fragment sizes (paper: 16/8/4 -> 5/4/3-bit ADCs).
    Table t({"Fragment size", "ADC bits", "ADC GHz", "ADCs/crossbar",
             "MCU power (mW)", "MCU area (mm^2)"});
    for (int frag : {4, 8, 16}) {
        McuConfig cfg = McuConfig::forms(frag);
        McuCost cost = buildMcuCost(cfg);
        t.row()
            .cell(static_cast<int64_t>(frag))
            .cell(static_cast<int64_t>(cfg.adcBits))
            .cell(cfg.adcFreqGhz, 2)
            .cell(static_cast<int64_t>(cfg.adcsPerCrossbar))
            .cell(cost.totalPowerMw, 3)
            .cell(strfmt("%.6f", cost.totalAreaMm2));
    }
    t.print("FORMS MCU across fragment sizes (derived from the "
            "ADC scaling law)");
    return 0;
}
