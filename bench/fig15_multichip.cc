/**
 * @file
 * Multi-chip pipeline scaling study (beyond the paper's single-chip
 * evaluation — "fig15" continues the paper's figure numbering): the
 * ResNet zoo plus two early-layer-bound convnets partitioned across
 * {1, 2, 4, 8} simulated chips by compile::Schedule and executed on
 * sim::PipelineRuntime, in four scheduler modes per chip count:
 *
 *   - contiguous       — the PR 3 baseline: MAC-balanced contiguous
 *                        stages, phases serialized within a chip;
 *   - tile_pipelined   — same partition, intra-chip tile pipelining
 *                        on (layer L's ADC phase overlaps layer
 *                        L+1's input quantization);
 *   - replicated_tile  — ADC-latency-balanced partition with stage
 *                        replication enabled (threshold 0.9, up to 4
 *                        replicas) plus tile pipelining;
 *   - eic_time         — the same, but balancing measured zero-skip
 *                        time (WorkModel::EicTime): each net is first
 *                        calibrated on a disjoint split and the
 *                        per-node input bit-densities are stamped on
 *                        the graph (Node::eicDensity), so the DP
 *                        balances the ADC time the engine will
 *                        actually spend rather than the dense worst
 *                        case.
 *
 * Emits BENCH_pipeline.json: per mode, modeled fps, speedup over the
 * same mode at 1 chip, bubble fraction, stage/replica shape, overlap
 * savings, measured ADC bit-cycle activity (adc_bit_cycles /
 * adc_skipped_cycles / eic_fraction, per mode and per chip) and
 * per-chip utilization — and the headline fps gain / bubble drop of
 * eic_time over the contiguous baseline. Also cross-checks that
 * pipelined logits are bit-identical to GraphRuntime in every mode at
 * every chip count (the DESIGN.md §5 contract — chips and replicas
 * shard the model, not the arithmetic; the EIC annotations move only
 * modeled time, never numerics).
 *
 * Also emits trace_fig15.json, a Perfetto-loadable timeline of one
 * representative configuration (resnet_small, 4 chips,
 * replicated_tile) reconstructed by PipelineRuntime's trace sink
 * (docs/OBSERVABILITY.md), and cross-checks that the per-chip busy
 * totals in the trace agree with ChipReport::busyNs.
 */

#include <cmath>
#include <cstdio>

#include "common/logging.hh"
#include "common/simd.hh"
#include "common/table.hh"
#include "compile/passes.hh"
#include "compile/schedule.hh"
#include "nn/layers.hh"
#include "nn/zoo.hh"
#include "obs/run_manifest.hh"
#include "obs/trace.hh"
#include "sim/calibrator.hh"
#include "sim/graph_runtime.hh"
#include "sim/pipeline_runtime.hh"

using namespace forms;
using namespace forms::sim;

namespace {

/**
 * Deep enough an image stream that the pipeline's fill/drain bubble
 * floor — (S-1)/(S+M-1) for S stages and M micro-batches — does not
 * dominate the measurement: at 4 stages and 16 single-image
 * micro-batches the floor is ~0.16, so the remaining bubble reflects
 * stage imbalance, which is what the schedule modes differ on.
 */
constexpr int kImages = 16;
constexpr int kMicroBatch = 1;
constexpr int kCalibImages = 4;  //!< disjoint EIC-calibration split
const int kChipCounts[] = {1, 2, 4, 8};
constexpr double kReplicateThreshold = 0.9;
constexpr int kMaxReplicas = 4;

/** The scheduler/timing configurations under comparison. */
struct Mode
{
    const char *name;
    compile::WorkModel workModel;
    double replicateThreshold;
    bool tileOverlap;
};

const Mode kModes[] = {
    {"contiguous", compile::WorkModel::Macs, 0.0, false},
    {"tile_pipelined", compile::WorkModel::Macs, 0.0, true},
    {"replicated_tile", compile::WorkModel::AdcTime,
     kReplicateThreshold, true},
    {"eic_time", compile::WorkModel::EicTime, kReplicateThreshold,
     true},
};
constexpr size_t kNumModes = sizeof(kModes) / sizeof(kModes[0]);

/** One (network, chip count, mode) measurement. */
struct ModeResult
{
    PipelineReport rep;
    int64_t cutBytesPerSample = 0;
    int stages = 0;
    int maxReplicas = 1;        //!< widest stage in the schedule
    bool logitsMatchGraph = false;
};

struct ChipCountResult
{
    int chips = 0;
    ModeResult modes[kNumModes];
};

struct NetResult
{
    std::string name;
    int64_t crossbars = 0;   //!< contiguous-mode programmed crossbars
    std::vector<ChipCountResult> points;
};

RuntimeConfig
benchConfig()
{
    RuntimeConfig rcfg;
    rcfg.mapping.fragSize = 8;
    rcfg.mapping.inputBits = 8;
    rcfg.engine.adcBits = 4;
    return rcfg;
}

/**
 * Early-layer-bound convnet: a wide full-resolution conv right after
 * the stem dominates the ADC-limited critical path (the shape the
 * replication pass exists for — no contiguous partition can balance
 * it).
 */
std::unique_ptr<nn::Network>
buildStemWide(Rng &rng)
{
    auto net = std::make_unique<nn::Network>();
    net->emplace<nn::Conv2D>("s0", 3, 12, 3, 1, 1, rng);
    net->emplace<nn::ReLU>("r0");
    net->emplace<nn::Conv2D>("s1", 12, 12, 3, 1, 1, rng);
    net->emplace<nn::ReLU>("r1");
    net->emplace<nn::MaxPool2D>("p1", 2, 2);
    net->emplace<nn::Conv2D>("s2", 12, 12, 3, 1, 1, rng);
    net->emplace<nn::ReLU>("r2");
    net->emplace<nn::MaxPool2D>("p2", 2, 2);
    net->emplace<nn::Conv2D>("s3", 12, 12, 3, 1, 1, rng);
    net->emplace<nn::ReLU>("r3");
    net->emplace<nn::Flatten>("flat");
    net->emplace<nn::Dense>("fc", 12 * 8 * 8, 10, rng);
    return net;
}

/**
 * ReLU-sparse variant of the stem net: every conv bias is shifted
 * firmly negative, so the ReLUs zero most activations and every layer
 * after s0 sees a sparse, low-EIC input stream — only s0 itself keeps
 * eating the dense uniform images. AdcTime charges all layers the
 * dense worst case and balances accordingly; the measured densities
 * tell EicTime that the post-ReLU layers are far cheaper than they
 * look, which shifts the partition (and the replication budget)
 * toward the genuinely expensive dense stem.
 */
std::unique_ptr<nn::Network>
buildReluSparse(Rng &rng)
{
    auto net = buildStemWide(rng);
    for (size_t i = 0; i < net->size(); ++i) {
        auto *conv = dynamic_cast<nn::Conv2D *>(&net->layer(i));
        if (!conv)
            continue;
        Tensor &b = conv->bias();
        for (int64_t j = 0; j < b.numel(); ++j)
            b.data()[j] -= 0.5f;
    }
    return net;
}

/** Batch-summed zero-skip activity of a pipeline run's ADC phases. */
double
reportEicFraction(const PipelineReport &rep)
{
    uint64_t bits = 0;
    uint64_t skipped = 0;
    for (const ChipReport &c : rep.chips) {
        bits += c.adcBitCycles;
        skipped += c.adcSkippedCycles;
    }
    const uint64_t all = bits + skipped;
    return all == 0
        ? 1.0
        : static_cast<double>(bits) / static_cast<double>(all);
}

/** Compile, partition per (chip count, mode), pipeline, cross-check. */
NetResult
runNet(const std::string &name, nn::Network &net)
{
    NetResult r;
    r.name = name;

    auto graph = compile::lowerNetwork(net);
    graph.inferShapes({3, 32, 32});
    const int folded = compile::foldBatchNorm(graph);
    auto states = snapshotCompress(net, 8, 8);

    // Calibrate on a disjoint split and stamp the measured per-node
    // input bit-densities onto the graph (Node::eicDensity) for the
    // eic_time schedule mode. The bench executes per-presentation
    // (benchConfig leaves RuntimeConfig::scaleMode at its default),
    // so the static scales attachTo also stamps never reach the
    // engines — the annotations move modeled time only, never logits.
    {
        Rng crng(19);
        Tensor calib({kCalibImages, 3, 32, 32});
        calib.fillUniform(crng, 0.0f, 1.0f);
        Calibrator cal(graph, states, benchConfig());
        cal.observe(calib);
        cal.table().attachTo(graph);
    }

    Rng rng(7);
    Tensor batch({kImages, 3, 32, 32});
    batch.fillUniform(rng, 0.0f, 1.0f);

    // Bit-identity reference: the plain DAG executor on one engine set.
    GraphRuntime gref(graph, states, benchConfig());
    const Tensor ref_logits = gref.forward(batch);

    for (int chips : kChipCounts) {
        ChipCountResult point;
        point.chips = chips;
        for (size_t mi = 0; mi < kNumModes; ++mi) {
            const Mode &mode = kModes[mi];
            compile::ScheduleConfig scfg;
            scfg.chips = chips;
            scfg.workModel = mode.workModel;
            scfg.replicateThreshold = mode.replicateThreshold;
            scfg.maxReplicas = kMaxReplicas;
            auto sched = compile::Schedule::partition(graph, scfg);

            ModeResult &mr = point.modes[mi];
            mr.cutBytesPerSample = sched.cutBytesPerSample();
            mr.stages = sched.stages();
            for (int s = 0; s < sched.stages(); ++s)
                mr.maxReplicas =
                    std::max(mr.maxReplicas, sched.stageWidth(s));

            PipelineRuntimeConfig pcfg;
            pcfg.runtime = benchConfig();
            pcfg.microBatch = kMicroBatch;
            pcfg.tile.overlap = mode.tileOverlap;

            PipelineRuntime rt(graph, std::move(sched), states, pcfg);
            if (mi == 0)
                r.crossbars = rt.totalCrossbars();
            const Tensor logits = rt.forward(batch, &mr.rep);
            mr.logitsMatchGraph = logits.equals(ref_logits);
        }
        r.points.push_back(std::move(point));
    }

    Table t({"Chips", "Mode", "Modeled fps", "Speedup", "Bubble",
             "Stages", "Max repl", "EIC frac", "Saved (us)", "Logits"});
    for (const auto &p : r.points) {
        for (size_t mi = 0; mi < kNumModes; ++mi) {
            const ModeResult &m = p.modes[mi];
            const double base = r.points[0].modes[mi].rep.modeledFps();
            t.row().cell(static_cast<int64_t>(p.chips))
                .cell(kModes[mi].name)
                .cell(m.rep.modeledFps(), 1)
                .cell(base > 0.0 ? m.rep.modeledFps() / base : 0.0, 2)
                .cell(m.rep.bubbleFraction, 3)
                .cell(static_cast<int64_t>(m.stages))
                .cell(static_cast<int64_t>(m.maxReplicas))
                .cell(reportEicFraction(m.rep), 3)
                .cell(m.rep.overlapSavedNs / 1e3, 1)
                .cell(m.logitsMatchGraph ? "EXACT" : "DIVERGED");
        }
    }
    t.print(strfmt("%s pipelined across chips (batch %d, micro-batch "
                   "%d, %d BN folded, %lld crossbars)",
                   name.c_str(), kImages, kMicroBatch, folded,
                   static_cast<long long>(r.crossbars)));
    return r;
}

void
writeMode(obs::JsonWriter &w, const ModeResult &m, double base_fps)
{
    w.beginObject();
    w.field("modeled_fps", m.rep.modeledFps());
    w.field("speedup_vs_1chip",
            base_fps > 0.0 ? m.rep.modeledFps() / base_fps : 0.0);
    w.field("makespan_us", m.rep.makespanNs / 1e3);
    w.field("bubble_fraction", m.rep.bubbleFraction);
    w.field("stages", m.stages);
    w.field("replicated", m.maxReplicas > 1);
    w.field("max_replicas", m.maxReplicas);
    w.field("overlap_saved_us", m.rep.overlapSavedNs / 1e3);
    w.field("transfer_us", m.rep.transferNs / 1e3);
    w.field("transfer_nj", m.rep.transferPj / 1e3);
    w.field("cut_bytes_per_sample", m.cutBytesPerSample);
    w.field("logits_match_graph_runtime", m.logitsMatchGraph);
    uint64_t bit_cycles = 0;
    uint64_t skipped_cycles = 0;
    for (const ChipReport &ch : m.rep.chips) {
        bit_cycles += ch.adcBitCycles;
        skipped_cycles += ch.adcSkippedCycles;
    }
    w.field("adc_bit_cycles", bit_cycles);
    w.field("adc_skipped_cycles", skipped_cycles);
    w.field("eic_fraction", reportEicFraction(m.rep));
    w.key("per_chip");
    w.beginArray();
    for (const ChipReport &ch : m.rep.chips) {
        w.beginObject();
        w.field("chip", ch.chip);
        w.field("stage", ch.stage);
        w.field("replicas", ch.replicas);
        w.field("nodes", static_cast<uint64_t>(ch.nodes));
        w.field("programmed", static_cast<uint64_t>(ch.programmedNodes));
        w.field("crossbars", ch.crossbars);
        w.field("utilization", ch.utilization);
        w.field("busy_us", ch.busyNs / 1e3);
        w.field("compute_us", ch.computeNs / 1e3);
        w.field("quant_us", ch.quantNs / 1e3);
        w.field("transfer_in_us", ch.transferInNs / 1e3);
        w.field("eic_fraction", ch.eicFraction());
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

void
writePipelineJson(const std::vector<NetResult> &results)
{
    FILE *json = std::fopen("BENCH_pipeline.json", "w");
    if (!json) {
        warn("cannot write BENCH_pipeline.json");
        return;
    }
    obs::RunManifest manifest =
        obs::RunManifest::collect("fig15_multichip_pipeline");
    manifest.set("images", kImages)
        .set("micro_batch", kMicroBatch)
        .set("replicate_threshold", kReplicateThreshold)
        .set("max_replicas", kMaxReplicas);
    obs::JsonWriter w(json);
    w.beginObject();
    obs::writeBenchHeader(w, manifest);
    w.field("bench", "fig15_multichip_pipeline");
    w.field("threads", ThreadPool::global().threads());
    w.field("images", kImages);
    w.field("micro_batch", kMicroBatch);
    w.field("replicate_threshold", kReplicateThreshold);
    w.field("max_replicas", kMaxReplicas);
    w.key("networks");
    w.beginArray();
    for (const NetResult &r : results) {
        w.beginObject();
        w.field("name", r.name);
        w.field("crossbars", r.crossbars);
        w.key("chip_counts");
        w.beginArray();
        for (size_t i = 0; i < r.points.size(); ++i) {
            const ChipCountResult &p = r.points[i];
            const ModeResult &base = p.modes[0];
            const ModeResult &best = p.modes[kNumModes - 1];
            w.beginObject();
            w.field("chips", p.chips);
            for (size_t mi = 0; mi < kNumModes; ++mi) {
                w.key(kModes[mi].name);
                writeMode(w, p.modes[mi],
                          r.points[0].modes[mi].rep.modeledFps());
            }
            // The headline deltas the full feature stack (replication
            // + intra-chip tile pipelining + EIC-aware balance) buys
            // over the PR 3 contiguous schedule.
            const double base_fps = base.rep.modeledFps();
            w.field("fps_gain_vs_contiguous",
                    base_fps > 0.0 ? best.rep.modeledFps() / base_fps
                                   : 0.0);
            w.field("bubble_drop_vs_contiguous",
                    base.rep.bubbleFraction - best.rep.bubbleFraction);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.endObject();
    std::fputc('\n', json);
    std::fclose(json);
    std::printf("wrote BENCH_pipeline.json (%zu networks, %d threads)\n",
                results.size(), ThreadPool::global().threads());
}

/**
 * Trace one representative configuration (resnet_small, 4 chips,
 * replicated_tile) into trace_fig15.json and cross-check the trace
 * against the report: per chip, the "stage"-category slice durations
 * must sum to ChipReport::busyNs — the trace is a reconstruction of
 * the same modeled timeline, not an independent estimate.
 */
bool
writeTraceArtifact()
{
    Rng rng(11);
    auto net = nn::buildResNetSmall(rng, 10, 8);
    auto graph = compile::lowerNetwork(*net);
    graph.inferShapes({3, 32, 32});
    compile::foldBatchNorm(graph);
    auto states = snapshotCompress(*net, 8, 8);

    compile::ScheduleConfig scfg;
    scfg.chips = 4;
    scfg.workModel = compile::WorkModel::AdcTime;
    scfg.replicateThreshold = kReplicateThreshold;
    scfg.maxReplicas = kMaxReplicas;
    auto sched = compile::Schedule::partition(graph, scfg);

    PipelineRuntimeConfig pcfg;
    pcfg.runtime = benchConfig();
    pcfg.microBatch = kMicroBatch;
    pcfg.tile.overlap = true;

    obs::TraceSession session;
    session.install();   // host spans (programming, per-node work)
    pcfg.trace = &session;

    Rng brng(7);
    Tensor batch({kImages, 3, 32, 32});
    batch.fillUniform(brng, 0.0f, 1.0f);

    PipelineRuntime rt(graph, std::move(sched), states, pcfg);
    PipelineReport rep;
    rt.forward(batch, &rep);
    session.uninstall();

    // Per-chip busy totals from the trace (pid = chip + 1, the
    // "stage" track), against the report's ChipReport::busyNs.
    std::vector<double> trace_busy_us(rep.chips.size(), 0.0);
    for (const obs::TraceEvent &e : session.events()) {
        if (e.type != obs::TraceEvent::Type::Complete ||
            e.cat != "stage")
            continue;
        const size_t chip = static_cast<size_t>(e.pid - 1);
        if (chip < trace_busy_us.size())
            trace_busy_us[chip] += e.durUs;
    }
    bool busy_match = true;
    for (size_t c = 0; c < rep.chips.size(); ++c) {
        const double want_us = rep.chips[c].busyNs / 1e3;
        const double got_us = trace_busy_us[c];
        // Rounding tolerance: the trace stores each slice as its own
        // double in microseconds, so totals differ from the report's
        // nanosecond accumulation only by summation rounding.
        const double tol = 1e-6 * std::max(1.0, std::abs(want_us));
        if (std::abs(got_us - want_us) > tol) {
            std::printf("TRACE MISMATCH: chip %zu busy %.6f us in "
                        "trace vs %.6f us in report\n",
                        c, got_us, want_us);
            busy_match = false;
        }
    }

    FILE *f = std::fopen("trace_fig15.json", "w");
    if (!f) {
        warn("cannot write trace_fig15.json");
        return false;
    }
    obs::JsonWriter w(f, /*pretty=*/false);
    session.writeJson(w);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote trace_fig15.json (resnet_small, 4 chips, "
                "replicated_tile): per-chip busy totals %s the "
                "report\n",
                busy_match ? "MATCH" : "DIVERGE FROM");
    return busy_match;
}

} // namespace

int
main()
{
    simd::printBenchBanner("bench_fig15_multichip");
    std::printf("Multi-chip pipelined graph scheduler: ResNet zoo + "
                "early-layer-bound convnets across %d / %d / %d / %d "
                "chips,\nmodes: contiguous (PR 3) | tile_pipelined | "
                "replicated_tile | eic_time (threshold %.2f, <= %d "
                "replicas)\n",
                kChipCounts[0], kChipCounts[1], kChipCounts[2],
                kChipCounts[3], kReplicateThreshold, kMaxReplicas);

    std::vector<NetResult> results;
    {
        Rng rng(11);
        auto net = nn::buildResNetSmall(rng, 10, 8);
        results.push_back(runNet("resnet_small", *net));
    }
    {
        Rng rng(12);
        auto net = nn::buildResNetDeep(rng, 10, 8);
        results.push_back(runNet("resnet_deep", *net));
    }
    {
        Rng rng(13);
        auto net = buildStemWide(rng);
        results.push_back(runNet("stem_wide", *net));
    }
    {
        Rng rng(13);
        auto net = buildReluSparse(rng);
        results.push_back(runNet("relu_sparse", *net));
    }
    writePipelineJson(results);
    const bool trace_ok = writeTraceArtifact();

    // The headline contracts, one line each: bit-exactness in every
    // mode; the full feature stack must beat the PR 3 baseline at 4
    // chips (lower bubble, higher modeled fps); and on the ReLU-sparse
    // net the EIC-aware balance must not lose to the dense-worst-case
    // AdcTime balance it refines — that net is the shape the measured
    // densities exist for.
    bool all_exact = true;
    bool all_faster = true;
    bool eic_wins = true;
    for (const auto &r : results) {
        for (const auto &p : r.points) {
            for (const auto &m : p.modes)
                all_exact = all_exact && m.logitsMatchGraph;
            if (p.chips == 4) {
                const auto &base = p.modes[0].rep;
                const auto &best = p.modes[kNumModes - 1].rep;
                all_faster = all_faster &&
                    best.modeledFps() > base.modeledFps() &&
                    best.bubbleFraction < base.bubbleFraction;
                if (r.name == "relu_sparse") {
                    const auto &repl = p.modes[2].rep;
                    const auto &eic = p.modes[3].rep;
                    eic_wins =
                        eic.modeledFps() >= repl.modeledFps() &&
                        eic.bubbleFraction <= repl.bubbleFraction;
                }
            }
        }
    }
    std::printf("\npipelined logits vs GraphRuntime at every chip "
                "count and mode: %s\n",
                all_exact ? "EXACT" : "DIVERGED");
    std::printf("eic_time beats contiguous at 4 chips "
                "(fps up, bubble down): %s\n",
                all_faster ? "YES" : "NO");
    std::printf("eic_time >= replicated_tile on relu_sparse at 4 "
                "chips (fps, bubble): %s\n",
                eic_wins ? "YES" : "NO");
    std::printf("trace busy totals agree with ChipReport: %s\n",
                trace_ok ? "YES" : "NO");
    return all_exact && all_faster && eic_wins && trace_ok ? 0 : 1;
}
