/**
 * @file
 * Multi-chip pipeline scaling study (beyond the paper's single-chip
 * evaluation — "fig15" continues the paper's figure numbering): the
 * ResNet zoo plus an early-layer-bound convnet partitioned across
 * {1, 2, 4, 8} simulated chips by compile::Schedule and executed on
 * sim::PipelineRuntime, in three scheduler modes per chip count:
 *
 *   - contiguous       — the PR 3 baseline: MAC-balanced contiguous
 *                        stages, phases serialized within a chip;
 *   - tile_pipelined   — same partition, intra-chip tile pipelining
 *                        on (layer L's ADC phase overlaps layer
 *                        L+1's input quantization);
 *   - replicated_tile  — ADC-latency-balanced partition with stage
 *                        replication enabled (threshold 0.9, up to 4
 *                        replicas) plus tile pipelining.
 *
 * Emits BENCH_pipeline.json: per mode, modeled fps, speedup over the
 * same mode at 1 chip, bubble fraction, stage/replica shape, overlap
 * savings and per-chip utilization — and the headline fps gain /
 * bubble drop of replicated_tile over the contiguous baseline. Also
 * cross-checks that pipelined logits are bit-identical to
 * GraphRuntime in every mode at every chip count (the DESIGN.md §5
 * contract — chips and replicas shard the model, not the
 * arithmetic).
 */

#include <cstdio>

#include "common/logging.hh"
#include "common/simd.hh"
#include "common/table.hh"
#include "compile/passes.hh"
#include "compile/schedule.hh"
#include "nn/layers.hh"
#include "nn/zoo.hh"
#include "sim/graph_runtime.hh"
#include "sim/pipeline_runtime.hh"

using namespace forms;
using namespace forms::sim;

namespace {

constexpr int kImages = 4;
constexpr int kMicroBatch = 1;
const int kChipCounts[] = {1, 2, 4, 8};
constexpr double kReplicateThreshold = 0.9;
constexpr int kMaxReplicas = 4;

/** The scheduler/timing configurations under comparison. */
struct Mode
{
    const char *name;
    compile::WorkModel workModel;
    double replicateThreshold;
    bool tileOverlap;
};

const Mode kModes[] = {
    {"contiguous", compile::WorkModel::Macs, 0.0, false},
    {"tile_pipelined", compile::WorkModel::Macs, 0.0, true},
    {"replicated_tile", compile::WorkModel::AdcTime,
     kReplicateThreshold, true},
};
constexpr size_t kNumModes = sizeof(kModes) / sizeof(kModes[0]);

/** One (network, chip count, mode) measurement. */
struct ModeResult
{
    PipelineReport rep;
    int64_t cutBytesPerSample = 0;
    int stages = 0;
    int maxReplicas = 1;        //!< widest stage in the schedule
    bool logitsMatchGraph = false;
};

struct ChipCountResult
{
    int chips = 0;
    ModeResult modes[kNumModes];
};

struct NetResult
{
    std::string name;
    int64_t crossbars = 0;   //!< contiguous-mode programmed crossbars
    std::vector<ChipCountResult> points;
};

RuntimeConfig
benchConfig()
{
    RuntimeConfig rcfg;
    rcfg.mapping.fragSize = 8;
    rcfg.mapping.inputBits = 8;
    rcfg.engine.adcBits = 4;
    return rcfg;
}

/**
 * Early-layer-bound convnet: a wide full-resolution conv right after
 * the stem dominates the ADC-limited critical path (the shape the
 * replication pass exists for — no contiguous partition can balance
 * it).
 */
std::unique_ptr<nn::Network>
buildStemWide(Rng &rng)
{
    auto net = std::make_unique<nn::Network>();
    net->emplace<nn::Conv2D>("s0", 3, 12, 3, 1, 1, rng);
    net->emplace<nn::ReLU>("r0");
    net->emplace<nn::Conv2D>("s1", 12, 12, 3, 1, 1, rng);
    net->emplace<nn::ReLU>("r1");
    net->emplace<nn::MaxPool2D>("p1", 2, 2);
    net->emplace<nn::Conv2D>("s2", 12, 12, 3, 1, 1, rng);
    net->emplace<nn::ReLU>("r2");
    net->emplace<nn::MaxPool2D>("p2", 2, 2);
    net->emplace<nn::Conv2D>("s3", 12, 12, 3, 1, 1, rng);
    net->emplace<nn::ReLU>("r3");
    net->emplace<nn::Flatten>("flat");
    net->emplace<nn::Dense>("fc", 12 * 8 * 8, 10, rng);
    return net;
}

/** Compile, partition per (chip count, mode), pipeline, cross-check. */
NetResult
runNet(const std::string &name, nn::Network &net)
{
    NetResult r;
    r.name = name;

    auto graph = compile::lowerNetwork(net);
    graph.inferShapes({3, 32, 32});
    const int folded = compile::foldBatchNorm(graph);
    auto states = snapshotCompress(net, 8, 8);

    Rng rng(7);
    Tensor batch({kImages, 3, 32, 32});
    batch.fillUniform(rng, 0.0f, 1.0f);

    // Bit-identity reference: the plain DAG executor on one engine set.
    GraphRuntime gref(graph, states, benchConfig());
    const Tensor ref_logits = gref.forward(batch);

    for (int chips : kChipCounts) {
        ChipCountResult point;
        point.chips = chips;
        for (size_t mi = 0; mi < kNumModes; ++mi) {
            const Mode &mode = kModes[mi];
            compile::ScheduleConfig scfg;
            scfg.chips = chips;
            scfg.workModel = mode.workModel;
            scfg.replicateThreshold = mode.replicateThreshold;
            scfg.maxReplicas = kMaxReplicas;
            auto sched = compile::Schedule::partition(graph, scfg);

            ModeResult &mr = point.modes[mi];
            mr.cutBytesPerSample = sched.cutBytesPerSample();
            mr.stages = sched.stages();
            for (int s = 0; s < sched.stages(); ++s)
                mr.maxReplicas =
                    std::max(mr.maxReplicas, sched.stageWidth(s));

            PipelineRuntimeConfig pcfg;
            pcfg.runtime = benchConfig();
            pcfg.microBatch = kMicroBatch;
            pcfg.tile.overlap = mode.tileOverlap;

            PipelineRuntime rt(graph, std::move(sched), states, pcfg);
            if (mi == 0)
                r.crossbars = rt.totalCrossbars();
            const Tensor logits = rt.forward(batch, &mr.rep);
            mr.logitsMatchGraph = logits.equals(ref_logits);
        }
        r.points.push_back(std::move(point));
    }

    Table t({"Chips", "Mode", "Modeled fps", "Speedup", "Bubble",
             "Stages", "Max repl", "Saved (us)", "Logits"});
    for (const auto &p : r.points) {
        for (size_t mi = 0; mi < kNumModes; ++mi) {
            const ModeResult &m = p.modes[mi];
            const double base = r.points[0].modes[mi].rep.modeledFps();
            t.row().cell(static_cast<int64_t>(p.chips))
                .cell(kModes[mi].name)
                .cell(m.rep.modeledFps(), 1)
                .cell(base > 0.0 ? m.rep.modeledFps() / base : 0.0, 2)
                .cell(m.rep.bubbleFraction, 3)
                .cell(static_cast<int64_t>(m.stages))
                .cell(static_cast<int64_t>(m.maxReplicas))
                .cell(m.rep.overlapSavedNs / 1e3, 1)
                .cell(m.logitsMatchGraph ? "EXACT" : "DIVERGED");
        }
    }
    t.print(strfmt("%s pipelined across chips (batch %d, micro-batch "
                   "%d, %d BN folded, %lld crossbars)",
                   name.c_str(), kImages, kMicroBatch, folded,
                   static_cast<long long>(r.crossbars)));
    return r;
}

void
writeMode(FILE *json, const ModeResult &m, double base_fps,
          const char *indent)
{
    std::fprintf(
        json,
        "{\"modeled_fps\": %.3f, "
        "\"speedup_vs_1chip\": %.3f, "
        "\"makespan_us\": %.3f, "
        "\"bubble_fraction\": %.4f, "
        "\"stages\": %d, "
        "\"replicated\": %s, "
        "\"max_replicas\": %d, "
        "\"overlap_saved_us\": %.3f, "
        "\"transfer_us\": %.3f, "
        "\"transfer_nj\": %.3f, "
        "\"cut_bytes_per_sample\": %lld, "
        "\"logits_match_graph_runtime\": %s,\n"
        "%s \"per_chip\": [",
        m.rep.modeledFps(),
        base_fps > 0.0 ? m.rep.modeledFps() / base_fps : 0.0,
        m.rep.makespanNs / 1e3, m.rep.bubbleFraction, m.stages,
        m.maxReplicas > 1 ? "true" : "false", m.maxReplicas,
        m.rep.overlapSavedNs / 1e3, m.rep.transferNs / 1e3,
        m.rep.transferPj / 1e3,
        static_cast<long long>(m.cutBytesPerSample),
        m.logitsMatchGraph ? "true" : "false", indent);
    for (size_t c = 0; c < m.rep.chips.size(); ++c) {
        const ChipReport &ch = m.rep.chips[c];
        std::fprintf(
            json,
            "{\"chip\": %d, \"stage\": %d, \"replicas\": %d, "
            "\"nodes\": %zu, \"programmed\": %zu, "
            "\"crossbars\": %lld, \"utilization\": %.4f, "
            "\"busy_us\": %.3f, \"compute_us\": %.3f, "
            "\"quant_us\": %.3f, \"transfer_in_us\": %.3f}%s",
            ch.chip, ch.stage, ch.replicas, ch.nodes,
            ch.programmedNodes, static_cast<long long>(ch.crossbars),
            ch.utilization, ch.busyNs / 1e3, ch.computeNs / 1e3,
            ch.quantNs / 1e3, ch.transferInNs / 1e3,
            c + 1 < m.rep.chips.size() ? ", " : "");
    }
    std::fprintf(json, "]}");
}

void
writePipelineJson(const std::vector<NetResult> &results)
{
    FILE *json = std::fopen("BENCH_pipeline.json", "w");
    if (!json) {
        warn("cannot write BENCH_pipeline.json");
        return;
    }
    std::fprintf(json,
                 "{\n"
                 "  \"bench\": \"fig15_multichip_pipeline\",\n"
                 "  \"threads\": %d,\n"
                 "  \"images\": %d,\n"
                 "  \"micro_batch\": %d,\n"
                 "  \"replicate_threshold\": %.2f,\n"
                 "  \"max_replicas\": %d,\n"
                 "  \"networks\": [\n",
                 ThreadPool::global().threads(), kImages, kMicroBatch,
                 kReplicateThreshold, kMaxReplicas);
    for (size_t n = 0; n < results.size(); ++n) {
        const NetResult &r = results[n];
        std::fprintf(json,
                     "    {\n"
                     "      \"name\": \"%s\",\n"
                     "      \"crossbars\": %lld,\n"
                     "      \"chip_counts\": [\n",
                     r.name.c_str(),
                     static_cast<long long>(r.crossbars));
        for (size_t i = 0; i < r.points.size(); ++i) {
            const ChipCountResult &p = r.points[i];
            const ModeResult &base = p.modes[0];
            const ModeResult &best = p.modes[kNumModes - 1];
            std::fprintf(json, "        {\"chips\": %d,\n", p.chips);
            for (size_t mi = 0; mi < kNumModes; ++mi) {
                std::fprintf(json, "         \"%s\": ",
                             kModes[mi].name);
                writeMode(json, p.modes[mi],
                          r.points[0].modes[mi].rep.modeledFps(),
                          "        ");
                std::fprintf(json, ",\n");
            }
            // The headline deltas the replication + intra-chip tile
            // features buy over the PR 3 contiguous schedule.
            const double base_fps = base.rep.modeledFps();
            std::fprintf(
                json,
                "         \"fps_gain_vs_contiguous\": %.3f,\n"
                "         \"bubble_drop_vs_contiguous\": %.4f}%s\n",
                base_fps > 0.0 ? best.rep.modeledFps() / base_fps : 0.0,
                base.rep.bubbleFraction - best.rep.bubbleFraction,
                i + 1 < r.points.size() ? "," : "");
        }
        std::fprintf(json, "      ]\n    }%s\n",
                     n + 1 < results.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("wrote BENCH_pipeline.json (%zu networks, %d threads)\n",
                results.size(), ThreadPool::global().threads());
}

} // namespace

int
main()
{
    simd::printBenchBanner("bench_fig15_multichip");
    std::printf("Multi-chip pipelined graph scheduler: ResNet zoo + "
                "early-layer-bound convnet across %d / %d / %d / %d "
                "chips,\nmodes: contiguous (PR 3) | tile_pipelined | "
                "replicated_tile (threshold %.2f, <= %d replicas)\n",
                kChipCounts[0], kChipCounts[1], kChipCounts[2],
                kChipCounts[3], kReplicateThreshold, kMaxReplicas);

    std::vector<NetResult> results;
    {
        Rng rng(11);
        auto net = nn::buildResNetSmall(rng, 10, 8);
        results.push_back(runNet("resnet_small", *net));
    }
    {
        Rng rng(12);
        auto net = nn::buildResNetDeep(rng, 10, 8);
        results.push_back(runNet("resnet_deep", *net));
    }
    {
        Rng rng(13);
        auto net = buildStemWide(rng);
        results.push_back(runNet("stem_wide", *net));
    }
    writePipelineJson(results);

    // The headline contracts, one line each: bit-exactness in every
    // mode, and the two new features must beat the PR 3 baseline at
    // 4 chips (lower bubble, higher modeled fps).
    bool all_exact = true;
    bool all_faster = true;
    for (const auto &r : results) {
        for (const auto &p : r.points) {
            for (const auto &m : p.modes)
                all_exact = all_exact && m.logitsMatchGraph;
            if (p.chips == 4) {
                const auto &base = p.modes[0].rep;
                const auto &best = p.modes[kNumModes - 1].rep;
                all_faster = all_faster &&
                    best.modeledFps() > base.modeledFps() &&
                    best.bubbleFraction < base.bubbleFraction;
            }
        }
    }
    std::printf("\npipelined logits vs GraphRuntime at every chip "
                "count and mode: %s\n",
                all_exact ? "EXACT" : "DIVERGED");
    std::printf("replicated_tile beats contiguous at 4 chips "
                "(fps up, bubble down): %s\n",
                all_faster ? "YES" : "NO");
    return all_exact && all_faster ? 0 : 1;
}
