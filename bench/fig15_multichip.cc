/**
 * @file
 * Multi-chip pipeline scaling study (beyond the paper's single-chip
 * evaluation — "fig15" continues the paper's figure numbering): the
 * ResNet zoo partitioned across {1, 2, 4} simulated chips by
 * compile::Schedule and executed on sim::PipelineRuntime with
 * micro-batch pipelining and modeled inter-chip transfers.
 *
 * Emits BENCH_pipeline.json: modeled fps vs chip count, speedup over
 * 1 chip, pipeline bubble fraction, per-chip utilization / crossbar
 * allocation, and link traffic. Also cross-checks that the pipelined
 * logits are bit-identical to GraphRuntime at every chip count (the
 * DESIGN.md §5 contract — chips shard the model, not the arithmetic).
 */

#include <cstdio>

#include "common/logging.hh"
#include "common/table.hh"
#include "compile/passes.hh"
#include "compile/schedule.hh"
#include "nn/zoo.hh"
#include "sim/graph_runtime.hh"
#include "sim/pipeline_runtime.hh"

using namespace forms;
using namespace forms::sim;

namespace {

constexpr int kImages = 4;
constexpr int kMicroBatch = 1;
const int kChipCounts[] = {1, 2, 4};

/** One (network, chip count) measurement. */
struct ChipCountResult
{
    int chips = 0;
    PipelineReport rep;
    int64_t cutBytesPerSample = 0;
    bool logitsMatchGraph = false;
};

struct NetResult
{
    std::string name;
    int64_t crossbars = 0;
    std::vector<ChipCountResult> points;
};

RuntimeConfig
benchConfig()
{
    RuntimeConfig rcfg;
    rcfg.mapping.fragSize = 8;
    rcfg.mapping.inputBits = 8;
    rcfg.engine.adcBits = 4;
    return rcfg;
}

/** Compile, partition at each chip count, pipeline, cross-check. */
NetResult
runNet(const std::string &name, nn::Network &net)
{
    NetResult r;
    r.name = name;

    auto graph = compile::lowerNetwork(net);
    graph.inferShapes({3, 32, 32});
    const int folded = compile::foldBatchNorm(graph);
    auto states = snapshotCompress(net, 8, 8);

    Rng rng(7);
    Tensor batch({kImages, 3, 32, 32});
    batch.fillUniform(rng, 0.0f, 1.0f);

    // Bit-identity reference: the plain DAG executor on one engine set.
    GraphRuntime gref(graph, states, benchConfig());
    const Tensor ref_logits = gref.forward(batch);

    for (int chips : kChipCounts) {
        compile::ScheduleConfig scfg;
        scfg.chips = chips;
        auto sched = compile::Schedule::partition(graph, scfg);

        PipelineRuntimeConfig pcfg;
        pcfg.runtime = benchConfig();
        pcfg.microBatch = kMicroBatch;

        ChipCountResult point;
        point.chips = chips;
        point.cutBytesPerSample = sched.cutBytesPerSample();
        PipelineRuntime rt(graph, std::move(sched), states, pcfg);
        r.crossbars = rt.totalCrossbars();
        const Tensor logits = rt.forward(batch, &point.rep);
        point.logitsMatchGraph = logits.equals(ref_logits);
        r.points.push_back(std::move(point));
    }

    const double base_fps = r.points[0].rep.modeledFps();
    Table t({"Chips", "Modeled fps", "Speedup", "Bubble frac",
             "Transfer (us)", "Min util", "Max util", "Logits"});
    for (const auto &p : r.points) {
        double lo = 1.0, hi = 0.0;
        for (const auto &c : p.rep.chips) {
            lo = std::min(lo, c.utilization);
            hi = std::max(hi, c.utilization);
        }
        t.row().cell(static_cast<int64_t>(p.chips))
            .cell(p.rep.modeledFps(), 1)
            .cell(base_fps > 0.0 ? p.rep.modeledFps() / base_fps : 0.0, 2)
            .cell(p.rep.bubbleFraction, 3)
            .cell(p.rep.transferNs / 1e3, 2)
            .cell(lo, 3)
            .cell(hi, 3)
            .cell(p.logitsMatchGraph ? "EXACT" : "DIVERGED");
    }
    t.print(strfmt("%s pipelined across chips (batch %d, micro-batch "
                   "%d, %d BN folded, %lld crossbars)",
                   name.c_str(), kImages, kMicroBatch, folded,
                   static_cast<long long>(r.crossbars)));
    return r;
}

void
writePipelineJson(const std::vector<NetResult> &results)
{
    FILE *json = std::fopen("BENCH_pipeline.json", "w");
    if (!json) {
        warn("cannot write BENCH_pipeline.json");
        return;
    }
    std::fprintf(json,
                 "{\n"
                 "  \"bench\": \"fig15_multichip_pipeline\",\n"
                 "  \"threads\": %d,\n"
                 "  \"images\": %d,\n"
                 "  \"micro_batch\": %d,\n"
                 "  \"networks\": [\n",
                 ThreadPool::global().threads(), kImages, kMicroBatch);
    for (size_t n = 0; n < results.size(); ++n) {
        const NetResult &r = results[n];
        const double base_fps = r.points[0].rep.modeledFps();
        std::fprintf(json,
                     "    {\n"
                     "      \"name\": \"%s\",\n"
                     "      \"crossbars\": %lld,\n"
                     "      \"chip_counts\": [\n",
                     r.name.c_str(),
                     static_cast<long long>(r.crossbars));
        for (size_t i = 0; i < r.points.size(); ++i) {
            const ChipCountResult &p = r.points[i];
            std::fprintf(
                json,
                "        {\"chips\": %d, "
                "\"modeled_fps\": %.3f, "
                "\"speedup_vs_1chip\": %.3f, "
                "\"makespan_us\": %.3f, "
                "\"bubble_fraction\": %.4f, "
                "\"transfer_us\": %.3f, "
                "\"transfer_nj\": %.3f, "
                "\"cut_bytes_per_sample\": %lld, "
                "\"logits_match_graph_runtime\": %s,\n"
                "         \"per_chip\": [",
                p.chips, p.rep.modeledFps(),
                base_fps > 0.0 ? p.rep.modeledFps() / base_fps : 0.0,
                p.rep.makespanNs / 1e3, p.rep.bubbleFraction,
                p.rep.transferNs / 1e3, p.rep.transferPj / 1e3,
                static_cast<long long>(p.cutBytesPerSample),
                p.logitsMatchGraph ? "true" : "false");
            for (size_t c = 0; c < p.rep.chips.size(); ++c) {
                const ChipReport &ch = p.rep.chips[c];
                std::fprintf(
                    json,
                    "{\"chip\": %d, \"nodes\": %zu, "
                    "\"programmed\": %zu, \"crossbars\": %lld, "
                    "\"utilization\": %.4f, \"compute_us\": %.3f, "
                    "\"transfer_in_us\": %.3f}%s",
                    ch.chip, ch.nodes, ch.programmedNodes,
                    static_cast<long long>(ch.crossbars),
                    ch.utilization, ch.computeNs / 1e3,
                    ch.transferInNs / 1e3,
                    c + 1 < p.rep.chips.size() ? ", " : "");
            }
            std::fprintf(json, "]}%s\n",
                         i + 1 < r.points.size() ? "," : "");
        }
        std::fprintf(json, "      ]\n    }%s\n",
                     n + 1 < results.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("wrote BENCH_pipeline.json (%zu networks, %d threads)\n",
                results.size(), ThreadPool::global().threads());
}

} // namespace

int
main()
{
    std::printf("Multi-chip pipelined graph scheduler: ResNet zoo "
                "across %d / %d / %d chips\n",
                kChipCounts[0], kChipCounts[1], kChipCounts[2]);

    std::vector<NetResult> results;
    {
        Rng rng(11);
        auto net = nn::buildResNetSmall(rng, 10, 8);
        results.push_back(runNet("resnet_small", *net));
    }
    {
        Rng rng(12);
        auto net = nn::buildResNetDeep(rng, 10, 8);
        results.push_back(runNet("resnet_deep", *net));
    }
    writePipelineJson(results);

    // The headline contract, in one line each.
    bool all_exact = true;
    for (const auto &r : results)
        for (const auto &p : r.points)
            all_exact = all_exact && p.logitsMatchGraph;
    std::printf("\npipelined logits vs GraphRuntime at every chip "
                "count: %s\n", all_exact ? "EXACT" : "DIVERGED");
    return all_exact ? 0 : 1;
}
