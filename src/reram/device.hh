/**
 * @file
 * Behavioral ReRAM cell model.
 *
 * Cells store `bitsPerCell` bits as one of 2^bitsPerCell discrete
 * conductance levels between gMin and gMax (a VTEAM-flavored
 * linearized level map; the paper uses 2-bit cells). Device variation
 * is modeled as a multiplicative log-normal factor on the programmed
 * conductance (paper §V-E: log-normal, mean 0, sigma 0.1).
 *
 * Functional arithmetic uses "level units": a cell programmed to level
 * L contributes L to an ideal column sum when its row input bit is 1.
 * The conversion to physical conductance is kept for energy estimates
 * and variation injection.
 */

#ifndef FORMS_RERAM_DEVICE_HH
#define FORMS_RERAM_DEVICE_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"

namespace forms::reram {

/** Static parameters of the ReRAM cell technology. */
struct CellConfig
{
    int bitsPerCell = 2;        //!< bits stored per cell
    double gMinUs = 2.0;        //!< minimum (off) conductance, microsiemens
    double gMaxUs = 100.0;      //!< maximum (on) conductance
    double readVoltage = 0.2;   //!< volts on an active row
    double variationSigma = 0.0;//!< log-normal sigma (0 = ideal devices)

    /** Number of programmable levels. */
    int levels() const { return 1 << bitsPerCell; }

    /** Maximum level value. */
    int maxLevel() const { return levels() - 1; }
};

/** One programmable cell: target level plus realized conductance. */
class Cell
{
  public:
    Cell() = default;

    /**
     * Program the cell to a target level; variation (if configured)
     * perturbs the realized conductance once at program time.
     */
    void program(int level, const CellConfig &cfg, Rng *rng);

    /** Programmed digital level. */
    int level() const { return level_; }

    /**
     * Effective analog level (level units) including variation; this
     * is what an ideal column sum accumulates.
     */
    double analogLevel() const { return analogLevel_; }

    /** Realized conductance in microsiemens. */
    double conductanceUs(const CellConfig &cfg) const;

  private:
    int level_ = 0;
    double analogLevel_ = 0.0;
};

/**
 * Decompose a magnitude into per-cell levels, least-significant cell
 * first: value = sum_i levels[i] * (2^bitsPerCell)^i.
 */
std::vector<int> sliceMagnitude(uint32_t magnitude, int weight_bits,
                                int bits_per_cell);

/** Recompose sliced levels back into a magnitude. */
uint32_t unsliceMagnitude(const std::vector<int> &levels,
                          int bits_per_cell);

/** Cells needed per weight for the given precisions. */
int cellsPerWeight(int weight_bits, int bits_per_cell);

} // namespace forms::reram

#endif // FORMS_RERAM_DEVICE_HH
