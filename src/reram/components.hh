/**
 * @file
 * Peripheral circuit cost specs (paper Table III) and the component
 * roll-up used to build MCU / tile / chip area & power (Table IV).
 *
 * Constants originate from the paper's published component table
 * (itself derived from CACTI/NVSIM/Synopsys DC runs we cannot perform
 * offline); derived quantities — ADC scaling to other resolutions,
 * bottom-up MCU/tile/chip roll-ups — are computed, so the models remain
 * exercisable across the design space.
 */

#ifndef FORMS_RERAM_COMPONENTS_HH
#define FORMS_RERAM_COMPONENTS_HH

#include <string>
#include <vector>

#include "reram/adc.hh"

namespace forms::reram {

/** Power/area record for one component instance count. */
struct ComponentSpec
{
    std::string name;
    std::string spec;      //!< free-form parameter description
    int count = 1;         //!< instances per MCU
    double powerMw = 0.0;  //!< total power of all instances
    double areaMm2 = 0.0;  //!< total area of all instances
};

/** Which design an MCU spec models. */
enum class McuFlavor
{
    Forms,   //!< fine-grained, 4 small ADCs/crossbar, skip + sign logic
    Isaac,   //!< coarse-grained, 1 large ADC/crossbar, offset encoding
};

/** MCU organization parameters. */
struct McuConfig
{
    McuFlavor flavor = McuFlavor::Forms;
    int crossbarsPerMcu = 8;
    int xbarRows = 128;
    int xbarCols = 128;
    int cellBits = 2;
    int fragSize = 8;        //!< FORMS sub-array rows (ignored for ISAAC)
    int adcBits = 4;         //!< per-design ADC resolution
    double adcFreqGhz = 2.1;
    int adcsPerCrossbar = 4; //!< FORMS: 4; ISAAC: 1

    /** The paper's FORMS MCU (fragment size 8). */
    static McuConfig forms(int frag_size = 8);

    /** The paper's ISAAC MCU. */
    static McuConfig isaac();
};

/** Full component table of one MCU. */
struct McuCost
{
    std::vector<ComponentSpec> components;
    double totalPowerMw = 0.0;
    double totalAreaMm2 = 0.0;
};

/** Build the Table III component list for an MCU configuration. */
McuCost buildMcuCost(const McuConfig &cfg);

/** Chip organization (Table IV). */
struct ChipConfig
{
    McuConfig mcu;
    int mcusPerTile = 12;
    int tiles = 168;
    // Digital unit per tile and HyperTransport constants (Table IV).
    double digPowerMw = 53.05;
    double digAreaMm2 = 0.25;
    double htPowerMw = 10400.0;
    double htAreaMm2 = 22.88;
    // Registers/interconnect not itemized in Table III but present in
    // the Table IV MCU totals; kept explicit so the roll-up is honest.
    double mcuOtherPowerMw = 0.0;
    double mcuOtherAreaMm2 = 0.0;

    /** The paper's FORMS chip (fragment size 8). */
    static ChipConfig forms(int frag_size = 8);

    /** The paper's ISAAC chip. */
    static ChipConfig isaac();
};

/** Chip-level roll-up (Table IV rows). */
struct ChipCost
{
    double mcuPowerMw = 0.0, mcuAreaMm2 = 0.0;        //!< one MCU
    double tilePowerMw = 0.0, tileAreaMm2 = 0.0;      //!< one tile
    double tilesPowerMw = 0.0, tilesAreaMm2 = 0.0;    //!< all tiles
    double chipPowerMw = 0.0, chipAreaMm2 = 0.0;      //!< + HT links
};

/** Build the Table IV roll-up for a chip configuration. */
ChipCost buildChipCost(const ChipConfig &cfg);

/** DaDianNao reference totals (Table IV, scaled to 32 nm). */
struct DaDianNaoCost
{
    double nfuPowerMw = 4886.0;
    double nfuAreaMm2 = 16.09;
    double edramPowerMw = 4760.0;
    double edramAreaMm2 = 33.12;
    double busPowerMw = 12.8;
    double busAreaMm2 = 15.66;
    double htPowerMw = 10400.0;
    double htAreaMm2 = 22.88;

    double chipPowerMw() const
    {
        return nfuPowerMw + edramPowerMw + busPowerMw + htPowerMw;
    }

    double chipAreaMm2() const
    {
        return nfuAreaMm2 + edramAreaMm2 + busAreaMm2 + htAreaMm2;
    }
};

} // namespace forms::reram

#endif // FORMS_RERAM_COMPONENTS_HH
