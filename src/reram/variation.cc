#include "reram/variation.hh"

#include <cmath>

#include "common/logging.hh"

namespace forms::reram {

float
perturbWeight(float w, const VariationConfig &cfg, float scale, Rng &rng)
{
    if (w == 0.0f || scale <= 0.0f)
        return 0.0f;
    const uint32_t qmax = (1u << cfg.weightBits) - 1;
    uint32_t mag = static_cast<uint32_t>(
        std::lround(std::fabs(w) / scale));
    mag = std::min(mag, qmax);
    if (mag == 0)
        return 0.0f;

    const auto levels = sliceMagnitude(mag, cfg.weightBits, cfg.cellBits);
    double noisy = 0.0;
    const double radix = std::pow(2.0, cfg.cellBits);
    double place = 1.0;
    for (int level : levels) {
        double analog = static_cast<double>(level);
        if (level > 0)
            analog *= rng.lognormal(0.0, cfg.sigma);
        noisy += analog * place;
        place *= radix;
    }
    return std::copysign(static_cast<float>(noisy * scale), w);
}

float
perturbWeights(Tensor &w, const VariationConfig &cfg, Rng &rng)
{
    float scale = cfg.quantScale;
    if (scale <= 0.0f) {
        const float mx = w.maxAbs();
        if (mx == 0.0f)
            return 0.0f;
        scale = mx / static_cast<float>((1u << cfg.weightBits) - 1);
    }
    float *p = w.data();
    for (int64_t i = 0; i < w.numel(); ++i)
        p[i] = perturbWeight(p[i], cfg, scale, rng);
    return scale;
}

} // namespace forms::reram
