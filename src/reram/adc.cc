#include "reram/adc.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace forms::reram {

namespace {

// Scaling-law coefficients fitted to the two published design points
// (see header): power/freq = PA*bits + PB*2^bits [mW/GHz],
// area = AA*bits + AB*2^bits [mm^2].
//   ISAAC:  8-bit, 1.2 GHz, 2.0 mW, 1.2e-3 mm^2  (16 mW / 9.6e-3 per 8)
//   FORMS:  4-bit, 2.1 GHz, 0.475 mW, 2.84375e-4 mm^2 (15.2 mW per 32)
constexpr double kPowerLin = 0.0348638;
constexpr double kPowerExp = 0.00542113;
constexpr double kAreaLin = 5.98214e-5;
constexpr double kAreaExp = 2.81808e-6;

} // namespace

int
AdcModel::quantize(double analog, double full_scale) const
{
    FORMS_ASSERT(full_scale > 0.0, "full scale must be positive");
    const int top = cfg_.codes() - 1;
    const double step = full_scale / static_cast<double>(top);
    const int count = static_cast<int>(std::lround(analog / step));
    return std::clamp(count, 0, top);
}

double
AdcModel::reconstruct(int count, double full_scale) const
{
    const int top = cfg_.codes() - 1;
    const double step = full_scale / static_cast<double>(top);
    return static_cast<double>(count) * step;
}

double
AdcModel::powerMw() const
{
    return cfg_.freqGhz *
        (kPowerLin * cfg_.bits + kPowerExp * std::pow(2.0, cfg_.bits));
}

double
AdcModel::areaMm2() const
{
    return kAreaLin * cfg_.bits + kAreaExp * std::pow(2.0, cfg_.bits);
}

int
AdcModel::losslessBits(int rows, int cell_bits)
{
    const int max_sum = rows * ((1 << cell_bits) - 1);
    int bits = 1;
    while ((1 << bits) - 1 < max_sum)
        ++bits;
    return bits;
}

double
AdcModel::paperFreqGhz(int bits)
{
    // Published points: 8-bit -> 1.2 GHz, 4-bit -> 2.1 GHz. Model the
    // frequency as geometric in the resolution between/beyond them.
    const double ratio_per_bit = std::pow(2.1 / 1.2, 1.0 / 4.0);
    return 1.2 * std::pow(ratio_per_bit, 8 - bits);
}

} // namespace forms::reram
