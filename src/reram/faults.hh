/**
 * @file
 * Deterministic hard-fault injection for ReRAM crossbars: stuck-at
 * cells, killed bitline columns and log-normally drifted devices.
 *
 * Unlike the Gaussian programming variation in reram/variation.hh /
 * CellConfig::variationSigma — which models analog write noise drawn
 * from the engine's programming stream — a FaultMap is *state*, not
 * noise: the fault pattern of a physical crossbar is a pure function
 * of (seed, faultKey, physId), drawn over the full physical geometry
 * so it does not depend on how many rows or columns a layer happens
 * to use. Two runtimes programming the same logical layer onto the
 * same physical crossbar therefore see bit-identical faults, which is
 * what lets the cross-runtime fuzz harness treat faulted runs exactly
 * like clean ones (logits + stats bitwise equal across threads, chips
 * and micro-batches).
 *
 * Fault kinds (paper-adjacent taxonomy, §V-E extended):
 *  - stuck-at-LRS: cell reads as the maximum conductance level,
 *    regardless of what was programmed;
 *  - stuck-at-HRS: cell reads as level 0;
 *  - column-kill:  an entire physical bitline is dead (reads as 0) —
 *    the only fault class the spare-crossbar remap pass repairs;
 *  - drift:        a multiplicative log-normal factor on the
 *    programmed analog level (aged device).
 */

#ifndef FORMS_RERAM_FAULTS_HH
#define FORMS_RERAM_FAULTS_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace forms::reram {

/** Per-cell fault classification. */
enum class FaultKind : uint8_t
{
    None = 0,
    StuckLrs,   //!< reads as CellConfig::maxLevel()
    StuckHrs,   //!< reads as level 0
    Drift,      //!< programmed level times a log-normal factor
};

/** Fault rates applied independently per crossbar. */
struct FaultConfig
{
    double stuckLrsRate = 0.0;    //!< per-cell P(stuck at LRS)
    double stuckHrsRate = 0.0;    //!< per-cell P(stuck at HRS)
    double columnKillRate = 0.0;  //!< per-physical-column P(dead)
    double driftRate = 0.0;       //!< per-cell P(drifted)
    double driftSigma = 0.1;      //!< log-normal sigma of drifted cells
    uint64_t seed = 2024;         //!< fleet-wide fault seed

    /** True when any rate is non-zero (a map worth drawing). */
    bool
    any() const
    {
        return stuckLrsRate > 0.0 || stuckHrsRate > 0.0 ||
               columnKillRate > 0.0 || driftRate > 0.0;
    }
};

/**
 * The realized fault pattern of one physical crossbar, drawn over the
 * full rows x cols physical geometry.
 */
struct CrossbarFaults
{
    int rows = 0;
    int cols = 0;
    std::vector<uint8_t> kind;    //!< rows x cols FaultKind grid
    std::vector<double> drift;    //!< rows x cols multiplicative factor
    std::vector<uint8_t> colDead; //!< per-physical-column kill flag

    FaultKind
    at(int r, int c) const
    {
        return static_cast<FaultKind>(
            kind[static_cast<size_t>(r) * cols + c]);
    }

    double
    driftAt(int r, int c) const
    {
        return drift[static_cast<size_t>(r) * cols + c];
    }

    bool
    columnDead(int c) const
    {
        return colDead[static_cast<size_t>(c)] != 0;
    }

    /** First dead column in [0, limit), or -1 when none. */
    int firstDeadColumn(int limit) const;

    /** Any fault (cell or column) within rows x usedCols? */
    bool anyIn(int used_rows, int used_cols) const;

    /** Count of stuck/drifted cells within the used window. */
    int64_t faultyCellsIn(int used_rows, int used_cols) const;
};

/**
 * Deterministic fleet fault model: hands out the CrossbarFaults of
 * any (faultKey, physId) pair on demand. faultKey identifies the
 * logical owner (the graph node id in the compiled runtimes) so the
 * same layer draws the same faults in every runtime; physId is the
 * physical crossbar index within that owner's tile grid, including
 * spares (primaries are [0, n), spares [n, n + spareXbars)).
 *
 * The map is stateless and therefore trivially shareable across
 * threads; draws are regenerated on demand rather than cached.
 */
class FaultMap
{
  public:
    FaultMap() = default;
    explicit FaultMap(const FaultConfig &cfg) : cfg_(cfg) {}

    const FaultConfig &config() const { return cfg_; }

    /** Draw the fault pattern of one physical crossbar. */
    CrossbarFaults draw(uint64_t fault_key, int phys_id,
                        int rows, int cols) const;

    /**
     * Cheap column-kill-only probe used by the remap pass: the first
     * dead physical column of (faultKey, physId) within [0, usedCols),
     * or -1. Matches draw()'s column stream bit-for-bit.
     */
    int firstDeadColumn(uint64_t fault_key, int phys_id,
                        int cols, int used_cols) const;

  private:
    FaultConfig cfg_;
};

} // namespace forms::reram

#endif // FORMS_RERAM_FAULTS_HH
