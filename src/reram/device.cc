#include "reram/device.hh"

#include "common/logging.hh"

namespace forms::reram {

void
Cell::program(int level, const CellConfig &cfg, Rng *rng)
{
    FORMS_ASSERT(level >= 0 && level <= cfg.maxLevel(),
                 "cell level %d out of range", level);
    level_ = level;
    double factor = 1.0;
    if (rng && cfg.variationSigma > 0.0)
        factor = rng->lognormal(0.0, cfg.variationSigma);
    // Variation multiplies the conductance *above* the off level; an
    // off cell (level 0) contributes no signal regardless of variation.
    analogLevel_ = static_cast<double>(level) * factor;
}

double
Cell::conductanceUs(const CellConfig &cfg) const
{
    const double frac = cfg.maxLevel()
        ? analogLevel_ / static_cast<double>(cfg.maxLevel()) : 0.0;
    return cfg.gMinUs + (cfg.gMaxUs - cfg.gMinUs) * frac;
}

std::vector<int>
sliceMagnitude(uint32_t magnitude, int weight_bits, int bits_per_cell)
{
    FORMS_ASSERT(weight_bits >= 1 && bits_per_cell >= 1,
                 "bad slicing precision");
    FORMS_ASSERT(weight_bits <= 32, "weight bits too large");
    if (weight_bits < 32) {
        FORMS_ASSERT(magnitude < (1u << weight_bits),
                     "magnitude %u exceeds %d bits", magnitude, weight_bits);
    }
    const int n = cellsPerWeight(weight_bits, bits_per_cell);
    const uint32_t mask = (1u << bits_per_cell) - 1;
    std::vector<int> out(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
        out[static_cast<size_t>(i)] =
            static_cast<int>((magnitude >> (i * bits_per_cell)) & mask);
    }
    return out;
}

uint32_t
unsliceMagnitude(const std::vector<int> &levels, int bits_per_cell)
{
    uint32_t v = 0;
    for (size_t i = levels.size(); i > 0; --i) {
        v = (v << bits_per_cell) |
            static_cast<uint32_t>(levels[i - 1] & ((1 << bits_per_cell) - 1));
    }
    return v;
}

int
cellsPerWeight(int weight_bits, int bits_per_cell)
{
    return (weight_bits + bits_per_cell - 1) / bits_per_cell;
}

} // namespace forms::reram
