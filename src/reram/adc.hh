/**
 * @file
 * ADC and DAC models.
 *
 * The ADC transfer function quantizes an analog column sum (in level
 * units) to a digital count with configurable resolution; "lossless"
 * resolution (enough bits to represent the worst-case sum exactly)
 * makes the crossbar arithmetic integer-exact, while the paper's
 * resolutions (3/4/5-bit for fragments 4/8/16) introduce a measurable
 * quantization error.
 *
 * Area and power follow the scaling law the paper adopts from
 * Saberi et al. / the Murmann survey: the memory/clock/reference
 * buffers scale linearly with resolution while the capacitive DAC
 * scales exponentially. The two (bits, freq, power, area) points
 * published in Table III (ISAAC's 8-bit @ 1.2 GHz and FORMS's 4-bit @
 * 2.1 GHz) pin the coefficients, so Table III is reproduced by
 * construction and the *law* extrapolates to other resolutions.
 */

#ifndef FORMS_RERAM_ADC_HH
#define FORMS_RERAM_ADC_HH

#include <cstdint>

namespace forms::reram {

/** ADC configuration. */
struct AdcConfig
{
    int bits = 8;          //!< resolution
    double freqGhz = 1.2;  //!< sampling frequency

    /** Number of output codes. */
    int codes() const { return 1 << bits; }
};

/** SAR ADC behavioral + cost model. */
class AdcModel
{
  public:
    explicit AdcModel(AdcConfig cfg) : cfg_(cfg) {}

    const AdcConfig &config() const { return cfg_; }

    /**
     * Quantize `analog` (level units, in [0, full_scale]) to a count.
     * Steps are uniform: full_scale maps to the top code. With
     * full_scale <= codes-1 the transfer is exact on integers.
     */
    int quantize(double analog, double full_scale) const;

    /** Reconstruct the analog estimate for a count. */
    double reconstruct(int count, double full_scale) const;

    /** Conversion time for one sample, ns. */
    double sampleTimeNs() const { return 1.0 / cfg_.freqGhz; }

    /** Power at the configured frequency, mW. */
    double powerMw() const;

    /** Area, mm^2. */
    double areaMm2() const;

    /** Energy per conversion, pJ. */
    double energyPerSamplePj() const
    {
        return powerMw() * sampleTimeNs();
    }

    /** Resolution needed for an exact sum of `rows` cells of
     *  `cell_bits` bits each (the "lossless" setting). */
    static int losslessBits(int rows, int cell_bits);

    /** The paper's frequency choice for a resolution (GHz): published
     *  points at 8-bit/1.2 and 4-bit/2.1, geometric interpolation
     *  elsewhere (model assumption, documented in DESIGN.md). */
    static double paperFreqGhz(int bits);

  private:
    AdcConfig cfg_;
};

/** 1-bit DAC (an inverter driving one row), per Table III. */
struct DacModel
{
    /** Power of one 1-bit DAC, mW (Table III: 4 mW / (8*128)). */
    static double powerMw() { return 4.0 / (8.0 * 128.0); }

    /** Area of one 1-bit DAC, mm^2 (Table III: 0.00017 / (8*128)). */
    static double areaMm2() { return 0.00017 / (8.0 * 128.0); }
};

} // namespace forms::reram

#endif // FORMS_RERAM_ADC_HH
