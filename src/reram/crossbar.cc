#include "reram/crossbar.hh"

#include "common/logging.hh"

namespace forms::reram {

CrossbarArray::CrossbarArray(int rows, int cols, CellConfig cfg, Rng *rng)
    : rows_(rows), cols_(cols), cfg_(cfg),
      cells_(static_cast<size_t>(rows) * static_cast<size_t>(cols)),
      rng_(rng)
{
    FORMS_ASSERT(rows > 0 && cols > 0, "empty crossbar");
}

size_t
CrossbarArray::idx(int r, int c) const
{
    FORMS_ASSERT(r >= 0 && r < rows_ && c >= 0 && c < cols_,
                 "crossbar cell (%d, %d) out of range", r, c);
    return static_cast<size_t>(r) * static_cast<size_t>(cols_) +
        static_cast<size_t>(c);
}

void
CrossbarArray::programCell(int r, int c, int level)
{
    cells_[idx(r, c)].program(level, cfg_, rng_);
}

int
CrossbarArray::cellLevel(int r, int c) const
{
    return cells_[idx(r, c)].level();
}

double
CrossbarArray::cellAnalogLevel(int r, int c) const
{
    return cells_[idx(r, c)].analogLevel();
}

double
CrossbarArray::columnSum(int c, const std::vector<uint8_t> &row_bits,
                         int row0, int nrows) const
{
    FORMS_ASSERT(row0 >= 0 && row0 + nrows <= rows_,
                 "row group out of range");
    FORMS_ASSERT(static_cast<int>(row_bits.size()) >= row0 + nrows,
                 "row bit vector too short");
    double acc = 0.0;
    for (int r = row0; r < row0 + nrows; ++r)
        if (row_bits[static_cast<size_t>(r)])
            acc += cells_[idx(r, c)].analogLevel();
    return acc;
}

int64_t
CrossbarArray::idealColumnSum(int c, const std::vector<uint8_t> &row_bits,
                              int row0, int nrows) const
{
    FORMS_ASSERT(row0 >= 0 && row0 + nrows <= rows_,
                 "row group out of range");
    int64_t acc = 0;
    for (int r = row0; r < row0 + nrows; ++r)
        if (row_bits[static_cast<size_t>(r)])
            acc += cells_[idx(r, c)].level();
    return acc;
}

double
CrossbarArray::readEnergyPj(int active_rows, double step_ns) const
{
    // E = V^2 * G * t per active cell; using the mid-range conductance
    // as the representative value. Units: V^2 * uS * ns = 1e-6 W*ns
    // = 1e-6 * 1e3 mW*ns = 1e-3 pJ, hence the 1e-3 factor.
    const double g_mid = 0.5 * (cfg_.gMinUs + cfg_.gMaxUs);
    const double per_cell =
        cfg_.readVoltage * cfg_.readVoltage * g_mid * step_ns * 1e-3;
    return per_cell * static_cast<double>(active_rows) *
        static_cast<double>(cols_);
}

} // namespace forms::reram
