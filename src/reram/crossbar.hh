/**
 * @file
 * ReRAM crossbar array: a grid of cells computing analog column sums
 * for bit-serial inputs, with sub-array (row-group) activation — the
 * physical substrate of the FORMS MCU and of all baselines.
 */

#ifndef FORMS_RERAM_CROSSBAR_HH
#define FORMS_RERAM_CROSSBAR_HH

#include <vector>

#include "reram/device.hh"

namespace forms::reram {

/** A rows x cols grid of ReRAM cells. */
class CrossbarArray
{
  public:
    /**
     * @param rows physical row count (wordlines)
     * @param cols physical column count (bitlines)
     * @param cfg cell technology
     * @param rng variation source (nullptr = ideal devices)
     */
    CrossbarArray(int rows, int cols, CellConfig cfg, Rng *rng = nullptr);

    int rows() const { return rows_; }
    int cols() const { return cols_; }
    const CellConfig &cellConfig() const { return cfg_; }

    /** Program one cell to a digital level. */
    void programCell(int r, int c, int level);

    /** Programmed digital level of a cell. */
    int cellLevel(int r, int c) const;

    /** Realized analog level (with variation) of a cell. */
    double cellAnalogLevel(int r, int c) const;

    /**
     * Analog column sum: sum of analog levels of cells in column `c`
     * whose row bit in `row_bits` is 1, restricted to rows
     * [row0, row0+nrows). This is one bit-serial in-situ MAC step.
     */
    double columnSum(int c, const std::vector<uint8_t> &row_bits,
                     int row0, int nrows) const;

    /** Ideal (integer, variation-free) column sum for verification. */
    int64_t idealColumnSum(int c, const std::vector<uint8_t> &row_bits,
                           int row0, int nrows) const;

    /**
     * Crossbar read energy for one bit-serial step over `active_rows`
     * rows (pJ): V^2 * G_avg * t per active cell, using the mid-range
     * conductance as the representative load.
     */
    double readEnergyPj(int active_rows, double step_ns) const;

  private:
    int rows_, cols_;
    CellConfig cfg_;
    std::vector<Cell> cells_;
    Rng *rng_;

    size_t idx(int r, int c) const;
};

} // namespace forms::reram

#endif // FORMS_RERAM_CROSSBAR_HH
