#include "reram/components.hh"

#include <cmath>

#include "common/logging.hh"

namespace forms::reram {

namespace {

// Table III per-flavor constants that are not ADC-derived.
// FORMS fragment-size-8 column / ISAAC column of the paper's table.
struct FlavorConsts
{
    double dacPowerMw, dacAreaMm2;       // 8*128 1-bit DACs
    double shPowerMw, shAreaMm2;         // 8*128 sample & hold
    double xbarPowerMw, xbarAreaMm2;     // 8 crossbars, 128x128, 2-bit
    double saPowerMw, saAreaMm2;         // 4 shift-and-add units
    double skipPowerMw, skipAreaMm2;     // zero-skip logic (FORMS only)
    double signPowerMw, signAreaMm2;     // sign indicator (FORMS only)
};

const FlavorConsts kForms = {
    4.0, 0.00017,
    0.0055, 0.000023,
    2.44, 0.00024,
    0.2, 0.000024,
    0.01, 0.0000001,
    0.012, 0.0000031,
};

const FlavorConsts kIsaac = {
    4.0, 0.00017,
    0.01, 0.00004,
    2.43, 0.00023,
    0.2, 0.000024,
    0.0, 0.0,
    0.0, 0.0,
};

/** ADCs per crossbar at iso-area with one ISAAC 8-bit ADC. */
int
isoAreaAdcCount(int bits)
{
    const AdcModel big({8, 1.2});
    const AdcModel small({bits, AdcModel::paperFreqGhz(bits)});
    const int n = static_cast<int>(big.areaMm2() / small.areaMm2());
    return std::max(1, n);
}

} // namespace

McuConfig
McuConfig::forms(int frag_size)
{
    FORMS_ASSERT(frag_size >= 2, "fragment size too small");
    McuConfig c;
    c.flavor = McuFlavor::Forms;
    c.fragSize = frag_size;
    // Paper: fragment sizes 16 / 8 / 4 use 5 / 4 / 3-bit ADCs,
    // i.e. log2(frag) + 1 bits.
    c.adcBits = static_cast<int>(std::lround(std::log2(frag_size))) + 1;
    c.adcFreqGhz = AdcModel::paperFreqGhz(c.adcBits);
    c.adcsPerCrossbar = isoAreaAdcCount(c.adcBits);
    return c;
}

McuConfig
McuConfig::isaac()
{
    McuConfig c;
    c.flavor = McuFlavor::Isaac;
    c.fragSize = 128;       // whole-column activation
    c.adcBits = 8;
    c.adcFreqGhz = 1.2;
    c.adcsPerCrossbar = 1;
    return c;
}

McuCost
buildMcuCost(const McuConfig &cfg)
{
    const FlavorConsts &k =
        cfg.flavor == McuFlavor::Forms ? kForms : kIsaac;
    McuCost cost;

    const AdcModel adc({cfg.adcBits, cfg.adcFreqGhz});
    const int n_adc = cfg.crossbarsPerMcu * cfg.adcsPerCrossbar;
    cost.components.push_back({
        "ADC",
        strfmt("%d-bit @ %.1f GHz", cfg.adcBits, cfg.adcFreqGhz),
        n_adc, adc.powerMw() * n_adc, adc.areaMm2() * n_adc});

    const int n_dac = cfg.crossbarsPerMcu * cfg.xbarRows;
    cost.components.push_back({
        "DAC", "1-bit", n_dac, k.dacPowerMw, k.dacAreaMm2});

    cost.components.push_back({
        "S&H", "", n_dac, k.shPowerMw, k.shAreaMm2});

    cost.components.push_back({
        "crossbar array",
        strfmt("%dx%d, %d-bit cells", cfg.xbarRows, cfg.xbarCols,
               cfg.cellBits),
        cfg.crossbarsPerMcu, k.xbarPowerMw, k.xbarAreaMm2});

    cost.components.push_back({
        "S+A", "", 4, k.saPowerMw, k.saAreaMm2});

    if (cfg.flavor == McuFlavor::Forms) {
        cost.components.push_back({
            "skipping logic", "", 1, k.skipPowerMw, k.skipAreaMm2});
        cost.components.push_back({
            "sign indicator", "1R array", 1, k.signPowerMw,
            k.signAreaMm2});
    }

    for (const auto &c : cost.components) {
        cost.totalPowerMw += c.powerMw;
        cost.totalAreaMm2 += c.areaMm2;
    }
    return cost;
}

ChipConfig
ChipConfig::forms(int frag_size)
{
    ChipConfig c;
    c.mcu = McuConfig::forms(frag_size);
    c.digPowerMw = 53.05;
    c.digAreaMm2 = 0.238;   // Table IV tile total minus the MCU block
    // Registers / intra-MCU interconnect implied by Table IV's MCU
    // block totals beyond the Table III component sum.
    c.mcuOtherPowerMw = 1.47;
    c.mcuOtherAreaMm2 = 0.00301;
    return c;
}

ChipConfig
ChipConfig::isaac()
{
    ChipConfig c;
    c.mcu = McuConfig::isaac();
    c.digPowerMw = 40.85;
    c.digAreaMm2 = 0.212;
    c.mcuOtherPowerMw = 1.44;
    c.mcuOtherAreaMm2 = 0.00307;
    return c;
}

ChipCost
buildChipCost(const ChipConfig &cfg)
{
    ChipCost cost;
    const McuCost mcu = buildMcuCost(cfg.mcu);
    cost.mcuPowerMw = mcu.totalPowerMw + cfg.mcuOtherPowerMw;
    cost.mcuAreaMm2 = mcu.totalAreaMm2 + cfg.mcuOtherAreaMm2;
    cost.tilePowerMw = cost.mcuPowerMw * cfg.mcusPerTile + cfg.digPowerMw;
    cost.tileAreaMm2 = cost.mcuAreaMm2 * cfg.mcusPerTile + cfg.digAreaMm2;
    cost.tilesPowerMw = cost.tilePowerMw * cfg.tiles;
    cost.tilesAreaMm2 = cost.tileAreaMm2 * cfg.tiles;
    cost.chipPowerMw = cost.tilesPowerMw + cfg.htPowerMw;
    cost.chipAreaMm2 = cost.tilesAreaMm2 + cfg.htAreaMm2;
    return cost;
}

} // namespace forms::reram
