#include "reram/faults.hh"

#include "common/logging.hh"
#include "common/rng.hh"

namespace forms::reram {

namespace {

/** splitmix64 finalizer, the same mixer the engine seeds streams with. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/**
 * Stream seed for one (faultKey, physId, stream) triple. Columns and
 * cells draw from distinct streams so the remap pass can probe the
 * column stream without replaying per-cell draws.
 */
uint64_t
faultSeed(uint64_t seed, uint64_t key, int phys_id, uint64_t stream)
{
    uint64_t s = mix64(seed ^ mix64(key));
    s = mix64(s ^ mix64(static_cast<uint64_t>(phys_id) + 1));
    return mix64(s ^ stream);
}

constexpr uint64_t kColumnStream = 0xC01DEAD5ULL;
constexpr uint64_t kCellStream = 0xCE11FA17ULL;

} // namespace

int
CrossbarFaults::firstDeadColumn(int limit) const
{
    for (int c = 0; c < limit; ++c)
        if (colDead[static_cast<size_t>(c)] != 0)
            return c;
    return -1;
}

bool
CrossbarFaults::anyIn(int used_rows, int used_cols) const
{
    if (firstDeadColumn(used_cols) >= 0)
        return true;
    return faultyCellsIn(used_rows, used_cols) > 0;
}

int64_t
CrossbarFaults::faultyCellsIn(int used_rows, int used_cols) const
{
    int64_t n = 0;
    for (int r = 0; r < used_rows; ++r)
        for (int c = 0; c < used_cols; ++c)
            if (at(r, c) != FaultKind::None)
                ++n;
    return n;
}

CrossbarFaults
FaultMap::draw(uint64_t fault_key, int phys_id, int rows, int cols) const
{
    FORMS_ASSERT(rows > 0 && cols > 0,
                 "fault draw needs a positive geometry (%d x %d)",
                 rows, cols);
    CrossbarFaults f;
    f.rows = rows;
    f.cols = cols;
    f.kind.assign(static_cast<size_t>(rows) * cols,
                  static_cast<uint8_t>(FaultKind::None));
    f.drift.assign(static_cast<size_t>(rows) * cols, 1.0);
    f.colDead.assign(static_cast<size_t>(cols), 0);
    if (!cfg_.any())
        return f;

    // Column stream first: one Bernoulli per physical column, in
    // column order, so firstDeadColumn() can replay it independently.
    Rng col_rng(faultSeed(cfg_.seed, fault_key, phys_id, kColumnStream));
    for (int c = 0; c < cols; ++c)
        if (cfg_.columnKillRate > 0.0 &&
            col_rng.bernoulli(cfg_.columnKillRate))
            f.colDead[static_cast<size_t>(c)] = 1;

    // Cell stream: fixed draw order (row-major; stuck-LRS, stuck-HRS,
    // drift trial, drift factor) over the FULL physical grid, so the
    // realized pattern never depends on the logical occupancy.
    const bool cells = cfg_.stuckLrsRate > 0.0 ||
                       cfg_.stuckHrsRate > 0.0 || cfg_.driftRate > 0.0;
    if (!cells)
        return f;
    Rng cell_rng(faultSeed(cfg_.seed, fault_key, phys_id, kCellStream));
    for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
            const size_t i = static_cast<size_t>(r) * cols + c;
            FaultKind k = FaultKind::None;
            if (cfg_.stuckLrsRate > 0.0 &&
                cell_rng.bernoulli(cfg_.stuckLrsRate))
                k = FaultKind::StuckLrs;
            if (cfg_.stuckHrsRate > 0.0 &&
                cell_rng.bernoulli(cfg_.stuckHrsRate) &&
                k == FaultKind::None)
                k = FaultKind::StuckHrs;
            if (cfg_.driftRate > 0.0 &&
                cell_rng.bernoulli(cfg_.driftRate)) {
                // Always consume the factor draw so the stream shape
                // is independent of earlier stuck outcomes.
                const double factor =
                    cell_rng.lognormal(0.0, cfg_.driftSigma);
                if (k == FaultKind::None) {
                    k = FaultKind::Drift;
                    f.drift[i] = factor;
                }
            }
            f.kind[i] = static_cast<uint8_t>(k);
        }
    }
    return f;
}

int
FaultMap::firstDeadColumn(uint64_t fault_key, int phys_id,
                          int cols, int used_cols) const
{
    if (cfg_.columnKillRate <= 0.0)
        return -1;
    Rng col_rng(faultSeed(cfg_.seed, fault_key, phys_id, kColumnStream));
    int first = -1;
    for (int c = 0; c < cols; ++c) {
        const bool dead = col_rng.bernoulli(cfg_.columnKillRate);
        if (dead && c < used_cols && first < 0)
            first = c;
    }
    return first;
}

} // namespace forms::reram
