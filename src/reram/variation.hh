/**
 * @file
 * Device-variation injection for the accuracy study (paper §V-E,
 * Table VI): each quantized weight is decomposed into its ReRAM cells,
 * every cell's conductance receives an independent multiplicative
 * log-normal perturbation, and the perturbed cells are recomposed into
 * an effective weight value.
 */

#ifndef FORMS_RERAM_VARIATION_HH
#define FORMS_RERAM_VARIATION_HH

#include "reram/device.hh"
#include "tensor/tensor.hh"

namespace forms::reram {

/** Variation study parameters. */
struct VariationConfig
{
    double sigma = 0.1;     //!< log-normal sigma (paper: 0.1, mean 0)
    int weightBits = 8;     //!< magnitude precision
    int cellBits = 2;       //!< per-cell precision
    float quantScale = 0.0f;//!< level spacing; 0 = derive from maxAbs
};

/**
 * Perturb one weight value: quantize its magnitude to the weight grid,
 * slice into cells, apply per-cell log-normal factors, recompose.
 * Sign is carried unchanged (the FORMS sign indicator is digital).
 */
float perturbWeight(float w, const VariationConfig &cfg, float scale,
                    Rng &rng);

/**
 * Perturb a whole weight tensor in place; returns the quantization
 * scale used (needed to interpret the perturbation magnitude).
 */
float perturbWeights(Tensor &w, const VariationConfig &cfg, Rng &rng);

} // namespace forms::reram

#endif // FORMS_RERAM_VARIATION_HH
