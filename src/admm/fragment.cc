#include "admm/fragment.hh"

#include <algorithm>

namespace forms::admm {

std::string
policyName(PolarizationPolicy p)
{
    switch (p) {
      case PolarizationPolicy::WMajor: return "W-major";
      case PolarizationPolicy::HMajor: return "H-major";
      case PolarizationPolicy::CMajor: return "C-major";
    }
    return "?";
}

WeightView
WeightView::conv(Tensor &w)
{
    FORMS_ASSERT(w.rank() == 4, "conv view expects rank-4 weight");
    WeightView v;
    v.w_ = &w;
    v.conv_ = true;
    v.cols_ = w.dim(0);
    v.cin_ = w.dim(1);
    v.k_ = w.dim(2);
    FORMS_ASSERT(w.dim(2) == w.dim(3), "square kernels only");
    v.rows_ = v.cin_ * v.k_ * v.k_;
    return v;
}

WeightView
WeightView::dense(Tensor &w)
{
    FORMS_ASSERT(w.rank() == 2, "dense view expects rank-2 weight");
    WeightView v;
    v.w_ = &w;
    v.conv_ = false;
    v.cols_ = w.dim(0);   // output neurons = filters = crossbar columns
    v.rows_ = w.dim(1);
    return v;
}

float
WeightView::get(int64_t r, int64_t j) const
{
    FORMS_ASSERT(r >= 0 && r < rows_ && j >= 0 && j < cols_,
                 "weight view index out of range");
    if (conv_)
        return w_->data()[j * rows_ + r];   // (Cout, Cin*K*K) contiguous
    return w_->data()[j * rows_ + r];       // (out, in) contiguous
}

void
WeightView::set(int64_t r, int64_t j, float v)
{
    FORMS_ASSERT(r >= 0 && r < rows_ && j >= 0 && j < cols_,
                 "weight view index out of range");
    w_->data()[j * rows_ + r] = v;
}

FragmentPlan
FragmentPlan::forConv(int64_t cout, int64_t cin, int64_t k, int frag_size,
                      PolarizationPolicy policy)
{
    FORMS_ASSERT(frag_size >= 1, "fragment size must be positive");
    FragmentPlan plan;
    plan.rows_ = cin * k * k;
    plan.cols_ = cout;
    plan.fragSize_ = frag_size;
    plan.policy_ = policy;
    plan.order_.reserve(static_cast<size_t>(plan.rows_));

    // The natural row index of weight (c, h, w) is c*k*k + h*k + w.
    switch (policy) {
      case PolarizationPolicy::WMajor:
        // (c, h, w) with w fastest — identical to the natural order.
        for (int64_t r = 0; r < plan.rows_; ++r)
            plan.order_.push_back(r);
        break;
      case PolarizationPolicy::HMajor:
        for (int64_t c = 0; c < cin; ++c)
            for (int64_t w = 0; w < k; ++w)
                for (int64_t h = 0; h < k; ++h)
                    plan.order_.push_back(c * k * k + h * k + w);
        break;
      case PolarizationPolicy::CMajor:
        for (int64_t h = 0; h < k; ++h)
            for (int64_t w = 0; w < k; ++w)
                for (int64_t c = 0; c < cin; ++c)
                    plan.order_.push_back(c * k * k + h * k + w);
        break;
    }
    return plan;
}

FragmentPlan
FragmentPlan::forDense(int64_t out, int64_t in, int frag_size)
{
    FORMS_ASSERT(frag_size >= 1, "fragment size must be positive");
    FragmentPlan plan;
    plan.rows_ = in;
    plan.cols_ = out;
    plan.fragSize_ = frag_size;
    plan.policy_ = PolarizationPolicy::WMajor;
    plan.order_.reserve(static_cast<size_t>(in));
    for (int64_t r = 0; r < in; ++r)
        plan.order_.push_back(r);
    return plan;
}

int64_t
FragmentPlan::fragmentsPerCol() const
{
    return (rows_ + fragSize_ - 1) / fragSize_;
}

int64_t
FragmentPlan::orderedRow(int64_t p) const
{
    FORMS_ASSERT(p >= 0 && p < rows_, "ordering position out of range");
    return order_[static_cast<size_t>(p)];
}

int64_t
FragmentPlan::fragmentRows(int64_t f) const
{
    FORMS_ASSERT(f >= 0 && f < fragmentsPerCol(), "fragment out of range");
    const int64_t begin = f * fragSize_;
    return std::min<int64_t>(fragSize_, rows_ - begin);
}

std::vector<int64_t>
FragmentPlan::fragmentRowIndices(int64_t f) const
{
    const int64_t begin = f * fragSize_;
    const int64_t n = fragmentRows(f);
    std::vector<int64_t> out;
    out.reserve(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i)
        out.push_back(orderedRow(begin + i));
    return out;
}

FragmentPlan
FragmentPlan::restrictedToRows(const std::vector<uint8_t> &row_kept) const
{
    FORMS_ASSERT(static_cast<int64_t>(row_kept.size()) >=
                 *std::max_element(order_.begin(), order_.end()) + 1,
                 "row mask too short for plan");
    FragmentPlan plan;
    plan.cols_ = cols_;
    plan.fragSize_ = fragSize_;
    plan.policy_ = policy_;
    for (int64_t r : order_)
        if (row_kept[static_cast<size_t>(r)])
            plan.order_.push_back(r);
    plan.rows_ = static_cast<int64_t>(plan.order_.size());
    FORMS_ASSERT(plan.rows_ > 0, "all rows pruned away");
    return plan;
}

SignMap::SignMap(int64_t cols, int64_t frags_per_col)
    : cols_(cols), fragsPerCol_(frags_per_col),
      signs_(static_cast<size_t>(cols * frags_per_col), 1)
{
}

int8_t
SignMap::get(int64_t col, int64_t frag) const
{
    FORMS_ASSERT(col >= 0 && col < cols_ && frag >= 0 &&
                 frag < fragsPerCol_, "sign map index out of range");
    return signs_[static_cast<size_t>(col * fragsPerCol_ + frag)];
}

void
SignMap::set(int64_t col, int64_t frag, int8_t sign)
{
    FORMS_ASSERT(sign == 1 || sign == -1, "sign must be +1/-1");
    FORMS_ASSERT(col >= 0 && col < cols_ && frag >= 0 &&
                 frag < fragsPerCol_, "sign map index out of range");
    signs_[static_cast<size_t>(col * fragsPerCol_ + frag)] = sign;
}

int64_t
SignMap::countPositive() const
{
    int64_t n = 0;
    for (int8_t s : signs_)
        if (s > 0)
            ++n;
    return n;
}

} // namespace forms::admm
