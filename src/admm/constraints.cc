#include "admm/constraints.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace forms::admm {

int64_t
crossbarAwareKeep(int64_t total, double keep_ratio, int64_t xbar_dim)
{
    FORMS_ASSERT(total >= 0 && xbar_dim >= 1, "bad crossbarAwareKeep args");
    keep_ratio = std::clamp(keep_ratio, 0.0, 1.0);
    int64_t keep = static_cast<int64_t>(
        std::llround(keep_ratio * static_cast<double>(total)));
    keep = std::clamp<int64_t>(keep, 1, total);
    // Snap up to a full crossbar extent: the pruned fraction between two
    // multiples of xbar_dim frees no hardware.
    const int64_t snapped = ((keep + xbar_dim - 1) / xbar_dim) * xbar_dim;
    return std::min(total, snapped);
}

namespace {

/** Indices of the `keep` largest values in `norms` marked as 1. */
std::vector<uint8_t>
topKMask(const std::vector<double> &norms, int64_t keep)
{
    const int64_t n = static_cast<int64_t>(norms.size());
    std::vector<int64_t> idx(static_cast<size_t>(n));
    std::iota(idx.begin(), idx.end(), 0);
    std::stable_sort(idx.begin(), idx.end(), [&](int64_t a, int64_t b) {
        return norms[static_cast<size_t>(a)] > norms[static_cast<size_t>(b)];
    });
    std::vector<uint8_t> mask(static_cast<size_t>(n), 0);
    for (int64_t i = 0; i < std::min(keep, n); ++i)
        mask[static_cast<size_t>(idx[static_cast<size_t>(i)])] = 1;
    return mask;
}

} // namespace

std::pair<int64_t, int64_t>
projectStructuredPrune(WeightView view, const PruneSpec &spec)
{
    const int64_t rows = view.rows(), cols = view.cols();

    std::vector<double> col_norm(static_cast<size_t>(cols), 0.0);
    std::vector<double> row_norm(static_cast<size_t>(rows), 0.0);
    for (int64_t j = 0; j < cols; ++j)
        for (int64_t r = 0; r < rows; ++r) {
            const double v = view.get(r, j);
            col_norm[static_cast<size_t>(j)] += v * v;
            row_norm[static_cast<size_t>(r)] += v * v;
        }

    const int64_t xdim = spec.crossbarAware ? spec.xbarDim : 1;
    const int64_t col_keep = crossbarAwareKeep(cols, spec.filterKeep, xdim);
    const int64_t row_keep = crossbarAwareKeep(rows, spec.shapeKeep, xdim);

    auto col_mask = topKMask(col_norm, col_keep);
    auto row_mask = topKMask(row_norm, row_keep);

    for (int64_t j = 0; j < cols; ++j)
        for (int64_t r = 0; r < rows; ++r)
            if (!col_mask[static_cast<size_t>(j)] ||
                !row_mask[static_cast<size_t>(r)]) {
                view.set(r, j, 0.0f);
            }
    return {row_keep, col_keep};
}

int64_t
PruneMask::keptRows() const
{
    return std::count(rowKept.begin(), rowKept.end(), uint8_t{1});
}

int64_t
PruneMask::keptCols() const
{
    return std::count(colKept.begin(), colKept.end(), uint8_t{1});
}

PruneMask
extractMask(const WeightView &view)
{
    PruneMask m;
    m.rowKept.assign(static_cast<size_t>(view.rows()), 0);
    m.colKept.assign(static_cast<size_t>(view.cols()), 0);
    for (int64_t j = 0; j < view.cols(); ++j)
        for (int64_t r = 0; r < view.rows(); ++r)
            if (view.get(r, j) != 0.0f) {
                m.rowKept[static_cast<size_t>(r)] = 1;
                m.colKept[static_cast<size_t>(j)] = 1;
            }
    return m;
}

void
applyMask(WeightView view, const PruneMask &mask)
{
    FORMS_ASSERT(static_cast<int64_t>(mask.rowKept.size()) == view.rows() &&
                 static_cast<int64_t>(mask.colKept.size()) == view.cols(),
                 "mask geometry mismatch");
    for (int64_t j = 0; j < view.cols(); ++j)
        for (int64_t r = 0; r < view.rows(); ++r)
            if (!mask.colKept[static_cast<size_t>(j)] ||
                !mask.rowKept[static_cast<size_t>(r)]) {
                view.set(r, j, 0.0f);
            }
}

SignMap
computeSigns(const WeightView &view, const FragmentPlan &plan,
             SignRule rule)
{
    SignMap signs(plan.cols(), plan.fragmentsPerCol());
    for (int64_t j = 0; j < plan.cols(); ++j) {
        for (int64_t f = 0; f < plan.fragmentsPerCol(); ++f) {
            double sum = 0.0, pos_energy = 0.0, neg_energy = 0.0;
            for (int64_t r : plan.fragmentRowIndices(f)) {
                const double v = view.get(r, j);
                sum += v;
                if (v > 0)
                    pos_energy += v * v;
                else
                    neg_energy += v * v;
            }
            int8_t s;
            if (rule == SignRule::SumRule) {
                s = sum >= 0.0 ? 1 : -1;        // paper Eq. (2)
            } else {
                s = pos_energy >= neg_energy ? 1 : -1;
            }
            signs.set(j, f, s);
        }
    }
    return signs;
}

void
projectPolarization(WeightView view, const FragmentPlan &plan,
                    const SignMap &signs)
{
    for (int64_t j = 0; j < plan.cols(); ++j)
        for (int64_t f = 0; f < plan.fragmentsPerCol(); ++f) {
            const int8_t s = signs.get(j, f);
            for (int64_t r : plan.fragmentRowIndices(f)) {
                const float v = view.get(r, j);
                if ((s > 0 && v < 0.0f) || (s < 0 && v > 0.0f))
                    view.set(r, j, 0.0f);
            }
        }
}

int64_t
countSignViolations(const WeightView &view, const FragmentPlan &plan,
                    const SignMap &signs)
{
    int64_t violations = 0;
    for (int64_t j = 0; j < plan.cols(); ++j)
        for (int64_t f = 0; f < plan.fragmentsPerCol(); ++f) {
            const int8_t s = signs.get(j, f);
            for (int64_t r : plan.fragmentRowIndices(f)) {
                const float v = view.get(r, j);
                if ((s > 0 && v < 0.0f) || (s < 0 && v > 0.0f))
                    ++violations;
            }
        }
    return violations;
}

float
quantizeValue(float v, float scale, int bits)
{
    if (v == 0.0f || scale <= 0.0f)
        return 0.0f;
    const float qmax = static_cast<float>((1 << bits) - 1);
    float level = std::round(std::fabs(v) / scale);
    level = std::min(level, qmax);
    return std::copysign(level * scale, v);
}

float
projectQuantize(WeightView view, const QuantSpec &spec)
{
    FORMS_ASSERT(spec.bits >= 1 && spec.bits <= 16, "bad quant bits");
    float scale = spec.scale;
    if (scale <= 0.0f) {
        const float mx = view.tensor().maxAbs();
        if (mx == 0.0f)
            return 0.0f;
        scale = mx / static_cast<float>((1 << spec.bits) - 1);
    }
    for (int64_t j = 0; j < view.cols(); ++j)
        for (int64_t r = 0; r < view.rows(); ++r)
            view.set(r, j, quantizeValue(view.get(r, j), scale, spec.bits));
    return scale;
}

} // namespace forms::admm
