/**
 * @file
 * ADMM-regularized compression pipeline (paper §III-D, Figure 4).
 *
 * The pipeline runs three phases on a trained network, mirroring the
 * paper's multi-step flow:
 *   1. crossbar-aware structured pruning (constraint S),
 *   2. fragment polarization (constraint P, with periodic sign refresh),
 *   3. ReRAM-customized quantization (constraint Q),
 * each phase being ADMM epochs (SGD on the augmented Lagrangian + Z/U
 * updates) followed by a hard projection and a constraint-preserving
 * fine-tune.
 */

#ifndef FORMS_ADMM_COMPRESSOR_HH
#define FORMS_ADMM_COMPRESSOR_HH

#include <optional>

#include "admm/constraints.hh"
#include "nn/trainer.hh"
#include "nn/zoo.hh"

namespace forms::admm {

/** Full configuration of the compression pipeline. */
struct AdmmConfig
{
    // Which constraint sets to enforce (ablations switch these off).
    bool prune = true;
    bool polarize = true;
    bool quantize = true;

    // S: structured pruning.
    double filterKeep = 0.5;
    double shapeKeep = 0.5;
    bool crossbarAware = true;
    int64_t xbarDim = 128;

    // P: fragment polarization.
    int fragSize = 8;
    PolarizationPolicy policy = PolarizationPolicy::CMajor;
    SignRule signRule = SignRule::SumRule;
    int signRefreshEpochs = 2;   //!< paper's M: refresh signs every M epochs

    // Q: quantization.
    int quantBits = 8;

    // ADMM schedule.
    float rho = 2e-3f;
    int admmEpochsPerPhase = 4;
    int finetuneEpochs = 3;

    /** Inner SGD settings (its `epochs` field is ignored). */
    nn::TrainConfig train;
};

/** Per-layer compression state exposed to the hardware mapper. */
struct LayerState
{
    std::string name;
    nn::ParamRef param;              //!< the constrained weight
    FragmentPlan plan;               //!< fragment geometry
    Tensor z, u;                     //!< ADMM auxiliary + dual variables
    std::optional<PruneMask> mask;   //!< set after the pruning phase
    std::optional<SignMap> signs;    //!< set after the polarization phase
    float quantScale = 0.0f;         //!< set after the quantization phase

    /** 2-d view of the weight (conv or dense). */
    WeightView view() const;
};

/** Summary of a full compression run. */
struct CompressionOutcome
{
    double accuracyBefore = 0.0;   //!< test accuracy of the input model
    double accuracyAfter = 0.0;    //!< test accuracy after all phases
    double pruneRatio = 1.0;       //!< structured weight reduction factor
    int64_t totalWeights = 0;
    int64_t keptWeights = 0;       //!< weights inside the kept structure
    int64_t signViolations = 0;    //!< must be 0 on success
};

/** Runs the three-phase ADMM compression pipeline over a network. */
class AdmmCompressor
{
  public:
    /**
     * @param net the network to compress (must already be trained)
     * @param data dataset for the inner training epochs
     * @param cfg pipeline configuration
     */
    AdmmCompressor(nn::Network &net, const nn::SyntheticImageDataset &data,
                   AdmmConfig cfg);

    /** Execute all enabled phases and report the outcome. */
    CompressionOutcome run();

    /** Phase entry points (exposed for tests and ablations). */
    void phasePrune();
    void phasePolarize();
    void phaseQuantize();

    /** Test accuracy of the network right now. */
    double evalAccuracy();

    /** Per-layer state (after run(), includes masks/signs/scales). */
    const std::vector<LayerState> &layers() const { return layers_; }
    std::vector<LayerState> &layers() { return layers_; }

    const AdmmConfig &config() const { return cfg_; }

    /**
     * Hard-enforce every established constraint (mask, signs, quant) on
     * the live weights; used after each fine-tune step and at the end.
     */
    void enforceAll();

    /** Total sign violations across layers (0 once polarized). */
    int64_t signViolations() const;

  private:
    nn::Network &net_;
    const nn::SyntheticImageDataset &data_;
    AdmmConfig cfg_;
    std::vector<LayerState> layers_;

    /** Run `epochs` of ADMM training with projection `proj`. */
    void admmEpochs(int epochs,
                    const std::function<void(LayerState &)> &proj,
                    bool refresh_signs);

    /** Run `epochs` of plain fine-tuning with enforceAll() per step. */
    void finetune(int epochs);
};

} // namespace forms::admm

#endif // FORMS_ADMM_COMPRESSOR_HH
