/**
 * @file
 * Fragment indexing shared by the ADMM polarization constraint and the
 * hardware weight mapper.
 *
 * The paper's "2-d weight format" reshapes a conv filter bank
 * (Cout, Cin, K, K) into a matrix H with rows = Cin*K*K (filter shapes)
 * and cols = Cout (filters); a dense weight (out, in) becomes rows = in,
 * cols = out. A *fragment* is a run of `fragSize` consecutive rows of
 * one column under the polarization policy's row ordering (W-, H- or
 * C-major, Figure 3); each fragment is exactly the set of weights that
 * lands in one column of one crossbar sub-array, so training-time
 * polarization and hardware mapping agree by construction.
 */

#ifndef FORMS_ADMM_FRAGMENT_HH
#define FORMS_ADMM_FRAGMENT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.hh"

namespace forms::admm {

/** Row-ordering policy for mapping filter weights to fragments. */
enum class PolarizationPolicy
{
    WMajor,   //!< width fastest: (c, h, w) row index — paper's ImageNet pick
    HMajor,   //!< height fastest: (c, w, h)
    CMajor,   //!< channel fastest: (h, w, c) — paper's CIFAR pick
};

/** Human-readable policy name. */
std::string policyName(PolarizationPolicy p);

/**
 * Adapter exposing a conv filter bank or dense weight tensor as the
 * paper's 2-d weight format H (rows x cols).
 */
class WeightView
{
  public:
    /** Wrap a conv weight (Cout, Cin, K, K). */
    static WeightView conv(Tensor &w);

    /** Wrap a dense weight (out, in): rows = in, cols = out. */
    static WeightView dense(Tensor &w);

    int64_t rows() const { return rows_; }
    int64_t cols() const { return cols_; }

    /** Element H(r, j) in *natural* (W-major) row order. */
    float get(int64_t r, int64_t j) const;
    void set(int64_t r, int64_t j, float v);

    /** The wrapped tensor. */
    Tensor &tensor() { return *w_; }
    const Tensor &tensor() const { return *w_; }

    bool isConv() const { return conv_; }

  private:
    Tensor *w_ = nullptr;
    bool conv_ = false;
    int64_t rows_ = 0, cols_ = 0;

    // conv geometry (unused for dense)
    int64_t cin_ = 0, k_ = 0;
};

/**
 * Fragment plan for one layer: a row permutation realizing the
 * polarization policy plus the fragment partition of the permuted rows.
 */
class FragmentPlan
{
  public:
    /**
     * Build a plan for a conv layer.
     *
     * @param cout,cin,k filter bank geometry
     * @param frag_size weights per fragment (sub-array rows m)
     * @param policy row-ordering policy
     */
    static FragmentPlan forConv(int64_t cout, int64_t cin, int64_t k,
                                int frag_size, PolarizationPolicy policy);

    /** Build a plan for a dense layer (policy is irrelevant: 1-d rows). */
    static FragmentPlan forDense(int64_t out, int64_t in, int frag_size);

    int64_t rows() const { return rows_; }
    int64_t cols() const { return cols_; }
    int fragSize() const { return fragSize_; }
    PolarizationPolicy policy() const { return policy_; }

    /** Number of fragments per column (last may be partial). */
    int64_t fragmentsPerCol() const;

    /** Total fragments in the layer. */
    int64_t totalFragments() const { return fragmentsPerCol() * cols_; }

    /** Natural row index of position p in the policy ordering. */
    int64_t orderedRow(int64_t p) const;

    /** Number of rows in fragment f (== fragSize except the tail). */
    int64_t fragmentRows(int64_t f) const;

    /**
     * Natural row indices covered by fragment f (positions
     * [f*fragSize, f*fragSize + fragmentRows(f)) of the ordering).
     */
    std::vector<int64_t> fragmentRowIndices(int64_t f) const;

    /**
     * Plan restricted to surviving rows after structured pruning: the
     * ordering keeps only rows with row_kept[r] != 0 and fragments are
     * re-cut over the survivors — exactly the compaction the hardware
     * mapper performs, so training-time fragments and sub-array columns
     * stay aligned (paper: polarization follows pruning).
     */
    FragmentPlan restrictedToRows(
        const std::vector<uint8_t> &row_kept) const;

  private:
    int64_t rows_ = 0, cols_ = 0;
    int fragSize_ = 1;
    PolarizationPolicy policy_ = PolarizationPolicy::WMajor;
    std::vector<int64_t> order_;   //!< permutation: position -> natural row
};

/**
 * Per-fragment sign assignment for one layer: +1 or -1 for each
 * (column, fragment) pair, stored column-major.
 */
class SignMap
{
  public:
    SignMap() = default;
    SignMap(int64_t cols, int64_t frags_per_col);

    int8_t get(int64_t col, int64_t frag) const;
    void set(int64_t col, int64_t frag, int8_t sign);

    int64_t cols() const { return cols_; }
    int64_t fragsPerCol() const { return fragsPerCol_; }

    /** Count of positive-sign fragments (for diagnostics). */
    int64_t countPositive() const;

  private:
    int64_t cols_ = 0, fragsPerCol_ = 0;
    std::vector<int8_t> signs_;
};

} // namespace forms::admm

#endif // FORMS_ADMM_FRAGMENT_HH
