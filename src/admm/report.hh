/**
 * @file
 * Crossbar accounting and compression reporting (paper Tables I & II).
 *
 * The paper reports "crossbar reduction" relative to the original
 * 32-bit model mapped with the splitting scheme [41] (two crossbars
 * holding positive/negative magnitudes). FORMS maps only magnitudes (one
 * crossbar) plus a 1R sign indicator, with quantized weights. This
 * module reproduces that accounting from first principles: it counts
 * crossbars needed for each weight matrix under a mapping scheme, then
 * forms the reduction ratio.
 */

#ifndef FORMS_ADMM_REPORT_HH
#define FORMS_ADMM_REPORT_HH

#include "admm/compressor.hh"

namespace forms::admm {

/** How signed weights are realized on crossbars. */
enum class SignScheme
{
    Splitting,      //!< two crossbars (positive / negative magnitudes)
    OffsetIsaac,    //!< single crossbar, weights biased positive (ISAAC)
    PolarizedForms, //!< single crossbar + 1R sign indicator (FORMS)
};

/** Geometry and precision of a crossbar mapping. */
struct MappingSpec
{
    int64_t xbarRows = 128;
    int64_t xbarCols = 128;
    int weightBits = 8;    //!< magnitude bits stored per weight
    int cellBits = 2;      //!< bits per ReRAM cell
    SignScheme scheme = SignScheme::PolarizedForms;

    /** Crossbar columns occupied by one weight. */
    int cellsPerWeight() const
    {
        return (weightBits + cellBits - 1) / cellBits;
    }

    /** Multiplier on crossbar count due to the sign scheme. */
    int crossbarFactor() const
    {
        return scheme == SignScheme::Splitting ? 2 : 1;
    }
};

/**
 * Crossbars needed to hold a rows x cols weight matrix under `spec`
 * (grid of ceil(rows/R) x ceil(cols*cells/C), times the sign-scheme
 * factor).
 */
int64_t crossbarsForMatrix(int64_t rows, int64_t cols,
                           const MappingSpec &spec);

/** Per-layer crossbar/compression data. */
struct LayerReport
{
    std::string name;
    int64_t rows = 0, cols = 0;           //!< original 2-d format
    int64_t keptRows = 0, keptCols = 0;   //!< after structured pruning
    int64_t baselineCrossbars = 0;        //!< 32-bit, splitting scheme
    int64_t formsCrossbars = 0;           //!< pruned, quantized, polarized
};

/** Whole-model compression report. */
struct CompressionReport
{
    std::vector<LayerReport> layers;
    double pruneRatio = 1.0;       //!< weight-count reduction from S
    double crossbarReduction = 1.0;//!< baseline / FORMS crossbar count
    int64_t baselineCrossbars = 0;
    int64_t formsCrossbars = 0;
    double accuracyBefore = 0.0;
    double accuracyAfter = 0.0;

    /** Accuracy drop in percentage points (positive = worse). */
    double accuracyDropPct() const
    {
        return (accuracyBefore - accuracyAfter) * 100.0;
    }
};

/**
 * Build the Tables I/II-style report from a finished compression run.
 *
 * @param comp the compressor after run()
 * @param outcome the run's outcome (accuracies, prune ratio)
 * @param baseline mapping of the uncompressed model (default: 32-bit
 *        splitting scheme, per the paper's comparison basis)
 * @param forms mapping of the compressed model
 */
CompressionReport buildReport(const AdmmCompressor &comp,
                              const CompressionOutcome &outcome,
                              const MappingSpec &baseline,
                              const MappingSpec &forms);

/** The paper's default baseline mapping: 32-bit, splitting scheme. */
MappingSpec baselineMapping32(int64_t xbar_rows = 128,
                              int64_t xbar_cols = 128);

/** The paper's FORMS mapping: quantized magnitudes + sign indicator. */
MappingSpec formsMapping(int weight_bits = 8, int64_t xbar_rows = 128,
                         int64_t xbar_cols = 128);

} // namespace forms::admm

#endif // FORMS_ADMM_REPORT_HH
