#include "admm/report.hh"

namespace forms::admm {

int64_t
crossbarsForMatrix(int64_t rows, int64_t cols, const MappingSpec &spec)
{
    if (rows <= 0 || cols <= 0)
        return 0;
    const int64_t cell_cols = cols * spec.cellsPerWeight();
    const int64_t grid_r = (rows + spec.xbarRows - 1) / spec.xbarRows;
    const int64_t grid_c = (cell_cols + spec.xbarCols - 1) / spec.xbarCols;
    return grid_r * grid_c * spec.crossbarFactor();
}

MappingSpec
baselineMapping32(int64_t xbar_rows, int64_t xbar_cols)
{
    MappingSpec m;
    m.xbarRows = xbar_rows;
    m.xbarCols = xbar_cols;
    m.weightBits = 32;
    m.cellBits = 2;
    m.scheme = SignScheme::Splitting;
    return m;
}

MappingSpec
formsMapping(int weight_bits, int64_t xbar_rows, int64_t xbar_cols)
{
    MappingSpec m;
    m.xbarRows = xbar_rows;
    m.xbarCols = xbar_cols;
    m.weightBits = weight_bits;
    m.cellBits = 2;
    m.scheme = SignScheme::PolarizedForms;
    return m;
}

CompressionReport
buildReport(const AdmmCompressor &comp, const CompressionOutcome &outcome,
            const MappingSpec &baseline, const MappingSpec &forms)
{
    CompressionReport rep;
    rep.pruneRatio = outcome.pruneRatio;
    rep.accuracyBefore = outcome.accuracyBefore;
    rep.accuracyAfter = outcome.accuracyAfter;

    for (const auto &st : comp.layers()) {
        LayerReport lr;
        lr.name = st.name;
        // Original 2-d geometry comes from the weight tensor itself —
        // the fragment plan may already be restricted to kept rows.
        const WeightView view = st.view();
        lr.rows = view.rows();
        lr.cols = view.cols();
        if (st.mask) {
            lr.keptRows = st.mask->keptRows();
            lr.keptCols = st.mask->keptCols();
        } else {
            lr.keptRows = lr.rows;
            lr.keptCols = lr.cols;
        }
        lr.baselineCrossbars =
            crossbarsForMatrix(lr.rows, lr.cols, baseline);
        lr.formsCrossbars =
            crossbarsForMatrix(lr.keptRows, lr.keptCols, forms);
        rep.baselineCrossbars += lr.baselineCrossbars;
        rep.formsCrossbars += lr.formsCrossbars;
        rep.layers.push_back(std::move(lr));
    }
    rep.crossbarReduction = rep.formsCrossbars
        ? static_cast<double>(rep.baselineCrossbars) /
          static_cast<double>(rep.formsCrossbars)
        : 0.0;
    return rep;
}

} // namespace forms::admm
