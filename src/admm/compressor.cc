#include "admm/compressor.hh"

namespace forms::admm {

WeightView
LayerState::view() const
{
    if (param.isConvWeight)
        return WeightView::conv(*param.value);
    return WeightView::dense(*param.value);
}

AdmmCompressor::AdmmCompressor(nn::Network &net,
                               const nn::SyntheticImageDataset &data,
                               AdmmConfig cfg)
    : net_(net), data_(data), cfg_(cfg)
{
    for (auto &p : net_.params()) {
        if (!p.isConvWeight && !p.isDenseWeight)
            continue;
        LayerState st;
        st.name = p.name;
        st.param = p;
        if (p.isConvWeight) {
            const Tensor &w = *p.value;
            st.plan = FragmentPlan::forConv(w.dim(0), w.dim(1), w.dim(2),
                                            cfg_.fragSize, cfg_.policy);
        } else {
            const Tensor &w = *p.value;
            st.plan = FragmentPlan::forDense(w.dim(0), w.dim(1),
                                             cfg_.fragSize);
        }
        st.z = *p.value;
        st.u = Tensor(p.value->shape());
        layers_.push_back(std::move(st));
    }
    FORMS_ASSERT(!layers_.empty(), "network has no prunable weights");
}

double
AdmmCompressor::evalAccuracy()
{
    nn::TrainConfig tc = cfg_.train;
    tc.epochs = 0;
    nn::Trainer t(net_, data_, tc);
    return t.evalTest();
}

void
AdmmCompressor::enforceAll()
{
    for (auto &st : layers_) {
        WeightView v = st.view();
        if (st.mask)
            applyMask(v, *st.mask);
        if (st.signs)
            projectPolarization(v, st.plan, *st.signs);
        if (st.quantScale > 0.0f) {
            QuantSpec q;
            q.bits = cfg_.quantBits;
            q.scale = st.quantScale;
            projectQuantize(v, q);
        }
    }
}

int64_t
AdmmCompressor::signViolations() const
{
    int64_t n = 0;
    for (const auto &st : layers_) {
        if (!st.signs)
            continue;
        n += countSignViolations(st.view(), st.plan, *st.signs);
    }
    return n;
}

void
AdmmCompressor::admmEpochs(int epochs,
                           const std::function<void(LayerState &)> &proj,
                           bool refresh_signs)
{
    if (epochs <= 0)
        return;
    nn::TrainConfig tc = cfg_.train;
    tc.epochs = epochs;
    nn::Trainer trainer(net_, data_, tc);

    // Augmented-Lagrangian gradient: g += rho * (W - Z + U).
    trainer.setGradHook([this]() {
        for (auto &st : layers_) {
            float *g = st.param.grad->data();
            const float *w = st.param.value->data();
            const float *z = st.z.data();
            const float *u = st.u.data();
            for (int64_t i = 0; i < st.param.value->numel(); ++i)
                g[i] += cfg_.rho * (w[i] - z[i] + u[i]);
        }
    });

    // Per-epoch: Z = proj(W + U); U += W - Z; optionally refresh signs.
    trainer.setEpochHook([this, &proj, refresh_signs](int epoch) {
        for (auto &st : layers_) {
            if (refresh_signs && st.signs &&
                cfg_.signRefreshEpochs > 0 &&
                (epoch + 1) % cfg_.signRefreshEpochs == 0) {
                // Recompute the target sign from the live weights
                // (paper: update target signs every M epochs).
                st.signs = computeSigns(st.view(), st.plan, cfg_.signRule);
            }
            // Z-update: project W + U onto the constraint set.
            st.z = *st.param.value;
            st.z.add(st.u);
            proj(st);
            // U-update: U += W - Z.
            st.u.add(*st.param.value);
            st.u.sub(st.z);
        }
    });
    trainer.run();
}

void
AdmmCompressor::finetune(int epochs)
{
    if (epochs <= 0)
        return;
    nn::TrainConfig tc = cfg_.train;
    tc.epochs = epochs;
    nn::Trainer trainer(net_, data_, tc);
    trainer.setPostStepHook([this]() { enforceAll(); });
    trainer.run();
}

void
AdmmCompressor::phasePrune()
{
    PruneSpec spec;
    spec.filterKeep = cfg_.filterKeep;
    spec.shapeKeep = cfg_.shapeKeep;
    spec.xbarDim = cfg_.xbarDim;
    spec.crossbarAware = cfg_.crossbarAware;

    admmEpochs(cfg_.admmEpochsPerPhase, [&spec](LayerState &st) {
        WeightView zv = st.param.isConvWeight
            ? WeightView::conv(st.z) : WeightView::dense(st.z);
        projectStructuredPrune(zv, spec);
    }, false);

    // Hard projection of the live weights, then record the mask and
    // re-cut the fragment plan over the surviving rows — polarization
    // fragments must match the compacted hardware mapping.
    for (auto &st : layers_) {
        WeightView v = st.view();
        projectStructuredPrune(v, spec);
        st.mask = extractMask(st.view());
        st.plan = st.plan.restrictedToRows(st.mask->rowKept);
        st.u.fill(0.0f);
    }
    finetune(cfg_.finetuneEpochs);
}

void
AdmmCompressor::phasePolarize()
{
    // Initial signs from the (pruned) model — paper: the sign of each
    // fragment is determined by the structurally pruned model.
    for (auto &st : layers_)
        st.signs = computeSigns(st.view(), st.plan, cfg_.signRule);

    admmEpochs(cfg_.admmEpochsPerPhase, [this](LayerState &st) {
        WeightView zv = st.param.isConvWeight
            ? WeightView::conv(st.z) : WeightView::dense(st.z);
        if (st.mask)
            applyMask(zv, *st.mask);
        projectPolarization(zv, st.plan, *st.signs);
    }, true);

    // Final signs + hard projection; fine-tune preserves them.
    for (auto &st : layers_) {
        st.signs = computeSigns(st.view(), st.plan, cfg_.signRule);
        WeightView v = st.view();
        if (st.mask)
            applyMask(v, *st.mask);
        projectPolarization(v, st.plan, *st.signs);
        st.u.fill(0.0f);
    }
    finetune(cfg_.finetuneEpochs);
}

void
AdmmCompressor::phaseQuantize()
{
    admmEpochs(cfg_.admmEpochsPerPhase, [this](LayerState &st) {
        WeightView zv = st.param.isConvWeight
            ? WeightView::conv(st.z) : WeightView::dense(st.z);
        if (st.mask)
            applyMask(zv, *st.mask);
        if (st.signs)
            projectPolarization(zv, st.plan, *st.signs);
        QuantSpec q;
        q.bits = cfg_.quantBits;
        projectQuantize(zv, q);
    }, false);

    for (auto &st : layers_) {
        QuantSpec q;
        q.bits = cfg_.quantBits;
        st.quantScale = projectQuantize(st.view(), q);
    }
    // One constraint-preserving pass settles biases/batch norms around
    // the quantized weights (weights themselves stay on the grid via
    // enforceAll after every step).
    finetune(std::max(1, cfg_.finetuneEpochs / 2));
    enforceAll();
}

CompressionOutcome
AdmmCompressor::run()
{
    CompressionOutcome out;
    out.accuracyBefore = evalAccuracy();

    if (cfg_.prune)
        phasePrune();
    if (cfg_.polarize)
        phasePolarize();
    if (cfg_.quantize)
        phaseQuantize();
    enforceAll();

    out.accuracyAfter = evalAccuracy();
    out.signViolations = signViolations();

    for (auto &st : layers_) {
        const int64_t total = st.param.value->numel();
        out.totalWeights += total;
        if (st.mask) {
            out.keptWeights += st.mask->keptRows() * st.mask->keptCols();
        } else {
            out.keptWeights += total;
        }
    }
    out.pruneRatio = out.keptWeights
        ? static_cast<double>(out.totalWeights) /
          static_cast<double>(out.keptWeights)
        : 1.0;
    return out;
}

} // namespace forms::admm
