/**
 * @file
 * The three FORMS constraint sets (paper §III) and their Euclidean
 * projections, used as the Z-update of ADMM-regularized training:
 *
 *  - S_i: crossbar-aware structured pruning (filter + filter-shape),
 *  - P_i: fragment polarization (same sign within each fragment),
 *  - Q_i: ReRAM-customized quantization (uniform magnitude levels).
 */

#ifndef FORMS_ADMM_CONSTRAINTS_HH
#define FORMS_ADMM_CONSTRAINTS_HH

#include "admm/fragment.hh"

namespace forms::admm {

/**
 * Crossbar-aware keep count: the number of filters/shapes retained when
 * pruning `total` units at `keep_ratio`, rounded *up* to fill complete
 * crossbar extents of `xbar_dim`. Pruning below a crossbar boundary
 * buys no hardware and only costs accuracy (paper §III-A), so the keep
 * count snaps to ceil(keep/xbar_dim)*xbar_dim, capped at `total`.
 */
int64_t crossbarAwareKeep(int64_t total, double keep_ratio,
                          int64_t xbar_dim);

/** Structured pruning configuration for one layer. */
struct PruneSpec
{
    double filterKeep = 1.0;   //!< alpha: fraction of filters kept
    double shapeKeep = 1.0;    //!< beta: fraction of filter-shapes kept
    int64_t xbarDim = 128;     //!< crossbar extent for aware rounding
    bool crossbarAware = true;
};

/**
 * Projection onto S: keep the top-norm filters (columns of the 2-d
 * format) and filter shapes (rows), zero the rest. Returns the applied
 * (row_keep, col_keep) counts.
 */
std::pair<int64_t, int64_t> projectStructuredPrune(WeightView view,
                                                   const PruneSpec &spec);

/** Masks of surviving rows/columns after structured pruning. */
struct PruneMask
{
    std::vector<uint8_t> rowKept;   //!< size rows, 1 = kept
    std::vector<uint8_t> colKept;   //!< size cols, 1 = kept

    int64_t keptRows() const;
    int64_t keptCols() const;
};

/** Extract the nonzero row/column structure of a (pruned) weight. */
PruneMask extractMask(const WeightView &view);

/** Zero every element whose row or column is masked out. */
void applyMask(WeightView view, const PruneMask &mask);

/** Fragment-sign selection rule. */
enum class SignRule
{
    SumRule,     //!< paper Eq. (2): sign of the fragment weight sum
    MinEnergy,   //!< exact Euclidean projection: keep the heavier orthant
};

/**
 * Compute fragment signs for the current weights under `rule`.
 * Zero-sum fragments are assigned +1 (paper convention: sum >= 0).
 */
SignMap computeSigns(const WeightView &view, const FragmentPlan &plan,
                     SignRule rule = SignRule::SumRule);

/**
 * Projection onto P given fixed fragment signs: weights whose sign
 * opposes their fragment sign are set to zero (the Euclidean projection
 * onto the signed orthant).
 */
void projectPolarization(WeightView view, const FragmentPlan &plan,
                         const SignMap &signs);

/** Count weights violating the fragment signs (0 after projection). */
int64_t countSignViolations(const WeightView &view,
                            const FragmentPlan &plan, const SignMap &signs);

/** Quantization configuration for one layer. */
struct QuantSpec
{
    int bits = 8;          //!< magnitude bits (multiple of cell bits)
    float scale = 0.0f;    //!< level spacing; 0 = derive from maxAbs
};

/**
 * Projection onto Q: symmetric uniform quantization of magnitudes to
 * 2^bits - 1 nonzero levels (sign preserved; exact zeros stay zero).
 * Returns the level spacing used.
 */
float projectQuantize(WeightView view, const QuantSpec &spec);

/** Quantize a single value with the given spacing and bit budget. */
float quantizeValue(float v, float scale, int bits);

} // namespace forms::admm

#endif // FORMS_ADMM_CONSTRAINTS_HH
