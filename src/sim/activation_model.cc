#include "sim/activation_model.hh"

#include <algorithm>
#include <cmath>

namespace forms::sim {

uint32_t
ActivationModel::sample(Rng &rng) const
{
    if (rng.bernoulli(zeroFraction))
        return 0;
    const double v = std::exp(rng.gaussian(logMedian, logSigma));
    const double qmax =
        static_cast<double>((1u << inputBits) - 1);
    const double clamped = std::min(v, qmax);
    return static_cast<uint32_t>(std::llround(clamped));
}

std::vector<uint32_t>
ActivationModel::sampleVector(Rng &rng, size_t n) const
{
    std::vector<uint32_t> out(n);
    for (auto &v : out)
        v = sample(rng);
    return out;
}

double
ActivationModel::averageEic(int frag_size, int samples,
                            uint64_t seed) const
{
    return eicStats(frag_size, samples, seed).averageEic();
}

arch::EicStats
ActivationModel::eicStats(int frag_size, int samples, uint64_t seed) const
{
    Rng rng(seed);
    arch::EicStats stats(inputBits);
    std::vector<uint32_t> frag(static_cast<size_t>(frag_size));
    for (int s = 0; s < samples; ++s) {
        for (auto &v : frag)
            v = sample(rng);
        stats.record(arch::fragmentEic(frag));
    }
    return stats;
}

ActivationModel
ActivationModel::calibratedResNet50()
{
    // Calibrated so that averageEic(4) ~ 10.7 and averageEic(128) ~ 15
    // (paper Figure 8(b)); see tests/test_activation_model.cc.
    ActivationModel m;
    m.zeroFraction = 0.35;
    m.logMedian = 5.6;
    m.logSigma = 1.9;
    m.inputBits = 16;
    return m;
}

} // namespace forms::sim
