/**
 * @file
 * Device-variation accuracy study (paper §V-E, Table VI): measure the
 * average accuracy degradation over repeated variation draws for
 * differently compressed versions of the same network.
 */

#ifndef FORMS_SIM_VARIATION_STUDY_HH
#define FORMS_SIM_VARIATION_STUDY_HH

#include "admm/compressor.hh"
#include "reram/variation.hh"

namespace forms::sim {

/** Configuration of one variation experiment. */
struct VariationStudyConfig
{
    double sigma = 0.1;   //!< log-normal sigma (paper: 0.1)
    int runs = 50;        //!< paper: average of 50 runs
    int weightBits = 8;
    int cellBits = 2;
    uint64_t seed = 2024;
};

/** Outcome of one variation experiment. */
struct VariationStudyResult
{
    double cleanAccuracy = 0.0;    //!< accuracy without variation
    double meanAccuracy = 0.0;     //!< mean accuracy across runs
    double stddevAccuracy = 0.0;

    /** Accuracy degradation in percentage points. */
    double degradationPct() const
    {
        return (cleanAccuracy - meanAccuracy) * 100.0;
    }
};

/**
 * Run the variation study on a network: repeatedly perturb all conv /
 * dense weights through the per-cell log-normal model, evaluate test
 * accuracy, and restore the original weights.
 */
VariationStudyResult runVariationStudy(
    nn::Network &net, const nn::SyntheticImageDataset &data,
    const VariationStudyConfig &cfg);

} // namespace forms::sim

#endif // FORMS_SIM_VARIATION_STUDY_HH
