/**
 * @file
 * Parametric activation statistics for the zero-skipping model.
 *
 * Effective input cycles depend only on the distribution of quantized
 * activation values. Post-BatchNorm/ReLU activations are sparse (a
 * sizeable zero fraction) and heavy-tailed; a zero-inflated log-normal
 * over the 16-bit grid reproduces the paper's measured average-EIC
 * curve (Figure 8(b): ~10.7 cycles at fragment size 4 rising to ~15 at
 * 128). The model is calibrated against those two published points;
 * the fig8 bench also cross-checks against activations measured from a
 * trained (scaled) network.
 */

#ifndef FORMS_SIM_ACTIVATION_MODEL_HH
#define FORMS_SIM_ACTIVATION_MODEL_HH

#include <vector>

#include "arch/zero_skip.hh"
#include "common/rng.hh"

namespace forms::sim {

/** Zero-inflated log-normal activation distribution on a b-bit grid. */
struct ActivationModel
{
    double zeroFraction = 0.35;  //!< exact zeros (ReLU kills ~a third)
    double logMedian = 5.6;      //!< median of ln(value) for nonzeros
    double logSigma = 1.9;       //!< sigma of ln(value)
    int inputBits = 16;

    /** Draw one quantized activation. */
    uint32_t sample(Rng &rng) const;

    /** Draw a vector of activations. */
    std::vector<uint32_t> sampleVector(Rng &rng, size_t n) const;

    /**
     * Monte-Carlo estimate of the average EIC for a fragment size
     * (deterministic for a fixed seed).
     */
    double averageEic(int frag_size, int samples = 20000,
                      uint64_t seed = 1234) const;

    /** Full EIC histogram for a fragment size. */
    arch::EicStats eicStats(int frag_size, int samples = 20000,
                            uint64_t seed = 1234) const;

    /** Model calibrated to the paper's ResNet-50 Figure 8(b) curve. */
    static ActivationModel calibratedResNet50();
};

} // namespace forms::sim

#endif // FORMS_SIM_ACTIVATION_MODEL_HH
