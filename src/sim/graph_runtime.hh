/**
 * @file
 * DAG executor for compiled layer graphs (compile/graph.hh) on the
 * simulated crossbar substrate.
 *
 * GraphRuntime programs one CrossbarEngine per matrix node (Conv /
 * Dense) of the graph and streams whole batches through the DAG in a
 * fixed topological order, with reference-counted intermediate buffers
 * (a node's output is released as soon as its last consumer has run)
 * and elementwise-add join nodes for residual topologies. Unfolded
 * BatchNorm nodes execute functionally in eval mode.
 *
 * Determinism contract (DESIGN.md §3/§4): logits and merged per-node
 * EngineStats are bit-identical for any thread count. The node
 * schedule is the deterministic topological order — independent of
 * the pool — every stage kernel parallelizes only over disjoint-write
 * axes, join nodes accumulate operands in fixed order, and each
 * engine's presentation RNG stream is keyed by (variationSeed, global
 * presentation index).
 *
 * Thread-safety: one forward()/accuracy() call at a time per runtime
 * (engines advance mutable presentation streams); the call itself
 * shards across the configured ThreadPool internally. Distinct
 * GraphRuntime instances are independent. The borrowed graph and
 * layer states must not be mutated while the runtime is alive.
 *
 * Typical flow:
 *
 *     auto graph = compile::lowerNetwork(net);
 *     compile::foldBatchNorm(graph);
 *     auto states = sim::snapshotCompress(net, frag, bits);
 *     sim::GraphRuntime rt(graph, states, cfg);
 *     Tensor logits = rt.forward(batch, &report);
 */

#ifndef FORMS_SIM_GRAPH_RUNTIME_HH
#define FORMS_SIM_GRAPH_RUNTIME_HH

#include "compile/graph.hh"
#include "sim/graph_exec.hh"
#include "sim/runtime.hh"

namespace forms::sim {

/** Crossbar allocation of one programmed graph node. */
struct GraphNodeAlloc
{
    int nodeId = -1;
    std::string name;
    Shape outShape;        //!< per-sample shape (from inferShapes)
    int64_t crossbars = 0;
};

/** Executes a compiled, folded, compressed layer graph. */
class GraphRuntime
{
  public:
    /**
     * Map and program every Conv/Dense node of `graph`.
     *
     * @param graph the compiled DAG; borrowed (and its backing
     *        nn::Network) must outlive the runtime
     * @param layers per-layer compression state (matched to matrix
     *        nodes by weight-tensor identity) — build it *after*
     *        foldBatchNorm so the projections see folded weights
     * @param cfg geometry, engine knobs and the pool to shard on
     */
    GraphRuntime(const compile::Graph &graph,
                 std::vector<admm::LayerState> &layers,
                 RuntimeConfig cfg);
    ~GraphRuntime();

    GraphRuntime(const GraphRuntime &) = delete;
    GraphRuntime &operator=(const GraphRuntime &) = delete;

    /**
     * Stream a whole NCHW batch through the DAG on the simulated
     * crossbars. Returns the graph output (batch x classes for a
     * classifier). Per-node stats merge into `report` rows in
     * topological order.
     */
    Tensor forward(const Tensor &batch, RuntimeReport *report = nullptr);

    /**
     * Stream a batch of independently-identified images: image i draws
     * all its per-presentation randomness from streams keyed by
     * `ids[i]` (one id per batch image) instead of the runtime's
     * implicit id counter. A request's logits — and, when
     * `per_request` is given, its RuntimeReport (one per image,
     * resized/merged in batch order) — are therefore bit-identical no
     * matter which batch the request lands in or in what order
     * requests arrived: the serving layer's batch-invariance contract
     * (docs/SERVING.md). Does not consume ids from the counter
     * forward() uses.
     */
    Tensor forwardRequests(const Tensor &batch, const uint64_t *ids,
                           std::vector<RuntimeReport> *per_request = nullptr,
                           RuntimeReport *report = nullptr);

    /** Fraction of argmax(logits) == label over a labelled batch. */
    double accuracy(const Tensor &images, const std::vector<int> &labels,
                    RuntimeReport *report = nullptr);

    /**
     * Restart every programmed engine's presentation RNG stream and
     * the forward() image-id counter, so the next forward() replays
     * the same randomness as a fresh runtime.
     */
    void resetPresentationStreams();

    /** Number of executable nodes (programmed + functional). */
    size_t nodes() const;

    /** Number of crossbar-programmed (Conv/Dense) nodes. */
    size_t programmedNodes() const;

    /** Total crossbars programmed across all nodes. */
    int64_t totalCrossbars() const;

    /** Per-programmed-node crossbar allocation, in topological order. */
    std::vector<GraphNodeAlloc> allocation() const;

  private:
    const compile::Graph &graph_;
    std::vector<int> topo_;               //!< fixed node schedule
    std::vector<arch::EnginePool> pools_; //!< one pool (single chip)
    std::vector<NodeExec> execs_;         //!< parallel to topo_
    RuntimeConfig cfg_;
    uint64_t nextImageId_ = 0;            //!< forward()'s id counter

    ThreadPool &pool() const;
};

} // namespace forms::sim

#endif // FORMS_SIM_GRAPH_RUNTIME_HH
