#include "sim/variation_study.hh"

#include "common/stats.hh"
#include "nn/trainer.hh"

namespace forms::sim {

VariationStudyResult
runVariationStudy(nn::Network &net, const nn::SyntheticImageDataset &data,
                  const VariationStudyConfig &cfg)
{
    VariationStudyResult res;

    nn::TrainConfig tc;
    tc.epochs = 0;
    nn::Trainer evaluator(net, data, tc);
    res.cleanAccuracy = evaluator.evalTest();

    // Stash original weights of every prunable parameter.
    std::vector<nn::ParamRef> params;
    std::vector<Tensor> saved;
    for (auto &p : net.params()) {
        if (!p.isConvWeight && !p.isDenseWeight)
            continue;
        params.push_back(p);
        saved.push_back(*p.value);
    }

    Rng rng(cfg.seed);
    RunningStat acc_stat;
    for (int run = 0; run < cfg.runs; ++run) {
        for (size_t i = 0; i < params.size(); ++i) {
            reram::VariationConfig vc;
            vc.sigma = cfg.sigma;
            vc.weightBits = cfg.weightBits;
            vc.cellBits = cfg.cellBits;
            reram::perturbWeights(*params[i].value, vc, rng);
        }
        acc_stat.add(evaluator.evalTest());
        for (size_t i = 0; i < params.size(); ++i)
            *params[i].value = saved[i];
    }
    res.meanAccuracy = acc_stat.mean();
    res.stddevAccuracy = acc_stat.stddev();
    return res;
}

} // namespace forms::sim
