/**
 * @file
 * Shared DAG-execution core of the graph-based runtimes.
 *
 * GraphRuntime (one engine set) and PipelineRuntime (per-chip engine
 * pools) execute a compiled graph identically — the pipeline only
 * adds a partition and a timing model on top. Both build their node
 * list with buildNodeExecs() and stream batches with runGraph(), so
 * the op dispatch, the refcounted buffer walk and the Add-join
 * accumulation order live in exactly one place and the two runtimes
 * cannot drift apart numerically (their bit-identity is asserted by
 * tests/test_pipeline_runtime.cc and bench_fig15_multichip).
 *
 * Thread-safety: buildNodeExecs() and runGraph() must be called from
 * one thread per engine set (engines advance mutable presentation
 * streams); runGraph() shards its work across the given ThreadPool.
 */

#ifndef FORMS_SIM_GRAPH_EXEC_HH
#define FORMS_SIM_GRAPH_EXEC_HH

#include <functional>

#include "arch/chip.hh"
#include "arch/remap.hh"
#include "compile/graph.hh"
#include "sim/runtime.hh"
#include "sim/stage_kernels.hh"

namespace forms::sim {

/**
 * One executable node of a compiled DAG. Engines and mappings are
 * owned by the arch::EnginePool the node was programmed into; the
 * exec only points at them, so it is freely movable/copyable.
 */
struct NodeExec
{
    compile::Op op = compile::Op::Input;
    int nodeId = -1;
    int chip = 0;              //!< primary chip (0 for single-chip runtimes)
    std::string name;
    std::vector<int> inputs;   //!< producer node ids

    // Conv / Dense: the programmed hardware, owned by each hosting
    // chip's pool. `engine` is the primary replica (== replicas[0]);
    // a replicated matrix node (compile::Schedule stage width > 1)
    // carries one engine per replica chip, all programmed from the
    // same weights (see sim::StageEngines for the slicing contract).
    arch::CrossbarEngine *engine = nullptr;
    std::vector<arch::CrossbarEngine *> replicas;
    std::vector<int> replicaChips;   //!< parallel to replicas
    const arch::MappedLayer *mapped = nullptr;
    arch::RemapReport remap;   //!< spare-remap outcome (empty w/o faults)
    int outC = 0, k = 0, stride = 0, pad = 0;
    std::vector<float> bias;
    std::vector<float> chanScale;  //!< digital BN fold (may be empty)
    StageScale scale;              //!< resolved input-quantization mode

    // Pooling geometry.
    int poolK = 0, poolStride = 0;

    // Unfolded BatchNorm, eval mode: y = x * scale[c] + shift[c].
    std::vector<float> bnScale, bnShift;

    // Conv: reused im2col buffer — steady-state micro-batches lower
    // into the same storage instead of allocating per call.
    Tensor im2colScratch;
};

/**
 * Per-phase timing callback of runGraph, fired once per (programmed
 * node, replica) in execution order: exec index, replica index, and
 * the slice's PhaseSample (sim/stage_kernels.hh) — the ADC-limited
 * model-time delta, values quantized, and the presented/skipped input
 * bit-cycle counters. The pipeline runtime's intra-chip tile pipeline
 * model (sim/perf_model.hh) turns these into per-phase busy intervals
 * and per-phase measured EIC fractions.
 */
using PhaseSink =
    std::function<void(size_t, int, const PhaseSample &)>;

/**
 * Build the executable form of every node in `topo`: map and program
 * matrix nodes into the pools of every chip chips_of(id) names
 * (device variation draws at program time from a stream seeded only
 * by the engine config, so replicas program identical conductances),
 * snapshot eval-mode BN affines, copy conv/pool geometry and the
 * digital output stage, and resolve each matrix node's
 * input-quantization scale (in arch::ScaleMode::Static, from
 * cfg.calibration or the node's attached Node::inScale — fatal()s
 * when neither covers a programmed node).
 *
 * @param layers per-layer compression state, matched to matrix nodes
 *        by weight-tensor identity; fatal()s when a node has none
 * @param chips_of node id -> hosting chip indices in
 *        [0, pools.size()), primary first; single-chip runtimes
 *        return {0}, the pipeline runtime returns the node's stage
 *        chips (several for a replicated stage)
 */
std::vector<NodeExec>
buildNodeExecs(const compile::Graph &g, const std::vector<int> &topo,
               std::vector<admm::LayerState> &layers,
               const RuntimeConfig &cfg,
               std::vector<arch::EnginePool> &pools,
               const std::function<std::vector<int>(int)> &chips_of);

/**
 * Stream one NCHW batch through the DAG in `execs` order (a
 * topological order of `g`) with reference-counted intermediate
 * buffers and fixed left-then-right Add joins (DESIGN.md §4).
 * Returns a copy of the graph output.
 *
 * @param stats per-exec EngineStats accumulators (parallel to
 *        `execs`); each programmed node's batch stats merge into its
 *        slot in presentation order — replicated nodes fold their
 *        replica slices in ascending replica (= presentation) order
 *        into the same slot — so reusing the same vector across
 *        calls reproduces one engine-lifetime serial fold
 * @param on_phase optional per-(node, replica) timing sink; see
 *        PhaseSink
 * @param image_ids optional stable per-image presentation-stream ids
 *        (one per batch image). When set, every programmed node keys
 *        its per-presentation RNG streams by image id instead of the
 *        engine-lifetime counters (sim::StageEngines::imageIds): the
 *        request-keyed path that makes serving batch-invariant. The
 *        offline runtimes pass consecutive ids, which reproduces the
 *        counter-keyed behavior bit for bit.
 * @param per_image optional per-(exec, image) stats accumulators
 *        (requires image_ids): exec `idx`'s stats for batch image i
 *        fold into per_image[idx * per_image_stride + i], each group
 *        bitwise-identical to a single-image forward's node
 *        accumulator. The flat per-node fold into `stats` is
 *        unchanged. The stride lets the pipeline runtime aim
 *        micro-batch slices into one full-batch array.
 *
 * `execs` is mutable for the same reason it was already
 * one-caller-at-a-time: programmed nodes carry per-node execution
 * state (engine presentation streams, the conv im2col scratch).
 */
Tensor runGraph(const compile::Graph &g, std::vector<NodeExec> &execs,
                const Tensor &batch, ThreadPool &tp, int input_bits,
                std::vector<arch::EngineStats> &stats,
                const PhaseSink &on_phase = {},
                const uint64_t *image_ids = nullptr,
                arch::EngineStats *per_image = nullptr,
                int64_t per_image_stride = 0);

/**
 * Merge every programmed exec's accumulated stats into `report` rows
 * (one row per programmed node, topological order) — the row
 * semantics both graph runtimes expose, kept in one place so their
 * reports stay interchangeable.
 */
void recordNodeRows(const std::vector<NodeExec> &execs,
                    const std::vector<arch::EngineStats> &stats,
                    RuntimeReport &report);

/**
 * Expand per-(exec, image) accumulators (runGraph's `per_image`
 * channel, laid out [idx * stride + i]) into one RuntimeReport per
 * image: image i's rows carry the same names, order and crossbar
 * counts as recordNodeRows, with stats covering only that image's
 * presentations — bitwise-identical to the report of a single-image
 * forward under the same stream ids. `reports` is resized to
 * `images`; existing rows merge (recordLayer semantics).
 */
void recordPerImageRows(const std::vector<NodeExec> &execs,
                        const arch::EngineStats *per_image,
                        int64_t stride, int64_t images,
                        std::vector<RuntimeReport> &reports);

} // namespace forms::sim

#endif // FORMS_SIM_GRAPH_EXEC_HH
