#include "sim/stage_kernels.hh"

#include <algorithm>

#include "compile/calibration.hh"
#include "sim/runtime.hh"
#include "tensor/ops.hh"

namespace forms::sim {

StageScale
resolveStageScale(const RuntimeConfig &cfg, const std::string &name,
                  float attached_scale)
{
    StageScale sc;
    sc.mode = cfg.scaleMode;
    if (cfg.scaleMode == arch::ScaleMode::Static) {
        if (cfg.calibration &&
            cfg.calibration->inputBits() != cfg.mapping.inputBits) {
            fatal("runtime: calibration table was built for a %d-bit "
                  "input grid but the mapping uses %d bits — its "
                  "scales would mis-span the DAC range; recalibrate "
                  "at the deployment resolution",
                  cfg.calibration->inputBits(), cfg.mapping.inputBits);
        }
        const compile::CalibEntry *e =
            cfg.calibration ? cfg.calibration->find(name) : nullptr;
        if (e)
            sc.staticScale = e->scale;
        else if (attached_scale > 0.0f)
            sc.staticScale = attached_scale;
        else {
            fatal("runtime: ScaleMode::Static but stage '%s' has no "
                  "calibrated scale — run sim::Calibrator and pass "
                  "the table in RuntimeConfig::calibration (or attach "
                  "it to the graph with CalibrationTable::attachTo)",
                  name.c_str());
        }
    }
    if (cfg.recorder) {
        sc.record = &cfg.recorder->maxima[name];
        // Bit-level activity channel: fold this stage's fragment EICs
        // into a per-stage histogram on the mapping's input grid,
        // fragmenting consecutive im2col rows the way the engine
        // fragments its input presentations.
        sc.eicStats = &cfg.recorder->eic
                           .try_emplace(name, cfg.mapping.inputBits)
                           .first->second;
        sc.eicFragSize = cfg.mapping.fragSize;
    }
    return sc;
}

std::vector<std::vector<uint32_t>>
quantizePresentations(ThreadPool &tp, int64_t count, int64_t rows,
                      int bits, const StageScale &sc,
                      std::vector<float> &scales, const float *base,
                      int64_t j_stride, int64_t r_stride,
                      arch::EngineStats *stats, int64_t ppi,
                      arch::EngineStats *per_image)
{
    const bool is_static = sc.mode == arch::ScaleMode::Static;
    std::vector<std::vector<uint32_t>> q(static_cast<size_t>(count));
    scales.assign(static_cast<size_t>(count),
                  is_static ? sc.staticScale : 0.0f);
    // Per-presentation side channels, folded below in presentation
    // order so the merged counters and recorded maxima are
    // bit-identical for any thread count (DESIGN.md §3).
    std::vector<uint64_t> clipped(
        is_static ? static_cast<size_t>(count) : 0, 0);
    std::vector<float> maxima(
        sc.record ? static_cast<size_t>(count) : 0, 0.0f);

    tp.parallelFor(0, count, 16, [&](int64_t j, int) {
        const size_t s = static_cast<size_t>(j);
        std::vector<float> col(static_cast<size_t>(rows));
        const float *p = base + j * j_stride;
        for (int64_t r = 0; r < rows; ++r)
            col[static_cast<size_t>(r)] = p[r * r_stride];
        if (sc.record) {
            float mx = 0.0f;
            for (float v : col)
                mx = std::max(mx, v);
            maxima[s] = mx;
        }
        if (is_static) {
            q[s] = arch::quantizeActivationsStatic(
                col, bits, sc.staticScale, &clipped[s]);
        } else {
            q[s] = arch::quantizeActivations(col, bits, &scales[s]);
        }
    });

    if (stats) {
        stats->quantValues +=
            static_cast<uint64_t>(count) * static_cast<uint64_t>(rows);
        for (uint64_t c : clipped)
            stats->quantClipped += c;
    }
    // Per-image quantization counters (the per-request stats channel):
    // image i sees ppi presentations x rows values, and only its own
    // presentations' clip counts — exactly what a single-image run of
    // this stage would have counted. Integer counters, so the split
    // fold cannot perturb the flat batch fold above.
    if (per_image) {
        FORMS_ASSERT(ppi > 0 && count % ppi == 0,
                     "quantizePresentations: per-image stats need the "
                     "per-image presentation count");
        for (int64_t i = 0; i < count / ppi; ++i) {
            per_image[i].quantValues += static_cast<uint64_t>(ppi) *
                static_cast<uint64_t>(rows);
        }
        if (is_static)
            for (int64_t j = 0; j < count; ++j)
                per_image[j / ppi].quantClipped +=
                    clipped[static_cast<size_t>(j)];
    }
    if (sc.record)
        sc.record->insert(sc.record->end(), maxima.begin(), maxima.end());
    // EIC fold runs serially after the parallel quantize, presentation
    // by presentation, so the histogram is bit-identical for any
    // thread count (and only calibration runs pay for it).
    if (sc.eicStats)
        for (const auto &qp : q)
            sc.eicStats->recordVector(qp, sc.eicFragSize);
    return q;
}

std::vector<float>
tensorToVector(const Tensor &t)
{
    return std::vector<float>(t.data(), t.data() + t.numel());
}

namespace {

/**
 * Dequantized value of output channel `oc` of one presentation.
 * Channels past the engine's output extent were pruned away entirely
 * (the mapper compacts them): all their weights are zero, so they
 * legitimately contribute 0 here (bias is added by the caller).
 */
float
channelValue(const std::vector<float> &deq, int oc)
{
    return static_cast<size_t>(oc) < deq.size()
        ? deq[static_cast<size_t>(oc)] : 0.0f;
}

/**
 * Execute one micro-batch's presentations on a stage's engine
 * replicas (see StageEngines in the header for the slicing and
 * bit-identity contract). `rows` is the quantized values per
 * presentation, reported through onPhase for the timing model; `ppi`
 * is presentations per image, used to expand per-image stream ids
 * into per-presentation keys on the request-keyed path.
 */
std::vector<std::vector<double>>
replicatedMvm(const StageEngines &eng,
              const std::vector<std::vector<uint32_t>> &q, int64_t rows,
              int64_t ppi, arch::EngineStats *stats, ThreadPool &tp)
{
    const size_t p = q.size();
    const size_t r_count = eng.replicas.size();
    FORMS_ASSERT(r_count >= 1, "matrix stage with no engine");
    FORMS_ASSERT(!eng.perImage || eng.imageIds,
                 "per-image stats need per-image stream ids");
    // The per-phase sink needs model-time deltas even when the caller
    // passes no accumulator.
    arch::EngineStats scratch;
    arch::EngineStats *acc =
        stats ? stats : (eng.onPhase ? &scratch : nullptr);

    // Request-keyed streams: presentation j's RNG key is
    // imageIds[j/ppi]*ppi + j%ppi instead of the engine-lifetime
    // counter, so an image's draws depend only on its own id — not on
    // batch position, batch composition, or what ran before. With the
    // offline runtimes' consecutive ids the keys equal the counter
    // values bit for bit.
    std::vector<uint64_t> keys;
    std::vector<arch::EngineStats> per;
    if (eng.imageIds) {
        const size_t u_ppi = static_cast<size_t>(ppi);
        keys.resize(p);
        for (size_t j = 0; j < p; ++j)
            keys[j] = eng.imageIds[j / u_ppi] * static_cast<uint64_t>(ppi)
                + static_cast<uint64_t>(j % u_ppi);
        if (eng.perImage)
            per.resize(p);
    }
    arch::EngineStats *per_out = per.empty() ? nullptr : per.data();

    std::vector<std::vector<double>> outs;
    if (r_count == 1) {
        const arch::EngineStats before = acc ? *acc : arch::EngineStats{};
        outs = eng.imageIds
            ? eng.replicas[0]->mvmKeyed(q, 0, p, keys.data(), acc,
                                        per_out, &tp)
            : eng.replicas[0]->mvmBatch(q, acc, &tp);
        if (eng.onPhase) {
            PhaseSample ps;
            ps.adcNs = acc->timeNs - before.timeNs;
            ps.quantValues = p * static_cast<uint64_t>(rows);
            ps.bitCycles = acc->bitCycles - before.bitCycles;
            ps.skippedCycles = acc->skippedCycles - before.skippedCycles;
            eng.onPhase(0, ps);
        }
    } else {
        // Replica r takes the contiguous presentation slice
        // [floor(p*r/R), floor(p*(r+1)/R)). Slices run (and fold
        // their per-presentation stats into `acc`) in ascending
        // replica order; on the engine-lifetime path each replica's
        // stream is seeked to its slice's global presentation index
        // first, on the keyed path the explicit keys carry the same
        // information — either way this reproduces the exact outputs
        // and stat fold of one engine running the whole stream.
        const uint64_t base = eng.imageIds
            ? 0 : eng.replicas[0]->presentationStreamPos();
        outs.reserve(p);
        for (size_t r = 0; r < r_count; ++r) {
            const size_t lo = p * r / r_count;
            const size_t hi = p * (r + 1) / r_count;
            arch::CrossbarEngine &e = *eng.replicas[r];
            const arch::EngineStats before =
                acc ? *acc : arch::EngineStats{};
            std::vector<std::vector<double>> part;
            if (eng.imageIds) {
                part = e.mvmKeyed(q, lo, hi, keys.data(), acc, per_out,
                                  &tp);
            } else {
                e.seekPresentationStream(base + lo);
                part = e.mvmRange(q, lo, hi, acc, &tp);
            }
            if (eng.onPhase) {
                PhaseSample ps;
                ps.adcNs = acc->timeNs - before.timeNs;
                ps.quantValues =
                    (hi - lo) * static_cast<uint64_t>(rows);
                ps.bitCycles = acc->bitCycles - before.bitCycles;
                ps.skippedCycles =
                    acc->skippedCycles - before.skippedCycles;
                eng.onPhase(static_cast<int>(r), ps);
            }
            for (auto &v : part)
                outs.push_back(std::move(v));
        }
        // Leave every replica at the stage's lifetime presentation
        // count so the next micro-batch (and resetPresentationStreams)
        // see the same stream position a single engine would. Keyed
        // execution never reads the counters, so they stay untouched.
        if (!eng.imageIds)
            for (arch::CrossbarEngine *e : eng.replicas)
                e->seekPresentationStream(base + p);
    }

    // Per-image fold: image i's accumulator merges its own
    // presentations in within-image order from zero — the same merge
    // sequence a single-image batch would have produced.
    if (eng.perImage)
        for (size_t j = 0; j < p; ++j)
            eng.perImage[j / static_cast<size_t>(ppi)].merge(per[j]);
    return outs;
}

} // namespace

Tensor
convStage(const Tensor &act, const StageEngines &engines,
          const arch::MappedLayer &mapped,
          const std::vector<float> &bias,
          const std::vector<float> &chan_scale, int out_c, int k,
          int stride, int pad, int input_bits, const StageScale &sc,
          ThreadPool &tp, arch::EngineStats *stats,
          Tensor *im2col_scratch)
{
    FORMS_ASSERT(chan_scale.empty() ||
                     chan_scale.size() == static_cast<size_t>(out_c),
                 "conv stage: digital scale extent mismatch");
    const int64_t n = act.dim(0);
    const int h = static_cast<int>(act.dim(2));
    const int w = static_cast<int>(act.dim(3));
    const int oh = convOutDim(h, k, stride, pad);
    const int ow = convOutDim(w, k, stride, pad);

    // Lower to presentations: column j of the im2col matrix is patch
    // (img, oy, ox) with j = (img*oh + oy)*ow + ox. The caller's
    // scratch (when given) absorbs the per-micro-batch allocation.
    Tensor local_cols;
    Tensor &cols = im2col_scratch ? *im2col_scratch : local_cols;
    im2colInto(act, k, k, stride, pad, cols);
    const int64_t rows = cols.dim(0);
    const int64_t m = cols.dim(1);
    const float *pc = cols.data();

    // One image contributes one im2col plane of oh*ow contiguous
    // presentations — the per-image presentation count the
    // request-keyed stream path slices by.
    const int64_t plane = int64_t(oh) * ow;
    std::vector<float> scales;
    auto q = quantizePresentations(tp, m, rows, input_bits, sc, scales,
                                   pc, /*j_stride=*/1, /*r_stride=*/m,
                                   stats, plane, engines.perImage);

    auto raw = replicatedMvm(engines, q, rows, plane, stats, tp);

    Tensor out({n, out_c, oh, ow});
    float *po = out.data();
    tp.parallelFor(0, m, 16, [&](int64_t j, int) {
        const auto deq = arch::dequantizeOutputs(
            raw[static_cast<size_t>(j)], mapped.scale,
            scales[static_cast<size_t>(j)]);
        const int64_t img = j / plane, pix = j % plane;
        for (int oc = 0; oc < out_c; ++oc) {
            const float s = chan_scale.empty()
                ? 1.0f : chan_scale[static_cast<size_t>(oc)];
            po[(img * out_c + oc) * plane + pix] =
                s * channelValue(deq, oc) +
                bias[static_cast<size_t>(oc)];
        }
    });
    return out;
}

Tensor
denseStage(const Tensor &act, const StageEngines &engines,
           const arch::MappedLayer &mapped,
           const std::vector<float> &bias, int out_dim, int input_bits,
           const StageScale &sc, ThreadPool &tp,
           arch::EngineStats *stats)
{
    FORMS_ASSERT(act.rank() == 2, "dense stage needs a flattened input");
    const int64_t n = act.dim(0);
    const int64_t feats = act.dim(1);
    const float *pi = act.data();

    std::vector<float> scales;
    auto q = quantizePresentations(tp, n, feats, input_bits, sc, scales,
                                   pi, /*j_stride=*/feats,
                                   /*r_stride=*/1, stats, /*ppi=*/1,
                                   engines.perImage);

    auto raw = replicatedMvm(engines, q, feats, /*ppi=*/1, stats, tp);

    Tensor out({n, out_dim});
    float *po = out.data();
    tp.parallelFor(0, n, 16, [&](int64_t j, int) {
        const auto deq = arch::dequantizeOutputs(
            raw[static_cast<size_t>(j)], mapped.scale,
            scales[static_cast<size_t>(j)]);
        for (int oc = 0; oc < out_dim; ++oc) {
            po[j * out_dim + oc] =
                channelValue(deq, oc) + bias[static_cast<size_t>(oc)];
        }
    });
    return out;
}

Tensor
batchNormStage(const Tensor &in, const std::vector<float> &scale,
               const std::vector<float> &shift, ThreadPool &tp)
{
    const int64_t n = in.dim(0);
    const int64_t c = in.dim(1);
    const int64_t plane = in.dim(2) * in.dim(3);
    Tensor out(in.shape());
    const float *pi = in.data();
    float *po = out.data();
    tp.parallelFor(0, n * c, 4, [&](int64_t j, int) {
        const float s = scale[static_cast<size_t>(j % c)];
        const float b = shift[static_cast<size_t>(j % c)];
        const float *src = pi + j * plane;
        float *dst = po + j * plane;
        for (int64_t i = 0; i < plane; ++i)
            dst[i] = src[i] * s + b;
    });
    return out;
}

void
recordLayer(RuntimeReport &report, size_t stage_idx,
            const std::string &name, const arch::EngineStats &stats,
            int64_t crossbars, uint64_t presentations)
{
    if (stage_idx < report.layers.size()) {
        report.layers[stage_idx].stats.merge(stats);
    } else {
        report.layers.push_back({name, stats, crossbars});
    }
    report.presentations += presentations;
}

admm::LayerState *
findLayerState(std::vector<admm::LayerState> &layers, const Tensor *weight)
{
    for (auto &st : layers)
        if (st.param.value == weight)
            return &st;
    return nullptr;
}

double
logitsAccuracy(const Tensor &logits, const std::vector<int> &labels)
{
    FORMS_ASSERT(logits.dim(0) == static_cast<int64_t>(labels.size()),
                 "accuracy: label count mismatch");
    const int64_t n = logits.dim(0), k = logits.dim(1);
    int64_t hits = 0;
    for (int64_t i = 0; i < n; ++i) {
        int64_t best = 0;
        for (int64_t j = 1; j < k; ++j)
            if (logits.at(i, j) > logits.at(i, best))
                best = j;
        hits += best == labels[static_cast<size_t>(i)];
    }
    return n > 0 ? static_cast<double>(hits) / static_cast<double>(n)
                 : 0.0;
}

} // namespace forms::sim
