#include "sim/stage_kernels.hh"

#include "sim/runtime.hh"
#include "tensor/ops.hh"

namespace forms::sim {

namespace {

/**
 * Quantize the presentations of one stage input. Presentation j's
 * row r lives at base[j*j_stride + r*r_stride] (strided access covers
 * both the column-major im2col layout and row-major dense inputs);
 * quantizeActivations maps negative values to zero (the bit-serial
 * input encoding is unsigned, DESIGN.md §2).
 */
std::vector<std::vector<uint32_t>>
quantizeBatch(ThreadPool &tp, int64_t count, int64_t rows, int bits,
              std::vector<float> &scales, const float *base,
              int64_t j_stride, int64_t r_stride)
{
    std::vector<std::vector<uint32_t>> q(static_cast<size_t>(count));
    scales.assign(static_cast<size_t>(count), 0.0f);
    tp.parallelFor(0, count, 16, [&](int64_t j, int) {
        std::vector<float> col(static_cast<size_t>(rows));
        const float *p = base + j * j_stride;
        for (int64_t r = 0; r < rows; ++r)
            col[static_cast<size_t>(r)] = p[r * r_stride];
        q[static_cast<size_t>(j)] = arch::quantizeActivations(
            col, bits, &scales[static_cast<size_t>(j)]);
    });
    return q;
}

/**
 * Dequantized value of output channel `oc` of one presentation.
 * Channels past the engine's output extent were pruned away entirely
 * (the mapper compacts them): all their weights are zero, so they
 * legitimately contribute 0 here (bias is added by the caller).
 */
float
channelValue(const std::vector<float> &deq, int oc)
{
    return static_cast<size_t>(oc) < deq.size()
        ? deq[static_cast<size_t>(oc)] : 0.0f;
}

} // namespace

Tensor
convStage(const Tensor &act, arch::CrossbarEngine &engine,
          const arch::MappedLayer &mapped,
          const std::vector<float> &bias,
          const std::vector<float> &chan_scale, int out_c, int k,
          int stride, int pad, int input_bits, ThreadPool &tp,
          arch::EngineStats *stats)
{
    FORMS_ASSERT(chan_scale.empty() ||
                     chan_scale.size() == static_cast<size_t>(out_c),
                 "conv stage: digital scale extent mismatch");
    const int64_t n = act.dim(0);
    const int h = static_cast<int>(act.dim(2));
    const int w = static_cast<int>(act.dim(3));
    const int oh = convOutDim(h, k, stride, pad);
    const int ow = convOutDim(w, k, stride, pad);

    // Lower to presentations: column j of the im2col matrix is patch
    // (img, oy, ox) with j = (img*oh + oy)*ow + ox.
    Tensor cols = im2col(act, k, k, stride, pad);
    const int64_t rows = cols.dim(0);
    const int64_t m = cols.dim(1);
    const float *pc = cols.data();

    std::vector<float> scales;
    auto q = quantizeBatch(tp, m, rows, input_bits, scales, pc,
                           /*j_stride=*/1, /*r_stride=*/m);

    auto raw = engine.mvmBatch(q, stats, &tp);

    Tensor out({n, out_c, oh, ow});
    float *po = out.data();
    const int64_t plane = int64_t(oh) * ow;
    tp.parallelFor(0, m, 16, [&](int64_t j, int) {
        const auto deq = arch::dequantizeOutputs(
            raw[static_cast<size_t>(j)], mapped.scale,
            scales[static_cast<size_t>(j)]);
        const int64_t img = j / plane, pix = j % plane;
        for (int oc = 0; oc < out_c; ++oc) {
            const float s = chan_scale.empty()
                ? 1.0f : chan_scale[static_cast<size_t>(oc)];
            po[(img * out_c + oc) * plane + pix] =
                s * channelValue(deq, oc) +
                bias[static_cast<size_t>(oc)];
        }
    });
    return out;
}

Tensor
denseStage(const Tensor &act, arch::CrossbarEngine &engine,
           const arch::MappedLayer &mapped,
           const std::vector<float> &bias, int out_dim, int input_bits,
           ThreadPool &tp, arch::EngineStats *stats)
{
    FORMS_ASSERT(act.rank() == 2, "dense stage needs a flattened input");
    const int64_t n = act.dim(0);
    const int64_t feats = act.dim(1);
    const float *pi = act.data();

    std::vector<float> scales;
    auto q = quantizeBatch(tp, n, feats, input_bits, scales, pi,
                           /*j_stride=*/feats, /*r_stride=*/1);

    auto raw = engine.mvmBatch(q, stats, &tp);

    Tensor out({n, out_dim});
    float *po = out.data();
    tp.parallelFor(0, n, 16, [&](int64_t j, int) {
        const auto deq = arch::dequantizeOutputs(
            raw[static_cast<size_t>(j)], mapped.scale,
            scales[static_cast<size_t>(j)]);
        for (int oc = 0; oc < out_dim; ++oc) {
            po[j * out_dim + oc] =
                channelValue(deq, oc) + bias[static_cast<size_t>(oc)];
        }
    });
    return out;
}

Tensor
batchNormStage(const Tensor &in, const std::vector<float> &scale,
               const std::vector<float> &shift, ThreadPool &tp)
{
    const int64_t n = in.dim(0);
    const int64_t c = in.dim(1);
    const int64_t plane = in.dim(2) * in.dim(3);
    Tensor out(in.shape());
    const float *pi = in.data();
    float *po = out.data();
    tp.parallelFor(0, n * c, 4, [&](int64_t j, int) {
        const float s = scale[static_cast<size_t>(j % c)];
        const float b = shift[static_cast<size_t>(j % c)];
        const float *src = pi + j * plane;
        float *dst = po + j * plane;
        for (int64_t i = 0; i < plane; ++i)
            dst[i] = src[i] * s + b;
    });
    return out;
}

void
recordLayer(RuntimeReport &report, size_t stage_idx,
            const std::string &name, const arch::EngineStats &stats,
            int64_t crossbars, uint64_t presentations)
{
    if (stage_idx < report.layers.size()) {
        report.layers[stage_idx].stats.merge(stats);
    } else {
        report.layers.push_back({name, stats, crossbars});
    }
    report.presentations += presentations;
}

admm::LayerState *
findLayerState(std::vector<admm::LayerState> &layers, const Tensor *weight)
{
    for (auto &st : layers)
        if (st.param.value == weight)
            return &st;
    return nullptr;
}

double
logitsAccuracy(const Tensor &logits, const std::vector<int> &labels)
{
    FORMS_ASSERT(logits.dim(0) == static_cast<int64_t>(labels.size()),
                 "accuracy: label count mismatch");
    const int64_t n = logits.dim(0), k = logits.dim(1);
    int64_t hits = 0;
    for (int64_t i = 0; i < n; ++i) {
        int64_t best = 0;
        for (int64_t j = 1; j < k; ++j)
            if (logits.at(i, j) > logits.at(i, best))
                best = j;
        hits += best == labels[static_cast<size_t>(i)];
    }
    return n > 0 ? static_cast<double>(hits) / static_cast<double>(n)
                 : 0.0;
}

} // namespace forms::sim
