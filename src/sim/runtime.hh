/**
 * @file
 * Batched multi-threaded inference runtime (the "whole chip" view).
 *
 * InferenceRuntime takes a compressed network, maps every conv/dense
 * layer onto crossbars, programs one CrossbarEngine per layer, and
 * streams whole batches through the layer graph:
 *
 *     im2col -> quantize -> mvmBatch -> dequantize(+bias)
 *            -> activation / pooling -> next layer
 *
 * All stages shard across one ThreadPool. Determinism contract: the
 * forward output and the per-layer EngineStats are bit-identical for
 * any thread count — presentations carry RNG streams keyed by
 * (variationSeed, presentation index), per-presentation stats merge in
 * presentation order, and the tensor kernels only parallelize over
 * disjoint-write axes (see DESIGN.md §2 for the input-encoding
 * assumptions).
 *
 * Supported layer graph: straight-line Conv2D, Dense, ReLU,
 * MaxPool2D, AvgPool2D, Flatten chains. Networks with BatchNorm2D or
 * ResidualBlock layers (the ResNet zoo) are rejected here by design:
 * lower them with compile::lowerNetwork, fold BN with
 * compile::foldBatchNorm, and execute the resulting DAG on
 * sim::GraphRuntime (sim/graph_runtime.hh), which shares these stage
 * kernels and the same determinism contract.
 *
 * Thread-safety: one forward()/accuracy() call at a time per runtime
 * (engines advance mutable presentation streams); work shards across
 * the configured ThreadPool internally. Distinct runtimes are
 * independent. The network and layer states are borrowed and must
 * outlive the runtime, unmutated.
 */

#ifndef FORMS_SIM_RUNTIME_HH
#define FORMS_SIM_RUNTIME_HH

#include <map>
#include <memory>
#include <string>

#include "arch/engine.hh"
#include "arch/zero_skip.hh"
#include "nn/network.hh"

namespace forms::compile {
class CalibrationTable;
} // namespace forms::compile

namespace forms::obs {
class MetricsRegistry;
} // namespace forms::obs

namespace forms::sim {

/**
 * Per-stage range observations collected during calibration runs:
 * stage name -> per-presentation pre-quantization abs-max, in
 * presentation order (deterministic for any thread count), plus the
 * stage's fragment-EIC histogram over its quantized presentations
 * (the measured bit-level activity the EicTime work model consumes,
 * docs/SCHEDULING.md). Wired into a runtime through
 * RuntimeConfig::recorder by sim::Calibrator; normal inference leaves
 * it null.
 */
struct RangeRecorder
{
    std::map<std::string, std::vector<float>> maxima;
    std::map<std::string, arch::EicStats> eic;
};

/** Runtime construction knobs. */
struct RuntimeConfig
{
    arch::MappingConfig mapping;  //!< crossbar geometry per layer
    arch::EngineConfig engine;    //!< ADC / device / zero-skip knobs
    ThreadPool *pool = nullptr;   //!< null = ThreadPool::global()

    /**
     * Activation quantization mode (DESIGN.md §2). Static requires a
     * calibrated scale for every programmed stage: either `calibration`
     * below, or (for the graph runtimes) scales attached to the graph
     * via compile::CalibrationTable::attachTo. Construction fatal()s
     * on a programmed stage with neither.
     */
    arch::ScaleMode scaleMode = arch::ScaleMode::PerPresentation;

    /** Static scales, keyed by layer/node name (borrowed, may be null). */
    const compile::CalibrationTable *calibration = nullptr;

    /** Calibration observation sink (borrowed; null in normal runs). */
    RangeRecorder *recorder = nullptr;

    /**
     * Metrics sink (borrowed, may be null). When set, each forward()
     * records its report aggregates through sim/obs_glue.hh — a pure
     * observer: logits and EngineStats are bit-identical with or
     * without it (docs/ARCHITECTURE.md determinism table).
     */
    obs::MetricsRegistry *metrics = nullptr;

    /**
     * Hard-fault model (reram/faults.hh; borrowed, may be null). The
     * graph runtimes key each node's fault pattern by its graph node
     * id, so GraphRuntime and PipelineRuntime — and every replica of a
     * node — draw bit-identical faults. Faults are deterministic
     * state, not noise: the cross-runtime determinism contracts hold
     * under a fault map exactly as they do without one.
     */
    const reram::FaultMap *faults = nullptr;

    /**
     * Run the spare-crossbar remap pass (arch/remap.hh) before
     * programming: tiles whose used cell columns land on a dead
     * physical column are rerouted to spares budgeted by
     * mapping.spareXbars. fatal()s when the budget runs out.
     */
    bool remapFaults = false;
};

/** Per-programmed-layer slice of a runtime report. */
struct RuntimeLayerReport
{
    std::string name;
    arch::EngineStats stats;      //!< merged over the whole batch
    int64_t crossbars = 0;        //!< arrays programmed for this layer
};

/**
 * End-to-end latency / energy / host-time report. One report may span
 * several forward() calls (e.g. a minibatch loop): per-layer stats
 * merge into the same rows, and presentations/wallMs accumulate.
 */
struct RuntimeReport
{
    std::vector<RuntimeLayerReport> layers;
    uint64_t presentations = 0;   //!< MVM presentations issued
    double wallMs = 0.0;          //!< accumulated host wall-clock

    /** Modeled ADC-limited time, layers in sequence (ns). */
    double modelTimeNs() const;

    /** Modeled ADC + crossbar energy (pJ). */
    double modelEnergyPj() const;
};

/** Executes a compressed, mapped network batch-at-a-time. */
class InferenceRuntime
{
  public:
    /**
     * Map and program every conv/dense layer of `net`.
     *
     * @param net the network topology (walked layer by layer)
     * @param layers per-layer compression state (e.g.
     *        AdmmCompressor::layers()); matched to network layers by
     *        weight-tensor identity
     * @param cfg geometry, engine knobs and the pool to shard on
     */
    InferenceRuntime(nn::Network &net,
                     std::vector<admm::LayerState> &layers,
                     RuntimeConfig cfg);
    ~InferenceRuntime();

    InferenceRuntime(const InferenceRuntime &) = delete;
    InferenceRuntime &operator=(const InferenceRuntime &) = delete;

    /**
     * Run a whole NCHW batch through the layer graph on the simulated
     * crossbars. Returns the logits (batch x classes).
     */
    Tensor forward(const Tensor &batch, RuntimeReport *report = nullptr);

    /** Fraction of argmax(logits) == label over a labelled batch. */
    double accuracy(const Tensor &images, const std::vector<int> &labels,
                    RuntimeReport *report = nullptr);

    /**
     * Restart every programmed engine's presentation RNG stream and
     * the runtime's image-id counter at 0. With readNoiseSigma > 0,
     * image ids (and so the noise draws) otherwise continue across
     * forward() calls; reset before a run that must reproduce an
     * earlier one.
     */
    void resetPresentationStreams();

    /** Number of executable stages (programmed + functional). */
    size_t stages() const;

    /** Number of crossbar-programmed (conv/dense) stages. */
    size_t programmedStages() const;

    /** Total crossbars programmed across all layers. */
    int64_t totalCrossbars() const;

  private:
    struct Stage;
    std::vector<std::unique_ptr<Stage>> stages_;
    RuntimeConfig cfg_;
    uint64_t nextImageId_ = 0;   //!< forward()'s per-image stream ids

    ThreadPool &pool() const;
};

/**
 * Direct-programming helper for benches and tests: build per-layer
 * compression state (fragment polarization + magnitude quantization,
 * no training and no pruning) for every prunable parameter of `net`,
 * ready to hand to InferenceRuntime. The network weights are projected
 * in place so they satisfy the sign constraints the mapper assumes.
 */
std::vector<admm::LayerState>
snapshotCompress(nn::Network &net, int frag_size, int quant_bits,
                 admm::PolarizationPolicy policy =
                     admm::PolarizationPolicy::CMajor);

} // namespace forms::sim

#endif // FORMS_SIM_RUNTIME_HH
