/**
 * @file
 * Full-size workload specifications for the performance model: the
 * exact layer dimensions of LeNet-5, VGG-16 (CIFAR & ImageNet),
 * ResNet-18 and ResNet-50 (CIFAR-100 & ImageNet input sizes), plus the
 * per-network compression profiles reported in the paper's Tables I/II.
 * Performance depends only on these dimensions and statistics — not on
 * trained weights — so the full-size networks are exact here even
 * though training runs on scaled models.
 */

#ifndef FORMS_SIM_WORKLOADS_HH
#define FORMS_SIM_WORKLOADS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace forms::sim {

/** One layer of a workload (convolution or fully connected). */
struct LayerSpec
{
    std::string name;
    bool conv = true;
    int64_t inC = 0, outC = 0;   //!< channels (conv) or dims (dense)
    int64_t kernel = 1;
    int64_t stride = 1;
    int64_t pad = 0;
    int64_t inH = 1, inW = 1;
    bool pools = false;          //!< followed by max-pooling

    /** Output spatial extent. */
    int64_t outH() const
    {
        return conv ? (inH + 2 * pad - kernel) / stride + 1 : 1;
    }

    int64_t outW() const
    {
        return conv ? (inW + 2 * pad - kernel) / stride + 1 : 1;
    }

    /** 2-d weight format rows (kernel^2 * inC or dense input dim). */
    int64_t rows() const { return conv ? kernel * kernel * inC : inC; }

    /** 2-d weight format cols (filters / output neurons). */
    int64_t cols() const { return outC; }

    /** Input-vector presentations per frame. */
    int64_t presentations() const { return conv ? outH() * outW() : 1; }

    /** Multiply-accumulate operations per frame (x2 for GOP counts). */
    int64_t macs() const { return rows() * cols() * presentations(); }
};

/** A whole network workload. */
struct Workload
{
    std::string name;
    std::vector<LayerSpec> layers;

    /** Giga-operations per frame (2 ops per MAC). */
    double gopsPerFrame() const;

    /** Total weights. */
    int64_t totalWeights() const;
};

/** Per-network compression profile (paper Tables I/II). */
struct CompressionProfile
{
    std::string name;
    double pruneRatio = 1.0;   //!< structured weight reduction
    int weightBits = 8;

    /** Per-dimension keep fraction (uniform split of the ratio). */
    double keepFraction() const;
};

// Full-size workload builders.
Workload lenet5Mnist();
Workload vgg16Cifar();
Workload vgg16Imagenet();
Workload resnet18Cifar();
Workload resnet18Imagenet();
Workload resnet50Cifar();
Workload resnet50Imagenet();

/** The paper's evaluated (workload, profile) pairs for Figs 13/14. */
struct EvalCase
{
    std::string label;       //!< e.g. "VGG16 CIFAR-100"
    Workload workload;
    CompressionProfile profile;
};

/** Figure 13 cases (CIFAR-10). */
std::vector<EvalCase> figure13Cases();

/** Figure 14 cases (CIFAR-100 + ImageNet). */
std::vector<EvalCase> figure14Cases();

} // namespace forms::sim

#endif // FORMS_SIM_WORKLOADS_HH
