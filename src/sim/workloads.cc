#include "sim/workloads.hh"

#include <cmath>

#include "common/logging.hh"

namespace forms::sim {

double
Workload::gopsPerFrame() const
{
    double macs = 0.0;
    for (const auto &l : layers)
        macs += static_cast<double>(l.macs());
    return 2.0 * macs / 1e9;
}

int64_t
Workload::totalWeights() const
{
    int64_t n = 0;
    for (const auto &l : layers)
        n += l.rows() * l.cols();
    return n;
}

double
CompressionProfile::keepFraction() const
{
    FORMS_ASSERT(pruneRatio >= 1.0, "prune ratio below 1");
    return 1.0 / std::sqrt(pruneRatio);
}

namespace {

LayerSpec
convLayer(std::string name, int64_t in_c, int64_t out_c, int64_t k,
          int64_t stride, int64_t pad, int64_t hw, bool pools = false)
{
    LayerSpec l;
    l.name = std::move(name);
    l.conv = true;
    l.inC = in_c;
    l.outC = out_c;
    l.kernel = k;
    l.stride = stride;
    l.pad = pad;
    l.inH = hw;
    l.inW = hw;
    l.pools = pools;
    return l;
}

LayerSpec
denseLayer(std::string name, int64_t in_dim, int64_t out_dim)
{
    LayerSpec l;
    l.name = std::move(name);
    l.conv = false;
    l.inC = in_dim;
    l.outC = out_dim;
    return l;
}

/** Append one ResNet basic block (two 3x3 convs + optional 1x1 proj). */
void
basicBlock(Workload &w, const std::string &name, int64_t in_c,
           int64_t out_c, int64_t stride, int64_t hw)
{
    w.layers.push_back(
        convLayer(name + ".conv1", in_c, out_c, 3, stride, 1, hw));
    const int64_t hw2 = hw / stride;
    w.layers.push_back(
        convLayer(name + ".conv2", out_c, out_c, 3, 1, 1, hw2));
    if (stride != 1 || in_c != out_c) {
        w.layers.push_back(
            convLayer(name + ".proj", in_c, out_c, 1, stride, 0, hw));
    }
}

/** Append one ResNet bottleneck block (1x1 -> 3x3 -> 1x1 + proj). */
void
bottleneckBlock(Workload &w, const std::string &name, int64_t in_c,
                int64_t mid_c, int64_t out_c, int64_t stride, int64_t hw)
{
    w.layers.push_back(
        convLayer(name + ".conv1", in_c, mid_c, 1, 1, 0, hw));
    w.layers.push_back(
        convLayer(name + ".conv2", mid_c, mid_c, 3, stride, 1, hw));
    const int64_t hw2 = hw / stride;
    w.layers.push_back(
        convLayer(name + ".conv3", mid_c, out_c, 1, 1, 0, hw2));
    if (stride != 1 || in_c != out_c) {
        w.layers.push_back(
            convLayer(name + ".proj", in_c, out_c, 1, stride, 0, hw));
    }
}

Workload
resnet18(int64_t input_hw, bool imagenet_stem, int64_t classes)
{
    Workload w;
    w.name = imagenet_stem ? "ResNet18-ImageNet" : "ResNet18-CIFAR";
    int64_t hw = input_hw;
    if (imagenet_stem) {
        w.layers.push_back(convLayer("stem", 3, 64, 7, 2, 3, hw, true));
        hw = hw / 2 / 2;   // stride-2 stem + 3x3/2 max pool
    } else {
        w.layers.push_back(convLayer("stem", 3, 64, 3, 1, 1, hw));
    }
    const int64_t stage_c[4] = {64, 128, 256, 512};
    int64_t in_c = 64;
    for (int s = 0; s < 4; ++s) {
        for (int b = 0; b < 2; ++b) {
            const int64_t stride = (s > 0 && b == 0) ? 2 : 1;
            basicBlock(w, strfmt("s%d_b%d", s, b), in_c, stage_c[s],
                       stride, hw);
            hw /= stride;
            in_c = stage_c[s];
        }
    }
    w.layers.push_back(denseLayer("fc", 512, classes));
    return w;
}

Workload
resnet50(int64_t input_hw, bool imagenet_stem, int64_t classes)
{
    Workload w;
    w.name = imagenet_stem ? "ResNet50-ImageNet" : "ResNet50-CIFAR";
    int64_t hw = input_hw;
    if (imagenet_stem) {
        w.layers.push_back(convLayer("stem", 3, 64, 7, 2, 3, hw, true));
        hw = hw / 2 / 2;
    } else {
        w.layers.push_back(convLayer("stem", 3, 64, 3, 1, 1, hw));
    }
    const int64_t mid_c[4] = {64, 128, 256, 512};
    const int blocks[4] = {3, 4, 6, 3};
    int64_t in_c = 64;
    for (int s = 0; s < 4; ++s) {
        for (int b = 0; b < blocks[s]; ++b) {
            const int64_t stride = (s > 0 && b == 0) ? 2 : 1;
            bottleneckBlock(w, strfmt("s%d_b%d", s, b), in_c, mid_c[s],
                            mid_c[s] * 4, stride, hw);
            hw /= stride;
            in_c = mid_c[s] * 4;
        }
    }
    w.layers.push_back(denseLayer("fc", 2048, classes));
    return w;
}

} // namespace

Workload
lenet5Mnist()
{
    Workload w;
    w.name = "LeNet5-MNIST";
    w.layers.push_back(convLayer("conv1", 1, 6, 5, 1, 2, 28, true));
    w.layers.push_back(convLayer("conv2", 6, 16, 5, 1, 0, 14, true));
    w.layers.push_back(denseLayer("fc1", 400, 120));
    w.layers.push_back(denseLayer("fc2", 120, 84));
    w.layers.push_back(denseLayer("fc3", 84, 10));
    return w;
}

Workload
vgg16Cifar()
{
    Workload w;
    w.name = "VGG16-CIFAR";
    const struct { int64_t c; int reps; } stages[5] = {
        {64, 2}, {128, 2}, {256, 3}, {512, 3}, {512, 3}};
    int64_t hw = 32;
    int64_t in_c = 3;
    for (int s = 0; s < 5; ++s) {
        for (int r = 0; r < stages[s].reps; ++r) {
            const bool last = r == stages[s].reps - 1;
            w.layers.push_back(convLayer(
                strfmt("conv%d_%d", s + 1, r + 1), in_c, stages[s].c,
                3, 1, 1, hw, last));
            in_c = stages[s].c;
        }
        hw /= 2;
    }
    w.layers.push_back(denseLayer("fc1", 512, 512));
    w.layers.push_back(denseLayer("fc2", 512, 512));
    w.layers.push_back(denseLayer("fc3", 512, 10));
    return w;
}

Workload
vgg16Imagenet()
{
    Workload w;
    w.name = "VGG16-ImageNet";
    const struct { int64_t c; int reps; } stages[5] = {
        {64, 2}, {128, 2}, {256, 3}, {512, 3}, {512, 3}};
    int64_t hw = 224;
    int64_t in_c = 3;
    for (int s = 0; s < 5; ++s) {
        for (int r = 0; r < stages[s].reps; ++r) {
            const bool last = r == stages[s].reps - 1;
            w.layers.push_back(convLayer(
                strfmt("conv%d_%d", s + 1, r + 1), in_c, stages[s].c,
                3, 1, 1, hw, last));
            in_c = stages[s].c;
        }
        hw /= 2;
    }
    w.layers.push_back(denseLayer("fc1", 512 * 7 * 7, 4096));
    w.layers.push_back(denseLayer("fc2", 4096, 4096));
    w.layers.push_back(denseLayer("fc3", 4096, 1000));
    return w;
}

Workload
resnet18Cifar()
{
    return resnet18(32, false, 100);
}

Workload
resnet18Imagenet()
{
    return resnet18(224, true, 1000);
}

Workload
resnet50Cifar()
{
    return resnet50(32, false, 100);
}

Workload
resnet50Imagenet()
{
    return resnet50(224, true, 1000);
}

std::vector<EvalCase>
figure13Cases()
{
    // Table I: VGG16 CIFAR-10 prune 41.2x, ResNet18 CIFAR-10 50.85x.
    std::vector<EvalCase> cases;
    {
        Workload w = vgg16Cifar();
        w.name = "VGG16-CIFAR10";
        cases.push_back({"VGG16 CIFAR-10", w, {"vgg16-c10", 41.2, 8}});
    }
    {
        Workload w = resnet18Cifar();
        w.name = "ResNet18-CIFAR10";
        cases.push_back(
            {"ResNet18 CIFAR-10", w, {"resnet18-c10", 50.85, 8}});
    }
    return cases;
}

std::vector<EvalCase>
figure14Cases()
{
    // Table II prune ratios: VGG16-C100 8.15x, RN18-C100 6.65x,
    // RN50-C100 9.18x, RN18-ImageNet 2.0x, RN50-ImageNet 3.67x.
    std::vector<EvalCase> cases;
    cases.push_back(
        {"VGG16 CIFAR-100", vgg16Cifar(), {"vgg16-c100", 8.15, 8}});
    cases.push_back(
        {"ResNet18 CIFAR-100", resnet18Cifar(),
         {"resnet18-c100", 6.65, 8}});
    cases.push_back(
        {"ResNet50 CIFAR-100", resnet50Cifar(),
         {"resnet50-c100", 9.18, 8}});
    cases.push_back(
        {"ResNet18 ImageNet", resnet18Imagenet(),
         {"resnet18-in", 2.0, 8}});
    cases.push_back(
        {"ResNet50 ImageNet", resnet50Imagenet(),
         {"resnet50-in", 3.67, 8}});
    return cases;
}

} // namespace forms::sim
