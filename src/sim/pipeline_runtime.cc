#include "sim/pipeline_runtime.hh"

#include <chrono>
#include <cstring>

#include "sim/stage_kernels.hh"

namespace forms::sim {

PipelineRuntime::PipelineRuntime(const compile::Graph &graph,
                                 compile::Schedule sched,
                                 std::vector<admm::LayerState> &layers,
                                 PipelineRuntimeConfig cfg)
    : graph_(graph), sched_(std::move(sched)), topo_(graph.topoOrder()),
      pools_(static_cast<size_t>(sched_.chips())), cfg_(cfg)
{
    execs_ = buildNodeExecs(graph_, topo_, layers, cfg_.runtime, pools_,
                            [this](int id) { return sched_.chipOf(id); });
}

PipelineRuntime::~PipelineRuntime() = default;

ThreadPool &
PipelineRuntime::pool() const
{
    return cfg_.runtime.pool ? *cfg_.runtime.pool : ThreadPool::global();
}

int64_t
PipelineRuntime::totalCrossbars() const
{
    int64_t n = 0;
    for (const auto &p : pools_)
        n += p.totalCrossbars();
    return n;
}

void
PipelineRuntime::resetPresentationStreams()
{
    for (auto &p : pools_)
        p.resetPresentationStreams();
}

Tensor
PipelineRuntime::forward(const Tensor &batch, PipelineReport *report)
{
    const auto t0 = std::chrono::steady_clock::now();
    ThreadPool &tp = pool();
    PoolScope scope(tp);

    const int64_t images = batch.dim(0);
    FORMS_ASSERT(images > 0, "pipeline forward: empty batch");
    const int64_t mb = std::max<int64_t>(
        1, std::min<int64_t>(cfg_.microBatch, images));
    const int num_mb = static_cast<int>((images + mb - 1) / mb);
    const int64_t sample_elems = batch.numel() / images;
    const int n_chips = sched_.chips();

    // Engine-lifetime stat accumulators, one per node. Every
    // micro-batch's mvmBatch merges into the same accumulator, so the
    // final fold has the exact presentation order (and floating-point
    // grouping) of one full-batch GraphRuntime forward — the
    // bit-identical contract across micro-batch sizes.
    std::vector<arch::EngineStats> node_stats(execs_.size());

    // Modeled per-(chip, micro-batch) busy time, from the ADC-limited
    // engine time each stage added to its node accumulator.
    std::vector<std::vector<double>> busy(
        static_cast<size_t>(n_chips),
        std::vector<double>(static_cast<size_t>(num_mb), 0.0));

    std::vector<Tensor> mb_out(static_cast<size_t>(num_mb));
    for (int m = 0; m < num_mb; ++m) {
        const int64_t lo = static_cast<int64_t>(m) * mb;
        const int64_t count = std::min(mb, images - lo);
        Shape micro_shape = batch.shape();
        micro_shape[0] = count;
        Tensor micro(micro_shape);
        std::memcpy(micro.data(), batch.data() + lo * sample_elems,
                    static_cast<size_t>(count * sample_elems) *
                        sizeof(float));

        mb_out[static_cast<size_t>(m)] = runGraph(
            graph_, execs_, micro, tp, cfg_.runtime.mapping.inputBits,
            node_stats, [&](size_t idx, double dt) {
                busy[static_cast<size_t>(execs_[idx].chip)]
                    [static_cast<size_t>(m)] += dt;
            });
    }

    // Stitch the micro-batch outputs back into one batch tensor.
    Shape out_shape = mb_out[0].shape();
    out_shape[0] = images;
    Tensor result(out_shape);
    const int64_t out_sample = mb_out[0].numel() / mb_out[0].dim(0);
    int64_t row = 0;
    for (const Tensor &part : mb_out) {
        std::memcpy(result.data() + row * out_sample, part.data(),
                    static_cast<size_t>(part.numel()) * sizeof(float));
        row += part.dim(0);
    }

    if (report) {
        // Per-node rows in topological order — same names, order and
        // merged stats as a GraphRuntime forward of the whole batch.
        recordNodeRows(execs_, node_stats, report->nodes);
        report->nodes.wallMs +=
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - t0).count();

        // Modeled pipeline schedule: chip s starts micro-batch m once
        // (a) its inbound transfers for m have landed and (b) it
        // finished m-1. done[s][m] closes the recurrence.
        std::vector<std::vector<double>> xfer(
            static_cast<size_t>(n_chips),
            std::vector<double>(static_cast<size_t>(num_mb), 0.0));
        std::vector<double> xfer_pj(static_cast<size_t>(n_chips), 0.0);
        for (const compile::Transfer &t : sched_.transfers()) {
            for (int m = 0; m < num_mb; ++m) {
                const int64_t count = std::min(
                    mb, images - static_cast<int64_t>(m) * mb);
                const int64_t bytes = t.bytesPerSample * count;
                xfer[static_cast<size_t>(t.toChip)]
                    [static_cast<size_t>(m)] +=
                    cfg_.link.transferNs(bytes);
                xfer_pj[static_cast<size_t>(t.toChip)] +=
                    cfg_.link.transferPj(bytes);
            }
        }
        std::vector<std::vector<double>> done(
            static_cast<size_t>(n_chips),
            std::vector<double>(static_cast<size_t>(num_mb), 0.0));
        for (int s = 0; s < n_chips; ++s) {
            for (int m = 0; m < num_mb; ++m) {
                const double arrive =
                    (s > 0 ? done[static_cast<size_t>(s) - 1]
                                 [static_cast<size_t>(m)] : 0.0) +
                    xfer[static_cast<size_t>(s)][static_cast<size_t>(m)];
                const double start = std::max(
                    arrive, m > 0 ? done[static_cast<size_t>(s)]
                                        [static_cast<size_t>(m) - 1]
                                  : 0.0);
                done[static_cast<size_t>(s)][static_cast<size_t>(m)] =
                    start +
                    busy[static_cast<size_t>(s)][static_cast<size_t>(m)];
            }
        }
        const double makespan =
            done[static_cast<size_t>(n_chips) - 1]
                [static_cast<size_t>(num_mb) - 1];

        report->chips.clear();
        double total_busy = 0.0, total_xfer_ns = 0.0, total_xfer_pj = 0.0;
        for (int s = 0; s < n_chips; ++s) {
            ChipReport c;
            c.chip = s;
            c.nodes = sched_.chipNodes()[static_cast<size_t>(s)].size();
            c.programmedNodes = pools_[static_cast<size_t>(s)].size();
            c.crossbars = pools_[static_cast<size_t>(s)].totalCrossbars();
            // Per-chip stats: node accumulators merged in topological
            // (presentation) order — deterministic for any thread
            // count and micro-batch size.
            for (size_t idx = 0; idx < execs_.size(); ++idx) {
                if (execs_[idx].engine && execs_[idx].chip == s)
                    c.stats.merge(node_stats[idx]);
            }
            for (int m = 0; m < num_mb; ++m) {
                c.computeNs += busy[static_cast<size_t>(s)]
                                   [static_cast<size_t>(m)];
                c.transferInNs += xfer[static_cast<size_t>(s)]
                                      [static_cast<size_t>(m)];
            }
            c.transferInPj = xfer_pj[static_cast<size_t>(s)];
            c.utilization = makespan > 0.0 ? c.computeNs / makespan : 0.0;
            total_busy += c.computeNs;
            total_xfer_ns += c.transferInNs;
            total_xfer_pj += c.transferInPj;
            report->chips.push_back(std::move(c));
        }
        report->microBatches = num_mb;
        report->images = images;
        report->makespanNs = makespan;
        report->bubbleFraction = makespan > 0.0
            ? 1.0 - total_busy / (static_cast<double>(n_chips) * makespan)
            : 0.0;
        report->transferNs = total_xfer_ns;
        report->transferPj = total_xfer_pj;
    }
    return result;
}

double
PipelineRuntime::accuracy(const Tensor &images,
                          const std::vector<int> &labels,
                          PipelineReport *report)
{
    return logitsAccuracy(forward(images, report), labels);
}

} // namespace forms::sim
