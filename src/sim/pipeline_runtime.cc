#include "sim/pipeline_runtime.hh"

#include <chrono>
#include <cstring>

#include "obs/trace.hh"
#include "sim/obs_glue.hh"
#include "sim/stage_kernels.hh"

namespace forms::sim {

PipelineRuntime::PipelineRuntime(const compile::Graph &graph,
                                 compile::Schedule sched,
                                 std::vector<admm::LayerState> &layers,
                                 PipelineRuntimeConfig cfg)
    : graph_(graph), sched_(std::move(sched)), topo_(graph.topoOrder()),
      pools_(static_cast<size_t>(sched_.chips())), cfg_(cfg)
{
    execs_ = buildNodeExecs(
        graph_, topo_, layers, cfg_.runtime, pools_, [this](int id) {
            // Every chip of the node's stage hosts it: one chip for
            // ordinary stages, R consecutive chips for a replicated
            // stage (which holds exactly one matrix node).
            const int s = sched_.stageOf(id);
            FORMS_ASSERT(s >= 0, "pipeline: node %d missing from the "
                                 "schedule — was it built from this "
                                 "graph?", id);
            std::vector<int> chips;
            const int first = sched_.stageFirstChip(s);
            for (int c = 0; c < sched_.stageWidth(s); ++c)
                chips.push_back(first + c);
            return chips;
        });
}

PipelineRuntime::~PipelineRuntime() = default;

ThreadPool &
PipelineRuntime::pool() const
{
    return cfg_.runtime.pool ? *cfg_.runtime.pool : ThreadPool::global();
}

int64_t
PipelineRuntime::totalCrossbars() const
{
    int64_t n = 0;
    for (const auto &p : pools_)
        n += p.totalCrossbars();
    return n;
}

void
PipelineRuntime::resetPresentationStreams()
{
    for (auto &p : pools_)
        p.resetPresentationStreams();
    nextImageId_ = 0;
}

Tensor
PipelineRuntime::forward(const Tensor &batch, PipelineReport *report)
{
    // Consecutive ids from the runtime-lifetime counter make every
    // node's stream keys equal the engine-lifetime presentation
    // indices the unkeyed path would have used — forward() stays
    // bit-identical to its pre-keyed behavior.
    const int64_t n = batch.dim(0);
    std::vector<uint64_t> ids(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i)
        ids[static_cast<size_t>(i)] =
            nextImageId_ + static_cast<uint64_t>(i);
    Tensor result = forwardRequests(batch, ids.data(), nullptr, report);
    nextImageId_ += static_cast<uint64_t>(n);
    return result;
}

Tensor
PipelineRuntime::forwardRequests(const Tensor &batch, const uint64_t *ids,
                                 std::vector<RuntimeReport> *per_request,
                                 PipelineReport *report)
{
    FORMS_TRACE_SCOPE("PipelineRuntime::forward");
    const auto t0 = std::chrono::steady_clock::now();
    ThreadPool &tp = pool();
    PoolScope scope(tp);

    const int64_t images = batch.dim(0);
    FORMS_ASSERT(images > 0, "pipeline forward: empty batch");
    const int64_t mb = std::max<int64_t>(
        1, std::min<int64_t>(cfg_.microBatch, images));
    const int num_mb = static_cast<int>((images + mb - 1) / mb);
    const int64_t sample_elems = batch.numel() / images;
    const int n_chips = sched_.chips();
    const int n_stages = sched_.stages();

    // Engine-lifetime stat accumulators, one per node. Every
    // micro-batch's stage call merges into the same accumulator — a
    // replicated node's replica slices fold in ascending replica
    // (= presentation) order — so the final fold has the exact
    // presentation order (and floating-point grouping) of one
    // full-batch GraphRuntime forward: the bit-identical contract
    // across micro-batch sizes and replication factors.
    std::vector<arch::EngineStats> node_stats(execs_.size());

    // Per-(exec, image) accumulators for the per-request stats
    // channel, laid out [idx * images + i] so each micro-batch's
    // runGraph call lands its slice at offset `lo` with stride
    // `images`.
    std::vector<arch::EngineStats> per_image;
    if (per_request)
        per_image.resize(execs_.size() * static_cast<size_t>(images));

    // Per-(chip, micro-batch) phase intervals, one per hosted
    // programmed node in topological order: the digital quantization
    // phase and the ADC-limited phase each replica's slice added.
    std::vector<std::vector<std::vector<PhaseInterval>>> phases(
        static_cast<size_t>(n_chips),
        std::vector<std::vector<PhaseInterval>>(
            static_cast<size_t>(num_mb)));

    std::vector<Tensor> mb_out(static_cast<size_t>(num_mb));
    for (int m = 0; m < num_mb; ++m) {
        const int64_t lo = static_cast<int64_t>(m) * mb;
        const int64_t count = std::min(mb, images - lo);
        Shape micro_shape = batch.shape();
        micro_shape[0] = count;
        Tensor micro(micro_shape);
        std::memcpy(micro.data(), batch.data() + lo * sample_elems,
                    static_cast<size_t>(count * sample_elems) *
                        sizeof(float));

        mb_out[static_cast<size_t>(m)] = runGraph(
            graph_, execs_, micro, tp, cfg_.runtime.mapping.inputBits,
            node_stats,
            [&](size_t idx, int replica, const PhaseSample &ps) {
                const int chip = execs_[idx].replicaChips
                    [static_cast<size_t>(replica)];
                // Heterogeneous fleets: a chip's modeled phase times
                // shrink by its relative throughput (and ADC rate for
                // the conversion phase). All-default specs divide by
                // exactly 1.0, so homogeneous timing is bit-identical
                // to the historical model.
                const compile::ChipSpec &spec =
                    sched_.chipSpecs()[static_cast<size_t>(chip)];
                PhaseInterval pi;
                pi.quantNs =
                    cfg_.tile.quantNs(ps.quantValues) / spec.capacity;
                pi.computeNs =
                    ps.adcNs / (spec.capacity * spec.adcScale);
                pi.bitCycles = ps.bitCycles;
                pi.skippedCycles = ps.skippedCycles;
                phases[static_cast<size_t>(chip)][static_cast<size_t>(m)]
                    .push_back(pi);
            },
            ids + lo,
            per_request ? per_image.data() + lo : nullptr, images);
    }
    if (per_request)
        recordPerImageRows(execs_, per_image.data(), images, images,
                           *per_request);

    // Stitch the micro-batch outputs back into one batch tensor.
    Shape out_shape = mb_out[0].shape();
    out_shape[0] = images;
    Tensor result(out_shape);
    const int64_t out_sample = mb_out[0].numel() / mb_out[0].dim(0);
    int64_t row = 0;
    for (const Tensor &part : mb_out) {
        std::memcpy(result.data() + row * out_sample, part.data(),
                    static_cast<size_t>(part.numel()) * sizeof(float));
        row += part.dim(0);
    }

    // The modeled timeline feeds three consumers: the caller's
    // report, the trace session (per-chip slices) and the metrics
    // sink. Build it into a local report when only an observer asked
    // — observers are pure, so skipping all of this when nobody is
    // looking changes nothing about the computation above.
    PipelineReport local_report;
    PipelineReport *rep = report;
    if (!rep && (cfg_.trace || cfg_.runtime.metrics))
        rep = &local_report;

    if (rep) {
        // Per-node rows in topological order — same names, order and
        // merged stats as a GraphRuntime forward of the whole batch.
        recordNodeRows(execs_, node_stats, rep->nodes);
        rep->nodes.wallMs +=
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - t0).count();

        // Per-chip busy intervals under the intra-chip tile pipeline
        // model, and the serial (no-overlap) reference for the
        // overlap-savings accounting.
        std::vector<std::vector<double>> busy(
            static_cast<size_t>(n_chips),
            std::vector<double>(static_cast<size_t>(num_mb), 0.0));
        TilePipeline serial_tile = cfg_.tile;
        serial_tile.overlap = false;
        double overlap_saved = 0.0;
        for (int c = 0; c < n_chips; ++c) {
            for (int m = 0; m < num_mb; ++m) {
                const auto &ph = phases[static_cast<size_t>(c)]
                                       [static_cast<size_t>(m)];
                const double b = chipBusyNs(ph, cfg_.tile);
                busy[static_cast<size_t>(c)][static_cast<size_t>(m)] = b;
                overlap_saved += chipBusyNs(ph, serial_tile) - b;
            }
        }

        // Inbound transfer time/energy per receiving stage.
        std::vector<std::vector<double>> xfer(
            static_cast<size_t>(n_stages),
            std::vector<double>(static_cast<size_t>(num_mb), 0.0));
        std::vector<double> xfer_pj(static_cast<size_t>(n_stages), 0.0);
        for (const compile::Transfer &t : sched_.transfers()) {
            // A hop's wait scales with the receiving stage's primary
            // chip's relative inbound link bandwidth; the per-byte
            // energy does not depend on the rate.
            const double link_in =
                sched_.chipSpecs()[static_cast<size_t>(
                    sched_.stageFirstChip(t.toStage))].linkIn;
            for (int m = 0; m < num_mb; ++m) {
                const int64_t count = std::min(
                    mb, images - static_cast<int64_t>(m) * mb);
                const int64_t bytes = t.bytesPerSample * count;
                xfer[static_cast<size_t>(t.toStage)]
                    [static_cast<size_t>(m)] +=
                    cfg_.link.transferNs(bytes) / link_in;
                xfer_pj[static_cast<size_t>(t.toStage)] +=
                    cfg_.link.transferPj(bytes);
            }
        }

        // Modeled pipeline schedule over stages: stage s starts
        // micro-batch m once (a) its inbound transfers for m have
        // landed and (b) it finished m-1; its busy time is the
        // slowest of its (replica) chips. done[s][m] closes the
        // recurrence.
        std::vector<std::vector<double>> done(
            static_cast<size_t>(n_stages),
            std::vector<double>(static_cast<size_t>(num_mb), 0.0));
        // Stage busy per (stage, micro-batch): kept for the trace
        // emitter, whose slice starts are done - stage_busy.
        std::vector<std::vector<double>> stage_busy_sm(
            static_cast<size_t>(n_stages),
            std::vector<double>(static_cast<size_t>(num_mb), 0.0));
        for (int s = 0; s < n_stages; ++s) {
            const int first = sched_.stageFirstChip(s);
            const int width = sched_.stageWidth(s);
            for (int m = 0; m < num_mb; ++m) {
                double stage_busy = 0.0;
                for (int c = first; c < first + width; ++c)
                    stage_busy = std::max(
                        stage_busy, busy[static_cast<size_t>(c)]
                                        [static_cast<size_t>(m)]);
                stage_busy_sm[static_cast<size_t>(s)]
                             [static_cast<size_t>(m)] = stage_busy;
                const double arrive =
                    (s > 0 ? done[static_cast<size_t>(s) - 1]
                                 [static_cast<size_t>(m)] : 0.0) +
                    xfer[static_cast<size_t>(s)][static_cast<size_t>(m)];
                const double start = std::max(
                    arrive, m > 0 ? done[static_cast<size_t>(s)]
                                        [static_cast<size_t>(m) - 1]
                                  : 0.0);
                done[static_cast<size_t>(s)][static_cast<size_t>(m)] =
                    start + stage_busy;
            }
        }
        const double makespan =
            done[static_cast<size_t>(n_stages) - 1]
                [static_cast<size_t>(num_mb) - 1];

        rep->chips.clear();
        rep->faultyCrossbars = 0;
        rep->remappedCrossbars = 0;
        double total_busy = 0.0, total_xfer_ns = 0.0, total_xfer_pj = 0.0;
        for (int s = 0; s < n_stages; ++s) {
            const int first = sched_.stageFirstChip(s);
            const int width = sched_.stageWidth(s);
            double stage_xfer_ns = 0.0;
            for (int m = 0; m < num_mb; ++m)
                stage_xfer_ns += xfer[static_cast<size_t>(s)]
                                     [static_cast<size_t>(m)];
            for (int chip = first; chip < first + width; ++chip) {
                ChipReport c;
                c.chip = chip;
                c.stage = s;
                c.replicas = width;
                c.nodes =
                    sched_.chipNodes()[static_cast<size_t>(chip)].size();
                c.programmedNodes =
                    pools_[static_cast<size_t>(chip)].size();
                c.crossbars =
                    pools_[static_cast<size_t>(chip)].totalCrossbars();
                // Per-chip stats: node accumulators merged in
                // topological (presentation) order — deterministic
                // for any thread count and micro-batch size. A
                // replicated node's accumulator spans all replicas
                // and lands on its primary chip.
                for (size_t idx = 0; idx < execs_.size(); ++idx) {
                    if (execs_[idx].engine && execs_[idx].chip == chip)
                        c.stats.merge(node_stats[idx]);
                }
                // Fault exposure of the engines this chip programs
                // (every replica counts — each chip holds its own
                // faulted copy).
                for (const NodeExec &e : execs_) {
                    for (size_t ri = 0; ri < e.replicas.size(); ++ri) {
                        if (e.replicaChips[ri] != chip)
                            continue;
                        c.faultyCrossbars +=
                            e.replicas[ri]->faultyCrossbars();
                        c.remappedCrossbars +=
                            e.remap.remappedCrossbars;
                    }
                }
                for (int m = 0; m < num_mb; ++m) {
                    for (const PhaseInterval &p :
                         phases[static_cast<size_t>(chip)]
                               [static_cast<size_t>(m)]) {
                        c.quantNs += p.quantNs;
                        c.computeNs += p.computeNs;
                        c.adcBitCycles += p.bitCycles;
                        c.adcSkippedCycles += p.skippedCycles;
                    }
                    c.busyNs += busy[static_cast<size_t>(chip)]
                                    [static_cast<size_t>(m)];
                }
                // Inbound link waits belong to the stage; report them
                // on its primary chip.
                if (chip == first) {
                    c.transferInNs = stage_xfer_ns;
                    c.transferInPj = xfer_pj[static_cast<size_t>(s)];
                }
                c.utilization =
                    makespan > 0.0 ? c.busyNs / makespan : 0.0;
                total_busy += c.busyNs;
                total_xfer_ns += c.transferInNs;
                total_xfer_pj += c.transferInPj;
                rep->faultyCrossbars += c.faultyCrossbars;
                rep->remappedCrossbars += c.remappedCrossbars;
                rep->chips.push_back(std::move(c));
            }
        }
        rep->stages = n_stages;
        rep->microBatches = num_mb;
        rep->images = images;
        rep->makespanNs = makespan;
        rep->bubbleFraction = makespan > 0.0
            ? 1.0 - total_busy / (static_cast<double>(n_chips) * makespan)
            : 0.0;
        rep->transferNs = total_xfer_ns;
        rep->transferPj = total_xfer_pj;
        rep->overlapSavedNs = overlap_saved;

        if (cfg_.trace) {
            emitTrace(*cfg_.trace, phases, busy, stage_busy_sm, done,
                      mb, images);
        }
        if (cfg_.runtime.metrics)
            recordPipelineMetrics(*cfg_.runtime.metrics, *rep);
    }
    return result;
}

/**
 * Reconstruct the modeled multi-chip timeline into `tr`, from the
 * same per-(chip, micro-batch) PhaseIntervals and done[s][m]
 * recurrence that produced the report. Purely an observer — reads
 * the model, never touches engines or tensors.
 *
 * Track layout: one trace "process" per chip (pid = chip + 1; pid 0
 * is reserved for wall-clock host spans). Track 1 carries the
 * per-(stage, micro-batch) busy slice whose durations sum exactly to
 * ChipReport::busyNs; tracks 2 and 3 carry the quant and ADC
 * sub-phases, placed by the same two-phase recurrence as
 * sim::chipBusyNs (with overlap, node k's ADC phase and node k+1's
 * quantization start together and the next segment opens when both
 * finish). Inter-stage Transfer records become flow arrows from the
 * producing stage's completion to the consuming stage's slice start.
 * Timestamps are modeled nanoseconds from zero, emitted in trace-us.
 */
void
PipelineRuntime::emitTrace(
    obs::TraceSession &tr,
    const std::vector<std::vector<std::vector<PhaseInterval>>> &phases,
    const std::vector<std::vector<double>> &busy,
    const std::vector<std::vector<double>> &stage_busy_sm,
    const std::vector<std::vector<double>> &done, int64_t mb,
    int64_t images) const
{
    const int n_chips = sched_.chips();
    const int n_stages = sched_.stages();
    const int num_mb = static_cast<int>(done.empty()
        ? 0 : done[0].size());

    for (int c = 0; c < n_chips; ++c) {
        const int pid = c + 1;
        tr.nameProcess(pid, strfmt("chip %d (modeled)", c));
        tr.nameThread(pid, 1, "stage");
        tr.nameThread(pid, 2, "quant phase");
        tr.nameThread(pid, 3, "adc phase");
    }

    // Fault exposure markers: one zero-length slice at t=0 on each
    // chip carrying programmed engines with overlaid faults, so the
    // fleet's fault/remap coverage is visible next to the timeline it
    // degrades.
    if (cfg_.runtime.faults) {
        for (int c = 0; c < n_chips; ++c) {
            int64_t faulty = 0, remapped = 0;
            for (const NodeExec &e : execs_) {
                for (size_t ri = 0; ri < e.replicas.size(); ++ri) {
                    if (e.replicaChips[ri] != c)
                        continue;
                    faulty += e.replicas[ri]->faultyCrossbars();
                    remapped += e.remap.remappedCrossbars;
                }
            }
            if (faulty == 0 && remapped == 0)
                continue;
            tr.slice(c + 1, 1, "fault-map", "fault", 0.0, 0.0,
                     {{"chip", c},
                      {"faulty_crossbars",
                       static_cast<uint64_t>(faulty)},
                      {"remapped_crossbars",
                       static_cast<uint64_t>(remapped)}});
        }
    }

    // Hosted programmed-node names per chip, in the order the
    // PhaseSink pushed their PhaseIntervals: nodes execute in
    // topological order and each hosting chip receives exactly one
    // interval per node per micro-batch.
    std::vector<std::vector<const char *>> chip_names(
        static_cast<size_t>(n_chips));
    for (const NodeExec &e : execs_) {
        if (!e.engine)
            continue;
        for (int c : e.replicaChips)
            chip_names[static_cast<size_t>(c)].push_back(e.name.c_str());
    }

    for (int s = 0; s < n_stages; ++s) {
        const int first = sched_.stageFirstChip(s);
        const int width = sched_.stageWidth(s);
        for (int m = 0; m < num_mb; ++m) {
            const double start_ns =
                done[static_cast<size_t>(s)][static_cast<size_t>(m)] -
                stage_busy_sm[static_cast<size_t>(s)]
                             [static_cast<size_t>(m)];
            for (int c = first; c < first + width; ++c) {
                const int pid = c + 1;
                const double busy_ns =
                    busy[static_cast<size_t>(c)][static_cast<size_t>(m)];
                tr.slice(pid, 1, strfmt("s%d/mb%d", s, m), "stage",
                         start_ns / 1e3, busy_ns / 1e3,
                         {{"stage", s},
                          {"micro_batch", m},
                          {"chip", c},
                          {"busy_ns", busy_ns}});

                const auto &ph = phases[static_cast<size_t>(c)]
                                       [static_cast<size_t>(m)];
                const auto &names = chip_names[static_cast<size_t>(c)];
                if (ph.empty())
                    continue;
                double t = start_ns;
                if (cfg_.tile.overlap) {
                    // Mirror of chipBusyNs: q1 runs alone, then adc_k
                    // and quant_{k+1} start together; the segment
                    // closes when the slower of the two finishes.
                    tr.slice(pid, 2, names[0], "quant", t / 1e3,
                             ph[0].quantNs / 1e3);
                    t += ph[0].quantNs;
                    for (size_t k = 0; k < ph.size(); ++k) {
                        tr.slice(pid, 3, names[k], "adc", t / 1e3,
                                 ph[k].computeNs / 1e3,
                                 {{"eic_fraction", ph[k].eicFraction()}});
                        if (k + 1 < ph.size()) {
                            tr.slice(pid, 2, names[k + 1], "quant",
                                     t / 1e3, ph[k + 1].quantNs / 1e3);
                            t += std::max(ph[k].computeNs,
                                          ph[k + 1].quantNs);
                        } else {
                            t += ph[k].computeNs;
                        }
                    }
                } else {
                    for (size_t k = 0; k < ph.size(); ++k) {
                        tr.slice(pid, 2, names[k], "quant", t / 1e3,
                                 ph[k].quantNs / 1e3);
                        t += ph[k].quantNs;
                        tr.slice(pid, 3, names[k], "adc", t / 1e3,
                                 ph[k].computeNs / 1e3,
                                 {{"eic_fraction", ph[k].eicFraction()}});
                        t += ph[k].computeNs;
                    }
                }
            }
        }
    }

    // Inter-stage transfers as flow arrows: tail at the producing
    // stage's completion of micro-batch m (the end of its primary
    // chip's slice), head at the consuming stage's slice start.
    for (const compile::Transfer &t : sched_.transfers()) {
        const int from_pid = sched_.stageFirstChip(t.fromStage) + 1;
        const int to_pid = sched_.stageFirstChip(t.toStage) + 1;
        const std::string &producer = graph_.node(t.producer).name;
        for (int m = 0; m < num_mb; ++m) {
            const int64_t count = std::min(
                mb, images - static_cast<int64_t>(m) * mb);
            const int64_t bytes = t.bytesPerSample * count;
            const double from_ns =
                done[static_cast<size_t>(t.fromStage)]
                    [static_cast<size_t>(m)];
            const double to_ns =
                done[static_cast<size_t>(t.toStage)]
                    [static_cast<size_t>(m)] -
                stage_busy_sm[static_cast<size_t>(t.toStage)]
                             [static_cast<size_t>(m)];
            tr.flow(from_pid, 1, from_ns / 1e3, to_pid, 1, to_ns / 1e3,
                    producer, "transfer",
                    {{"bytes", static_cast<uint64_t>(bytes)},
                     {"transfer_ns", cfg_.link.transferNs(bytes)},
                     {"merge_replicas", t.mergeReplicas ? 1 : 0}});
        }
    }
}

double
PipelineRuntime::accuracy(const Tensor &images,
                          const std::vector<int> &labels,
                          PipelineReport *report)
{
    return logitsAccuracy(forward(images, report), labels);
}

} // namespace forms::sim
