#include "sim/graph_runtime.hh"

#include <chrono>

#include "obs/trace.hh"
#include "sim/obs_glue.hh"
#include "sim/stage_kernels.hh"

namespace forms::sim {

GraphRuntime::GraphRuntime(const compile::Graph &graph,
                           std::vector<admm::LayerState> &layers,
                           RuntimeConfig cfg)
    : graph_(graph), topo_(graph.topoOrder()), pools_(1), cfg_(cfg)
{
    execs_ = buildNodeExecs(graph_, topo_, layers, cfg_, pools_,
                            [](int) { return std::vector<int>{0}; });
}

GraphRuntime::~GraphRuntime() = default;

ThreadPool &
GraphRuntime::pool() const
{
    return cfg_.pool ? *cfg_.pool : ThreadPool::global();
}

size_t
GraphRuntime::nodes() const
{
    return execs_.size();
}

size_t
GraphRuntime::programmedNodes() const
{
    return pools_[0].size();
}

int64_t
GraphRuntime::totalCrossbars() const
{
    return pools_[0].totalCrossbars();
}

std::vector<GraphNodeAlloc>
GraphRuntime::allocation() const
{
    std::vector<GraphNodeAlloc> out;
    for (const NodeExec &e : execs_) {
        if (!e.engine)
            continue;
        GraphNodeAlloc a;
        a.nodeId = e.nodeId;
        a.name = e.name;
        a.outShape = graph_.node(e.nodeId).outShape;
        a.crossbars = e.mapped->numCrossbars();
        out.push_back(std::move(a));
    }
    return out;
}

void
GraphRuntime::resetPresentationStreams()
{
    pools_[0].resetPresentationStreams();
    nextImageId_ = 0;
}

Tensor
GraphRuntime::forward(const Tensor &batch, RuntimeReport *report)
{
    // Consecutive ids from the runtime-lifetime counter make every
    // node's stream keys equal the engine-lifetime presentation
    // indices the unkeyed path would have used — forward() stays
    // bit-identical to its pre-keyed behavior.
    const int64_t n = batch.dim(0);
    std::vector<uint64_t> ids(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i)
        ids[static_cast<size_t>(i)] =
            nextImageId_ + static_cast<uint64_t>(i);
    Tensor result = forwardRequests(batch, ids.data(), nullptr, report);
    nextImageId_ += static_cast<uint64_t>(n);
    return result;
}

Tensor
GraphRuntime::forwardRequests(const Tensor &batch, const uint64_t *ids,
                              std::vector<RuntimeReport> *per_request,
                              RuntimeReport *report)
{
    FORMS_TRACE_SCOPE("GraphRuntime::forward");
    const auto t0 = std::chrono::steady_clock::now();
    const int64_t n = batch.dim(0);
    ThreadPool &tp = pool();
    // Route the shared tensor kernels (relu, pooling, im2col) through
    // this runtime's pool too: every node shards on one pool.
    PoolScope scope(tp);

    std::vector<arch::EngineStats> node_stats(execs_.size());
    std::vector<arch::EngineStats> per_image;
    if (per_request)
        per_image.resize(execs_.size() * static_cast<size_t>(n));
    Tensor result = runGraph(graph_, execs_, batch, tp,
                             cfg_.mapping.inputBits, node_stats, {}, ids,
                             per_request ? per_image.data() : nullptr, n);
    if (per_request)
        recordPerImageRows(execs_, per_image.data(), n, n, *per_request);

    const double wall_ms = std::chrono::duration<double, std::milli>(
        std::chrono::steady_clock::now() - t0).count();
    if (report) {
        recordNodeRows(execs_, node_stats, *report);
        report->wallMs += wall_ms;
    }
    if (cfg_.metrics) {
        // Record this forward alone (a fresh report), so the metric
        // counters accumulate per-call deltas regardless of whether
        // the caller reuses its report across forwards.
        RuntimeReport mrep;
        recordNodeRows(execs_, node_stats, mrep);
        mrep.wallMs = wall_ms;
        recordRuntimeMetrics(*cfg_.metrics, mrep);
    }
    return result;
}

double
GraphRuntime::accuracy(const Tensor &images,
                       const std::vector<int> &labels,
                       RuntimeReport *report)
{
    return logitsAccuracy(forward(images, report), labels);
}

} // namespace forms::sim
