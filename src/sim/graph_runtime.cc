#include "sim/graph_runtime.hh"

#include <chrono>
#include <cmath>

#include "nn/layers.hh"
#include "sim/stage_kernels.hh"
#include "tensor/ops.hh"

namespace forms::sim {

/** One executable node of the DAG. */
struct GraphRuntime::Exec
{
    compile::Op op;
    int nodeId = -1;
    std::string name;
    std::vector<int> inputs;   //!< producer node ids

    // Conv / Dense: the programmed hardware. `engine` references
    // `mapped`, which is why execs live behind unique_ptr and never
    // move after construction.
    arch::MappedLayer mapped;
    std::unique_ptr<arch::CrossbarEngine> engine;
    int outC = 0, k = 0, stride = 0, pad = 0;
    std::vector<float> bias;
    std::vector<float> chanScale;  //!< digital BN fold (may be empty)

    // Pooling geometry.
    int poolK = 0, poolStride = 0;

    // Unfolded BatchNorm, eval mode: y = x * scale[c] + shift[c].
    std::vector<float> bnScale, bnShift;
};

namespace {

std::vector<float>
biasOf(const Tensor &b)
{
    return std::vector<float>(b.data(), b.data() + b.numel());
}

} // namespace

GraphRuntime::GraphRuntime(const compile::Graph &graph,
                           std::vector<admm::LayerState> &layers,
                           RuntimeConfig cfg)
    : graph_(graph), topo_(graph.topoOrder()), cfg_(cfg)
{
    for (int id : topo_) {
        const compile::Node &n = graph_.node(id);
        auto e = std::make_unique<Exec>();
        e->op = n.op;
        e->nodeId = id;
        e->name = n.name;
        e->inputs = n.inputs;

        switch (n.op) {
        case compile::Op::Conv: {
            admm::LayerState *st =
                findLayerState(layers, &n.conv->weight());
            if (!st) {
                fatal("graph runtime: no compression state for conv "
                      "node '%s'", n.name.c_str());
            }
            e->mapped = arch::mapLayer(*st, cfg_.mapping);
            e->engine = std::make_unique<arch::CrossbarEngine>(
                e->mapped, cfg_.engine);
            e->outC = n.conv->outChannels();
            e->k = n.conv->kernel();
            e->stride = n.conv->stride();
            e->pad = n.conv->pad();
            // A digital output stage (BN folded into the periphery)
            // replaces the plain layer bias.
            if (!n.outScale.empty()) {
                e->chanScale = n.outScale;
                e->bias = n.outBias;
            } else {
                e->bias = biasOf(n.conv->bias());
            }
            break;
        }
        case compile::Op::Dense: {
            admm::LayerState *st =
                findLayerState(layers, &n.dense->weight());
            if (!st) {
                fatal("graph runtime: no compression state for dense "
                      "node '%s'", n.name.c_str());
            }
            e->mapped = arch::mapLayer(*st, cfg_.mapping);
            e->engine = std::make_unique<arch::CrossbarEngine>(
                e->mapped, cfg_.engine);
            e->outC = n.dense->outDim();
            e->bias = biasOf(n.dense->bias());
            break;
        }
        case compile::Op::BatchNorm: {
            // Left unfolded (e.g. BN not preceded by a private conv):
            // snapshot the eval-mode affine.
            const int c = n.bn->channels();
            e->bnScale.resize(static_cast<size_t>(c));
            e->bnShift.resize(static_cast<size_t>(c));
            for (int i = 0; i < c; ++i) {
                const float sigma = std::sqrt(
                    n.bn->runningVar().at(i) + n.bn->eps());
                const float s = n.bn->gamma().at(i) / sigma;
                e->bnScale[static_cast<size_t>(i)] = s;
                e->bnShift[static_cast<size_t>(i)] =
                    n.bn->beta().at(i) -
                    s * n.bn->runningMean().at(i);
            }
            break;
        }
        case compile::Op::MaxPool:
        case compile::Op::AvgPool:
            e->poolK = n.poolK;
            e->poolStride = n.poolStride;
            break;
        case compile::Op::Input:
        case compile::Op::Relu:
        case compile::Op::Flatten:
        case compile::Op::Add:
            break;
        }
        execs_.push_back(std::move(e));
    }
}

GraphRuntime::~GraphRuntime() = default;

ThreadPool &
GraphRuntime::pool() const
{
    return cfg_.pool ? *cfg_.pool : ThreadPool::global();
}

size_t
GraphRuntime::nodes() const
{
    return execs_.size();
}

size_t
GraphRuntime::programmedNodes() const
{
    size_t n = 0;
    for (const auto &e : execs_)
        n += e->engine != nullptr;
    return n;
}

int64_t
GraphRuntime::totalCrossbars() const
{
    int64_t n = 0;
    for (const auto &e : execs_)
        if (e->engine)
            n += e->mapped.numCrossbars();
    return n;
}

std::vector<GraphNodeAlloc>
GraphRuntime::allocation() const
{
    std::vector<GraphNodeAlloc> out;
    for (const auto &e : execs_) {
        if (!e->engine)
            continue;
        GraphNodeAlloc a;
        a.nodeId = e->nodeId;
        a.name = e->name;
        a.outShape = graph_.node(e->nodeId).outShape;
        a.crossbars = e->mapped.numCrossbars();
        out.push_back(std::move(a));
    }
    return out;
}

void
GraphRuntime::resetPresentationStreams()
{
    for (auto &e : execs_)
        if (e->engine)
            e->engine->resetPresentationStream();
}

namespace {

/** Eval-mode batch normalization on an NCHW batch. */
Tensor
batchNormEval(const Tensor &in, const std::vector<float> &scale,
              const std::vector<float> &shift, ThreadPool &tp)
{
    const int64_t n = in.dim(0);
    const int64_t c = in.dim(1);
    const int64_t plane = in.dim(2) * in.dim(3);
    Tensor out(in.shape());
    const float *pi = in.data();
    float *po = out.data();
    // One (image, channel) plane per index: disjoint writes, and the
    // per-element computation is order-free, so this is deterministic
    // for any thread count.
    tp.parallelFor(0, n * c, 4, [&](int64_t j, int) {
        const float s = scale[static_cast<size_t>(j % c)];
        const float b = shift[static_cast<size_t>(j % c)];
        const float *src = pi + j * plane;
        float *dst = po + j * plane;
        for (int64_t i = 0; i < plane; ++i)
            dst[i] = src[i] * s + b;
    });
    return out;
}

} // namespace

Tensor
GraphRuntime::forward(const Tensor &batch, RuntimeReport *report)
{
    const auto t0 = std::chrono::steady_clock::now();
    ThreadPool &tp = pool();
    // Route the shared tensor kernels (relu, pooling, im2col) through
    // this runtime's pool too: every node shards on one pool.
    PoolScope scope(tp);
    const int in_bits = cfg_.mapping.inputBits;

    // Reference-counted value slots, indexed by node id. The input
    // node aliases the caller's batch; every other node owns its
    // output until the last consumer (or the graph output) is done.
    struct Slot
    {
        const Tensor *ref = nullptr;
        Tensor owned;
        int remaining = 0;
    };
    std::vector<Slot> slots(static_cast<size_t>(graph_.capacity()));
    for (const auto &e : execs_)
        for (int in : e->inputs)
            ++slots[static_cast<size_t>(in)].remaining;
    ++slots[static_cast<size_t>(graph_.output())].remaining;

    size_t programmed_idx = 0;
    for (const auto &ep : execs_) {
        Exec &e = *ep;
        Slot &out = slots[static_cast<size_t>(e.nodeId)];
        auto in = [&](size_t i) -> const Tensor & {
            return *slots[static_cast<size_t>(e.inputs[i])].ref;
        };

        switch (e.op) {
        case compile::Op::Input:
            out.ref = &batch;
            break;
        case compile::Op::Conv: {
            arch::EngineStats st;
            out.owned = convStage(in(0), *e.engine, e.mapped, e.bias,
                                  e.chanScale, e.outC, e.k, e.stride,
                                  e.pad, in_bits, tp, &st);
            if (report) {
                recordLayer(*report, programmed_idx, e.name, st,
                            e.mapped.numCrossbars(), st.presentations);
            }
            ++programmed_idx;
            break;
        }
        case compile::Op::Dense: {
            arch::EngineStats st;
            out.owned = denseStage(in(0), *e.engine, e.mapped, e.bias,
                                   e.outC, in_bits, tp, &st);
            if (report) {
                recordLayer(*report, programmed_idx, e.name, st,
                            e.mapped.numCrossbars(), st.presentations);
            }
            ++programmed_idx;
            break;
        }
        case compile::Op::BatchNorm:
            out.owned = batchNormEval(in(0), e.bnScale, e.bnShift, tp);
            break;
        case compile::Op::Relu:
            out.owned = relu(in(0));
            break;
        case compile::Op::MaxPool:
            out.owned = maxPool2d(in(0), e.poolK, e.poolStride, nullptr);
            break;
        case compile::Op::AvgPool:
            out.owned = avgPool2d(in(0), e.poolK, e.poolStride);
            break;
        case compile::Op::Flatten: {
            const Tensor &x = in(0);
            const int64_t n = x.dim(0);
            out.owned = x.reshaped({n, x.numel() / n});
            break;
        }
        case compile::Op::Add: {
            // Join node: fixed left-then-right accumulation order, so
            // the float sums are reproducible (DESIGN.md §4). Steal
            // the left operand's buffer when this is its last use
            // instead of deep-copying a full activation tensor.
            Slot &lhs = slots[static_cast<size_t>(e.inputs[0])];
            if (lhs.remaining == 1 && lhs.ref == &lhs.owned)
                out.owned = std::move(lhs.owned);
            else
                out.owned = in(0);
            out.owned.add(in(1));
            break;
        }
        }
        if (!out.ref)
            out.ref = &out.owned;

        // Release producer buffers whose consumers are all done.
        for (int src : e.inputs) {
            Slot &p = slots[static_cast<size_t>(src)];
            if (--p.remaining == 0 && p.ref == &p.owned) {
                p.owned = Tensor();
                p.ref = nullptr;
            }
        }
    }

    Tensor result = *slots[static_cast<size_t>(graph_.output())].ref;
    if (report) {
        report->wallMs += std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0).count();
    }
    return result;
}

double
GraphRuntime::accuracy(const Tensor &images,
                       const std::vector<int> &labels,
                       RuntimeReport *report)
{
    return logitsAccuracy(forward(images, report), labels);
}

} // namespace forms::sim
