/**
 * @file
 * Shared per-stage execution kernels of the batched crossbar runtimes.
 *
 * Both executors — the sequential InferenceRuntime (sim/runtime.hh)
 * and the DAG GraphRuntime (sim/graph_runtime.hh) — stream a batch
 * through one programmed matrix stage the same way:
 *
 *     (im2col) -> quantize -> mvmBatch -> dequantize(+bias)
 *
 * The kernels here carry the DESIGN.md §3 determinism contract: all
 * parallel loops write disjoint elements, the engine's presentation
 * stream supplies any per-presentation randomness, and per-batch
 * EngineStats come back merged in presentation order.
 */

#ifndef FORMS_SIM_STAGE_KERNELS_HH
#define FORMS_SIM_STAGE_KERNELS_HH

#include "admm/compressor.hh"
#include "arch/engine.hh"
#include "arch/zero_skip.hh"

namespace forms::sim {

struct RuntimeConfig;
struct RuntimeReport;

/**
 * How one programmed stage quantizes its input presentations — the
 * single place the arch::ScaleMode switch reaches the kernels. All
 * three executors resolve their mode/table into one of these per
 * stage, so the per-presentation scale assumption cannot fork again
 * between runtimes.
 */
struct StageScale
{
    arch::ScaleMode mode = arch::ScaleMode::PerPresentation;

    /** Static mode: the calibrated quantizer step for this stage. */
    float staticScale = 0.0f;

    /**
     * Calibration hook: when set, every presentation's pre-quantization
     * abs-max is appended here in presentation order (used by
     * sim::Calibrator; normal inference leaves it null).
     */
    std::vector<float> *record = nullptr;

    /**
     * Calibration hook for the bit-level activity model: when set,
     * every quantized presentation's fragment EICs (consecutive-row
     * fragments of `eicFragSize`, matching the engine's input
     * fragmenting) are folded into this histogram, in presentation
     * order. Feeds CalibEntry::avgEic; normal inference leaves it
     * null.
     */
    arch::EicStats *eicStats = nullptr;
    int eicFragSize = 0;
};

/**
 * Resolve one programmed stage's quantization from the runtime
 * config — the single place all executors derive a StageScale.
 * Static mode takes the calibration-table entry when one covers the
 * stage, else `attached_scale` (a scale carried on the graph node's
 * input edge by CalibrationTable::attachTo; pass 0 when none); a
 * stage covered by neither fatal()s here, at construction time, not
 * mid-batch.
 */
StageScale resolveStageScale(const RuntimeConfig &cfg,
                             const std::string &name,
                             float attached_scale = 0.0f);

/**
 * Quantize the presentations of one programmed stage — the single
 * quantize entry point shared by every executor. Presentation j's row
 * r lives at base[j*j_stride + r*r_stride] (strided access covers both
 * the column-major im2col layout and row-major dense inputs); negative
 * values map to zero (the bit-serial input encoding is unsigned,
 * DESIGN.md §2). Per-presentation dequantization scales land in
 * `scales`; quantValues/quantClipped counters fold into `stats` in
 * presentation order.
 */
std::vector<std::vector<uint32_t>>
quantizePresentations(ThreadPool &tp, int64_t count, int64_t rows,
                      int bits, const StageScale &sc,
                      std::vector<float> &scales, const float *base,
                      int64_t j_stride, int64_t r_stride,
                      arch::EngineStats *stats, int64_t ppi = 0,
                      arch::EngineStats *per_image = nullptr);

/**
 * One replica-slice's worth of modeled work, reported through the
 * per-phase timing sinks (StageEngines::onPhase here, PhaseSink in
 * sim/graph_exec.hh): the ADC-limited model-time delta the slice
 * added, the activation scalars it quantized, and the engine's input
 * bit-cycle counters — presented vs zero-skip-elided — so the
 * pipeline timing layer can report each ADC phase's measured EIC
 * fraction without re-deriving it.
 */
struct PhaseSample
{
    double adcNs = 0.0;
    uint64_t quantValues = 0;
    uint64_t bitCycles = 0;      //!< input bit cycles presented
    uint64_t skippedCycles = 0;  //!< bit cycles elided by zero-skip
};

/**
 * The programmed engines executing one matrix stage. `replicas[0]` is
 * the primary engine; additional entries are replica engines on other
 * chips, all programmed from the same weights with the same config
 * (so their programmed conductances are identical — device variation
 * draws from a stream seeded only by cfg.variationSeed).
 *
 * Replica r of R processes the contiguous, presentation-index-keyed
 * slice [floor(P*r/R), floor(P*(r+1)/R)) of each micro-batch's P
 * presentations. Before each slice runs, the replica's engine stream
 * is seek()ed to the slice's global presentation index, and replica
 * slices execute (and fold stats) in ascending replica order — so
 * outputs AND the per-presentation stat fold are bit-identical to one
 * engine processing the whole stream serially, for any replica count
 * (DESIGN.md §5). After the stage, every replica's stream is left at
 * the stage's lifetime presentation count, so resetting/replaying
 * behaves exactly like the single-engine case.
 *
 * Thread-safety: borrowed engines; one stage call at a time (streams
 * advance), work shards internally on the caller's pool.
 */
struct StageEngines
{
    std::vector<arch::CrossbarEngine *> replicas;  //!< size >= 1

    /**
     * Optional per-phase timing sink, fired once per replica in
     * ascending replica order with (replica index, the slice's
     * PhaseSample). The pipeline runtime turns these into per-phase
     * busy intervals for the intra-chip tile pipeline model
     * (sim/perf_model.hh); plain inference leaves it unset.
     */
    std::function<void(int, const PhaseSample &)> onPhase;

    /**
     * Stable per-image presentation-stream ids, one per image of the
     * incoming batch — or null for the engine-lifetime stream. When
     * set, the stage's presentation j (image j/ppi, within-image
     * index j%ppi, for ppi presentations per image — the conv im2col
     * plane, 1 for dense) draws its RNG from stream key
     * imageIds[j/ppi] * ppi + j%ppi and the engines' stream counters
     * are untouched. Offline runtimes pass consecutive ids, making
     * the keys equal the engine-lifetime indices bit for bit; the
     * serving layer passes stable per-request ids, making a request's
     * logits invariant to batch composition and arrival order
     * (docs/SERVING.md).
     */
    const uint64_t *imageIds = nullptr;

    /**
     * Optional per-image stat accumulators, parallel to imageIds
     * (requires imageIds). Image i's accumulator folds only its own
     * presentations, in within-image order from zero — bitwise what a
     * single-image run of the same stage would have accumulated. The
     * flat batch fold into the `stats` argument is unchanged.
     */
    arch::EngineStats *perImage = nullptr;
};

/**
 * Run one conv stage: lower the NCHW batch to im2col presentations,
 * quantize (per `sc`), execute on the stage's engine replicas, and
 * dequantize back to an NCHW output tensor through the digital
 * output stage
 *
 *     out[oc] = chan_scale[oc] * mvm[oc] + bias[oc]
 *
 * where an empty `chan_scale` means all-ones (plain bias add). The
 * per-channel scale carries BN folded into the periphery
 * (compile::FoldMode::DigitalScale).
 *
 * `im2col_scratch`, when given, receives the lowered presentations and
 * is reused across calls: a stage that keeps one scratch tensor per
 * engine set makes steady-state micro-batches allocation-free in the
 * conv hot path (the buffer is only reallocated when the im2col
 * geometry changes).
 */
Tensor convStage(const Tensor &act, const StageEngines &engines,
                 const arch::MappedLayer &mapped,
                 const std::vector<float> &bias,
                 const std::vector<float> &chan_scale, int out_c, int k,
                 int stride, int pad, int input_bits,
                 const StageScale &sc, ThreadPool &tp,
                 arch::EngineStats *stats,
                 Tensor *im2col_scratch = nullptr);

/** Run one dense stage on a flattened (N, features) batch. */
Tensor denseStage(const Tensor &act, const StageEngines &engines,
                  const arch::MappedLayer &mapped,
                  const std::vector<float> &bias, int out_dim,
                  int input_bits, const StageScale &sc, ThreadPool &tp,
                  arch::EngineStats *stats);

/**
 * Eval-mode batch normalization on an NCHW batch:
 * y[n,c,h,w] = x[n,c,h,w] * scale[c] + shift[c]. Parallelizes over
 * (image, channel) planes — disjoint writes, order-free per element —
 * so it is deterministic for any thread count.
 */
Tensor batchNormStage(const Tensor &in, const std::vector<float> &scale,
                      const std::vector<float> &shift, ThreadPool &tp);

/**
 * Accumulate one programmed stage's batch stats into a report that may
 * span several forward() calls: rows merge by stage position, so
 * reusing one report across minibatches sums per-layer stats instead
 * of appending duplicate rows.
 */
void recordLayer(RuntimeReport &report, size_t stage_idx,
                 const std::string &name, const arch::EngineStats &stats,
                 int64_t crossbars, uint64_t presentations);

/** Flatten a tensor (e.g. a bias vector) into a plain float vector. */
std::vector<float> tensorToVector(const Tensor &t);

/** Compression state whose constrained weight is `weight`, or null. */
admm::LayerState *findLayerState(std::vector<admm::LayerState> &layers,
                                 const Tensor *weight);

/** Fraction of argmax(logits) == label over a labelled batch. */
double logitsAccuracy(const Tensor &logits,
                      const std::vector<int> &labels);

} // namespace forms::sim

#endif // FORMS_SIM_STAGE_KERNELS_HH
