/**
 * @file
 * Shared per-stage execution kernels of the batched crossbar runtimes.
 *
 * Both executors — the sequential InferenceRuntime (sim/runtime.hh)
 * and the DAG GraphRuntime (sim/graph_runtime.hh) — stream a batch
 * through one programmed matrix stage the same way:
 *
 *     (im2col) -> quantize -> mvmBatch -> dequantize(+bias)
 *
 * The kernels here carry the DESIGN.md §3 determinism contract: all
 * parallel loops write disjoint elements, the engine's presentation
 * stream supplies any per-presentation randomness, and per-batch
 * EngineStats come back merged in presentation order.
 */

#ifndef FORMS_SIM_STAGE_KERNELS_HH
#define FORMS_SIM_STAGE_KERNELS_HH

#include "admm/compressor.hh"
#include "arch/engine.hh"

namespace forms::sim {

struct RuntimeReport;

/**
 * Run one conv stage: lower the NCHW batch to im2col presentations,
 * quantize, execute on `engine`, and dequantize back to an NCHW
 * output tensor through the digital output stage
 *
 *     out[oc] = chan_scale[oc] * mvm[oc] + bias[oc]
 *
 * where an empty `chan_scale` means all-ones (plain bias add). The
 * per-channel scale carries BN folded into the periphery
 * (compile::FoldMode::DigitalScale).
 */
Tensor convStage(const Tensor &act, arch::CrossbarEngine &engine,
                 const arch::MappedLayer &mapped,
                 const std::vector<float> &bias,
                 const std::vector<float> &chan_scale, int out_c, int k,
                 int stride, int pad, int input_bits, ThreadPool &tp,
                 arch::EngineStats *stats);

/** Run one dense stage on a flattened (N, features) batch. */
Tensor denseStage(const Tensor &act, arch::CrossbarEngine &engine,
                  const arch::MappedLayer &mapped,
                  const std::vector<float> &bias, int out_dim,
                  int input_bits, ThreadPool &tp,
                  arch::EngineStats *stats);

/**
 * Eval-mode batch normalization on an NCHW batch:
 * y[n,c,h,w] = x[n,c,h,w] * scale[c] + shift[c]. Parallelizes over
 * (image, channel) planes — disjoint writes, order-free per element —
 * so it is deterministic for any thread count.
 */
Tensor batchNormStage(const Tensor &in, const std::vector<float> &scale,
                      const std::vector<float> &shift, ThreadPool &tp);

/**
 * Accumulate one programmed stage's batch stats into a report that may
 * span several forward() calls: rows merge by stage position, so
 * reusing one report across minibatches sums per-layer stats instead
 * of appending duplicate rows.
 */
void recordLayer(RuntimeReport &report, size_t stage_idx,
                 const std::string &name, const arch::EngineStats &stats,
                 int64_t crossbars, uint64_t presentations);

/** Compression state whose constrained weight is `weight`, or null. */
admm::LayerState *findLayerState(std::vector<admm::LayerState> &layers,
                                 const Tensor *weight);

/** Fraction of argmax(logits) == label over a labelled batch. */
double logitsAccuracy(const Tensor &logits,
                      const std::vector<int> &labels);

} // namespace forms::sim

#endif // FORMS_SIM_STAGE_KERNELS_HH
