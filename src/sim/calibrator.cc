#include "sim/calibrator.hh"

#include <algorithm>
#include <cmath>

#include "obs/trace.hh"

namespace forms::sim {

const char *
calibPolicyName(CalibPolicy policy)
{
    switch (policy) {
    case CalibPolicy::AbsMax: return "absmax";
    case CalibPolicy::Percentile: return "percentile";
    }
    return "?";
}

Calibrator::Calibrator(const compile::Graph &graph,
                       std::vector<admm::LayerState> &layers,
                       RuntimeConfig rcfg, CalibratorConfig ccfg)
    : ccfg_(ccfg), inputBits_(rcfg.mapping.inputBits)
{
    FORMS_ASSERT(ccfg_.percentile > 0.0 && ccfg_.percentile <= 1.0,
                 "calibrator: percentile must be in (0, 1]");
    FORMS_ASSERT(ccfg_.headroom > 0.0,
                 "calibrator: headroom must be positive");
    // Observation pass: idealized per-presentation scales (so nothing
    // clips while measuring), recording into this calibrator.
    rcfg.scaleMode = arch::ScaleMode::PerPresentation;
    rcfg.calibration = nullptr;
    rcfg.recorder = &recorder_;
    runtime_ = std::make_unique<GraphRuntime>(graph, layers, rcfg);
}

Calibrator::~Calibrator() = default;

void
Calibrator::observe(const Tensor &batch)
{
    FORMS_TRACE_SCOPE("Calibrator::observe");
    runtime_->forward(batch);
    images_ += batch.dim(0);
}

compile::CalibrationTable
Calibrator::table() const
{
    FORMS_TRACE_SCOPE("Calibrator::table");
    FORMS_ASSERT(images_ > 0,
                 "calibrator: table() before any observe() call");
    const uint32_t qmax = (1u << inputBits_) - 1;
    compile::CalibrationTable out;
    out.setInputBits(inputBits_);
    // std::map iteration is name-ordered: the table layout is a pure
    // function of the observations, independent of thread count.
    for (const auto &[name, maxima] : recorder_.maxima) {
        FORMS_ASSERT(!maxima.empty(),
                     "calibrator: node '%s' recorded no presentations",
                     name.c_str());
        float range = 0.0f;
        if (ccfg_.policy == CalibPolicy::AbsMax) {
            for (float m : maxima)
                range = std::max(range, m);
        } else {
            // Nearest-rank percentile of the per-presentation max
            // distribution.
            std::vector<float> sorted(maxima);
            std::sort(sorted.begin(), sorted.end());
            size_t rank = static_cast<size_t>(std::ceil(
                ccfg_.percentile * static_cast<double>(sorted.size())));
            rank = std::max<size_t>(1, rank);
            range = sorted[std::min(sorted.size() - 1, rank - 1)];
        }
        range = static_cast<float>(static_cast<double>(range) *
                                   ccfg_.headroom);
        // A node whose calibration inputs were all non-positive (e.g.
        // dead channels) still needs a valid grid.
        if (range <= 0.0f)
            range = 1.0f;

        compile::CalibEntry e;
        e.node = name;
        e.range = range;
        e.scale = range / static_cast<float>(qmax);
        e.observations = maxima.size();
        // Bit-level activity: the stage kernels folded every quantized
        // presentation's fragment EICs into recorder_.eic during the
        // same observation pass.
        const auto eic_it = recorder_.eic.find(name);
        if (eic_it != recorder_.eic.end() &&
            eic_it->second.histogram().total() > 0) {
            e.avgEic =
                static_cast<float>(eic_it->second.averageEic());
            e.eicFragments = eic_it->second.histogram().total();
        }
        out.set(std::move(e));
    }
    FORMS_ASSERT(out.size() > 0,
                 "calibrator: graph has no programmed nodes to "
                 "calibrate");
    return out;
}

} // namespace forms::sim
