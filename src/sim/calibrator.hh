/**
 * @file
 * Offline activation-scale calibration (DESIGN.md §2).
 *
 * The functional runtimes historically quantized every input
 * presentation against its own max — an idealized per-vector dynamic
 * range no fixed DAC grid can provide. Real ISAAC-style pipelines
 * freeze one scale per layer at deployment time. The Calibrator
 * produces that scale: it streams a calibration split through the
 * compiled graph (idealized per-presentation mode, observing the
 * exact pre-quantization presentation maxima each programmed node
 * sees, including upstream ADC/device effects), then reduces the
 * per-node range statistics into a compile::CalibrationTable under a
 * policy:
 *
 * - AbsMax: range = the largest presentation max ever observed. No
 *   clipping on the calibration split; outlier presentations stretch
 *   the grid and cost resolution everywhere else.
 * - Percentile: range = a moving percentile of the per-presentation
 *   max distribution (default p99.5). Trades rare saturation
 *   (counted at inference in EngineStats::quantClipped) for a finer
 *   grid over the common range.
 *
 * Determinism: observations append in presentation order and the
 * reductions are pure functions of them, so a calibration run is
 * bit-reproducible for any thread count.
 *
 * Typical flow:
 *
 *     sim::Calibrator cal(graph, states, rcfg, {});
 *     cal.observe(calib_split);              // repeat per batch
 *     auto table = cal.table();
 *     table.attachTo(graph);                 // or rcfg.calibration = &table
 *     rcfg.scaleMode = arch::ScaleMode::Static;
 *     sim::GraphRuntime rt(graph, states, rcfg);
 */

#ifndef FORMS_SIM_CALIBRATOR_HH
#define FORMS_SIM_CALIBRATOR_HH

#include <memory>

#include "compile/calibration.hh"
#include "sim/graph_runtime.hh"

namespace forms::sim {

/** Range-statistics reduction policy (see file header). */
enum class CalibPolicy
{
    AbsMax,      //!< largest observed presentation max
    Percentile,  //!< moving percentile of the presentation maxima
};

/** Short mnemonic, e.g. "absmax". */
const char *calibPolicyName(CalibPolicy policy);

/** Calibration knobs. */
struct CalibratorConfig
{
    CalibPolicy policy = CalibPolicy::AbsMax;

    /** Percentile policy: fraction of presentation maxima covered. */
    double percentile = 0.995;

    /** Safety multiplier applied to the reduced range. */
    double headroom = 1.0;
};

/**
 * Runs calibration batches through a compiled graph and reduces the
 * observed per-node input ranges into a CalibrationTable.
 *
 * Borrows the graph and layer states (like GraphRuntime — both must
 * outlive the calibrator); owns its observation buffers and internal
 * runtime. One observe() call at a time.
 */
class Calibrator
{
  public:
    /**
     * @param graph compiled (and BN-folded) DAG to calibrate
     * @param layers per-layer compression state, as for GraphRuntime
     * @param rcfg the deployment runtime config: calibration observes
     *        through the same engines/geometry it will deploy on
     *        (scaleMode/recorder fields are overridden internally)
     * @param ccfg reduction policy knobs
     */
    Calibrator(const compile::Graph &graph,
               std::vector<admm::LayerState> &layers, RuntimeConfig rcfg,
               CalibratorConfig ccfg = {});
    ~Calibrator();

    Calibrator(const Calibrator &) = delete;
    Calibrator &operator=(const Calibrator &) = delete;

    /** Stream one calibration batch, accumulating range statistics. */
    void observe(const Tensor &batch);

    /** Images observed so far. */
    int64_t images() const { return images_; }

    /**
     * Reduce the accumulated statistics into a table (callable
     * repeatedly — e.g. after every split size in a sweep). fatal()s
     * when nothing was observed yet.
     */
    compile::CalibrationTable table() const;

  private:
    CalibratorConfig ccfg_;
    int inputBits_;
    RangeRecorder recorder_;
    std::unique_ptr<GraphRuntime> runtime_;
    int64_t images_ = 0;
};

} // namespace forms::sim

#endif // FORMS_SIM_CALIBRATOR_HH
