#include "sim/perf_model.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace forms::sim {

namespace {

/** Chip cost of a PUMA-flavored design: ISAAC peripheral organization
 *  with the crossbar/DAC/S&H block doubled for the splitting scheme. */
reram::ChipCost
pumaChipCost()
{
    using namespace reram;
    ChipConfig cfg = ChipConfig::isaac();
    ChipCost base = buildChipCost(cfg);
    // Extra per-MCU analog block: 8 crossbars + 8*128 DACs + S&H.
    const double extra_p = 2.43 + 4.0 + 0.01;
    const double extra_a = 0.00023 + 0.00017 + 0.00004;
    ChipCost c = base;
    c.mcuPowerMw += extra_p;
    c.mcuAreaMm2 += extra_a;
    c.tilePowerMw += extra_p * cfg.mcusPerTile;
    c.tileAreaMm2 += extra_a * cfg.mcusPerTile;
    c.tilesPowerMw = c.tilePowerMw * cfg.tiles;
    c.tilesAreaMm2 = c.tileAreaMm2 * cfg.tiles;
    c.chipPowerMw = c.tilesPowerMw + cfg.htPowerMw;
    c.chipAreaMm2 = c.tilesAreaMm2 + cfg.htAreaMm2;
    return c;
}

} // namespace

ArchModel
ArchModel::isaac32()
{
    ArchModel a;
    a.name = "ISAAC-32";
    a.scheme = admm::SignScheme::OffsetIsaac;
    a.weightBits = 32;
    const auto cost = reram::buildChipCost(reram::ChipConfig::isaac());
    a.chipPowerMw = cost.chipPowerMw;
    a.chipAreaMm2 = cost.chipAreaMm2;
    return a;
}

ArchModel
ArchModel::isaac16()
{
    ArchModel a = isaac32();
    a.name = "ISAAC";
    a.weightBits = 16;
    return a;
}

ArchModel
ArchModel::isaacPrunedQuantized()
{
    ArchModel a = isaac16();
    a.name = "Pruned/Quantized-ISAAC";
    a.usesCompression = true;
    return a;
}

ArchModel
ArchModel::puma16()
{
    ArchModel a;
    a.name = "PUMA";
    a.scheme = admm::SignScheme::Splitting;
    a.weightBits = 16;
    const auto cost = pumaChipCost();
    a.chipPowerMw = cost.chipPowerMw;
    a.chipAreaMm2 = cost.chipAreaMm2;
    // PUMA's published efficiency sits above the plain splitting-scheme
    // physics (dataflow/compiler optimizations we do not model).
    a.calibration = 1.4;
    return a;
}

ArchModel
ArchModel::pumaPrunedQuantized()
{
    ArchModel a = puma16();
    a.name = "Pruned/Quantized-PUMA";
    a.usesCompression = true;
    return a;
}

ArchModel
ArchModel::formsPolarizationOnly(int frag_size)
{
    ArchModel a;
    a.name = strfmt("FORMS (polarization only, %d)", frag_size);
    a.scheme = admm::SignScheme::PolarizedForms;
    a.weightBits = 16;
    a.fragSize = frag_size;
    a.zeroSkip = true;   // the skip logic is part of the architecture
    const auto mcu = reram::McuConfig::forms(frag_size);
    a.adcBits = mcu.adcBits;
    a.adcFreqGhz = mcu.adcFreqGhz;
    a.adcsPerCrossbar = mcu.adcsPerCrossbar;
    const auto cost =
        reram::buildChipCost(reram::ChipConfig::forms(frag_size));
    a.chipPowerMw = cost.chipPowerMw;
    a.chipAreaMm2 = cost.chipAreaMm2;
    // Raw physics already lands near Table V for these rows (0.60 vs
    // the paper's 0.54 at fragment 8; 0.71 vs 0.77 at 16); the small
    // residual factor pins them exactly (see EXPERIMENTS.md).
    a.calibration = frag_size <= 8 ? 0.90 : 1.08;
    return a;
}

ArchModel
ArchModel::formsFull(int frag_size, bool zero_skip)
{
    ArchModel a = formsPolarizationOnly(frag_size);
    a.name = strfmt("FORMS-%d%s", frag_size,
                    zero_skip ? "" : " (no zero-skip)");
    a.usesCompression = true;
    a.zeroSkip = zero_skip;
    // Series efficiency factors pinned to the Figures 13/14 geometric
    // means over the published bars (paper's FORMS-vs-PQ-ISAAC gap
    // exceeds what ADC bandwidth physics alone yields; the paper does
    // not publish the sub-array scheduling needed to derive it — see
    // DESIGN.md §2 and EXPERIMENTS.md). Raw numbers stay available via
    // fpsRaw / calibration = 1.
    if (frag_size <= 8)
        a.calibration = zero_skip ? 2.41 : 1.26;
    else
        a.calibration = zero_skip ? 2.20 : 1.37;
    return a;
}

PerfModel::PerfModel(ActivationModel act)
    : act_(act)
{
}

double
PerfModel::effectiveBitsFor(const ArchModel &arch) const
{
    if (!arch.zeroSkip)
        return static_cast<double>(arch.inputBits);
    const std::pair<int, int> key{arch.fragSize, arch.inputBits};
    {
        std::lock_guard<std::mutex> lock(eicMutex_);
        const auto it = eicCache_.find(key);
        if (it != eicCache_.end())
            return it->second;
    }
    // Re-express the calibrated distribution on this architecture's
    // input grid: re-quantizing the same analog activations onto a
    // b-bit grid scales every nonzero code by 2^(b - b_model), i.e.
    // shifts the log-median by (b - b_model)·ln 2 and clamps to the
    // narrower grid's maximum.
    ActivationModel act = act_;
    act.logMedian += static_cast<double>(arch.inputBits -
                                         act_.inputBits) *
        std::log(2.0);
    act.inputBits = arch.inputBits;
    // The Monte-Carlo estimate is deterministic (fixed seed), so two
    // threads racing to fill the same key compute the same value;
    // only the map insertion needs the lock.
    const double eic = act.averageEic(arch.fragSize);
    std::lock_guard<std::mutex> lock(eicMutex_);
    eicCache_.emplace(key, eic);
    return eic;
}

LayerPerf
PerfModel::layerPerf(const ArchModel &arch, const LayerSpec &layer,
                     const CompressionProfile *profile) const
{
    LayerPerf lp;
    double keep = 1.0;
    int wbits = arch.weightBits;
    if (arch.usesCompression && profile) {
        keep = profile->keepFraction();
        wbits = profile->weightBits;
    }
    const int64_t kr = std::max<int64_t>(
        1, static_cast<int64_t>(std::llround(
               keep * static_cast<double>(layer.rows()))));
    const int64_t kc = std::max<int64_t>(
        1, static_cast<int64_t>(std::llround(
               keep * static_cast<double>(layer.cols()))));

    const int cells = (wbits + arch.cellBits - 1) / arch.cellBits;
    const int64_t grid_r = (kr + arch.xbarRows - 1) / arch.xbarRows;
    const int64_t grid_c =
        (kc * cells + arch.xbarCols - 1) / arch.xbarCols;
    lp.crossbars = grid_r * grid_c * arch.signFactor();

    const double row_groups = static_cast<double>(arch.xbarRows) /
        static_cast<double>(arch.fragSize);
    const double cols_per_adc = static_cast<double>(arch.xbarCols) /
        static_cast<double>(arch.adcsPerCrossbar);
    const double bits_eff = effectiveBitsFor(arch);
    lp.tauNs = row_groups * bits_eff * cols_per_adc / arch.adcFreqGhz;

    lp.presentations = layer.presentations();
    lp.workNs = static_cast<double>(lp.crossbars) *
        static_cast<double>(lp.presentations) * lp.tauNs;
    return lp;
}

PerfResult
PerfModel::evaluate(const ArchModel &arch, const Workload &workload,
                    const CompressionProfile *profile) const
{
    PerfResult res;
    for (const auto &l : workload.layers) {
        LayerPerf lp = layerPerf(arch, l, profile);
        res.totalWorkNs += lp.workNs;
        res.layers.push_back(lp);
    }
    FORMS_ASSERT(res.totalWorkNs > 0.0, "workload has no work");
    res.fpsRaw = static_cast<double>(arch.totalCrossbars) /
        res.totalWorkNs * 1e9;
    res.fps = res.fpsRaw * arch.calibration;
    res.effGops = res.fps * workload.gopsPerFrame();
    res.gopsPerMm2 = arch.chipAreaMm2 > 0.0
        ? res.effGops / arch.chipAreaMm2 : 0.0;
    res.gopsPerW = arch.chipPowerMw > 0.0
        ? res.effGops / (arch.chipPowerMw * 1e-3) : 0.0;
    return res;
}

double
chipBusyNs(const std::vector<PhaseInterval> &phases,
           const TilePipeline &tile)
{
    if (phases.empty())
        return 0.0;
    if (!tile.overlap) {
        double busy = 0.0;
        for (const PhaseInterval &p : phases)
            busy += p.quantNs + p.computeNs;
        return busy;
    }
    // Two-phase chained overlap: the first quantization cannot hide
    // behind anything; afterwards each node's compute runs while the
    // next node's quantization fills, so each link costs the longer
    // of the two; the last compute drains unhidden.
    double busy = phases.front().quantNs;
    for (size_t k = 0; k + 1 < phases.size(); ++k)
        busy += std::max(phases[k].computeNs, phases[k + 1].quantNs);
    return busy + phases.back().computeNs;
}

double
InterChipLink::transferNs(int64_t bytes) const
{
    const double stream_ns = gbPerSec > 0.0
        ? static_cast<double>(bytes) / gbPerSec : 0.0;
    return latencyNs + stream_ns;
}

double
InterChipLink::transferPj(int64_t bytes) const
{
    return pjPerByte * static_cast<double>(bytes);
}

std::vector<ReferencePoint>
tableVReferencePoints()
{
    // Published Table V rows we do not re-derive (digital designs with
    // very different microarchitectures); SIMBA's power efficiency is
    // reported as a 0.08-2.5 range — the midpoint is carried here.
    return {
        {"DaDianNao", 0.13, 0.45},
        {"TPU", 0.08, 0.48},
        {"WAX", 0.33, 2.3},
        {"SIMBA", 0.34, 1.29},
    };
}

} // namespace forms::sim
