#include "sim/runtime.hh"

#include <chrono>

#include "nn/layers.hh"
#include "tensor/ops.hh"

namespace forms::sim {

double
RuntimeReport::modelTimeNs() const
{
    double ns = 0.0;
    for (const auto &l : layers)
        ns += l.stats.timeNs;
    return ns;
}

double
RuntimeReport::modelEnergyPj() const
{
    double pj = 0.0;
    for (const auto &l : layers)
        pj += l.stats.adcEnergyPj + l.stats.crossbarEnergyPj;
    return pj;
}

/** One executable step of the layer graph. */
struct InferenceRuntime::Stage
{
    enum class Kind { Conv, Dense, Relu, MaxPool, AvgPool, Flatten };

    Kind kind;
    std::string name;

    // Conv / Dense: the programmed hardware. `engine` references
    // `mapped`, which is why stages live behind unique_ptr and never
    // move after construction.
    arch::MappedLayer mapped;
    std::unique_ptr<arch::CrossbarEngine> engine;
    int outC = 0, k = 0, stride = 0, pad = 0;
    std::vector<float> bias;

    // Pooling geometry.
    int poolK = 0, poolStride = 0;
};

namespace {

admm::LayerState *
findState(std::vector<admm::LayerState> &layers, const Tensor *weight)
{
    for (auto &st : layers)
        if (st.param.value == weight)
            return &st;
    return nullptr;
}

std::vector<float>
biasOf(const Tensor &b)
{
    return std::vector<float>(b.data(), b.data() + b.numel());
}

} // namespace

InferenceRuntime::InferenceRuntime(nn::Network &net,
                                   std::vector<admm::LayerState> &layers,
                                   RuntimeConfig cfg)
    : cfg_(cfg)
{
    for (size_t i = 0; i < net.size(); ++i) {
        nn::Layer &l = net.layer(i);
        auto stage = std::make_unique<Stage>();
        stage->name = l.name();

        if (auto *conv = dynamic_cast<nn::Conv2D *>(&l)) {
            admm::LayerState *st = findState(layers, &conv->weight());
            if (!st) {
                fatal("runtime: no compression state for conv layer '%s'",
                      l.name().c_str());
            }
            stage->kind = Stage::Kind::Conv;
            stage->mapped = arch::mapLayer(*st, cfg_.mapping);
            stage->engine = std::make_unique<arch::CrossbarEngine>(
                stage->mapped, cfg_.engine);
            stage->outC = conv->outChannels();
            stage->k = conv->kernel();
            stage->stride = conv->stride();
            stage->pad = conv->pad();
            stage->bias = biasOf(conv->bias());
        } else if (auto *dense = dynamic_cast<nn::Dense *>(&l)) {
            admm::LayerState *st = findState(layers, &dense->weight());
            if (!st) {
                fatal("runtime: no compression state for dense layer '%s'",
                      l.name().c_str());
            }
            stage->kind = Stage::Kind::Dense;
            stage->mapped = arch::mapLayer(*st, cfg_.mapping);
            stage->engine = std::make_unique<arch::CrossbarEngine>(
                stage->mapped, cfg_.engine);
            stage->outC = dense->outDim();
            stage->bias = biasOf(dense->bias());
        } else if (dynamic_cast<nn::ReLU *>(&l)) {
            stage->kind = Stage::Kind::Relu;
        } else if (auto *mp = dynamic_cast<nn::MaxPool2D *>(&l)) {
            stage->kind = Stage::Kind::MaxPool;
            stage->poolK = mp->kernel();
            stage->poolStride = mp->stride();
        } else if (auto *ap = dynamic_cast<nn::AvgPool2D *>(&l)) {
            stage->kind = Stage::Kind::AvgPool;
            stage->poolK = ap->kernel();
            stage->poolStride = ap->stride();
        } else if (dynamic_cast<nn::Flatten *>(&l)) {
            stage->kind = Stage::Kind::Flatten;
        } else {
            fatal("runtime: layer '%s' is not supported yet (BatchNorm "
                  "folding and residual blocks are ROADMAP items)",
                  l.name().c_str());
        }
        stages_.push_back(std::move(stage));
    }
}

InferenceRuntime::~InferenceRuntime() = default;

ThreadPool &
InferenceRuntime::pool() const
{
    return cfg_.pool ? *cfg_.pool : ThreadPool::global();
}

size_t
InferenceRuntime::stages() const
{
    return stages_.size();
}

size_t
InferenceRuntime::programmedStages() const
{
    size_t n = 0;
    for (const auto &s : stages_)
        n += s->engine != nullptr;
    return n;
}

int64_t
InferenceRuntime::totalCrossbars() const
{
    int64_t n = 0;
    for (const auto &s : stages_)
        if (s->engine)
            n += s->mapped.numCrossbars();
    return n;
}

void
InferenceRuntime::resetPresentationStreams()
{
    for (auto &s : stages_)
        if (s->engine)
            s->engine->resetPresentationStream();
}

namespace {

/**
 * Quantize the presentations of one stage input. Presentation j's
 * row r lives at base[j*j_stride + r*r_stride] (strided access covers
 * both the column-major im2col layout and row-major dense inputs);
 * quantizeActivations maps negative values to zero (the bit-serial
 * input encoding is unsigned, DESIGN.md §2).
 */
std::vector<std::vector<uint32_t>>
quantizeBatch(ThreadPool &tp, int64_t count, int64_t rows, int bits,
              std::vector<float> &scales, const float *base,
              int64_t j_stride, int64_t r_stride)
{
    std::vector<std::vector<uint32_t>> q(static_cast<size_t>(count));
    scales.assign(static_cast<size_t>(count), 0.0f);
    tp.parallelFor(0, count, 16, [&](int64_t j, int) {
        std::vector<float> col(static_cast<size_t>(rows));
        const float *p = base + j * j_stride;
        for (int64_t r = 0; r < rows; ++r)
            col[static_cast<size_t>(r)] = p[r * r_stride];
        q[static_cast<size_t>(j)] = arch::quantizeActivations(
            col, bits, &scales[static_cast<size_t>(j)]);
    });
    return q;
}

/**
 * Dequantized value of output channel `oc` of one presentation.
 * Channels past the engine's output extent were pruned away entirely
 * (the mapper compacts them): all their weights are zero, so they
 * legitimately contribute 0 here (bias is added by the caller).
 */
float
channelValue(const std::vector<float> &deq, int oc)
{
    return static_cast<size_t>(oc) < deq.size()
        ? deq[static_cast<size_t>(oc)] : 0.0f;
}

} // namespace

namespace {

/**
 * Accumulate one programmed stage's batch stats into a report that
 * may span several forward() calls: rows merge by stage position, so
 * reusing one report across minibatches sums per-layer stats instead
 * of appending duplicate rows.
 */
void
recordLayer(RuntimeReport &report, size_t stage_idx,
            const std::string &name, const arch::EngineStats &stats,
            int64_t crossbars, uint64_t presentations)
{
    if (stage_idx < report.layers.size()) {
        report.layers[stage_idx].stats.merge(stats);
    } else {
        report.layers.push_back({name, stats, crossbars});
    }
    report.presentations += presentations;
}

} // namespace

Tensor
InferenceRuntime::forward(const Tensor &batch, RuntimeReport *report)
{
    const auto t0 = std::chrono::steady_clock::now();
    ThreadPool &tp = pool();
    // Route the shared tensor kernels (relu, pooling, im2col) through
    // this runtime's pool too: every stage shards on one pool.
    PoolScope scope(tp);
    const int in_bits = cfg_.mapping.inputBits;
    size_t programmed_idx = 0;

    // The current activation is tracked by pointer until the first
    // stage produces its own tensor: stages only read their input, so
    // deep-copying the caller's batch up front would be wasted work.
    Tensor cur;
    const Tensor *act = &batch;
    for (auto &sp : stages_) {
        Stage &s = *sp;
        switch (s.kind) {
        case Stage::Kind::Relu:
            cur = relu(*act);
            break;
        case Stage::Kind::MaxPool:
            cur = maxPool2d(*act, s.poolK, s.poolStride, nullptr);
            break;
        case Stage::Kind::AvgPool:
            cur = avgPool2d(*act, s.poolK, s.poolStride);
            break;
        case Stage::Kind::Flatten: {
            const int64_t n = act->dim(0);
            cur = act->reshaped({n, act->numel() / n});
            break;
        }
        case Stage::Kind::Conv: {
            const int64_t n = act->dim(0);
            const int h = static_cast<int>(act->dim(2));
            const int w = static_cast<int>(act->dim(3));
            const int oh = convOutDim(h, s.k, s.stride, s.pad);
            const int ow = convOutDim(w, s.k, s.stride, s.pad);

            // Lower to presentations: column j of the im2col matrix
            // is patch (img, oy, ox) with j = (img*oh + oy)*ow + ox.
            Tensor cols = im2col(*act, s.k, s.k, s.stride, s.pad);
            const int64_t rows = cols.dim(0);
            const int64_t m = cols.dim(1);
            const float *pc = cols.data();

            std::vector<float> scales;
            auto q = quantizeBatch(tp, m, rows, in_bits, scales,
                                   pc, /*j_stride=*/1, /*r_stride=*/m);

            arch::EngineStats st;
            auto raw = s.engine->mvmBatch(q, &st, &tp);

            Tensor out({n, s.outC, oh, ow});
            float *po = out.data();
            const int64_t plane = int64_t(oh) * ow;
            tp.parallelFor(0, m, 16, [&](int64_t j, int) {
                const auto deq = arch::dequantizeOutputs(
                    raw[static_cast<size_t>(j)], s.mapped.scale,
                    scales[static_cast<size_t>(j)]);
                const int64_t img = j / plane, pix = j % plane;
                for (int oc = 0; oc < s.outC; ++oc) {
                    po[(img * s.outC + oc) * plane + pix] =
                        channelValue(deq, oc) +
                        s.bias[static_cast<size_t>(oc)];
                }
            });
            if (report) {
                recordLayer(*report, programmed_idx, s.name, st,
                            s.mapped.numCrossbars(),
                            static_cast<uint64_t>(m));
            }
            ++programmed_idx;
            cur = std::move(out);
            break;
        }
        case Stage::Kind::Dense: {
            FORMS_ASSERT(act->rank() == 2,
                         "dense stage needs a flattened input");
            const int64_t n = act->dim(0);
            const int64_t feats = act->dim(1);
            const float *pi = act->data();

            std::vector<float> scales;
            auto q = quantizeBatch(tp, n, feats, in_bits, scales, pi,
                                   /*j_stride=*/feats, /*r_stride=*/1);

            arch::EngineStats st;
            auto raw = s.engine->mvmBatch(q, &st, &tp);

            Tensor out({n, s.outC});
            float *po = out.data();
            tp.parallelFor(0, n, 16, [&](int64_t j, int) {
                const auto deq = arch::dequantizeOutputs(
                    raw[static_cast<size_t>(j)], s.mapped.scale,
                    scales[static_cast<size_t>(j)]);
                for (int oc = 0; oc < s.outC; ++oc) {
                    po[j * s.outC + oc] =
                        channelValue(deq, oc) +
                        s.bias[static_cast<size_t>(oc)];
                }
            });
            if (report) {
                recordLayer(*report, programmed_idx, s.name, st,
                            s.mapped.numCrossbars(),
                            static_cast<uint64_t>(n));
            }
            ++programmed_idx;
            cur = std::move(out);
            break;
        }
        }
        act = &cur;
    }
    if (act != &cur)
        cur = *act;   // no stages at all: pass the batch through

    if (report) {
        report->wallMs += std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0).count();
    }
    return cur;
}

double
InferenceRuntime::accuracy(const Tensor &images,
                           const std::vector<int> &labels,
                           RuntimeReport *report)
{
    const Tensor logits = forward(images, report);
    FORMS_ASSERT(logits.dim(0) ==
                     static_cast<int64_t>(labels.size()),
                 "accuracy: label count mismatch");
    const int64_t n = logits.dim(0), k = logits.dim(1);
    int64_t hits = 0;
    for (int64_t i = 0; i < n; ++i) {
        int64_t best = 0;
        for (int64_t j = 1; j < k; ++j)
            if (logits.at(i, j) > logits.at(i, best))
                best = j;
        hits += best == labels[static_cast<size_t>(i)];
    }
    return n > 0 ? static_cast<double>(hits) / static_cast<double>(n)
                 : 0.0;
}

std::vector<admm::LayerState>
snapshotCompress(nn::Network &net, int frag_size, int quant_bits,
                 admm::PolarizationPolicy policy)
{
    std::vector<admm::LayerState> states;
    for (auto &p : net.params()) {
        if (!p.isConvWeight && !p.isDenseWeight)
            continue;
        admm::LayerState st;
        st.name = p.name;
        st.param = p;
        const Shape &shape = p.value->shape();
        if (p.isConvWeight) {
            st.plan = admm::FragmentPlan::forConv(
                shape[0], shape[1], shape[2], frag_size, policy);
        } else {
            st.plan = admm::FragmentPlan::forDense(shape[0], shape[1],
                                                   frag_size);
        }
        admm::WeightView v = st.view();
        st.signs = admm::computeSigns(v, st.plan);
        admm::projectPolarization(v, st.plan, *st.signs);
        admm::QuantSpec qs;
        qs.bits = quant_bits;
        st.quantScale = admm::projectQuantize(v, qs);
        states.push_back(std::move(st));
    }
    return states;
}

} // namespace forms::sim
