#include "sim/runtime.hh"

#include <chrono>

#include "nn/layers.hh"
#include "obs/trace.hh"
#include "sim/obs_glue.hh"
#include "sim/stage_kernels.hh"
#include "tensor/ops.hh"

namespace forms::sim {

double
RuntimeReport::modelTimeNs() const
{
    double ns = 0.0;
    for (const auto &l : layers)
        ns += l.stats.timeNs;
    return ns;
}

double
RuntimeReport::modelEnergyPj() const
{
    double pj = 0.0;
    for (const auto &l : layers)
        pj += l.stats.adcEnergyPj + l.stats.crossbarEnergyPj;
    return pj;
}

/** One executable step of the layer graph. */
struct InferenceRuntime::Stage
{
    enum class Kind { Conv, Dense, Relu, MaxPool, AvgPool, Flatten };

    Kind kind;
    std::string name;

    // Conv / Dense: the programmed hardware. `engine` references
    // `mapped`, which is why stages live behind unique_ptr and never
    // move after construction.
    arch::MappedLayer mapped;
    std::unique_ptr<arch::CrossbarEngine> engine;
    int outC = 0, k = 0, stride = 0, pad = 0;
    std::vector<float> bias;
    StageScale scale;   //!< resolved quantization mode for this stage

    // Pooling geometry.
    int poolK = 0, poolStride = 0;

    // Conv: reused im2col buffer (see convStage).
    Tensor im2colScratch;
};


InferenceRuntime::InferenceRuntime(nn::Network &net,
                                   std::vector<admm::LayerState> &layers,
                                   RuntimeConfig cfg)
    : cfg_(cfg)
{
    // Fault identity in the straight-line runtime is the layer index;
    // the graph runtimes use graph node ids instead, so fault studies
    // meant to compare runtimes should go through those.
    auto programStage = [&](Stage &stage, admm::LayerState &st,
                            size_t layer_index, const char *name) {
        stage.mapped = arch::mapLayer(st, cfg_.mapping);
        arch::EngineConfig ecfg = cfg_.engine;
        if (cfg_.faults) {
            ecfg.faults = cfg_.faults;
            ecfg.faultKey = static_cast<uint64_t>(layer_index);
            if (cfg_.remapFaults)
                arch::remapFaultyCrossbars(stage.mapped, *cfg_.faults,
                                           ecfg.faultKey, name);
        }
        stage.engine = std::make_unique<arch::CrossbarEngine>(
            stage.mapped, ecfg);
    };

    for (size_t i = 0; i < net.size(); ++i) {
        nn::Layer &l = net.layer(i);
        auto stage = std::make_unique<Stage>();
        stage->name = l.name();

        if (auto *conv = dynamic_cast<nn::Conv2D *>(&l)) {
            admm::LayerState *st = findLayerState(layers, &conv->weight());
            if (!st) {
                fatal("runtime: no compression state for conv layer '%s'",
                      l.name().c_str());
            }
            stage->kind = Stage::Kind::Conv;
            programStage(*stage, *st, i, l.name().c_str());
            stage->outC = conv->outChannels();
            stage->k = conv->kernel();
            stage->stride = conv->stride();
            stage->pad = conv->pad();
            stage->bias = tensorToVector(conv->bias());
            stage->scale = resolveStageScale(cfg_, l.name());
        } else if (auto *dense = dynamic_cast<nn::Dense *>(&l)) {
            admm::LayerState *st = findLayerState(layers, &dense->weight());
            if (!st) {
                fatal("runtime: no compression state for dense layer '%s'",
                      l.name().c_str());
            }
            stage->kind = Stage::Kind::Dense;
            programStage(*stage, *st, i, l.name().c_str());
            stage->outC = dense->outDim();
            stage->bias = tensorToVector(dense->bias());
            stage->scale = resolveStageScale(cfg_, l.name());
        } else if (dynamic_cast<nn::ReLU *>(&l)) {
            stage->kind = Stage::Kind::Relu;
        } else if (auto *mp = dynamic_cast<nn::MaxPool2D *>(&l)) {
            stage->kind = Stage::Kind::MaxPool;
            stage->poolK = mp->kernel();
            stage->poolStride = mp->stride();
        } else if (auto *ap = dynamic_cast<nn::AvgPool2D *>(&l)) {
            stage->kind = Stage::Kind::AvgPool;
            stage->poolK = ap->kernel();
            stage->poolStride = ap->stride();
        } else if (dynamic_cast<nn::Flatten *>(&l)) {
            stage->kind = Stage::Kind::Flatten;
        } else {
            const char *kind = "unknown layer type";
            if (dynamic_cast<nn::BatchNorm2D *>(&l))
                kind = "BatchNorm2D";
            else if (dynamic_cast<nn::ResidualBlock *>(&l))
                kind = "ResidualBlock";
            fatal("runtime: layer '%s' (%s) is outside the sequential "
                  "InferenceRuntime's Conv/Dense/ReLU/Pool/Flatten "
                  "coverage — lower the network with "
                  "compile::lowerNetwork + compile::foldBatchNorm and "
                  "execute it on sim::GraphRuntime instead",
                  l.name().c_str(), kind);
        }
        stages_.push_back(std::move(stage));
    }
}

InferenceRuntime::~InferenceRuntime() = default;

ThreadPool &
InferenceRuntime::pool() const
{
    return cfg_.pool ? *cfg_.pool : ThreadPool::global();
}

size_t
InferenceRuntime::stages() const
{
    return stages_.size();
}

size_t
InferenceRuntime::programmedStages() const
{
    size_t n = 0;
    for (const auto &s : stages_)
        n += s->engine != nullptr;
    return n;
}

int64_t
InferenceRuntime::totalCrossbars() const
{
    int64_t n = 0;
    for (const auto &s : stages_)
        if (s->engine)
            n += s->mapped.numCrossbars();
    return n;
}

void
InferenceRuntime::resetPresentationStreams()
{
    for (auto &s : stages_)
        if (s->engine)
            s->engine->resetPresentationStream();
    nextImageId_ = 0;
}

Tensor
InferenceRuntime::forward(const Tensor &batch, RuntimeReport *report)
{
    FORMS_TRACE_SCOPE("InferenceRuntime::forward");
    const auto t0 = std::chrono::steady_clock::now();
    ThreadPool &tp = pool();
    // Route the shared tensor kernels (relu, pooling, im2col) through
    // this runtime's pool too: every stage shards on one pool.
    PoolScope scope(tp);
    const int in_bits = cfg_.mapping.inputBits;
    size_t programmed_idx = 0;

    // Key every stage's presentation streams by consecutive
    // runtime-lifetime image ids — equal to the engine-lifetime
    // presentation indices the unkeyed path would have used, so
    // forward() stays bit-identical to its pre-keyed behavior while
    // sharing the request-keyed kernels (docs/SERVING.md).
    const int64_t n_images = batch.dim(0);
    std::vector<uint64_t> ids(static_cast<size_t>(n_images));
    for (int64_t i = 0; i < n_images; ++i)
        ids[static_cast<size_t>(i)] =
            nextImageId_ + static_cast<uint64_t>(i);
    nextImageId_ += static_cast<uint64_t>(n_images);

    // When only the metrics sink wants the per-layer rows, collect
    // them into a local report — a pure observer on top of the same
    // execution.
    RuntimeReport local_report;
    RuntimeReport *rep =
        report ? report : (cfg_.metrics ? &local_report : nullptr);

    // The current activation is tracked by pointer until the first
    // stage produces its own tensor: stages only read their input, so
    // deep-copying the caller's batch up front would be wasted work.
    Tensor cur;
    const Tensor *act = &batch;
    for (auto &sp : stages_) {
        Stage &s = *sp;
        switch (s.kind) {
        case Stage::Kind::Relu:
            cur = relu(*act);
            break;
        case Stage::Kind::MaxPool:
            cur = maxPool2d(*act, s.poolK, s.poolStride, nullptr);
            break;
        case Stage::Kind::AvgPool:
            cur = avgPool2d(*act, s.poolK, s.poolStride);
            break;
        case Stage::Kind::Flatten: {
            const int64_t n = act->dim(0);
            cur = act->reshaped({n, act->numel() / n});
            break;
        }
        case Stage::Kind::Conv: {
            arch::EngineStats st;
            StageEngines se{{s.engine.get()}, {}};
            se.imageIds = ids.data();
            cur = convStage(*act, se, s.mapped, s.bias, {}, s.outC, s.k,
                            s.stride, s.pad, in_bits, s.scale, tp, &st,
                            &s.im2colScratch);
            if (rep) {
                recordLayer(*rep, programmed_idx, s.name, st,
                            s.mapped.numCrossbars(), st.presentations);
            }
            ++programmed_idx;
            break;
        }
        case Stage::Kind::Dense: {
            arch::EngineStats st;
            StageEngines se{{s.engine.get()}, {}};
            se.imageIds = ids.data();
            cur = denseStage(*act, se, s.mapped, s.bias, s.outC, in_bits,
                             s.scale, tp, &st);
            if (rep) {
                recordLayer(*rep, programmed_idx, s.name, st,
                            s.mapped.numCrossbars(), st.presentations);
            }
            ++programmed_idx;
            break;
        }
        }
        act = &cur;
    }
    if (act != &cur)
        cur = *act;   // no stages at all: pass the batch through

    if (rep) {
        rep->wallMs += std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0).count();
    }
    if (cfg_.metrics)
        recordRuntimeMetrics(*cfg_.metrics, *rep);
    return cur;
}

double
InferenceRuntime::accuracy(const Tensor &images,
                           const std::vector<int> &labels,
                           RuntimeReport *report)
{
    return logitsAccuracy(forward(images, report), labels);
}

std::vector<admm::LayerState>
snapshotCompress(nn::Network &net, int frag_size, int quant_bits,
                 admm::PolarizationPolicy policy)
{
    std::vector<admm::LayerState> states;
    for (auto &p : net.params()) {
        if (!p.isConvWeight && !p.isDenseWeight)
            continue;
        admm::LayerState st;
        st.name = p.name;
        st.param = p;
        const Shape &shape = p.value->shape();
        if (p.isConvWeight) {
            st.plan = admm::FragmentPlan::forConv(
                shape[0], shape[1], shape[2], frag_size, policy);
        } else {
            st.plan = admm::FragmentPlan::forDense(shape[0], shape[1],
                                                   frag_size);
        }
        admm::WeightView v = st.view();
        st.signs = admm::computeSigns(v, st.plan);
        admm::projectPolarization(v, st.plan, *st.signs);
        admm::QuantSpec qs;
        qs.bits = quant_bits;
        st.quantScale = admm::projectQuantize(v, qs);
        states.push_back(std::move(st));
    }
    return states;
}

} // namespace forms::sim
