#include "sim/obs_glue.hh"

namespace forms::sim {

void
recordEngineMetrics(obs::MetricsRegistry &m, const arch::EngineStats &s,
                    const std::string &prefix)
{
    m.counterAdd(prefix + ".presentations", s.presentations);
    m.counterAdd(prefix + ".bit_cycles", s.bitCycles);
    m.counterAdd(prefix + ".skipped_cycles", s.skippedCycles);
    m.counterAdd(prefix + ".adc_samples", s.adcSamples);
    m.counterAdd(prefix + ".quant_values", s.quantValues);
    m.counterAdd(prefix + ".quant_clipped", s.quantClipped);
    m.gaugeSet(prefix + ".skip_fraction", s.skipFraction());
    m.gaugeSet(prefix + ".clip_fraction", s.clipFraction());
    m.gaugeSet(prefix + ".adc_energy_pj", s.adcEnergyPj);
    m.gaugeSet(prefix + ".crossbar_energy_pj", s.crossbarEnergyPj);
    m.gaugeSet(prefix + ".time_ns", s.timeNs);
}

void
recordRuntimeMetrics(obs::MetricsRegistry &m, const RuntimeReport &r)
{
    arch::EngineStats total;
    for (const RuntimeLayerReport &layer : r.layers) {
        total.merge(layer.stats);
        m.histObserve("layer.time_ns", layer.stats.timeNs);
        m.histObserve("layer.skip_fraction",
                      layer.stats.skipFraction());
        m.histObserve("layer.clip_fraction",
                      layer.stats.clipFraction());
    }
    recordEngineMetrics(m, total);
    m.gaugeSet("model.time_ns", r.modelTimeNs());
    m.gaugeSet("model.energy_pj", r.modelEnergyPj());
    m.gaugeSet("host.wall_ms", r.wallMs);
}

void
recordPipelineMetrics(obs::MetricsRegistry &m, const PipelineReport &r)
{
    recordRuntimeMetrics(m, r.nodes);
    m.gaugeSet("pipeline.chips", static_cast<double>(r.chips.size()));
    m.gaugeSet("pipeline.stages", static_cast<double>(r.stages));
    m.gaugeSet("pipeline.micro_batches",
               static_cast<double>(r.microBatches));
    m.counterAdd("pipeline.images", static_cast<uint64_t>(r.images));
    m.gaugeSet("pipeline.makespan_ns", r.makespanNs);
    m.gaugeSet("pipeline.bubble_fraction", r.bubbleFraction);
    m.gaugeSet("pipeline.transfer_ns", r.transferNs);
    m.gaugeSet("pipeline.transfer_pj", r.transferPj);
    m.gaugeSet("pipeline.overlap_saved_ns", r.overlapSavedNs);
    m.gaugeSet("pipeline.modeled_fps", r.modeledFps());
    m.gaugeSet("pipeline.faulty_crossbars",
               static_cast<double>(r.faultyCrossbars));
    m.gaugeSet("pipeline.remapped_crossbars",
               static_cast<double>(r.remappedCrossbars));
    for (const ChipReport &c : r.chips) {
        m.histObserve("chip.busy_ns", c.busyNs);
        m.histObserve("chip.utilization", c.utilization);
        m.histObserve("chip.quant_ns", c.quantNs);
        m.histObserve("chip.compute_ns", c.computeNs);
        m.histObserve("chip.transfer_in_ns", c.transferInNs);
        m.histObserve("chip.faulty_crossbars",
                      static_cast<double>(c.faultyCrossbars));
        m.histObserve("chip.remapped_crossbars",
                      static_cast<double>(c.remappedCrossbars));
    }
}

} // namespace forms::sim
