/**
 * @file
 * Bridges the simulator's aggregate reports into obs::MetricsRegistry.
 *
 * obs/ sits below arch/ and sim/ in the subsystem map (it only knows
 * names and numbers), so the mapping from EngineStats / RuntimeReport
 * / PipelineReport fields onto metric names lives here on the sim
 * side. All three executors feed the registry through these helpers,
 * which is what makes metrics.json comparable across them — one name
 * means one thing everywhere (docs/OBSERVABILITY.md lists the names).
 *
 * Call once per finished report: uint64 engine totals accumulate as
 * counters (safe across multiple runs into one registry), derived
 * fractions and modeled times land as gauges (last run wins), and
 * per-layer / per-chip distributions land as histograms.
 */

#ifndef FORMS_SIM_OBS_GLUE_HH
#define FORMS_SIM_OBS_GLUE_HH

#include <string>

#include "arch/engine.hh"
#include "obs/metrics.hh"
#include "sim/pipeline_runtime.hh"

namespace forms::sim {

/** Accumulate one EngineStats under `prefix`.* counter/gauge names. */
void recordEngineMetrics(obs::MetricsRegistry &m,
                         const arch::EngineStats &s,
                         const std::string &prefix = "engine");

/**
 * Record a single-chip runtime report: merged engine totals under
 * "engine.*", modeled time/energy gauges under "model.*", per-layer
 * distributions under "layer.*".
 */
void recordRuntimeMetrics(obs::MetricsRegistry &m,
                          const RuntimeReport &r);

/**
 * Record a pipeline report: everything recordRuntimeMetrics() emits
 * for the per-node rows, plus "pipeline.*" schedule gauges and
 * "chip.*" busy/utilization/transfer distributions.
 */
void recordPipelineMetrics(obs::MetricsRegistry &m,
                           const PipelineReport &r);

} // namespace forms::sim

#endif // FORMS_SIM_OBS_GLUE_HH
