/**
 * @file
 * High-level experiment drivers shared by the benchmark binaries:
 * pretrain a (scaled) network on a synthetic dataset, run the ADMM
 * compression pipeline at several fragment sizes, and report the
 * Tables I/II / Figure 6 style rows.
 *
 * Scaled-geometry note: the trainable stand-in networks have tens of
 * filters per layer, so the crossbar-aware rounding runs against a
 * proportionally scaled crossbar extent (`xbarDim`) — the mechanism is
 * identical, only the granularity is scaled with the model (see
 * DESIGN.md §2).
 */

#ifndef FORMS_SIM_EXPERIMENTS_HH
#define FORMS_SIM_EXPERIMENTS_HH

#include "admm/report.hh"
#include "sim/variation_study.hh"

namespace forms::sim {

/** Which trainable stand-in network to build. */
enum class NetKind
{
    LeNet5,
    VggSmall,
    ResNetSmall,
    ResNetDeep,
};

/** Name of a network kind. */
std::string netKindName(NetKind k);

/** Build a stand-in network for a dataset. */
std::unique_ptr<nn::Network> buildNet(NetKind kind,
                                      const nn::DatasetConfig &data,
                                      Rng &rng);

/** One compression experiment specification. */
struct CompressionExperimentSpec
{
    std::string label;
    NetKind net = NetKind::VggSmall;
    nn::DatasetConfig data;
    double filterKeep = 0.6;
    double shapeKeep = 0.6;
    std::vector<int> fragSizes = {4, 8, 16};
    int quantBits = 8;
    admm::PolarizationPolicy policy = admm::PolarizationPolicy::CMajor;
    int64_t xbarDim = 16;      //!< scaled crossbar extent (see header)
    int pretrainEpochs = 10;
    int admmEpochsPerPhase = 3;
    int finetuneEpochs = 3;
    uint64_t seed = 42;
    bool prune = true;
    bool polarize = true;
    bool quantize = true;
};

/** One row of a Tables I/II style result. */
struct CompressionExperimentRow
{
    int fragSize = 0;
    double baselineAccuracy = 0.0;
    double accuracyDropPct = 0.0;    //!< vs. the pretrained model
    double pruneRatio = 1.0;
    double crossbarReduction = 1.0;
    int64_t signViolations = 0;
};

/** Run the pipeline once per fragment size (fresh net each time). */
std::vector<CompressionExperimentRow>
runCompressionExperiment(const CompressionExperimentSpec &spec);

/** Figure 6 style: polarization-only accuracy vs fragment size. */
struct FragmentAccuracyPoint
{
    int fragSize = 0;
    double accuracy = 0.0;   //!< test accuracy after polarization
};

std::vector<FragmentAccuracyPoint>
runFragmentAccuracySweep(NetKind net, const nn::DatasetConfig &data,
                         const std::vector<int> &frag_sizes,
                         int pretrain_epochs, uint64_t seed);

/** Table VI style: variation robustness of four model variants. */
struct VariationRow
{
    std::string variant;
    double degradationPct = 0.0;
};

std::vector<VariationRow>
runVariationExperiment(NetKind net, const nn::DatasetConfig &data,
                       const VariationStudyConfig &vcfg,
                       double filter_keep, double shape_keep,
                       int pretrain_epochs, uint64_t seed);

} // namespace forms::sim

#endif // FORMS_SIM_EXPERIMENTS_HH
