/**
 * @file
 * Multi-chip pipelined executor for partitioned layer graphs, with
 * replicated stages and an intra-chip tile pipeline timing model.
 *
 * PipelineRuntime takes a compile::Graph plus a compile::Schedule
 * (the stage partition), programs each matrix node's engine into the
 * arch::EnginePool of every chip hosting it — one chip for ordinary
 * stages, R consecutive chips for a replicated stage — and streams
 * batches through the DAG as a micro-batch pipeline: while stage k
 * computes its nodes on micro-batch b, stage k-1 computes micro-batch
 * b+1. Inter-stage edges are the schedule's explicit Transfer
 * records, charged with a sim::InterChipLink latency/energy cost on
 * the receiving stage; a `mergeReplicas` record marks where a
 * replicated producer's presentation slices rejoin.
 *
 * The pipeline overlap is a *timing model* layered on a functionally
 * exact execution: numerically, every micro-batch flows through the
 * identical kernels (sim/stage_kernels.hh) in the graph's
 * deterministic topological order, so
 *
 *   - logits are bit-identical to sim::GraphRuntime on the same
 *     graph, for ANY chip count, micro-batch size, thread count AND
 *     replication factor (chips shard work in the model, not in the
 *     arithmetic; replica r of R processes the contiguous
 *     presentation-index slice [floor(P*r/R), floor(P*(r+1)/R)) of
 *     each micro-batch with its engine stream seeked to the slice's
 *     global presentation index), and
 *   - per-node EngineStats accumulate through one engine-lifetime
 *     fold in presentation order — each micro-batch's stage call
 *     merges into the same per-node accumulator, and a replicated
 *     node's replica slices fold in ascending replica (= global
 *     presentation) order — reproducing the exact full-batch
 *     floating-point merge order (DESIGN.md §5, docs/SCHEDULING.md).
 *
 * Per-chip stats merge the chip's node accumulators in topological
 * (presentation) order; a replicated node's accumulator spans all its
 * replicas and is attributed to the stage's primary (first) chip.
 *
 * Timing model: per (chip, micro-batch) the runtime collects one
 * sim::PhaseInterval per hosted programmed node — the digital
 * input-quantization phase and the ADC-limited phase — and reduces
 * them with sim::chipBusyNs (per-phase busy intervals; with
 * TilePipeline::overlap, layer L's ADC phase hides layer L+1's
 * quantization within a chip). Stages then close the recurrence
 *
 *     done[s][m] = max(done[s-1][m] + transfer[s][m],
 *                      done[s][m-1]) + busy[s][m]
 *
 * where busy[s][m] is the max over the stage's (replica) chips.
 *
 * Thread-safety: construction and forward() must be called from one
 * thread at a time (the runtime owns mutable engine streams); the
 * internal work shards on the configured ThreadPool. Distinct
 * PipelineRuntime instances are independent.
 *
 * Typical flow:
 *
 *     auto graph = compile::lowerNetwork(net);
 *     compile::foldBatchNorm(graph);
 *     graph.inferShapes({3, 32, 32});
 *     compile::ScheduleConfig scfg;
 *     scfg.chips = 4;
 *     scfg.replicateThreshold = 1.05;   // replicate pipeline hogs
 *     auto sched = compile::Schedule::partition(graph, scfg);
 *     auto states = sim::snapshotCompress(net, frag, bits);
 *     sim::PipelineRuntime rt(graph, sched, states, cfg);
 *     Tensor logits = rt.forward(batch, &report);
 */

#ifndef FORMS_SIM_PIPELINE_RUNTIME_HH
#define FORMS_SIM_PIPELINE_RUNTIME_HH

#include "compile/schedule.hh"
#include "sim/graph_exec.hh"
#include "sim/perf_model.hh"
#include "sim/runtime.hh"

namespace forms::obs {
class TraceSession;
} // namespace forms::obs

namespace forms::sim {

/** Pipelined runtime construction knobs. */
struct PipelineRuntimeConfig
{
    RuntimeConfig runtime;  //!< geometry, engine knobs, host pool
    int microBatch = 1;     //!< images per pipeline micro-batch
    InterChipLink link;     //!< inter-chip transfer cost model
    TilePipeline tile;      //!< intra-chip phase-overlap timing model

    /**
     * Trace sink (borrowed, may be null). When set, each forward()
     * reconstructs the modeled multi-chip timeline — per-chip
     * stage/micro-batch slices, quant/ADC sub-phases, transfer flow
     * arrows — into the session (docs/OBSERVABILITY.md). A pure
     * observer: logits and EngineStats are bit-identical with or
     * without it.
     */
    obs::TraceSession *trace = nullptr;
};

/** One chip's slice of a pipeline report. */
struct ChipReport
{
    int chip = -1;
    int stage = -1;              //!< pipeline stage this chip serves
    int replicas = 1;            //!< chips sharing the stage (>1 = replicated)
    size_t nodes = 0;            //!< graph nodes assigned
    size_t programmedNodes = 0;  //!< crossbar-programmed among them
    int64_t crossbars = 0;

    /**
     * Node accumulators merged in topo order. A replicated node's
     * accumulator covers all replicas and lands on the stage's
     * primary chip only (replica chips report zero stats here but
     * nonzero busy time).
     */
    arch::EngineStats stats;

    double computeNs = 0.0;      //!< modeled ADC-phase time over the batch
    double quantNs = 0.0;        //!< modeled quantization-phase time
    double busyNs = 0.0;         //!< per-phase busy time (overlap applied)
    double transferInNs = 0.0;   //!< modeled wait on the inbound link
    double transferInPj = 0.0;   //!< inbound link energy
    double utilization = 0.0;    //!< busyNs / pipeline makespan

    /**
     * Zero-skip activity of this chip's ADC phases, summed over the
     * batch: input bit cycles actually presented vs elided
     * (PhaseInterval's counters). computeNs already charges only the
     * presented cycles; eicFraction() reports the measured density.
     */
    uint64_t adcBitCycles = 0;
    uint64_t adcSkippedCycles = 0;

    /**
     * Fault exposure of this chip's programmed engines (0 without a
     * RuntimeConfig::faults map): crossbars whose used window carries
     * at least one overlaid fault, and crossbars the spare-remap pass
     * rerouted off a dead column. Replicated nodes count on every
     * hosting chip (each chip programs its own faulted replica).
     */
    int64_t faultyCrossbars = 0;
    int64_t remappedCrossbars = 0;

    /** Presented fraction of worst-case input cycles (1 = no skip). */
    double eicFraction() const
    {
        const uint64_t all = adcBitCycles + adcSkippedCycles;
        return all == 0
            ? 1.0
            : static_cast<double>(adcBitCycles) /
                static_cast<double>(all);
    }
};

/**
 * Pipeline execution report. `nodes` carries the same per-node rows
 * (names, order, merged stats) a GraphRuntime forward of the same
 * batch would produce; the pipeline-level fields summarize the
 * modeled multi-chip schedule.
 */
struct PipelineReport
{
    RuntimeReport nodes;          //!< per-node rows, GraphRuntime-compatible
    std::vector<ChipReport> chips;
    int stages = 0;               //!< pipeline stages (< chips when replicated)
    int microBatches = 0;
    int64_t images = 0;
    double makespanNs = 0.0;      //!< modeled pipeline completion time
    double bubbleFraction = 0.0;  //!< 1 - sum(busy) / (chips * makespan)
    double transferNs = 0.0;      //!< total modeled link time
    double transferPj = 0.0;      //!< total modeled link energy

    /**
     * Quantization-phase time hidden behind ADC phases by the
     * intra-chip tile pipeline (0 when TilePipeline::overlap is off).
     */
    double overlapSavedNs = 0.0;

    /** Fleet-wide fault exposure: sums of the per-chip counters. */
    int64_t faultyCrossbars = 0;
    int64_t remappedCrossbars = 0;

    /** Modeled pipeline throughput over this report's images. */
    double modeledFps() const
    {
        return makespanNs > 0.0
            ? static_cast<double>(images) / (makespanNs * 1e-9) : 0.0;
    }
};

/** Executes a partitioned, folded, compressed layer graph. */
class PipelineRuntime
{
  public:
    /**
     * Map and program every Conv/Dense node of `graph` into the
     * engine pool of each chip hosting it (replicated stages program
     * one identical engine per replica chip).
     *
     * @param graph the compiled DAG; borrowed (with its backing
     *        nn::Network) — both must outlive the runtime
     * @param sched stage partition from compile::Schedule::partition
     *        on this same graph (copied; the schedule may be dropped)
     * @param layers per-layer compression state, matched to matrix
     *        nodes by weight-tensor identity — build *after*
     *        foldBatchNorm so projections see folded weights
     * @param cfg geometry, engine knobs, micro-batch size, link and
     *        tile-pipeline timing models
     */
    PipelineRuntime(const compile::Graph &graph,
                    compile::Schedule sched,
                    std::vector<admm::LayerState> &layers,
                    PipelineRuntimeConfig cfg);
    ~PipelineRuntime();

    PipelineRuntime(const PipelineRuntime &) = delete;
    PipelineRuntime &operator=(const PipelineRuntime &) = delete;

    /**
     * Stream a whole NCHW batch through the pipeline in micro-batches.
     * Returns the graph output (batch x classes for a classifier),
     * bit-identical to GraphRuntime::forward on the same graph and
     * batch for any chip count, micro-batch size, thread count and
     * replication factor. Per-node stats merge into `report->nodes`
     * rows in topological order; chip/pipeline fields are overwritten
     * (they describe this forward, not an accumulation).
     */
    Tensor forward(const Tensor &batch, PipelineReport *report = nullptr);

    /**
     * Stream a batch of independently-identified images: image i keys
     * all its per-presentation randomness by `ids[i]` (one id per
     * batch image) instead of the runtime's implicit id counter, so a
     * request's logits — and, when `per_request` is given, its
     * RuntimeReport (one per image, resized/merged in batch order) —
     * are bit-identical for any batch composition, arrival order,
     * micro-batch size, chip count and replication factor
     * (docs/SERVING.md). Does not consume ids from the counter
     * forward() uses.
     */
    Tensor forwardRequests(const Tensor &batch, const uint64_t *ids,
                           std::vector<RuntimeReport> *per_request = nullptr,
                           PipelineReport *report = nullptr);

    /** Fraction of argmax(logits) == label over a labelled batch. */
    double accuracy(const Tensor &images, const std::vector<int> &labels,
                    PipelineReport *report = nullptr);

    /**
     * Restart every chip's presentation RNG streams and the forward()
     * image-id counter, so the next forward() replays the same
     * randomness as a fresh runtime.
     */
    void resetPresentationStreams();

    /** The stage partition this runtime executes. */
    const compile::Schedule &schedule() const { return sched_; }

    /** Number of pipeline chips. */
    int chips() const { return sched_.chips(); }

    /** Configured images per micro-batch. */
    int microBatch() const { return cfg_.microBatch; }

    /** Total crossbars programmed across all chips (replicas count). */
    int64_t totalCrossbars() const;

  private:
    const compile::Graph &graph_;
    compile::Schedule sched_;
    std::vector<int> topo_;               //!< fixed node schedule
    std::vector<arch::EnginePool> pools_; //!< one per chip
    std::vector<NodeExec> execs_;         //!< parallel to topo_
    PipelineRuntimeConfig cfg_;
    uint64_t nextImageId_ = 0;            //!< forward()'s id counter

    ThreadPool &pool() const;

    /** Reconstruct the modeled timeline into a trace session. */
    void emitTrace(
        obs::TraceSession &tr,
        const std::vector<std::vector<std::vector<PhaseInterval>>>
            &phases,
        const std::vector<std::vector<double>> &busy,
        const std::vector<std::vector<double>> &stage_busy_sm,
        const std::vector<std::vector<double>> &done, int64_t mb,
        int64_t images) const;
};

} // namespace forms::sim

#endif // FORMS_SIM_PIPELINE_RUNTIME_HH
