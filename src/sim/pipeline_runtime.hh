/**
 * @file
 * Multi-chip pipelined executor for partitioned layer graphs.
 *
 * PipelineRuntime takes a compile::Graph plus a compile::Schedule
 * (the chip partition), programs each matrix node's engine into its
 * chip's arch::EnginePool, and streams batches through the DAG as a
 * micro-batch pipeline: while chip k computes its nodes on
 * micro-batch b, chip k-1 computes micro-batch b+1. Inter-chip edges
 * are the schedule's explicit Transfer records, charged with a
 * sim::InterChipLink latency/energy cost on the receiving chip.
 *
 * The pipeline overlap is a *timing model* layered on a functionally
 * exact execution: numerically, every micro-batch flows through the
 * identical kernels (sim/stage_kernels.hh) in the graph's
 * deterministic topological order, so
 *
 *   - logits are bit-identical to sim::GraphRuntime on the same
 *     graph, for ANY chip count, micro-batch size and thread count
 *     (chips shard work in the model, not in the arithmetic), and
 *   - per-node EngineStats accumulate through one engine-lifetime
 *     fold in presentation order — each micro-batch's mvmBatch merges
 *     into the same per-node accumulator — reproducing the exact
 *     full-batch floating-point merge order (DESIGN.md §5).
 *
 * Per-chip stats merge the chip's node accumulators in topological
 * (presentation) order, preserving the bit-identical contract of
 * DESIGN.md §3/§4 across chips, micro-batches and thread counts.
 *
 * Thread-safety: construction and forward() must be called from one
 * thread at a time (the runtime owns mutable engine streams); the
 * internal work shards on the configured ThreadPool. Distinct
 * PipelineRuntime instances are independent.
 *
 * Typical flow:
 *
 *     auto graph = compile::lowerNetwork(net);
 *     compile::foldBatchNorm(graph);
 *     graph.inferShapes({3, 32, 32});
 *     auto sched = compile::Schedule::partition(graph, {4, {}});
 *     auto states = sim::snapshotCompress(net, frag, bits);
 *     sim::PipelineRuntime rt(graph, sched, states, cfg);
 *     Tensor logits = rt.forward(batch, &report);
 */

#ifndef FORMS_SIM_PIPELINE_RUNTIME_HH
#define FORMS_SIM_PIPELINE_RUNTIME_HH

#include "compile/schedule.hh"
#include "sim/graph_exec.hh"
#include "sim/perf_model.hh"
#include "sim/runtime.hh"

namespace forms::sim {

/** Pipelined runtime construction knobs. */
struct PipelineRuntimeConfig
{
    RuntimeConfig runtime;  //!< geometry, engine knobs, host pool
    int microBatch = 1;     //!< images per pipeline micro-batch
    InterChipLink link;     //!< inter-chip transfer cost model
};

/** One chip's slice of a pipeline report. */
struct ChipReport
{
    int chip = -1;
    size_t nodes = 0;            //!< graph nodes assigned
    size_t programmedNodes = 0;  //!< crossbar-programmed among them
    int64_t crossbars = 0;
    arch::EngineStats stats;     //!< node accumulators merged in topo order
    double computeNs = 0.0;      //!< modeled busy time over the batch
    double transferInNs = 0.0;   //!< modeled wait on the inbound link
    double transferInPj = 0.0;   //!< inbound link energy
    double utilization = 0.0;    //!< computeNs / pipeline makespan
};

/**
 * Pipeline execution report. `nodes` carries the same per-node rows
 * (names, order, merged stats) a GraphRuntime forward of the same
 * batch would produce; the pipeline-level fields summarize the
 * modeled multi-chip schedule.
 */
struct PipelineReport
{
    RuntimeReport nodes;          //!< per-node rows, GraphRuntime-compatible
    std::vector<ChipReport> chips;
    int microBatches = 0;
    int64_t images = 0;
    double makespanNs = 0.0;      //!< modeled pipeline completion time
    double bubbleFraction = 0.0;  //!< 1 - sum(compute) / (chips * makespan)
    double transferNs = 0.0;      //!< total modeled link time
    double transferPj = 0.0;      //!< total modeled link energy

    /** Modeled pipeline throughput over this report's images. */
    double modeledFps() const
    {
        return makespanNs > 0.0
            ? static_cast<double>(images) / (makespanNs * 1e-9) : 0.0;
    }
};

/** Executes a partitioned, folded, compressed layer graph. */
class PipelineRuntime
{
  public:
    /**
     * Map and program every Conv/Dense node of `graph` into its
     * chip's engine pool.
     *
     * @param graph the compiled DAG; borrowed (with its backing
     *        nn::Network) — both must outlive the runtime
     * @param sched chip partition from compile::Schedule::partition
     *        on this same graph (copied; the schedule may be dropped)
     * @param layers per-layer compression state, matched to matrix
     *        nodes by weight-tensor identity — build *after*
     *        foldBatchNorm so projections see folded weights
     * @param cfg geometry, engine knobs, micro-batch size, link model
     */
    PipelineRuntime(const compile::Graph &graph,
                    compile::Schedule sched,
                    std::vector<admm::LayerState> &layers,
                    PipelineRuntimeConfig cfg);
    ~PipelineRuntime();

    PipelineRuntime(const PipelineRuntime &) = delete;
    PipelineRuntime &operator=(const PipelineRuntime &) = delete;

    /**
     * Stream a whole NCHW batch through the pipeline in micro-batches.
     * Returns the graph output (batch x classes for a classifier),
     * bit-identical to GraphRuntime::forward on the same graph and
     * batch. Per-node stats merge into `report->nodes` rows in
     * topological order; chip/pipeline fields are overwritten (they
     * describe this forward, not an accumulation).
     */
    Tensor forward(const Tensor &batch, PipelineReport *report = nullptr);

    /** Fraction of argmax(logits) == label over a labelled batch. */
    double accuracy(const Tensor &images, const std::vector<int> &labels,
                    PipelineReport *report = nullptr);

    /** Restart every chip's presentation RNG streams. */
    void resetPresentationStreams();

    /** The chip partition this runtime executes. */
    const compile::Schedule &schedule() const { return sched_; }

    /** Number of pipeline chips. */
    int chips() const { return sched_.chips(); }

    /** Configured images per micro-batch. */
    int microBatch() const { return cfg_.microBatch; }

    /** Total crossbars programmed across all chips. */
    int64_t totalCrossbars() const;

  private:
    const compile::Graph &graph_;
    compile::Schedule sched_;
    std::vector<int> topo_;               //!< fixed node schedule
    std::vector<arch::EnginePool> pools_; //!< one per chip
    std::vector<NodeExec> execs_;         //!< parallel to topo_
    PipelineRuntimeConfig cfg_;

    ThreadPool &pool() const;
};

} // namespace forms::sim

#endif // FORMS_SIM_PIPELINE_RUNTIME_HH
