/**
 * @file
 * Analytic performance model (paper §V-C/D: Table V, Figures 13/14).
 *
 * The model is explicit and bottom-up:
 *
 *   n_l  crossbars per layer copy after compression:
 *        ceil(keptRows/R) * ceil(keptCols*cellsPerWeight/C) * signFactor
 *   tau_l per-presentation latency, ADC-limited:
 *        rowGroups * effectiveBits * (colsPerAdc / f_adc)
 *   FPS  balanced-pipeline replication over X total crossbars:
 *        X / sum_l n_l * P_l * tau_l
 *
 * Effective throughput counts the *original* network's operations
 * delivered per second (so compression raises it), divided by chip
 * area / power from the component models.
 *
 * Raw physics reproduces the compression-driven gains (e.g. ISAAC-32 ->
 * Pruned/Quantized-ISAAC) from first principles. The published
 * fine-grained-vs-coarse constants cannot all be derived from the
 * paper's parameters (see DESIGN.md §2), so each architecture carries
 * an explicit `calibration` factor, defaulted to pin Table V; benches
 * print raw and calibrated numbers side by side.
 */

#ifndef FORMS_SIM_PERF_MODEL_HH
#define FORMS_SIM_PERF_MODEL_HH

#include <map>
#include <mutex>
#include <utility>

#include "admm/report.hh"
#include "reram/components.hh"
#include "sim/activation_model.hh"
#include "sim/workloads.hh"

namespace forms::sim {

/** A modeled accelerator design point. */
struct ArchModel
{
    std::string name;
    admm::SignScheme scheme = admm::SignScheme::OffsetIsaac;
    int weightBits = 16;       //!< stored weight precision
    int cellBits = 2;
    int inputBits = 16;
    int fragSize = 128;        //!< activated rows per step (128=coarse)
    bool zeroSkip = false;
    int adcBits = 8;
    double adcFreqGhz = 1.2;
    int adcsPerCrossbar = 1;
    int xbarRows = 128;
    int xbarCols = 128;
    int64_t totalCrossbars = 168LL * 12 * 8;
    double chipPowerMw = 0.0;
    double chipAreaMm2 = 0.0;
    bool usesCompression = false;  //!< honours the eval case's profile
    double calibration = 1.0;      //!< documented efficiency factor

    /** Cell columns per stored weight. */
    int cellsPerWeight() const
    {
        return (weightBits + cellBits - 1) / cellBits;
    }

    /** Crossbar-count multiplier of the sign scheme. */
    int signFactor() const
    {
        return scheme == admm::SignScheme::Splitting ? 2 : 1;
    }

    // ---- factory design points -------------------------------------
    /** Non-pruned ISAAC with 32-bit weights (figure baseline). */
    static ArchModel isaac32();
    /** ISAAC with 16-bit weights (Table V normalization basis). */
    static ArchModel isaac16();
    /** ISAAC enjoying FORMS pruning + 8-bit quantization. */
    static ArchModel isaacPrunedQuantized();
    /** PUMA-style dual-crossbar design, 16-bit. */
    static ArchModel puma16();
    /** PUMA with pruning + quantization. */
    static ArchModel pumaPrunedQuantized();
    /** FORMS, polarization only (16-bit, no pruning/quantization). */
    static ArchModel formsPolarizationOnly(int frag_size);
    /** FORMS with all optimizations (pruning, quant, polarization). */
    static ArchModel formsFull(int frag_size, bool zero_skip);
};

/** Per-layer model intermediates (exposed for tests/ablations). */
struct LayerPerf
{
    int64_t crossbars = 0;      //!< n_l
    double tauNs = 0.0;         //!< per-presentation latency
    int64_t presentations = 0;  //!< P_l
    double workNs = 0.0;        //!< n_l * P_l * tau_l
};

/** Whole-network evaluation result. */
struct PerfResult
{
    double fpsRaw = 0.0;        //!< raw-physics frames per second
    double fps = 0.0;           //!< calibrated FPS
    double effGops = 0.0;       //!< original-network GOPs/s (calibrated)
    double gopsPerMm2 = 0.0;
    double gopsPerW = 0.0;
    double totalWorkNs = 0.0;   //!< sum n_l P_l tau_l
    std::vector<LayerPerf> layers;
};

/** The performance model. */
class PerfModel
{
  public:
    explicit PerfModel(ActivationModel act =
                           ActivationModel::calibratedResNet50());

    /**
     * Evaluate one architecture on one workload.
     *
     * @param arch the design point
     * @param workload full-size layer dims
     * @param profile compression profile; applied only when
     *        arch.usesCompression (prune keep fractions and weight
     *        precision come from here)
     */
    PerfResult evaluate(const ArchModel &arch, const Workload &workload,
                        const CompressionProfile *profile) const;

    /** Per-layer crossbar count under an architecture + profile. */
    LayerPerf layerPerf(const ArchModel &arch, const LayerSpec &layer,
                        const CompressionProfile *profile) const;

    /** Average effective input bits for a fragment size (cached). */
    double effectiveBitsFor(const ArchModel &arch) const;

    const ActivationModel &activationModel() const { return act_; }

  private:
    ActivationModel act_;
    // EIC depends on both the fragment size and the input grid the
    // activations are quantized onto, so the cache keys on the pair;
    // the mutex makes concurrent evaluate() calls safe (the model is
    // shared read-only across bench threads). Holding a mutex makes
    // PerfModel non-copyable, which is fine — it is constructed once
    // per bench/test and passed by reference.
    mutable std::map<std::pair<int, int>, double> eicCache_;
    mutable std::mutex eicMutex_;
};

/**
 * Inter-chip link cost model for the multi-chip pipeline scheduler
 * (compile/schedule.hh + sim/pipeline_runtime.hh). A tensor hopping
 * one chip boundary pays a fixed serialization latency plus a
 * bandwidth-proportional term; energy is charged per byte moved. The
 * defaults model a short-reach SerDes-class link; they are knobs, not
 * paper data (the paper evaluates a single chip).
 */
struct InterChipLink
{
    double latencyNs = 50.0;   //!< fixed per-hop serialization latency
    double gbPerSec = 25.0;    //!< link bandwidth (bytes stream at this rate)
    double pjPerByte = 1.0;    //!< transfer energy per byte

    /** Modeled time for one hop of `bytes` (fixed + bandwidth term). */
    double transferNs(int64_t bytes) const;

    /** Modeled energy for one hop of `bytes`. */
    double transferPj(int64_t bytes) const;
};

/**
 * Intra-chip tile pipeline timing model (FORMS inherits ISAAC's
 * intra-tile pipelining): each programmed node's time on a chip
 * splits into two phases — a digital input-quantization phase (the
 * DAC front-end turning activations into bit-serial presentations)
 * and the ADC-limited analog/digital phase (the engine model time).
 * With `overlap` set, node k+1's quantization phase runs while node
 * k's ADC phase drains the tail of the presentation stream, so a
 * chip's busy time for one micro-batch follows the two-phase chained
 * recurrence in chipBusyNs(); with it clear the phases serialize.
 * The quantization throughput is a knob, not paper data (the paper
 * reports only the ADC-limited path).
 */
struct TilePipeline
{
    /** Overlap layer L's ADC phase with layer L+1's quantization. */
    bool overlap = true;

    /**
     * Digital input-quantization time per activation scalar (ns).
     * The default models a fully pipelined 2 GHz fixed-point
     * quantizer, one value per cycle.
     */
    double quantNsPerValue = 0.5;

    /** Quantization-phase time for `values` activation scalars. */
    double quantNs(uint64_t values) const
    {
        return quantNsPerValue * static_cast<double>(values);
    }
};

/**
 * One programmed node's per-phase busy interval within a chip:
 * quantization (digital front-end) then ADC-limited compute. The
 * bit-cycle counters carry the compute phase's measured zero-skip
 * activity (arch::EngineStats deltas): computeNs already reflects
 * only the presented cycles, and eicFraction() reports how far below
 * the dense worst case that is.
 */
struct PhaseInterval
{
    double quantNs = 0.0;
    double computeNs = 0.0;
    uint64_t bitCycles = 0;      //!< input bit cycles presented
    uint64_t skippedCycles = 0;  //!< bit cycles elided by zero-skip

    /**
     * Presented fraction of the worst-case input cycles,
     * bitCycles / (bitCycles + skippedCycles) — the phase's measured
     * EIC density. 1 when untracked (no cycles recorded).
     */
    double eicFraction() const
    {
        const uint64_t all = bitCycles + skippedCycles;
        return all == 0
            ? 1.0
            : static_cast<double>(bitCycles) / static_cast<double>(all);
    }
};

/**
 * Busy time of one chip executing `phases` (its programmed nodes'
 * per-phase intervals, in topological order) for one micro-batch.
 * Serial: sum of (quant + compute). Overlapped: node k+1's
 * quantization hides behind node k's compute,
 *
 *     busy = q_1 + sum_{k=1}^{K-1} max(c_k, q_{k+1}) + c_K,
 *
 * which never exceeds the serial time and never undercuts the pure
 * compute sum (docs/SCHEDULING.md derives it).
 */
double chipBusyNs(const std::vector<PhaseInterval> &phases,
                  const TilePipeline &tile);

/** Published reference design points for Table V (paper's numbers). */
struct ReferencePoint
{
    std::string name;
    double gopsPerMm2Norm;   //!< normalized to ISAAC
    double gopsPerWNorm;
};

/** DaDianNao / TPU / WAX / SIMBA rows of Table V. */
std::vector<ReferencePoint> tableVReferencePoints();

} // namespace forms::sim

#endif // FORMS_SIM_PERF_MODEL_HH
