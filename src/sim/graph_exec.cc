#include "sim/graph_exec.hh"

#include <cmath>

#include "nn/layers.hh"
#include "tensor/ops.hh"

namespace forms::sim {

std::vector<NodeExec>
buildNodeExecs(const compile::Graph &g, const std::vector<int> &topo,
               std::vector<admm::LayerState> &layers,
               const RuntimeConfig &cfg,
               std::vector<arch::EnginePool> &pools,
               const std::function<int(int)> &chip_of)
{
    std::vector<NodeExec> execs;
    execs.reserve(topo.size());
    for (int id : topo) {
        const compile::Node &n = g.node(id);
        NodeExec e;
        e.op = n.op;
        e.nodeId = id;
        e.name = n.name;
        e.inputs = n.inputs;
        e.chip = chip_of(id);
        FORMS_ASSERT(e.chip >= 0 &&
                         static_cast<size_t>(e.chip) < pools.size(),
                     "graph exec: node assigned outside the chip pools "
                     "— was the schedule built from this graph?");
        arch::EnginePool &chip = pools[static_cast<size_t>(e.chip)];

        switch (n.op) {
        case compile::Op::Conv: {
            admm::LayerState *st =
                findLayerState(layers, &n.conv->weight());
            if (!st) {
                fatal("graph exec: no compression state for conv "
                      "node '%s'", n.name.c_str());
            }
            chip.program(id, arch::mapLayer(*st, cfg.mapping),
                         cfg.engine);
            e.engine = chip.engine(id);
            e.mapped = chip.mapped(id);
            e.outC = n.conv->outChannels();
            e.k = n.conv->kernel();
            e.stride = n.conv->stride();
            e.pad = n.conv->pad();
            // A digital output stage (BN folded into the periphery)
            // replaces the plain layer bias.
            if (!n.outScale.empty()) {
                e.chanScale = n.outScale;
                e.bias = n.outBias;
            } else {
                e.bias = tensorToVector(n.conv->bias());
            }
            e.scale = resolveStageScale(cfg, n.name, n.inScale);
            break;
        }
        case compile::Op::Dense: {
            admm::LayerState *st =
                findLayerState(layers, &n.dense->weight());
            if (!st) {
                fatal("graph exec: no compression state for dense "
                      "node '%s'", n.name.c_str());
            }
            chip.program(id, arch::mapLayer(*st, cfg.mapping),
                         cfg.engine);
            e.engine = chip.engine(id);
            e.mapped = chip.mapped(id);
            e.outC = n.dense->outDim();
            e.bias = tensorToVector(n.dense->bias());
            e.scale = resolveStageScale(cfg, n.name, n.inScale);
            break;
        }
        case compile::Op::BatchNorm: {
            // Left unfolded (e.g. BN not preceded by a private conv):
            // snapshot the eval-mode affine.
            const int c = n.bn->channels();
            e.bnScale.resize(static_cast<size_t>(c));
            e.bnShift.resize(static_cast<size_t>(c));
            for (int i = 0; i < c; ++i) {
                const float sigma = std::sqrt(
                    n.bn->runningVar().at(i) + n.bn->eps());
                const float s = n.bn->gamma().at(i) / sigma;
                e.bnScale[static_cast<size_t>(i)] = s;
                e.bnShift[static_cast<size_t>(i)] =
                    n.bn->beta().at(i) -
                    s * n.bn->runningMean().at(i);
            }
            break;
        }
        case compile::Op::MaxPool:
        case compile::Op::AvgPool:
            e.poolK = n.poolK;
            e.poolStride = n.poolStride;
            break;
        case compile::Op::Input:
        case compile::Op::Relu:
        case compile::Op::Flatten:
        case compile::Op::Add:
            break;
        }
        execs.push_back(std::move(e));
    }
    return execs;
}

Tensor
runGraph(const compile::Graph &g, const std::vector<NodeExec> &execs,
         const Tensor &batch, ThreadPool &tp, int input_bits,
         std::vector<arch::EngineStats> &stats,
         const std::function<void(size_t, double)> &on_programmed)
{
    FORMS_ASSERT(stats.size() == execs.size(),
                 "runGraph: stats accumulators must parallel execs");

    // Reference-counted value slots, indexed by node id. The input
    // node aliases the caller's batch; every other node owns its
    // output until the last consumer (or the graph output) is done.
    struct Slot
    {
        const Tensor *ref = nullptr;
        Tensor owned;
        int remaining = 0;
    };
    std::vector<Slot> slots(static_cast<size_t>(g.capacity()));
    for (const NodeExec &e : execs)
        for (int in : e.inputs)
            ++slots[static_cast<size_t>(in)].remaining;
    ++slots[static_cast<size_t>(g.output())].remaining;

    for (size_t idx = 0; idx < execs.size(); ++idx) {
        const NodeExec &e = execs[idx];
        Slot &out = slots[static_cast<size_t>(e.nodeId)];
        auto in = [&](size_t i) -> const Tensor & {
            return *slots[static_cast<size_t>(e.inputs[i])].ref;
        };

        switch (e.op) {
        case compile::Op::Input:
            out.ref = &batch;
            break;
        case compile::Op::Conv: {
            const double before = stats[idx].timeNs;
            out.owned = convStage(in(0), *e.engine, *e.mapped, e.bias,
                                  e.chanScale, e.outC, e.k, e.stride,
                                  e.pad, input_bits, e.scale, tp,
                                  &stats[idx]);
            if (on_programmed)
                on_programmed(idx, stats[idx].timeNs - before);
            break;
        }
        case compile::Op::Dense: {
            const double before = stats[idx].timeNs;
            out.owned = denseStage(in(0), *e.engine, *e.mapped, e.bias,
                                   e.outC, input_bits, e.scale, tp,
                                   &stats[idx]);
            if (on_programmed)
                on_programmed(idx, stats[idx].timeNs - before);
            break;
        }
        case compile::Op::BatchNorm:
            out.owned = batchNormStage(in(0), e.bnScale, e.bnShift, tp);
            break;
        case compile::Op::Relu:
            out.owned = relu(in(0));
            break;
        case compile::Op::MaxPool:
            out.owned = maxPool2d(in(0), e.poolK, e.poolStride, nullptr);
            break;
        case compile::Op::AvgPool:
            out.owned = avgPool2d(in(0), e.poolK, e.poolStride);
            break;
        case compile::Op::Flatten: {
            const Tensor &x = in(0);
            const int64_t n = x.dim(0);
            out.owned = x.reshaped({n, x.numel() / n});
            break;
        }
        case compile::Op::Add: {
            // Join node: fixed left-then-right accumulation order, so
            // the float sums are reproducible (DESIGN.md §4). Steal
            // the left operand's buffer when this is its last use
            // instead of deep-copying a full activation tensor.
            Slot &lhs = slots[static_cast<size_t>(e.inputs[0])];
            if (lhs.remaining == 1 && lhs.ref == &lhs.owned)
                out.owned = std::move(lhs.owned);
            else
                out.owned = in(0);
            out.owned.add(in(1));
            break;
        }
        }
        if (!out.ref)
            out.ref = &out.owned;

        // Release producer buffers whose consumers are all done.
        for (int src : e.inputs) {
            Slot &p = slots[static_cast<size_t>(src)];
            if (--p.remaining == 0 && p.ref == &p.owned) {
                p.owned = Tensor();
                p.ref = nullptr;
            }
        }
    }
    return *slots[static_cast<size_t>(g.output())].ref;
}

void
recordNodeRows(const std::vector<NodeExec> &execs,
               const std::vector<arch::EngineStats> &stats,
               RuntimeReport &report)
{
    size_t programmed_idx = 0;
    for (size_t idx = 0; idx < execs.size(); ++idx) {
        const NodeExec &e = execs[idx];
        if (!e.engine)
            continue;
        recordLayer(report, programmed_idx, e.name, stats[idx],
                    e.mapped->numCrossbars(), stats[idx].presentations);
        ++programmed_idx;
    }
}

} // namespace forms::sim
