#include "sim/graph_exec.hh"

#include <cmath>

#include "nn/layers.hh"
#include "obs/trace.hh"
#include "tensor/ops.hh"

namespace forms::sim {

namespace {

/**
 * Program one matrix node's replicas: every hosting chip maps and
 * programs its own engine from the same compression state, so the
 * programmed conductances are identical across replicas (device
 * variation draws from a stream seeded only by the engine config).
 * Fills the exec's engine/replica/mapped pointers.
 */
void
programReplicas(NodeExec &e, int id, admm::LayerState &st,
                const RuntimeConfig &cfg,
                std::vector<arch::EnginePool> &pools)
{
    // Dynamic span name, so only built when a session is live (the
    // FORMS_TRACE_SCOPE macro would pay the concatenation always).
    obs::TraceScope trace_scope(
        obs::traceEnabled() ? "program " + e.name : std::string());
    // One mapping serves every replica — the quantize-and-map result
    // is a pure function of (state, config).
    arch::MappedLayer mapped = arch::mapLayer(st, cfg.mapping);
    arch::EngineConfig ecfg = cfg.engine;
    if (cfg.faults) {
        // Fault identity is the graph node id: stable across
        // runtimes, replicas and partitionings.
        ecfg.faults = cfg.faults;
        ecfg.faultKey = static_cast<uint64_t>(id);
        if (cfg.remapFaults)
            e.remap = arch::remapFaultyCrossbars(
                mapped, *cfg.faults, ecfg.faultKey, e.name.c_str());
    }
    for (int chip : e.replicaChips) {
        arch::EnginePool &pool = pools[static_cast<size_t>(chip)];
        pool.program(id, mapped, ecfg);
        e.replicas.push_back(pool.engine(id));
    }
    e.engine = e.replicas.front();
    e.mapped = pools[static_cast<size_t>(e.chip)].mapped(id);
}

} // namespace

std::vector<NodeExec>
buildNodeExecs(const compile::Graph &g, const std::vector<int> &topo,
               std::vector<admm::LayerState> &layers,
               const RuntimeConfig &cfg,
               std::vector<arch::EnginePool> &pools,
               const std::function<std::vector<int>(int)> &chips_of)
{
    FORMS_TRACE_SCOPE("sim::buildNodeExecs");
    std::vector<NodeExec> execs;
    execs.reserve(topo.size());
    for (int id : topo) {
        const compile::Node &n = g.node(id);
        NodeExec e;
        e.op = n.op;
        e.nodeId = id;
        e.name = n.name;
        e.inputs = n.inputs;
        e.replicaChips = chips_of(id);
        FORMS_ASSERT(!e.replicaChips.empty(),
                     "graph exec: node hosted by no chip");
        for (int chip : e.replicaChips) {
            FORMS_ASSERT(chip >= 0 &&
                             static_cast<size_t>(chip) < pools.size(),
                         "graph exec: node assigned outside the chip "
                         "pools — was the schedule built from this "
                         "graph?");
        }
        e.chip = e.replicaChips.front();

        switch (n.op) {
        case compile::Op::Conv: {
            admm::LayerState *st =
                findLayerState(layers, &n.conv->weight());
            if (!st) {
                fatal("graph exec: no compression state for conv "
                      "node '%s'", n.name.c_str());
            }
            programReplicas(e, id, *st, cfg, pools);
            e.outC = n.conv->outChannels();
            e.k = n.conv->kernel();
            e.stride = n.conv->stride();
            e.pad = n.conv->pad();
            // A digital output stage (BN folded into the periphery)
            // replaces the plain layer bias.
            if (!n.outScale.empty()) {
                e.chanScale = n.outScale;
                e.bias = n.outBias;
            } else {
                e.bias = tensorToVector(n.conv->bias());
            }
            e.scale = resolveStageScale(cfg, n.name, n.inScale);
            break;
        }
        case compile::Op::Dense: {
            admm::LayerState *st =
                findLayerState(layers, &n.dense->weight());
            if (!st) {
                fatal("graph exec: no compression state for dense "
                      "node '%s'", n.name.c_str());
            }
            programReplicas(e, id, *st, cfg, pools);
            e.outC = n.dense->outDim();
            e.bias = tensorToVector(n.dense->bias());
            e.scale = resolveStageScale(cfg, n.name, n.inScale);
            break;
        }
        case compile::Op::BatchNorm: {
            // Left unfolded (e.g. BN not preceded by a private conv):
            // snapshot the eval-mode affine.
            const int c = n.bn->channels();
            e.bnScale.resize(static_cast<size_t>(c));
            e.bnShift.resize(static_cast<size_t>(c));
            for (int i = 0; i < c; ++i) {
                const float sigma = std::sqrt(
                    n.bn->runningVar().at(i) + n.bn->eps());
                const float s = n.bn->gamma().at(i) / sigma;
                e.bnScale[static_cast<size_t>(i)] = s;
                e.bnShift[static_cast<size_t>(i)] =
                    n.bn->beta().at(i) -
                    s * n.bn->runningMean().at(i);
            }
            break;
        }
        case compile::Op::MaxPool:
        case compile::Op::AvgPool:
            e.poolK = n.poolK;
            e.poolStride = n.poolStride;
            break;
        case compile::Op::Input:
        case compile::Op::Relu:
        case compile::Op::Flatten:
        case compile::Op::Add:
            break;
        }
        execs.push_back(std::move(e));
    }
    return execs;
}

Tensor
runGraph(const compile::Graph &g, std::vector<NodeExec> &execs,
         const Tensor &batch, ThreadPool &tp, int input_bits,
         std::vector<arch::EngineStats> &stats,
         const PhaseSink &on_phase, const uint64_t *image_ids,
         arch::EngineStats *per_image, int64_t per_image_stride)
{
    FORMS_ASSERT(stats.size() == execs.size(),
                 "runGraph: stats accumulators must parallel execs");
    FORMS_ASSERT(!per_image || image_ids,
                 "runGraph: per-image stats require image ids");

    // Reference-counted value slots, indexed by node id. The input
    // node aliases the caller's batch; every other node owns its
    // output until the last consumer (or the graph output) is done.
    struct Slot
    {
        const Tensor *ref = nullptr;
        Tensor owned;
        int remaining = 0;
    };
    std::vector<Slot> slots(static_cast<size_t>(g.capacity()));
    for (const NodeExec &e : execs)
        for (int in : e.inputs)
            ++slots[static_cast<size_t>(in)].remaining;
    ++slots[static_cast<size_t>(g.output())].remaining;

    for (size_t idx = 0; idx < execs.size(); ++idx) {
        NodeExec &e = execs[idx];
        // Wall-clock span per node; the dynamic name is only built
        // when a trace session is live, and recording touches nothing
        // the computation reads (the observer invariant).
        obs::TraceScope node_scope(
            obs::traceEnabled() ? "node " + e.name : std::string());
        Slot &out = slots[static_cast<size_t>(e.nodeId)];
        auto in = [&](size_t i) -> const Tensor & {
            return *slots[static_cast<size_t>(e.inputs[i])].ref;
        };

        switch (e.op) {
        case compile::Op::Input:
            out.ref = &batch;
            break;
        case compile::Op::Conv: {
            StageEngines se{e.replicas, {}};
            se.imageIds = image_ids;
            if (per_image)
                se.perImage =
                    per_image + static_cast<int64_t>(idx) * per_image_stride;
            if (on_phase)
                se.onPhase = [&on_phase, idx](int r,
                                              const PhaseSample &ps) {
                    on_phase(idx, r, ps);
                };
            out.owned = convStage(in(0), se, *e.mapped, e.bias,
                                  e.chanScale, e.outC, e.k, e.stride,
                                  e.pad, input_bits, e.scale, tp,
                                  &stats[idx], &e.im2colScratch);
            break;
        }
        case compile::Op::Dense: {
            StageEngines se{e.replicas, {}};
            se.imageIds = image_ids;
            if (per_image)
                se.perImage =
                    per_image + static_cast<int64_t>(idx) * per_image_stride;
            if (on_phase)
                se.onPhase = [&on_phase, idx](int r,
                                              const PhaseSample &ps) {
                    on_phase(idx, r, ps);
                };
            out.owned = denseStage(in(0), se, *e.mapped, e.bias,
                                   e.outC, input_bits, e.scale, tp,
                                   &stats[idx]);
            break;
        }
        case compile::Op::BatchNorm:
            out.owned = batchNormStage(in(0), e.bnScale, e.bnShift, tp);
            break;
        case compile::Op::Relu:
            out.owned = relu(in(0));
            break;
        case compile::Op::MaxPool:
            out.owned = maxPool2d(in(0), e.poolK, e.poolStride, nullptr);
            break;
        case compile::Op::AvgPool:
            out.owned = avgPool2d(in(0), e.poolK, e.poolStride);
            break;
        case compile::Op::Flatten: {
            const Tensor &x = in(0);
            const int64_t n = x.dim(0);
            out.owned = x.reshaped({n, x.numel() / n});
            break;
        }
        case compile::Op::Add: {
            // Join node: fixed left-then-right accumulation order, so
            // the float sums are reproducible (DESIGN.md §4). Steal
            // the left operand's buffer when this is its last use
            // instead of deep-copying a full activation tensor.
            Slot &lhs = slots[static_cast<size_t>(e.inputs[0])];
            if (lhs.remaining == 1 && lhs.ref == &lhs.owned)
                out.owned = std::move(lhs.owned);
            else
                out.owned = in(0);
            out.owned.add(in(1));
            break;
        }
        }
        if (!out.ref)
            out.ref = &out.owned;

        // Release producer buffers whose consumers are all done.
        for (int src : e.inputs) {
            Slot &p = slots[static_cast<size_t>(src)];
            if (--p.remaining == 0 && p.ref == &p.owned) {
                p.owned = Tensor();
                p.ref = nullptr;
            }
        }
    }
    return *slots[static_cast<size_t>(g.output())].ref;
}

void
recordNodeRows(const std::vector<NodeExec> &execs,
               const std::vector<arch::EngineStats> &stats,
               RuntimeReport &report)
{
    size_t programmed_idx = 0;
    for (size_t idx = 0; idx < execs.size(); ++idx) {
        const NodeExec &e = execs[idx];
        if (!e.engine)
            continue;
        recordLayer(report, programmed_idx, e.name, stats[idx],
                    e.mapped->numCrossbars(), stats[idx].presentations);
        ++programmed_idx;
    }
}

void
recordPerImageRows(const std::vector<NodeExec> &execs,
                   const arch::EngineStats *per_image, int64_t stride,
                   int64_t images, std::vector<RuntimeReport> &reports)
{
    if (reports.size() < static_cast<size_t>(images))
        reports.resize(static_cast<size_t>(images));
    for (int64_t i = 0; i < images; ++i) {
        size_t programmed_idx = 0;
        for (size_t idx = 0; idx < execs.size(); ++idx) {
            const NodeExec &e = execs[idx];
            if (!e.engine)
                continue;
            const arch::EngineStats &s =
                per_image[static_cast<int64_t>(idx) * stride + i];
            recordLayer(reports[static_cast<size_t>(i)], programmed_idx,
                        e.name, s, e.mapped->numCrossbars(),
                        s.presentations);
            ++programmed_idx;
        }
    }
}

} // namespace forms::sim
