#include "sim/experiments.hh"

namespace forms::sim {

std::string
netKindName(NetKind k)
{
    switch (k) {
      case NetKind::LeNet5: return "LeNet5";
      case NetKind::VggSmall: return "VGG (scaled)";
      case NetKind::ResNetSmall: return "ResNet18 (scaled)";
      case NetKind::ResNetDeep: return "ResNet50 (scaled)";
    }
    return "?";
}

std::unique_ptr<nn::Network>
buildNet(NetKind kind, const nn::DatasetConfig &data, Rng &rng)
{
    // Scaled stand-ins sized for CPU benching: base channel width 8
    // keeps every structural feature (stages, residual blocks, >=128-row
    // weight matrices for large fragments) at tractable cost.
    switch (kind) {
      case NetKind::LeNet5:
        return nn::buildLeNet5(rng, data.classes);
      case NetKind::VggSmall:
        return nn::buildVggSmall(rng, data.classes, 8);
      case NetKind::ResNetSmall:
        return nn::buildResNetSmall(rng, data.classes, 8);
      case NetKind::ResNetDeep:
        return nn::buildResNetDeep(rng, data.classes, 8);
    }
    return nullptr;
}

namespace {

/** Pretrain a fresh network; returns it plus its test accuracy. */
std::pair<std::unique_ptr<nn::Network>, double>
pretrain(NetKind kind, const nn::SyntheticImageDataset &data, int epochs,
         uint64_t seed)
{
    Rng rng(seed);
    auto net = buildNet(kind, data.config(), rng);
    nn::TrainConfig tc;
    tc.epochs = epochs;
    tc.seed = seed + 1;
    nn::Trainer trainer(*net, data, tc);
    auto res = trainer.run();
    return {std::move(net), res.testAccuracy};
}

admm::AdmmConfig
makeAdmmConfig(const CompressionExperimentSpec &spec, int frag)
{
    admm::AdmmConfig cfg;
    cfg.prune = spec.prune;
    cfg.polarize = spec.polarize;
    cfg.quantize = spec.quantize;
    cfg.filterKeep = spec.filterKeep;
    cfg.shapeKeep = spec.shapeKeep;
    cfg.xbarDim = spec.xbarDim;
    cfg.fragSize = frag;
    cfg.policy = spec.policy;
    cfg.quantBits = spec.quantBits;
    cfg.admmEpochsPerPhase = spec.admmEpochsPerPhase;
    cfg.finetuneEpochs = spec.finetuneEpochs;
    cfg.train.seed = spec.seed + 17;
    return cfg;
}

} // namespace

std::vector<CompressionExperimentRow>
runCompressionExperiment(const CompressionExperimentSpec &spec)
{
    nn::SyntheticImageDataset data(spec.data);
    std::vector<CompressionExperimentRow> rows;

    for (int frag : spec.fragSizes) {
        auto [net, base_acc] =
            pretrain(spec.net, data, spec.pretrainEpochs, spec.seed);

        admm::AdmmConfig cfg = makeAdmmConfig(spec, frag);
        admm::AdmmCompressor comp(*net, data, cfg);
        auto outcome = comp.run();

        auto report = admm::buildReport(
            comp, outcome,
            admm::baselineMapping32(spec.xbarDim, spec.xbarDim),
            admm::formsMapping(spec.quantBits, spec.xbarDim,
                               spec.xbarDim));

        CompressionExperimentRow row;
        row.fragSize = frag;
        row.baselineAccuracy = base_acc;
        row.accuracyDropPct = (base_acc - outcome.accuracyAfter) * 100.0;
        row.pruneRatio = report.pruneRatio;
        row.crossbarReduction = report.crossbarReduction;
        row.signViolations = outcome.signViolations;
        rows.push_back(row);
    }
    return rows;
}

std::vector<FragmentAccuracyPoint>
runFragmentAccuracySweep(NetKind net, const nn::DatasetConfig &data_cfg,
                         const std::vector<int> &frag_sizes,
                         int pretrain_epochs, uint64_t seed)
{
    nn::SyntheticImageDataset data(data_cfg);
    std::vector<FragmentAccuracyPoint> points;
    for (int frag : frag_sizes) {
        auto [network, base_acc] =
            pretrain(net, data, pretrain_epochs, seed);
        (void)base_acc;

        admm::AdmmConfig cfg;
        cfg.prune = false;
        cfg.quantize = false;
        cfg.polarize = true;
        cfg.fragSize = frag;
        cfg.admmEpochsPerPhase = 2;
        cfg.finetuneEpochs = 2;
        cfg.train.seed = seed + 17;
        admm::AdmmCompressor comp(*network, data, cfg);
        auto outcome = comp.run();

        points.push_back({frag, outcome.accuracyAfter});
    }
    return points;
}

std::vector<VariationRow>
runVariationExperiment(NetKind net, const nn::DatasetConfig &data_cfg,
                       const VariationStudyConfig &vcfg,
                       double filter_keep, double shape_keep,
                       int pretrain_epochs, uint64_t seed)
{
    nn::SyntheticImageDataset data(data_cfg);
    std::vector<VariationRow> rows;

    struct Variant
    {
        const char *label;
        bool prune, polarize, quantize;
    };
    const Variant variants[4] = {
        {"Original Model", false, false, false},
        {"Polarization Only", false, true, false},
        {"Pruning Only", true, false, false},
        {"Full Optimization", true, true, true},
    };

    for (const auto &v : variants) {
        auto [network, base_acc] =
            pretrain(net, data, pretrain_epochs, seed);
        (void)base_acc;

        if (v.prune || v.polarize || v.quantize) {
            admm::AdmmConfig cfg;
            cfg.prune = v.prune;
            cfg.polarize = v.polarize;
            cfg.quantize = v.quantize;
            cfg.filterKeep = filter_keep;
            cfg.shapeKeep = shape_keep;
            cfg.xbarDim = 16;
            cfg.fragSize = 8;
            cfg.admmEpochsPerPhase = 2;
            cfg.finetuneEpochs = 2;
            cfg.train.seed = seed + 17;
            admm::AdmmCompressor comp(*network, data, cfg);
            comp.run();
        }
        auto res = runVariationStudy(*network, data, vcfg);
        rows.push_back({v.label, res.degradationPct()});
    }
    return rows;
}

} // namespace forms::sim
