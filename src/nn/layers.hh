/**
 * @file
 * Concrete layers of the DNN substrate: Conv2D, Dense, ReLU, BatchNorm,
 * pooling, Flatten, and a Residual composite block (basic-block style)
 * sufficient to express LeNet/VGG/ResNet-family networks.
 */

#ifndef FORMS_NN_LAYERS_HH
#define FORMS_NN_LAYERS_HH

#include "nn/layer.hh"
#include "tensor/ops.hh"

namespace forms::nn {

/** 2-d convolution (NCHW, square kernel) with optional bias. */
class Conv2D : public Layer
{
  public:
    /**
     * @param name layer name
     * @param in_c input channels
     * @param out_c output channels (filters)
     * @param k square kernel extent
     * @param stride stride
     * @param pad symmetric zero padding
     * @param rng weight initializer source (He initialization)
     */
    Conv2D(std::string name, int in_c, int out_c, int k, int stride,
           int pad, Rng &rng);

    Tensor forward(const Tensor &input, bool train) override;
    Tensor backward(const Tensor &grad_out) override;
    std::vector<ParamRef> params() override;

    /** Filter bank, shape (out_c, in_c, k, k). */
    Tensor &weight() { return weight_; }
    const Tensor &weight() const { return weight_; }

    /** Bias vector, shape (out_c). */
    Tensor &bias() { return bias_; }
    const Tensor &bias() const { return bias_; }

    int inChannels() const { return inC_; }
    int outChannels() const { return outC_; }
    int kernel() const { return k_; }
    int stride() const { return stride_; }
    int pad() const { return pad_; }

  private:
    int inC_, outC_, k_, stride_, pad_;
    Tensor weight_, bias_;
    Tensor gradWeight_, gradBias_;
    Tensor cachedCols_;     //!< im2col of the last forward input
    Shape cachedInShape_;
    int64_t cachedBatch_ = 0;
};

/** Fully connected layer: y = x W^T + b, weight shape (out, in). */
class Dense : public Layer
{
  public:
    Dense(std::string name, int in_dim, int out_dim, Rng &rng);

    Tensor forward(const Tensor &input, bool train) override;
    Tensor backward(const Tensor &grad_out) override;
    std::vector<ParamRef> params() override;

    /** Weight matrix, shape (out_dim, in_dim). */
    Tensor &weight() { return weight_; }
    const Tensor &weight() const { return weight_; }

    /** Bias vector, shape (out_dim). */
    Tensor &bias() { return bias_; }
    const Tensor &bias() const { return bias_; }

    int inDim() const { return inDim_; }
    int outDim() const { return outDim_; }

  private:
    int inDim_, outDim_;
    Tensor weight_, bias_;
    Tensor gradWeight_, gradBias_;
    Tensor cachedIn_;
};

/** Elementwise rectified linear unit. */
class ReLU : public Layer
{
  public:
    explicit ReLU(std::string name) : Layer(std::move(name)) {}
    Tensor forward(const Tensor &input, bool train) override;
    Tensor backward(const Tensor &grad_out) override;

  private:
    Tensor cachedIn_;
};

/** 2-d max pooling (square window, no padding). */
class MaxPool2D : public Layer
{
  public:
    MaxPool2D(std::string name, int k, int stride)
        : Layer(std::move(name)), k_(k), stride_(stride) {}
    Tensor forward(const Tensor &input, bool train) override;
    Tensor backward(const Tensor &grad_out) override;

    int kernel() const { return k_; }
    int stride() const { return stride_; }

  private:
    int k_, stride_;
    Tensor argmax_;
    Shape cachedInShape_;
};

/** 2-d average pooling (square window, no padding). */
class AvgPool2D : public Layer
{
  public:
    AvgPool2D(std::string name, int k, int stride)
        : Layer(std::move(name)), k_(k), stride_(stride) {}
    Tensor forward(const Tensor &input, bool train) override;
    Tensor backward(const Tensor &grad_out) override;

    int kernel() const { return k_; }
    int stride() const { return stride_; }

  private:
    int k_, stride_;
    Shape cachedInShape_;
};

/** Collapse NCHW to (N, C*H*W). */
class Flatten : public Layer
{
  public:
    explicit Flatten(std::string name) : Layer(std::move(name)) {}
    Tensor forward(const Tensor &input, bool train) override;
    Tensor backward(const Tensor &grad_out) override;

  private:
    Shape cachedInShape_;
};

/**
 * Per-channel batch normalization over NCHW batches with learned scale
 * and shift. Keeps running statistics for evaluation mode.
 */
class BatchNorm2D : public Layer
{
  public:
    BatchNorm2D(std::string name, int channels, float momentum = 0.1f,
                float eps = 1e-5f);

    Tensor forward(const Tensor &input, bool train) override;
    Tensor backward(const Tensor &grad_out) override;
    std::vector<ParamRef> params() override;

    // Introspection hooks for compiler passes (compile/passes.hh):
    // BN folding reads the affine parameters and running statistics
    // and rewrites them in place.
    Tensor &gamma() { return gamma_; }
    const Tensor &gamma() const { return gamma_; }
    Tensor &beta() { return beta_; }
    const Tensor &beta() const { return beta_; }
    Tensor &runningMean() { return runMean_; }
    const Tensor &runningMean() const { return runMean_; }
    Tensor &runningVar() { return runVar_; }
    const Tensor &runningVar() const { return runVar_; }
    float eps() const { return eps_; }
    int channels() const { return channels_; }

  private:
    int channels_;
    float momentum_, eps_;
    Tensor gamma_, beta_, gradGamma_, gradBeta_;
    Tensor runMean_, runVar_;
    // backward caches
    Tensor cachedXhat_;
    Tensor cachedInvStd_;   //!< per channel
    Shape cachedInShape_;
};

/**
 * Residual basic block: out = ReLU(F(x) + shortcut(x)) where F is
 * conv-bn-relu-conv-bn and the shortcut is identity or a strided 1x1
 * conv + bn projection when shape changes (ResNet-style).
 */
class ResidualBlock : public Layer
{
  public:
    ResidualBlock(std::string name, int in_c, int out_c, int stride,
                  Rng &rng);

    Tensor forward(const Tensor &input, bool train) override;
    Tensor backward(const Tensor &grad_out) override;
    std::vector<ParamRef> params() override;

    // Introspection hooks so compile::lowerNetwork can flatten the
    // block into explicit graph nodes (the unique_ptrs stay owned by
    // the block; callers get mutable Layer access through them).
    const std::vector<LayerPtr> &mainPath() const { return main_; }
    const std::vector<LayerPtr> &shortcutPath() const { return shortcut_; }

  private:
    std::vector<LayerPtr> main_;       //!< conv1 bn1 relu conv2 bn2
    std::vector<LayerPtr> shortcut_;   //!< empty for identity
    Tensor cachedSum_;                 //!< pre-activation sum (for ReLU grad)
};

} // namespace forms::nn

#endif // FORMS_NN_LAYERS_HH
