#include "nn/network.hh"

#include <cmath>

#include "tensor/ops.hh"

namespace forms::nn {

void
Network::add(LayerPtr layer)
{
    layers_.push_back(std::move(layer));
}

Tensor
Network::forward(const Tensor &input, bool train)
{
    Tensor x = input;
    for (auto &l : layers_)
        x = l->forward(x, train);
    return x;
}

double
Network::crossEntropy(const Tensor &logits, const std::vector<int> &labels,
                      Tensor *grad)
{
    FORMS_ASSERT(logits.rank() == 2, "crossEntropy expects rank-2 logits");
    const int64_t n = logits.dim(0);
    const int64_t k = logits.dim(1);
    FORMS_ASSERT(static_cast<int64_t>(labels.size()) == n,
                 "label count mismatch");

    Tensor probs = softmaxRows(logits);
    double loss = 0.0;
    for (int64_t i = 0; i < n; ++i) {
        const int y = labels[static_cast<size_t>(i)];
        FORMS_ASSERT(y >= 0 && y < k, "label out of range");
        loss += -std::log(std::max(probs.at(i, y), 1e-12f));
    }
    loss /= static_cast<double>(n);

    if (grad) {
        *grad = probs;
        const float inv_n = 1.0f / static_cast<float>(n);
        for (int64_t i = 0; i < n; ++i) {
            grad->at(i, labels[static_cast<size_t>(i)]) -= 1.0f;
            for (int64_t j = 0; j < k; ++j)
                grad->at(i, j) *= inv_n;
        }
    }
    return loss;
}

void
Network::backward(const Tensor &grad_logits)
{
    Tensor g = grad_logits;
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
        g = (*it)->backward(g);
}

std::vector<ParamRef>
Network::params()
{
    std::vector<ParamRef> out;
    for (auto &l : layers_)
        for (auto &p : l->params())
            out.push_back(p);
    return out;
}

void
Network::zeroGrads()
{
    for (auto &p : params())
        p.grad->fill(0.0f);
}

double
Network::accuracy(const Tensor &inputs, const std::vector<int> &labels)
{
    Tensor logits = forward(inputs, false);
    const int64_t n = logits.dim(0);
    const int64_t k = logits.dim(1);
    int64_t correct = 0;
    for (int64_t i = 0; i < n; ++i) {
        int best = 0;
        for (int64_t j = 1; j < k; ++j)
            if (logits.at(i, j) > logits.at(i, best))
                best = static_cast<int>(j);
        if (best == labels[static_cast<size_t>(i)])
            ++correct;
    }
    return static_cast<double>(correct) / static_cast<double>(n);
}

} // namespace forms::nn
