#include "nn/zoo.hh"

#include "nn/layers.hh"

namespace forms::nn {

std::unique_ptr<Network>
buildLeNet5(Rng &rng, int classes)
{
    auto net = std::make_unique<Network>();
    net->emplace<Conv2D>("conv1", 1, 6, 5, 1, 2, rng);
    net->emplace<ReLU>("relu1");
    net->emplace<MaxPool2D>("pool1", 2, 2);
    net->emplace<Conv2D>("conv2", 6, 16, 5, 1, 0, rng);
    net->emplace<ReLU>("relu2");
    net->emplace<MaxPool2D>("pool2", 2, 2);
    net->emplace<Flatten>("flat");
    net->emplace<Dense>("fc1", 16 * 5 * 5, 120, rng);
    net->emplace<ReLU>("relu3");
    net->emplace<Dense>("fc2", 120, 84, rng);
    net->emplace<ReLU>("relu4");
    net->emplace<Dense>("fc3", 84, classes, rng);
    return net;
}

std::unique_ptr<Network>
buildVggSmall(Rng &rng, int classes, int base)
{
    auto net = std::make_unique<Network>();
    const int c1 = base, c2 = 2 * base, c3 = 4 * base;
    net->emplace<Conv2D>("conv1_1", 3, c1, 3, 1, 1, rng);
    net->emplace<BatchNorm2D>("bn1_1", c1);
    net->emplace<ReLU>("relu1_1");
    net->emplace<Conv2D>("conv1_2", c1, c1, 3, 1, 1, rng);
    net->emplace<BatchNorm2D>("bn1_2", c1);
    net->emplace<ReLU>("relu1_2");
    net->emplace<MaxPool2D>("pool1", 2, 2);

    net->emplace<Conv2D>("conv2_1", c1, c2, 3, 1, 1, rng);
    net->emplace<BatchNorm2D>("bn2_1", c2);
    net->emplace<ReLU>("relu2_1");
    net->emplace<Conv2D>("conv2_2", c2, c2, 3, 1, 1, rng);
    net->emplace<BatchNorm2D>("bn2_2", c2);
    net->emplace<ReLU>("relu2_2");
    net->emplace<MaxPool2D>("pool2", 2, 2);

    net->emplace<Conv2D>("conv3_1", c2, c3, 3, 1, 1, rng);
    net->emplace<BatchNorm2D>("bn3_1", c3);
    net->emplace<ReLU>("relu3_1");
    net->emplace<Conv2D>("conv3_2", c3, c3, 3, 1, 1, rng);
    net->emplace<BatchNorm2D>("bn3_2", c3);
    net->emplace<ReLU>("relu3_2");
    net->emplace<MaxPool2D>("pool3", 2, 2);

    net->emplace<Flatten>("flat");
    net->emplace<Dense>("fc1", c3 * 4 * 4, 128, rng);
    net->emplace<ReLU>("relu_fc1");
    net->emplace<Dense>("fc2", 128, classes, rng);
    return net;
}

std::unique_ptr<Network>
buildResNetSmall(Rng &rng, int classes, int base, int blocks_per_stage)
{
    auto net = std::make_unique<Network>();
    net->emplace<Conv2D>("stem", 3, base, 3, 1, 1, rng);
    net->emplace<BatchNorm2D>("stem_bn", base);
    net->emplace<ReLU>("stem_relu");

    int in_c = base;
    const int stage_c[3] = {base, 2 * base, 4 * base};
    for (int stage = 0; stage < 3; ++stage) {
        for (int b = 0; b < blocks_per_stage; ++b) {
            const int stride = (stage > 0 && b == 0) ? 2 : 1;
            net->emplace<ResidualBlock>(
                strfmt("s%d_b%d", stage, b), in_c, stage_c[stage],
                stride, rng);
            in_c = stage_c[stage];
        }
    }
    net->emplace<AvgPool2D>("gap", 8, 8);
    net->emplace<Flatten>("flat");
    net->emplace<Dense>("fc", in_c, classes, rng);
    return net;
}

std::unique_ptr<Network>
buildResNetDeep(Rng &rng, int classes, int base)
{
    return buildResNetSmall(rng, classes, base, 3);
}

std::unique_ptr<Network>
buildTinyConvNet(Rng &rng, int classes, int channels, int in_c, int in_hw)
{
    auto net = std::make_unique<Network>();
    net->emplace<Conv2D>("conv1", in_c, channels, 3, 1, 1, rng);
    net->emplace<ReLU>("relu1");
    net->emplace<MaxPool2D>("pool1", 2, 2);
    net->emplace<Conv2D>("conv2", channels, 2 * channels, 3, 1, 1, rng);
    net->emplace<ReLU>("relu2");
    net->emplace<MaxPool2D>("pool2", 2, 2);
    net->emplace<Flatten>("flat");
    const int hw = in_hw / 4;
    net->emplace<Dense>("fc", 2 * channels * hw * hw, classes, rng);
    return net;
}

} // namespace forms::nn
