/**
 * @file
 * Layer interface for the DNN substrate. Layers own their parameters
 * and gradients; the trainer and the ADMM framework access them through
 * ParamRef handles so regularization terms can be injected uniformly.
 */

#ifndef FORMS_NN_LAYER_HH
#define FORMS_NN_LAYER_HH

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hh"

namespace forms::nn {

/** Handle to one trainable parameter tensor and its gradient. */
struct ParamRef
{
    std::string name;     //!< qualified name, e.g. "conv1.weight"
    Tensor *value;        //!< parameter storage (owned by the layer)
    Tensor *grad;         //!< gradient accumulator (same shape)
    bool isConvWeight;    //!< true for conv filter banks (prunable)
    bool isDenseWeight;   //!< true for dense weight matrices (prunable)
};

/**
 * Abstract differentiable layer.
 *
 * forward() may cache activations needed by backward(); backward()
 * consumes the gradient w.r.t. the layer output and returns the
 * gradient w.r.t. the layer input while accumulating parameter
 * gradients.
 */
class Layer
{
  public:
    explicit Layer(std::string name) : name_(std::move(name)) {}
    virtual ~Layer() = default;

    /** Layer instance name (unique within a network). */
    const std::string &name() const { return name_; }

    /** Run the layer on a batch; `train` enables training-only caching. */
    virtual Tensor forward(const Tensor &input, bool train) = 0;

    /** Backpropagate; returns gradient w.r.t. the layer input. */
    virtual Tensor backward(const Tensor &grad_out) = 0;

    /** Expose trainable parameters (default: none). */
    virtual std::vector<ParamRef> params() { return {}; }

    /** Zero all parameter gradients. */
    void
    zeroGrads()
    {
        for (auto &p : params())
            p.grad->fill(0.0f);
    }

  private:
    std::string name_;
};

using LayerPtr = std::unique_ptr<Layer>;

} // namespace forms::nn

#endif // FORMS_NN_LAYER_HH
