/**
 * @file
 * Plain-text serialization of network parameters and compression
 * metadata — enough for the deployment flow the paper implies: train
 * and compress once, then hand the polarized/quantized model to the
 * accelerator mapper in a later process.
 *
 * Format (line-oriented, locale-independent):
 *   forms-model v1
 *   param <name> <numel> <d0> <d1> ...
 *   <numel> space-separated float values (hex float for exactness)
 *   ...
 *   end
 */

#ifndef FORMS_NN_SERIALIZE_HH
#define FORMS_NN_SERIALIZE_HH

#include <iosfwd>
#include <string>

#include "nn/network.hh"

namespace forms::nn {

/** Serialize all parameters of a network to a stream. */
void saveParameters(Network &net, std::ostream &os);

/** Serialize to a file; fatal() on I/O failure. */
void saveParameters(Network &net, const std::string &path);

/**
 * Load parameters into a structurally identical network (same layer
 * names, shapes and order). fatal() on mismatch or parse error.
 */
void loadParameters(Network &net, std::istream &is);

/** Load from a file; fatal() on I/O failure. */
void loadParameters(Network &net, const std::string &path);

// Shared scalar encoding of the forms-* file formats (model
// parameters here, calibration tables in compile/calibration.hh):
// hex floats round-trip bit-exactly and are locale-independent.

/** Encode one value as a hex-float token. */
std::string encodeFloat(float v);

/** Parse a hex-float (or decimal) token; fatal() on garbage. */
float parseFloat(const std::string &token, const char *what);

} // namespace forms::nn

#endif // FORMS_NN_SERIALIZE_HH
