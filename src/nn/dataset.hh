/**
 * @file
 * Synthetic, deterministic image-classification datasets.
 *
 * MNIST / CIFAR-10/100 / ImageNet are not available offline, so all
 * accuracy experiments run on class-prototype datasets with matched
 * input geometry: each class owns a smoothed random prototype image and
 * samples are noisy scaled copies. Task difficulty is controlled by the
 * noise level and the number of classes, which is sufficient because
 * every paper experiment we reproduce measures *relative* accuracy
 * changes (vs. fragment size, pruning, quantization, variation), not
 * absolute ImageNet accuracy. See DESIGN.md §2.
 */

#ifndef FORMS_NN_DATASET_HH
#define FORMS_NN_DATASET_HH

#include <vector>

#include "tensor/tensor.hh"

namespace forms::nn {

/** A labelled split: NCHW images plus integer labels. */
struct Split
{
    Tensor images;            //!< (n, c, h, w)
    std::vector<int> labels;  //!< size n

    /** Number of examples. */
    int64_t size() const { return images.rank() ? images.dim(0) : 0; }
};

/** Configuration of a synthetic dataset. */
struct DatasetConfig
{
    int classes = 10;      //!< number of classes
    int channels = 3;      //!< image channels
    int height = 32;       //!< image height
    int width = 32;        //!< image width
    int trainPerClass = 64;
    int testPerClass = 16;
    float noise = 0.55f;   //!< additive Gaussian sample noise
    float scaleJitter = 0.25f;  //!< multiplicative prototype jitter
    uint64_t seed = 1;

    /**
     * Clamp sample pixels at zero, like real (unsigned) image sensor
     * data. The crossbar runtimes encode first-layer inputs with an
     * unsigned bit-serial DAC (DESIGN.md §2), so training on the
     * unsigned domain makes that encoding exact end to end; the
     * default zero-mean samples exercise the signed FP path.
     */
    bool nonneg = false;

    /** MNIST-like geometry (1x28x28, 10 classes). */
    static DatasetConfig mnistLike(uint64_t seed = 1);
    /** CIFAR-10-like geometry (3x32x32, 10 classes). */
    static DatasetConfig cifar10Like(uint64_t seed = 2);
    /** CIFAR-100-like geometry (3x32x32, more classes => harder). */
    static DatasetConfig cifar100Like(uint64_t seed = 3);
    /** ImageNet-like geometry (3x64x64 downscaled, many classes). */
    static DatasetConfig imagenetLike(uint64_t seed = 4);
};

/**
 * Class-prototype dataset. Prototypes are Gaussian images passed through
 * a separable box smoothing so they contain spatial structure that conv
 * layers can exploit; samples are alpha * prototype + noise.
 */
class SyntheticImageDataset
{
  public:
    explicit SyntheticImageDataset(const DatasetConfig &cfg);

    const Split &train() const { return train_; }
    const Split &test() const { return test_; }
    const DatasetConfig &config() const { return cfg_; }

    /**
     * Copy a mini-batch [begin, begin+count) from the training split
     * under the given shuffled index order.
     */
    Split batch(const std::vector<int> &order, int begin, int count) const;

    /** Identity permutation of training indices (to be shuffled). */
    std::vector<int> trainOrder() const;

  private:
    DatasetConfig cfg_;
    Split train_, test_;

    Split makeSplit(int per_class, Rng &rng,
                    const std::vector<Tensor> &protos) const;
};

/** Fisher-Yates shuffle with the library Rng. */
void shuffle(std::vector<int> &order, Rng &rng);

} // namespace forms::nn

#endif // FORMS_NN_DATASET_HH
