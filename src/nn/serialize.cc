#include "nn/serialize.hh"

#include <cinttypes>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/logging.hh"

namespace forms::nn {

namespace {

constexpr const char *kMagic = "forms-model v1";

} // namespace

std::string
encodeFloat(float v)
{
    return strfmt("%a", static_cast<double>(v));
}

float
parseFloat(const std::string &token, const char *what)
{
    char *endp = nullptr;
    const double v = std::strtod(token.c_str(), &endp);
    if (endp == token.c_str())
        fatal("bad value '%s' in %s", token.c_str(), what);
    return static_cast<float>(v);
}

void
saveParameters(Network &net, std::ostream &os)
{
    os << kMagic << "\n";
    for (auto &p : net.params()) {
        os << "param " << p.name << " " << p.value->numel();
        for (int64_t d : p.value->shape())
            os << " " << d;
        os << "\n";
        const float *data = p.value->data();
        for (int64_t i = 0; i < p.value->numel(); ++i) {
            os << encodeFloat(data[i]);
            os << (i + 1 == p.value->numel() ? '\n' : ' ');
        }
    }
    os << "end\n";
    FORMS_ASSERT(os.good(), "stream failure while saving model");
}

void
saveParameters(Network &net, const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot open '%s' for writing", path.c_str());
    saveParameters(net, os);
}

void
loadParameters(Network &net, std::istream &is)
{
    std::string line;
    if (!std::getline(is, line) || line != kMagic)
        fatal("bad model header (expected '%s')", kMagic);

    auto params = net.params();
    size_t next = 0;
    while (std::getline(is, line)) {
        if (line == "end")
            break;
        std::istringstream hdr(line);
        std::string tag, name;
        int64_t numel = 0;
        hdr >> tag >> name >> numel;
        if (tag != "param" || !hdr)
            fatal("bad parameter header: '%s'", line.c_str());
        if (next >= params.size())
            fatal("model file has more parameters than the network");
        ParamRef &p = params[next++];
        if (p.name != name) {
            fatal("parameter order mismatch: file has '%s', network "
                  "expects '%s'", name.c_str(), p.name.c_str());
        }
        if (p.value->numel() != numel) {
            fatal("parameter '%s' size mismatch: file %" PRId64
                  ", network %" PRId64, name.c_str(), numel,
                  p.value->numel());
        }
        Shape shape;
        int64_t d;
        while (hdr >> d)
            shape.push_back(d);
        if (!shape.empty() && shape != p.value->shape())
            fatal("parameter '%s' shape mismatch", name.c_str());

        float *data = p.value->data();
        std::string tok;
        for (int64_t i = 0; i < numel; ++i) {
            // Hex-float tokens are parsed with strtod (parseFloat):
            // istream's num_get does not reliably accept the %a format.
            if (!(is >> tok))
                fatal("truncated values for parameter '%s'",
                      name.c_str());
            data[i] = parseFloat(tok, name.c_str());
        }
        // Consume the trailing newline of the value block.
        is.ignore(std::numeric_limits<std::streamsize>::max(), '\n');
    }
    if (next != params.size())
        fatal("model file has fewer parameters than the network "
              "(%zu of %zu)", next, params.size());
}

void
loadParameters(Network &net, const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        fatal("cannot open '%s' for reading", path.c_str());
    loadParameters(net, is);
}

} // namespace forms::nn
