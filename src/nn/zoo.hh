/**
 * @file
 * Model zoo: CPU-trainable, scaled-down stand-ins for the paper's
 * benchmark networks (LeNet-5, VGG-16, ResNet-18/50). The scaled
 * variants keep the structural features that matter to FORMS — conv
 * stacks, residual blocks, and weight matrices with at least 128 rows in
 * the 2-d crossbar format so fragment sizes up to 128 are exercised —
 * while remaining trainable in seconds. Full-size layer dimension specs
 * used by the performance model live in sim/workloads.hh.
 */

#ifndef FORMS_NN_ZOO_HH
#define FORMS_NN_ZOO_HH

#include <memory>

#include "nn/network.hh"

namespace forms::nn {

/** Classic LeNet-5 for 1x28x28 inputs (full size; small already). */
std::unique_ptr<Network> buildLeNet5(Rng &rng, int classes = 10);

/**
 * VGG-style conv stack for 3x32x32 inputs. `base` is the first stage's
 * channel count (VGG-16 uses 64; the scaled default is 16).
 */
std::unique_ptr<Network> buildVggSmall(Rng &rng, int classes = 10,
                                       int base = 16);

/**
 * ResNet-18-style network for 3x32x32 inputs: stem conv, three residual
 * stages (2 blocks each in the scaled default), avg-pool, classifier.
 */
std::unique_ptr<Network> buildResNetSmall(Rng &rng, int classes = 10,
                                          int base = 16,
                                          int blocks_per_stage = 2);

/**
 * Deeper ResNet-50-style stand-in: same topology family with three
 * blocks per stage.
 */
std::unique_ptr<Network> buildResNetDeep(Rng &rng, int classes = 10,
                                         int base = 16);

/** A tiny 2-conv network for fast unit tests. */
std::unique_ptr<Network> buildTinyConvNet(Rng &rng, int classes = 4,
                                          int channels = 8,
                                          int in_c = 1, int in_hw = 12);

} // namespace forms::nn

#endif // FORMS_NN_ZOO_HH
