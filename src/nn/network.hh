/**
 * @file
 * Sequential network container with softmax cross-entropy loss head,
 * plus accuracy evaluation. Residual topologies are expressed through
 * the ResidualBlock composite layer.
 */

#ifndef FORMS_NN_NETWORK_HH
#define FORMS_NN_NETWORK_HH

#include <memory>
#include <vector>

#include "nn/layer.hh"

namespace forms::nn {

/** A stack of layers trained with softmax cross-entropy. */
class Network
{
  public:
    Network() = default;

    /** Append a layer (takes ownership). */
    void add(LayerPtr layer);

    /** Emplace-construct a layer of type L and return a reference. */
    template <typename L, typename... Args>
    L &
    emplace(Args &&...args)
    {
        auto layer = std::make_unique<L>(std::forward<Args>(args)...);
        L &ref = *layer;
        add(std::move(layer));
        return ref;
    }

    /** Forward pass through all layers; returns logits. */
    Tensor forward(const Tensor &input, bool train = false);

    /**
     * Compute mean softmax cross-entropy of `logits` against integer
     * `labels` and, when `grad` is non-null, the gradient w.r.t. logits.
     */
    static double crossEntropy(const Tensor &logits,
                               const std::vector<int> &labels,
                               Tensor *grad);

    /** Backward pass from a logits gradient (after forward(train)). */
    void backward(const Tensor &grad_logits);

    /** Gather all trainable parameters across layers. */
    std::vector<ParamRef> params();

    /** Zero all gradients. */
    void zeroGrads();

    /** Fraction of argmax(logits) == label over a labelled batch. */
    double accuracy(const Tensor &inputs, const std::vector<int> &labels);

    /** Number of layers. */
    size_t size() const { return layers_.size(); }

    /** Access a layer by index. */
    Layer &layer(size_t i) { return *layers_[i]; }

  private:
    std::vector<LayerPtr> layers_;
};

} // namespace forms::nn

#endif // FORMS_NN_NETWORK_HH
