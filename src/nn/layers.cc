#include "nn/layers.hh"

#include <cmath>

namespace forms::nn {

// ---------------------------------------------------------------- Conv2D

Conv2D::Conv2D(std::string name, int in_c, int out_c, int k, int stride,
               int pad, Rng &rng)
    : Layer(std::move(name)), inC_(in_c), outC_(out_c), k_(k),
      stride_(stride), pad_(pad),
      weight_({out_c, in_c, k, k}),
      bias_({out_c}),
      gradWeight_({out_c, in_c, k, k}),
      gradBias_({out_c})
{
    // He initialization: std = sqrt(2 / fan_in).
    const float std = std::sqrt(2.0f / static_cast<float>(in_c * k * k));
    weight_.fillGaussian(rng, 0.0f, std);
}

Tensor
Conv2D::forward(const Tensor &input, bool train)
{
    FORMS_ASSERT(input.rank() == 4 && input.dim(1) == inC_,
                 "conv '%s' input mismatch", name().c_str());
    const int64_t n = input.dim(0);
    const int h = static_cast<int>(input.dim(2));
    const int w = static_cast<int>(input.dim(3));
    const int oh = convOutDim(h, k_, stride_, pad_);
    const int ow = convOutDim(w, k_, stride_, pad_);

    Tensor cols = im2col(input, k_, k_, stride_, pad_);
    Tensor wmat = weight_.reshaped({outC_, inC_ * k_ * k_});
    Tensor prod = matmul(wmat, cols);   // (outC, n*oh*ow)

    Tensor out({n, outC_, oh, ow});
    const int64_t spatial = static_cast<int64_t>(oh) * ow;
    for (int64_t img = 0; img < n; ++img)
        for (int64_t f = 0; f < outC_; ++f) {
            const float b = bias_.at(f);
            for (int64_t s = 0; s < spatial; ++s)
                out.data()[(img * outC_ + f) * spatial + s] =
                    prod.data()[f * (n * spatial) + img * spatial + s] + b;
        }

    if (train) {
        cachedCols_ = std::move(cols);
        cachedInShape_ = input.shape();
        cachedBatch_ = n;
    }
    return out;
}

Tensor
Conv2D::backward(const Tensor &grad_out)
{
    FORMS_ASSERT(cachedBatch_ > 0, "conv backward before forward");
    const int64_t n = grad_out.dim(0);
    const int64_t oh = grad_out.dim(2), ow = grad_out.dim(3);
    const int64_t spatial = oh * ow;

    // Reorder grad_out (n, f, s) into (f, n*s) to match im2col layout.
    Tensor gmat({outC_, n * spatial});
    for (int64_t img = 0; img < n; ++img)
        for (int64_t f = 0; f < outC_; ++f)
            for (int64_t s = 0; s < spatial; ++s)
                gmat.data()[f * (n * spatial) + img * spatial + s] =
                    grad_out.data()[(img * outC_ + f) * spatial + s];

    // dW = gmat * cols^T ; shape (outC, inC*k*k)
    Tensor cols_t = transpose(cachedCols_);
    Tensor dw = matmul(gmat, cols_t);
    gradWeight_.add(dw.reshaped(gradWeight_.shape()));

    // db = row sums of gmat
    for (int64_t f = 0; f < outC_; ++f) {
        double acc = 0.0;
        for (int64_t s = 0; s < n * spatial; ++s)
            acc += gmat.data()[f * (n * spatial) + s];
        gradBias_.at(f) += static_cast<float>(acc);
    }

    // dX = W^T * gmat scattered through col2im.
    Tensor wmat = weight_.reshaped({outC_, inC_ * k_ * k_});
    Tensor dcols = matmulTransposeA(wmat, gmat);
    return col2im(dcols, cachedInShape_, k_, k_, stride_, pad_);
}

std::vector<ParamRef>
Conv2D::params()
{
    return {
        {name() + ".weight", &weight_, &gradWeight_, true, false},
        {name() + ".bias", &bias_, &gradBias_, false, false},
    };
}

// ----------------------------------------------------------------- Dense

Dense::Dense(std::string name, int in_dim, int out_dim, Rng &rng)
    : Layer(std::move(name)), inDim_(in_dim), outDim_(out_dim),
      weight_({out_dim, in_dim}), bias_({out_dim}),
      gradWeight_({out_dim, in_dim}), gradBias_({out_dim})
{
    const float std = std::sqrt(2.0f / static_cast<float>(in_dim));
    weight_.fillGaussian(rng, 0.0f, std);
}

Tensor
Dense::forward(const Tensor &input, bool train)
{
    FORMS_ASSERT(input.rank() == 2 && input.dim(1) == inDim_,
                 "dense '%s' input mismatch", name().c_str());
    Tensor out = matmulTransposeB(input, weight_);  // (n, out)
    for (int64_t i = 0; i < out.dim(0); ++i)
        for (int64_t j = 0; j < outDim_; ++j)
            out.at(i, j) += bias_.at(j);
    if (train)
        cachedIn_ = input;
    return out;
}

Tensor
Dense::backward(const Tensor &grad_out)
{
    // dW = grad_out^T * x ; dX = grad_out * W ; db = column sums.
    Tensor dw = matmulTransposeA(grad_out, cachedIn_);
    gradWeight_.add(dw);
    for (int64_t j = 0; j < outDim_; ++j) {
        double acc = 0.0;
        for (int64_t i = 0; i < grad_out.dim(0); ++i)
            acc += grad_out.at(i, j);
        gradBias_.at(j) += static_cast<float>(acc);
    }
    return matmul(grad_out, weight_);
}

std::vector<ParamRef>
Dense::params()
{
    return {
        {name() + ".weight", &weight_, &gradWeight_, false, true},
        {name() + ".bias", &bias_, &gradBias_, false, false},
    };
}

// ------------------------------------------------------------------ ReLU

Tensor
ReLU::forward(const Tensor &input, bool train)
{
    if (train)
        cachedIn_ = input;
    return relu(input);
}

Tensor
ReLU::backward(const Tensor &grad_out)
{
    return reluGrad(cachedIn_, grad_out);
}

// ------------------------------------------------------------- MaxPool2D

Tensor
MaxPool2D::forward(const Tensor &input, bool train)
{
    cachedInShape_ = input.shape();
    return maxPool2d(input, k_, stride_, train ? &argmax_ : nullptr);
}

Tensor
MaxPool2D::backward(const Tensor &grad_out)
{
    return maxPool2dBackward(grad_out, argmax_, cachedInShape_);
}

// ------------------------------------------------------------- AvgPool2D

Tensor
AvgPool2D::forward(const Tensor &input, bool)
{
    cachedInShape_ = input.shape();
    return avgPool2d(input, k_, stride_);
}

Tensor
AvgPool2D::backward(const Tensor &grad_out)
{
    return avgPool2dBackward(grad_out, cachedInShape_, k_, stride_);
}

// --------------------------------------------------------------- Flatten

Tensor
Flatten::forward(const Tensor &input, bool)
{
    cachedInShape_ = input.shape();
    const int64_t n = input.dim(0);
    return input.reshaped({n, input.numel() / n});
}

Tensor
Flatten::backward(const Tensor &grad_out)
{
    return grad_out.reshaped(cachedInShape_);
}

// ----------------------------------------------------------- BatchNorm2D

BatchNorm2D::BatchNorm2D(std::string name, int channels, float momentum,
                         float eps)
    : Layer(std::move(name)), channels_(channels), momentum_(momentum),
      eps_(eps),
      gamma_({channels}, 1.0f), beta_({channels}),
      gradGamma_({channels}), gradBeta_({channels}),
      runMean_({channels}), runVar_({channels}, 1.0f)
{
}

Tensor
BatchNorm2D::forward(const Tensor &input, bool train)
{
    FORMS_ASSERT(input.rank() == 4 && input.dim(1) == channels_,
                 "batchnorm '%s' input mismatch", name().c_str());
    const int64_t n = input.dim(0);
    const int64_t h = input.dim(2), w = input.dim(3);
    const int64_t per_chan = n * h * w;

    Tensor out(input.shape());
    if (train) {
        cachedXhat_ = Tensor(input.shape());
        cachedInvStd_ = Tensor({channels_});
        cachedInShape_ = input.shape();
    }

    for (int64_t c = 0; c < channels_; ++c) {
        double mean, var;
        if (train) {
            double acc = 0.0;
            for (int64_t img = 0; img < n; ++img)
                for (int64_t s = 0; s < h * w; ++s)
                    acc += input.data()[(img * channels_ + c) * h * w + s];
            mean = acc / static_cast<double>(per_chan);
            double vacc = 0.0;
            for (int64_t img = 0; img < n; ++img)
                for (int64_t s = 0; s < h * w; ++s) {
                    const double d =
                        input.data()[(img * channels_ + c) * h * w + s] -
                        mean;
                    vacc += d * d;
                }
            var = vacc / static_cast<double>(per_chan);
            runMean_.at(c) = (1.0f - momentum_) * runMean_.at(c) +
                momentum_ * static_cast<float>(mean);
            runVar_.at(c) = (1.0f - momentum_) * runVar_.at(c) +
                momentum_ * static_cast<float>(var);
        } else {
            mean = runMean_.at(c);
            var = runVar_.at(c);
        }
        const float inv_std =
            1.0f / std::sqrt(static_cast<float>(var) + eps_);
        const float g = gamma_.at(c), b = beta_.at(c);
        for (int64_t img = 0; img < n; ++img)
            for (int64_t s = 0; s < h * w; ++s) {
                const int64_t idx = (img * channels_ + c) * h * w + s;
                const float xh =
                    (input.data()[idx] - static_cast<float>(mean)) * inv_std;
                out.data()[idx] = g * xh + b;
                if (train)
                    cachedXhat_.data()[idx] = xh;
            }
        if (train)
            cachedInvStd_.at(c) = inv_std;
    }
    return out;
}

Tensor
BatchNorm2D::backward(const Tensor &grad_out)
{
    const int64_t n = grad_out.dim(0);
    const int64_t h = grad_out.dim(2), w = grad_out.dim(3);
    const int64_t m = n * h * w;

    Tensor grad_in(cachedInShape_);
    for (int64_t c = 0; c < channels_; ++c) {
        double sum_dy = 0.0, sum_dy_xhat = 0.0;
        for (int64_t img = 0; img < n; ++img)
            for (int64_t s = 0; s < h * w; ++s) {
                const int64_t idx = (img * channels_ + c) * h * w + s;
                sum_dy += grad_out.data()[idx];
                sum_dy_xhat += static_cast<double>(grad_out.data()[idx]) *
                    cachedXhat_.data()[idx];
            }
        gradBeta_.at(c) += static_cast<float>(sum_dy);
        gradGamma_.at(c) += static_cast<float>(sum_dy_xhat);

        const float g = gamma_.at(c);
        const float inv_std = cachedInvStd_.at(c);
        const float k1 = static_cast<float>(sum_dy / m);
        const float k2 = static_cast<float>(sum_dy_xhat / m);
        for (int64_t img = 0; img < n; ++img)
            for (int64_t s = 0; s < h * w; ++s) {
                const int64_t idx = (img * channels_ + c) * h * w + s;
                const float xh = cachedXhat_.data()[idx];
                grad_in.data()[idx] = g * inv_std *
                    (grad_out.data()[idx] - k1 - xh * k2);
            }
    }
    return grad_in;
}

std::vector<ParamRef>
BatchNorm2D::params()
{
    return {
        {name() + ".gamma", &gamma_, &gradGamma_, false, false},
        {name() + ".beta", &beta_, &gradBeta_, false, false},
    };
}

// --------------------------------------------------------- ResidualBlock

ResidualBlock::ResidualBlock(std::string name, int in_c, int out_c,
                             int stride, Rng &rng)
    : Layer(std::move(name))
{
    const std::string &n = this->name();
    main_.push_back(std::make_unique<Conv2D>(
        n + ".conv1", in_c, out_c, 3, stride, 1, rng));
    main_.push_back(std::make_unique<BatchNorm2D>(n + ".bn1", out_c));
    main_.push_back(std::make_unique<ReLU>(n + ".relu1"));
    main_.push_back(std::make_unique<Conv2D>(
        n + ".conv2", out_c, out_c, 3, 1, 1, rng));
    main_.push_back(std::make_unique<BatchNorm2D>(n + ".bn2", out_c));

    if (stride != 1 || in_c != out_c) {
        shortcut_.push_back(std::make_unique<Conv2D>(
            n + ".proj", in_c, out_c, 1, stride, 0, rng));
        shortcut_.push_back(std::make_unique<BatchNorm2D>(
            n + ".proj_bn", out_c));
    }
}

Tensor
ResidualBlock::forward(const Tensor &input, bool train)
{
    Tensor x = input;
    for (auto &l : main_)
        x = l->forward(x, train);
    Tensor s = input;
    for (auto &l : shortcut_)
        s = l->forward(s, train);
    x.add(s);
    if (train)
        cachedSum_ = x;
    return relu(x);
}

Tensor
ResidualBlock::backward(const Tensor &grad_out)
{
    Tensor g = reluGrad(cachedSum_, grad_out);
    // Shortcut path gradient.
    Tensor gs = g;
    for (auto it = shortcut_.rbegin(); it != shortcut_.rend(); ++it)
        gs = (*it)->backward(gs);
    // Main path gradient.
    Tensor gm = g;
    for (auto it = main_.rbegin(); it != main_.rend(); ++it)
        gm = (*it)->backward(gm);
    gm.add(gs);
    return gm;
}

std::vector<ParamRef>
ResidualBlock::params()
{
    std::vector<ParamRef> out;
    for (auto &l : main_)
        for (auto &p : l->params())
            out.push_back(p);
    for (auto &l : shortcut_)
        for (auto &p : l->params())
            out.push_back(p);
    return out;
}

} // namespace forms::nn
