#include "nn/trainer.hh"

#include "common/logging.hh"

namespace forms::nn {

Trainer::Trainer(Network &net, const SyntheticImageDataset &data,
                 TrainConfig cfg)
    : net_(net), data_(data), cfg_(cfg), rng_(cfg.seed), lrNow_(cfg.lr)
{
}

void
Trainer::ensureVelocity()
{
    auto params = net_.params();
    if (velocity_.size() == params.size())
        return;
    velocity_.clear();
    velocity_.reserve(params.size());
    for (auto &p : params)
        velocity_.emplace_back(p.value->shape());
}

double
Trainer::step(const Split &batch)
{
    net_.zeroGrads();
    Tensor logits = net_.forward(batch.images, true);
    Tensor grad;
    const double loss =
        Network::crossEntropy(logits, batch.labels, &grad);
    net_.backward(grad);
    if (gradHook_)
        gradHook_();
    sgdUpdate();
    if (postStepHook_)
        postStepHook_();
    return loss;
}

void
Trainer::sgdUpdate()
{
    ensureVelocity();
    auto params = net_.params();
    for (size_t i = 0; i < params.size(); ++i) {
        Tensor &w = *params[i].value;
        Tensor &g = *params[i].grad;
        Tensor &v = velocity_[i];
        const bool decay = params[i].isConvWeight || params[i].isDenseWeight;
        float *pw = w.data();
        float *pg = g.data();
        float *pv = v.data();
        for (int64_t j = 0; j < w.numel(); ++j) {
            float grad = pg[j];
            if (decay)
                grad += cfg_.weightDecay * pw[j];
            pv[j] = cfg_.momentum * pv[j] - lrNow_ * grad;
            pw[j] += pv[j];
        }
    }
}

double
Trainer::evalTest()
{
    // Evaluate in modest chunks to bound the activation working set.
    const Split &t = data_.test();
    const int64_t n = t.size();
    const int chunk = 64;
    int64_t correct = 0;
    const int64_t img_sz = t.images.numel() / std::max<int64_t>(n, 1);
    for (int64_t at = 0; at < n; at += chunk) {
        const int64_t cnt = std::min<int64_t>(chunk, n - at);
        Tensor imgs({cnt, t.images.dim(1), t.images.dim(2),
                     t.images.dim(3)});
        std::copy(t.images.data() + at * img_sz,
                  t.images.data() + (at + cnt) * img_sz, imgs.data());
        std::vector<int> labels(
            t.labels.begin() + at, t.labels.begin() + at + cnt);
        correct += static_cast<int64_t>(
            net_.accuracy(imgs, labels) * static_cast<double>(cnt) + 0.5);
    }
    return n ? static_cast<double>(correct) / static_cast<double>(n) : 0.0;
}

TrainResult
Trainer::run()
{
    TrainResult res;
    auto order = data_.trainOrder();
    for (int epoch = 0; epoch < cfg_.epochs; ++epoch) {
        if (epoch > 0 && cfg_.lrDecayEpochs > 0 &&
            epoch % cfg_.lrDecayEpochs == 0) {
            lrNow_ *= cfg_.lrDecay;
        }
        shuffle(order, rng_);
        double loss_acc = 0.0;
        int batches = 0;
        const int n = static_cast<int>(order.size());
        for (int at = 0; at + cfg_.batchSize <= n; at += cfg_.batchSize) {
            Split b = data_.batch(order, at, cfg_.batchSize);
            loss_acc += step(b);
            ++batches;
        }
        res.finalTrainLoss = batches ? loss_acc / batches : 0.0;
        if (epochHook_)
            epochHook_(epoch);
        if (cfg_.verbose) {
            inform("epoch %d: loss %.4f", epoch, res.finalTrainLoss);
        }
    }
    res.testAccuracy = evalTest();
    return res;
}

} // namespace forms::nn
