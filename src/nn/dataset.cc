#include "nn/dataset.hh"

namespace forms::nn {

DatasetConfig
DatasetConfig::mnistLike(uint64_t seed)
{
    DatasetConfig c;
    c.classes = 10;
    c.channels = 1;
    c.height = 28;
    c.width = 28;
    c.noise = 0.5f;
    c.seed = seed;
    return c;
}

DatasetConfig
DatasetConfig::cifar10Like(uint64_t seed)
{
    DatasetConfig c;
    c.classes = 10;
    c.channels = 3;
    c.height = 32;
    c.width = 32;
    c.noise = 0.6f;
    c.seed = seed;
    return c;
}

DatasetConfig
DatasetConfig::cifar100Like(uint64_t seed)
{
    DatasetConfig c;
    c.classes = 20;          // scaled-down stand-in for 100 classes
    c.channels = 3;
    c.height = 32;
    c.width = 32;
    c.trainPerClass = 48;
    c.testPerClass = 12;
    c.noise = 0.75f;         // harder task than CIFAR-10-like
    c.seed = seed;
    return c;
}

DatasetConfig
DatasetConfig::imagenetLike(uint64_t seed)
{
    DatasetConfig c;
    c.classes = 25;          // scaled-down stand-in for 1000 classes
    c.channels = 3;
    c.height = 32;           // downscaled spatial extent (CPU budget)
    c.width = 32;
    c.trainPerClass = 40;
    c.testPerClass = 10;
    c.noise = 0.9f;          // hardest task
    c.seed = seed;
    return c;
}

namespace {

/** Separable 3x3 box smoothing to give prototypes spatial structure. */
Tensor
smooth(const Tensor &img)
{
    const int64_t c = img.dim(0), h = img.dim(1), w = img.dim(2);
    Tensor out({c, h, w});
    for (int64_t ch = 0; ch < c; ++ch)
        for (int64_t y = 0; y < h; ++y)
            for (int64_t x = 0; x < w; ++x) {
                float acc = 0.0f;
                int cnt = 0;
                for (int dy = -1; dy <= 1; ++dy)
                    for (int dx = -1; dx <= 1; ++dx) {
                        const int64_t yy = y + dy, xx = x + dx;
                        if (yy < 0 || yy >= h || xx < 0 || xx >= w)
                            continue;
                        acc += img.data()[(ch * h + yy) * w + xx];
                        ++cnt;
                    }
                out.data()[(ch * h + y) * w + x] =
                    acc / static_cast<float>(cnt);
            }
    return out;
}

} // namespace

SyntheticImageDataset::SyntheticImageDataset(const DatasetConfig &cfg)
    : cfg_(cfg)
{
    Rng rng(cfg.seed);
    std::vector<Tensor> protos;
    protos.reserve(static_cast<size_t>(cfg.classes));
    for (int k = 0; k < cfg.classes; ++k) {
        Tensor p({cfg.channels, cfg.height, cfg.width});
        p.fillGaussian(rng, 0.0f, 1.0f);
        // Two smoothing passes concentrate energy at low spatial
        // frequencies, which convolution kernels can learn from.
        p = smooth(smooth(p));
        // Renormalize prototype energy so all classes are equally "loud".
        const double norm = std::sqrt(p.squaredNorm() /
                                      static_cast<double>(p.numel()));
        p.scale(static_cast<float>(1.0 / std::max(norm, 1e-9)));
        protos.push_back(std::move(p));
    }
    train_ = makeSplit(cfg.trainPerClass, rng, protos);
    test_ = makeSplit(cfg.testPerClass, rng, protos);
}

Split
SyntheticImageDataset::makeSplit(int per_class, Rng &rng,
                                 const std::vector<Tensor> &protos) const
{
    const int n = per_class * cfg_.classes;
    Split split;
    split.images = Tensor({n, cfg_.channels, cfg_.height, cfg_.width});
    split.labels.resize(static_cast<size_t>(n));

    const int64_t img_sz = static_cast<int64_t>(cfg_.channels) *
        cfg_.height * cfg_.width;
    int64_t idx = 0;
    for (int k = 0; k < cfg_.classes; ++k) {
        const Tensor &proto = protos[static_cast<size_t>(k)];
        for (int s = 0; s < per_class; ++s, ++idx) {
            const float alpha = 1.0f + cfg_.scaleJitter *
                static_cast<float>(rng.gaussian());
            float *dst = split.images.data() + idx * img_sz;
            for (int64_t i = 0; i < img_sz; ++i) {
                dst[i] = alpha * proto.data()[i] + cfg_.noise *
                    static_cast<float>(rng.gaussian());
                if (cfg_.nonneg && dst[i] < 0.0f)
                    dst[i] = 0.0f;
            }
            split.labels[static_cast<size_t>(idx)] = k;
        }
    }
    return split;
}

Split
SyntheticImageDataset::batch(const std::vector<int> &order, int begin,
                             int count) const
{
    FORMS_ASSERT(begin >= 0 &&
                 begin + count <= static_cast<int>(order.size()),
                 "batch range out of bounds");
    Split b;
    b.images = Tensor({count, cfg_.channels, cfg_.height, cfg_.width});
    b.labels.resize(static_cast<size_t>(count));
    const int64_t img_sz = static_cast<int64_t>(cfg_.channels) *
        cfg_.height * cfg_.width;
    for (int i = 0; i < count; ++i) {
        const int src = order[static_cast<size_t>(begin + i)];
        const float *from = train_.images.data() + src * img_sz;
        float *to = b.images.data() + i * img_sz;
        std::copy(from, from + img_sz, to);
        b.labels[static_cast<size_t>(i)] =
            train_.labels[static_cast<size_t>(src)];
    }
    return b;
}

std::vector<int>
SyntheticImageDataset::trainOrder() const
{
    std::vector<int> order(static_cast<size_t>(train_.size()));
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = static_cast<int>(i);
    return order;
}

void
shuffle(std::vector<int> &order, Rng &rng)
{
    for (size_t i = order.size(); i > 1; --i) {
        const size_t j = static_cast<size_t>(rng.below(i));
        std::swap(order[i - 1], order[j]);
    }
}

} // namespace forms::nn
