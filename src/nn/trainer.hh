/**
 * @file
 * SGD trainer for the DNN substrate. Supports momentum, weight decay,
 * step learning-rate decay, and a per-step hook through which the ADMM
 * framework injects its augmented-Lagrangian gradient terms and mask /
 * sign re-projection (polarization-preserving updates).
 */

#ifndef FORMS_NN_TRAINER_HH
#define FORMS_NN_TRAINER_HH

#include <functional>

#include "nn/dataset.hh"
#include "nn/network.hh"

namespace forms::nn {

/** Training hyper-parameters. */
struct TrainConfig
{
    int epochs = 10;
    int batchSize = 32;
    float lr = 0.05f;
    float momentum = 0.9f;
    float weightDecay = 5e-4f;
    float lrDecay = 0.5f;     //!< multiplied in every lrDecayEpochs
    int lrDecayEpochs = 8;
    uint64_t seed = 7;
    bool verbose = false;
};

/** Result of a training run. */
struct TrainResult
{
    double finalTrainLoss = 0.0;
    double testAccuracy = 0.0;
};

/**
 * Mini-batch SGD trainer.
 *
 * Two hooks connect the ADMM framework:
 *  - gradHook: called after backward, before the SGD step; may add
 *    regularization gradients (e.g. rho * (W - Z + U)).
 *  - postStepHook: called after the SGD step; may re-project weights
 *    (e.g. enforce pruning masks / polarization signs during fine-tune).
 */
class Trainer
{
  public:
    using Hook = std::function<void()>;

    Trainer(Network &net, const SyntheticImageDataset &data,
            TrainConfig cfg);

    /** Install the ADMM gradient hook. */
    void setGradHook(Hook h) { gradHook_ = std::move(h); }

    /** Install the post-step projection hook. */
    void setPostStepHook(Hook h) { postStepHook_ = std::move(h); }

    /** Install a per-epoch hook (e.g. ADMM Z/U update, sign refresh). */
    void setEpochHook(std::function<void(int)> h)
    {
        epochHook_ = std::move(h);
    }

    /** Run the configured number of epochs. */
    TrainResult run();

    /** One SGD step on a batch; returns the batch loss. */
    double step(const Split &batch);

    /** Evaluate test accuracy. */
    double evalTest();

  private:
    Network &net_;
    const SyntheticImageDataset &data_;
    TrainConfig cfg_;
    Rng rng_;
    Hook gradHook_;
    Hook postStepHook_;
    std::function<void(int)> epochHook_;
    std::vector<Tensor> velocity_;
    float lrNow_;

    void ensureVelocity();
    void sgdUpdate();
};

} // namespace forms::nn

#endif // FORMS_NN_TRAINER_HH
