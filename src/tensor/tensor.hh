/**
 * @file
 * Minimal dense row-major float tensor used by the DNN substrate, the
 * ADMM optimization framework and the functional accelerator simulator.
 */

#ifndef FORMS_TENSOR_TENSOR_HH
#define FORMS_TENSOR_TENSOR_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"

namespace forms {

/** Shape of a tensor: a list of non-negative dimension extents. */
using Shape = std::vector<int64_t>;

/** Number of elements implied by a shape. */
int64_t shapeNumel(const Shape &shape);

/** Human-readable rendering, e.g. "[64, 3, 3, 3]". */
std::string shapeStr(const Shape &shape);

/**
 * Dense row-major float32 tensor.
 *
 * Deliberately small: contiguous storage, explicit indexing helpers for
 * ranks 1-4, elementwise helpers, and in-place mutation used by the
 * training loop. Anything heavier lives in ops.hh.
 */
class Tensor
{
  public:
    /** Empty (rank-0, zero-element) tensor. */
    Tensor() = default;

    /** Zero-initialized tensor of the given shape. */
    explicit Tensor(Shape shape);

    /** Tensor of the given shape filled with `value`. */
    Tensor(Shape shape, float value);

    /** Tensor wrapping the given flat data (must match the shape). */
    Tensor(Shape shape, std::vector<float> data);

    /** The tensor's shape. */
    const Shape &shape() const { return shape_; }

    /** Extent of dimension d (supports negative d counting from back). */
    int64_t dim(int d) const;

    /** Rank (number of dimensions). */
    int rank() const { return static_cast<int>(shape_.size()); }

    /** Total number of elements. */
    int64_t numel() const { return static_cast<int64_t>(data_.size()); }

    /** Raw storage access. */
    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }

    /** Flat element access with bounds assertion. */
    float &at(int64_t i);
    float at(int64_t i) const;

    /** Rank-2 element access (row, col). */
    float &at(int64_t i, int64_t j);
    float at(int64_t i, int64_t j) const;

    /** Rank-4 element access (n, c, h, w). */
    float &at(int64_t n, int64_t c, int64_t h, int64_t w);
    float at(int64_t n, int64_t c, int64_t h, int64_t w) const;

    /** Reinterpret as a new shape with identical element count. */
    Tensor reshaped(Shape shape) const;

    /** Fill all elements with a constant. */
    void fill(float value);

    /** Fill with i.i.d. N(mean, stddev) samples. */
    void fillGaussian(Rng &rng, float mean, float stddev);

    /** Fill with i.i.d. U[lo, hi) samples. */
    void fillUniform(Rng &rng, float lo, float hi);

    /** Apply `f` to every element in place. */
    void apply(const std::function<float(float)> &f);

    /** Elementwise in-place accumulate: this += other. */
    void add(const Tensor &other);

    /** Elementwise in-place scaled accumulate: this += alpha * other. */
    void axpy(float alpha, const Tensor &other);

    /** Elementwise in-place subtract: this -= other. */
    void sub(const Tensor &other);

    /** In-place scalar multiply. */
    void scale(float alpha);

    /** Sum of all elements. */
    double sum() const;

    /** Mean absolute value of elements (0 for empty tensors). */
    double meanAbs() const;

    /** Maximum absolute value of elements (0 for empty tensors). */
    float maxAbs() const;

    /** Squared L2 norm. */
    double squaredNorm() const;

    /** Count of elements that are exactly zero. */
    int64_t countZeros() const;

    /** True when both shape and every element match exactly. */
    bool equals(const Tensor &other) const;

  private:
    Shape shape_;
    std::vector<float> data_;
};

} // namespace forms

#endif // FORMS_TENSOR_TENSOR_HH
