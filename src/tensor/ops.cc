#include "tensor/ops.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/simd.hh"
#include "common/threadpool.hh"

namespace forms {

namespace {

/**
 * Chunk size putting ~32k elements of inner work in each task, so
 * small tensors stay on the calling thread (a one-chunk parallelFor
 * runs inline) and large ones shard across the pool. Every kernel
 * below parallelizes over an axis whose slices are written disjointly
 * and whose per-element accumulation order is unchanged, so results
 * are bit-identical to the serial loops for any thread count.
 */
int64_t
grainFor(int64_t per_item_work)
{
    constexpr int64_t chunk_work = int64_t(1) << 15;
    return std::max<int64_t>(
        1, chunk_work / std::max<int64_t>(1, per_item_work));
}

} // namespace

Tensor
matmul(const Tensor &a, const Tensor &b)
{
    FORMS_ASSERT(a.rank() == 2 && b.rank() == 2, "matmul needs rank-2");
    const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
    FORMS_ASSERT(b.dim(0) == k, "matmul inner dim mismatch %lld vs %lld",
                 static_cast<long long>(a.dim(1)),
                 static_cast<long long>(b.dim(0)));
    Tensor c({m, n});
    const float *pa = a.data();
    const float *pb = b.data();
    float *pc = c.data();
    const simd::Kernels &kern = simd::kernels();
    parallelFor(0, m, grainFor(k * n), [&](int64_t i, int) {
        for (int64_t l = 0; l < k; ++l) {
            const float av = pa[i * k + l];
            if (av == 0.0f)
                continue;
            kern.axpyF32(pc + i * n, pb + l * n, av, n);
        }
    });
    return c;
}

Tensor
matmulTransposeB(const Tensor &a, const Tensor &b_t)
{
    FORMS_ASSERT(a.rank() == 2 && b_t.rank() == 2, "matmulT needs rank-2");
    const int64_t m = a.dim(0), k = a.dim(1), n = b_t.dim(0);
    FORMS_ASSERT(b_t.dim(1) == k, "matmulTransposeB inner dim mismatch");
    Tensor c({m, n});
    const float *pa = a.data();
    const float *pb = b_t.data();
    float *pc = c.data();
    // dotF32's lane-blocked reduction tree (common/simd.hh) is the
    // kernel's definition, so every dispatch mode produces the same
    // bits here.
    const simd::Kernels &kern = simd::kernels();
    parallelFor(0, m, grainFor(k * n), [&](int64_t i, int) {
        for (int64_t j = 0; j < n; ++j) {
            pc[i * n + j] = static_cast<float>(
                kern.dotF32(pa + i * k, pb + j * k, k));
        }
    });
    return c;
}

Tensor
matmulTransposeA(const Tensor &a, const Tensor &b)
{
    FORMS_ASSERT(a.rank() == 2 && b.rank() == 2, "matmulTA needs rank-2");
    const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
    FORMS_ASSERT(b.dim(0) == m, "matmulTransposeA outer dim mismatch");
    Tensor c({k, n});
    const float *pa = a.data();
    const float *pb = b.data();
    float *pc = c.data();
    // Sharded over output rows l (not the reduction axis i) so each
    // C row is owned by one task and the i-order accumulation per
    // (l, j) matches the serial loop exactly.
    const simd::Kernels &kern = simd::kernels();
    parallelFor(0, k, grainFor(m * n), [&](int64_t l, int) {
        float *crow = pc + l * n;
        for (int64_t i = 0; i < m; ++i) {
            const float av = pa[i * k + l];
            if (av == 0.0f)
                continue;
            kern.axpyF32(crow, pb + i * n, av, n);
        }
    });
    return c;
}

Tensor
transpose(const Tensor &a)
{
    FORMS_ASSERT(a.rank() == 2, "transpose needs rank-2");
    const int64_t m = a.dim(0), n = a.dim(1);
    Tensor t({n, m});
    for (int64_t i = 0; i < m; ++i)
        for (int64_t j = 0; j < n; ++j)
            t.at(j, i) = a.at(i, j);
    return t;
}

int
convOutDim(int in, int k, int stride, int pad)
{
    const int out = (in + 2 * pad - k) / stride + 1;
    FORMS_ASSERT(out > 0, "conv output dimension collapsed to zero");
    return out;
}

void
im2colInto(const Tensor &input, int kh, int kw, int stride, int pad,
           Tensor &out)
{
    FORMS_ASSERT(input.rank() == 4, "im2col expects NCHW");
    const int64_t n = input.dim(0), c = input.dim(1);
    const int h = static_cast<int>(input.dim(2));
    const int w = static_cast<int>(input.dim(3));
    const int oh = convOutDim(h, kh, stride, pad);
    const int ow = convOutDim(w, kw, stride, pad);

    const int64_t rows = c * kh * kw;
    const int64_t cols = n * oh * ow;
    // Reuse the caller's buffer when the geometry matches (the conv
    // hot path hands the same scratch tensor to every micro-batch);
    // every output element is written below, so stale contents are
    // harmless.
    if (out.rank() != 2 || out.dim(0) != rows || out.dim(1) != cols)
        out = Tensor({rows, cols});
    float *po = out.data();
    const float *pi = input.data();
    const simd::Kernels &kern = simd::kernels();

    // One task per (image, channel) plane: each writes a disjoint
    // (row band, column band) block of the output.
    parallelFor(0, n * c, grainFor(int64_t(kh) * kw * oh * ow),
                [&](int64_t t, int) {
        const int64_t img = t / c, ch = t % c;
        const float *plane = pi + (img * c + ch) * h * w;
        for (int ky = 0; ky < kh; ++ky) {
            for (int kx = 0; kx < kw; ++kx) {
                const int64_t row = (ch * kh + ky) * kw + kx;
                for (int oy = 0; oy < oh; ++oy) {
                    const int iy = oy * stride - pad + ky;
                    const int64_t col_base = (img * oh + oy) * ow;
                    float *dst = po + row * cols + col_base;
                    if (iy < 0 || iy >= h) {
                        std::fill(dst, dst + ow, 0.0f);
                        continue;
                    }
                    const float *srow = plane + iy * w;
                    if (stride == 1) {
                        // Unit stride reads a contiguous span: pad
                        // fills at the edges, one stride-1 copy for
                        // the interior (pure data movement — bitwise
                        // mode-independent).
                        const int shift = kx - pad;   // ix = ox + shift
                        const int x0 = std::max(0, -shift);
                        const int x1 = std::min(ow, w - shift);
                        if (x0 > 0)
                            std::fill(dst, dst + std::min(x0, ow), 0.0f);
                        if (x1 > x0)
                            kern.copyF32(dst + x0, srow + x0 + shift,
                                         x1 - x0);
                        if (std::max(x0, x1) < ow)
                            std::fill(dst + std::max(x0, x1), dst + ow,
                                      0.0f);
                    } else {
                        for (int ox = 0; ox < ow; ++ox) {
                            const int ix = ox * stride - pad + kx;
                            dst[ox] = (ix >= 0 && ix < w)
                                ? srow[ix] : 0.0f;
                        }
                    }
                }
            }
        }
    });
}

Tensor
im2col(const Tensor &input, int kh, int kw, int stride, int pad)
{
    Tensor out;
    im2colInto(input, kh, kw, stride, pad, out);
    return out;
}

Tensor
col2im(const Tensor &cols, const Shape &input_shape, int kh, int kw,
       int stride, int pad)
{
    FORMS_ASSERT(input_shape.size() == 4, "col2im expects NCHW shape");
    const int64_t n = input_shape[0], c = input_shape[1];
    const int h = static_cast<int>(input_shape[2]);
    const int w = static_cast<int>(input_shape[3]);
    const int oh = convOutDim(h, kh, stride, pad);
    const int ow = convOutDim(w, kw, stride, pad);
    const int64_t ncols = n * oh * ow;
    FORMS_ASSERT(cols.dim(0) == c * kh * kw && cols.dim(1) == ncols,
                 "col2im shape mismatch");

    Tensor out(input_shape);
    float *po = out.data();
    const float *pc = cols.data();

    // One task per (image, channel): scatter-adds land in the task's
    // own input plane, so there are no cross-task writes.
    parallelFor(0, n * c, grainFor(int64_t(kh) * kw * oh * ow),
                [&](int64_t t, int) {
        const int64_t img = t / c, ch = t % c;
        float *plane = po + (img * c + ch) * h * w;
        for (int ky = 0; ky < kh; ++ky) {
            for (int kx = 0; kx < kw; ++kx) {
                const int64_t row = (ch * kh + ky) * kw + kx;
                for (int oy = 0; oy < oh; ++oy) {
                    const int iy = oy * stride - pad + ky;
                    if (iy < 0 || iy >= h)
                        continue;
                    const int64_t col_base = (img * oh + oy) * ow;
                    const float *src = pc + row * ncols + col_base;
                    for (int ox = 0; ox < ow; ++ox) {
                        const int ix = ox * stride - pad + kx;
                        if (ix >= 0 && ix < w)
                            plane[iy * w + ix] += src[ox];
                    }
                }
            }
        }
    });
    return out;
}

Tensor
relu(const Tensor &x)
{
    Tensor y = x;
    y.apply([](float v) { return v > 0.0f ? v : 0.0f; });
    return y;
}

Tensor
reluGrad(const Tensor &x, const Tensor &grad_out)
{
    FORMS_ASSERT(x.numel() == grad_out.numel(), "reluGrad size mismatch");
    Tensor g = grad_out;
    const float *px = x.data();
    float *pg = g.data();
    for (int64_t i = 0; i < g.numel(); ++i)
        if (px[i] <= 0.0f)
            pg[i] = 0.0f;
    return g;
}

Tensor
softmaxRows(const Tensor &logits)
{
    FORMS_ASSERT(logits.rank() == 2, "softmaxRows needs rank-2");
    const int64_t n = logits.dim(0), k = logits.dim(1);
    Tensor out({n, k});
    for (int64_t i = 0; i < n; ++i) {
        float mx = logits.at(i, 0);
        for (int64_t j = 1; j < k; ++j)
            mx = std::max(mx, logits.at(i, j));
        double denom = 0.0;
        for (int64_t j = 0; j < k; ++j) {
            const float e = std::exp(logits.at(i, j) - mx);
            out.at(i, j) = e;
            denom += e;
        }
        for (int64_t j = 0; j < k; ++j)
            out.at(i, j) = static_cast<float>(out.at(i, j) / denom);
    }
    return out;
}

Tensor
maxPool2d(const Tensor &input, int k, int stride, Tensor *argmax)
{
    FORMS_ASSERT(input.rank() == 4, "maxPool2d expects NCHW");
    const int64_t n = input.dim(0), c = input.dim(1);
    const int h = static_cast<int>(input.dim(2));
    const int w = static_cast<int>(input.dim(3));
    const int oh = convOutDim(h, k, stride, 0);
    const int ow = convOutDim(w, k, stride, 0);

    Tensor out({n, c, oh, ow});
    if (argmax)
        *argmax = Tensor({n, c, oh, ow});

    parallelFor(0, n * c, grainFor(int64_t(oh) * ow * k * k),
                [&](int64_t t, int) {
        const int64_t img = t / c, ch = t % c;
        for (int oy = 0; oy < oh; ++oy) {
            for (int ox = 0; ox < ow; ++ox) {
                float best = -std::numeric_limits<float>::infinity();
                int64_t best_idx = -1;
                for (int ky = 0; ky < k; ++ky) {
                    for (int kx = 0; kx < k; ++kx) {
                        const int iy = oy * stride + ky;
                        const int ix = ox * stride + kx;
                        if (iy >= h || ix >= w)
                            continue;
                        const float v = input.at(img, ch, iy, ix);
                        if (v > best) {
                            best = v;
                            best_idx =
                                ((img * c + ch) * h + iy) * w + ix;
                        }
                    }
                }
                out.at(img, ch, oy, ox) = best;
                if (argmax) {
                    argmax->at(img, ch, oy, ox) =
                        static_cast<float>(best_idx);
                }
            }
        }
    });
    return out;
}

Tensor
maxPool2dBackward(const Tensor &grad_out, const Tensor &argmax,
                  const Shape &input_shape)
{
    Tensor grad_in(input_shape);
    const float *pg = grad_out.data();
    const float *pa = argmax.data();
    float *pi = grad_in.data();
    for (int64_t i = 0; i < grad_out.numel(); ++i) {
        const int64_t idx = static_cast<int64_t>(pa[i]);
        FORMS_ASSERT(idx >= 0 && idx < grad_in.numel(),
                     "argmax index out of range");
        pi[idx] += pg[i];
    }
    return grad_in;
}

Tensor
avgPool2d(const Tensor &input, int k, int stride)
{
    FORMS_ASSERT(input.rank() == 4, "avgPool2d expects NCHW");
    const int64_t n = input.dim(0), c = input.dim(1);
    const int h = static_cast<int>(input.dim(2));
    const int w = static_cast<int>(input.dim(3));
    const int oh = convOutDim(h, k, stride, 0);
    const int ow = convOutDim(w, k, stride, 0);
    Tensor out({n, c, oh, ow});
    const float inv = 1.0f / static_cast<float>(k * k);
    parallelFor(0, n * c, grainFor(int64_t(oh) * ow * k * k),
                [&](int64_t t, int) {
        const int64_t img = t / c, ch = t % c;
        for (int oy = 0; oy < oh; ++oy)
            for (int ox = 0; ox < ow; ++ox) {
                float acc = 0.0f;
                for (int ky = 0; ky < k; ++ky)
                    for (int kx = 0; kx < k; ++kx) {
                        const int iy = oy * stride + ky;
                        const int ix = ox * stride + kx;
                        if (iy < h && ix < w)
                            acc += input.at(img, ch, iy, ix);
                    }
                out.at(img, ch, oy, ox) = acc * inv;
            }
    });
    return out;
}

Tensor
avgPool2dBackward(const Tensor &grad_out, const Shape &input_shape,
                  int k, int stride)
{
    Tensor grad_in(input_shape);
    const int64_t n = grad_out.dim(0), c = grad_out.dim(1);
    const int oh = static_cast<int>(grad_out.dim(2));
    const int ow = static_cast<int>(grad_out.dim(3));
    const int h = static_cast<int>(input_shape[2]);
    const int w = static_cast<int>(input_shape[3]);
    const float inv = 1.0f / static_cast<float>(k * k);
    for (int64_t img = 0; img < n; ++img)
        for (int64_t ch = 0; ch < c; ++ch)
            for (int oy = 0; oy < oh; ++oy)
                for (int ox = 0; ox < ow; ++ox) {
                    const float g = grad_out.at(img, ch, oy, ox) * inv;
                    for (int ky = 0; ky < k; ++ky)
                        for (int kx = 0; kx < k; ++kx) {
                            const int iy = oy * stride + ky;
                            const int ix = ox * stride + kx;
                            if (iy < h && ix < w)
                                grad_in.at(img, ch, iy, ix) += g;
                        }
                }
    return grad_in;
}

} // namespace forms
