#include "tensor/tensor.hh"

#include <cmath>
#include <numeric>
#include <sstream>

namespace forms {

int64_t
shapeNumel(const Shape &shape)
{
    int64_t n = 1;
    for (int64_t d : shape) {
        FORMS_ASSERT(d >= 0, "negative dimension in shape");
        n *= d;
    }
    return n;
}

std::string
shapeStr(const Shape &shape)
{
    std::ostringstream os;
    os << "[";
    for (size_t i = 0; i < shape.size(); ++i) {
        if (i)
            os << ", ";
        os << shape[i];
    }
    os << "]";
    return os.str();
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      data_(static_cast<size_t>(shapeNumel(shape_)), 0.0f)
{
}

Tensor::Tensor(Shape shape, float value)
    : shape_(std::move(shape)),
      data_(static_cast<size_t>(shapeNumel(shape_)), value)
{
}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data))
{
    FORMS_ASSERT(static_cast<int64_t>(data_.size()) == shapeNumel(shape_),
                 "data size does not match shape %s", shapeStr(shape_).c_str());
}

int64_t
Tensor::dim(int d) const
{
    const int r = rank();
    if (d < 0)
        d += r;
    FORMS_ASSERT(d >= 0 && d < r, "dimension index out of range");
    return shape_[static_cast<size_t>(d)];
}

float &
Tensor::at(int64_t i)
{
    FORMS_ASSERT(i >= 0 && i < numel(), "flat index out of range");
    return data_[static_cast<size_t>(i)];
}

float
Tensor::at(int64_t i) const
{
    FORMS_ASSERT(i >= 0 && i < numel(), "flat index out of range");
    return data_[static_cast<size_t>(i)];
}

float &
Tensor::at(int64_t i, int64_t j)
{
    FORMS_ASSERT(rank() == 2, "rank-2 accessor on rank-%d tensor", rank());
    FORMS_ASSERT(i >= 0 && i < shape_[0] && j >= 0 && j < shape_[1],
                 "2-d index out of range");
    return data_[static_cast<size_t>(i * shape_[1] + j)];
}

float
Tensor::at(int64_t i, int64_t j) const
{
    return const_cast<Tensor *>(this)->at(i, j);
}

float &
Tensor::at(int64_t n, int64_t c, int64_t h, int64_t w)
{
    FORMS_ASSERT(rank() == 4, "rank-4 accessor on rank-%d tensor", rank());
    FORMS_ASSERT(n >= 0 && n < shape_[0] && c >= 0 && c < shape_[1] &&
                 h >= 0 && h < shape_[2] && w >= 0 && w < shape_[3],
                 "4-d index out of range");
    return data_[static_cast<size_t>(
        ((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w)];
}

float
Tensor::at(int64_t n, int64_t c, int64_t h, int64_t w) const
{
    return const_cast<Tensor *>(this)->at(n, c, h, w);
}

Tensor
Tensor::reshaped(Shape shape) const
{
    FORMS_ASSERT(shapeNumel(shape) == numel(),
                 "reshape %s -> %s changes element count",
                 shapeStr(shape_).c_str(), shapeStr(shape).c_str());
    return Tensor(std::move(shape), data_);
}

void
Tensor::fill(float value)
{
    std::fill(data_.begin(), data_.end(), value);
}

void
Tensor::fillGaussian(Rng &rng, float mean, float stddev)
{
    for (float &x : data_)
        x = static_cast<float>(rng.gaussian(mean, stddev));
}

void
Tensor::fillUniform(Rng &rng, float lo, float hi)
{
    for (float &x : data_)
        x = static_cast<float>(rng.uniform(lo, hi));
}

void
Tensor::apply(const std::function<float(float)> &f)
{
    for (float &x : data_)
        x = f(x);
}

void
Tensor::add(const Tensor &other)
{
    axpy(1.0f, other);
}

void
Tensor::axpy(float alpha, const Tensor &other)
{
    FORMS_ASSERT(numel() == other.numel(), "axpy size mismatch");
    const float *src = other.data();
    for (size_t i = 0; i < data_.size(); ++i)
        data_[i] += alpha * src[i];
}

void
Tensor::sub(const Tensor &other)
{
    axpy(-1.0f, other);
}

void
Tensor::scale(float alpha)
{
    for (float &x : data_)
        x *= alpha;
}

double
Tensor::sum() const
{
    double acc = 0.0;
    for (float x : data_)
        acc += x;
    return acc;
}

double
Tensor::meanAbs() const
{
    if (data_.empty())
        return 0.0;
    double acc = 0.0;
    for (float x : data_)
        acc += std::fabs(x);
    return acc / static_cast<double>(data_.size());
}

float
Tensor::maxAbs() const
{
    float m = 0.0f;
    for (float x : data_)
        m = std::max(m, std::fabs(x));
    return m;
}

double
Tensor::squaredNorm() const
{
    double acc = 0.0;
    for (float x : data_)
        acc += static_cast<double>(x) * x;
    return acc;
}

int64_t
Tensor::countZeros() const
{
    int64_t n = 0;
    for (float x : data_)
        if (x == 0.0f)
            ++n;
    return n;
}

bool
Tensor::equals(const Tensor &other) const
{
    return shape_ == other.shape_ && data_ == other.data_;
}

} // namespace forms
