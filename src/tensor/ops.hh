/**
 * @file
 * Tensor operations backing the DNN substrate: GEMM, im2col-based 2-d
 * convolution, pooling and activation kernels. Correctness and
 * determinism first: the hot kernels (matmul*, im2col/col2im, pooling)
 * shard over the process-wide ThreadPool along axes with disjoint
 * writes and unchanged per-element accumulation order, so results are
 * bit-identical to the serial loops for any thread count (set
 * FORMS_THREADS=1 to force serial execution).
 */

#ifndef FORMS_TENSOR_OPS_HH
#define FORMS_TENSOR_OPS_HH

#include "tensor/tensor.hh"

namespace forms {

/** C = A(mxk) * B(kxn); all rank-2. */
Tensor matmul(const Tensor &a, const Tensor &b);

/** C = A(mxk) * B(kxn)^T where bT is given as (n x k). */
Tensor matmulTransposeB(const Tensor &a, const Tensor &b_t);

/** C = A(mxk)^T * B(mxn) -> (k x n). */
Tensor matmulTransposeA(const Tensor &a, const Tensor &b);

/** Rank-2 transpose. */
Tensor transpose(const Tensor &a);

/**
 * im2col for NCHW input. Output is rank-2 with
 * rows = C*kh*kw, cols = N*out_h*out_w. Column-major over (n, oy, ox)
 * so a conv becomes weights(out_c x C*kh*kw) * im2col.
 */
Tensor im2col(const Tensor &input, int kh, int kw, int stride, int pad);

/**
 * im2col writing into a caller-owned tensor, reallocating only when
 * the output geometry changes. The conv hot path passes a per-stage
 * scratch tensor so steady-state micro-batches are allocation-free.
 */
void im2colInto(const Tensor &input, int kh, int kw, int stride, int pad,
                Tensor &out);

/** Inverse scatter-add of im2col (for conv backward w.r.t. input). */
Tensor col2im(const Tensor &cols, const Shape &input_shape, int kh, int kw,
              int stride, int pad);

/** Spatial output extent for a conv/pool dimension. */
int convOutDim(int in, int k, int stride, int pad);

/** Elementwise ReLU (returns a copy). */
Tensor relu(const Tensor &x);

/** Elementwise ReLU derivative mask given the forward input. */
Tensor reluGrad(const Tensor &x, const Tensor &grad_out);

/**
 * Row-wise softmax of a rank-2 tensor (numerically stabilized by the
 * row max).
 */
Tensor softmaxRows(const Tensor &logits);

/**
 * 2-d max pooling on NCHW input. `argmax` (same shape as the output)
 * receives the flat input index of each maximum for use in backward.
 */
Tensor maxPool2d(const Tensor &input, int k, int stride, Tensor *argmax);

/** Scatter pooled gradients back through the recorded argmax indices. */
Tensor maxPool2dBackward(const Tensor &grad_out, const Tensor &argmax,
                         const Shape &input_shape);

/** 2-d average pooling on NCHW input. */
Tensor avgPool2d(const Tensor &input, int k, int stride);

/** Backward of average pooling. */
Tensor avgPool2dBackward(const Tensor &grad_out, const Shape &input_shape,
                         int k, int stride);

} // namespace forms

#endif // FORMS_TENSOR_OPS_HH
