#include "arch/isaac_engine.hh"

#include <cmath>

#include "common/logging.hh"
#include "reram/device.hh"

namespace forms::arch {

IsaacEngine::IsaacEngine(
    const std::vector<std::vector<int32_t>> &weights, IsaacConfig cfg)
    : cfg_(cfg),
      rows_(static_cast<int>(weights.size())),
      cols_(rows_ ? static_cast<int>(weights.front().size()) : 0),
      signedWeights_(weights),
      array_(std::max(1, rows_),
             std::max(1, cols_ * cfg.cellsPerWeight()),
             reram::CellConfig{}),
      adc_({cfg.adcBits, cfg.adcFreqGhz})
{
    FORMS_ASSERT(rows_ > 0 && cols_ > 0, "empty ISAAC weight matrix");
    FORMS_ASSERT(rows_ <= cfg.xbarRows &&
                 cols_ * cfg.cellsPerWeight() <= cfg.xbarCols,
                 "matrix exceeds one crossbar (%d x %d cells)",
                 cfg.xbarRows, cfg.xbarCols);

    const int64_t offset = cfg_.offset();
    const int64_t biased_max = (int64_t{1} << cfg_.weightBits) - 1;
    const int cells = cfg_.cellsPerWeight();
    for (int r = 0; r < rows_; ++r) {
        FORMS_ASSERT(static_cast<int>(weights[static_cast<size_t>(r)]
                                          .size()) == cols_,
                     "ragged weight matrix");
        for (int c = 0; c < cols_; ++c) {
            const int64_t biased =
                weights[static_cast<size_t>(r)][static_cast<size_t>(c)] +
                offset;
            FORMS_ASSERT(biased >= 0 && biased <= biased_max,
                         "weight %d out of %d-bit signed range",
                         weights[static_cast<size_t>(r)]
                                [static_cast<size_t>(c)],
                         cfg_.weightBits);
            const auto levels = reram::sliceMagnitude(
                static_cast<uint32_t>(biased), cfg_.weightBits,
                cfg_.cellBits);
            for (int s = 0; s < cells; ++s)
                array_.programCell(r, c * cells + s,
                                   levels[static_cast<size_t>(s)]);
        }
    }
}

std::vector<int64_t>
IsaacEngine::mvm(const std::vector<uint32_t> &inputs,
                 IsaacStats *stats) const
{
    FORMS_ASSERT(static_cast<int>(inputs.size()) >= rows_,
                 "input vector too short");
    const int cells = cfg_.cellsPerWeight();
    const int cell_cols = cols_ * cells;
    std::vector<double> acc(static_cast<size_t>(cell_cols), 0.0);
    const int64_t offset = cfg_.offset();

    IsaacStats local;
    std::vector<uint8_t> row_bits(static_cast<size_t>(rows_), 0);
    std::vector<double> bias_acc(1, 0.0);
    double bias_total = 0.0;

    // Coarse-grained: all rows active each bit cycle (ISAAC style);
    // no zero-skipping — the baseline always feeds all input bits.
    for (int p = cfg_.inputBits - 1; p >= 0; --p) {
        int64_t popcount = 0;
        for (int r = 0; r < rows_; ++r) {
            const uint8_t bit = static_cast<uint8_t>(
                (inputs[static_cast<size_t>(r)] >> p) & 1u);
            row_bits[static_cast<size_t>(r)] = bit;
            popcount += bit;
        }
        ++local.bitCycles;
        // The offset fixup: every active input contributes an extra
        // `offset` to every weight column; subtract popcount * offset
        // at this bit significance (ISAAC's count-the-1s circuit).
        bias_total += static_cast<double>(popcount) *
            std::pow(2.0, p);
        local.biasSubtractions += static_cast<uint64_t>(cols_);

        for (int cc = 0; cc < cell_cols; ++cc) {
            // Ideal conversion: the 8-bit ADC resolves the worst-case
            // 128-row sum exactly in this integer model.
            const int64_t analog =
                array_.idealColumnSum(cc, row_bits, 0, rows_);
            acc[static_cast<size_t>(cc)] +=
                static_cast<double>(analog) * std::pow(2.0, p);
            ++local.adcSamples;
            local.adcEnergyPj += adc_.energyPerSamplePj();
        }
    }

    std::vector<int64_t> out(static_cast<size_t>(cols_), 0);
    for (int c = 0; c < cols_; ++c) {
        double biased = 0.0;
        for (int s = 0; s < cells; ++s) {
            biased += acc[static_cast<size_t>(c * cells + s)] *
                std::pow(2.0, s * cfg_.cellBits);
        }
        const double fixed =
            biased - bias_total * static_cast<double>(offset);
        out[static_cast<size_t>(c)] =
            static_cast<int64_t>(std::llround(fixed));
    }

    if (stats) {
        stats->bitCycles += local.bitCycles;
        stats->adcSamples += local.adcSamples;
        stats->biasSubtractions += local.biasSubtractions;
        stats->adcEnergyPj += local.adcEnergyPj;
    }
    return out;
}

std::vector<int64_t>
IsaacEngine::reference(const std::vector<uint32_t> &inputs) const
{
    std::vector<int64_t> out(static_cast<size_t>(cols_), 0);
    for (int c = 0; c < cols_; ++c) {
        int64_t acc = 0;
        for (int r = 0; r < rows_; ++r) {
            acc += static_cast<int64_t>(
                       signedWeights_[static_cast<size_t>(r)]
                                     [static_cast<size_t>(c)]) *
                static_cast<int64_t>(inputs[static_cast<size_t>(r)]);
        }
        out[static_cast<size_t>(c)] = acc;
    }
    return out;
}

} // namespace forms::arch
