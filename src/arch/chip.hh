/**
 * @file
 * Per-chip engine pool for the multi-chip pipeline runtime.
 *
 * An EnginePool owns the programmed CrossbarEngines of all matrix
 * nodes assigned to one simulated chip. Each slot pins its MappedLayer
 * next to the engine that references it (engines hold the mapping by
 * reference, so slots live behind unique_ptr and never move after
 * programming). Slot order is the order of program() calls — the
 * chip's topological node order in the pipeline runtime — which fixes
 * the per-chip stats presentation order (DESIGN.md §5).
 *
 * A node in a replicated stage (compile::Schedule stage width > 1)
 * is programmed into the pool of *every* chip of its stage, one
 * replica engine each. Device variation draws at program time from a
 * stream seeded only by the engine config, so all replicas hold
 * identical conductances; which presentations a replica processes —
 * and how its engine stream is seeked — is the executor's business
 * (sim::StageEngines, docs/SCHEDULING.md), not the pool's.
 *
 * Thread-safety: program() is construction-time only (single thread);
 * after programming, the engines' mvm/mvmBatch calls are internally
 * pool-sharded and safe to drive from the owning runtime. The pool
 * owns engines and mappings outright; callers borrow raw pointers
 * that stay valid for the pool's lifetime.
 */

#ifndef FORMS_ARCH_CHIP_HH
#define FORMS_ARCH_CHIP_HH

#include <memory>

#include "arch/engine.hh"

namespace forms::arch {

/** Owns one chip's programmed engines, keyed by graph node id. */
class EnginePool
{
  public:
    EnginePool() = default;

    EnginePool(const EnginePool &) = delete;
    EnginePool &operator=(const EnginePool &) = delete;
    EnginePool(EnginePool &&) = default;
    EnginePool &operator=(EnginePool &&) = default;

    /**
     * Map and program one node's layer onto this chip. Device
     * variation draws at program time from the engine's own stream
     * (seeded by cfg.variationSeed), so programming order across
     * chips never changes the programmed conductances.
     */
    void program(int node_id, MappedLayer mapped, const EngineConfig &cfg);

    /** Programmed engine of node `node_id` (null when not on chip). */
    CrossbarEngine *engine(int node_id);

    /** Mapping of node `node_id` (null when not on this chip). */
    const MappedLayer *mapped(int node_id) const;

    /** Number of programmed engines. */
    size_t size() const { return slots_.size(); }

    /** Total crossbars programmed on this chip. */
    int64_t totalCrossbars() const;

    /** Restart every engine's presentation RNG stream at index 0. */
    void resetPresentationStreams();

  private:
    struct Slot
    {
        int nodeId = -1;
        MappedLayer mapped;
        std::unique_ptr<CrossbarEngine> engine;
    };
    std::vector<std::unique_ptr<Slot>> slots_;
};

} // namespace forms::arch

#endif // FORMS_ARCH_CHIP_HH
