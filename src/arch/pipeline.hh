/**
 * @file
 * FORMS / ISAAC-style pipeline timing model (paper Figure 12).
 *
 * A layer's presentations stream through a fixed-depth pipeline
 * (eDRAM read, input shifting with zero-skip, crossbar + ADC cycles,
 * shift-and-add, activation, eDRAM write; 22 stages, 26 when the layer
 * pools). The crossbar/ADC stage dominates and repeats for every
 * effective input bit; zero-skipping shortens exactly that stage.
 */

#ifndef FORMS_ARCH_PIPELINE_HH
#define FORMS_ARCH_PIPELINE_HH

#include <cstdint>

namespace forms::arch {

/** Pipeline timing parameters. */
struct PipelineConfig
{
    int baseStages = 22;       //!< paper: 22-stage pipeline
    int poolingStages = 4;     //!< +4 when the layer max-pools
    double cycleNs = 15.0;     //!< one pipeline cycle (ADC slot time)
    int inputBits = 16;
};

/** Per-layer pipeline occupancy summary. */
struct PipelineTiming
{
    double fillNs = 0.0;       //!< time to fill the pipe (depth cycles)
    double streamNs = 0.0;     //!< steady-state streaming time
    double totalNs = 0.0;
    uint64_t cycles = 0;
};

/**
 * Latency of streaming `presentations` input vectors through a layer.
 *
 * @param cfg pipeline parameters
 * @param presentations sliding-window positions for the layer
 * @param bit_cycles_per_presentation effective input-bit cycles the
 *        crossbar stage repeats (EIC * row groups), the per-item
 *        initiation interval
 * @param pools whether the layer is followed by max-pooling
 */
PipelineTiming layerPipelineTiming(const PipelineConfig &cfg,
                                   uint64_t presentations,
                                   double bit_cycles_per_presentation,
                                   bool pools);

} // namespace forms::arch

#endif // FORMS_ARCH_PIPELINE_HH
