#include "arch/zero_skip.hh"

#include "common/logging.hh"

namespace forms::arch {

int
effectiveBits(uint32_t value)
{
    int bits = 0;
    while (value) {
        ++bits;
        value >>= 1;
    }
    return bits;
}

int
fragmentEic(const uint32_t *values, size_t n)
{
    uint32_t merged = 0;
    for (size_t i = 0; i < n; ++i)
        merged |= values[i];
    return effectiveBits(merged);
}

int
fragmentEic(const std::vector<uint32_t> &values)
{
    return fragmentEic(values.data(), values.size());
}

ShiftRegisterBank::ShiftRegisterBank(int input_bits, int lanes)
    : inputBits_(input_bits), lanes_(lanes),
      regs_(static_cast<size_t>(lanes), 0)
{
    FORMS_ASSERT(input_bits >= 1 && input_bits <= 32, "bad register width");
    FORMS_ASSERT(lanes >= 1, "bank needs at least one lane");
}

void
ShiftRegisterBank::load(const std::vector<uint32_t> &values)
{
    FORMS_ASSERT(static_cast<int>(values.size()) == lanes_,
                 "load size != lanes");
    const uint32_t mask = inputBits_ == 32
        ? 0xffffffffu : ((1u << inputBits_) - 1);
    for (int i = 0; i < lanes_; ++i) {
        FORMS_ASSERT((values[static_cast<size_t>(i)] & ~mask) == 0,
                     "input exceeds register width");
        regs_[static_cast<size_t>(i)] = values[static_cast<size_t>(i)];
    }
}

std::vector<uint8_t>
ShiftRegisterBank::shiftCycle()
{
    std::vector<uint8_t> bits(static_cast<size_t>(lanes_));
    const int top = inputBits_ - 1;
    for (int i = 0; i < lanes_; ++i) {
        uint32_t &r = regs_[static_cast<size_t>(i)];
        bits[static_cast<size_t>(i)] =
            static_cast<uint8_t>((r >> top) & 1u);
        r = (r << 1) & (inputBits_ == 32
                        ? 0xffffffffu : ((1u << inputBits_) - 1));
    }
    return bits;
}

bool
ShiftRegisterBank::allDrained() const
{
    // NOR per register (true when the register is all-zero), AND across
    // the bank — the paper's trigger condition.
    for (uint32_t r : regs_)
        if (r != 0)
            return false;
    return true;
}

int
ShiftRegisterBank::remainingCycles() const
{
    uint32_t merged = 0;
    for (uint32_t r : regs_)
        merged |= r;
    return effectiveBits(merged);
}

EicStats::EicStats(int input_bits)
    : inputBits_(input_bits), hist_(input_bits + 1)
{
}

void
EicStats::record(int eic)
{
    FORMS_ASSERT(eic >= 0 && eic <= inputBits_, "eic out of range");
    hist_.add(eic);
}

void
EicStats::recordVector(const std::vector<uint32_t> &values, int frag_size)
{
    FORMS_ASSERT(frag_size >= 1, "bad fragment size");
    // Validate the whole vector up front: a value wider than the
    // configured input grid means the caller fed unquantized (or
    // saturated) activations, which would otherwise surface as an
    // opaque assert deep inside record(). Fail with the offending
    // value so calibration errors are actionable.
    const uint32_t limit = inputBits_ >= 32
        ? 0xffffffffu : ((1u << inputBits_) - 1u);
    for (size_t i = 0; i < values.size(); ++i) {
        if (values[i] > limit) {
            fatal("EicStats::recordVector: value %u at index %zu "
                  "exceeds the %d-bit input grid (max %u) — quantize "
                  "or clamp activations before recording EIC",
                  values[i], i, inputBits_, limit);
        }
    }
    for (size_t at = 0; at < values.size(); at += static_cast<size_t>(frag_size)) {
        const size_t n =
            std::min<size_t>(static_cast<size_t>(frag_size),
                             values.size() - at);
        record(fragmentEic(values.data() + at, n));
    }
}

double
EicStats::cycleSavings() const
{
    if (hist_.total() == 0)
        return 0.0;
    return 1.0 - averageEic() / static_cast<double>(inputBits_);
}

} // namespace forms::arch
