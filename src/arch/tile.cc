#include "arch/tile.hh"

#include <algorithm>
#include <cmath>

namespace forms::arch {

ChipOrg
formsChipOrg()
{
    ChipOrg org;
    org.edramKb = 128.0;
    org.busBits = 512.0;
    org.pipeline.cycleNs = 15.2;   // four 4-bit ADCs over 32 cols each
    return org;
}

ChipOrg
isaacChipOrg()
{
    ChipOrg org;
    org.edramKb = 64.0;
    org.busBits = 256.0;
    org.pipeline.cycleNs = 106.6;  // one 8-bit ADC over 128 cols
    return org;
}

ChipAllocation
allocateChip(const ChipOrg &org, const std::vector<LayerDemand> &demands)
{
    FORMS_ASSERT(!demands.empty(), "no layers to allocate");
    ChipAllocation alloc;

    // Base assignment: one copy of each layer.
    double total_work = 0.0;
    for (const auto &d : demands) {
        FORMS_ASSERT(d.crossbars > 0, "layer '%s' has no crossbars",
                     d.name.c_str());
        total_work += static_cast<double>(d.crossbars) *
            static_cast<double>(d.presentations) *
            std::max(1.0, d.initiationCycles);
    }

    const int64_t budget = org.totalCrossbars();
    int64_t base_crossbars = 0;
    for (const auto &d : demands)
        base_crossbars += d.crossbars;

    for (const auto &d : demands) {
        LayerAllocation la;
        la.name = d.name;
        la.crossbars = d.crossbars;
        la.mcus = (d.crossbars + org.crossbarsPerMcu - 1) /
            org.crossbarsPerMcu;
        la.presentations = d.presentations;
        la.initiationCycles = std::max(1.0, d.initiationCycles);

        // Replicate proportionally to this layer's share of the work,
        // within the remaining budget (floor; at least one copy).
        const double work = static_cast<double>(d.crossbars) *
            static_cast<double>(d.presentations) * la.initiationCycles;
        const double share = work / total_work;
        const int64_t ideal = static_cast<int64_t>(
            share * static_cast<double>(budget) /
            static_cast<double>(d.crossbars));
        la.replicas = std::max<int64_t>(1, ideal);

        const PipelineTiming t = layerPipelineTiming(
            org.pipeline, static_cast<uint64_t>(
                (d.presentations + la.replicas - 1) / la.replicas),
            la.initiationCycles, d.pools);
        la.latencyNs = t.totalNs;
        la.bufferKb = static_cast<double>(d.outputActivations) * 2.0 /
            1024.0;   // 16-bit activations
        alloc.layers.push_back(la);

        alloc.crossbarsUsed += la.crossbars * la.replicas;
        alloc.mcusUsed += la.mcus * la.replicas;
        alloc.edramTrafficKb += la.bufferKb;
        alloc.frameLatencyNs =
            std::max(alloc.frameLatencyNs, la.latencyNs);
    }
    alloc.tilesUsed = (alloc.mcusUsed + org.mcusPerTile - 1) /
        org.mcusPerTile;
    alloc.fits = alloc.crossbarsUsed <= budget;
    if (alloc.frameLatencyNs > 0.0)
        alloc.framesPerSecond = 1e9 / alloc.frameLatencyNs;
    return alloc;
}

} // namespace forms::arch
