/**
 * @file
 * Weight-to-crossbar mapping (paper §IV-A, Figure 5).
 *
 * A compressed layer's 2-d weight format (kept rows x kept cols) is
 * tiled onto physical crossbars: q*m rows (q fragments of m rows) per
 * crossbar and p*n weight columns, each weight occupying
 * cellsPerWeight adjacent cell columns. Only magnitudes are stored;
 * each fragment's sign lives in the 1R sign indicator. The same
 * FragmentPlan that drove ADMM polarization drives the mapping, so
 * sub-array columns are single-signed by construction.
 */

#ifndef FORMS_ARCH_MAPPING_HH
#define FORMS_ARCH_MAPPING_HH

#include "admm/compressor.hh"
#include "reram/device.hh"

namespace forms::arch {

/** Geometry of the physical mapping. */
struct MappingConfig
{
    int xbarRows = 128;
    int xbarCols = 128;     //!< cell columns
    int cellBits = 2;
    int weightBits = 8;     //!< magnitude bits
    int inputBits = 16;
    int fragSize = 8;
    int spareXbars = 0;     //!< spare crossbars per layer for remapping

    /** Cell columns per weight. */
    int cellsPerWeight() const
    {
        return reram::cellsPerWeight(weightBits, cellBits);
    }

    /** Weight columns that fit on one crossbar. */
    int weightColsPerXbar() const { return xbarCols / cellsPerWeight(); }

    /** Fragments stacked vertically per crossbar. */
    int fragsPerXbar() const { return xbarRows / fragSize; }
};

/** One weight's placement: magnitude plus indices. */
struct MappedWeight
{
    uint32_t magnitude = 0;   //!< quantized |w| on the weight grid
};

/** One crossbar's worth of a layer. */
struct MappedCrossbar
{
    int rows = 0;        //!< used physical rows
    int weightCols = 0;  //!< used weight columns
    std::vector<int> inputIndex;    //!< per used row: layer input index
    std::vector<int> outputIndex;   //!< per used weight col: output index
    std::vector<uint32_t> magnitude;//!< rows x weightCols, row-major
    std::vector<int8_t> fragSign;   //!< per (weightCol, fragment)
    int fragsUsed = 0;   //!< vertical fragments actually populated
    int physId = -1;     //!< physical crossbar id (primaries start at 0;
                         //!< remapping points this at a spare)

    uint32_t mag(int r, int wc) const
    {
        return magnitude[static_cast<size_t>(r) *
                         static_cast<size_t>(weightCols) +
                         static_cast<size_t>(wc)];
    }

    int8_t sign(int wc, int frag) const
    {
        return fragSign[static_cast<size_t>(wc) *
                        static_cast<size_t>(fragsUsed) +
                        static_cast<size_t>(frag)];
    }
};

/** A whole layer mapped onto crossbars. */
struct MappedLayer
{
    MappingConfig cfg;
    float scale = 0.0f;          //!< weight grid spacing
    int64_t logicalRows = 0;     //!< kept rows (inputs)
    int64_t logicalCols = 0;     //!< kept cols (outputs)
    std::vector<MappedCrossbar> crossbars;

    int64_t numCrossbars() const
    {
        return static_cast<int64_t>(crossbars.size());
    }
};

/**
 * Map a compressed layer. Pruned rows/columns are compacted away; the
 * surviving rows keep the polarization-plan ordering so fragments land
 * intact in sub-array columns.
 *
 * @param state per-layer ADMM state (weights + plan + mask + signs)
 * @param cfg physical geometry
 */
MappedLayer mapLayer(const admm::LayerState &state,
                     const MappingConfig &cfg);

/**
 * Reference integer MVM over a mapped layer: for each output index,
 * sum_{rows} sign * magnitude * input. Used to verify the analog
 * engine bit-for-bit.
 *
 * @param layer the mapping
 * @param inputs quantized layer inputs indexed by inputIndex
 */
std::vector<int64_t> referenceMvm(const MappedLayer &layer,
                                  const std::vector<uint32_t> &inputs);

} // namespace forms::arch

#endif // FORMS_ARCH_MAPPING_HH
