/**
 * @file
 * Tile / chip composition (paper §IV-C, Figure 10): mapped layers are
 * allocated to MCUs (8 crossbars each), MCUs to tiles (12 per tile,
 * plus the digital unit and eDRAM), tiles to the chip (168 tiles,
 * mesh + HyperTransport). The allocator also models the eDRAM
 * capacity/bandwidth constraints the paper raises (FORMS needs 128 KB
 * and a 512-bit bus vs ISAAC's 64 KB / 256-bit) and produces a
 * per-frame latency/energy roll-up through the pipeline model.
 */

#ifndef FORMS_ARCH_TILE_HH
#define FORMS_ARCH_TILE_HH

#include "arch/mapping.hh"
#include "arch/pipeline.hh"
#include "reram/components.hh"

namespace forms::arch {

/** Chip organization for allocation. */
struct ChipOrg
{
    int crossbarsPerMcu = 8;
    int mcusPerTile = 12;
    int tiles = 168;
    double edramKb = 128.0;      //!< per tile (FORMS: 128, ISAAC: 64)
    double busBits = 512.0;      //!< tile bus width (FORMS: 512)
    double edramEnergyPjPerByte = 1.1;
    PipelineConfig pipeline;

    /** Total crossbars on the chip. */
    int64_t totalCrossbars() const
    {
        return static_cast<int64_t>(crossbarsPerMcu) * mcusPerTile *
            tiles;
    }
};

/** Allocation of one layer onto the chip. */
struct LayerAllocation
{
    std::string name;
    int64_t crossbars = 0;     //!< crossbars of one copy
    int64_t mcus = 0;          //!< MCUs of one copy (ceil / 8)
    int64_t replicas = 1;      //!< copies for pipeline balance
    int64_t presentations = 0;
    double initiationCycles = 0.0;  //!< bit cycles per presentation
    double latencyNs = 0.0;    //!< per-frame latency of this layer
    double bufferKb = 0.0;     //!< output buffer demand per tile
};

/** Whole-network allocation result. */
struct ChipAllocation
{
    std::vector<LayerAllocation> layers;
    int64_t crossbarsUsed = 0;
    int64_t mcusUsed = 0;
    int64_t tilesUsed = 0;
    bool fits = false;          //!< within the chip's crossbar budget
    double frameLatencyNs = 0.0;//!< pipelined frame latency (max stage)
    double framesPerSecond = 0.0;
    double edramTrafficKb = 0.0;//!< activation traffic per frame
};

/** Demand description of one layer (from the mapper + workload). */
struct LayerDemand
{
    std::string name;
    int64_t crossbars = 0;       //!< mapLayer(...).numCrossbars()
    int64_t presentations = 0;   //!< sliding windows per frame
    int64_t outputActivations = 0;
    double initiationCycles = 0.0;  //!< rowGroups * effBits
    bool pools = false;
};

/**
 * Allocate a network onto the chip: assign each layer its crossbars,
 * then distribute the remaining budget as replicas proportionally to
 * each layer's work (balanced pipeline), and roll up latency, FPS and
 * eDRAM traffic.
 */
ChipAllocation allocateChip(const ChipOrg &org,
                            const std::vector<LayerDemand> &demands);

/** FORMS default organization (Table IV). */
ChipOrg formsChipOrg();

/** ISAAC organization (64 KB eDRAM, 256-bit bus, coarse pipeline). */
ChipOrg isaacChipOrg();

} // namespace forms::arch

#endif // FORMS_ARCH_TILE_HH
