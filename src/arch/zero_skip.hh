/**
 * @file
 * Zero-skipping input scheduler (paper §IV-B, Figures 7 & 9).
 *
 * Inputs enter the crossbar bit-serially, MSB first. The *effective
 * bits* of an input are its bits below the leading zeros; the
 * *effective input cycles* (EIC) of a fragment is the maximum effective
 * bits over its inputs — the minimum number of bit cycles needed to
 * feed every contributing bit. The circuit realizes this with a NOR
 * over each parallel-in/serial-out shift register and an AND across a
 * fragment's registers that fires the ADC early; both the behavioral
 * shortcut (max bit-length) and a cycle-accurate register model are
 * provided and cross-checked in tests.
 */

#ifndef FORMS_ARCH_ZERO_SKIP_HH
#define FORMS_ARCH_ZERO_SKIP_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"

namespace forms::arch {

/** Bit length of an input value (0 for 0): its effective bits. */
int effectiveBits(uint32_t value);

/**
 * Effective input cycles for one fragment of inputs: max effective
 * bits, i.e. the cycles the zero-skip controller cannot avoid.
 * All-zero fragments take 0 cycles (fully skipped).
 */
int fragmentEic(const uint32_t *values, size_t n);
int fragmentEic(const std::vector<uint32_t> &values);

/**
 * Cycle-accurate model of the skip circuit: parallel-in/serial-out
 * shift registers with a NOR per register and an AND across registers.
 * Each shiftCycle() emits one input bit per lane (MSB first) and
 * reports whether every register has drained (the AND output).
 */
class ShiftRegisterBank
{
  public:
    /**
     * @param input_bits register width (e.g. 16)
     * @param lanes fragment size (registers in the bank)
     */
    ShiftRegisterBank(int input_bits, int lanes);

    /** Parallel-load a new fragment of inputs. */
    void load(const std::vector<uint32_t> &values);

    /**
     * Shift one cycle: returns the bit emitted by each lane (the MSB
     * of the remaining contents).
     */
    std::vector<uint8_t> shiftCycle();

    /** AND of the per-lane NORs: true when all registers are zero. */
    bool allDrained() const;

    /** Bits remaining before the bank drains completely. */
    int remainingCycles() const;

    int inputBits() const { return inputBits_; }
    int lanes() const { return lanes_; }

  private:
    int inputBits_;
    int lanes_;
    std::vector<uint32_t> regs_;
};

/**
 * EIC statistics collector for Figure 8: a histogram of per-fragment
 * EIC values (bins 0..input_bits) plus the running average.
 */
class EicStats
{
  public:
    explicit EicStats(int input_bits = 16);

    /** Record the EIC of one fragment presentation. */
    void record(int eic);

    /** Record a whole activation vector split into fragments. */
    void recordVector(const std::vector<uint32_t> &values, int frag_size);

    const Histogram &histogram() const { return hist_; }

    /** Average EIC over all recorded fragments. */
    double averageEic() const { return hist_.mean(); }

    /** Fraction of cycles saved vs. always feeding input_bits. */
    double cycleSavings() const;

    int inputBits() const { return inputBits_; }

  private:
    int inputBits_;
    Histogram hist_;
};

} // namespace forms::arch

#endif // FORMS_ARCH_ZERO_SKIP_HH
