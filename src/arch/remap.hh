/**
 * @file
 * Spare-crossbar remapping (fault tolerance for dead bitlines).
 *
 * A mapped layer owns `MappingConfig::spareXbars` physically distinct
 * spare crossbars in addition to its primaries. When a primary's fault
 * draw kills a cell column the fragments use, the remap pass reroutes
 * that whole tile to a clean spare by swapping its *physical identity*
 * only: the crossbar keeps its position in `MappedLayer::crossbars`,
 * its row/column indices and its fragment signs, so the accumulation
 * order — and therefore `referenceMvm` and every bitwise determinism
 * contract — is untouched. Only the conductances actually programmed
 * change (to the spare's fault pattern, which is clean in the used
 * window by construction).
 *
 * Only column-kill faults trigger remapping; stuck-at and drift faults
 * degrade accuracy but do not lose whole output columns, so they stay
 * in place (matching the paper's variation-tolerance framing).
 */

#ifndef FORMS_ARCH_REMAP_HH
#define FORMS_ARCH_REMAP_HH

#include "arch/mapping.hh"
#include "reram/faults.hh"

namespace forms::arch {

/** One rerouted tile. */
struct RemapEntry
{
    int crossbar = 0;   //!< index into MappedLayer::crossbars
    int fromPhys = 0;   //!< original physical id
    int toPhys = 0;     //!< spare physical id now programmed
    int deadColumn = 0; //!< first dead used cell column that forced it
};

/** Outcome of remapping one layer. */
struct RemapReport
{
    int faultyCrossbars = 0;   //!< primaries with a dead used column
    int remappedCrossbars = 0; //!< tiles moved onto spares
    int sparesUsed = 0;        //!< spares consumed (incl. dead spares)
    int sparesLeft = 0;        //!< spare budget remaining
    std::vector<RemapEntry> entries;

    void
    merge(const RemapReport &o)
    {
        faultyCrossbars += o.faultyCrossbars;
        remappedCrossbars += o.remappedCrossbars;
        sparesUsed += o.sparesUsed;
        sparesLeft += o.sparesLeft;
        entries.insert(entries.end(), o.entries.begin(),
                       o.entries.end());
    }
};

/**
 * Reroute every crossbar of `layer` whose used cell columns land on a
 * dead physical column to a clean spare. Spares that are themselves
 * dead in the used window are burned (consumed but skipped). fatal()s
 * naming the node, crossbar and column when the spare budget runs out.
 *
 * @param layer the mapped layer; physIds are rewritten in place
 * @param faults the fleet fault model
 * @param fault_key the layer's fault identity (graph node id)
 * @param node_name human-readable owner for diagnostics
 */
RemapReport remapFaultyCrossbars(MappedLayer &layer,
                                 const reram::FaultMap &faults,
                                 uint64_t fault_key,
                                 const char *node_name);

} // namespace forms::arch

#endif // FORMS_ARCH_REMAP_HH
