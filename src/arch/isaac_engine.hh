/**
 * @file
 * Functional model of ISAAC's offset (biased-weight) compute path —
 * the baseline FORMS argues against (paper §II-B).
 *
 * ISAAC stores w' = w + 2^(b-1) so every cell is nonnegative, and
 * fixes the result digitally: for every input bit cycle it counts the
 * 1-bits across the active rows and subtracts popcount * 2^(b-1)
 * (shifted by the input bit significance) from each column's
 * accumulator. This module implements that path on the same crossbar
 * substrate (coarse-grained: all rows active at once) so the two sign
 * schemes can be compared functionally and in conversion counts.
 */

#ifndef FORMS_ARCH_ISAAC_ENGINE_HH
#define FORMS_ARCH_ISAAC_ENGINE_HH

#include <cstdint>
#include <vector>

#include "reram/adc.hh"
#include "reram/crossbar.hh"
#include "tensor/tensor.hh"

namespace forms::arch {

/** Configuration of the offset-encoded crossbar computation. */
struct IsaacConfig
{
    int xbarRows = 128;
    int xbarCols = 128;     //!< cell columns
    int weightBits = 8;     //!< signed weight precision (two's range)
    int cellBits = 2;
    int inputBits = 16;
    int adcBits = 8;        //!< ISAAC's shared 8-bit ADC
    double adcFreqGhz = 1.2;

    int cellsPerWeight() const
    {
        return (weightBits + cellBits - 1) / cellBits;
    }

    /** The additive offset 2^(b-1) making all weights nonnegative. */
    int64_t offset() const { return int64_t{1} << (weightBits - 1); }
};

/** Execution statistics (comparable with EngineStats). */
struct IsaacStats
{
    uint64_t bitCycles = 0;
    uint64_t adcSamples = 0;
    uint64_t biasSubtractions = 0;   //!< offset-fixup operations
    double adcEnergyPj = 0.0;
};

/**
 * Offset-encoded crossbar engine for one weight matrix.
 *
 * Weights are signed integers in [-2^(b-1), 2^(b-1)-1]; the engine
 * stores w + offset in bit-sliced cells and reconstructs the signed
 * dot product digitally via the popcount fixup.
 */
class IsaacEngine
{
  public:
    /**
     * @param weights signed quantized weights, rank-2 (rows x cols)
     *        in integer units (values must fit weightBits)
     * @param cfg geometry and precision
     */
    IsaacEngine(const std::vector<std::vector<int32_t>> &weights,
                IsaacConfig cfg);

    /**
     * Signed matrix-vector product: inputs are unsigned quantized
     * activations; result is exact in integer units.
     */
    std::vector<int64_t> mvm(const std::vector<uint32_t> &inputs,
                             IsaacStats *stats = nullptr) const;

    /** Direct signed reference for verification. */
    std::vector<int64_t>
    reference(const std::vector<uint32_t> &inputs) const;

    int rows() const { return rows_; }
    int cols() const { return cols_; }

  private:
    IsaacConfig cfg_;
    int rows_, cols_;
    std::vector<std::vector<int32_t>> signedWeights_;
    reram::CrossbarArray array_;
    reram::AdcModel adc_;
};

} // namespace forms::arch

#endif // FORMS_ARCH_ISAAC_ENGINE_HH
