#include "arch/remap.hh"

#include "common/logging.hh"

namespace forms::arch {

RemapReport
remapFaultyCrossbars(MappedLayer &layer, const reram::FaultMap &faults,
                     uint64_t fault_key, const char *node_name)
{
    RemapReport rep;
    rep.sparesLeft = layer.cfg.spareXbars;
    if (!faults.config().any() ||
        faults.config().columnKillRate <= 0.0)
        return rep;

    const int primaries = static_cast<int>(layer.crossbars.size());
    const int cells = layer.cfg.cellsPerWeight();
    int next_spare = 0;

    for (size_t xi = 0; xi < layer.crossbars.size(); ++xi) {
        MappedCrossbar &xb = layer.crossbars[xi];
        const int used_cols = xb.weightCols * cells;
        const int phys = xb.physId >= 0 ? xb.physId
                                        : static_cast<int>(xi);
        const int dead = faults.firstDeadColumn(
            fault_key, phys, layer.cfg.xbarCols, used_cols);
        if (dead < 0)
            continue;
        ++rep.faultyCrossbars;

        // Walk the spare pool for a crossbar that is clean over this
        // tile's used window; dead spares are burned permanently.
        int target = -1;
        while (next_spare < layer.cfg.spareXbars) {
            const int spare_phys = primaries + next_spare;
            ++next_spare;
            ++rep.sparesUsed;
            if (faults.firstDeadColumn(fault_key, spare_phys,
                                       layer.cfg.xbarCols,
                                       used_cols) < 0) {
                target = spare_phys;
                break;
            }
        }
        rep.sparesLeft = layer.cfg.spareXbars - next_spare;
        if (target < 0)
            fatal("remap: node %s crossbar %zu has a dead cell column "
                  "%d and no spare crossbar is left (budget %d, all "
                  "consumed); raise MappingConfig::spareXbars",
                  node_name ? node_name : "?", xi, dead,
                  layer.cfg.spareXbars);

        RemapEntry e;
        e.crossbar = static_cast<int>(xi);
        e.fromPhys = phys;
        e.toPhys = target;
        e.deadColumn = dead;
        rep.entries.push_back(e);
        xb.physId = target;
        ++rep.remappedCrossbars;
    }
    return rep;
}

} // namespace forms::arch
