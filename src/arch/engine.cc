#include "arch/engine.hh"

#include <algorithm>
#include <cmath>

namespace forms::arch {

void
EngineStats::merge(const EngineStats &other)
{
    presentations += other.presentations;
    bitCycles += other.bitCycles;
    skippedCycles += other.skippedCycles;
    adcSamples += other.adcSamples;
    quantValues += other.quantValues;
    quantClipped += other.quantClipped;
    adcEnergyPj += other.adcEnergyPj;
    crossbarEnergyPj += other.crossbarEnergyPj;
    timeNs += other.timeNs;
}

CrossbarEngine::CrossbarEngine(const MappedLayer &layer, EngineConfig cfg)
    : layer_(layer), cfg_(cfg),
      adc_({cfg.adcBits > 0
                ? cfg.adcBits
                : reram::AdcModel::losslessBits(layer.cfg.fragSize,
                                                layer.cfg.cellBits),
            cfg.adcFreqGhz}),
      rng_(cfg.variationSeed)
{
    // The mapper sliced magnitudes at the mapping's cell precision;
    // programming them into a device model with a different precision
    // would fail cell-by-cell deep in the program loop.
    FORMS_ASSERT(cfg_.cell.bitsPerCell == layer.cfg.cellBits,
                 "engine: device model stores %d bits/cell but the "
                 "mapping sliced weights at %d bits/cell — set "
                 "EngineConfig::cell.bitsPerCell to match the "
                 "MappingConfig",
                 cfg_.cell.bitsPerCell, layer.cfg.cellBits);

    // ADC full scale covers the worst-case fragment column sum; when
    // the resolution affords more codes than that (the lossless
    // setting), stretch the scale to the code count so the step is
    // exactly one level and integer sums convert exactly.
    const int frag_max =
        layer_.cfg.fragSize * ((1 << layer_.cfg.cellBits) - 1);
    fullScale_ = static_cast<double>(
        std::max(frag_max, adc_.config().codes() - 1));

    const int cells = layer_.cfg.cellsPerWeight();
    for (const auto &xb : layer_.crossbars) {
        reram::CrossbarArray arr(
            std::max(1, xb.rows), std::max(1, xb.weightCols * cells),
            cfg_.cell, cfg_.cell.variationSigma > 0.0 ? &rng_ : nullptr);
        for (int r = 0; r < xb.rows; ++r) {
            for (int wc = 0; wc < xb.weightCols; ++wc) {
                const auto levels = reram::sliceMagnitude(
                    xb.mag(r, wc), layer_.cfg.weightBits,
                    layer_.cfg.cellBits);
                for (int s = 0; s < cells; ++s) {
                    arr.programCell(r, wc * cells + s,
                                    levels[static_cast<size_t>(s)]);
                }
            }
        }
        arrays_.push_back(std::move(arr));
    }

    // Output extent and the ADC-limited per-step time of the slowest
    // crossbar depend only on the mapping geometry: precompute once.
    for (const auto &xb : layer_.crossbars)
        for (int idx : xb.outputIndex)
            outputExtent_ = std::max(outputExtent_, idx + 1);
    const double sample_ns = adc_.sampleTimeNs();
    for (const auto &xb : layer_.crossbars) {
        const int cell_cols = xb.weightCols * cells;
        const double per_step = std::ceil(
            static_cast<double>(cell_cols) /
            static_cast<double>(cfg_.adcsPerCrossbar)) * sample_ns;
        worstStepNs_ = std::max(worstStepNs_, per_step);
    }

    // Re-lay the realized conductances into contiguous tiles and
    // precompute the per-fragment read energy and the exact powers of
    // two the bit loop needs: the hot path then touches only dense
    // arrays and a dispatch table.
    kern_ = &simd::kernels(cfg_.simdMode);
    tiles_.reserve(arrays_.size());
    for (size_t xi = 0; xi < arrays_.size(); ++xi) {
        const auto &xb = layer_.crossbars[xi];
        const auto &arr = arrays_[xi];
        XbarTile tile;
        tile.cellCols = xb.weightCols * cells;
        tile.lvl.resize(static_cast<size_t>(xb.rows) *
                        static_cast<size_t>(tile.cellCols));
        for (int r = 0; r < xb.rows; ++r)
            for (int cc = 0; cc < tile.cellCols; ++cc)
                tile.lvl[static_cast<size_t>(r) *
                             static_cast<size_t>(tile.cellCols) +
                         static_cast<size_t>(cc)] =
                    arr.cellAnalogLevel(r, cc);

        // Hard-fault overlay: deterministic per (faultKey, physId),
        // applied to the snapshot only — the programmed arrays (and
        // their energy accounting) are what the write path produced.
        if (cfg_.faults && cfg_.faults->config().any()) {
            const int phys = xb.physId >= 0 ? xb.physId
                                            : static_cast<int>(xi);
            const reram::CrossbarFaults f = cfg_.faults->draw(
                cfg_.faultKey, phys, layer_.cfg.xbarRows,
                layer_.cfg.xbarCols);
            const double lrs =
                static_cast<double>(cfg_.cell.maxLevel());
            bool any_here = false;
            for (int r = 0; r < xb.rows; ++r) {
                for (int cc = 0; cc < tile.cellCols; ++cc) {
                    double &lvl =
                        tile.lvl[static_cast<size_t>(r) *
                                     static_cast<size_t>(tile.cellCols) +
                                 static_cast<size_t>(cc)];
                    if (f.columnDead(cc)) {
                        lvl = 0.0;
                        any_here = true;
                        continue;
                    }
                    switch (f.at(r, cc)) {
                      case reram::FaultKind::StuckLrs:
                        lvl = lrs;
                        any_here = true;
                        ++faultyCells_;
                        break;
                      case reram::FaultKind::StuckHrs:
                        lvl = 0.0;
                        any_here = true;
                        ++faultyCells_;
                        break;
                      case reram::FaultKind::Drift:
                        lvl *= f.driftAt(r, cc);
                        any_here = true;
                        ++faultyCells_;
                        break;
                      case reram::FaultKind::None:
                        break;
                    }
                }
            }
            if (any_here)
                ++faultyCrossbars_;
        }
        tile.fragReadEpj.resize(static_cast<size_t>(xb.fragsUsed));
        for (int f = 0; f < xb.fragsUsed; ++f) {
            const int rows_here =
                std::min(layer_.cfg.fragSize, xb.rows - f * layer_.cfg.fragSize);
            tile.fragReadEpj[static_cast<size_t>(f)] =
                arr.readEnergyPj(rows_here, sample_ns);
        }
        tiles_.push_back(std::move(tile));
    }
    bitWeight_.resize(static_cast<size_t>(layer_.cfg.inputBits));
    for (int p = 0; p < layer_.cfg.inputBits; ++p)
        bitWeight_[static_cast<size_t>(p)] = std::pow(2.0, p);
    cellWeight_.resize(static_cast<size_t>(cells));
    for (int s = 0; s < cells; ++s)
        cellWeight_[static_cast<size_t>(s)] =
            std::pow(2.0, s * layer_.cfg.cellBits);
}

uint64_t
CrossbarEngine::presentationSeed(uint64_t seed, uint64_t index)
{
    // splitmix64 finalizer over a golden-ratio combination: adjacent
    // indices land in statistically independent streams.
    uint64_t x = seed + 0x9e3779b97f4a7c15ULL * (index + 1);
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

void
CrossbarEngine::mvmOne(const std::vector<uint32_t> &inputs,
                       uint64_t pres_index, std::vector<double> &out,
                       EngineStats &stats) const
{
    out.assign(static_cast<size_t>(outputExtent_), 0.0);

    const int m = layer_.cfg.fragSize;
    const int cells = layer_.cfg.cellsPerWeight();
    const int in_bits = layer_.cfg.inputBits;
    const double adc_epj = adc_.energyPerSamplePj();
    const bool noisy_reads = cfg_.readNoiseSigma > 0.0;
    // The same step AdcModel::quantize/reconstruct derive per call;
    // hoisting the division out of the column loop is bitwise neutral.
    const int adc_top = adc_.config().codes() - 1;
    const double adc_step = fullScale_ / static_cast<double>(adc_top);
    Rng pres_rng(presentationSeed(cfg_.variationSeed, pres_index));
    const simd::Kernels &k = *kern_;

    // Per-thread scratch: mvmOne runs concurrently on pool workers and
    // a presentation must not pay heap allocations in the hot loop.
    static thread_local std::vector<double> acc_bit;
    static thread_local std::vector<double> acc;
    static thread_local std::vector<uint32_t> in_vals;

    EngineStats local;
    local.presentations = 1;

    for (size_t xi = 0; xi < layer_.crossbars.size(); ++xi) {
        const auto &xb = layer_.crossbars[xi];
        const XbarTile &tile = tiles_[xi];
        const int cell_cols = tile.cellCols;

        // Gather this crossbar's activations once; the bit loop then
        // consumes them from registers instead of re-materializing a
        // row_bits vector per presented bit.
        in_vals.resize(static_cast<size_t>(xb.rows));
        for (int r = 0; r < xb.rows; ++r)
            in_vals[static_cast<size_t>(r)] = inputs[static_cast<size_t>(
                xb.inputIndex[static_cast<size_t>(r)])];

        acc.resize(static_cast<size_t>(cell_cols));
        acc_bit.resize(static_cast<size_t>(cell_cols));

        for (int f = 0; f < xb.fragsUsed; ++f) {
            const int r0 = f * m;
            const int rows_here = std::min(m, xb.rows - r0);

            // Zero-skip: the controller inspects the fragment's shift
            // registers and feeds only the effective bits.
            uint32_t merged = 0;
            for (int r = r0; r < r0 + rows_here; ++r)
                merged |= in_vals[static_cast<size_t>(r)];
            const int eic = cfg_.zeroSkip
                ? effectiveBits(merged) : in_bits;
            local.skippedCycles +=
                static_cast<uint64_t>(in_bits - eic);

            const double *frag_lvl = tile.lvl.data() +
                static_cast<size_t>(r0) * static_cast<size_t>(cell_cols);
            std::fill(acc.begin(), acc.end(), 0.0);
            for (int p = eic - 1; p >= 0; --p) {
                ++local.bitCycles;
                local.crossbarEnergyPj +=
                    tile.fragReadEpj[static_cast<size_t>(f)];

                // Stride-1 row sweep: add each active row's level
                // panel into acc_bit. Per column this reproduces
                // columnSum's ascending-row additions exactly, for any
                // vector width (elementwise rule, DESIGN.md §6), while
                // skipping inactive rows like the bit-serial hardware.
                std::fill(acc_bit.begin(), acc_bit.end(), 0.0);
                for (int r = 0; r < rows_here; ++r) {
                    if ((in_vals[static_cast<size_t>(r0 + r)] >> p) & 1u)
                        k.addF64(acc_bit.data(),
                                 frag_lvl + static_cast<size_t>(r) *
                                     static_cast<size_t>(cell_cols),
                                 cell_cols);
                }

                // Fused noise -> ADC -> shift-accumulate per column,
                // preserving the reference operation order: lognormal
                // draws in ascending column order, clamp(lround(x /
                // step)) * step, then one multiply by the exact power
                // of two for this bit.
                for (int cc = 0; cc < cell_cols; ++cc) {
                    double analog = acc_bit[static_cast<size_t>(cc)];
                    if (noisy_reads) {
                        analog *=
                            pres_rng.lognormal(0.0, cfg_.readNoiseSigma);
                    }
                    const int count = std::clamp(
                        static_cast<int>(std::lround(analog / adc_step)),
                        0, adc_top);
                    acc[static_cast<size_t>(cc)] +=
                        static_cast<double>(count) * adc_step *
                        bitWeight_[static_cast<size_t>(p)];
                    ++local.adcSamples;
                    local.adcEnergyPj += adc_epj;
                }
            }

            // Digital shift-and-add across cell significance plus the
            // signed accumulation steered by the sign indicator.
            for (int wc = 0; wc < xb.weightCols; ++wc) {
                double weight_sum = 0.0;
                for (int s = 0; s < cells; ++s) {
                    weight_sum += acc[static_cast<size_t>(wc * cells + s)] *
                        cellWeight_[static_cast<size_t>(s)];
                }
                out[static_cast<size_t>(
                    xb.outputIndex[static_cast<size_t>(wc)])] +=
                    static_cast<double>(xb.sign(wc, f)) * weight_sum;
            }
        }
    }

    // ADC-limited serial time: each (fragment, bit) step converts
    // cell_cols columns on adcsPerCrossbar parallel ADCs. Crossbars
    // operate in parallel, so charge the slowest one.
    local.timeNs = worstStepNs_ * static_cast<double>(local.bitCycles) /
        std::max<double>(1.0, static_cast<double>(layer_.crossbars.size()));

    stats.merge(local);
}

std::vector<double>
CrossbarEngine::mvm(const std::vector<uint32_t> &inputs,
                    EngineStats *stats)
{
    // Semantically a batch of one — same presentation stream, same
    // stats merge — without mvmBatch's batch-container scaffolding.
    std::vector<double> out;
    EngineStats local;
    mvmOne(inputs, nextPresentation_++, out, local);
    if (stats)
        stats->merge(local);
    return out;
}

std::vector<std::vector<double>>
CrossbarEngine::mvmBatch(const std::vector<std::vector<uint32_t>> &batch,
                         EngineStats *stats, ThreadPool *pool)
{
    return mvmRange(batch, 0, batch.size(), stats, pool);
}

std::vector<std::vector<double>>
CrossbarEngine::mvmRange(const std::vector<std::vector<uint32_t>> &batch,
                         size_t lo, size_t hi, EngineStats *stats,
                         ThreadPool *pool)
{
    FORMS_ASSERT(lo <= hi && hi <= batch.size(),
                 "mvmRange: slice [%zu, %zu) outside batch of %zu", lo,
                 hi, batch.size());
    const size_t count = hi - lo;
    std::vector<std::vector<double>> outs(count);
    std::vector<EngineStats> per(count);
    const uint64_t base = nextPresentation_;
    nextPresentation_ += count;
    if (count == 0)
        return outs;

    ThreadPool &tp = pool ? *pool : ThreadPool::global();
    tp.parallelFor(
        0, static_cast<int64_t>(count), 1,
        [&](int64_t i, int) {
            const size_t s = static_cast<size_t>(i);
            mvmOne(batch[lo + s], base + static_cast<uint64_t>(i),
                   outs[s], per[s]);
        });

    // Merge per-presentation stats in presentation order: identical
    // floating-point accumulation order to the serial loop.
    if (stats)
        for (const auto &s : per)
            stats->merge(s);
    return outs;
}

std::vector<std::vector<double>>
CrossbarEngine::mvmKeyed(const std::vector<std::vector<uint32_t>> &batch,
                         size_t lo, size_t hi, const uint64_t *keys,
                         EngineStats *stats, EngineStats *per_out,
                         ThreadPool *pool)
{
    FORMS_ASSERT(lo <= hi && hi <= batch.size(),
                 "mvmKeyed: slice [%zu, %zu) outside batch of %zu", lo,
                 hi, batch.size());
    const size_t count = hi - lo;
    std::vector<std::vector<double>> outs(count);
    std::vector<EngineStats> per(count);
    if (count == 0)
        return outs;

    ThreadPool &tp = pool ? *pool : ThreadPool::global();
    tp.parallelFor(
        0, static_cast<int64_t>(count), 1,
        [&](int64_t i, int) {
            const size_t s = static_cast<size_t>(i);
            mvmOne(batch[lo + s], keys[lo + s], outs[s], per[s]);
        });

    // Same fold order as mvmRange: per-presentation stats merge in
    // ascending presentation order, so a keyed run whose keys equal
    // the engine-lifetime indices is bit-identical to mvmRange.
    if (stats)
        for (const auto &s : per)
            stats->merge(s);
    if (per_out)
        for (size_t i = 0; i < count; ++i)
            per_out[lo + i].merge(per[i]);
    return outs;
}

std::vector<float>
dequantizeOutputs(const std::vector<double> &raw, float w_scale,
                  float in_scale)
{
    std::vector<float> out(raw.size());
    const double k = static_cast<double>(w_scale) *
        static_cast<double>(in_scale);
    for (size_t i = 0; i < raw.size(); ++i)
        out[i] = static_cast<float>(raw[i] * k);
    return out;
}

std::vector<uint32_t>
quantizeActivations(const std::vector<float> &x, int bits,
                    float *scale_out)
{
    FORMS_ASSERT(bits >= 1 && bits <= 31, "bad activation bits");
    float mx = 0.0f;
    for (float v : x)
        mx = std::max(mx, v);
    const uint32_t qmax = (1u << bits) - 1;
    const float scale = mx > 0.0f ? mx / static_cast<float>(qmax) : 1.0f;
    std::vector<uint32_t> q(x.size(), 0);
    for (size_t i = 0; i < x.size(); ++i) {
        const float v = x[i];
        if (v <= 0.0f)
            continue;   // post-ReLU activations are nonnegative
        q[i] = std::min<uint32_t>(
            qmax, static_cast<uint32_t>(std::lround(v / scale)));
    }
    if (scale_out)
        *scale_out = scale;
    return q;
}

std::vector<uint32_t>
quantizeActivationsStatic(const std::vector<float> &x, int bits,
                          float scale, uint64_t *clipped_out)
{
    FORMS_ASSERT(bits >= 1 && bits <= 31, "bad activation bits");
    FORMS_ASSERT(scale > 0.0f,
                 "static activation scale must be positive — was the "
                 "calibration table built for this layer?");
    const uint32_t qmax = (1u << bits) - 1;
    std::vector<uint32_t> q(x.size(), 0);
    uint64_t clipped = 0;
    for (size_t i = 0; i < x.size(); ++i) {
        const float v = x[i];
        if (v <= 0.0f)
            continue;   // unsigned encoding: negatives map to zero
        // Saturation test in double, before lround: an extreme
        // outlier (or inf/NaN) must clip to the top code, not feed
        // lround a value outside long's range (UB). NaN fails the
        // comparison and clips too.
        const double code = static_cast<double>(v) /
            static_cast<double>(scale);
        if (!(code < static_cast<double>(qmax) + 0.5)) {
            q[i] = qmax;
            ++clipped;
        } else {
            q[i] = static_cast<uint32_t>(std::lround(code));
        }
    }
    if (clipped_out)
        *clipped_out += clipped;
    return q;
}

} // namespace forms::arch
