#include "arch/engine.hh"

#include <cmath>

namespace forms::arch {

void
EngineStats::merge(const EngineStats &other)
{
    presentations += other.presentations;
    bitCycles += other.bitCycles;
    skippedCycles += other.skippedCycles;
    adcSamples += other.adcSamples;
    adcEnergyPj += other.adcEnergyPj;
    crossbarEnergyPj += other.crossbarEnergyPj;
    timeNs += other.timeNs;
}

CrossbarEngine::CrossbarEngine(const MappedLayer &layer, EngineConfig cfg)
    : layer_(layer), cfg_(cfg),
      adc_({cfg.adcBits > 0
                ? cfg.adcBits
                : reram::AdcModel::losslessBits(layer.cfg.fragSize,
                                                layer.cfg.cellBits),
            cfg.adcFreqGhz}),
      rng_(cfg.variationSeed)
{
    // ADC full scale covers the worst-case fragment column sum; when
    // the resolution affords more codes than that (the lossless
    // setting), stretch the scale to the code count so the step is
    // exactly one level and integer sums convert exactly.
    const int frag_max =
        layer_.cfg.fragSize * ((1 << layer_.cfg.cellBits) - 1);
    fullScale_ = static_cast<double>(
        std::max(frag_max, adc_.config().codes() - 1));

    const int cells = layer_.cfg.cellsPerWeight();
    for (const auto &xb : layer_.crossbars) {
        reram::CrossbarArray arr(
            std::max(1, xb.rows), std::max(1, xb.weightCols * cells),
            cfg_.cell, cfg_.cell.variationSigma > 0.0 ? &rng_ : nullptr);
        for (int r = 0; r < xb.rows; ++r) {
            for (int wc = 0; wc < xb.weightCols; ++wc) {
                const auto levels = reram::sliceMagnitude(
                    xb.mag(r, wc), layer_.cfg.weightBits,
                    layer_.cfg.cellBits);
                for (int s = 0; s < cells; ++s) {
                    arr.programCell(r, wc * cells + s,
                                    levels[static_cast<size_t>(s)]);
                }
            }
        }
        arrays_.push_back(std::move(arr));
    }
}

std::vector<double>
CrossbarEngine::mvm(const std::vector<uint32_t> &inputs,
                    EngineStats *stats)
{
    int max_out = 0;
    for (const auto &xb : layer_.crossbars)
        for (int idx : xb.outputIndex)
            max_out = std::max(max_out, idx + 1);
    std::vector<double> out(static_cast<size_t>(max_out), 0.0);

    const int m = layer_.cfg.fragSize;
    const int cells = layer_.cfg.cellsPerWeight();
    const int in_bits = layer_.cfg.inputBits;
    const double sample_ns = adc_.sampleTimeNs();
    const double adc_epj = adc_.energyPerSamplePj();

    EngineStats local;
    local.presentations = 1;

    for (size_t xi = 0; xi < layer_.crossbars.size(); ++xi) {
        const auto &xb = layer_.crossbars[xi];
        auto &arr = arrays_[xi];
        const int cell_cols = xb.weightCols * cells;

        std::vector<uint8_t> row_bits(static_cast<size_t>(xb.rows), 0);
        std::vector<double> acc(static_cast<size_t>(cell_cols), 0.0);

        for (int f = 0; f < xb.fragsUsed; ++f) {
            const int r0 = f * m;
            const int rows_here = std::min(m, xb.rows - r0);

            // Zero-skip: the controller inspects the fragment's shift
            // registers and feeds only the effective bits.
            uint32_t merged = 0;
            for (int r = r0; r < r0 + rows_here; ++r)
                merged |= inputs[static_cast<size_t>(
                    xb.inputIndex[static_cast<size_t>(r)])];
            const int eic = cfg_.zeroSkip
                ? effectiveBits(merged) : in_bits;
            local.skippedCycles +=
                static_cast<uint64_t>(in_bits - eic);

            std::fill(acc.begin(), acc.end(), 0.0);
            for (int p = eic - 1; p >= 0; --p) {
                for (int r = r0; r < r0 + rows_here; ++r) {
                    const uint32_t v = inputs[static_cast<size_t>(
                        xb.inputIndex[static_cast<size_t>(r)])];
                    row_bits[static_cast<size_t>(r)] =
                        static_cast<uint8_t>((v >> p) & 1u);
                }
                ++local.bitCycles;
                local.crossbarEnergyPj +=
                    arr.readEnergyPj(rows_here, sample_ns);
                for (int cc = 0; cc < cell_cols; ++cc) {
                    const double analog =
                        arr.columnSum(cc, row_bits, r0, rows_here);
                    const int count = adc_.quantize(analog, fullScale_);
                    const double est = adc_.reconstruct(count, fullScale_);
                    acc[static_cast<size_t>(cc)] +=
                        est * std::pow(2.0, p);
                    ++local.adcSamples;
                    local.adcEnergyPj += adc_epj;
                }
                // All fragment rows' bits retire; clear for next group.
                for (int r = r0; r < r0 + rows_here; ++r)
                    row_bits[static_cast<size_t>(r)] = 0;
            }

            // Digital shift-and-add across cell significance plus the
            // signed accumulation steered by the sign indicator.
            for (int wc = 0; wc < xb.weightCols; ++wc) {
                double weight_sum = 0.0;
                for (int s = 0; s < cells; ++s) {
                    weight_sum += acc[static_cast<size_t>(wc * cells + s)] *
                        std::pow(2.0, s * layer_.cfg.cellBits);
                }
                out[static_cast<size_t>(
                    xb.outputIndex[static_cast<size_t>(wc)])] +=
                    static_cast<double>(xb.sign(wc, f)) * weight_sum;
            }
        }
    }

    // ADC-limited serial time: each (fragment, bit) step converts
    // cell_cols columns on adcsPerCrossbar parallel ADCs. Crossbars
    // operate in parallel, so charge the slowest one.
    double worst_ns = 0.0;
    for (const auto &xb : layer_.crossbars) {
        const int cell_cols = xb.weightCols * cells;
        const double per_step = std::ceil(
            static_cast<double>(cell_cols) /
            static_cast<double>(cfg_.adcsPerCrossbar)) * sample_ns;
        // bit cycles for this crossbar were already tallied globally;
        // approximate its share as frags * average eic — use the exact
        // recount below instead.
        (void)per_step;
        worst_ns = std::max(worst_ns, per_step);
    }
    local.timeNs = worst_ns * static_cast<double>(local.bitCycles) /
        std::max<double>(1.0, static_cast<double>(layer_.crossbars.size()));

    if (stats)
        stats->merge(local);
    return out;
}

std::vector<float>
dequantizeOutputs(const std::vector<double> &raw, float w_scale,
                  float in_scale)
{
    std::vector<float> out(raw.size());
    const double k = static_cast<double>(w_scale) *
        static_cast<double>(in_scale);
    for (size_t i = 0; i < raw.size(); ++i)
        out[i] = static_cast<float>(raw[i] * k);
    return out;
}

std::vector<uint32_t>
quantizeActivations(const std::vector<float> &x, int bits,
                    float *scale_out)
{
    FORMS_ASSERT(bits >= 1 && bits <= 31, "bad activation bits");
    float mx = 0.0f;
    for (float v : x)
        mx = std::max(mx, v);
    const uint32_t qmax = (1u << bits) - 1;
    const float scale = mx > 0.0f ? mx / static_cast<float>(qmax) : 1.0f;
    std::vector<uint32_t> q(x.size(), 0);
    for (size_t i = 0; i < x.size(); ++i) {
        const float v = x[i];
        if (v <= 0.0f)
            continue;   // post-ReLU activations are nonnegative
        q[i] = std::min<uint32_t>(
            qmax, static_cast<uint32_t>(std::lround(v / scale)));
    }
    if (scale_out)
        *scale_out = scale;
    return q;
}

} // namespace forms::arch
