#include "arch/engine.hh"

#include <cmath>

namespace forms::arch {

void
EngineStats::merge(const EngineStats &other)
{
    presentations += other.presentations;
    bitCycles += other.bitCycles;
    skippedCycles += other.skippedCycles;
    adcSamples += other.adcSamples;
    quantValues += other.quantValues;
    quantClipped += other.quantClipped;
    adcEnergyPj += other.adcEnergyPj;
    crossbarEnergyPj += other.crossbarEnergyPj;
    timeNs += other.timeNs;
}

CrossbarEngine::CrossbarEngine(const MappedLayer &layer, EngineConfig cfg)
    : layer_(layer), cfg_(cfg),
      adc_({cfg.adcBits > 0
                ? cfg.adcBits
                : reram::AdcModel::losslessBits(layer.cfg.fragSize,
                                                layer.cfg.cellBits),
            cfg.adcFreqGhz}),
      rng_(cfg.variationSeed)
{
    // ADC full scale covers the worst-case fragment column sum; when
    // the resolution affords more codes than that (the lossless
    // setting), stretch the scale to the code count so the step is
    // exactly one level and integer sums convert exactly.
    const int frag_max =
        layer_.cfg.fragSize * ((1 << layer_.cfg.cellBits) - 1);
    fullScale_ = static_cast<double>(
        std::max(frag_max, adc_.config().codes() - 1));

    const int cells = layer_.cfg.cellsPerWeight();
    for (const auto &xb : layer_.crossbars) {
        reram::CrossbarArray arr(
            std::max(1, xb.rows), std::max(1, xb.weightCols * cells),
            cfg_.cell, cfg_.cell.variationSigma > 0.0 ? &rng_ : nullptr);
        for (int r = 0; r < xb.rows; ++r) {
            for (int wc = 0; wc < xb.weightCols; ++wc) {
                const auto levels = reram::sliceMagnitude(
                    xb.mag(r, wc), layer_.cfg.weightBits,
                    layer_.cfg.cellBits);
                for (int s = 0; s < cells; ++s) {
                    arr.programCell(r, wc * cells + s,
                                    levels[static_cast<size_t>(s)]);
                }
            }
        }
        arrays_.push_back(std::move(arr));
    }

    // Output extent and the ADC-limited per-step time of the slowest
    // crossbar depend only on the mapping geometry: precompute once.
    for (const auto &xb : layer_.crossbars)
        for (int idx : xb.outputIndex)
            outputExtent_ = std::max(outputExtent_, idx + 1);
    const double sample_ns = adc_.sampleTimeNs();
    for (const auto &xb : layer_.crossbars) {
        const int cell_cols = xb.weightCols * cells;
        const double per_step = std::ceil(
            static_cast<double>(cell_cols) /
            static_cast<double>(cfg_.adcsPerCrossbar)) * sample_ns;
        worstStepNs_ = std::max(worstStepNs_, per_step);
    }
}

uint64_t
CrossbarEngine::presentationSeed(uint64_t seed, uint64_t index)
{
    // splitmix64 finalizer over a golden-ratio combination: adjacent
    // indices land in statistically independent streams.
    uint64_t x = seed + 0x9e3779b97f4a7c15ULL * (index + 1);
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

void
CrossbarEngine::mvmOne(const std::vector<uint32_t> &inputs,
                       uint64_t pres_index, std::vector<double> &out,
                       EngineStats &stats) const
{
    out.assign(static_cast<size_t>(outputExtent_), 0.0);

    const int m = layer_.cfg.fragSize;
    const int cells = layer_.cfg.cellsPerWeight();
    const int in_bits = layer_.cfg.inputBits;
    const double sample_ns = adc_.sampleTimeNs();
    const double adc_epj = adc_.energyPerSamplePj();
    const bool noisy_reads = cfg_.readNoiseSigma > 0.0;
    Rng pres_rng(presentationSeed(cfg_.variationSeed, pres_index));

    EngineStats local;
    local.presentations = 1;

    for (size_t xi = 0; xi < layer_.crossbars.size(); ++xi) {
        const auto &xb = layer_.crossbars[xi];
        const auto &arr = arrays_[xi];
        const int cell_cols = xb.weightCols * cells;

        std::vector<uint8_t> row_bits(static_cast<size_t>(xb.rows), 0);
        std::vector<double> acc(static_cast<size_t>(cell_cols), 0.0);

        for (int f = 0; f < xb.fragsUsed; ++f) {
            const int r0 = f * m;
            const int rows_here = std::min(m, xb.rows - r0);

            // Zero-skip: the controller inspects the fragment's shift
            // registers and feeds only the effective bits.
            uint32_t merged = 0;
            for (int r = r0; r < r0 + rows_here; ++r)
                merged |= inputs[static_cast<size_t>(
                    xb.inputIndex[static_cast<size_t>(r)])];
            const int eic = cfg_.zeroSkip
                ? effectiveBits(merged) : in_bits;
            local.skippedCycles +=
                static_cast<uint64_t>(in_bits - eic);

            std::fill(acc.begin(), acc.end(), 0.0);
            for (int p = eic - 1; p >= 0; --p) {
                for (int r = r0; r < r0 + rows_here; ++r) {
                    const uint32_t v = inputs[static_cast<size_t>(
                        xb.inputIndex[static_cast<size_t>(r)])];
                    row_bits[static_cast<size_t>(r)] =
                        static_cast<uint8_t>((v >> p) & 1u);
                }
                ++local.bitCycles;
                local.crossbarEnergyPj +=
                    arr.readEnergyPj(rows_here, sample_ns);
                for (int cc = 0; cc < cell_cols; ++cc) {
                    double analog =
                        arr.columnSum(cc, row_bits, r0, rows_here);
                    if (noisy_reads) {
                        analog *=
                            pres_rng.lognormal(0.0, cfg_.readNoiseSigma);
                    }
                    const int count = adc_.quantize(analog, fullScale_);
                    const double est = adc_.reconstruct(count, fullScale_);
                    acc[static_cast<size_t>(cc)] +=
                        est * std::pow(2.0, p);
                    ++local.adcSamples;
                    local.adcEnergyPj += adc_epj;
                }
                // All fragment rows' bits retire; clear for next group.
                for (int r = r0; r < r0 + rows_here; ++r)
                    row_bits[static_cast<size_t>(r)] = 0;
            }

            // Digital shift-and-add across cell significance plus the
            // signed accumulation steered by the sign indicator.
            for (int wc = 0; wc < xb.weightCols; ++wc) {
                double weight_sum = 0.0;
                for (int s = 0; s < cells; ++s) {
                    weight_sum += acc[static_cast<size_t>(wc * cells + s)] *
                        std::pow(2.0, s * layer_.cfg.cellBits);
                }
                out[static_cast<size_t>(
                    xb.outputIndex[static_cast<size_t>(wc)])] +=
                    static_cast<double>(xb.sign(wc, f)) * weight_sum;
            }
        }
    }

    // ADC-limited serial time: each (fragment, bit) step converts
    // cell_cols columns on adcsPerCrossbar parallel ADCs. Crossbars
    // operate in parallel, so charge the slowest one.
    local.timeNs = worstStepNs_ * static_cast<double>(local.bitCycles) /
        std::max<double>(1.0, static_cast<double>(layer_.crossbars.size()));

    stats.merge(local);
}

std::vector<double>
CrossbarEngine::mvm(const std::vector<uint32_t> &inputs,
                    EngineStats *stats)
{
    // Semantically a batch of one — same presentation stream, same
    // stats merge — without mvmBatch's batch-container scaffolding.
    std::vector<double> out;
    EngineStats local;
    mvmOne(inputs, nextPresentation_++, out, local);
    if (stats)
        stats->merge(local);
    return out;
}

std::vector<std::vector<double>>
CrossbarEngine::mvmBatch(const std::vector<std::vector<uint32_t>> &batch,
                         EngineStats *stats, ThreadPool *pool)
{
    return mvmRange(batch, 0, batch.size(), stats, pool);
}

std::vector<std::vector<double>>
CrossbarEngine::mvmRange(const std::vector<std::vector<uint32_t>> &batch,
                         size_t lo, size_t hi, EngineStats *stats,
                         ThreadPool *pool)
{
    FORMS_ASSERT(lo <= hi && hi <= batch.size(),
                 "mvmRange: slice [%zu, %zu) outside batch of %zu", lo,
                 hi, batch.size());
    const size_t count = hi - lo;
    std::vector<std::vector<double>> outs(count);
    std::vector<EngineStats> per(count);
    const uint64_t base = nextPresentation_;
    nextPresentation_ += count;
    if (count == 0)
        return outs;

    ThreadPool &tp = pool ? *pool : ThreadPool::global();
    tp.parallelFor(
        0, static_cast<int64_t>(count), 1,
        [&](int64_t i, int) {
            const size_t s = static_cast<size_t>(i);
            mvmOne(batch[lo + s], base + static_cast<uint64_t>(i),
                   outs[s], per[s]);
        });

    // Merge per-presentation stats in presentation order: identical
    // floating-point accumulation order to the serial loop.
    if (stats)
        for (const auto &s : per)
            stats->merge(s);
    return outs;
}

std::vector<float>
dequantizeOutputs(const std::vector<double> &raw, float w_scale,
                  float in_scale)
{
    std::vector<float> out(raw.size());
    const double k = static_cast<double>(w_scale) *
        static_cast<double>(in_scale);
    for (size_t i = 0; i < raw.size(); ++i)
        out[i] = static_cast<float>(raw[i] * k);
    return out;
}

std::vector<uint32_t>
quantizeActivations(const std::vector<float> &x, int bits,
                    float *scale_out)
{
    FORMS_ASSERT(bits >= 1 && bits <= 31, "bad activation bits");
    float mx = 0.0f;
    for (float v : x)
        mx = std::max(mx, v);
    const uint32_t qmax = (1u << bits) - 1;
    const float scale = mx > 0.0f ? mx / static_cast<float>(qmax) : 1.0f;
    std::vector<uint32_t> q(x.size(), 0);
    for (size_t i = 0; i < x.size(); ++i) {
        const float v = x[i];
        if (v <= 0.0f)
            continue;   // post-ReLU activations are nonnegative
        q[i] = std::min<uint32_t>(
            qmax, static_cast<uint32_t>(std::lround(v / scale)));
    }
    if (scale_out)
        *scale_out = scale;
    return q;
}

std::vector<uint32_t>
quantizeActivationsStatic(const std::vector<float> &x, int bits,
                          float scale, uint64_t *clipped_out)
{
    FORMS_ASSERT(bits >= 1 && bits <= 31, "bad activation bits");
    FORMS_ASSERT(scale > 0.0f,
                 "static activation scale must be positive — was the "
                 "calibration table built for this layer?");
    const uint32_t qmax = (1u << bits) - 1;
    std::vector<uint32_t> q(x.size(), 0);
    uint64_t clipped = 0;
    for (size_t i = 0; i < x.size(); ++i) {
        const float v = x[i];
        if (v <= 0.0f)
            continue;   // unsigned encoding: negatives map to zero
        // Saturation test in double, before lround: an extreme
        // outlier (or inf/NaN) must clip to the top code, not feed
        // lround a value outside long's range (UB). NaN fails the
        // comparison and clips too.
        const double code = static_cast<double>(v) /
            static_cast<double>(scale);
        if (!(code < static_cast<double>(qmax) + 0.5)) {
            q[i] = qmax;
            ++clipped;
        } else {
            q[i] = static_cast<uint32_t>(std::lround(code));
        }
    }
    if (clipped_out)
        *clipped_out += clipped;
    return q;
}

} // namespace forms::arch
