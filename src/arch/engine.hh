/**
 * @file
 * Functional MCU engine: executes a mapped layer on simulated ReRAM
 * crossbars with bit-serial inputs, fragment (sub-array) activation,
 * zero-skipping, ADC conversion and signed digital accumulation
 * (paper §IV, Figure 11) — collecting cycle / conversion / energy
 * statistics along the way.
 *
 * With ideal devices and lossless ADC resolution the engine is
 * integer-exact against referenceMvm(); with the paper's 3/4/5-bit
 * ADCs or device variation enabled, the induced numerical error is
 * measurable (and tested to stay small for trained weight
 * distributions).
 */

#ifndef FORMS_ARCH_ENGINE_HH
#define FORMS_ARCH_ENGINE_HH

#include "arch/mapping.hh"
#include "arch/zero_skip.hh"
#include "reram/adc.hh"
#include "reram/crossbar.hh"

namespace forms::arch {

/** Engine knobs beyond the mapping geometry. */
struct EngineConfig
{
    int adcBits = 0;           //!< 0 = lossless (exact integer sums)
    double adcFreqGhz = 2.1;
    int adcsPerCrossbar = 4;
    bool zeroSkip = true;
    reram::CellConfig cell;    //!< device model (variation etc.)
    uint64_t variationSeed = 99;
};

/** Execution statistics of one engine run. */
struct EngineStats
{
    uint64_t presentations = 0;   //!< input vectors processed
    uint64_t bitCycles = 0;       //!< (fragment, bit) activations
    uint64_t skippedCycles = 0;   //!< bit cycles avoided by zero-skip
    uint64_t adcSamples = 0;      //!< individual conversions
    double adcEnergyPj = 0.0;
    double crossbarEnergyPj = 0.0;
    double timeNs = 0.0;          //!< ADC-limited serial time

    /** Fraction of potential bit cycles skipped. */
    double skipFraction() const
    {
        const double tot =
            static_cast<double>(bitCycles + skippedCycles);
        return tot > 0.0 ? static_cast<double>(skippedCycles) / tot : 0.0;
    }

    void merge(const EngineStats &other);
};

/** Executes mapped layers on simulated crossbars. */
class CrossbarEngine
{
  public:
    /**
     * Program the mapped layer onto simulated crossbar arrays.
     * Device variation (if configured) is drawn once here, at
     * program time, as on real hardware.
     */
    CrossbarEngine(const MappedLayer &layer, EngineConfig cfg);

    /**
     * One matrix-vector product. `inputs` is indexed by the layer's
     * natural input indices and quantized to cfg.inputBits.
     *
     * @return signed outputs in integer level units, indexed by the
     *         natural output index (same convention as referenceMvm).
     */
    std::vector<double> mvm(const std::vector<uint32_t> &inputs,
                            EngineStats *stats = nullptr);

    /** Effective ADC resolution in use (lossless when cfg was 0). */
    int adcBitsInUse() const { return adc_.config().bits; }

    const MappedLayer &layer() const { return layer_; }

  private:
    const MappedLayer &layer_;
    EngineConfig cfg_;
    reram::AdcModel adc_;
    double fullScale_;             //!< ADC full-scale in level units
    std::vector<reram::CrossbarArray> arrays_;
    Rng rng_;
};

/**
 * Convenience: dequantize engine outputs back to real units given the
 * weight grid `w_scale` and activation grid `in_scale`.
 */
std::vector<float> dequantizeOutputs(const std::vector<double> &raw,
                                     float w_scale, float in_scale);

/** Quantize a nonnegative activation vector to `bits` unsigned ints. */
std::vector<uint32_t> quantizeActivations(const std::vector<float> &x,
                                          int bits, float *scale_out);

} // namespace forms::arch

#endif // FORMS_ARCH_ENGINE_HH
