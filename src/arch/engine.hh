/**
 * @file
 * Functional MCU engine: executes a mapped layer on simulated ReRAM
 * crossbars with bit-serial inputs, fragment (sub-array) activation,
 * zero-skipping, ADC conversion and signed digital accumulation
 * (paper §IV, Figure 11) — collecting cycle / conversion / energy
 * statistics along the way.
 *
 * With ideal devices and lossless ADC resolution the engine is
 * integer-exact against referenceMvm(); with the paper's 3/4/5-bit
 * ADCs or device variation enabled, the induced numerical error is
 * measurable (and tested to stay small for trained weight
 * distributions).
 */

#ifndef FORMS_ARCH_ENGINE_HH
#define FORMS_ARCH_ENGINE_HH

#include "arch/mapping.hh"
#include "arch/zero_skip.hh"
#include "common/simd.hh"
#include "common/threadpool.hh"
#include "reram/adc.hh"
#include "reram/crossbar.hh"
#include "reram/faults.hh"

namespace forms::arch {

/**
 * How activation vectors are quantized onto the unsigned bit-serial
 * input grid (DESIGN.md §2).
 *
 * - PerPresentation: the scale is each presentation's own max / qmax —
 *   an idealized per-vector dynamic range no fixed DAC grid can
 *   provide. Kept as the reference upper bound.
 * - Static: one offline-calibrated scale per programmed layer
 *   (compile::CalibrationTable, built by sim::Calibrator), frozen at
 *   deployment time as on real hardware. Out-of-range activations
 *   saturate at the grid max and are counted in
 *   EngineStats::quantClipped.
 */
enum class ScaleMode
{
    PerPresentation,  //!< idealized per-vector max scale
    Static,           //!< offline-calibrated fixed scale
};

/** Engine knobs beyond the mapping geometry. */
struct EngineConfig
{
    int adcBits = 0;           //!< 0 = lossless (exact integer sums)
    double adcFreqGhz = 2.1;
    int adcsPerCrossbar = 4;
    bool zeroSkip = true;
    reram::CellConfig cell;    //!< device model (variation etc.)
    uint64_t variationSeed = 99;

    /**
     * Transient read noise: multiplicative log-normal sigma applied to
     * every analog column sum at read time (0 = noiseless reads).
     * Unlike device variation (drawn once at program time), this is
     * per-presentation randomness; its stream is keyed by
     * (variationSeed, presentation index) so batched execution is
     * bit-identical to serial regardless of thread count.
     */
    double readNoiseSigma = 0.0;

    /**
     * Optional hard-fault model (reram/faults.hh). When set, the
     * realized conductance tiles are overlaid at construction with
     * the deterministic fault pattern of (faults->config().seed,
     * faultKey, crossbar physId): stuck-at-LRS cells read as the
     * device's maximum level, stuck-at-HRS cells and dead columns as
     * 0, drifted cells as programmed x factor. Borrowed pointer, not
     * owned; null means fault-free. faultKey names this engine's
     * logical owner (the graph node id in the compiled runtimes) so
     * every runtime and replica draws an identical pattern.
     */
    const reram::FaultMap *faults = nullptr;
    uint64_t faultKey = 0;

    /**
     * Kernel dispatch for this engine's hot loop, resolved once at
     * construction (per-engine, so runtimes built from RuntimeConfig
     * can pin a mode without mutating process-wide state from pool
     * workers). Every mode is bit-identical by the common/simd.hh
     * contract; Auto follows FORMS_SIMD / cpuid detection.
     */
    simd::Mode simdMode = simd::Mode::Auto;
};

/** Execution statistics of one engine run. */
struct EngineStats
{
    uint64_t presentations = 0;   //!< input vectors processed
    uint64_t bitCycles = 0;       //!< (fragment, bit) activations
    uint64_t skippedCycles = 0;   //!< bit cycles avoided by zero-skip
    uint64_t adcSamples = 0;      //!< individual conversions
    uint64_t quantValues = 0;     //!< activation scalars quantized
    uint64_t quantClipped = 0;    //!< saturated at the static grid max
    double adcEnergyPj = 0.0;
    double crossbarEnergyPj = 0.0;
    double timeNs = 0.0;          //!< ADC-limited serial time

    /** Fraction of potential bit cycles skipped. */
    double skipFraction() const
    {
        const double tot =
            static_cast<double>(bitCycles + skippedCycles);
        return tot > 0.0 ? static_cast<double>(skippedCycles) / tot : 0.0;
    }

    /**
     * Fraction of quantized activation values that saturated the
     * input grid. Always 0 under ScaleMode::PerPresentation (the
     * idealized scale adapts); under ScaleMode::Static it measures
     * how much of the dynamic range the calibration left uncovered.
     */
    double clipFraction() const
    {
        return quantValues > 0
            ? static_cast<double>(quantClipped) /
                static_cast<double>(quantValues)
            : 0.0;
    }

    void merge(const EngineStats &other);
};

/** Executes mapped layers on simulated crossbars. */
class CrossbarEngine
{
  public:
    /**
     * Program the mapped layer onto simulated crossbar arrays.
     * Device variation (if configured) is drawn once here, at
     * program time, as on real hardware.
     */
    CrossbarEngine(const MappedLayer &layer, EngineConfig cfg);

    /**
     * One matrix-vector product. `inputs` is indexed by the layer's
     * natural input indices and quantized to cfg.inputBits.
     * Equivalent to mvmBatch() with a batch of one: it consumes the
     * same presentation stream and merges stats the same way (both
     * call the mvmOne() core), asserted by tests/test_runtime.cc.
     *
     * @return signed outputs in integer level units, indexed by the
     *         natural output index (same convention as referenceMvm).
     */
    std::vector<double> mvm(const std::vector<uint32_t> &inputs,
                            EngineStats *stats = nullptr);

    /**
     * Batched matrix-vector products: run every presentation in
     * `batch`, sharding them across `pool` (null = the process-wide
     * pool). Per-presentation statistics are merged into `stats` in
     * presentation order via EngineStats::merge, and each
     * presentation's RNG stream is keyed by (variationSeed, global
     * presentation index), so the outputs AND the merged stats are
     * bit-identical to calling mvm() in a serial loop — for any
     * thread count.
     *
     * Presentation indices are consecutive across calls on one
     * engine (an engine-lifetime stream); see
     * resetPresentationStream().
     */
    std::vector<std::vector<double>>
    mvmBatch(const std::vector<std::vector<uint32_t>> &batch,
             EngineStats *stats = nullptr, ThreadPool *pool = nullptr);

    /**
     * Batched matrix-vector products over the contiguous slice
     * [lo, hi) of `batch`: identical to mvmBatch() on just that
     * slice. The replicated-stage path (sim/stage_kernels.hh) hands
     * each replica engine its own slice without copying the batch;
     * the slice consumes stream positions [pos, pos + (hi - lo)) of
     * this engine's presentation stream, so callers seek first when
     * the slice's global presentation indices do not start at the
     * engine's current position.
     */
    std::vector<std::vector<double>>
    mvmRange(const std::vector<std::vector<uint32_t>> &batch, size_t lo,
             size_t hi, EngineStats *stats = nullptr,
             ThreadPool *pool = nullptr);

    /**
     * Batched matrix-vector products over the slice [lo, hi) of
     * `batch` with explicit per-presentation stream keys: presentation
     * batch[j] draws its read-noise RNG from stream index keys[j] —
     * the same (variationSeed, index) mix the implicit engine-lifetime
     * stream uses — and the engine's presentation counter is neither
     * read nor advanced. Two engines programmed from the same config
     * therefore produce bit-identical outputs for the same key,
     * regardless of what either engine executed before: the mechanism
     * behind the serving layer's batch-invariance contract
     * (docs/SERVING.md).
     *
     * Per-presentation stats merge into `stats` in ascending j order,
     * exactly like mvmRange. When `per` is non-null it is an
     * accumulator array parallel to `batch`: presentation j's stats
     * additionally merge into per[j] — the per-request stats channel.
     */
    std::vector<std::vector<double>>
    mvmKeyed(const std::vector<std::vector<uint32_t>> &batch, size_t lo,
             size_t hi, const uint64_t *keys, EngineStats *stats = nullptr,
             EngineStats *per = nullptr, ThreadPool *pool = nullptr);

    /** Restart the per-presentation RNG stream at index 0. */
    void resetPresentationStream() { nextPresentation_ = 0; }

    /** Next index of the engine-lifetime presentation stream. */
    uint64_t presentationStreamPos() const { return nextPresentation_; }

    /**
     * Seek the presentation stream to `index`. Replica engines of one
     * replicated stage process presentation-index-keyed slices of
     * each micro-batch; seeking keeps every replica's per-presentation
     * RNG keyed by the same global index the single-engine run would
     * use — the mechanism behind the replication bit-identity
     * contract (DESIGN.md §5).
     */
    void seekPresentationStream(uint64_t index)
    {
        nextPresentation_ = index;
    }

    /** Mix (seed, presentation index) into one RNG stream seed. */
    static uint64_t presentationSeed(uint64_t seed, uint64_t index);

    /** Effective ADC resolution in use (lossless when cfg was 0). */
    int adcBitsInUse() const { return adc_.config().bits; }

    /** Name of the kernel variant this engine resolved to. */
    const char *kernelName() const { return kern_->name; }

    const MappedLayer &layer() const { return layer_; }

    /** Crossbars whose used window carries at least one fault. */
    int64_t faultyCrossbars() const { return faultyCrossbars_; }

    /** Stuck or drifted cells within the used windows. */
    int64_t faultyCells() const { return faultyCells_; }

  private:
    /**
     * Execute one presentation. Const and self-contained (all scratch
     * is local, the programmed arrays are only read), so concurrent
     * calls from pool workers are safe.
     */
    void mvmOne(const std::vector<uint32_t> &inputs, uint64_t pres_index,
                std::vector<double> &out, EngineStats &stats) const;

    /**
     * One crossbar's realized conductances re-laid as a contiguous
     * tile: row r's cell columns at lvl[r * cellCols + cc], so the
     * per-bit MVM is a stride-1 sweep over active rows' panels.
     * Snapshotted from the programmed arrays at construction (device
     * variation is drawn at program time, so the values are frozen).
     */
    struct XbarTile
    {
        std::vector<double> lvl;          //!< rows x cellCols, row-panel
        std::vector<double> fragReadEpj;  //!< read energy per fragment bit
        int cellCols = 0;
    };

    const MappedLayer &layer_;
    EngineConfig cfg_;
    reram::AdcModel adc_;
    double fullScale_;             //!< ADC full-scale in level units
    std::vector<reram::CrossbarArray> arrays_;
    std::vector<XbarTile> tiles_;
    std::vector<double> bitWeight_;   //!< 2^p per input bit position
    std::vector<double> cellWeight_;  //!< 2^(s*cellBits) per cell slice
    const simd::Kernels *kern_ = nullptr;
    Rng rng_;                      //!< program-time variation source
    int outputExtent_ = 0;         //!< 1 + max natural output index
    double worstStepNs_ = 0.0;     //!< slowest crossbar's per-step time
    uint64_t nextPresentation_ = 0;
    int64_t faultyCrossbars_ = 0;  //!< tiles overlaid with any fault
    int64_t faultyCells_ = 0;      //!< stuck/drifted cells (used window)
};

/**
 * Convenience: dequantize engine outputs back to real units given the
 * weight grid `w_scale` and activation grid `in_scale`.
 */
std::vector<float> dequantizeOutputs(const std::vector<double> &raw,
                                     float w_scale, float in_scale);

/** Quantize a nonnegative activation vector to `bits` unsigned ints. */
std::vector<uint32_t> quantizeActivations(const std::vector<float> &x,
                                          int bits, float *scale_out);

/**
 * Quantize against a frozen grid: q = round(x / scale) clamped to
 * [0, 2^bits - 1]. Negative values map to zero (unsigned bit-serial
 * encoding); values past the grid max saturate and are counted into
 * `*clipped_out` (accumulated, not assigned — callers fold several
 * presentations into one counter).
 */
std::vector<uint32_t> quantizeActivationsStatic(
    const std::vector<float> &x, int bits, float scale,
    uint64_t *clipped_out = nullptr);

} // namespace forms::arch

#endif // FORMS_ARCH_ENGINE_HH
