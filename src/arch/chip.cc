#include "arch/chip.hh"

namespace forms::arch {

void
EnginePool::program(int node_id, MappedLayer mapped,
                    const EngineConfig &cfg)
{
    auto slot = std::make_unique<Slot>();
    slot->nodeId = node_id;
    slot->mapped = std::move(mapped);
    slot->engine = std::make_unique<CrossbarEngine>(slot->mapped, cfg);
    slots_.push_back(std::move(slot));
}

CrossbarEngine *
EnginePool::engine(int node_id)
{
    for (auto &s : slots_)
        if (s->nodeId == node_id)
            return s->engine.get();
    return nullptr;
}

const MappedLayer *
EnginePool::mapped(int node_id) const
{
    for (const auto &s : slots_)
        if (s->nodeId == node_id)
            return &s->mapped;
    return nullptr;
}

int64_t
EnginePool::totalCrossbars() const
{
    int64_t n = 0;
    for (const auto &s : slots_)
        n += s->mapped.numCrossbars();
    return n;
}

void
EnginePool::resetPresentationStreams()
{
    for (auto &s : slots_)
        s->engine->resetPresentationStream();
}

} // namespace forms::arch
