#include "arch/mapping.hh"

#include <cmath>

namespace forms::arch {

MappedLayer
mapLayer(const admm::LayerState &state, const MappingConfig &cfg)
{
    FORMS_ASSERT(cfg.xbarRows % cfg.fragSize == 0,
                 "crossbar rows must be a multiple of the fragment size");
    FORMS_ASSERT(state.plan.fragSize() == cfg.fragSize,
                 "plan fragment size %d != mapping fragment size %d",
                 state.plan.fragSize(), cfg.fragSize);

    const admm::WeightView view = state.view();
    const admm::FragmentPlan &plan = state.plan;

    // Surviving rows in polarization order and surviving columns.
    std::vector<int> rows_in_order;
    for (int64_t p = 0; p < plan.rows(); ++p) {
        const int64_t r = plan.orderedRow(p);
        if (!state.mask ||
            state.mask->rowKept[static_cast<size_t>(r)]) {
            rows_in_order.push_back(static_cast<int>(r));
        }
    }
    std::vector<int> cols_kept;
    for (int64_t j = 0; j < view.cols(); ++j) {
        if (!state.mask ||
            state.mask->colKept[static_cast<size_t>(j)]) {
            cols_kept.push_back(static_cast<int>(j));
        }
    }

    MappedLayer layer;
    layer.cfg = cfg;
    layer.logicalRows = static_cast<int64_t>(rows_in_order.size());
    layer.logicalCols = static_cast<int64_t>(cols_kept.size());

    // Weight grid spacing.
    const uint32_t qmax = (1u << cfg.weightBits) - 1;
    float scale = state.quantScale;
    if (scale <= 0.0f) {
        const float mx = view.tensor().maxAbs();
        scale = mx > 0.0f ? mx / static_cast<float>(qmax) : 1.0f;
    }
    layer.scale = scale;

    const int m = cfg.fragSize;
    const int wcols_per_xbar = cfg.weightColsPerXbar();
    const int64_t k_rows = layer.logicalRows;
    const int64_t k_cols = layer.logicalCols;
    const int64_t grid_r = (k_rows + cfg.xbarRows - 1) / cfg.xbarRows;
    const int64_t grid_c = (k_cols + wcols_per_xbar - 1) / wcols_per_xbar;

    for (int64_t gr = 0; gr < grid_r; ++gr) {
        for (int64_t gc = 0; gc < grid_c; ++gc) {
            MappedCrossbar xb;
            xb.physId = static_cast<int>(layer.crossbars.size());
            xb.rows = static_cast<int>(
                std::min<int64_t>(cfg.xbarRows, k_rows - gr * cfg.xbarRows));
            xb.weightCols = static_cast<int>(std::min<int64_t>(
                wcols_per_xbar, k_cols - gc * wcols_per_xbar));
            xb.fragsUsed = (xb.rows + m - 1) / m;

            xb.inputIndex.resize(static_cast<size_t>(xb.rows));
            for (int i = 0; i < xb.rows; ++i) {
                xb.inputIndex[static_cast<size_t>(i)] =
                    rows_in_order[static_cast<size_t>(gr * cfg.xbarRows + i)];
            }
            xb.outputIndex.resize(static_cast<size_t>(xb.weightCols));
            for (int wc = 0; wc < xb.weightCols; ++wc) {
                xb.outputIndex[static_cast<size_t>(wc)] =
                    cols_kept[static_cast<size_t>(gc * wcols_per_xbar + wc)];
            }

            xb.magnitude.assign(
                static_cast<size_t>(xb.rows) *
                static_cast<size_t>(xb.weightCols), 0);
            xb.fragSign.assign(
                static_cast<size_t>(xb.weightCols) *
                static_cast<size_t>(xb.fragsUsed), 1);

            for (int wc = 0; wc < xb.weightCols; ++wc) {
                const int j = xb.outputIndex[static_cast<size_t>(wc)];
                for (int f = 0; f < xb.fragsUsed; ++f) {
                    int frag_sign = 0;
                    const int r0 = f * m;
                    const int r1 = std::min(xb.rows, r0 + m);
                    for (int r = r0; r < r1; ++r) {
                        const int nat =
                            xb.inputIndex[static_cast<size_t>(r)];
                        const float w = view.get(nat, j);
                        uint32_t mag = static_cast<uint32_t>(
                            std::lround(std::fabs(w) / scale));
                        mag = std::min(mag, qmax);
                        xb.magnitude[static_cast<size_t>(r) *
                                     static_cast<size_t>(xb.weightCols) +
                                     static_cast<size_t>(wc)] = mag;
                        if (w != 0.0f && mag != 0) {
                            const int s = w > 0.0f ? 1 : -1;
                            if (frag_sign == 0) {
                                frag_sign = s;
                            } else {
                                FORMS_ASSERT(frag_sign == s,
                                    "fragment with mixed signs cannot be "
                                    "mapped (layer '%s', col %d): run the "
                                    "polarization phase first",
                                    state.name.c_str(), j);
                            }
                        }
                    }
                    xb.fragSign[static_cast<size_t>(wc) *
                                static_cast<size_t>(xb.fragsUsed) +
                                static_cast<size_t>(f)] =
                        frag_sign == 0 ? int8_t{1}
                                       : static_cast<int8_t>(frag_sign);
                }
            }
            layer.crossbars.push_back(std::move(xb));
        }
    }
    return layer;
}

std::vector<int64_t>
referenceMvm(const MappedLayer &layer, const std::vector<uint32_t> &inputs)
{
    // Output indexed by the original (pre-pruning) column index space.
    int max_out = 0;
    for (const auto &xb : layer.crossbars)
        for (int idx : xb.outputIndex)
            max_out = std::max(max_out, idx + 1);
    std::vector<int64_t> out(static_cast<size_t>(max_out), 0);

    const int m = layer.cfg.fragSize;
    for (const auto &xb : layer.crossbars) {
        for (int wc = 0; wc < xb.weightCols; ++wc) {
            int64_t acc = 0;
            for (int f = 0; f < xb.fragsUsed; ++f) {
                const int r0 = f * m;
                const int r1 = std::min(xb.rows, r0 + m);
                int64_t part = 0;
                for (int r = r0; r < r1; ++r) {
                    const int nat = xb.inputIndex[static_cast<size_t>(r)];
                    FORMS_ASSERT(nat < static_cast<int>(inputs.size()),
                                 "input vector too short");
                    part += static_cast<int64_t>(xb.mag(r, wc)) *
                        static_cast<int64_t>(
                            inputs[static_cast<size_t>(nat)]);
                }
                acc += static_cast<int64_t>(xb.sign(wc, f)) * part;
            }
            out[static_cast<size_t>(
                xb.outputIndex[static_cast<size_t>(wc)])] += acc;
        }
    }
    return out;
}

} // namespace forms::arch
