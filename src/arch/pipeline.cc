#include "arch/pipeline.hh"

#include <cmath>

#include "common/logging.hh"

namespace forms::arch {

PipelineTiming
layerPipelineTiming(const PipelineConfig &cfg, uint64_t presentations,
                    double bit_cycles_per_presentation, bool pools)
{
    FORMS_ASSERT(bit_cycles_per_presentation >= 0.0,
                 "negative initiation interval");
    PipelineTiming t;
    const int depth = cfg.baseStages + (pools ? cfg.poolingStages : 0);
    // The crossbar/ADC stage is the initiation interval: a new
    // presentation can enter only every `bit_cycles` cycles.
    const double ii = std::max(1.0, bit_cycles_per_presentation);
    t.fillNs = static_cast<double>(depth) * cfg.cycleNs;
    t.streamNs = ii * cfg.cycleNs *
        static_cast<double>(presentations ? presentations - 1 : 0);
    t.totalNs = t.fillNs + t.streamNs;
    t.cycles = static_cast<uint64_t>(
        std::llround(t.totalNs / cfg.cycleNs));
    return t;
}

} // namespace forms::arch
