#include "compile/graph.hh"

#include <algorithm>
#include <queue>

#include "nn/layers.hh"
#include "tensor/ops.hh"

namespace forms::compile {

const char *
opName(Op op)
{
    switch (op) {
    case Op::Input: return "input";
    case Op::Conv: return "conv";
    case Op::Dense: return "dense";
    case Op::BatchNorm: return "batchnorm";
    case Op::Relu: return "relu";
    case Op::MaxPool: return "maxpool";
    case Op::AvgPool: return "avgpool";
    case Op::Flatten: return "flatten";
    case Op::Add: return "add";
    }
    return "?";
}

int
Graph::addNode(Op op, std::string name, std::vector<int> inputs)
{
    const int id = static_cast<int>(nodes_.size());
    for (int in : inputs) {
        FORMS_ASSERT(in >= 0 && in < id && !dead_[static_cast<size_t>(in)],
                     "graph: node '%s' reads invalid node %d",
                     name.c_str(), in);
    }
    if (op == Op::Input) {
        FORMS_ASSERT(input_ < 0, "graph: second Input node '%s'",
                     name.c_str());
        input_ = id;
    }
    Node n;
    n.id = id;
    n.op = op;
    n.name = std::move(name);
    n.inputs = std::move(inputs);
    nodes_.push_back(std::move(n));
    dead_.push_back(0);
    output_ = id;   // default: last node added is the output
    return id;
}

Node &
Graph::node(int id)
{
    FORMS_ASSERT(alive(id), "graph: access to dead/invalid node %d", id);
    return nodes_[static_cast<size_t>(id)];
}

const Node &
Graph::node(int id) const
{
    FORMS_ASSERT(alive(id), "graph: access to dead/invalid node %d", id);
    return nodes_[static_cast<size_t>(id)];
}

bool
Graph::alive(int id) const
{
    return id >= 0 && id < capacity() && !dead_[static_cast<size_t>(id)];
}

size_t
Graph::size() const
{
    size_t n = 0;
    for (uint8_t d : dead_)
        n += !d;
    return n;
}

void
Graph::setOutput(int id)
{
    FORMS_ASSERT(alive(id), "graph: output set to dead node %d", id);
    output_ = id;
}

std::vector<int>
Graph::consumers(int id) const
{
    std::vector<int> out;
    for (const Node &n : nodes_) {
        if (dead_[static_cast<size_t>(n.id)])
            continue;
        if (std::find(n.inputs.begin(), n.inputs.end(), id) !=
            n.inputs.end())
            out.push_back(n.id);
    }
    return out;
}

void
Graph::bypass(int id)
{
    Node &n = node(id);
    FORMS_ASSERT(n.inputs.size() == 1,
                 "graph: bypass of '%s' needs exactly one input",
                 n.name.c_str());
    const int src = n.inputs[0];
    for (Node &c : nodes_) {
        if (dead_[static_cast<size_t>(c.id)])
            continue;
        for (int &in : c.inputs)
            if (in == id)
                in = src;
    }
    if (output_ == id)
        output_ = src;
    dead_[static_cast<size_t>(id)] = 1;
}

std::vector<int>
Graph::topoOrder() const
{
    std::vector<int> indegree(nodes_.size(), 0);
    for (const Node &n : nodes_) {
        if (dead_[static_cast<size_t>(n.id)])
            continue;
        indegree[static_cast<size_t>(n.id)] =
            static_cast<int>(n.inputs.size());
    }
    // Min-heap on node id: ready nodes are visited smallest-id first,
    // so the order is a pure function of the graph structure.
    std::priority_queue<int, std::vector<int>, std::greater<int>> ready;
    for (const Node &n : nodes_)
        if (!dead_[static_cast<size_t>(n.id)] && n.inputs.empty())
            ready.push(n.id);

    std::vector<int> order;
    order.reserve(size());
    while (!ready.empty()) {
        const int id = ready.top();
        ready.pop();
        order.push_back(id);
        // Decrement once per edge (not per distinct consumer): a node
        // may read the same producer twice, e.g. a self-join add.
        for (const Node &c : nodes_) {
            if (dead_[static_cast<size_t>(c.id)])
                continue;
            for (int in : c.inputs)
                if (in == id &&
                    --indegree[static_cast<size_t>(c.id)] == 0)
                    ready.push(c.id);
        }
    }
    FORMS_ASSERT(order.size() == size(), "graph: cycle detected");
    return order;
}

void
Graph::inferShapes(const Shape &sample)
{
    FORMS_ASSERT(input_ >= 0, "graph: no Input node");
    for (int id : topoOrder()) {
        Node &n = nodes_[static_cast<size_t>(id)];
        auto in = [&](size_t i) -> const Shape & {
            return nodes_[static_cast<size_t>(n.inputs[i])].outShape;
        };
        switch (n.op) {
        case Op::Input:
            n.outShape = sample;
            break;
        case Op::Conv: {
            const Shape &s = in(0);
            if (s.size() != 3 ||
                s[0] != n.conv->inChannels()) {
                fatal("graph: conv '%s' expects %d-channel CHW input, "
                      "got %s", n.name.c_str(), n.conv->inChannels(),
                      shapeStr(s).c_str());
            }
            const int oh = convOutDim(static_cast<int>(s[1]),
                                      n.conv->kernel(), n.conv->stride(),
                                      n.conv->pad());
            const int ow = convOutDim(static_cast<int>(s[2]),
                                      n.conv->kernel(), n.conv->stride(),
                                      n.conv->pad());
            n.outShape = {n.conv->outChannels(), oh, ow};
            break;
        }
        case Op::Dense: {
            const Shape &s = in(0);
            if (s.size() != 1 || s[0] != n.dense->inDim()) {
                fatal("graph: dense '%s' expects %d flat features, "
                      "got %s", n.name.c_str(), n.dense->inDim(),
                      shapeStr(s).c_str());
            }
            n.outShape = {n.dense->outDim()};
            break;
        }
        case Op::BatchNorm: {
            const Shape &s = in(0);
            if (s.size() != 3 || s[0] != n.bn->channels()) {
                fatal("graph: batchnorm '%s' expects %d-channel CHW "
                      "input, got %s", n.name.c_str(),
                      n.bn->channels(), shapeStr(s).c_str());
            }
            n.outShape = s;
            break;
        }
        case Op::Relu:
            n.outShape = in(0);
            break;
        case Op::MaxPool:
        case Op::AvgPool: {
            const Shape &s = in(0);
            if (s.size() != 3) {
                fatal("graph: pool '%s' expects CHW input, got %s",
                      n.name.c_str(), shapeStr(s).c_str());
            }
            const int oh = convOutDim(static_cast<int>(s[1]), n.poolK,
                                      n.poolStride, 0);
            const int ow = convOutDim(static_cast<int>(s[2]), n.poolK,
                                      n.poolStride, 0);
            if (oh <= 0 || ow <= 0) {
                fatal("graph: pool '%s' (k=%d) collapses %s to an "
                      "empty plane", n.name.c_str(), n.poolK,
                      shapeStr(s).c_str());
            }
            n.outShape = {s[0], oh, ow};
            break;
        }
        case Op::Flatten:
            n.outShape = {shapeNumel(in(0))};
            break;
        case Op::Add: {
            FORMS_ASSERT(n.inputs.size() == 2,
                         "graph: add '%s' needs two inputs",
                         n.name.c_str());
            if (in(0) != in(1)) {
                fatal("graph: add '%s' joins mismatched shapes %s vs "
                      "%s", n.name.c_str(), shapeStr(in(0)).c_str(),
                      shapeStr(in(1)).c_str());
            }
            n.outShape = in(0);
            break;
        }
        }
    }
}

std::string
Graph::dump() const
{
    std::string out;
    for (int id : topoOrder()) {
        const Node &n = nodes_[static_cast<size_t>(id)];
        out += strfmt("%3d %-9s %-16s <-", n.id, opName(n.op),
                      n.name.c_str());
        for (int in : n.inputs)
            out += strfmt(" %d", in);
        if (!n.outShape.empty())
            out += "  " + shapeStr(n.outShape);
        // %.9g round-trips any float32 exactly: distinct calibrated
        // scales always print distinctly (%g's 6 significant digits
        // collapsed nearby scales — e.g. on the replicated shortcut
        // paths a residual join fans into — making dumps ambiguous),
        // and the output is a pure function of the stored value.
        if (n.inScale > 0.0f)
            out += strfmt("  in_scale=%.9g", n.inScale);
        if (n.eicDensity > 0.0f)
            out += strfmt("  eic_density=%.9g", n.eicDensity);
        if (n.id == output_)
            out += "  (output)";
        out += "\n";
    }
    return out;
}

} // namespace forms::compile
