#include "compile/calibration.hh"

#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "compile/graph.hh"
#include "nn/serialize.hh"

namespace forms::compile {

namespace {

constexpr const char *kMagic = "forms-calibration v2";
// v1 tables (no `eic` lines) still load; their entries just carry no
// measured bit-level activity.
constexpr const char *kMagicV1 = "forms-calibration v1";

} // namespace

void
CalibrationTable::set(CalibEntry e)
{
    for (CalibEntry &have : entries_) {
        if (have.node == e.node) {
            have = std::move(e);
            return;
        }
    }
    entries_.push_back(std::move(e));
}

const CalibEntry *
CalibrationTable::find(const std::string &node) const
{
    for (const CalibEntry &e : entries_)
        if (e.node == node)
            return &e;
    return nullptr;
}

void
CalibrationTable::attachTo(Graph &g) const
{
    for (const CalibEntry &e : entries_) {
        bool found = false;
        for (int id = 0; id < g.capacity(); ++id) {
            if (!g.alive(id))
                continue;
            Node &n = g.node(id);
            if (n.name != e.node)
                continue;
            if (n.op != Op::Conv && n.op != Op::Dense) {
                fatal("calibration: entry '%s' names a %s node — only "
                      "matrix nodes have a DAC input grid",
                      e.node.c_str(), opName(n.op));
            }
            n.inScale = e.scale;
            if (e.eicFragments > 0 && inputBits_ > 0) {
                n.eicDensity = e.avgEic /
                    static_cast<float>(inputBits_);
            }
            found = true;
        }
        if (!found) {
            fatal("calibration: entry '%s' names no live graph node — "
                  "was this table built for a different model?",
                  e.node.c_str());
        }
    }
}

void
CalibrationTable::save(std::ostream &os) const
{
    os << kMagic << "\n";
    os << "input-bits " << inputBits_ << "\n";
    for (const CalibEntry &e : entries_) {
        os << "scale " << e.node << " " << e.observations << " "
           << nn::encodeFloat(e.range) << " " << nn::encodeFloat(e.scale)
           << "\n";
        if (e.eicFragments > 0) {
            os << "eic " << e.node << " " << e.eicFragments << " "
               << nn::encodeFloat(e.avgEic) << "\n";
        }
    }
    os << "end\n";
    FORMS_ASSERT(os.good(), "stream failure while saving calibration");
}

void
CalibrationTable::save(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot open '%s' for writing", path.c_str());
    save(os);
}

CalibrationTable
CalibrationTable::load(std::istream &is)
{
    std::string line;
    if (!std::getline(is, line) || (line != kMagic && line != kMagicV1))
        fatal("bad calibration header (expected '%s')", kMagic);

    CalibrationTable table;
    bool saw_end = false;
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        if (line == "end") {
            saw_end = true;
            break;
        }
        std::istringstream ls(line);
        std::string tag;
        ls >> tag;
        if (tag == "input-bits") {
            int bits = 0;
            if (!(ls >> bits) || bits < 1 || bits > 31)
                fatal("bad calibration line: '%s'", line.c_str());
            table.inputBits_ = bits;
        } else if (tag == "scale") {
            CalibEntry e;
            std::string range_tok, scale_tok;
            if (!(ls >> e.node >> e.observations >> range_tok >>
                  scale_tok))
                fatal("bad calibration line: '%s'", line.c_str());
            e.range = nn::parseFloat(range_tok, "calibration range");
            e.scale = nn::parseFloat(scale_tok, "calibration scale");
            if (e.scale <= 0.0f)
                fatal("calibration entry '%s' has non-positive scale",
                      e.node.c_str());
            table.set(std::move(e));
        } else if (tag == "eic") {
            std::string node, eic_tok;
            uint64_t fragments = 0;
            if (!(ls >> node >> fragments >> eic_tok) || fragments == 0)
                fatal("bad calibration line: '%s'", line.c_str());
            // eic lines annotate an already-parsed scale entry.
            CalibEntry *have = nullptr;
            for (CalibEntry &cand : table.entries_)
                if (cand.node == node)
                    have = &cand;
            if (!have) {
                fatal("calibration eic line for '%s' precedes its "
                      "scale entry", node.c_str());
            }
            have->avgEic = nn::parseFloat(eic_tok, "calibration eic");
            have->eicFragments = fragments;
            if (have->avgEic < 0.0f)
                fatal("calibration entry '%s' has negative eic",
                      node.c_str());
        } else {
            fatal("bad calibration line: '%s'", line.c_str());
        }
    }
    if (!saw_end)
        fatal("truncated calibration table (no 'end')");
    if (table.inputBits_ == 0)
        fatal("calibration table missing input-bits");
    return table;
}

CalibrationTable
CalibrationTable::load(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        fatal("cannot open '%s' for reading", path.c_str());
    return load(is);
}

} // namespace forms::compile
