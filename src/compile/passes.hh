/**
 * @file
 * Compiler passes over the layer-graph IR.
 *
 * lowerNetwork() flattens an nn::Network — recursing into
 * ResidualBlock composites — into an explicit compile::Graph of
 * conv/shortcut/add/relu nodes. foldBatchNorm() then absorbs
 * inference-mode BatchNorm layers into the preceding convolution:
 *
 *     sigma = sqrt(running_var + eps)
 *     w'    = gamma * w / sigma
 *     b'    = gamma * (b - running_mean) / sigma + beta
 *
 * Two fold targets exist, chosen by when folding runs in the
 * deployment pipeline (DESIGN.md §4):
 *
 * - FoldMode::Weights rewrites w'/b' into the conv layer itself.
 *   Use it on FP weights *before* ADMM compression, so the
 *   polarization and quantization projections see the final
 *   inference-time weights. The backing nn::Network is mutated in
 *   place: conv weights/bias are rewritten and the BN layer is
 *   neutralized (gamma = sigma, beta = mean makes it an exact
 *   identity in eval mode), keeping Network::forward(eval)
 *   equivalent to the folded graph.
 *
 * - FoldMode::DigitalScale records gamma/sigma as a per-channel
 *   scale (and b' as the shift) in the conv *node*'s digital output
 *   stage, leaving weights, biases and the network untouched. Use it
 *   *after* ADMM compression: the layer's single quantization grid
 *   cannot absorb per-channel rescaling (one tiny sigma would wipe
 *   every other channel's levels), but the digital periphery that
 *   already applies the dequantization scale can apply a per-channel
 *   affine at no analog cost.
 *
 * Thread-safety: passes mutate the graph and (in Weights mode) the
 * backing network in place — run them from one thread, before any
 * runtime is constructed on the graph. They are deterministic: node
 * visit order is the graph's id/topological order, never a hash or
 * thread order.
 */

#ifndef FORMS_COMPILE_PASSES_HH
#define FORMS_COMPILE_PASSES_HH

#include "compile/graph.hh"

namespace forms::nn {
class Network;
class Conv2D;
class BatchNorm2D;
} // namespace forms::nn

namespace forms::compile {

/**
 * Lower a sequential network (possibly containing ResidualBlock
 * composites) to the graph IR. The returned graph borrows layer
 * parameters from `net`, which must outlive it.
 */
Graph lowerNetwork(nn::Network &net);

/** Where foldBatchNorm lands the BN scale/shift (see file header). */
enum class FoldMode
{
    Weights,       //!< rewrite conv weights/bias (pre-compression)
    DigitalScale,  //!< per-channel digital output stage (post-compression)
};

/**
 * Fold every BatchNorm node whose producer is a Conv with no other
 * consumer into that conv, bypassing the BN node. Returns the number
 * of BN nodes folded. BN nodes in other positions (none in the
 * current zoo) are left for the executor to run functionally.
 */
int foldBatchNorm(Graph &g, FoldMode mode = FoldMode::Weights);

/**
 * The fold algebra on one conv/BN pair (exposed for tests): rewrites
 * `conv`'s weight and bias in place and neutralizes `bn`.
 */
void foldBatchNormInto(nn::Conv2D &conv, nn::BatchNorm2D &bn);

} // namespace forms::compile

#endif // FORMS_COMPILE_PASSES_HH
