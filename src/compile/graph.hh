/**
 * @file
 * Layer-graph IR for the crossbar compiler.
 *
 * A compile::Graph is a DAG of Nodes with explicit tensor edges: each
 * node names its producer nodes in `inputs`, so non-sequential
 * topologies (residual joins) are first-class instead of being hidden
 * inside composite layers. Matrix nodes (Conv/Dense) and BatchNorm
 * nodes borrow their parameters from the backing nn::Network, which
 * must outlive the graph — compiler passes (compile/passes.hh) mutate
 * those parameters in place, and the executor (sim/graph_runtime.hh)
 * maps them onto crossbars.
 *
 * Thread-safety: a Graph has no internal synchronization. Build and
 * mutate it (addNode/bypass/inferShapes) from one thread; once
 * construction and passes are done, const queries (topoOrder, dump,
 * consumers, node) are safe to call concurrently.
 */

#ifndef FORMS_COMPILE_GRAPH_HH
#define FORMS_COMPILE_GRAPH_HH

#include <string>
#include <vector>

#include "tensor/tensor.hh"

namespace forms::nn {
class Conv2D;
class Dense;
class BatchNorm2D;
} // namespace forms::nn

namespace forms::compile {

/** Operation performed by one graph node. */
enum class Op
{
    Input,      //!< the network input placeholder (exactly one)
    Conv,       //!< 2-d convolution (crossbar-programmed)
    Dense,      //!< fully connected (crossbar-programmed)
    BatchNorm,  //!< eval-mode per-channel affine (foldable)
    Relu,       //!< elementwise max(x, 0)
    MaxPool,    //!< 2-d max pooling
    AvgPool,    //!< 2-d average pooling
    Flatten,    //!< NCHW -> (N, C*H*W)
    Add,        //!< elementwise join of two equal-shape inputs
};

/** Short mnemonic, e.g. "conv", "add". */
const char *opName(Op op);

/** One operation of the layer graph. */
struct Node
{
    int id = -1;
    Op op = Op::Input;
    std::string name;
    std::vector<int> inputs;   //!< producer node ids, in operand order

    // Parameters borrowed from the backing network (op-dependent).
    nn::Conv2D *conv = nullptr;
    nn::Dense *dense = nullptr;
    nn::BatchNorm2D *bn = nullptr;
    int poolK = 0, poolStride = 0;

    /**
     * Digital output stage of a matrix node: when non-empty (set by
     * foldBatchNorm in DigitalScale mode), the executor computes
     * out[oc] = outScale[oc] * mvm[oc] + outBias[oc] in the digital
     * periphery instead of mvm[oc] + layer bias. The programmed
     * weights are untouched, so ADMM constraints survive folding.
     */
    std::vector<float> outScale, outBias;

    /**
     * Static input-quantization scale of a matrix node (the grid step
     * of the unsigned bit-serial DAC feeding it), stamped onto the
     * node's input edge by compile::CalibrationTable::attachTo. 0
     * means uncalibrated: executors in arch::ScaleMode::Static then
     * require a table in their RuntimeConfig instead.
     */
    float inScale = 0.0f;

    /**
     * Measured input bit-density of a matrix node: calibrated average
     * fragment EIC divided by the input grid's bit width, in (0, 1],
     * stamped by compile::CalibrationTable::attachTo from a table
     * whose calibrator recorded EIC. 0 means unmeasured. Consumed
     * only by the WorkModel::EicTime schedule objective — it is a
     * timing-model annotation and never touches execution, so logits
     * are bit-identical with or without it (docs/ARCHITECTURE.md).
     */
    float eicDensity = 0.0f;

    /** Per-sample output shape, set by Graph::inferShapes(). */
    Shape outShape;
};

/** DAG of layer operations with explicit tensor edges. */
class Graph
{
  public:
    Graph() = default;

    /** Append a node; returns its id. Ids are stable across bypass(). */
    int addNode(Op op, std::string name, std::vector<int> inputs);

    Node &node(int id);
    const Node &node(int id) const;

    /** True when `id` names a node that has not been bypassed. */
    bool alive(int id) const;

    /** Number of live nodes. */
    size_t size() const;

    /** Id bound: every node id is in [0, capacity()). */
    int capacity() const { return static_cast<int>(nodes_.size()); }

    /** The single Input node's id (-1 until one is added). */
    int input() const { return input_; }

    /** The node whose value is the network output. */
    int output() const { return output_; }
    void setOutput(int id);

    /** Live node ids that read node `id`'s value. */
    std::vector<int> consumers(int id) const;

    /**
     * Remove a single-input node, rewiring its consumers (and the
     * graph output, if it was `id`) to its producer. Used by folding
     * passes to delete absorbed nodes.
     */
    void bypass(int id);

    /**
     * Deterministic topological order of the live nodes (Kahn's
     * algorithm, smallest-id-first tie break). Panics on a cycle.
     */
    std::vector<int> topoOrder() const;

    /**
     * Infer every node's per-sample output shape from the input
     * sample shape (e.g. {3, 32, 32}), validating operand shapes
     * along the way. fatal()s on a mismatch.
     */
    void inferShapes(const Shape &sample);

    /** Multi-line human-readable dump (one node per line). */
    std::string dump() const;

  private:
    std::vector<Node> nodes_;
    std::vector<uint8_t> dead_;
    int input_ = -1;
    int output_ = -1;
};

} // namespace forms::compile

#endif // FORMS_COMPILE_GRAPH_HH
