#include "compile/schedule.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"
#include "nn/layers.hh"

namespace forms::compile {

double
nodeWork(const Node &n)
{
    FORMS_ASSERT(!n.outShape.empty(),
                 "nodeWork: run inferShapes() before partitioning");
    int64_t out_elems = 1;
    for (int64_t d : n.outShape)
        out_elems *= d;
    switch (n.op) {
    case Op::Conv:
        return static_cast<double>(out_elems) * n.conv->kernel() *
               n.conv->kernel() * n.conv->inChannels();
    case Op::Dense:
        return static_cast<double>(n.dense->inDim()) * n.dense->outDim();
    default:
        // Functional ops (relu, pool, BN, add...) are digital
        // periphery work, orders of magnitude below a crossbar MVM;
        // charge one unit per output element so empty chips still
        // lose to chips with real work in the balance objective.
        return static_cast<double>(out_elems);
    }
}

namespace {

/** float32 bytes of one node's per-sample output tensor. */
int64_t
bytesPerSample(const Node &n)
{
    int64_t elems = 1;
    for (int64_t d : n.outShape)
        elems *= d;
    return elems * static_cast<int64_t>(sizeof(float));
}

/** Lexicographic (maxWork, cutBytes) objective value. */
struct Cost
{
    double maxWork = std::numeric_limits<double>::infinity();
    int64_t cutBytes = 0;

    bool betterThan(const Cost &o) const
    {
        if (maxWork != o.maxWork)
            return maxWork < o.maxWork;
        return cutBytes < o.cutBytes;
    }
};

} // namespace

Schedule
Schedule::partition(const Graph &g, const ScheduleConfig &cfg)
{
    const std::vector<int> topo = g.topoOrder();
    const int n = static_cast<int>(topo.size());
    FORMS_ASSERT(n > 0, "partition: empty graph");

    const int chips = std::max(1, std::min(cfg.chips, n));
    std::vector<double> capacity = cfg.capacity;
    if (capacity.empty()) {
        capacity.assign(static_cast<size_t>(chips), 1.0);
    } else if (static_cast<int>(capacity.size()) != cfg.chips) {
        fatal("partition: capacity vector has %zu entries for %d chips",
              capacity.size(), cfg.chips);
    }
    // When the chip count was clamped to the live node count, the
    // trailing capacities have no stage to describe.
    capacity.resize(static_cast<size_t>(chips), 1.0);
    for (int s = 0; s < chips; ++s) {
        if (capacity[static_cast<size_t>(s)] <= 0.0)
            fatal("partition: chip %d capacity must be positive", s);
    }

    // Topo position of each node id, and prefix sums of node work so
    // any contiguous stage's work is O(1) to evaluate.
    std::vector<int> pos(static_cast<size_t>(g.capacity()), -1);
    for (int i = 0; i < n; ++i)
        pos[static_cast<size_t>(topo[i])] = i;
    std::vector<double> prefix(static_cast<size_t>(n) + 1, 0.0);
    for (int i = 0; i < n; ++i) {
        prefix[static_cast<size_t>(i) + 1] =
            prefix[static_cast<size_t>(i)] +
            nodeWork(g.node(topo[static_cast<size_t>(i)]));
    }

    // last[i]: last topo position where node topo[i]'s value is
    // needed — its furthest consumer, or past the end for the graph
    // output (it leaves the last chip's scope). The DP's cut costs
    // and the materialized transfers both derive from this one
    // liveness computation, so the optimized objective always matches
    // the cost the pipeline runtime charges.
    std::vector<int> last(static_cast<size_t>(n), 0);
    for (int i = 0; i < n; ++i) {
        const int id = topo[static_cast<size_t>(i)];
        int l = i;
        for (int c : g.consumers(id))
            l = std::max(l, pos[static_cast<size_t>(c)]);
        if (id == g.output())
            l = n;
        last[static_cast<size_t>(i)] = l;
    }

    // cut[b]: bytes-per-sample crossing the boundary before topo
    // position b — the sum over unique producers before b with at
    // least one consumer (or the graph output) at or after b.
    std::vector<int64_t> cut(static_cast<size_t>(n) + 1, 0);
    for (int i = 0; i < n; ++i) {
        // The value is live across boundaries (i, last]: it must hop
        // every one of them on the linear chip-to-chip link.
        const int64_t bytes =
            bytesPerSample(g.node(topo[static_cast<size_t>(i)]));
        for (int b = i + 1;
             b <= last[static_cast<size_t>(i)] && b <= n; ++b)
            cut[static_cast<size_t>(b)] += bytes;
    }

    // Exact DP over cut positions: best[s][i] = optimal cost of
    // packing the first i topo nodes onto chips 0..s, each stage
    // non-empty and contiguous. Transitions scan the previous cut
    // point j; ties break toward the smallest j, making the cut
    // vector lexicographically smallest and the result deterministic.
    const double inf = std::numeric_limits<double>::infinity();
    std::vector<std::vector<Cost>> best(
        static_cast<size_t>(chips),
        std::vector<Cost>(static_cast<size_t>(n) + 1));
    std::vector<std::vector<int>> from(
        static_cast<size_t>(chips),
        std::vector<int>(static_cast<size_t>(n) + 1, -1));
    for (int i = 1; i <= n; ++i) {
        best[0][static_cast<size_t>(i)] = Cost{
            (prefix[static_cast<size_t>(i)] - prefix[0]) / capacity[0],
            0};
        from[0][static_cast<size_t>(i)] = 0;
    }
    for (int s = 1; s < chips; ++s) {
        for (int i = s + 1; i <= n; ++i) {
            Cost pick;
            pick.maxWork = inf;
            int arg = -1;
            for (int j = s; j < i; ++j) {
                const Cost &prev = best[static_cast<size_t>(s) - 1]
                                       [static_cast<size_t>(j)];
                if (prev.maxWork == inf)
                    continue;
                const double stage_work =
                    (prefix[static_cast<size_t>(i)] -
                     prefix[static_cast<size_t>(j)]) /
                    capacity[static_cast<size_t>(s)];
                const Cost cand{
                    std::max(prev.maxWork, stage_work),
                    prev.cutBytes + cut[static_cast<size_t>(j)]};
                if (cand.betterThan(pick)) {
                    pick = cand;
                    arg = j;
                }
            }
            best[static_cast<size_t>(s)][static_cast<size_t>(i)] = pick;
            from[static_cast<size_t>(s)][static_cast<size_t>(i)] = arg;
        }
    }

    // Recover the cut points.
    std::vector<int> bounds(static_cast<size_t>(chips) + 1, 0);
    bounds[static_cast<size_t>(chips)] = n;
    for (int s = chips - 1; s > 0; --s) {
        bounds[static_cast<size_t>(s)] =
            from[static_cast<size_t>(s)]
                [static_cast<size_t>(bounds[static_cast<size_t>(s) + 1])];
        FORMS_ASSERT(bounds[static_cast<size_t>(s)] > 0,
                     "partition: DP failed to place every stage");
    }

    Schedule sched;
    sched.chips_ = chips;
    sched.chipOf_.assign(static_cast<size_t>(g.capacity()), -1);
    sched.chipNodes_.resize(static_cast<size_t>(chips));
    sched.work_.assign(static_cast<size_t>(chips), 0.0);
    for (int s = 0; s < chips; ++s) {
        for (int i = bounds[static_cast<size_t>(s)];
             i < bounds[static_cast<size_t>(s) + 1]; ++i) {
            const int id = topo[static_cast<size_t>(i)];
            sched.chipOf_[static_cast<size_t>(id)] = s;
            sched.chipNodes_[static_cast<size_t>(s)].push_back(id);
            sched.work_[static_cast<size_t>(s)] += nodeWork(g.node(id));
        }
    }

    // Materialize the boundary hops, ordered by (fromChip, producer).
    for (int s = 0; s + 1 < chips; ++s) {
        const int b = bounds[static_cast<size_t>(s) + 1];
        for (int i = 0; i < b; ++i) {
            if (last[static_cast<size_t>(i)] >= b) {
                const int id = topo[static_cast<size_t>(i)];
                sched.transfers_.push_back(
                    {id, s, s + 1, bytesPerSample(g.node(id))});
            }
        }
    }
    return sched;
}

int
Schedule::chipOf(int id) const
{
    if (id < 0 || static_cast<size_t>(id) >= chipOf_.size())
        return -1;
    return chipOf_[static_cast<size_t>(id)];
}

double
Schedule::chipWork(int chip) const
{
    FORMS_ASSERT(chip >= 0 && chip < chips_, "chipWork: bad chip");
    return work_[static_cast<size_t>(chip)];
}

int64_t
Schedule::cutBytesPerSample() const
{
    int64_t total = 0;
    for (const Transfer &t : transfers_)
        total += t.bytesPerSample;
    return total;
}

std::string
Schedule::dump() const
{
    std::string out;
    for (int s = 0; s < chips_; ++s) {
        out += strfmt("chip %d (work %.3g):", s, chipWork(s));
        for (int id : chipNodes_[static_cast<size_t>(s)])
            out += strfmt(" %d", id);
        out += "\n";
    }
    for (const Transfer &t : transfers_) {
        out += strfmt("transfer node %d: chip %d -> %d (%lld B/sample)\n",
                      t.producer, t.fromChip, t.toChip,
                      static_cast<long long>(t.bytesPerSample));
    }
    return out;
}

} // namespace forms::compile
